// Package sanitize implements SpotFi's ToF sanitization (Algorithm 1,
// Sec. 3.2.2): it removes the linear-in-frequency phase that sampling time
// offset (STO) and packet detection delay add to every path's CSI. After
// sanitization the modified CSI phase is invariant to the per-packet STO,
// so ToF estimates become comparable across packets — the property the
// clustering stage depends on.
package sanitize

import (
	"fmt"
	"math"
	"math/cmplx"

	"spotfi/internal/csi"
)

// Result reports what sanitization removed.
type Result struct {
	// STOEstimate is the fitted sampling time offset τ̂_s in seconds:
	// the common linear slope of the unwrapped phase across subcarriers,
	// divided by −2π·f_δ. Note it absorbs the mean path delay too; only
	// its packet-to-packet variation is meaningful.
	STOEstimate float64
	// InterceptRad is the fitted common phase intercept β.
	InterceptRad float64
}

// ToF removes the best common linear fit (in subcarrier index) of the
// unwrapped CSI phase from every antenna, in place, and returns the fit.
// subcarrierSpacingHz converts the fitted slope to seconds.
//
// The fit is
//
//	τ̂_s = argmin_ρ Σ_{m,n} (ψ(m,n) + 2π·f_δ·n·ρ + β)²
//
// exactly as in Algorithm 1 (with n 0-based), and the correction applied is
// ψ̂(m,n) = ψ(m,n) + 2π·f_δ·n·τ̂_s. The magnitude of each CSI entry is
// untouched.
func ToF(c *csi.Matrix, subcarrierSpacingHz float64) (Result, error) {
	if err := c.Validate(); err != nil {
		return Result{}, err
	}
	if subcarrierSpacingHz <= 0 {
		return Result{}, fmt.Errorf("sanitize: subcarrier spacing %v must be positive", subcarrierSpacingHz)
	}
	m := c.Antennas()
	n := c.Subcarriers()
	if n < 2 {
		return Result{}, fmt.Errorf("sanitize: need ≥2 subcarriers, got %d", n)
	}

	// Algorithm 1 fits the common linear-in-subcarrier phase by least
	// squares on the unwrapped phase. Unwrapping is fragile at deep
	// multipath fades (the phase is ill-conditioned where |csi|≈0 and a
	// branch-cut flip shifts the fitted slope packet-to-packet), so the
	// slope is estimated in the complex domain instead: the
	// power-weighted mean phase increment between adjacent subcarriers,
	//
	//	slope = arg Σ_{m,n} csi[m][n+1]·conj(csi[m][n]),
	//
	// which solves the same weighted least-squares objective without ever
	// unwrapping, and down-weights faded subcarriers automatically.
	var acc complex128
	for a := 0; a < m; a++ {
		row := c.Values[a]
		for k := 0; k+1 < n; k++ {
			acc += row[k+1] * cmplx.Conj(row[k])
		}
	}
	if acc == 0 {
		return Result{}, fmt.Errorf("sanitize: zero CSI, cannot fit STO")
	}
	slope := cmplx.Phase(acc)

	// Intercept: mean residual phase at subcarrier 0 after slope removal
	// (reported for completeness; the correction does not use it).
	var icAcc complex128
	for a := 0; a < m; a++ {
		icAcc += c.Values[a][0]
	}
	intercept := cmplx.Phase(icAcc)

	// slope = −2π·f_δ·τ̂_s  ⇒  τ̂_s = −slope/(2π·f_δ).
	sto := -slope / (2 * math.Pi * subcarrierSpacingHz)

	// Remove the fitted slope from the phase of every entry, preserving
	// magnitude: multiply entry (m,n) by e^{−j·slope·n}.
	for a := 0; a < m; a++ {
		rot := complex(1, 0)
		step := complex(math.Cos(-slope), math.Sin(-slope))
		for k := 0; k < n; k++ {
			c.Values[a][k] *= rot
			rot *= step
		}
	}
	return Result{STOEstimate: sto, InterceptRad: intercept}, nil
}

// Packet sanitizes the CSI of a packet in place.
func Packet(p *csi.Packet, subcarrierSpacingHz float64) (Result, error) {
	if p == nil || p.CSI == nil {
		return Result{}, fmt.Errorf("sanitize: nil packet or CSI")
	}
	return ToF(p.CSI, subcarrierSpacingHz)
}
