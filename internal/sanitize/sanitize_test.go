package sanitize

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"spotfi/internal/csi"
	"spotfi/internal/geom"
	"spotfi/internal/rf"
	"spotfi/internal/sim"
)

// applySTO adds the linear-in-subcarrier phase an STO of tau seconds
// introduces (same across antennas), mimicking hardware.
func applySTO(c *csi.Matrix, tau float64, band rf.Band) {
	for a := range c.Values {
		for n := range c.Values[a] {
			ph := -2 * math.Pi * band.SubcarrierSpacingHz * float64(n) * tau
			c.Values[a][n] *= cmplx.Exp(complex(0, ph))
		}
	}
}

func makeTwoPathCSI(band rf.Band, array rf.Array, rng *rand.Rand) *csi.Matrix {
	env := &sim.Environment{Walls: []sim.Wall{
		{Seg: geom.Segment{A: geom.Point{X: -50, Y: 8}, B: geom.Point{X: 50, Y: 8}}, LossDB: 10, ReflectLossDB: 6},
	}}
	ap := sim.AP{Pos: geom.Point{X: 0, Y: 0}, NormalAngle: math.Pi / 2}
	link := sim.NewLink(env, ap, geom.Point{X: 5, Y: 2}, sim.DefaultLinkConfig(), rng)
	syn, err := sim.NewSynthesizer(link, band, array, sim.CleanImpairments(), rng)
	if err != nil {
		panic(err)
	}
	return syn.NextPacket("mac").CSI
}

func TestSanitizeRemovesPureSTO(t *testing.T) {
	band := rf.DefaultBand()
	array := rf.DefaultArray(band)
	rng := rand.New(rand.NewSource(51))
	base := makeTwoPathCSI(band, array, rng)

	withSTO := base.Clone()
	const sto = 37e-9
	applySTO(withSTO, sto, band)

	cleanRes, err := ToF(base, band.SubcarrierSpacingHz)
	if err != nil {
		t.Fatal(err)
	}
	stoRes, err := ToF(withSTO, band.SubcarrierSpacingHz)
	if err != nil {
		t.Fatal(err)
	}
	// The fitted STO difference equals the injected offset.
	if math.Abs((stoRes.STOEstimate-cleanRes.STOEstimate)-sto) > 0.5e-9 {
		t.Fatalf("STO estimate diff = %v ns, want 37", (stoRes.STOEstimate-cleanRes.STOEstimate)*1e9)
	}
	// And the sanitized matrices agree entry-by-entry (Fig. 5b property).
	for a := range base.Values {
		for n := range base.Values[a] {
			if cmplx.Abs(base.Values[a][n]-withSTO.Values[a][n]) > 1e-6*cmplx.Abs(base.Values[a][n])+1e-12 {
				t.Fatalf("sanitized CSI differs at (%d,%d): %v vs %v",
					a, n, base.Values[a][n], withSTO.Values[a][n])
			}
		}
	}
}

func TestSanitizePreservesMagnitude(t *testing.T) {
	band := rf.DefaultBand()
	array := rf.DefaultArray(band)
	rng := rand.New(rand.NewSource(52))
	c := makeTwoPathCSI(band, array, rng)
	before := make([]float64, 0, 90)
	for _, row := range c.Values {
		for _, v := range row {
			before = append(before, cmplx.Abs(v))
		}
	}
	if _, err := ToF(c, band.SubcarrierSpacingHz); err != nil {
		t.Fatal(err)
	}
	i := 0
	for _, row := range c.Values {
		for _, v := range row {
			if math.Abs(cmplx.Abs(v)-before[i]) > 1e-9*before[i]+1e-15 {
				t.Fatalf("magnitude changed at flat index %d", i)
			}
			i++
		}
	}
}

func TestSanitizeSinglePathFlattensPhase(t *testing.T) {
	// One broadside path: after removing the common linear fit, the phase
	// across subcarriers must be flat — the entire ramp was (ToF + STO).
	band := rf.DefaultBand()
	array := rf.DefaultArray(band)
	c := csi.NewMatrix(array.Antennas, band.Subcarriers)
	tof := 80e-9
	for a := range c.Values {
		for n := range c.Values[a] {
			ph := -2 * math.Pi * band.SubcarrierSpacingHz * float64(n) * tof
			c.Values[a][n] = cmplx.Exp(complex(0, ph))
		}
	}
	res, err := ToF(c, band.SubcarrierSpacingHz)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.STOEstimate-tof) > 1e-12 {
		t.Fatalf("fitted slope = %v ns, want 80 (the full ramp)", res.STOEstimate*1e9)
	}
	ref := c.Values[0][0]
	for a := range c.Values {
		for n := range c.Values[a] {
			if cmplx.Abs(c.Values[a][n]-ref) > 1e-9 {
				t.Fatalf("phase not flat at (%d,%d)", a, n)
			}
		}
	}
}

func TestSanitizeMakesPacketsComparable(t *testing.T) {
	// End-to-end Fig. 5 reproduction: two packets of the same channel with
	// different detection delays; after sanitization their CSI matrices
	// match up to the per-packet common carrier phase.
	band := rf.DefaultBand()
	array := rf.DefaultArray(band)
	rng := rand.New(rand.NewSource(53))
	env := &sim.Environment{}
	link := sim.NewLink(env, sim.AP{Pos: geom.Point{X: 0, Y: 0}}, geom.Point{X: 6, Y: 2}, sim.DefaultLinkConfig(), rng)
	imp := sim.CleanImpairments()
	imp.DetectionDelayMaxNs = 60
	syn, err := sim.NewSynthesizer(link, band, array, imp, rng)
	if err != nil {
		t.Fatal(err)
	}
	p1 := syn.NextPacket("mac")
	p2 := syn.NextPacket("mac")
	if _, err := Packet(p1, band.SubcarrierSpacingHz); err != nil {
		t.Fatal(err)
	}
	if _, err := Packet(p2, band.SubcarrierSpacingHz); err != nil {
		t.Fatal(err)
	}
	// Compare ratios so a common complex factor cancels.
	ref := p1.CSI.Values[0][0] / p2.CSI.Values[0][0]
	for a := range p1.CSI.Values {
		for n := range p1.CSI.Values[a] {
			r := p1.CSI.Values[a][n] / p2.CSI.Values[a][n]
			if cmplx.Abs(r-ref) > 1e-6 {
				t.Fatalf("sanitized packets differ at (%d,%d): ratio %v vs %v", a, n, r, ref)
			}
		}
	}
}

func TestSanitizeErrors(t *testing.T) {
	band := rf.DefaultBand()
	if _, err := Packet(nil, band.SubcarrierSpacingHz); err == nil {
		t.Fatal("nil packet accepted")
	}
	if _, err := Packet(&csi.Packet{}, band.SubcarrierSpacingHz); err == nil {
		t.Fatal("nil CSI accepted")
	}
	c := csi.NewMatrix(3, 30)
	c.Values[0][0] = complex(math.NaN(), 0)
	if _, err := ToF(c, band.SubcarrierSpacingHz); err == nil {
		t.Fatal("NaN CSI accepted")
	}
	good := csi.NewMatrix(3, 30)
	if _, err := ToF(good, 0); err == nil {
		t.Fatal("zero spacing accepted")
	}
	one := csi.NewMatrix(3, 1)
	if _, err := ToF(one, band.SubcarrierSpacingHz); err == nil {
		t.Fatal("single-subcarrier CSI accepted")
	}
}
