package quality

import (
	"math"
	"sort"
	"time"
)

// Drift-tracked observables, per AP. Each one has an EWMA baseline and an
// EWMA variance; a burst whose value sits further than ZThreshold standard
// deviations from the baseline is a breach.
const (
	// MetricAoAResid is the AP's AoA residual against the fused location
	// (radians) — jitter and systematic miscalibration both land here.
	MetricAoAResid = "aoa_resid_rad"
	// MetricSTOSlope is the burst-mean sanitization slope (ns) — the
	// Algorithm 1 fit whose drift marks a clock or cabling change.
	MetricSTOSlope = "sto_slope_ns"
	// MetricMargin is the top-two Eq. 8 likelihood margin — a collapsing
	// margin means the direct path is no longer separable.
	MetricMargin = "margin"
)

// DriftMetrics returns the tracked observable names in canonical order.
func DriftMetrics() []string {
	return []string{MetricAoAResid, MetricSTOSlope, MetricMargin}
}

// DriftConfig controls the per-AP rolling-window drift detector. The zero
// value selects DefaultDriftConfig.
type DriftConfig struct {
	// Alpha is the EWMA smoothing factor for baselines and variances
	// (0 < Alpha ≤ 1; smaller is smoother).
	Alpha float64
	// ZThreshold is the |z|-score beyond which an observation breaches
	// its baseline.
	ZThreshold float64
	// Warmup is how many bursts per AP only feed the baselines before
	// breach detection arms. Baselines learned from one or two bursts
	// have meaningless variances.
	Warmup int
	// HealthAlpha smooths the per-AP health score (EWMA over the per-AP
	// confidence and the breach rate).
	HealthAlpha float64
	// MinSigma floors the baseline standard deviation of each metric so
	// a near-constant observable (variance → 0) does not turn numeric
	// noise into breaches. Keyed by metric name; metrics without an
	// entry use no floor.
	MinSigma map[string]float64
}

// DefaultDriftConfig returns the default drift-detection parameters.
func DefaultDriftConfig() DriftConfig {
	return DriftConfig{
		Alpha:       0.15,
		ZThreshold:  4,
		Warmup:      5,
		HealthAlpha: 0.2,
		MinSigma: map[string]float64{
			MetricAoAResid: 0.01, // ~0.6°
			MetricSTOSlope: 1,    // 1 ns
			MetricMargin:   0.02,
		},
	}
}

func (c DriftConfig) fill() DriftConfig {
	d := DefaultDriftConfig()
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = d.Alpha
	}
	if c.ZThreshold <= 0 {
		c.ZThreshold = d.ZThreshold
	}
	if c.Warmup <= 0 {
		c.Warmup = d.Warmup
	}
	if c.HealthAlpha <= 0 || c.HealthAlpha > 1 {
		c.HealthAlpha = d.HealthAlpha
	}
	if c.MinSigma == nil {
		c.MinSigma = d.MinSigma
	}
	return c
}

// ewma is an exponentially-weighted mean/variance pair.
type ewma struct {
	mean, varv float64
	n          int
}

// observe folds x in and returns the z-score of x against the baseline as
// it stood before this observation (0 until two points exist).
func (e *ewma) observe(x, alpha, minSigma float64) float64 {
	z := 0.0
	if e.n >= 2 {
		sigma := math.Sqrt(e.varv)
		if sigma < minSigma {
			sigma = minSigma
		}
		if sigma > 0 {
			z = (x - e.mean) / sigma
		}
	}
	if e.n == 0 {
		e.mean = x
	} else {
		diff := x - e.mean
		incr := alpha * diff
		e.mean += incr
		e.varv = (1 - alpha) * (e.varv + diff*incr)
	}
	e.n++
	return z
}

// apState is the drift state of one AP.
type apState struct {
	baselines map[string]*ewma
	breaches  map[string]uint64
	lastZ     map[string]float64
	bursts    int
	scoreEWMA float64 // EWMA of the per-AP confidence score
	breachEW  float64 // EWMA of the per-burst breached-metric fraction
	lastSeen  time.Time
}

// driftDetector tracks per-AP baselines. Not safe for concurrent use; the
// Monitor serializes access under its mutex.
type driftDetector struct {
	cfg DriftConfig
	aps map[int]*apState
}

func newDriftDetector(cfg DriftConfig) *driftDetector {
	return &driftDetector{cfg: cfg.fill(), aps: make(map[int]*apState)}
}

// observe folds one AP's burst observables in and returns how many of the
// tracked metrics breached their baselines.
func (d *driftDetector) observe(ap APScore, now time.Time) int {
	st := d.aps[ap.APID]
	if st == nil {
		st = &apState{
			baselines: make(map[string]*ewma, 3),
			breaches:  make(map[string]uint64, 3),
			lastZ:     make(map[string]float64, 3),
			scoreEWMA: ap.Score,
		}
		d.aps[ap.APID] = st
	}
	st.bursts++
	st.lastSeen = now

	obs := map[string]float64{
		MetricAoAResid: math.Abs(ap.Inputs.AoAResidRad),
		MetricSTOSlope: ap.Inputs.STOMeanNs,
		MetricMargin:   ap.Inputs.Margin,
	}
	breached := 0
	armed := st.bursts > d.cfg.Warmup
	for name, x := range obs {
		if math.IsNaN(x) {
			continue
		}
		e := st.baselines[name]
		if e == nil {
			e = &ewma{}
			st.baselines[name] = e
		}
		z := e.observe(x, d.cfg.Alpha, d.cfg.MinSigma[name])
		st.lastZ[name] = z
		if armed && math.Abs(z) > d.cfg.ZThreshold {
			st.breaches[name]++
			breached++
		}
	}

	// Health folds the absolute per-AP confidence (a chronically
	// miscalibrated AP scores low from burst one, with or without
	// baseline breaches) with the breach rate (a healthy-looking AP that
	// suddenly drifts breaches before its score EWMA catches up).
	a := d.cfg.HealthAlpha
	st.scoreEWMA += a * (ap.Score - st.scoreEWMA)
	frac := float64(breached) / float64(len(obs))
	st.breachEW += a * (frac - st.breachEW)
	return breached
}

// health returns the [0,1] health of ap (1 when the AP is unknown: an AP
// that has not contributed yet is presumed healthy, not failed — staleness
// is the readiness probe's business).
func (d *driftDetector) health(apID int) float64 {
	st := d.aps[apID]
	if st == nil {
		return 1
	}
	return clamp01(st.scoreEWMA * (1 - st.breachEW))
}

// MetricState is one tracked observable's baseline snapshot.
type MetricState struct {
	// Mean and Sigma are the EWMA baseline and standard deviation.
	Mean  float64 `json:"mean"`
	Sigma float64 `json:"sigma"`
	// LastZ is the z-score of the most recent observation.
	LastZ float64 `json:"last_z"`
	// Breaches counts observations beyond the z threshold since start.
	Breaches uint64 `json:"breaches"`
}

// APHealth is the scoreboard row for one AP.
type APHealth struct {
	APID int `json:"ap"`
	// Health ∈ [0,1]: the EWMA per-AP confidence discounted by the
	// baseline-breach rate. Exported as spotfi_ap_health{ap=…}.
	Health float64 `json:"health"`
	// Score is the EWMA of the AP's per-burst confidence contribution.
	Score float64 `json:"score"`
	// Bursts is how many bursts this AP has contributed to.
	Bursts int `json:"bursts"`
	// Warmed reports whether breach detection is armed for this AP.
	Warmed bool `json:"warmed"`
	// Metrics holds the drift baselines keyed by observable name.
	Metrics map[string]MetricState `json:"metrics"`
	// LastSeen is when the AP last contributed to a burst.
	LastSeen time.Time `json:"last_seen"`
}

// snapshot renders the detector state, sorted by AP ID.
func (d *driftDetector) snapshot() []APHealth {
	out := make([]APHealth, 0, len(d.aps))
	for id, st := range d.aps {
		h := APHealth{
			APID:     id,
			Health:   d.health(id),
			Score:    st.scoreEWMA,
			Bursts:   st.bursts,
			Warmed:   st.bursts > d.cfg.Warmup,
			Metrics:  make(map[string]MetricState, len(st.baselines)),
			LastSeen: st.lastSeen,
		}
		for name, e := range st.baselines {
			h.Metrics[name] = MetricState{
				Mean:     e.mean,
				Sigma:    math.Sqrt(math.Max(e.varv, 0)),
				LastZ:    st.lastZ[name],
				Breaches: st.breaches[name],
			}
		}
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].APID < out[j].APID })
	return out
}
