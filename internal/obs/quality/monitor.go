package quality

import (
	"strconv"
	"sync"
	"time"

	"spotfi/internal/obs"
)

// ScoreBuckets are the histogram bucket bounds for the [0,1] confidence
// score — finer near the ends where the SLO questions live ("how many
// bursts are nearly certain / nearly garbage").
var ScoreBuckets = []float64{
	0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95,
}

// DefaultFloor is the default SLO threshold: bursts scoring below it count
// as low-quality.
const DefaultFloor = 0.25

// defaultRecent is the default capacity of the recent-bursts ring.
const defaultRecent = 512

// Config configures a Monitor. The zero value selects all defaults.
type Config struct {
	// Score holds the confidence-score scales and weights.
	Score ScoreConfig
	// Drift holds the per-AP drift-detection parameters.
	Drift DriftConfig
	// Floor is the SLO threshold: bursts scoring below it increment
	// spotfi_quality_low_total. 0 selects DefaultFloor; negative disables
	// the low counter.
	Floor float64
	// Recent is the capacity of the recent-bursts ring backing the
	// scoreboard (default 512).
	Recent int
	// OnBurst, when non-nil, receives every scored burst right after it is
	// folded into the monitor — the hook feeding per-AP instantaneous
	// scores to circuit breakers. Called outside the monitor lock, on the
	// goroutine that localized the burst; it must not call Observe.
	OnBurst func(sc Score)
	// OnDriftBreach, when non-nil, fires per AP whose burst breached ≥1
	// drift baselines, with the breach count. Called outside the monitor
	// lock; it must not call Observe.
	OnDriftBreach func(apID, breached int)
}

// Monitor aggregates burst confidence scores: it feeds the quality metrics
// (score histogram, SLO counters, per-AP health gauges), runs the per-AP
// drift detector, and keeps a bounded ring of recent bursts for the
// /debug/quality scoreboard. All methods are safe on a nil receiver and
// for concurrent use.
type Monitor struct {
	cfg Config
	reg *obs.Registry
	now func() time.Time

	scoreHist *obs.Histogram
	bursts    *obs.Counter
	low       *obs.Counter
	breaches  *obs.Counter

	mu     sync.Mutex
	drift  *driftDetector
	ring   []BurstRecord
	next   int
	total  uint64
	lowN   uint64
	gauges map[int]bool // AP IDs with a registered health gauge
}

// NewMonitor returns a Monitor registering its metrics on reg (skipped when
// reg is nil — the monitor still scores, drifts, and serves the
// scoreboard).
func NewMonitor(reg *obs.Registry, cfg Config) *Monitor {
	if cfg.Floor == 0 {
		cfg.Floor = DefaultFloor
	}
	if cfg.Recent <= 0 {
		cfg.Recent = defaultRecent
	}
	m := &Monitor{
		cfg:    cfg,
		reg:    reg,
		now:    time.Now,
		drift:  newDriftDetector(cfg.Drift),
		ring:   make([]BurstRecord, 0, cfg.Recent),
		gauges: make(map[int]bool),
	}
	if reg != nil {
		m.scoreHist = reg.Histogram("spotfi_quality_score",
			"Per-burst localization confidence score in [0,1].",
			ScoreBuckets, nil)
		m.bursts = reg.Counter("spotfi_quality_bursts_total",
			"Bursts scored by the quality monitor.", nil)
		m.low = reg.Counter("spotfi_quality_low_total",
			"Bursts whose confidence score fell below the quality floor.", nil)
		m.breaches = reg.Counter("spotfi_quality_drift_breaches_total",
			"Per-AP drift-baseline breaches across all tracked observables.", nil)
	}
	return m
}

// registerAPHealth registers the spotfi_ap_health gauge for one AP. The
// gauge reads through the monitor at scrape time, so it always reflects the
// current drift state.
func (m *Monitor) registerAPHealth(apID int) {
	if m.reg == nil {
		return
	}
	m.reg.GaugeFunc("spotfi_ap_health",
		"Per-AP estimate health in [0,1]: EWMA confidence discounted by drift breaches.",
		obs.Labels{"ap": strconv.Itoa(apID)},
		func() float64 { return m.APHealth(apID) })
}

// Floor returns the configured SLO threshold.
func (m *Monitor) Floor() float64 {
	if m == nil {
		return 0
	}
	return m.cfg.Floor
}

// ScoreConfig returns the monitor's score configuration (zero value on a
// nil receiver — ScoreBurst then applies the defaults).
func (m *Monitor) ScoreConfig() ScoreConfig {
	if m == nil {
		return ScoreConfig{}
	}
	return m.cfg.Score
}

// APBurstScore is one AP's contribution to a recorded burst.
type APBurstScore struct {
	APID  int     `json:"ap"`
	Score float64 `json:"score"`
}

// BurstRecord is one scored burst in the scoreboard's recent ring.
type BurstRecord struct {
	Time      time.Time      `json:"time"`
	Overall   float64        `json:"overall"`
	Breakdown Breakdown      `json:"breakdown"`
	PerAP     []APBurstScore `json:"per_ap"`
}

// Observe folds one scored burst into the monitor: metrics, drift
// baselines, and the recent ring. No-op on a nil receiver.
func (m *Monitor) Observe(sc Score) {
	if m == nil {
		return
	}
	m.bursts.Inc()
	m.scoreHist.Observe(sc.Overall)
	isLow := m.cfg.Floor > 0 && sc.Overall < m.cfg.Floor
	if isLow {
		m.low.Inc()
	}

	now := m.now()
	rec := BurstRecord{Time: now, Overall: sc.Overall, Breakdown: sc.Breakdown}
	breached := 0
	var fresh []int
	type apBreach struct{ ap, n int }
	var breaches []apBreach
	m.mu.Lock()
	for _, ap := range sc.PerAP {
		n := m.drift.observe(ap, now)
		breached += n
		if n > 0 && m.cfg.OnDriftBreach != nil {
			breaches = append(breaches, apBreach{ap: ap.APID, n: n})
		}
		rec.PerAP = append(rec.PerAP, APBurstScore{APID: ap.APID, Score: ap.Score})
		if !m.gauges[ap.APID] {
			m.gauges[ap.APID] = true
			fresh = append(fresh, ap.APID)
		}
	}
	if len(m.ring) < cap(m.ring) {
		m.ring = append(m.ring, rec)
	} else {
		m.ring[m.next] = rec
	}
	m.next = (m.next + 1) % cap(m.ring)
	m.total++
	if isLow {
		m.lowN++
	}
	m.mu.Unlock()

	// Register outside the monitor lock: registration takes the registry
	// lock, and the gauge closure takes the monitor lock at scrape time.
	for _, id := range fresh {
		m.registerAPHealth(id)
	}
	if breached > 0 {
		m.breaches.Add(uint64(breached))
	}
	for _, b := range breaches {
		m.cfg.OnDriftBreach(b.ap, b.n)
	}
	if m.cfg.OnBurst != nil {
		m.cfg.OnBurst(sc)
	}
}

// APHealth returns the current [0,1] health of one AP (1 when unknown).
// Safe on a nil receiver.
func (m *Monitor) APHealth(apID int) float64 {
	if m == nil {
		return 1
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.drift.health(apID)
}

// Snapshot is a point-in-time view of the quality state — the JSON served
// at /debug/quality.
type Snapshot struct {
	// Floor is the configured SLO threshold.
	Floor float64 `json:"floor"`
	// Bursts is how many bursts have been scored since start.
	Bursts uint64 `json:"bursts"`
	// LowBursts is how many of them scored below the floor.
	LowBursts uint64 `json:"low_bursts"`
	// APs is the per-AP health scoreboard, sorted by AP ID.
	APs []APHealth `json:"aps"`
	// Recent holds the most recent scored bursts, newest first.
	Recent []BurstRecord `json:"recent"`
}

// Snapshot returns the current quality state. Safe on a nil receiver.
func (m *Monitor) Snapshot() Snapshot {
	if m == nil {
		return Snapshot{}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	snap := Snapshot{
		Floor:     m.cfg.Floor,
		Bursts:    m.total,
		LowBursts: m.lowN,
		APs:       m.drift.snapshot(),
	}
	// Unroll the ring newest-first.
	n := len(m.ring)
	snap.Recent = make([]BurstRecord, 0, n)
	for i := 0; i < n; i++ {
		idx := (m.next - 1 - i + n) % n
		snap.Recent = append(snap.Recent, m.ring[idx])
	}
	return snap
}
