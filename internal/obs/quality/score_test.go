package quality

import (
	"math"
	"testing"
)

func cleanAP(id int) APInputs {
	return APInputs{
		APID:        id,
		Margin:      0.85,
		EigenGapDB:  25,
		STOMeanNs:   40,
		STOJitterNs: 3,
		AoAResidRad: 0.02,
		Likelihood:  1,
		Packets:     20,
	}
}

func cleanBurst(nAPs int) BurstInputs {
	in := BurstInputs{Iters: 12, Objective: 0.01}
	for i := 0; i < nAPs; i++ {
		in.APs = append(in.APs, cleanAP(i))
	}
	return in
}

func TestScoreBurstCleanScoresHigh(t *testing.T) {
	sc := ScoreBurst(cleanBurst(4), ScoreConfig{})
	if sc.Overall < 0.7 || sc.Overall > 1 {
		t.Fatalf("clean burst Overall = %.3f, want in [0.7, 1]", sc.Overall)
	}
	if len(sc.PerAP) != 4 {
		t.Fatalf("PerAP = %d entries, want 4", len(sc.PerAP))
	}
	for _, ap := range sc.PerAP {
		if ap.Score < 0.7 {
			t.Fatalf("clean AP %d score = %.3f, want ≥ 0.7", ap.APID, ap.Score)
		}
	}
	b := sc.Breakdown
	for name, c := range map[string]float64{
		"Margin": b.Margin, "EigenGap": b.EigenGap, "STOStability": b.STOStability,
		"Agreement": b.Agreement, "Solver": b.Solver, "APGeometry": b.APGeometry,
	} {
		if c < 0 || c > 1 {
			t.Fatalf("component %s = %.3f out of [0,1]", name, c)
		}
	}
}

func TestScoreBurstDegradedAPScoresLower(t *testing.T) {
	in := cleanBurst(3)
	// AP 0 disagrees hard with the fused location and has a jittery STO
	// fit — the miscalibrated-AP signature.
	in.APs[0].AoAResidRad = 0.35
	in.APs[0].STOJitterNs = 40
	in.APs[0].Margin = 0.2
	sc := ScoreBurst(in, ScoreConfig{})
	clean := ScoreBurst(cleanBurst(3), ScoreConfig{})
	if sc.Overall >= clean.Overall {
		t.Fatalf("degraded burst %.3f not below clean %.3f", sc.Overall, clean.Overall)
	}
	if sc.PerAP[0].Score >= sc.PerAP[1].Score {
		t.Fatalf("degraded AP score %.3f not below clean AP %.3f",
			sc.PerAP[0].Score, sc.PerAP[1].Score)
	}
	if sc.PerAP[0].Score > 0.4 {
		t.Fatalf("degraded AP score = %.3f, want ≤ 0.4", sc.PerAP[0].Score)
	}
}

func TestScoreBurstMoreAPsScoreHigher(t *testing.T) {
	two := ScoreBurst(cleanBurst(2), ScoreConfig{})
	five := ScoreBurst(cleanBurst(5), ScoreConfig{})
	if five.Overall <= two.Overall {
		t.Fatalf("5 APs %.3f not above 2 APs %.3f", five.Overall, two.Overall)
	}
	if two.Breakdown.APGeometry != 0.5 {
		t.Fatalf("APGeometry(2) = %.3f, want 0.5", two.Breakdown.APGeometry)
	}
}

func TestScoreBurstEmptyAndNaN(t *testing.T) {
	if sc := ScoreBurst(BurstInputs{}, ScoreConfig{}); sc.Overall != 0 || sc.PerAP != nil {
		t.Fatalf("empty burst = %+v, want zero Score", sc)
	}

	in := cleanBurst(2)
	// Sanitization disabled: jitter is NaN and the component is skipped.
	in.APs[0].STOJitterNs = math.NaN()
	in.APs[1].STOJitterNs = math.NaN()
	sc := ScoreBurst(in, ScoreConfig{})
	if sc.Breakdown.STOStability != 1 {
		t.Fatalf("STOStability with sanitize off = %.3f, want 1", sc.Breakdown.STOStability)
	}
	if math.IsNaN(sc.Overall) || sc.Overall <= 0 {
		t.Fatalf("Overall = %v, want finite positive", sc.Overall)
	}

	// A NaN residual must not propagate into a NaN score.
	in = cleanBurst(2)
	in.APs[0].AoAResidRad = math.NaN()
	sc = ScoreBurst(in, ScoreConfig{})
	if math.IsNaN(sc.Overall) {
		t.Fatal("NaN residual produced NaN Overall")
	}
}

func TestScoreBurstBounds(t *testing.T) {
	// Garbage inputs must still land in [0,1].
	in := BurstInputs{
		APs: []APInputs{{
			Margin:      -3,
			EigenGapDB:  -10,
			STOJitterNs: 1e9,
			AoAResidRad: math.Pi,
		}},
		Objective: 1e6,
	}
	sc := ScoreBurst(in, ScoreConfig{})
	if sc.Overall < 0 || sc.Overall > 1 || math.IsNaN(sc.Overall) {
		t.Fatalf("Overall = %v, want in [0,1]", sc.Overall)
	}
	if sc.Overall > 0.1 {
		t.Fatalf("garbage burst Overall = %.3f, want ≤ 0.1", sc.Overall)
	}
}

func TestScoreConfigFill(t *testing.T) {
	c := ScoreConfig{}.fill()
	d := DefaultScoreConfig()
	if c != d {
		t.Fatalf("zero config filled to %+v, want %+v", c, d)
	}
	custom := ScoreConfig{AgreeScaleRad: 0.5}.fill()
	if custom.AgreeScaleRad != 0.5 || custom.EigenGapScaleDB != d.EigenGapScaleDB {
		t.Fatalf("partial fill = %+v", custom)
	}
}
