package quality

import (
	"bytes"
	"encoding/json"
	"fmt"
	"html/template"
	"net/http"
	"sort"
	"strconv"
	"time"

	"spotfi/internal/viz"
)

// Handler serves the quality scoreboard — mount it at /debug/quality.
//
//	GET /debug/quality            → JSON Snapshot
//	GET /debug/quality?n=10       → at most 10 recent bursts
//	GET /debug/quality?view=html  → HTML scoreboard with a score CDF
func (m *Monitor) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		snap := m.Snapshot()
		if n, err := strconv.Atoi(r.URL.Query().Get("n")); err == nil && n >= 0 && len(snap.Recent) > n {
			snap.Recent = snap.Recent[:n]
		}
		if r.URL.Query().Get("view") == "html" {
			writeScoreboard(w, snap)
			return
		}
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		enc.SetIndent("", "  ")
		if err := enc.Encode(snap); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		//lint:allow errdrop a failed write to the client has no one left to tell
		_, _ = w.Write(buf.Bytes())
	})
}

// metricRowView is one drift baseline row of the AP table.
type metricRowView struct {
	Name     string
	Mean     string
	Sigma    string
	LastZ    string
	Breaches uint64
}

// apView is one AP row of the scoreboard.
type apView struct {
	APID     int
	Health   string
	Class    string // good / warn / bad
	Score    string
	Bursts   int
	Warmed   bool
	LastSeen string
	Metrics  []metricRowView
}

// burstView is one recent-burst row.
type burstView struct {
	Time    string
	Overall string
	Class   string
	PerAP   string
	Parts   string
}

// boardView is the scoreboard page model.
type boardView struct {
	Floor  string
	Bursts uint64
	Low    uint64
	APs    []apView
	Recent []burstView
	CDF    template.HTML // pre-rendered SVG of recent score CDFs
}

var scoreboardTmpl = template.Must(template.New("scoreboard").Parse(`<!DOCTYPE html>
<html><head><title>spotfi quality</title><style>
body { font: 13px/1.5 monospace; margin: 1.5em; background: #fafafa; color: #222; }
h1 { font-size: 16px; } h2 { font-size: 14px; margin-top: 1.4em; }
table { border-collapse: collapse; background: #fff; }
th, td { border: 1px solid #ddd; padding: .25em .6em; text-align: right; }
th { background: #f0f0f0; } td.l { text-align: left; }
.good { color: #1e8449; font-weight: bold; }
.warn { color: #b7950b; font-weight: bold; }
.bad  { color: #c0392b; font-weight: bold; }
.dim  { color: #888; }
</style></head><body>
<h1>spotfi estimate quality</h1>
<p>floor {{.Floor}} · {{.Bursts}} bursts scored · {{.Low}} below floor</p>
<h2>AP health</h2>
{{if not .APs}}<p class="dim">no bursts scored yet</p>{{else}}
<table><tr><th>ap</th><th>health</th><th>score</th><th>bursts</th><th>drift baselines (mean ± σ, last z, breaches)</th></tr>
{{range .APs}}<tr>
<td>{{.APID}}</td><td class="{{.Class}}">{{.Health}}</td><td>{{.Score}}</td>
<td>{{.Bursts}}{{if not .Warmed}} <span class="dim">(warming)</span>{{end}}</td>
<td class="l">{{range .Metrics}}{{.Name}}: {{.Mean}} ± {{.Sigma}} (z {{.LastZ}}, breaches {{.Breaches}})<br>{{end}}</td>
</tr>{{end}}</table>{{end}}
{{if .CDF}}<h2>score distribution (recent bursts)</h2>
{{.CDF}}{{end}}
<h2>recent bursts</h2>
{{if not .Recent}}<p class="dim">none</p>{{else}}
<table><tr><th>time</th><th>score</th><th>per-AP</th><th>components</th></tr>
{{range .Recent}}<tr>
<td class="l">{{.Time}}</td><td class="{{.Class}}">{{.Overall}}</td>
<td class="l">{{.PerAP}}</td><td class="l dim">{{.Parts}}</td>
</tr>{{end}}</table>{{end}}
</body></html>
`))

func writeScoreboard(w http.ResponseWriter, snap Snapshot) {
	bv := boardView{
		Floor:  fmt.Sprintf("%.2f", snap.Floor),
		Bursts: snap.Bursts,
		Low:    snap.LowBursts,
	}
	for _, ap := range snap.APs {
		av := apView{
			APID:     ap.APID,
			Health:   fmt.Sprintf("%.3f", ap.Health),
			Class:    healthClass(ap.Health),
			Score:    fmt.Sprintf("%.3f", ap.Score),
			Bursts:   ap.Bursts,
			Warmed:   ap.Warmed,
			LastSeen: ap.LastSeen.Format(time.RFC3339),
		}
		for _, name := range DriftMetrics() {
			ms, ok := ap.Metrics[name]
			if !ok {
				continue
			}
			av.Metrics = append(av.Metrics, metricRowView{
				Name:     name,
				Mean:     fmt.Sprintf("%.4g", ms.Mean),
				Sigma:    fmt.Sprintf("%.3g", ms.Sigma),
				LastZ:    fmt.Sprintf("%+.2f", ms.LastZ),
				Breaches: ms.Breaches,
			})
		}
		bv.APs = append(bv.APs, av)
	}
	for _, rec := range snap.Recent {
		perAP := ""
		for i, ap := range rec.PerAP {
			if i > 0 {
				perAP += " "
			}
			perAP += fmt.Sprintf("ap%d=%.2f", ap.APID, ap.Score)
		}
		b := rec.Breakdown
		bv.Recent = append(bv.Recent, burstView{
			Time:    rec.Time.Format(time.RFC3339),
			Overall: fmt.Sprintf("%.3f", rec.Overall),
			Class:   healthClass(rec.Overall),
			PerAP:   perAP,
			Parts: fmt.Sprintf("margin=%.2f gap=%.2f sto=%.2f agree=%.2f solver=%.2f aps=%.2f",
				b.Margin, b.EigenGap, b.STOStability, b.Agreement, b.Solver, b.APGeometry),
		})
	}
	bv.CDF = scoreCDF(snap)

	// Render to a buffer first so a template error still produces a clean
	// 500 instead of trailing a 200.
	var buf bytes.Buffer
	if err := scoreboardTmpl.Execute(&buf, bv); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	//lint:allow errdrop a failed write to the client has no one left to tell
	_, _ = w.Write(buf.Bytes())
}

func healthClass(h float64) string {
	switch {
	case h >= 0.7:
		return "good"
	case h >= 0.4:
		return "warn"
	}
	return "bad"
}

// scoreCDF renders per-AP and overall score CDFs over the recent ring as an
// inline SVG ("" when there is nothing to plot).
func scoreCDF(snap Snapshot) template.HTML {
	if len(snap.Recent) == 0 {
		return ""
	}
	overall := make([]float64, 0, len(snap.Recent))
	byAP := make(map[int][]float64)
	for _, rec := range snap.Recent {
		overall = append(overall, rec.Overall)
		for _, ap := range rec.PerAP {
			byAP[ap.APID] = append(byAP[ap.APID], ap.Score)
		}
	}
	ids := make([]int, 0, len(byAP))
	for id := range byAP {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	labels := []string{"overall"}
	samples := [][]float64{overall}
	for _, id := range ids {
		labels = append(labels, "ap "+strconv.Itoa(id))
		samples = append(samples, byAP[id])
	}
	p, err := viz.CDFPlot("confidence score CDF", "score", labels, samples)
	if err != nil {
		return ""
	}
	p.Width, p.Height = 560, 300
	return template.HTML(p.SVG())
}
