package quality

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"spotfi/internal/obs"
)

func scored(overall float64, aps ...APScore) Score {
	return Score{Overall: overall, PerAP: aps}
}

func TestMonitorNilSafe(t *testing.T) {
	var m *Monitor
	m.Observe(scored(0.5))
	if h := m.APHealth(1); h != 1 {
		t.Fatalf("nil monitor APHealth = %v", h)
	}
	if s := m.Snapshot(); s.Bursts != 0 {
		t.Fatalf("nil monitor Snapshot = %+v", s)
	}
	if f := m.Floor(); f != 0 {
		t.Fatalf("nil monitor Floor = %v", f)
	}
	if c := m.ScoreConfig(); c != (ScoreConfig{}) {
		t.Fatalf("nil monitor ScoreConfig = %+v", c)
	}
}

func TestMonitorMetricsAndFloor(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMonitor(reg, Config{Floor: 0.5})
	m.Observe(scored(0.9, apScore(1, 0.02, 40, 0.8, 0.9)))
	m.Observe(scored(0.2, apScore(1, 0.02, 40, 0.8, 0.2)))
	m.Observe(scored(0.8, apScore(2, 0.02, 40, 0.8, 0.8)))

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"spotfi_quality_score_count 3",
		"spotfi_quality_bursts_total 3",
		"spotfi_quality_low_total 1",
		`spotfi_ap_health{ap="1"}`,
		`spotfi_ap_health{ap="2"}`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}

	snap := m.Snapshot()
	if snap.Bursts != 3 || snap.LowBursts != 1 || snap.Floor != 0.5 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if len(snap.APs) != 2 {
		t.Fatalf("APs = %d, want 2", len(snap.APs))
	}
	if len(snap.Recent) != 3 || snap.Recent[0].Overall != 0.8 {
		t.Fatalf("recent (newest first) = %+v", snap.Recent)
	}
}

func TestMonitorNilRegistry(t *testing.T) {
	m := NewMonitor(nil, Config{})
	for i := 0; i < 10; i++ {
		m.Observe(scored(0.1, apScore(1, 0.3, 40, 0.2, 0.1)))
	}
	snap := m.Snapshot()
	if snap.Bursts != 10 || snap.LowBursts != 10 {
		t.Fatalf("registry-less monitor snapshot = %+v", snap)
	}
	if h := m.APHealth(1); h > 0.5 {
		t.Fatalf("bad AP health = %.3f, want low", h)
	}
}

func TestMonitorRingWraps(t *testing.T) {
	m := NewMonitor(nil, Config{Recent: 4})
	for i := 0; i < 10; i++ {
		m.Observe(scored(float64(i) / 10))
	}
	snap := m.Snapshot()
	if len(snap.Recent) != 4 {
		t.Fatalf("ring = %d entries, want 4", len(snap.Recent))
	}
	if snap.Recent[0].Overall != 0.9 || snap.Recent[3].Overall != 0.6 {
		t.Fatalf("ring order wrong: %+v", snap.Recent)
	}
}

func TestMonitorHandlerJSONAndHTML(t *testing.T) {
	m := NewMonitor(nil, Config{})
	m.now = func() time.Time { return time.Unix(1700000000, 0) }
	for i := 0; i < 8; i++ {
		m.Observe(scored(0.85,
			apScore(1, 0.02, 40, 0.8, 0.9),
			apScore(2, 0.25, 80, 0.3, 0.2)))
	}

	rr := httptest.NewRecorder()
	m.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/quality", nil))
	if rr.Code != 200 {
		t.Fatalf("JSON status = %d", rr.Code)
	}
	var snap Snapshot
	if err := json.Unmarshal(rr.Body.Bytes(), &snap); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if snap.Bursts != 8 || len(snap.APs) != 2 {
		t.Fatalf("JSON snapshot = %+v", snap)
	}

	rr = httptest.NewRecorder()
	m.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/quality?n=2", nil))
	if err := json.Unmarshal(rr.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Recent) != 2 {
		t.Fatalf("n=2 returned %d recent bursts", len(snap.Recent))
	}

	rr = httptest.NewRecorder()
	m.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/quality?view=html", nil))
	if rr.Code != 200 {
		t.Fatalf("HTML status = %d", rr.Code)
	}
	body := rr.Body.String()
	for _, want := range []string{"spotfi estimate quality", "AP health", "<svg", "ap 1", "ap 2"} {
		if !strings.Contains(body, want) {
			t.Fatalf("HTML missing %q", want)
		}
	}
}

func TestMonitorHandlerEmpty(t *testing.T) {
	m := NewMonitor(nil, Config{})
	rr := httptest.NewRecorder()
	m.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/quality?view=html", nil))
	if rr.Code != 200 {
		t.Fatalf("empty HTML status = %d", rr.Code)
	}
	if !strings.Contains(rr.Body.String(), "no bursts scored yet") {
		t.Fatal("empty scoreboard missing placeholder")
	}
}
