// Package quality closes the gap between "the pipeline is running" and
// "the pipeline is right": it folds the DSP internals the paper treats as
// diagnostics — the Eq. 8 cluster-likelihood margin, the signal/noise
// eigen-subspace gap, the Algorithm 1 sanitization-slope stability, the
// Eq. 9 solver residual, and cross-AP AoA agreement — into a single [0,1]
// confidence score attached to every localization fix, tracks per-AP
// rolling baselines of those internals to detect calibration drift, and
// serves the whole picture as a scoreboard at /debug/quality.
//
// The design follows ArrayTrack's observation (Xiong & Jamieson, NSDI
// 2013) that multipath peaks surviving filtering must be weighted by a
// reliability score, not trusted equally: an AP with a drifted calibration
// or a degraded channel otherwise serves confidently wrong locations
// invisibly.
package quality

import "math"

// APInputs are the per-AP diagnostics one burst contributes to scoring —
// the quantities PR 4's trace attributes already surface, now folded into
// a score instead of only logged.
type APInputs struct {
	// APID identifies the access point.
	APID int
	// Margin is the top-two Eq. 8 likelihood margin 1 − l₂/l₁ ∈ [0,1]:
	// how decisively the direct-path cluster beat the runner-up. 1 when
	// only one candidate existed.
	Margin float64
	// EigenGapDB is the burst-mean signal/noise eigen-subspace gap in dB.
	// A small gap means the subspace split — and every downstream
	// estimate — is fragile.
	EigenGapDB float64
	// STOMeanNs is the burst-mean Algorithm 1 sanitization slope (the
	// fitted STO) in nanoseconds. Its packet-to-packet spread is
	// STOJitterNs; its burst-to-burst drift feeds the drift detector.
	STOMeanNs float64
	// STOJitterNs is the packet-to-packet standard deviation of the
	// sanitization slope within the burst, in nanoseconds. NaN when
	// sanitization was disabled (the component is then skipped).
	STOJitterNs float64
	// AoAResidRad is the AP's direct-path AoA residual against the fused
	// location, in radians — cross-AP agreement, per AP.
	AoAResidRad float64
	// Likelihood is the selected candidate's Eq. 8 likelihood.
	Likelihood float64
	// Packets is how many packets survived estimation for this AP.
	Packets int
}

// BurstInputs are the diagnostics of one localized burst.
type BurstInputs struct {
	// APs holds the per-AP inputs of every AP that contributed.
	APs []APInputs
	// Iters is the total solver iteration count (locate.Result.Iters).
	Iters int
	// Objective is the final Eq. 9 objective value at the solution.
	Objective float64
}

// ScoreConfig holds the scales and weights of the confidence score. Scales
// are the "half-quality" points of each squashing function; weights set
// each component's share of the geometric mean. The zero value selects
// DefaultScoreConfig.
type ScoreConfig struct {
	// EigenGapScaleDB is the subspace gap at which the eigen component
	// reaches 1−1/e ≈ 0.63.
	EigenGapScaleDB float64
	// STOJitterScaleNs is the sanitization-slope jitter at which the STO
	// component falls to 1/e.
	STOJitterScaleNs float64
	// AgreeScaleRad is the per-AP AoA residual at which the agreement
	// component falls to 1/e.
	AgreeScaleRad float64
	// ObjectiveScale is the Eq. 9 objective at which the solver component
	// falls to 1/2.
	ObjectiveScale float64
	// Weights of the components in the geometric mean, in the order
	// margin, eigen gap, STO stability, agreement, solver, AP geometry.
	WMargin, WEigenGap, WSTO, WAgree, WSolver, WAPs float64
}

// DefaultScoreConfig returns the calibrated default scales. They were
// chosen on the simulated testbed so that clean office bursts score ≈0.8+
// while a 15°-miscalibrated AP drags its components under 0.3.
func DefaultScoreConfig() ScoreConfig {
	return ScoreConfig{
		EigenGapScaleDB:  6,
		STOJitterScaleNs: 15,
		AgreeScaleRad:    0.12,
		ObjectiveScale:   0.08,
		WMargin:          1,
		WEigenGap:        1,
		WSTO:             1,
		WAgree:           2,
		WSolver:          1,
		WAPs:             1,
	}
}

// fill replaces zero fields with the defaults, so a zero ScoreConfig is
// usable.
func (c ScoreConfig) fill() ScoreConfig {
	d := DefaultScoreConfig()
	if c.EigenGapScaleDB <= 0 {
		c.EigenGapScaleDB = d.EigenGapScaleDB
	}
	if c.STOJitterScaleNs <= 0 {
		c.STOJitterScaleNs = d.STOJitterScaleNs
	}
	if c.AgreeScaleRad <= 0 {
		c.AgreeScaleRad = d.AgreeScaleRad
	}
	if c.ObjectiveScale <= 0 {
		c.ObjectiveScale = d.ObjectiveScale
	}
	if c.WMargin+c.WEigenGap+c.WSTO+c.WAgree+c.WSolver+c.WAPs <= 0 {
		c.WMargin, c.WEigenGap, c.WSTO = d.WMargin, d.WEigenGap, d.WSTO
		c.WAgree, c.WSolver, c.WAPs = d.WAgree, d.WSolver, d.WAPs
	}
	return c
}

// Breakdown is the per-component decomposition of a confidence score.
// Every component is in [0,1]; Overall is their weighted geometric mean.
// The struct is comparable (all plain floats) so Location values stay
// comparable.
type Breakdown struct {
	// Margin reflects how decisively Eq. 8 separated the direct path from
	// the runner-up cluster, averaged over APs.
	Margin float64
	// EigenGap reflects the signal/noise subspace separation.
	EigenGap float64
	// STOStability reflects the packet-to-packet stability of the
	// sanitization slope (1 when sanitization was disabled).
	STOStability float64
	// Agreement reflects cross-AP AoA consistency at the fused location.
	Agreement float64
	// Solver reflects the Eq. 9 residual at the solution.
	Solver float64
	// APGeometry reflects how many APs contributed (2 is the observable
	// minimum and scores 0.5; each further AP halves the deficit).
	APGeometry float64
}

// APScore is the per-AP slice of a burst's confidence: the components that
// are attributable to a single AP, combined. It is what the drift detector
// and the scoreboard track per AP.
type APScore struct {
	APID int
	// Score combines the AP's margin, eigen gap, STO stability, and AoA
	// agreement into one [0,1] number.
	Score float64
	// Inputs echoes the raw diagnostics behind the score.
	Inputs APInputs
}

// Score is a scored burst: the overall confidence, its component
// breakdown, and the per-AP attribution.
type Score struct {
	Overall   float64
	Breakdown Breakdown
	PerAP     []APScore
}

// ScoreBurst folds one burst's diagnostics into a confidence score.
// Components are squashed into [0,1] individually and combined as a
// weighted geometric mean, so one collapsed component drags the overall
// score down even when the others look healthy.
func ScoreBurst(in BurstInputs, cfg ScoreConfig) Score {
	cfg = cfg.fill()
	var b Breakdown
	n := len(in.APs)
	if n == 0 {
		return Score{}
	}

	per := make([]APScore, n)
	var sumMargin, sumGap, sumSTO, sumAgree float64
	nSTO := 0
	for i, ap := range in.APs {
		m := clamp01(ap.Margin)
		gap := 1 - math.Exp(-math.Max(ap.EigenGapDB, 0)/cfg.EigenGapScaleDB)
		sto := 1.0
		if !math.IsNaN(ap.STOJitterNs) {
			r := ap.STOJitterNs / cfg.STOJitterScaleNs
			sto = math.Exp(-r * r)
			sumSTO += sto
			nSTO++
		}
		ra := ap.AoAResidRad / cfg.AgreeScaleRad
		agree := math.Exp(-ra * ra)

		sumMargin += m
		sumGap += gap
		sumAgree += agree
		per[i] = APScore{
			APID:   ap.APID,
			Score:  geomean4(m, gap, sto, agree),
			Inputs: ap,
		}
	}
	fn := float64(n)
	b.Margin = sumMargin / fn
	b.EigenGap = sumGap / fn
	b.STOStability = 1
	if nSTO > 0 {
		b.STOStability = sumSTO / float64(nSTO)
	}
	b.Agreement = sumAgree / fn
	b.Solver = 1 / (1 + math.Max(in.Objective, 0)/cfg.ObjectiveScale)
	// 2 APs (the observable minimum) → 0.5; each further AP halves the
	// remaining deficit: 3 → 0.75, 4 → 0.875, 6 → 0.969.
	b.APGeometry = 1 - math.Pow(2, -float64(n-1))

	logSum := cfg.WMargin*safeLog(b.Margin) +
		cfg.WEigenGap*safeLog(b.EigenGap) +
		cfg.WSTO*safeLog(b.STOStability) +
		cfg.WAgree*safeLog(b.Agreement) +
		cfg.WSolver*safeLog(b.Solver) +
		cfg.WAPs*safeLog(b.APGeometry)
	wSum := cfg.WMargin + cfg.WEigenGap + cfg.WSTO + cfg.WAgree + cfg.WSolver + cfg.WAPs
	overall := math.Exp(logSum / wSum)
	return Score{Overall: clamp01(overall), Breakdown: b, PerAP: per}
}

// geomean4 is the unweighted geometric mean of four [0,1] components.
func geomean4(a, b, c, d float64) float64 {
	return clamp01(math.Exp((safeLog(a) + safeLog(b) + safeLog(c) + safeLog(d)) / 4))
}

// scoreFloor bounds components away from zero so the geometric mean stays
// finite: one dead component caps the overall score near zero without
// annihilating the contribution of the others.
const scoreFloor = 1e-6

func safeLog(x float64) float64 {
	if math.IsNaN(x) || x < scoreFloor {
		x = scoreFloor
	}
	if x > 1 {
		x = 1
	}
	return math.Log(x)
}

func clamp01(x float64) float64 {
	switch {
	case math.IsNaN(x), x < 0:
		return 0
	case x > 1:
		return 1
	}
	return x
}
