package quality

import (
	"math"
	"testing"
	"time"
)

func apScore(id int, resid, sto, margin, score float64) APScore {
	return APScore{
		APID:  id,
		Score: score,
		Inputs: APInputs{
			APID:        id,
			AoAResidRad: resid,
			STOMeanNs:   sto,
			Margin:      margin,
		},
	}
}

func TestDriftStableBaselineNoBreaches(t *testing.T) {
	d := newDriftDetector(DriftConfig{})
	now := time.Unix(0, 0)
	for i := 0; i < 100; i++ {
		// Mild deterministic wobble around a stable operating point.
		wob := 0.001 * math.Sin(float64(i))
		if n := d.observe(apScore(1, 0.02+wob, 40+wob*100, 0.8+wob, 0.85), now); n != 0 {
			t.Fatalf("burst %d: %d breaches on a stable AP", i, n)
		}
		now = now.Add(time.Second)
	}
	if h := d.health(1); h < 0.8 {
		t.Fatalf("stable AP health = %.3f, want ≥ 0.8", h)
	}
}

func TestDriftStepChangeBreaches(t *testing.T) {
	d := newDriftDetector(DriftConfig{})
	now := time.Unix(0, 0)
	for i := 0; i < 50; i++ {
		wob := 0.001 * math.Sin(float64(i))
		d.observe(apScore(1, 0.02+wob, 40+wob*100, 0.8+wob, 0.85), now)
		now = now.Add(time.Second)
	}
	before := d.health(1)
	// The sanitization slope jumps 60 ns — a cable swap / clock step.
	breaches := 0
	for i := 0; i < 10; i++ {
		breaches += d.observe(apScore(1, 0.02, 100, 0.8, 0.85), now)
		now = now.Add(time.Second)
	}
	if breaches == 0 {
		t.Fatal("60 ns STO step produced no baseline breaches")
	}
	if after := d.health(1); after >= before {
		t.Fatalf("health did not drop on drift: before %.3f, after %.3f", before, after)
	}
	snap := d.snapshot()
	if len(snap) != 1 || snap[0].Metrics[MetricSTOSlope].Breaches == 0 {
		t.Fatalf("snapshot missing STO breaches: %+v", snap)
	}
}

func TestDriftWarmupSuppressesBreaches(t *testing.T) {
	d := newDriftDetector(DriftConfig{Warmup: 5})
	now := time.Unix(0, 0)
	// Wildly varying values inside the warmup window must not breach.
	for i := 0; i < 5; i++ {
		if n := d.observe(apScore(1, float64(i)*0.3, float64(i*50), 0.1*float64(i), 0.5), now); n != 0 {
			t.Fatalf("breach during warmup burst %d", i)
		}
	}
}

func TestDriftChronicallyBadAPHasLowHealth(t *testing.T) {
	// An AP that is bad from burst one never breaches its own (bad)
	// baseline — health must still be low because it folds in the
	// absolute per-AP confidence score.
	d := newDriftDetector(DriftConfig{})
	now := time.Unix(0, 0)
	for i := 0; i < 50; i++ {
		d.observe(apScore(1, 0.4, 40, 0.1, 0.05), now)
		now = now.Add(time.Second)
	}
	if h := d.health(1); h > 0.2 {
		t.Fatalf("chronically bad AP health = %.3f, want ≤ 0.2", h)
	}
}

func TestDriftUnknownAPHealthy(t *testing.T) {
	d := newDriftDetector(DriftConfig{})
	if h := d.health(99); h != 1 {
		t.Fatalf("unknown AP health = %.3f, want 1", h)
	}
}

func TestDriftNaNObservableSkipped(t *testing.T) {
	d := newDriftDetector(DriftConfig{})
	now := time.Unix(0, 0)
	ap := apScore(1, 0.02, math.NaN(), 0.8, 0.85) // sanitize disabled
	for i := 0; i < 20; i++ {
		d.observe(ap, now)
	}
	snap := d.snapshot()
	if _, ok := snap[0].Metrics[MetricSTOSlope]; ok {
		t.Fatal("NaN STO slope grew a baseline")
	}
	if _, ok := snap[0].Metrics[MetricAoAResid]; !ok {
		t.Fatal("finite AoA residual baseline missing")
	}
}

func TestDriftSnapshotSorted(t *testing.T) {
	d := newDriftDetector(DriftConfig{})
	now := time.Unix(0, 0)
	for _, id := range []int{7, 2, 5} {
		d.observe(apScore(id, 0.02, 40, 0.8, 0.85), now)
	}
	snap := d.snapshot()
	if len(snap) != 3 || snap[0].APID != 2 || snap[1].APID != 5 || snap[2].APID != 7 {
		t.Fatalf("snapshot not sorted by AP ID: %+v", snap)
	}
}

func TestEWMAConverges(t *testing.T) {
	var e ewma
	for i := 0; i < 200; i++ {
		e.observe(10, 0.2, 0)
	}
	if math.Abs(e.mean-10) > 1e-9 {
		t.Fatalf("EWMA mean = %v, want 10", e.mean)
	}
	if e.varv > 1e-9 {
		t.Fatalf("EWMA variance on constant input = %v, want ~0", e.varv)
	}
	// MinSigma floors the denominator so the constant series does not
	// turn an epsilon step into an infinite z.
	z := e.observe(10.5, 0.2, 1)
	if math.Abs(z-0.5) > 1e-9 {
		t.Fatalf("z with floored sigma = %v, want 0.5", z)
	}
}
