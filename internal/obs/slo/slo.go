package slo

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"spotfi/internal/obs"
)

// Source reads the cumulative good/total event counts backing an
// objective. Counts must be monotone non-decreasing; the Tracker
// differences consecutive reads to get per-window counts.
type Source func() (good, total uint64)

// Objective is one SLO: a target fraction of events that must be good.
type Objective struct {
	// Name labels the objective in metrics and on /debug/slo
	// (e.g. "fix_latency", "admit_shed").
	Name string
	// Help is a one-line human description for the status page.
	Help string
	// Target is the required good fraction, in (0,1) — e.g. 0.99 means
	// at most 1% of events may be bad.
	Target float64
	// Source reads the cumulative good/total counts.
	Source Source
	// Hist, when non-nil, supplies cumulative bucket snapshots so the
	// status page and gauges can report windowed latency quantiles.
	Hist *obs.Histogram
	// Bound is informational: the latency bound (seconds) that defines a
	// good event for latency objectives. Zero for ratio objectives.
	Bound float64
}

// LatencyObjective builds an objective over an obs.Histogram: an
// observation is good when it is ≤ boundSeconds. Pick a bound that is a
// bucket boundary of h — CountAtOrBelow snaps down otherwise.
func LatencyObjective(name, help string, h *obs.Histogram, boundSeconds, target float64) Objective {
	return Objective{
		Name:   name,
		Help:   help,
		Target: target,
		Bound:  boundSeconds,
		Hist:   h,
		Source: func() (uint64, uint64) {
			// Read total first: a concurrent Observe between the two
			// reads then inflates good, which the clamp below absorbs,
			// rather than inflating bad and flickering the burn rate.
			total := h.Count()
			good := h.CountAtOrBelow(boundSeconds)
			if good > total {
				good = total
			}
			return good, total
		},
	}
}

// RatioObjective builds an objective over an arbitrary good/total counter
// pair, e.g. delivered vs delivered+shed for the admission queue.
func RatioObjective(name, help string, target float64, src Source) Objective {
	return Objective{Name: name, Help: help, Target: target, Source: src}
}

// Config parameterizes a Tracker. Zero values take the defaults noted on
// each field.
type Config struct {
	// FastWindow is the short burn-rate window (default 5m).
	FastWindow time.Duration
	// SlowWindow is the long burn-rate window (default 1h).
	SlowWindow time.Duration
	// Tick is how often sources are sampled into the history ring
	// (default 10s). Window boundaries resolve no finer than this.
	Tick time.Duration
	// BurnThreshold is the burn rate both windows must exceed for an
	// objective to count as burning (default 6 — at that rate a 1h
	// window consumes 6× its share of a 30-day error budget).
	BurnThreshold float64
	// Now overrides the clock; for tests. Defaults to time.Now.
	Now func() time.Time
	// OnBurn, when non-nil, observes burning-state transitions: it fires
	// (outside the tracker lock) with burning=true when both of an
	// objective's windows start exceeding BurnThreshold at a Sample tick,
	// and with burning=false when they stop. The flight recorder hangs
	// its slo-burn capture trigger here. Transitions are evaluated on the
	// sampling tick, so detection latency is bounded by Tick.
	OnBurn func(objective string, burning bool)
}

func (c Config) withDefaults() Config {
	if c.FastWindow <= 0 {
		c.FastWindow = 5 * time.Minute
	}
	if c.SlowWindow <= 0 {
		c.SlowWindow = time.Hour
	}
	if c.Tick <= 0 {
		c.Tick = 10 * time.Second
	}
	if c.BurnThreshold <= 0 {
		c.BurnThreshold = 6
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// sample is one point-in-time read of an objective's sources.
type sample struct {
	t           time.Time
	good, total uint64
	cum         []uint64 // histogram cumulative snapshot; nil without Hist
}

// tracked pairs an objective with its sample history (oldest first,
// pruned to just beyond SlowWindow).
type tracked struct {
	obj     Objective
	samples []sample
	// burning is the OnBurn hook's edge-detection state, updated on the
	// sampling tick.
	burning bool
}

// Tracker samples a set of objectives and reports multi-window burn
// rates. Add objectives first, then Start the sampling loop (or drive
// Sample manually, as tests and one-shot tools do).
type Tracker struct {
	cfg Config

	mu   sync.Mutex
	objs []*tracked
}

// New returns a Tracker with the given config (zero fields defaulted).
func New(cfg Config) *Tracker {
	return &Tracker{cfg: cfg.withDefaults()}
}

// Add registers an objective and takes its baseline sample, so early
// windows measure "since Add" rather than inventing history. Panics on a
// malformed objective — same contract as registering a bad metric.
func (t *Tracker) Add(obj Objective) {
	if obj.Name == "" || obj.Source == nil {
		panic("slo: objective needs a name and a source")
	}
	if !(obj.Target > 0 && obj.Target < 1) {
		panic(fmt.Sprintf("slo: objective %q target %v outside (0,1)", obj.Name, obj.Target))
	}
	now := t.cfg.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	tr := &tracked{obj: obj}
	tr.samples = append(tr.samples, takeSample(obj, now))
	t.objs = append(t.objs, tr)
}

// takeSample reads an objective's sources once.
func takeSample(obj Objective, now time.Time) sample {
	good, total := obj.Source()
	s := sample{t: now, good: good, total: total}
	if obj.Hist != nil {
		s.cum = obj.Hist.Cumulative()
	}
	return s
}

// Sample reads every objective's sources into the history ring. Called
// on the tick by Start; exported so tests (and one-shot tools) can drive
// the clock themselves.
func (t *Tracker) Sample() {
	now := t.cfg.Now()
	cutoff := now.Add(-t.cfg.SlowWindow - 2*t.cfg.Tick)
	type flip struct {
		name    string
		burning bool
	}
	var flips []flip
	t.mu.Lock()
	for _, tr := range t.objs {
		live := takeSample(tr.obj, now)
		tr.samples = append(tr.samples, live)
		// Prune, but always keep one sample at or before the cutoff so
		// the slow window has a boundary to difference against.
		idx := 0
		for i, s := range tr.samples {
			if !s.t.After(cutoff) {
				idx = i
			} else {
				break
			}
		}
		if idx > 0 {
			tr.samples = append(tr.samples[:0], tr.samples[idx:]...)
		}
		if t.cfg.OnBurn != nil {
			burning := true
			for _, w := range []time.Duration{t.cfg.FastWindow, t.cfg.SlowWindow} {
				if windowStatus(tr, live, w, now).BurnRate < t.cfg.BurnThreshold {
					burning = false
					break
				}
			}
			if burning != tr.burning {
				tr.burning = burning
				flips = append(flips, flip{name: tr.obj.Name, burning: burning})
			}
		}
	}
	t.mu.Unlock()
	// Hooks run outside the lock, like every other hook in this codebase:
	// OnBurn may call Status() or trigger a recorder dump.
	for _, f := range flips {
		t.cfg.OnBurn(f.name, f.burning)
	}
}

// Start launches the sampling loop and returns a stop function that
// blocks until the loop exits; safe to call more than once.
func (t *Tracker) Start() (stop func()) {
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	//lint:allow gospawn one sampling loop per tracker, WaitGroup-joined by the returned stop func
	go func() {
		defer wg.Done()
		tick := time.NewTicker(t.cfg.Tick)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				t.Sample()
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() { close(done) })
		wg.Wait()
	}
}

// WindowStatus is one objective's numbers over one window.
type WindowStatus struct {
	Window      string  `json:"window"`
	Good        uint64  `json:"good"`
	Total       uint64  `json:"total"`
	BadFraction float64 `json:"bad_fraction"`
	// BurnRate is BadFraction / (1 − Target): 1.0 means the error budget
	// drains exactly at the sustainable rate, N means N× too fast.
	BurnRate float64 `json:"burn_rate"`
	// Latency quantiles over the window, present for objectives with a
	// histogram source.
	P50 float64 `json:"p50_seconds,omitempty"`
	P95 float64 `json:"p95_seconds,omitempty"`
	P99 float64 `json:"p99_seconds,omitempty"`
}

// ObjectiveStatus is one objective's full status.
type ObjectiveStatus struct {
	Name    string         `json:"name"`
	Help    string         `json:"help,omitempty"`
	Target  float64        `json:"target"`
	Bound   float64        `json:"bound_seconds,omitempty"`
	Burning bool           `json:"burning"`
	Windows []WindowStatus `json:"windows"`
}

// Status is the full tracker state, as served on /debug/slo.
type Status struct {
	Time          time.Time         `json:"time"`
	BurnThreshold float64           `json:"burn_threshold"`
	Burning       bool              `json:"burning"`
	Objectives    []ObjectiveStatus `json:"objectives"`
}

// Status reports every objective over both windows. The newest point is
// a live read of the sources (not the last tick), so the page and gauges
// are current even between ticks.
func (t *Tracker) Status() Status {
	now := t.cfg.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	st := Status{Time: now, BurnThreshold: t.cfg.BurnThreshold}
	for _, tr := range t.objs {
		live := takeSample(tr.obj, now)
		os := ObjectiveStatus{
			Name:   tr.obj.Name,
			Help:   tr.obj.Help,
			Target: tr.obj.Target,
			Bound:  tr.obj.Bound,
		}
		for _, w := range []time.Duration{t.cfg.FastWindow, t.cfg.SlowWindow} {
			os.Windows = append(os.Windows, windowStatus(tr, live, w, now))
		}
		burning := true
		for _, ws := range os.Windows {
			if ws.BurnRate < t.cfg.BurnThreshold {
				burning = false
			}
		}
		os.Burning = burning
		if burning {
			st.Burning = true
		}
		st.Objectives = append(st.Objectives, os)
	}
	return st
}

// windowStatus differences the live sample against the newest stored
// sample old enough to bound the window (falling back to the oldest —
// "since Add" — when history is shorter than the window).
func windowStatus(tr *tracked, live sample, w time.Duration, now time.Time) WindowStatus {
	base := tr.samples[0]
	cutoff := now.Add(-w)
	for _, s := range tr.samples {
		if s.t.After(cutoff) {
			break
		}
		base = s
	}
	ws := WindowStatus{Window: windowName(w)}
	if live.total > base.total {
		ws.Total = live.total - base.total
	}
	if live.good > base.good {
		ws.Good = live.good - base.good
	}
	if ws.Good > ws.Total {
		ws.Good = ws.Total
	}
	if ws.Total > 0 {
		ws.BadFraction = float64(ws.Total-ws.Good) / float64(ws.Total)
		ws.BurnRate = ws.BadFraction / (1 - tr.obj.Target)
	}
	if live.cum != nil {
		d := FromCumulative(tr.obj.Hist.Bounds(), base.cum, live.cum)
		if d.Count() > 0 {
			ws.P50 = d.Quantile(0.50)
			ws.P95 = d.Quantile(0.95)
			ws.P99 = d.Quantile(0.99)
		}
	}
	return ws
}

// windowName renders a duration the way humans write alert windows:
// 5m0s → "5m", 1h0m0s → "1h".
func windowName(d time.Duration) string {
	s := d.String()
	// Strip only zero-valued trailing components ("5m0s" → "5m",
	// "1h0m0s" → "1h"); a bare "30s" or "1m30s" must keep its tail.
	if t := strings.TrimSuffix(s, "0s"); t != s && strings.HasSuffix(t, "m") {
		s = t
	}
	if t := strings.TrimSuffix(s, "0m"); t != s && strings.HasSuffix(t, "h") {
		s = t
	}
	return s
}

// objectiveStatus recomputes one objective's status for a metric scrape.
func (t *Tracker) objectiveStatus(tr *tracked) ObjectiveStatus {
	now := t.cfg.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	live := takeSample(tr.obj, now)
	os := ObjectiveStatus{Name: tr.obj.Name, Target: tr.obj.Target}
	for _, w := range []time.Duration{t.cfg.FastWindow, t.cfg.SlowWindow} {
		os.Windows = append(os.Windows, windowStatus(tr, live, w, now))
	}
	burning := true
	for _, ws := range os.Windows {
		if ws.BurnRate < t.cfg.BurnThreshold {
			burning = false
		}
	}
	os.Burning = burning
	return os
}

// Register exports the tracker as spotfi_slo_* gauges: per-objective
// target and burning flag, and per-(objective, window) burn rate and bad
// fraction. Values are recomputed on scrape.
func (t *Tracker) Register(reg *obs.Registry) {
	t.mu.Lock()
	objs := append([]*tracked(nil), t.objs...)
	t.mu.Unlock()
	windows := []time.Duration{t.cfg.FastWindow, t.cfg.SlowWindow}
	for _, tr := range objs {
		tr := tr
		name := tr.obj.Name
		target := tr.obj.Target
		reg.GaugeFunc("spotfi_slo_target", "SLO target good fraction.",
			obs.Labels{"slo": name}, func() float64 { return target })
		reg.GaugeFunc("spotfi_slo_burning", "1 when both burn-rate windows exceed the threshold.",
			obs.Labels{"slo": name}, func() float64 {
				if t.objectiveStatus(tr).Burning {
					return 1
				}
				return 0
			})
		for i, w := range windows {
			i := i
			labels := obs.Labels{"slo": name, "window": windowName(w)}
			reg.GaugeFunc("spotfi_slo_burn_rate", "Error-budget burn rate over the window (1 = sustainable).",
				labels, func() float64 { return t.objectiveStatus(tr).Windows[i].BurnRate })
			reg.GaugeFunc("spotfi_slo_bad_fraction", "Fraction of bad events over the window.",
				labels, func() float64 { return t.objectiveStatus(tr).Windows[i].BadFraction })
		}
	}
}

// ReadyCheck returns a readiness probe that degrades (ok=false) while any
// objective is burning, with a reason naming the offenders — wire it into
// the server's /readyz alongside the AP-coverage checks.
func (t *Tracker) ReadyCheck() func() (string, bool) {
	return func() (string, bool) {
		st := t.Status()
		if !st.Burning {
			return "", true
		}
		var hot []string
		for _, os := range st.Objectives {
			if os.Burning {
				hot = append(hot, fmt.Sprintf("%s %.1fx/%s %.1fx/%s",
					os.Name,
					os.Windows[0].BurnRate, os.Windows[0].Window,
					os.Windows[1].BurnRate, os.Windows[1].Window))
			}
		}
		return "slo burning: " + strings.Join(hot, ", "), false
	}
}
