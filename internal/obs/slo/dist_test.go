package slo

import (
	"math"
	"math/rand"
	"testing"
)

// TestQuantileExact pins the interpolation down on hand-computable
// distributions: quantiles on uniform-per-bucket data are exact, point
// masses interpolate linearly across their bucket, and the overflow
// bucket reports the highest finite bound.
func TestQuantileExact(t *testing.T) {
	bounds := []float64{1, 2, 3, 4}

	// 10 observations per finite bucket → the CDF is piecewise linear
	// through (1, .25), (2, .5), (3, .75), (4, 1).
	u := NewDist(bounds)
	for _, mid := range []float64{0.5, 1.5, 2.5, 3.5} {
		u.Add(mid, 10)
	}
	cases := []struct{ q, want float64 }{
		{0, 0},
		{0.125, 0.5},
		{0.25, 1},
		{0.5, 2},
		{0.625, 2.5},
		{0.75, 3},
		{1, 4},
	}
	for _, c := range cases {
		if got := u.Quantile(c.q); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("uniform Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}

	// A point mass in bucket (2,3]: every quantile lands inside that
	// bucket, linearly in q.
	pm := NewDist(bounds)
	pm.Add(2.5, 100)
	for _, q := range []float64{0.1, 0.5, 0.9} {
		want := 2 + q
		if got := pm.Quantile(q); math.Abs(got-want) > 1e-12 {
			t.Fatalf("point-mass Quantile(%g) = %g, want %g", q, got, want)
		}
	}

	// Overflow observations report the top finite bound, never +Inf.
	of := NewDist(bounds)
	of.Add(99, 5)
	if got := of.Quantile(0.99); got != 4 {
		t.Fatalf("overflow Quantile = %g, want 4", got)
	}

	// Empty and nil distributions are quiet zeros.
	if NewDist(bounds).Quantile(0.5) != 0 {
		t.Fatal("empty dist quantile != 0")
	}
	var nilD *Dist
	if nilD.Quantile(0.5) != 0 || nilD.Count() != 0 {
		t.Fatal("nil dist not zero")
	}
}

// TestQuantileMonotoneAcrossMerges checks two invariants on randomized
// data: Quantile is monotone in q, and the merged distribution's quantile
// at every q lies between the component quantiles (a mixture CDF is a
// convex combination, so its quantile cannot escape the envelope).
func TestQuantileMonotoneAcrossMerges(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	bounds := []float64{0.001, 0.01, 0.1, 1, 10}
	for trial := 0; trial < 50; trial++ {
		a, b := NewDist(bounds), NewDist(bounds)
		for i := 0; i < 200; i++ {
			a.Observe(math.Pow(10, rng.Float64()*5-3.5)) // ~1e-3.5 … 1e1.5
			b.Observe(math.Pow(10, rng.Float64()*3-3))   // skewed lower
		}
		m := NewDist(bounds)
		if err := m.Merge(a); err != nil {
			t.Fatal(err)
		}
		if err := m.Merge(b); err != nil {
			t.Fatal(err)
		}
		if m.Count() != a.Count()+b.Count() {
			t.Fatalf("merged count %d != %d + %d", m.Count(), a.Count(), b.Count())
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.01 {
			mq := m.Quantile(q)
			if mq < prev-1e-12 {
				t.Fatalf("trial %d: Quantile not monotone at q=%.2f: %g < %g", trial, q, mq, prev)
			}
			prev = mq
			lo := math.Min(a.Quantile(q), b.Quantile(q))
			hi := math.Max(a.Quantile(q), b.Quantile(q))
			if mq < lo-1e-9 || mq > hi+1e-9 {
				t.Fatalf("trial %d: merged Quantile(%.2f)=%g outside [%g, %g]", trial, q, mq, lo, hi)
			}
		}
	}
}

func TestMergeMismatchedBounds(t *testing.T) {
	a := NewDist([]float64{1, 2})
	b := NewDist([]float64{1, 3})
	b.Observe(0.5)
	if err := a.Merge(b); err == nil {
		t.Fatal("merging mismatched bounds did not error")
	}
	if a.Count() != 0 {
		t.Fatal("failed merge mutated the receiver")
	}
	// Same bounds in a different declaration order are the same layout.
	c := NewDist([]float64{2, 1})
	c.Observe(1.5)
	if err := a.Merge(c); err != nil {
		t.Fatalf("order-insensitive merge failed: %v", err)
	}
	if a.Count() != 1 {
		t.Fatalf("count after merge = %d, want 1", a.Count())
	}
}

// TestFromCumulative covers the snapshot-differencing path the Tracker
// uses, including the clamps for racy (non-monotone-looking) snapshots.
func TestFromCumulative(t *testing.T) {
	bounds := []float64{1, 2, 3}
	before := []uint64{1, 3, 3, 4}
	after := []uint64{2, 6, 7, 9}
	d := FromCumulative(bounds, before, after)
	// Window deltas per bucket: 1, 2, 1, 1 → total 5.
	if d.Count() != 5 {
		t.Fatalf("window count = %d, want 5", d.Count())
	}
	// Median of {≤1:1, (1,2]:2, (2,3]:1, >3:1}: target 2.5 lands in the
	// second bucket at frac (2.5-1)/2 → 1.75.
	if got := d.Quantile(0.5); math.Abs(got-1.75) > 1e-12 {
		t.Fatalf("window median = %g, want 1.75", got)
	}

	// nil before = since-process-start.
	d2 := FromCumulative(bounds, nil, after)
	if d2.Count() != 9 {
		t.Fatalf("since-start count = %d, want 9", d2.Count())
	}

	// A racy snapshot pair (before ahead of after in one bucket) clamps
	// instead of wrapping to huge uint64 counts.
	racy := FromCumulative(bounds, []uint64{5, 5, 5, 5}, []uint64{4, 6, 6, 6})
	if racy.Count() > 1 {
		t.Fatalf("racy snapshot produced count %d", racy.Count())
	}
}
