package slo

import (
	"bytes"
	"encoding/json"
	"fmt"
	"html/template"
	"net/http"
	"time"
)

// Handler serves the SLO status page — mount it at /debug/slo.
//
//	GET /debug/slo            → JSON Status
//	GET /debug/slo?view=html  → HTML burn-rate table
func (t *Tracker) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		st := t.Status()
		if r.URL.Query().Get("view") == "html" {
			writeSLOPage(w, st)
			return
		}
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		enc.SetIndent("", "  ")
		if err := enc.Encode(st); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		//lint:allow errdrop a failed write to the client has no one left to tell
		_, _ = w.Write(buf.Bytes())
	})
}

// windowView is one (objective, window) row of the status table.
type windowView struct {
	Window    string
	Burn      string
	BurnClass string
	BadFrac   string
	Good      uint64
	Total     uint64
	Latency   string
}

// objView is one objective section.
type objView struct {
	Name    string
	Help    string
	Target  string
	Bound   string
	State   string
	Class   string
	Windows []windowView
}

// pageView is the page model.
type pageView struct {
	Time      string
	Threshold string
	State     string
	Class     string
	Objs      []objView
}

var sloTmpl = template.Must(template.New("slo").Parse(`<!DOCTYPE html>
<html><head><title>spotfi slo</title><style>
body { font: 13px/1.5 monospace; margin: 1.5em; background: #fafafa; color: #222; }
h1 { font-size: 16px; } h2 { font-size: 14px; margin-top: 1.4em; }
table { border-collapse: collapse; background: #fff; }
th, td { border: 1px solid #ddd; padding: .25em .6em; text-align: right; }
th { background: #f0f0f0; } td.l { text-align: left; }
.good { color: #1e8449; font-weight: bold; }
.bad  { color: #c0392b; font-weight: bold; }
.dim  { color: #888; }
</style></head><body>
<h1>spotfi SLO burn rates</h1>
<p>{{.Time}} · burn threshold {{.Threshold}}× · overall <span class="{{.Class}}">{{.State}}</span></p>
{{if not .Objs}}<p class="dim">no objectives registered</p>{{end}}
{{range .Objs}}
<h2>{{.Name}} <span class="{{.Class}}">{{.State}}</span></h2>
<p class="dim">{{.Help}} — target {{.Target}}{{if .Bound}} within {{.Bound}}{{end}}</p>
<table><tr><th>window</th><th>burn rate</th><th>bad fraction</th><th>good / total</th><th>latency p50 / p95 / p99</th></tr>
{{range .Windows}}<tr>
<td>{{.Window}}</td><td class="{{.BurnClass}}">{{.Burn}}</td><td>{{.BadFrac}}</td>
<td>{{.Good}} / {{.Total}}</td><td class="l">{{.Latency}}</td>
</tr>{{end}}</table>
{{end}}
</body></html>
`))

func writeSLOPage(w http.ResponseWriter, st Status) {
	pv := pageView{
		Time:      st.Time.Format(time.RFC3339),
		Threshold: fmt.Sprintf("%.0f", st.BurnThreshold),
		State:     "ok",
		Class:     "good",
	}
	if st.Burning {
		pv.State, pv.Class = "BURNING", "bad"
	}
	for _, os := range st.Objectives {
		ov := objView{
			Name:   os.Name,
			Help:   os.Help,
			Target: fmt.Sprintf("%.4g", os.Target),
			State:  "ok",
			Class:  "good",
		}
		if os.Bound > 0 {
			ov.Bound = fmt.Sprintf("%gs", os.Bound)
		}
		if os.Burning {
			ov.State, ov.Class = "BURNING", "bad"
		}
		for _, ws := range os.Windows {
			wv := windowView{
				Window:    ws.Window,
				Burn:      fmt.Sprintf("%.2f×", ws.BurnRate),
				BurnClass: "good",
				BadFrac:   fmt.Sprintf("%.4f", ws.BadFraction),
				Good:      ws.Good,
				Total:     ws.Total,
			}
			if ws.BurnRate >= st.BurnThreshold {
				wv.BurnClass = "bad"
			}
			if ws.P99 > 0 {
				wv.Latency = fmt.Sprintf("%.4gs / %.4gs / %.4gs", ws.P50, ws.P95, ws.P99)
			}
			ov.Windows = append(ov.Windows, wv)
		}
		pv.Objs = append(pv.Objs, ov)
	}
	var buf bytes.Buffer
	if err := sloTmpl.Execute(&buf, pv); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	//lint:allow errdrop a failed write to the client has no one left to tell
	_, _ = w.Write(buf.Bytes())
}
