package slo

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"spotfi/internal/obs"
)

// fakeClock drives the tracker deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }
func testConfig(c *fakeClock, thr float64) Config {
	return Config{
		FastWindow:    5 * time.Minute,
		SlowWindow:    time.Hour,
		Tick:          10 * time.Second,
		BurnThreshold: thr,
		Now:           c.now,
	}
}

// TestBurnRateBothWindows walks a ratio objective through good traffic,
// a short bad spike, and a sustained outage, checking the multi-window
// rule at each step: only a sustained burn (both windows hot) counts.
func TestBurnRateBothWindows(t *testing.T) {
	clk := newFakeClock()
	var good, total atomic.Uint64
	tr := New(testConfig(clk, 2))
	// Target 0.9: a bad fraction of 0.2 is a burn rate of 2.0.
	tr.Add(RatioObjective("shed", "delivered vs shed", 0.9, func() (uint64, uint64) {
		return good.Load(), total.Load()
	}))

	// An hour of clean traffic fills the slow window with good history.
	for i := 0; i < 360; i++ {
		clk.advance(10 * time.Second)
		good.Add(100)
		total.Add(100)
		tr.Sample()
	}
	st := tr.Status()
	if st.Burning {
		t.Fatal("burning after clean traffic")
	}
	for _, ws := range st.Objectives[0].Windows {
		if ws.BurnRate != 0 || ws.BadFraction != 0 {
			t.Fatalf("clean window %s: burn %g bad %g", ws.Window, ws.BurnRate, ws.BadFraction)
		}
	}

	// Five minutes of 50% bad traffic: the fast window burns at 5×, but
	// the slow window still averages over 55 clean minutes — not burning.
	for i := 0; i < 30; i++ {
		clk.advance(10 * time.Second)
		good.Add(50)
		total.Add(100)
		tr.Sample()
	}
	st = tr.Status()
	fast, slow := st.Objectives[0].Windows[0], st.Objectives[0].Windows[1]
	if fast.BurnRate < 2 {
		t.Fatalf("fast window burn = %g, want ≥ 2 during spike", fast.BurnRate)
	}
	if slow.BurnRate >= 2 {
		t.Fatalf("slow window burn = %g, want < 2 after short spike", slow.BurnRate)
	}
	if st.Burning || st.Objectives[0].Burning {
		t.Fatal("short spike flagged as burning — multi-window rule broken")
	}

	// Another hour of 50% bad traffic drags the slow window up too.
	for i := 0; i < 360; i++ {
		clk.advance(10 * time.Second)
		good.Add(50)
		total.Add(100)
		tr.Sample()
	}
	st = tr.Status()
	fast, slow = st.Objectives[0].Windows[0], st.Objectives[0].Windows[1]
	if fast.BurnRate < 2 || slow.BurnRate < 2 {
		t.Fatalf("sustained outage: burn fast=%g slow=%g, want both ≥ 2", fast.BurnRate, slow.BurnRate)
	}
	if !st.Burning || !st.Objectives[0].Burning {
		t.Fatal("sustained outage not flagged as burning")
	}
	// Exact numbers on the fast window: 0.5 bad at target 0.9 → burn 5.
	if fast.BadFraction != 0.5 || fast.BurnRate < 4.999 || fast.BurnRate > 5.001 {
		t.Fatalf("fast window bad=%g burn=%g, want 0.5 and 5", fast.BadFraction, fast.BurnRate)
	}

	reason, ok := tr.ReadyCheck()()
	if ok {
		t.Fatal("ReadyCheck ok during sustained burn")
	}
	if !strings.Contains(reason, "slo burning") || !strings.Contains(reason, "shed") {
		t.Fatalf("ReadyCheck reason = %q", reason)
	}

	// Recovery: an hour of clean traffic clears both windows.
	for i := 0; i < 360; i++ {
		clk.advance(10 * time.Second)
		good.Add(100)
		total.Add(100)
		tr.Sample()
	}
	if st = tr.Status(); st.Burning {
		t.Fatal("still burning after a clean hour")
	}
	if reason, ok := tr.ReadyCheck()(); !ok {
		t.Fatalf("ReadyCheck not ok after recovery: %q", reason)
	}
}

// TestLatencyObjective feeds an obs histogram and checks the good-count
// accounting at the bound plus windowed quantiles from cumulative deltas.
func TestLatencyObjective(t *testing.T) {
	clk := newFakeClock()
	reg := obs.NewRegistry()
	h := reg.Histogram("fix_latency_seconds", "", []float64{0.01, 0.1, 1, 10}, nil)
	tr := New(testConfig(clk, 2))
	tr.Add(LatencyObjective("fix_latency", "packet→fix latency", h, 1, 0.75))

	// Window 1: 9 fast, 1 slow → bad 0.1, target 0.75 → burn 0.4.
	for i := 0; i < 9; i++ {
		h.Observe(0.05)
	}
	h.Observe(5)
	clk.advance(time.Minute)
	tr.Sample()
	st := tr.Status()
	fast := st.Objectives[0].Windows[0]
	if fast.Good != 9 || fast.Total != 10 {
		t.Fatalf("good/total = %d/%d, want 9/10", fast.Good, fast.Total)
	}
	if got := fast.BurnRate; got < 0.39 || got > 0.41 {
		t.Fatalf("burn = %g, want 0.4", got)
	}
	if fast.P50 <= 0.01 || fast.P50 > 0.1 {
		t.Fatalf("windowed p50 = %g, want in (0.01, 0.1]", fast.P50)
	}
	if fast.P99 <= 1 || fast.P99 > 10 {
		t.Fatalf("windowed p99 = %g, want in (1, 10]", fast.P99)
	}

	// Window 2: all slow. The fast window forgets window 1 after 5m, so
	// quantiles and burn reflect only the new traffic.
	clk.advance(6 * time.Minute)
	tr.Sample()
	for i := 0; i < 10; i++ {
		h.Observe(5)
	}
	clk.advance(time.Minute)
	tr.Sample()
	st = tr.Status()
	fast = st.Objectives[0].Windows[0]
	if fast.Total != 10 || fast.Good != 0 {
		t.Fatalf("post-roll good/total = %d/%d, want 0/10", fast.Good, fast.Total)
	}
	if fast.BadFraction != 1 || fast.BurnRate != 4 {
		t.Fatalf("post-roll bad=%g burn=%g, want 1 and 4", fast.BadFraction, fast.BurnRate)
	}
	if fast.P50 <= 1 {
		t.Fatalf("post-roll p50 = %g, want > 1", fast.P50)
	}
}

// TestRegisterExportsGauges checks the spotfi_slo_* exposition.
func TestRegisterExportsGauges(t *testing.T) {
	clk := newFakeClock()
	var good, total atomic.Uint64
	tr := New(testConfig(clk, 2))
	tr.Add(RatioObjective("shed", "", 0.5, func() (uint64, uint64) {
		return good.Load(), total.Load()
	}))
	reg := obs.NewRegistry()
	tr.Register(reg)

	good.Store(25)
	total.Store(100) // bad 0.75, target 0.5 → burn 1.5 in both windows
	clk.advance(time.Minute)
	tr.Sample()

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`spotfi_slo_target{slo="shed"} 0.5`,
		`spotfi_slo_burn_rate{slo="shed",window="5m"} 1.5`,
		`spotfi_slo_burn_rate{slo="shed",window="1h"} 1.5`,
		`spotfi_slo_bad_fraction{slo="shed",window="5m"} 0.75`,
		`spotfi_slo_burning{slo="shed"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestSamplePruning keeps the history ring bounded to the slow window.
func TestSamplePruning(t *testing.T) {
	clk := newFakeClock()
	var n atomic.Uint64
	tr := New(testConfig(clk, 2))
	tr.Add(RatioObjective("x", "", 0.9, func() (uint64, uint64) {
		v := n.Load()
		return v, v
	}))
	for i := 0; i < 2000; i++ {
		clk.advance(10 * time.Second)
		n.Add(1)
		tr.Sample()
	}
	tr.mu.Lock()
	got := len(tr.objs[0].samples)
	tr.mu.Unlock()
	// 1h window at 10s ticks needs ~360 samples plus slack; 2000 ticks
	// must not all be retained.
	if got > 380 {
		t.Fatalf("history ring holds %d samples, want ≤ 380", got)
	}

	// Start/stop the real ticker loop once for coverage of the join.
	stop := tr.Start()
	stop()
	stop() // idempotent
}

func TestWindowName(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{30 * time.Second, "30s"},
		{10 * time.Second, "10s"},
		{90 * time.Second, "1m30s"},
		{5 * time.Minute, "5m"},
		{30 * time.Minute, "30m"},
		{time.Hour, "1h"},
		{90 * time.Minute, "1h30m"},
		{2 * time.Second, "2s"},
	}
	for _, c := range cases {
		if got := windowName(c.d); got != c.want {
			t.Errorf("windowName(%v) = %q, want %q", c.d, got, c.want)
		}
	}
}

// TestOnBurnEdgeDetection: the hook fires exactly on transitions — once
// when both windows start burning, once when they stop — not on every
// burning tick.
func TestOnBurnEdgeDetection(t *testing.T) {
	clk := newFakeClock()
	var good, total atomic.Uint64
	type flip struct {
		name    string
		burning bool
	}
	var flips []flip
	cfg := testConfig(clk, 2)
	cfg.OnBurn = func(objective string, burning bool) {
		flips = append(flips, flip{objective, burning})
	}
	tr := New(cfg)
	tr.Add(RatioObjective("shed", "delivered vs shed", 0.9, func() (uint64, uint64) {
		return good.Load(), total.Load()
	}))

	step := func(n int, g, tot uint64) {
		for i := 0; i < n; i++ {
			clk.advance(10 * time.Second)
			good.Add(g)
			total.Add(tot)
			tr.Sample()
		}
	}

	step(360, 100, 100) // clean hour: no flips
	if len(flips) != 0 {
		t.Fatalf("flips after clean traffic: %+v", flips)
	}
	step(30, 50, 100) // 5m spike: fast window burns, slow does not
	if len(flips) != 0 {
		t.Fatalf("flips after short spike (slow window clean): %+v", flips)
	}
	step(360, 50, 100) // sustained outage: both windows burn
	if len(flips) != 1 || flips[0] != (flip{"shed", true}) {
		t.Fatalf("flips after sustained burn = %+v, want one {shed true}", flips)
	}
	step(60, 50, 100) // still burning: no extra flips
	if len(flips) != 1 {
		t.Fatalf("hook re-fired while still burning: %+v", flips)
	}
	step(360, 100, 100) // recovery: one {shed false}
	if len(flips) != 2 || flips[1] != (flip{"shed", false}) {
		t.Fatalf("flips after recovery = %+v, want trailing {shed false}", flips)
	}
}
