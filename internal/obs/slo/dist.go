// Package slo tracks service-level objectives with Google SRE-style
// multi-window burn-rate alerting. Objectives are ratios of good events
// to total events read from cumulative sources (obs histograms and
// counters); the Tracker samples those sources on a tick, differences
// samples to get per-window counts, and reports the burn rate — the
// fraction of the error budget consumed per unit of budget — over a fast
// and a slow window. An objective is "burning" only when both windows
// exceed the threshold: the fast window makes the alert responsive, the
// slow window keeps a brief spike from paging.
package slo

import (
	"fmt"
	"math"
	"sort"
)

// Dist is a fixed-bucket distribution used for windowed quantile
// estimation. It mirrors the bucket layout of an obs.Histogram but holds
// plain counts — typically the difference between two Cumulative()
// snapshots — so quantiles describe a window, not the process lifetime.
type Dist struct {
	bounds []float64 // sorted upper bounds; an implicit +Inf bucket follows
	counts []uint64  // len(bounds)+1
	total  uint64
}

// NewDist returns an empty distribution over the given bucket upper
// bounds (copied and sorted). Panics on an empty bound set.
func NewDist(bounds []float64) *Dist {
	if len(bounds) == 0 {
		panic("slo: NewDist needs at least one bucket bound")
	}
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Dist{bounds: b, counts: make([]uint64, len(b)+1)}
}

// FromCumulative builds the window distribution between two cumulative
// snapshots (after − before), as returned by obs.Histogram.Cumulative.
// before may be nil (treated as all zeros). Deltas that come out negative
// — snapshots race with concurrent Observe calls — clamp to zero rather
// than wrapping.
func FromCumulative(bounds []float64, before, after []uint64) *Dist {
	d := NewDist(bounds)
	if len(after) != len(d.counts) || (before != nil && len(before) != len(after)) {
		panic(fmt.Sprintf("slo: cumulative snapshot length %d does not match %d bounds", len(after), len(bounds)))
	}
	var prevDelta uint64
	for i := range after {
		cum := after[i]
		if before != nil {
			if before[i] >= cum {
				cum = 0
			} else {
				cum -= before[i]
			}
		}
		// De-cumulate; clamp per-bucket negatives from racy snapshots.
		if cum > prevDelta {
			d.counts[i] = cum - prevDelta
			prevDelta = cum
		}
	}
	d.total = prevDelta
	return d
}

// Observe records one value.
func (d *Dist) Observe(v float64) { d.Add(v, 1) }

// Add records n observations of value v.
func (d *Dist) Add(v float64, n uint64) {
	i := sort.SearchFloat64s(d.bounds, v) // first bound ≥ v
	d.counts[i] += n
	d.total += n
}

// Count returns the number of recorded observations.
func (d *Dist) Count() uint64 {
	if d == nil {
		return 0
	}
	return d.total
}

// Bounds returns a copy of the bucket upper bounds.
func (d *Dist) Bounds() []float64 {
	return append([]float64(nil), d.bounds...)
}

// Merge adds o's counts into d. The two distributions must share a bucket
// layout; merging mismatched layouts returns an error and leaves d
// unchanged. A nil or empty o is a no-op.
func (d *Dist) Merge(o *Dist) error {
	if o == nil || o.total == 0 {
		return nil
	}
	if len(d.bounds) != len(o.bounds) {
		return fmt.Errorf("slo: merging %d-bucket dist into %d-bucket dist", len(o.bounds), len(d.bounds))
	}
	for i, b := range d.bounds {
		//lint:allow floateq merging requires bit-identical bucket grids, not approximately equal ones
		if b != o.bounds[i] {
			return fmt.Errorf("slo: bucket bound mismatch at %d: %g vs %g", i, b, o.bounds[i])
		}
	}
	for i, c := range o.counts {
		d.counts[i] += c
	}
	d.total += o.total
	return nil
}

// Quantile returns the q-quantile (q in [0,1], clamped) with linear
// interpolation inside the containing bucket, Prometheus
// histogram_quantile-style: the first bucket interpolates from zero, and
// observations in the +Inf overflow bucket report the highest finite
// bound (a known floor on the true value). Returns 0 on an empty or nil
// distribution.
func (d *Dist) Quantile(q float64) float64 {
	if d == nil || d.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	target := q * float64(d.total)
	var cum uint64
	lo := 0.0
	for i, c := range d.counts {
		hi := math.Inf(1)
		if i < len(d.bounds) {
			hi = d.bounds[i]
		}
		if c > 0 && float64(cum+c) >= target {
			if math.IsInf(hi, 1) {
				return lo
			}
			frac := (target - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			return lo + frac*(hi-lo)
		}
		cum += c
		if !math.IsInf(hi, 1) {
			lo = hi
		}
	}
	return lo
}
