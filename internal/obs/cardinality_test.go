package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"testing"
)

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1e-4, 10, 5)
	if !sort.Float64sAreSorted(b) {
		t.Fatal("ExpBuckets not sorted")
	}
	if b[0] != 1e-4 {
		t.Fatalf("first bound = %g, want 1e-4", b[0])
	}
	if last := b[len(b)-1]; last < 10 {
		t.Fatalf("last bound = %g, want ≥ 10", last)
	}
	// 5 per decade over 5 decades → 26 bounds, and each decade boundary is
	// hit exactly (computed by index, not accumulated).
	if len(b) != 26 {
		t.Fatalf("len = %d, want 26", len(b))
	}
	if got := b[5]; math.Abs(got-1e-3) > 1e-15 {
		t.Fatalf("decade boundary = %g, want 1e-3", got)
	}
	for _, bad := range []func(){
		func() { ExpBuckets(0, 1, 5) },
		func() { ExpBuckets(1, 1, 5) },
		func() { ExpBuckets(1e-3, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("malformed ExpBuckets args did not panic")
				}
			}()
			bad()
		}()
	}
}

func TestHistogramCumulativeAndCountAtOrBelow(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "", []float64{0.01, 0.1, 1}, nil)
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 2} {
		h.Observe(v)
	}
	cum := h.Cumulative()
	want := []uint64{2, 3, 4, 5}
	if len(cum) != len(want) {
		t.Fatalf("cumulative len = %d, want %d", len(cum), len(want))
	}
	for i := range want {
		if cum[i] != want[i] {
			t.Fatalf("cumulative[%d] = %d, want %d", i, cum[i], want[i])
		}
	}
	cases := []struct {
		bound float64
		want  uint64
	}{
		{0.001, 0}, // below every bucket
		{0.01, 2},  // exact bound: its bucket counts
		{0.05, 2},  // between bounds: snaps down
		{0.1, 3},
		{1, 4},
		{100, 4}, // above the top finite bound: everything finite
	}
	for _, c := range cases {
		if got := h.CountAtOrBelow(c.bound); got != c.want {
			t.Fatalf("CountAtOrBelow(%g) = %d, want %d", c.bound, got, c.want)
		}
	}
	if got := h.Bounds(); len(got) != 3 || got[2] != 1 {
		t.Fatalf("Bounds = %v", got)
	}

	var nilH *Histogram
	if nilH.Cumulative() != nil || nilH.CountAtOrBelow(1) != 0 || nilH.Bounds() != nil {
		t.Fatal("nil histogram introspection not zero")
	}
}

func TestHistogramConflictingBucketsPanic(t *testing.T) {
	r := NewRegistry()
	r.Histogram("span_seconds", "", []float64{0.1, 1}, Labels{"span": "a"})
	// Same layout in a different order is fine (sorted before comparing).
	r.Histogram("span_seconds", "", []float64{1, 0.1}, Labels{"span": "b"})
	defer func() {
		if recover() == nil {
			t.Fatal("conflicting bucket layouts did not panic")
		}
	}()
	r.Histogram("span_seconds", "", []float64{0.5, 1}, Labels{"span": "c"})
}

// TestSeriesCapDropsNewLabels is the cardinality guard's contract: at the
// cap, new label sets are refused and counted — no panic, no corruption of
// existing series, and the returned handles still work (they just are not
// exported).
func TestSeriesCapDropsNewLabels(t *testing.T) {
	r := NewRegistry()
	r.SetSeriesLimit(3)
	var kept []*Gauge
	for i := 0; i < 5; i++ {
		g := r.Gauge("ap_health", "", Labels{"ap": fmt.Sprint(i)})
		g.Set(int64(10 + i))
		kept = append(kept, g)
	}
	if got := r.DroppedLabels(); got != 2 {
		t.Fatalf("DroppedLabels = %d, want 2", got)
	}
	// Dropped handles are functional, just invisible.
	kept[4].Add(1)
	if kept[4].Value() != 15 {
		t.Fatalf("dropped gauge value = %d, want 15", kept[4].Value())
	}
	// Re-lookup of an existing label set is a hit, not a drop — even at cap.
	if r.Gauge("ap_health", "", Labels{"ap": "1"}) != kept[1] {
		t.Fatal("re-lookup at cap returned a different series")
	}
	if got := r.DroppedLabels(); got != 2 {
		t.Fatalf("DroppedLabels after re-lookup = %d, want 2", got)
	}

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for i := 0; i < 3; i++ {
		if !strings.Contains(out, fmt.Sprintf("ap_health{ap=%q} %d", fmt.Sprint(i), 10+i)) {
			t.Fatalf("retained series %d missing from exposition:\n%s", i, out)
		}
	}
	for i := 3; i < 5; i++ {
		if strings.Contains(out, fmt.Sprintf("ap=%q", fmt.Sprint(i))) {
			t.Fatalf("dropped series %d leaked into exposition:\n%s", i, out)
		}
	}
	if !strings.Contains(out, "spotfi_obs_dropped_labels_total 2") {
		t.Fatalf("drop counter missing from exposition:\n%s", out)
	}

	// GaugeFunc past the cap: dropped silently, existing series untouched.
	r.GaugeFunc("ap_health", "", Labels{"ap": "99"}, func() float64 { return 1 })
	if got := r.DroppedLabels(); got != 3 {
		t.Fatalf("DroppedLabels after GaugeFunc = %d, want 3", got)
	}

	// A registry that never drops does not expose the drop family.
	clean := NewRegistry()
	clean.Counter("x_total", "", nil).Inc()
	var sb2 strings.Builder
	if err := clean.WritePrometheus(&sb2); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb2.String(), "spotfi_obs_dropped_labels_total") {
		t.Fatal("clean registry exposes the drop family")
	}
}
