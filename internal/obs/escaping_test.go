package obs

import (
	"strings"
	"testing"
)

// Label values land between double quotes in the exposition format, so the
// three characters Prometheus requires escaped — quote, backslash, newline
// — must come out as \", \\, and \n or the scrape is unparseable.
func TestWritePrometheusLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Gauge("esc", "", Labels{"quote": `say "hi"`}).Set(1)
	r.Gauge("esc", "", Labels{"path": `C:\tmp\x`}).Set(2)
	r.Gauge("esc", "", Labels{"msg": "line1\nline2"}).Set(3)

	var buf strings.Builder
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, line := range []string{
		`esc{quote="say \"hi\""} 1`,
		`esc{path="C:\\tmp\\x"} 2`,
		`esc{msg="line1\nline2"} 3`,
	} {
		if !strings.Contains(out, line+"\n") {
			t.Fatalf("missing escaped line %q in:\n%s", line, out)
		}
	}
	// A raw newline inside a label value would split the series line in two.
	for _, l := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if !strings.HasPrefix(l, "#") && !strings.Contains(l, " ") {
			t.Fatalf("line %q has no value: a label value leaked a raw newline:\n%s", l, out)
		}
	}
}

// Snapshot order is the registration order — families first-registered
// first, series within a family likewise — and stable across calls, so
// tests and diff-based tooling can rely on it.
func TestSnapshotDeterministicOrder(t *testing.T) {
	r := NewRegistry()
	r.Counter("z_total", "", nil).Inc()
	r.Gauge("a_gauge", "", Labels{"stage": "locate"}).Set(1)
	r.Gauge("a_gauge", "", Labels{"stage": "cluster"}).Set(2)
	r.Histogram("m_seconds", "", []float64{1}, nil).Observe(0.5)

	want := []struct{ name, labels string }{
		{"z_total", ""},
		{"a_gauge", `stage="locate"`},
		{"a_gauge", `stage="cluster"`},
		{"m_seconds", ""},
	}
	for run := 0; run < 5; run++ {
		got := r.Snapshot()
		if len(got) != len(want) {
			t.Fatalf("run %d: %d samples, want %d", run, len(got), len(want))
		}
		for i, w := range want {
			if got[i].Name != w.name || got[i].Labels != w.labels {
				t.Fatalf("run %d sample %d: got %s{%s}, want %s{%s}",
					run, i, got[i].Name, got[i].Labels, w.name, w.labels)
			}
		}
	}
}

// Within one series key, label pairs are sorted by key regardless of the
// map literal's order, so the same label set always names the same series.
func TestLabelKeyOrderCanonical(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("c_total", "", Labels{"b": "2", "a": "1"})
	b := r.Counter("c_total", "", Labels{"a": "1", "b": "2"})
	if a != b {
		t.Fatal("same label set in different literal order produced distinct series")
	}
	a.Inc()
	if got := r.Snapshot()[0].Labels; got != `a="1",b="2"` {
		t.Fatalf("labels rendered %q, want sorted a,b order", got)
	}
}

// WritePrometheus output is byte-identical across calls: family and series
// iteration comes from the recorded order, not map iteration.
func TestWritePrometheusDeterministic(t *testing.T) {
	r := NewRegistry()
	for _, stage := range []string{"sanitize", "estimate", "cluster", "select", "locate"} {
		r.Histogram("stage_seconds", "", []float64{0.1, 1}, Labels{"stage": stage}).Observe(0.2)
	}
	r.Counter("bursts_total", "", nil).Inc()

	var first string
	for run := 0; run < 5; run++ {
		var buf strings.Builder
		if err := r.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		if run == 0 {
			first = buf.String()
		} else if buf.String() != first {
			t.Fatalf("run %d output differs:\n%s\n--- vs ---\n%s", run, buf.String(), first)
		}
	}
}
