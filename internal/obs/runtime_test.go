package obs

import (
	"runtime"
	"strings"
	"testing"

	"runtime/metrics"
)

func TestRegisterRuntimeMetrics(t *testing.T) {
	r := NewRegistry()
	RegisterRuntimeMetrics(r)
	// Force at least one GC so pause histograms have content.
	runtime.GC()

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"spotfi_go_goroutines",
		"spotfi_go_heap_inuse_bytes",
		"spotfi_go_gc_pause_p99_seconds",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %s:\n%s", want, text)
		}
	}
	if g := readRuntimeValue("/sched/goroutines:goroutines"); g < 1 {
		t.Fatalf("goroutines = %v, want ≥ 1", g)
	}
	heap := readRuntimeValue("/memory/classes/heap/objects:bytes")
	if heap <= 0 {
		t.Fatalf("heap objects = %v, want > 0", heap)
	}
	if p99 := readRuntimeP99("/sched/pauses/total/gc:seconds"); p99 < 0 || p99 > 10 {
		t.Fatalf("GC pause p99 = %v s, want sane", p99)
	}
}

func TestReadRuntimeUnknownMetric(t *testing.T) {
	if v := readRuntimeValue("/not/a/metric:units"); v != 0 {
		t.Fatalf("unknown scalar = %v, want 0", v)
	}
	if v := readRuntimeP99("/not/a/metric:units"); v != 0 {
		t.Fatalf("unknown histogram p99 = %v, want 0", v)
	}
}

func TestHistP99(t *testing.T) {
	if v := histP99(nil); v != 0 {
		t.Fatalf("nil histogram = %v", v)
	}
	h := &metrics.Float64Histogram{
		Counts:  []uint64{98, 1, 1},
		Buckets: []float64{0, 1e-6, 1e-3, 1},
	}
	// 100 samples: p99 target lands in the second-to-last bucket.
	if v := histP99(h); v != 1e-3 {
		t.Fatalf("p99 = %v, want 1e-3", v)
	}
	empty := &metrics.Float64Histogram{Counts: []uint64{0}, Buckets: []float64{0, 1}}
	if v := histP99(empty); v != 0 {
		t.Fatalf("empty histogram p99 = %v", v)
	}
}
