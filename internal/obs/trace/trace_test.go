package trace

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"spotfi/internal/obs"
)

// runInstrumented walks the shape of the burst hot path's instrumentation:
// a root trace, per-stage children, scalar attributes, and a finish.
func runInstrumented(tr *Trace) {
	ap := tr.Root().StartSpan(StageAP)
	ap.SetInt("ap", 3)
	for i := 0; i < 4; i++ {
		ssp := ap.StartSpan(StageSanitize)
		ssp.SetFloat("sto_ns", 12.5)
		ssp.End()
		esp := ap.StartSpan(StageEstimate)
		esp.SetInt("paths", 4)
		esp.SetFloat("eigen_gap_db", 21.0)
		esp.End()
	}
	csp := ap.StartSpan(StageCluster)
	csp.End()
	sel := ap.StartSpan(StageSelect)
	if sel.Enabled() {
		sel.SetFloats("likelihoods", []float64{0.9, 0.1})
	}
	sel.End()
	ap.End()
	lsp := tr.Root().StartSpan(StageLocate)
	lsp.SetInt("iters", 42)
	lsp.End()
	tr.Finish()
}

func TestTraceTreeAndSinks(t *testing.T) {
	reg := obs.NewRegistry()
	tracer := New(Config{SampleEvery: 1, Registry: reg, Capacity: 8})
	tr := tracer.Start(StageBurst)
	if tr == nil {
		t.Fatal("SampleEvery=1 must trace every burst")
	}
	if tr.ID() == "" {
		t.Fatal("traced burst must have an ID")
	}
	runInstrumented(tr)

	recent := tracer.Recent()
	if len(recent) != 1 {
		t.Fatalf("recent ring has %d traces, want 1", len(recent))
	}
	td := recent[0]
	if td.Spans[0].Name != StageBurst || td.Spans[0].Parent != -1 {
		t.Fatalf("root span = %+v", td.Spans[0])
	}
	names := map[string]int{}
	for _, sp := range td.Spans {
		names[sp.Name]++
		if sp.DurNS < 0 {
			t.Fatalf("span %s has negative duration", sp.Name)
		}
	}
	for _, want := range []string{StageAP, StageSanitize, StageEstimate, StageCluster, StageSelect, StageLocate} {
		if names[want] == 0 {
			t.Fatalf("span %s missing from trace: %v", want, names)
		}
	}
	// Attributes survive the snapshot with their types.
	for _, sp := range td.Spans {
		if sp.Name == StageSelect {
			ls, ok := sp.Attrs["likelihoods"].([]float64)
			if !ok || len(ls) != 2 {
				t.Fatalf("select span attrs = %v", sp.Attrs)
			}
		}
	}
	// Histogram sink: one observation per canonical span.
	var estObs uint64
	for _, s := range reg.Snapshot() {
		if s.Name == "spotfi_trace_span_seconds" && strings.Contains(s.Labels, "estimate") {
			estObs = s.Count
		}
	}
	if estObs != 4 {
		t.Fatalf("estimate histogram has %d observations, want 4", estObs)
	}
}

func TestSampling(t *testing.T) {
	tracer := New(Config{SampleEvery: 3})
	traced := 0
	for i := 0; i < 9; i++ {
		if tr := tracer.Start(StageBurst); tr != nil {
			traced++
			tr.Finish()
		}
	}
	if traced != 3 {
		t.Fatalf("1-in-3 sampling traced %d of 9", traced)
	}
	disabled := New(Config{SampleEvery: 0})
	if disabled.Start(StageBurst) != nil {
		t.Fatal("SampleEvery=0 must disable tracing")
	}
	var nilTracer *Tracer
	if nilTracer.Start(StageBurst) != nil {
		t.Fatal("nil tracer must not trace")
	}
}

func TestSlowRetention(t *testing.T) {
	tracer := New(Config{SampleEvery: 1, Capacity: 2, SlowCapacity: 4, SlowThreshold: 100 * time.Millisecond})
	slow := tracer.StartAt(StageBurst, time.Now().Add(-time.Second))
	slowID := slow.ID()
	slow.Finish()
	// Flood the recent ring so the slow trace is evicted from it.
	for i := 0; i < 5; i++ {
		tracer.Start(StageBurst).Finish()
	}
	for _, td := range tracer.Recent() {
		if td.ID == slowID {
			t.Fatalf("slow trace still in size-2 recent ring after 5 pushes")
		}
	}
	found := false
	for _, td := range tracer.Slow() {
		if td.ID == slowID && td.Slow {
			found = true
		}
	}
	if !found {
		t.Fatal("slow trace was not retained in the slow ring")
	}
}

func TestFinishIdempotentAndLateSpansDropped(t *testing.T) {
	tracer := New(Config{SampleEvery: 1})
	tr := tracer.Start(StageBurst)
	tr.Finish()
	tr.Finish()
	if got := len(tracer.Recent()); got != 1 {
		t.Fatalf("double Finish collected %d traces", got)
	}
	if sp := tr.Root().StartSpan(StageAP); sp != nil {
		t.Fatal("span started after Finish must be dropped")
	}
}

func TestConcurrentChildSpans(t *testing.T) {
	tracer := New(Config{SampleEvery: 1})
	tr := tracer.Start(StageBurst)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sp := tr.Root().StartSpan(StageEstimate)
			sp.SetInt("pkt", int64(i))
			sp.End()
		}(i)
	}
	wg.Wait()
	tr.Finish()
	td := tracer.Recent()[0]
	if len(td.Spans) != 17 {
		t.Fatalf("got %d spans, want 17", len(td.Spans))
	}
}

// TestDisabledPathAllocs is the hot-path guard the CI benchmark smoke step
// enforces: with tracing disabled or sampled out, the full instrumentation
// sequence of a burst must allocate nothing.
func TestDisabledPathAllocs(t *testing.T) {
	reg := obs.NewRegistry()
	cases := map[string]*Tracer{
		"nil-tracer": nil,
		"disabled":   New(Config{SampleEvery: 0, Registry: reg}),
		"sampled-out": func() *Tracer {
			tr := New(Config{SampleEvery: 1 << 30})
			tr.Start(StageBurst).Finish() // consume the one sampled-in slot
			return tr
		}(),
	}
	for name, tracer := range cases {
		allocs := testing.AllocsPerRun(200, func() {
			tr := tracer.Start(StageBurst)
			if tr != nil {
				t.Fatalf("%s: expected sampled-out trace", name)
			}
			runInstrumented(tr)
		})
		if allocs != 0 {
			t.Errorf("%s: disabled trace path allocates %.1f objects per burst, want 0", name, allocs)
		}
	}
}

func TestHandlerJSONAndWaterfall(t *testing.T) {
	tracer := New(Config{SampleEvery: 1, SlowThreshold: time.Nanosecond})
	tr := tracer.StartAt(StageBurst, time.Now().Add(-50*time.Millisecond))
	runInstrumented(tr)

	rec := httptest.NewRecorder()
	tracer.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	var body struct {
		Recent []TraceData `json:"recent"`
		Slow   []TraceData `json:"slow"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rec.Body.String())
	}
	if len(body.Recent) != 1 || len(body.Slow) != 1 {
		t.Fatalf("got %d recent, %d slow traces", len(body.Recent), len(body.Slow))
	}
	if body.Recent[0].DurNS < int64(50*time.Millisecond) {
		t.Fatalf("trace duration %d ns, want ≥ 50ms", body.Recent[0].DurNS)
	}

	rec = httptest.NewRecorder()
	tracer.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?view=html", nil))
	html := rec.Body.String()
	for _, want := range []string{"spotfi burst traces", StageSanitize, StageLocate, "SLOW"} {
		if !strings.Contains(html, want) {
			t.Fatalf("waterfall HTML missing %q", want)
		}
	}

	rec = httptest.NewRecorder()
	tracer.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?slow=1&n=0", nil))
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if len(body.Recent) != 0 || len(body.Slow) != 0 {
		t.Fatalf("slow=1&n=0 returned %d recent, %d slow", len(body.Recent), len(body.Slow))
	}
}

func TestRingEviction(t *testing.T) {
	tracer := New(Config{SampleEvery: 1, Capacity: 3})
	var ids []string
	for i := 0; i < 5; i++ {
		tr := tracer.Start(StageBurst)
		ids = append(ids, tr.ID())
		tr.Finish()
	}
	got := tracer.Recent()
	if len(got) != 3 {
		t.Fatalf("ring holds %d, want 3", len(got))
	}
	// Newest first: ids[4], ids[3], ids[2].
	for i, want := range []string{ids[4], ids[3], ids[2]} {
		if got[i].ID != want {
			t.Fatalf("ring[%d] = %s, want %s", i, got[i].ID, want)
		}
	}
}

// BenchmarkTraceDisabled measures the per-burst cost of the trace layer
// with tracing sampled out — the price every burst pays in production.
func BenchmarkTraceDisabled(b *testing.B) {
	tracer := New(Config{SampleEvery: 0})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		runInstrumented(tracer.Start(StageBurst))
	}
}

// BenchmarkTraceEnabled measures the cost of a fully sampled burst trace.
func BenchmarkTraceEnabled(b *testing.B) {
	tracer := New(Config{SampleEvery: 1, Capacity: 16})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		runInstrumented(tracer.Start(StageBurst))
	}
}
