package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"html/template"
	"net/http"
	"sort"
	"strconv"
	"time"
)

// Handler serves the trace rings — mount it at /debug/traces.
//
//	GET /debug/traces            → JSON {"recent": [...], "slow": [...]}
//	GET /debug/traces?n=10       → at most 10 traces per ring
//	GET /debug/traces?slow=1     → only the slow ring
//	GET /debug/traces?view=html  → HTML waterfall of the same selection
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		recent, slow := t.Recent(), t.Slow()
		if r.URL.Query().Get("slow") == "1" {
			recent = nil
		}
		if n, err := strconv.Atoi(r.URL.Query().Get("n")); err == nil && n >= 0 {
			if len(recent) > n {
				recent = recent[:n]
			}
			if len(slow) > n {
				slow = slow[:n]
			}
		}
		if r.URL.Query().Get("view") == "html" {
			writeWaterfall(w, recent, slow)
			return
		}
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			Recent []TraceData `json:"recent"`
			Slow   []TraceData `json:"slow"`
		}{recent, slow}); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		//lint:allow errdrop a failed write to the client has no one left to tell
		_, _ = w.Write(buf.Bytes())
	})
}

// rowView is one span row of the waterfall.
type rowView struct {
	Name     string
	Depth    int
	Indent   int // px
	LeftPct  float64
	WidthPct float64
	Dur      string
	Attrs    string
}

// traceView is one trace section of the waterfall page.
type traceView struct {
	ID    string
	Start string
	Dur   string
	Slow  bool
	Rows  []rowView
}

var waterfallTmpl = template.Must(template.New("waterfall").Parse(`<!DOCTYPE html>
<html><head><title>spotfi traces</title><style>
body { font: 13px/1.5 monospace; margin: 1.5em; background: #fafafa; color: #222; }
h1 { font-size: 16px; }
.trace { border: 1px solid #ddd; background: #fff; margin-bottom: 1.2em; padding: .6em .8em; }
.trace.slow { border-color: #c0392b; }
.hdr { margin-bottom: .4em; }
.hdr .slowtag { color: #c0392b; font-weight: bold; }
.row { display: flex; align-items: center; height: 1.4em; }
.name { width: 30%; overflow: hidden; text-overflow: ellipsis; white-space: nowrap; }
.lane { position: relative; flex: 1; height: .9em; background: #f0f0f0; }
.bar { position: absolute; top: 0; height: 100%; background: #4a90d9; min-width: 1px; }
.dur { width: 7em; text-align: right; color: #666; }
.attrs { color: #888; margin-left: .8em; white-space: nowrap; overflow: hidden; text-overflow: ellipsis; max-width: 45%; }
</style></head><body>
<h1>spotfi burst traces</h1>
{{if not .}}<p>no traces collected yet</p>{{end}}
{{range .}}<div class="trace{{if .Slow}} slow{{end}}">
<div class="hdr"><b>{{.ID}}</b> · {{.Start}} · {{.Dur}}{{if .Slow}} · <span class="slowtag">SLOW</span>{{end}}</div>
{{range .Rows}}<div class="row">
<span class="name" style="padding-left:{{.Indent}}px">{{.Name}}</span>
<span class="lane"><span class="bar" style="left:{{printf "%.3f" .LeftPct}}%;width:{{printf "%.3f" .WidthPct}}%"></span></span>
<span class="dur">{{.Dur}}</span>
<span class="attrs">{{.Attrs}}</span>
</div>
{{end}}</div>
{{end}}</body></html>
`))

func writeWaterfall(w http.ResponseWriter, recent, slow []TraceData) {
	seen := make(map[string]bool)
	var views []traceView
	for _, td := range append(append([]TraceData(nil), slow...), recent...) {
		if seen[td.ID] {
			continue
		}
		seen[td.ID] = true
		views = append(views, buildTraceView(td))
	}
	// Render to a buffer first: executing straight into w means a template
	// error (or a client hanging up mid-body) lands after the 200 header is
	// out, and the http.Error turns into a superfluous-WriteHeader log.
	var buf bytes.Buffer
	if err := waterfallTmpl.Execute(&buf, views); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	//lint:allow errdrop a failed write to the client has no one left to tell
	_, _ = w.Write(buf.Bytes())
}

func buildTraceView(td TraceData) traceView {
	tv := traceView{
		ID:    td.ID,
		Start: td.Start.Format(time.RFC3339Nano),
		Dur:   time.Duration(td.DurNS).String(),
		Slow:  td.Slow,
	}
	depth := make([]int, len(td.Spans))
	for i, sp := range td.Spans {
		if sp.Parent >= 0 && sp.Parent < i {
			depth[i] = depth[sp.Parent] + 1
		}
	}
	total := float64(td.DurNS)
	if total <= 0 {
		total = 1
	}
	for i, sp := range td.Spans {
		tv.Rows = append(tv.Rows, rowView{
			Name:     sp.Name,
			Depth:    depth[i],
			Indent:   depth[i] * 12,
			LeftPct:  100 * float64(sp.StartNS) / total,
			WidthPct: 100 * float64(sp.DurNS) / total,
			Dur:      time.Duration(sp.DurNS).String(),
			Attrs:    renderAttrs(sp.Attrs),
		})
	}
	return tv
}

// renderAttrs flattens an attribute map into "k=v k=v" with sorted keys.
func renderAttrs(attrs map[string]any) string {
	if len(attrs) == 0 {
		return ""
	}
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := ""
	for i, k := range keys {
		if i > 0 {
			out += " "
		}
		switch v := attrs[k].(type) {
		case float64:
			out += fmt.Sprintf("%s=%.4g", k, v)
		default:
			out += fmt.Sprintf("%s=%v", k, v)
		}
	}
	return out
}
