// Package trace is a dependency-free span/trace layer for the SpotFi
// burst pipeline. Each localized burst gets one Trace holding a tree of
// Spans, one per pipeline stage (collector assembly, per-packet sanitize
// and super-resolution, clustering, direct-path selection, the Eq. 9
// solve), each carrying wall time plus stage-specific DSP attributes
// (STO slope removed, eigenvalue gap, cluster likelihoods, chosen
// direct-path AoA/ToF, solver iterations).
//
// Completed traces feed three sinks:
//
//  1. per-span latency histograms registered on an obs.Registry, so stage
//     timings appear on /metrics;
//  2. a bounded in-memory ring of recent traces served over HTTP (JSON and
//     an HTML waterfall) by Handler, with traces slower than SlowThreshold
//     retained in a separate ring so a flood of fast bursts cannot evict
//     the interesting ones;
//  3. structured slog records for slow traces, carrying the trace ID.
//
// Sampling is 1-in-N: a sampled-out burst gets a nil *Trace, and every
// method on a nil Tracer, Trace, or Span is a no-op that performs no
// allocation — the disabled hot path costs a counter increment and nil
// checks (guarded by an AllocsPerRun test). Composite attributes should be
// built under an Enabled() check so their construction is skipped too.
package trace

import (
	"fmt"
	"log/slog"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"spotfi/internal/obs"
)

// Canonical span names of the burst pipeline. The Tracer pre-registers a
// latency histogram for each so recording stays lock-free on the hot path
// (obs registration takes the registry lock; see the obsreg analyzer).
const (
	// StageBurst is the root span: collector emit → localization done.
	StageBurst = "burst"
	// StageAssemble is collector assembly: first buffered packet → emit.
	StageAssemble = "assemble"
	// StageAP covers stages 1–2 for one AP's burst.
	StageAP = "ap"
	// StageSanitize is Algorithm 1 ToF sanitization for one packet.
	StageSanitize = "sanitize"
	// StageEstimate is super-resolution (MUSIC/JADE) for one packet.
	StageEstimate = "estimate"
	// StageCluster is Gaussian-means clustering over a burst's estimates.
	StageCluster = "cluster"
	// StageSelect is Eq. 8 scoring and direct-path selection.
	StageSelect = "select"
	// StageLocate is the Eq. 9 fused solve.
	StageLocate = "locate"
)

// PipelineStages returns the canonical span names in pipeline order.
func PipelineStages() []string {
	return []string{
		StageBurst, StageAssemble, StageAP,
		StageSanitize, StageEstimate, StageCluster, StageSelect, StageLocate,
	}
}

// Config controls a Tracer.
type Config struct {
	// SampleEvery traces 1 in N bursts: 1 traces everything, 0 disables
	// tracing entirely. Sampled-out bursts get a nil *Trace.
	SampleEvery int
	// Capacity bounds the ring of recent completed traces (default 64).
	Capacity int
	// SlowCapacity bounds the slow-trace ring (default 32).
	SlowCapacity int
	// SlowThreshold marks a completed trace as slow when its duration
	// reaches it; slow traces go to the dedicated ring and are logged.
	// Zero disables slow retention.
	SlowThreshold time.Duration
	// Registry, when non-nil, receives per-span latency histograms and
	// trace counters.
	Registry *obs.Registry
	// Logger, when non-nil, receives a structured record per slow trace.
	Logger *slog.Logger
	// ExtraSpans pre-registers histograms for additional span names beyond
	// PipelineStages (span names without a pre-registered histogram are
	// still traced, just not exported to /metrics).
	ExtraSpans []string
}

// Tracer samples bursts and collects their completed traces. A nil Tracer
// is valid and never samples.
type Tracer struct {
	every      uint64
	slowThresh time.Duration
	logger     *slog.Logger

	seq atomic.Uint64 // sampling decisions
	ids atomic.Uint64 // trace ID allocator

	started    *obs.Counter
	sampledOut *obs.Counter
	finished   *obs.Counter
	slowCount  *obs.Counter
	hists      map[string]*obs.Histogram

	mu     sync.Mutex
	recent ring
	slow   ring
}

// New builds a Tracer. Metric families (registered when cfg.Registry is
// set):
//
//	spotfi_trace_span_seconds{span="burst"|"assemble"|...}
//	spotfi_traces_started_total, spotfi_traces_sampled_out_total
//	spotfi_traces_finished_total, spotfi_traces_slow_total
func New(cfg Config) *Tracer {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 64
	}
	if cfg.SlowCapacity <= 0 {
		cfg.SlowCapacity = 32
	}
	t := &Tracer{
		every:      uint64(max(cfg.SampleEvery, 0)),
		slowThresh: cfg.SlowThreshold,
		logger:     cfg.Logger,
		recent:     ring{buf: make([]TraceData, 0, cfg.Capacity), cap: cfg.Capacity},
		slow:       ring{buf: make([]TraceData, 0, cfg.SlowCapacity), cap: cfg.SlowCapacity},
	}
	if r := cfg.Registry; r != nil {
		t.started = r.Counter("spotfi_traces_started_total", "Bursts the tracer sampled in.", nil)
		t.sampledOut = r.Counter("spotfi_traces_sampled_out_total", "Bursts the tracer sampled out (or tracing disabled).", nil)
		t.finished = r.Counter("spotfi_traces_finished_total", "Traces completed and collected.", nil)
		t.slowCount = r.Counter("spotfi_traces_slow_total", "Completed traces at or over the slow threshold.", nil)
		t.hists = make(map[string]*obs.Histogram)
		for _, name := range append(PipelineStages(), cfg.ExtraSpans...) {
			t.hists[name] = r.Histogram("spotfi_trace_span_seconds",
				"Latency of traced pipeline spans, by span name.",
				obs.LatencyBuckets, obs.Labels{"span": name})
		}
	}
	return t
}

// Start samples a new trace rooted at a span named name, starting now.
// It returns nil — a universal no-op — when the burst is sampled out,
// tracing is disabled, or t is nil.
func (t *Tracer) Start(name string) *Trace {
	if t == nil || t.every == 0 {
		t.countSampledOut()
		return nil
	}
	return t.StartAt(name, time.Now())
}

// StartAt is Start with an explicit root start time, for spans that begin
// before the sampling decision can be made (e.g. burst assembly, whose
// start is the first buffered packet's arrival).
func (t *Tracer) StartAt(name string, at time.Time) *Trace {
	if t == nil || t.every == 0 {
		t.countSampledOut()
		return nil
	}
	if n := t.seq.Add(1); t.every > 1 && (n-1)%t.every != 0 {
		t.sampledOut.Inc()
		return nil
	}
	t.started.Inc()
	tr := &Trace{tracer: t, id: t.ids.Add(1), start: at}
	tr.root = &Span{tr: tr, parent: -1, name: name, start: at}
	tr.spans = append(tr.spans, tr.root)
	return tr
}

func (t *Tracer) countSampledOut() {
	if t != nil {
		t.sampledOut.Inc()
	}
}

// Recent returns snapshots of the most recently completed traces, newest
// first. Nil-safe.
func (t *Tracer) Recent() []TraceData {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.recent.snapshot()
}

// Slow returns snapshots of retained slow traces, newest first. Nil-safe.
func (t *Tracer) Slow() []TraceData {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.slow.snapshot()
}

// collect ingests a finished trace into the sinks.
func (t *Tracer) collect(td TraceData) {
	if t == nil {
		return
	}
	t.finished.Inc()
	for _, sp := range td.Spans {
		if h := t.hists[sp.Name]; h != nil {
			h.Observe(float64(sp.DurNS) / 1e9)
		}
	}
	t.mu.Lock()
	t.recent.push(td)
	if td.Slow {
		t.slow.push(td)
	}
	t.mu.Unlock()
	if td.Slow {
		t.slowCount.Inc()
		if t.logger != nil {
			t.logger.Warn("slow burst trace",
				"trace", td.ID,
				"dur", time.Duration(td.DurNS),
				"spans", len(td.Spans))
		}
	}
}

// ring is a bounded FIFO of trace snapshots.
type ring struct {
	buf  []TraceData
	next int
	cap  int
}

func (r *ring) push(td TraceData) {
	if len(r.buf) < r.cap {
		r.buf = append(r.buf, td)
		r.next = len(r.buf) % r.cap
		return
	}
	r.buf[r.next] = td
	r.next = (r.next + 1) % r.cap
}

// snapshot returns the contents newest-first.
func (r *ring) snapshot() []TraceData {
	out := make([]TraceData, 0, len(r.buf))
	for i := 1; i <= len(r.buf); i++ {
		out = append(out, r.buf[(r.next-i+len(r.buf))%len(r.buf)])
	}
	return out
}

// Trace is one sampled burst's span tree. A nil Trace is a universal
// no-op; code under test or sampled out threads nil freely.
type Trace struct {
	tracer *Tracer
	id     uint64
	start  time.Time

	// root duplicates spans[0], which never changes after StartAt:
	// Root() reads it without the lock, so a goroutine branching child
	// spans off the root does not race with another appending to spans
	// (append rewrites the slice header Root would otherwise read).
	root *Span

	mu       sync.Mutex
	spans    []*Span // spans[0] is the root
	finished bool
}

// ID returns the trace identifier ("" on a nil trace) for log correlation.
func (tr *Trace) ID() string {
	if tr == nil {
		return ""
	}
	return fmt.Sprintf("%08x", tr.id)
}

// Root returns the root span (nil on a nil trace).
func (tr *Trace) Root() *Span {
	if tr == nil {
		return nil
	}
	return tr.root
}

// Finish closes the trace: any span still open is ended now, the snapshot
// is handed to the tracer's sinks, and further spans are dropped. Finish
// is idempotent and nil-safe. The component that completes the burst
// (normally the localization worker) owns the Finish call.
func (tr *Trace) Finish() {
	if tr == nil {
		return
	}
	now := time.Now()
	tr.mu.Lock()
	if tr.finished {
		tr.mu.Unlock()
		return
	}
	tr.finished = true
	for _, sp := range tr.spans {
		if sp.end.IsZero() {
			sp.end = now
		}
	}
	td := tr.snapshotLocked()
	tr.mu.Unlock()
	tr.tracer.collect(td)
}

// snapshotLocked renders the immutable TraceData view. Caller holds tr.mu.
func (tr *Trace) snapshotLocked() TraceData {
	td := TraceData{
		ID:    tr.ID(),
		Start: tr.start,
		Spans: make([]SpanData, len(tr.spans)),
	}
	for i, sp := range tr.spans {
		sd := SpanData{
			Name:    sp.name,
			Parent:  sp.parent,
			StartNS: sp.start.Sub(tr.start).Nanoseconds(),
			DurNS:   sp.end.Sub(sp.start).Nanoseconds(),
		}
		if len(sp.attrs) > 0 {
			sd.Attrs = make(map[string]any, len(sp.attrs))
			for _, a := range sp.attrs {
				sd.Attrs[a.key] = a.value()
			}
		}
		td.Spans[i] = sd
	}
	td.DurNS = td.Spans[0].DurNS
	if tr.tracer != nil && tr.tracer.slowThresh > 0 &&
		time.Duration(td.DurNS) >= tr.tracer.slowThresh {
		td.Slow = true
	}
	return td
}

// Span is one timed stage within a trace. A nil Span is a universal no-op.
// A span may be mutated by one goroutine at a time; starting children of
// the same parent from concurrent goroutines is safe.
type Span struct {
	tr     *Trace
	idx    int
	parent int
	name   string
	start  time.Time
	end    time.Time
	attrs  []attr
}

// Enabled reports whether the span records anything — use it to skip
// building composite attribute values on the sampled-out path.
func (sp *Span) Enabled() bool { return sp != nil }

// StartSpan starts a child span beginning now. Nil-safe.
func (sp *Span) StartSpan(name string) *Span {
	if sp == nil {
		return nil
	}
	return sp.StartSpanAt(name, time.Now())
}

// StartSpanAt starts a child span with an explicit start time (for stages
// whose beginning predates the tracing decision). Nil-safe. Spans started
// after the trace finished are dropped.
func (sp *Span) StartSpanAt(name string, at time.Time) *Span {
	if sp == nil {
		return nil
	}
	tr := sp.tr
	child := &Span{tr: tr, parent: sp.idx, name: name, start: at}
	tr.mu.Lock()
	if tr.finished {
		tr.mu.Unlock()
		return nil
	}
	child.idx = len(tr.spans)
	tr.spans = append(tr.spans, child)
	tr.mu.Unlock()
	return child
}

// End closes the span at the current time. Only the first End takes
// effect; an unfinished span is closed by Trace.Finish. Nil-safe.
func (sp *Span) End() {
	if sp == nil {
		return
	}
	now := time.Now()
	sp.tr.mu.Lock()
	if sp.end.IsZero() {
		sp.end = now
	}
	sp.tr.mu.Unlock()
}

// attr kinds.
const (
	kindInt = iota
	kindFloat
	kindStr
	kindFloats
)

type attr struct {
	key  string
	kind int
	i    int64
	f    float64
	s    string
	fs   []float64
}

// value renders the attribute for JSON, clamping non-finite floats (which
// encoding/json rejects).
func (a attr) value() any {
	switch a.kind {
	case kindInt:
		return a.i
	case kindFloat:
		return finite(a.f)
	case kindFloats:
		out := make([]float64, len(a.fs))
		for i, v := range a.fs {
			out[i] = finite(v)
		}
		return out
	default:
		return a.s
	}
}

func finite(v float64) float64 {
	switch {
	case math.IsNaN(v):
		return 0
	case math.IsInf(v, 1):
		return math.MaxFloat64
	case math.IsInf(v, -1):
		return -math.MaxFloat64
	}
	return v
}

func (sp *Span) set(a attr) {
	sp.tr.mu.Lock()
	sp.attrs = append(sp.attrs, a)
	sp.tr.mu.Unlock()
}

// SetInt records an integer attribute. Nil-safe, allocation-free when nil.
func (sp *Span) SetInt(key string, v int64) {
	if sp == nil {
		return
	}
	sp.set(attr{key: key, kind: kindInt, i: v})
}

// SetFloat records a float attribute. Nil-safe, allocation-free when nil.
func (sp *Span) SetFloat(key string, v float64) {
	if sp == nil {
		return
	}
	sp.set(attr{key: key, kind: kindFloat, f: v})
}

// SetStr records a string attribute. Nil-safe, allocation-free when nil.
func (sp *Span) SetStr(key, v string) {
	if sp == nil {
		return
	}
	sp.set(attr{key: key, kind: kindStr, s: v})
}

// SetFloats records a float-slice attribute (e.g. per-cluster Eq. 8
// likelihoods). The slice is copied. Build the slice under Enabled() so
// the sampled-out path does not allocate it.
func (sp *Span) SetFloats(key string, vs []float64) {
	if sp == nil {
		return
	}
	sp.set(attr{key: key, kind: kindFloats, fs: append([]float64(nil), vs...)})
}

// SpanData is the immutable snapshot of one span.
type SpanData struct {
	// Name is the stage name (see the Stage constants).
	Name string `json:"name"`
	// Parent is the index of the parent span in TraceData.Spans (-1 for
	// the root).
	Parent int `json:"parent"`
	// StartNS is the span start as an offset from the trace start.
	StartNS int64 `json:"start_ns"`
	// DurNS is the span duration in nanoseconds.
	DurNS int64 `json:"dur_ns"`
	// Attrs holds the stage-specific attributes (int64, float64, string,
	// or []float64 values).
	Attrs map[string]any `json:"attrs,omitempty"`
}

// TraceData is the immutable snapshot of one completed trace.
type TraceData struct {
	ID    string     `json:"id"`
	Start time.Time  `json:"start"`
	DurNS int64      `json:"dur_ns"`
	Slow  bool       `json:"slow,omitempty"`
	Spans []SpanData `json:"spans"`
}
