package obs

import (
	"math"
	"runtime/metrics"
)

// Runtime metric names read from runtime/metrics at scrape time.
const (
	rmGoroutines = "/sched/goroutines:goroutines"
	rmHeapObj    = "/memory/classes/heap/objects:bytes"
	rmHeapUnused = "/memory/classes/heap/unused:bytes"
	rmGCPauses   = "/sched/pauses/total/gc:seconds"
)

// RegisterRuntimeMetrics registers Go runtime telemetry on r, read from
// runtime/metrics at every scrape:
//
//	spotfi_go_goroutines          live goroutine count
//	spotfi_go_heap_inuse_bytes    bytes in in-use heap spans
//	spotfi_go_gc_pause_p99_seconds  p99 stop-the-world GC pause since start
//
// Pipeline-level series say whether SpotFi is keeping up; these say whether
// the process is about to fall over (goroutine leak, heap growth, GC
// stalls) before it does.
func RegisterRuntimeMetrics(r *Registry) {
	r.GaugeFunc("spotfi_go_goroutines",
		"Live goroutines in the process.", nil,
		func() float64 { return readRuntimeValue(rmGoroutines) })
	r.GaugeFunc("spotfi_go_heap_inuse_bytes",
		"Bytes in in-use heap spans (live objects plus span-internal free space).", nil,
		func() float64 {
			return readRuntimeValue(rmHeapObj) + readRuntimeValue(rmHeapUnused)
		})
	r.GaugeFunc("spotfi_go_gc_pause_p99_seconds",
		"99th-percentile stop-the-world GC pause duration since process start.", nil,
		func() float64 { return readRuntimeP99(rmGCPauses) })
}

// readRuntimeValue reads one scalar runtime/metrics sample (0 when the
// metric is unsupported on this Go version).
func readRuntimeValue(name string) float64 {
	s := []metrics.Sample{{Name: name}}
	metrics.Read(s)
	switch s[0].Value.Kind() {
	case metrics.KindUint64:
		return float64(s[0].Value.Uint64())
	case metrics.KindFloat64:
		return s[0].Value.Float64()
	default:
		return 0
	}
}

// readRuntimeP99 reads a runtime/metrics histogram and returns its p99 (0
// when unsupported or empty).
func readRuntimeP99(name string) float64 {
	s := []metrics.Sample{{Name: name}}
	metrics.Read(s)
	if s[0].Value.Kind() != metrics.KindFloat64Histogram {
		return 0
	}
	return histP99(s[0].Value.Float64Histogram())
}

// histP99 computes the 99th percentile from a runtime/metrics histogram.
// Buckets are half-open (Buckets[i], Buckets[i+1]]; the upper edge of the
// bucket containing the percentile is returned, clamped to the largest
// finite edge for the overflow bucket.
func histP99(h *metrics.Float64Histogram) float64 {
	if h == nil || len(h.Counts) == 0 {
		return 0
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := uint64(math.Ceil(0.99 * float64(total)))
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= target {
			// Bucket i spans (Buckets[i], Buckets[i+1]].
			hi := len(h.Buckets) - 1
			edge := i + 1
			if edge > hi {
				edge = hi
			}
			v := h.Buckets[edge]
			if math.IsInf(v, 1) && edge > 0 {
				v = h.Buckets[edge-1]
			}
			if math.IsInf(v, 0) || math.IsNaN(v) {
				return 0
			}
			return v
		}
	}
	return 0
}
