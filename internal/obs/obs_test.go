package obs

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("frames_total", "frames read", nil)
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	// Get-or-create: same name returns the same counter.
	if r.Counter("frames_total", "frames read", nil) != c {
		t.Fatal("re-registration returned a different counter")
	}

	g := r.Gauge("pending", "pending entries", nil)
	g.Set(10)
	g.Add(-3)
	g.Inc()
	g.Dec()
	if g.Value() != 7 {
		t.Fatalf("gauge = %d, want 7", g.Value())
	}
}

func TestNilMetricsAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(2)
	h.Observe(0.5)
	h.ObserveSince(time.Now())
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil metrics reported nonzero values")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_seconds", "stage latency", []float64{0.01, 0.1, 1}, nil)
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 2} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got := h.Sum(); math.Abs(got-2.565) > 1e-12 {
		t.Fatalf("sum = %v, want 2.565", got)
	}
	snap := r.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot has %d samples", len(snap))
	}
	s := snap[0]
	want := []Bucket{
		{UpperBound: 0.01, CumulativeCount: 2}, // 0.005 and the boundary 0.01
		{UpperBound: 0.1, CumulativeCount: 3},
		{UpperBound: 1, CumulativeCount: 4},
		{UpperBound: math.Inf(1), CumulativeCount: 5},
	}
	if len(s.Buckets) != len(want) {
		t.Fatalf("got %d buckets, want %d", len(s.Buckets), len(want))
	}
	for i, b := range s.Buckets {
		if b != want[i] {
			t.Fatalf("bucket %d = %+v, want %+v", i, b, want[i])
		}
	}
}

func TestLabeledFamilies(t *testing.T) {
	r := NewRegistry()
	a := r.Histogram("stage_seconds", "per-stage latency", []float64{1}, Labels{"stage": "sanitize"})
	b := r.Histogram("stage_seconds", "per-stage latency", []float64{1}, Labels{"stage": "estimate"})
	if a == b {
		t.Fatal("distinct label sets shared a histogram")
	}
	a.Observe(0.5)
	b.Observe(2)
	var buf strings.Builder
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Count(out, "# TYPE stage_seconds histogram") != 1 {
		t.Fatalf("family header not emitted exactly once:\n%s", out)
	}
	for _, line := range []string{
		`stage_seconds_bucket{stage="sanitize",le="1"} 1`,
		`stage_seconds_bucket{stage="estimate",le="1"} 0`,
		`stage_seconds_bucket{stage="estimate",le="+Inf"} 1`,
		`stage_seconds_count{stage="sanitize"} 1`,
		`stage_seconds_sum{stage="estimate"} 2`,
	} {
		if !strings.Contains(out, line+"\n") {
			t.Fatalf("missing line %q in:\n%s", line, out)
		}
	}
}

func TestGaugeFunc(t *testing.T) {
	r := NewRegistry()
	v := 3.0
	r.GaugeFunc("pending_targets", "live map size", nil, func() float64 { return v })
	if got := r.Snapshot()[0].Value; got != 3 {
		t.Fatalf("gauge func read %v, want 3", got)
	}
	v = 9
	if got := r.Snapshot()[0].Value; got != 9 {
		t.Fatalf("gauge func read %v, want 9", got)
	}
}

func TestTypeConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("conflicting type registration did not panic")
		}
	}()
	r.Gauge("x_total", "", nil)
}

func TestPrometheusEndpoint(t *testing.T) {
	r := NewRegistry()
	r.Counter("bursts_total", "bursts emitted", nil).Add(7)
	r.Gauge("conns", "open connections", nil).Set(2)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	res, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	buf := make([]byte, 4096)
	n, _ := res.Body.Read(buf)
	out := string(buf[:n])
	if ct := res.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	for _, line := range []string{
		"# HELP bursts_total bursts emitted",
		"# TYPE bursts_total counter",
		"bursts_total 7",
		"conns 2",
	} {
		if !strings.Contains(out, line) {
			t.Fatalf("missing %q in:\n%s", line, out)
		}
	}
}

// TestConcurrentUpdates exercises the lock-free paths under the race
// detector: counters, gauges, and the CAS loop in Histogram.Observe.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "", nil)
	g := r.Gauge("g", "", nil)
	h := r.Histogram("h_seconds", "", LatencyBuckets, nil)
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*per)
	}
	if g.Value() != workers*per {
		t.Fatalf("gauge = %d, want %d", g.Value(), workers*per)
	}
	if h.Count() != workers*per {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*per)
	}
	if got := h.Sum(); math.Abs(got-workers*per*0.001) > 1e-6 {
		t.Fatalf("histogram sum = %v", got)
	}
}
