// Package obs is a dependency-free metrics layer for the SpotFi serving
// path: atomic counters, gauges, and fixed-bucket latency histograms,
// collected in a Registry that exposes a structured snapshot API and
// Prometheus text exposition over HTTP.
//
// Metrics are registered once (get-or-create by name + label set) and then
// updated lock-free on the hot path. All update methods are safe on a nil
// receiver and do nothing, so instrumentation points can be left unwired —
// a pipeline run without a registry pays only a nil check.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Labels is an optional set of constant labels attached to one series of a
// metric family (e.g. {"stage": "sanitize"}).
type Labels map[string]string

// render returns the canonical `k="v",...` form with sorted keys.
func (l Labels) render() string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, l[k])
	}
	return b.String()
}

// Counter is a monotonically increasing counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds one. No-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. No-op on a nil receiver.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous integer value that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set stores v. No-op on a nil receiver.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adds delta (which may be negative). No-op on a nil receiver.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Inc adds one. No-op on a nil receiver.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one. No-op on a nil receiver.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram of float64 observations (typically
// latencies in seconds). Buckets are cumulative in exposition, matching
// Prometheus semantics.
type Histogram struct {
	bounds []float64 // sorted upper bounds; implicit +Inf bucket follows
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // math.Float64bits of the running sum
}

// LatencyBuckets spans 10 µs … 10 s, a sensible default for pipeline
// stage timings. The sub-100 µs bounds matter since the PR-6 hot-path
// rework: a warm MUSIC estimate runs ~0.34 ms and admission decisions are
// microseconds, so a floor at 100 µs flattened the entire fast path into
// one or two buckets.
var LatencyBuckets = []float64{
	10e-6, 25e-6, 50e-6, 100e-6, 250e-6, 500e-6, 750e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
	1, 2.5, 5, 10,
}

// ExpBuckets returns perDecade log-spaced bucket bounds per power of ten
// from min up to (and including the first bound ≥) max — HDR-style
// resolution for histograms whose observations span several orders of
// magnitude, e.g. packet→fix latency from hundreds of microseconds under
// light load to seconds under overload. It panics on a non-positive range
// or perDecade, like a malformed literal bucket slice would fail review.
func ExpBuckets(min, max float64, perDecade int) []float64 {
	if min <= 0 || max <= min || perDecade < 1 {
		panic("obs: ExpBuckets needs 0 < min < max and perDecade ≥ 1")
	}
	// Bounds are computed by index (min·10^(i/perDecade)), not by repeated
	// multiplication, so no float error accumulates across buckets.
	var out []float64
	for i := 0; ; i++ {
		b := min * math.Pow(10, float64(i)/float64(perDecade))
		out = append(out, b)
		if b >= max {
			return out
		}
	}
}

func newHistogram(buckets []float64) *Histogram {
	bounds := append([]float64(nil), buckets...)
	sort.Float64s(bounds)
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one value. Safe for concurrent use; no-op on a nil
// receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since start. No-op on a nil
// receiver.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(start).Seconds())
}

// Count returns how many values were observed (0 on a nil receiver).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on a nil receiver).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Bounds returns a copy of the bucket upper bounds (the implicit +Inf
// bucket is not included). Nil on a nil receiver.
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	return append([]float64(nil), h.bounds...)
}

// Cumulative returns the cumulative per-bucket counts, len(Bounds())+1
// entries with the final one equal to Count() — the raw material for
// windowed quantile estimation (internal/obs/slo samples these and
// differences consecutive samples). Nil on a nil receiver. Counts are read
// bucket-by-bucket without a global lock, so under concurrent Observe the
// vector may be off by in-flight observations; consumers difference
// samples, where the error stays bounded by concurrency, not time.
func (h *Histogram) Cumulative() []uint64 {
	if h == nil {
		return nil
	}
	out := make([]uint64, len(h.counts))
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		out[i] = cum
	}
	return out
}

// CountAtOrBelow returns how many observations fell into buckets whose
// upper bound is ≤ bound — the "good event" count for a latency objective.
// bound is snapped down to the nearest bucket boundary; pick SLO bounds
// that are bucket bounds for exact accounting. 0 on a nil receiver.
func (h *Histogram) CountAtOrBelow(bound float64) uint64 {
	if h == nil {
		return 0
	}
	// First bound strictly greater than bound: buckets [0,i) are ≤ bound.
	i := sort.SearchFloat64s(h.bounds, bound)
	//lint:allow floateq callers must pass an exact bucket bound; nearest-bucket rounding would silently miscount
	if i < len(h.bounds) && h.bounds[i] == bound {
		i++
	}
	var cum uint64
	for j := 0; j < i; j++ {
		cum += h.counts[j].Load()
	}
	return cum
}

// Metric type names as used in Prometheus exposition.
const (
	TypeCounter   = "counter"
	TypeGauge     = "gauge"
	TypeHistogram = "histogram"
)

// series is one labeled instance of a metric family.
type series struct {
	labels  string
	counter *Counter
	gauge   *Gauge
	gaugeFn func() float64
	hist    *Histogram
}

// family groups all series sharing a metric name.
type family struct {
	name   string
	help   string
	typ    string
	order  []string
	series map[string]*series
	// buckets pins the bucket layout of a histogram family: Prometheus
	// consumers aggregate across a family's series, which is only sound
	// when every series shares one layout.
	buckets []float64
}

// DefaultSeriesLimit caps how many labeled series one metric family may
// hold before new label sets are dropped and counted instead of
// registered. Lazily-registered per-AP / per-target series (e.g.
// spotfi_ap_health{ap=…}) are driven by whatever identifiers the traffic
// carries, and a load generator replaying thousands of APs must not grow
// the registry — and every scrape — without bound.
const DefaultSeriesLimit = 1000

// droppedLabelsMetric counts label sets refused by the per-family series
// cap. The family is materialized on the first drop, so registries that
// never hit a cap expose exactly the series their code registered.
const droppedLabelsMetric = "spotfi_obs_dropped_labels_total"

// Registry holds a set of metric families. The zero value is not usable;
// call NewRegistry. Registration takes a lock; updates on the returned
// metrics are lock-free.
type Registry struct {
	mu          sync.Mutex
	order       []string
	families    map[string]*family
	seriesLimit int
	dropped     *Counter // non-nil once the drop family is materialized
}

// NewRegistry returns an empty registry with the default per-family
// series cap.
func NewRegistry() *Registry {
	return &Registry{
		families:    make(map[string]*family),
		seriesLimit: DefaultSeriesLimit,
	}
}

// SetSeriesLimit overrides the per-family series cap (≤ 0 disables the
// cap). Call before high-cardinality traffic arrives; lowering it later
// does not evict already-registered series.
func (r *Registry) SetSeriesLimit(n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seriesLimit = n
}

// DroppedLabels returns how many label sets the series cap has refused.
func (r *Registry) DroppedLabels() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped.Value()
}

// dropSeriesLocked counts one refused label set, materializing the
// spotfi_obs_dropped_labels_total family on first use. Caller holds r.mu.
func (r *Registry) dropSeriesLocked() {
	if r.dropped == nil {
		r.dropped = &Counter{}
		f := &family{
			name:   droppedLabelsMetric,
			help:   "Label sets refused by the per-family series cap (SetSeriesLimit).",
			typ:    TypeCounter,
			series: map[string]*series{"": {counter: r.dropped}},
			order:  []string{""},
		}
		r.families[droppedLabelsMetric] = f
		r.order = append(r.order, droppedLabelsMetric)
	}
	r.dropped.Inc()
}

// lookup get-or-creates the (family, series) pair, enforcing that a name is
// only ever used with one metric type (and, for histograms, one bucket
// layout). Misuse is a programming error and panics, like redeclaring a
// variable would fail to compile.
func (r *Registry) lookup(name, help, typ string, labels Labels, buckets []float64) *series {
	if name == "" {
		panic("obs: empty metric name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, series: make(map[string]*series)}
		r.families[name] = f
		r.order = append(r.order, name)
	} else if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.typ, typ))
	}
	if typ == TypeHistogram {
		sorted := append([]float64(nil), buckets...)
		sort.Float64s(sorted)
		if f.buckets == nil {
			f.buckets = sorted
		} else if !equalBounds(f.buckets, sorted) {
			panic(fmt.Sprintf("obs: histogram %q registered with conflicting buckets", name))
		}
	}
	key := labels.render()
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: key}
		// The series cap bounds label cardinality, not correctness: past
		// it, callers still get a fully functional handle — it just is not
		// retained or exported, and the drop is counted. A fleet replaying
		// thousands of APs degrades scrape coverage, never crashes.
		if r.seriesLimit > 0 && len(f.series) >= r.seriesLimit {
			r.dropSeriesLocked()
			return s
		}
		f.series[key] = s
		f.order = append(f.order, key)
	}
	return s
}

// Counter returns the counter for name+labels, registering it on first use.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	s := r.lookup(name, help, TypeCounter, labels, nil)
	if s.counter == nil {
		s.counter = &Counter{}
	}
	return s.counter
}

// Gauge returns the gauge for name+labels, registering it on first use.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	s := r.lookup(name, help, TypeGauge, labels, nil)
	if s.gauge == nil {
		s.gauge = &Gauge{}
	}
	return s.gauge
}

// GaugeFunc registers a gauge whose value is read by calling fn at scrape
// time — for values already maintained elsewhere (e.g. a map size under
// someone else's lock). fn must be safe to call from any goroutine.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	s := r.lookup(name, help, TypeGauge, labels, nil)
	s.gaugeFn = fn
}

// Histogram returns the histogram for name+labels, registering it on first
// use with the given bucket upper bounds (a +Inf bucket is implicit). The
// first registration of a family pins its bucket layout; registering the
// same family again with different buckets panics — previously the later
// buckets were silently ignored, which hid per-histogram overrides (e.g. a
// µs-resolution sojourn histogram) behind whichever call site ran first.
func (r *Registry) Histogram(name, help string, buckets []float64, labels Labels) *Histogram {
	s := r.lookup(name, help, TypeHistogram, labels, buckets)
	if s.hist == nil {
		s.hist = newHistogram(buckets)
	}
	return s.hist
}

// equalBounds reports whether two sorted bucket layouts are identical.
func equalBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		//lint:allow floateq bucket grids are shared only when bit-identical
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Bucket is one cumulative histogram bucket in a snapshot.
type Bucket struct {
	// UpperBound is the inclusive upper bound (+Inf for the last bucket).
	UpperBound float64
	// CumulativeCount is how many observations were ≤ UpperBound.
	CumulativeCount uint64
}

// Sample is one series' state in a snapshot.
type Sample struct {
	// Name is the metric family name.
	Name string
	// Type is TypeCounter, TypeGauge, or TypeHistogram.
	Type string
	// Labels is the rendered label set ("" if unlabeled).
	Labels string
	// Value holds counter and gauge values.
	Value float64
	// Sum, Count, and Buckets hold histogram state.
	Sum     float64
	Count   uint64
	Buckets []Bucket
}

// Snapshot returns a consistent point-in-time view of every series, in
// registration order.
func (r *Registry) Snapshot() []Sample {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Sample
	for _, name := range r.order {
		f := r.families[name]
		for _, key := range f.order {
			s := f.series[key]
			smp := Sample{Name: f.name, Type: f.typ, Labels: s.labels}
			switch {
			case s.counter != nil:
				smp.Value = float64(s.counter.Value())
			case s.gaugeFn != nil:
				smp.Value = s.gaugeFn()
			case s.gauge != nil:
				smp.Value = float64(s.gauge.Value())
			case s.hist != nil:
				smp.Sum = s.hist.Sum()
				var cum uint64
				for i, b := range s.hist.bounds {
					cum += s.hist.counts[i].Load()
					smp.Buckets = append(smp.Buckets, Bucket{UpperBound: b, CumulativeCount: cum})
				}
				cum += s.hist.counts[len(s.hist.bounds)].Load()
				smp.Buckets = append(smp.Buckets, Bucket{UpperBound: math.Inf(1), CumulativeCount: cum})
				smp.Count = cum
			}
			out = append(out, smp)
		}
	}
	return out
}

// WritePrometheus writes every family in the Prometheus text exposition
// format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	// Snapshot under the registry lock, format outside it.
	r.mu.Lock()
	type fam struct {
		name, help, typ string
		samples         []Sample
	}
	var fams []fam
	for _, name := range r.order {
		f := r.families[name]
		fams = append(fams, fam{name: f.name, help: f.help, typ: f.typ})
	}
	r.mu.Unlock()
	byName := make(map[string][]Sample)
	for _, s := range r.Snapshot() {
		byName[s.Name] = append(byName[s.Name], s)
	}

	for _, f := range fams {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		for _, s := range byName[f.name] {
			if err := writeSample(w, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSample(w io.Writer, s Sample) error {
	if s.Type != TypeHistogram {
		_, err := fmt.Fprintf(w, "%s %s\n", seriesName(s.Name, s.Labels), formatValue(s.Value))
		return err
	}
	for _, b := range s.Buckets {
		le := "+Inf"
		if !math.IsInf(b.UpperBound, 1) {
			le = formatValue(b.UpperBound)
		}
		labels := s.Labels
		if labels != "" {
			labels += ","
		}
		labels += fmt.Sprintf("le=%q", le)
		if _, err := fmt.Fprintf(w, "%s_bucket{%s} %d\n", s.Name, labels, b.CumulativeCount); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s %s\n", seriesName(s.Name+"_sum", s.Labels), formatValue(s.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %d\n", seriesName(s.Name+"_count", s.Labels), s.Count)
	return err
}

func seriesName(name, labels string) string {
	if labels == "" {
		return name
	}
	return name + "{" + labels + "}"
}

func formatValue(v float64) string {
	return fmt.Sprintf("%g", v)
}

// Handler returns an http.Handler serving the registry in Prometheus text
// format — mount it at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
