package locate

import (
	"fmt"
	"math"

	"spotfi/internal/geom"
)

// SpectrumObservation is one AP's averaged AoA pseudo-spectrum — the input
// the ArrayTrack-style baseline localizer triangulates from.
type SpectrumObservation struct {
	Pos         geom.Point
	NormalAngle float64
	// Thetas is the AoA grid (radians, ascending); P the pseudo-spectrum
	// averaged over the packet burst.
	Thetas []float64
	P      []float64
}

// interp returns the spectrum value at angle theta by linear interpolation
// on the grid, clamping outside the grid.
func (s *SpectrumObservation) interp(theta float64) float64 {
	n := len(s.Thetas)
	if n == 0 {
		return 0
	}
	if theta <= s.Thetas[0] {
		return s.P[0]
	}
	if theta >= s.Thetas[n-1] {
		return s.P[n-1]
	}
	lo, hi := 0, n-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if s.Thetas[mid] <= theta {
			lo = mid
		} else {
			hi = mid
		}
	}
	f := (theta - s.Thetas[lo]) / (s.Thetas[hi] - s.Thetas[lo])
	return s.P[lo]*(1-f) + s.P[hi]*f
}

// ArrayTrackConfig controls the baseline grid search.
type ArrayTrackConfig struct {
	Bounds Bounds
	// CoarseStepM and FineStepM are the two grid resolutions: a coarse
	// sweep followed by a fine sweep around the coarse maximum.
	CoarseStepM, FineStepM float64
}

// DefaultArrayTrackConfig returns the baseline configuration for bounds b.
func DefaultArrayTrackConfig(b Bounds) ArrayTrackConfig {
	return ArrayTrackConfig{Bounds: b, CoarseStepM: 0.5, FineStepM: 0.1}
}

// LocateArrayTrack implements the ArrayTrack likelihood-synthesis scheme:
// the location estimate maximizes Σ_i log P_i(θ̄_i(loc)) over the search
// region, i.e. the product of each AP's MUSIC spectrum evaluated at the
// bearing that location would produce.
func LocateArrayTrack(obs []SpectrumObservation, cfg ArrayTrackConfig) (geom.Point, error) {
	if len(obs) < 2 {
		return geom.Point{}, fmt.Errorf("locate: ArrayTrack needs ≥2 APs, got %d", len(obs))
	}
	for i, o := range obs {
		if len(o.Thetas) < 2 || len(o.Thetas) != len(o.P) {
			return geom.Point{}, fmt.Errorf("locate: AP %d has malformed spectrum", i)
		}
	}
	if cfg.Bounds.MinX >= cfg.Bounds.MaxX || cfg.Bounds.MinY >= cfg.Bounds.MaxY {
		return geom.Point{}, fmt.Errorf("locate: empty bounds")
	}
	if cfg.CoarseStepM <= 0 || cfg.FineStepM <= 0 {
		return geom.Point{}, fmt.Errorf("locate: grid steps must be positive")
	}

	score := func(p geom.Point) float64 {
		var s float64
		for i := range obs {
			theta := foldAoA(p.Sub(obs[i].Pos).Angle() - obs[i].NormalAngle)
			v := obs[i].interp(theta)
			if v < 1e-12 {
				v = 1e-12
			}
			s += math.Log(v)
		}
		return s
	}

	best := geom.Point{X: cfg.Bounds.MinX, Y: cfg.Bounds.MinY}
	bestScore := math.Inf(-1)
	for x := cfg.Bounds.MinX; x <= cfg.Bounds.MaxX; x += cfg.CoarseStepM {
		for y := cfg.Bounds.MinY; y <= cfg.Bounds.MaxY; y += cfg.CoarseStepM {
			p := geom.Point{X: x, Y: y}
			if s := score(p); s > bestScore {
				best, bestScore = p, s
			}
		}
	}
	// Fine sweep around the coarse maximum.
	fineBounds := Bounds{
		MinX: math.Max(cfg.Bounds.MinX, best.X-cfg.CoarseStepM),
		MaxX: math.Min(cfg.Bounds.MaxX, best.X+cfg.CoarseStepM),
		MinY: math.Max(cfg.Bounds.MinY, best.Y-cfg.CoarseStepM),
		MaxY: math.Min(cfg.Bounds.MaxY, best.Y+cfg.CoarseStepM),
	}
	for x := fineBounds.MinX; x <= fineBounds.MaxX; x += cfg.FineStepM {
		for y := fineBounds.MinY; y <= fineBounds.MaxY; y += cfg.FineStepM {
			p := geom.Point{X: x, Y: y}
			if s := score(p); s > bestScore {
				best, bestScore = p, s
			}
		}
	}
	return best, nil
}
