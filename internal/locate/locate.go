// Package locate implements SpotFi's localization stage (paper Sec. 3.3):
// given each AP's direct-path AoA, likelihood weight, and observed RSSI, it
// finds the target location minimizing the likelihood-weighted least-squares
// objective of Eq. 9 jointly with the path loss model parameters, using the
// multi-start linearize-and-descend scheme the paper calls sequential convex
// optimization. It also implements the ArrayTrack-style baseline localizer
// (spectrum-synthesis triangulation) the evaluation compares against.
package locate

import (
	"fmt"
	"math"

	"spotfi/internal/geom"
	"spotfi/internal/rf"
)

// APObservation is the localization input from one AP.
type APObservation struct {
	// Pos is the AP location; NormalAngle is the direction the array
	// broadside faces (radians from +X).
	Pos         geom.Point
	NormalAngle float64
	// AoA is the selected direct-path AoA in radians relative to the
	// array normal.
	AoA float64
	// RSSIdBm is the mean observed RSSI for the burst.
	RSSIdBm float64
	// Likelihood is the direct-path likelihood l_i weighting this AP's
	// residuals in Eq. 9.
	Likelihood float64
}

// Bounds is the rectangular search region.
type Bounds struct {
	MinX, MinY, MaxX, MaxY float64
}

// Contains reports whether p lies inside the bounds.
func (b Bounds) Contains(p geom.Point) bool {
	return p.X >= b.MinX && p.X <= b.MaxX && p.Y >= b.MinY && p.Y <= b.MaxY
}

// Clamp projects p onto the bounds.
func (b Bounds) Clamp(p geom.Point) geom.Point {
	return geom.Point{
		X: math.Max(b.MinX, math.Min(b.MaxX, p.X)),
		Y: math.Max(b.MinY, math.Min(b.MaxY, p.Y)),
	}
}

// Config controls the SpotFi localizer.
type Config struct {
	// Bounds is the search region (the floor plan extent).
	Bounds Bounds
	// PathLoss is the initial path loss model; its intercept P0 is
	// re-fitted each iteration (the "path loss model parameters" of
	// Algorithm 2 line 12).
	PathLoss rf.PathLoss
	// FitIntercept re-estimates P0 from the observations at every
	// iterate. Disable only for ablation.
	FitIntercept bool
	// FitExponent additionally re-estimates the path loss exponent n by
	// weighted regression at every iterate (Algorithm 2 line 12 lists the
	// "path loss model parameters" among the optimization variables).
	// Needs ≥3 usable APs at distinct distances to be identifiable; with
	// fewer the exponent stays at its prior.
	FitExponent bool
	// AoAWeightRad2 and RSSIWeightDB2 scale the two residual classes of
	// Eq. 9 onto a common footing (AoA residuals are radians, RSSI
	// residuals dB).
	AoAWeightRad2, RSSIWeightDB2 float64
	// GridStepM is the coarse multi-start grid pitch.
	GridStepM float64
	// Starts is how many best coarse cells seed descent.
	Starts int
	// MaxIters bounds descent iterations per start.
	MaxIters int
	// RobustRounds applies iteratively-reweighted least squares after the
	// first solve: each round scales every AP's likelihood by
	// 1/(1+(AoA residual/RobustScaleRad)²) and re-solves, so an AP whose
	// selected "direct path" disagrees wildly with the consensus location
	// is suppressed — the paper's intuition that low-confidence APs
	// "effectively not be considered" (Sec. 4.4.3). 0 disables.
	RobustRounds int
	// RobustScaleRad is the AoA residual scale of the reweighting.
	RobustScaleRad float64
	// GeometryAdaptiveRSSI scales the RSSI weight up when the AP layout
	// is nearly collinear (e.g. a corridor with APs along one wall):
	// bearings from collinear APs are nearly parallel, so angle-only
	// localization is ill-conditioned along the array axis and range
	// information must carry the estimate. The multiplier is
	// 1 + 7·(1−ρ)⁶ where ρ is the eigenvalue ratio (minor/major) of the
	// AP-position covariance: isotropic layouts (ρ→1) are unaffected,
	// collinear ones (ρ→0) get an 8× boost.
	GeometryAdaptiveRSSI bool
}

// DefaultConfig returns a localizer configuration for bounds b.
func DefaultConfig(b Bounds) Config {
	return Config{
		Bounds:        b,
		PathLoss:      rf.DefaultPathLoss(),
		FitIntercept:  true,
		AoAWeightRad2: 1,
		// RSSI deviates from the log-distance model by several dB under
		// multipath fading, so it acts as a weak prior: 20 dB of RSSI
		// error ≙ 1 rad of AoA error. Eq. 9 weights both classes; the
		// paper leaves the relative scale as an implementation choice.
		RSSIWeightDB2:        1.0 / 400.0,
		GridStepM:            1.0,
		Starts:               5,
		MaxIters:             60,
		RobustRounds:         2,
		RobustScaleRad:       0.15,
		GeometryAdaptiveRSSI: true,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Bounds.MinX >= c.Bounds.MaxX || c.Bounds.MinY >= c.Bounds.MaxY {
		return fmt.Errorf("locate: empty bounds %+v", c.Bounds)
	}
	if c.GridStepM <= 0 {
		return fmt.Errorf("locate: grid step must be positive")
	}
	if c.Starts < 1 || c.MaxIters < 1 {
		return fmt.Errorf("locate: Starts and MaxIters must be ≥ 1")
	}
	if c.AoAWeightRad2 < 0 || c.RSSIWeightDB2 < 0 || c.AoAWeightRad2+c.RSSIWeightDB2 == 0 {
		return fmt.Errorf("locate: residual weights must be non-negative and not both zero")
	}
	return nil
}

// Result is the localizer output.
type Result struct {
	// Location is the estimated target position.
	Location geom.Point
	// Objective is the final Eq. 9 value.
	Objective float64
	// PathLoss is the fitted model at the solution.
	PathLoss rf.PathLoss
	// Iters is the total number of Gauss–Newton iterations spent across
	// all starts and robust rounds — a convergence diagnostic for traces.
	Iters int
	// AoAResid holds each input observation's direct-path AoA residual at
	// the solution (predicted − observed, wrapped), in the order the
	// observations were passed in. NaN for observations with non-positive
	// likelihood. It is the cross-AP agreement signal quality scoring and
	// drift detection consume.
	AoAResid []float64
}

// foldAoA maps an angle onto the ULA-observable range [−π/2, π/2].
func foldAoA(theta float64) float64 {
	return math.Asin(math.Sin(geom.NormalizeAngle(theta)))
}

// predictAoA returns the AoA that AP obs would observe for a target at p.
func predictAoA(obs APObservation, p geom.Point) float64 {
	return foldAoA(p.Sub(obs.Pos).Angle() - obs.NormalAngle)
}

// Locate minimizes Eq. 9. It needs at least two APs with positive
// likelihood; with fewer the problem is unobservable.
func Locate(obs []APObservation, cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	var usable int
	for _, o := range obs {
		if o.Likelihood > 0 {
			usable++
		}
		if math.IsNaN(o.AoA) || math.IsNaN(o.RSSIdBm) || math.IsNaN(o.Likelihood) {
			return Result{}, fmt.Errorf("locate: non-finite observation")
		}
	}
	if usable < 2 {
		return Result{}, fmt.Errorf("locate: need ≥2 APs with positive likelihood, got %d", usable)
	}

	if cfg.GeometryAdaptiveRSSI {
		cfg.RSSIWeightDB2 *= rssiGeometryBoost(obs)
	}

	// Normalize likelihoods so the objective scale is comparable across
	// bursts (Eq. 9 is invariant to a common factor).
	var maxL float64
	for _, o := range obs {
		maxL = math.Max(maxL, o.Likelihood)
	}
	normObs := make([]APObservation, len(obs))
	copy(normObs, obs)
	for i := range normObs {
		normObs[i].Likelihood /= maxL
	}

	// Multi-start: evaluate the objective on a coarse grid, seed descent
	// from the best cells. This is the "convexify piecewise" part: each
	// descent solves a sequence of local quadratic models.
	type seed struct {
		p geom.Point
		f float64
	}
	var seeds []seed
	model := cfg.PathLoss
	for x := cfg.Bounds.MinX + cfg.GridStepM/2; x <= cfg.Bounds.MaxX; x += cfg.GridStepM {
		for y := cfg.Bounds.MinY + cfg.GridStepM/2; y <= cfg.Bounds.MaxY; y += cfg.GridStepM {
			p := geom.Point{X: x, Y: y}
			m := model
			if cfg.FitIntercept {
				m = refitModel(normObs, p, model, cfg.FitExponent)
			}
			seeds = append(seeds, seed{p, objective(normObs, p, m, cfg)})
		}
	}
	if len(seeds) == 0 {
		return Result{}, fmt.Errorf("locate: empty search grid")
	}
	// Partial selection of the best cfg.Starts seeds.
	nStarts := cfg.Starts
	if nStarts > len(seeds) {
		nStarts = len(seeds)
	}
	for i := 0; i < nStarts; i++ {
		best := i
		for j := i + 1; j < len(seeds); j++ {
			if seeds[j].f < seeds[best].f {
				best = j
			}
		}
		seeds[i], seeds[best] = seeds[best], seeds[i]
	}

	bestRes := Result{Objective: math.Inf(1), PathLoss: model}
	totalIters := 0
	for i := 0; i < nStarts; i++ {
		res := descend(normObs, seeds[i].p, cfg)
		totalIters += res.Iters
		if res.Objective < bestRes.Objective {
			bestRes = res
		}
	}
	if math.IsInf(bestRes.Objective, 1) {
		return Result{}, fmt.Errorf("locate: optimization failed to produce a finite objective")
	}

	// Robust refinement: suppress APs whose AoA disagrees with the
	// consensus and re-solve from the current estimate.
	for round := 0; round < cfg.RobustRounds; round++ {
		scale := cfg.RobustScaleRad
		if scale <= 0 {
			break
		}
		rw := make([]APObservation, len(normObs))
		copy(rw, normObs)
		usable = 0
		for i := range rw {
			if rw[i].Likelihood <= 0 {
				continue
			}
			res := geom.NormalizeAngle(predictAoA(rw[i], bestRes.Location) - rw[i].AoA)
			rw[i].Likelihood /= 1 + (res/scale)*(res/scale)
			usable++
		}
		if usable < 2 {
			break
		}
		refined := descend(rw, bestRes.Location, cfg)
		totalIters += refined.Iters
		// Track the refined location; objectives across rounds are not
		// comparable (the weights changed), so accept unconditionally.
		bestRes = refined
	}
	bestRes.Iters = totalIters
	bestRes.AoAResid = make([]float64, len(obs))
	for i, o := range obs {
		if o.Likelihood <= 0 {
			bestRes.AoAResid[i] = math.NaN()
			continue
		}
		bestRes.AoAResid[i] = geom.NormalizeAngle(predictAoA(o, bestRes.Location) - o.AoA)
	}
	return bestRes, nil
}

// rssiGeometryBoost returns the RSSI-weight multiplier 1 + 7·(1−ρ)⁶ from
// the anisotropy ρ of the AP layout (minor/major eigenvalue ratio of the
// AP-position covariance).
func rssiGeometryBoost(obs []APObservation) float64 {
	if len(obs) < 2 {
		return 1
	}
	var mx, my float64
	for _, o := range obs {
		mx += o.Pos.X
		my += o.Pos.Y
	}
	n := float64(len(obs))
	mx /= n
	my /= n
	var sxx, syy, sxy float64
	for _, o := range obs {
		dx, dy := o.Pos.X-mx, o.Pos.Y-my
		sxx += dx * dx
		syy += dy * dy
		sxy += dx * dy
	}
	// Eigenvalues of the 2×2 covariance.
	tr := sxx + syy
	if tr <= 0 {
		return 1
	}
	disc := math.Sqrt((sxx-syy)*(sxx-syy) + 4*sxy*sxy)
	major := (tr + disc) / 2
	minor := (tr - disc) / 2
	if major <= 0 {
		return 1
	}
	rho := minor / major
	if rho < 0 {
		rho = 0
	}
	d := 1 - rho
	d2 := d * d
	return 1 + 7*d2*d2*d2
}

// objective evaluates Eq. 9 at p under path loss model m.
func objective(obs []APObservation, p geom.Point, m rf.PathLoss, cfg Config) float64 {
	var sum float64
	for _, o := range obs {
		if o.Likelihood <= 0 {
			continue
		}
		dAoA := geom.NormalizeAngle(predictAoA(o, p) - o.AoA)
		dRSSI := m.RSSIdBm(p.Dist(o.Pos)) - o.RSSIdBm
		sum += o.Likelihood * (cfg.AoAWeightRad2*dAoA*dAoA + cfg.RSSIWeightDB2*dRSSI*dRSSI)
	}
	return sum
}

// refitModel returns model with its free parameters set to their weighted
// least-squares optimum for a target at p. With fitExponent false only the
// intercept P0 moves; otherwise (P0, n) are jointly regressed on
// x = −10·log10(d/d0) when at least three usable APs span distinct
// distances.
func refitModel(obs []APObservation, p geom.Point, model rf.PathLoss, fitExponent bool) rf.PathLoss {
	var sw, swx, swy, swxx, swxy float64
	n := 0
	for _, o := range obs {
		if o.Likelihood <= 0 {
			continue
		}
		d := p.Dist(o.Pos)
		if d < model.RefDistM {
			d = model.RefDistM
		}
		x := -10 * math.Log10(d/model.RefDistM)
		w := o.Likelihood
		sw += w
		swx += w * x
		swy += w * o.RSSIdBm
		swxx += w * x * x
		swxy += w * x * o.RSSIdBm
		n++
	}
	if sw <= 0 {
		return model
	}
	if fitExponent && n >= 3 {
		den := sw*swxx - swx*swx
		if math.Abs(den) > 1e-9 {
			slope := (sw*swxy - swx*swy) / den
			// Keep the exponent physical: free space to dense indoor.
			if slope >= 1.5 && slope <= 6 {
				model.Exponent = slope
				model.P0dBm = (swy - slope*swx) / sw
				return model
			}
		}
	}
	// Intercept only: P0 = weighted mean of (rssi − n·x).
	model.P0dBm = (swy - model.Exponent*swx) / sw
	return model
}

// descend runs damped Gauss–Newton with numerical Jacobians from start.
func descend(obs []APObservation, start geom.Point, cfg Config) Result {
	p := start
	model := cfg.PathLoss
	if cfg.FitIntercept {
		model = refitModel(obs, p, model, cfg.FitExponent)
	}
	f := objective(obs, p, model, cfg)
	lambda := 1e-3
	iters := 0
	const h = 1e-4 // meters, for central differences

	for iter := 0; iter < cfg.MaxIters; iter++ {
		iters++
		// Gradient and Gauss–Newton Hessian approximation from residuals.
		var g [2]float64
		var hess [2][2]float64
		for _, o := range obs {
			if o.Likelihood <= 0 {
				continue
			}
			// Two residuals per AP: rA = √(l·wA)·Δθ, rP = √(l·wP)·ΔRSSI.
			wA := math.Sqrt(o.Likelihood * cfg.AoAWeightRad2)
			wP := math.Sqrt(o.Likelihood * cfg.RSSIWeightDB2)
			rA := func(q geom.Point) float64 {
				return wA * geom.NormalizeAngle(predictAoA(o, q)-o.AoA)
			}
			rP := func(q geom.Point) float64 {
				return wP * (model.RSSIdBm(q.Dist(o.Pos)) - o.RSSIdBm)
			}
			for _, res := range []func(geom.Point) float64{rA, rP} {
				r0 := res(p)
				jx := (res(geom.Point{X: p.X + h, Y: p.Y}) - res(geom.Point{X: p.X - h, Y: p.Y})) / (2 * h)
				jy := (res(geom.Point{X: p.X, Y: p.Y + h}) - res(geom.Point{X: p.X, Y: p.Y - h})) / (2 * h)
				g[0] += jx * r0
				g[1] += jy * r0
				hess[0][0] += jx * jx
				hess[0][1] += jx * jy
				hess[1][1] += jy * jy
			}
		}
		hess[1][0] = hess[0][1]

		// Levenberg–Marquardt step: (H + λ·diag(H))·δ = −g.
		improved := false
		for try := 0; try < 8; try++ {
			a00 := hess[0][0] * (1 + lambda)
			a11 := hess[1][1] * (1 + lambda)
			a01 := hess[0][1]
			det := a00*a11 - a01*a01
			if math.Abs(det) < 1e-18 {
				lambda *= 10
				continue
			}
			dx := (-g[0]*a11 + g[1]*a01) / det
			dy := (-g[1]*a00 + g[0]*a01) / det
			cand := cfg.Bounds.Clamp(geom.Point{X: p.X + dx, Y: p.Y + dy})
			candModel := model
			if cfg.FitIntercept {
				candModel = refitModel(obs, cand, cfg.PathLoss, cfg.FitExponent)
			}
			fc := objective(obs, cand, candModel, cfg)
			if fc < f {
				p, f, model = cand, fc, candModel
				lambda = math.Max(lambda/4, 1e-9)
				improved = true
				break
			}
			lambda *= 10
		}
		if !improved {
			break
		}
		if math.Hypot(g[0], g[1]) < 1e-10 {
			break
		}
	}
	return Result{Location: p, Objective: f, PathLoss: model, Iters: iters}
}
