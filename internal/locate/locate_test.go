package locate

import (
	"math"
	"math/rand"
	"testing"

	"spotfi/internal/geom"
	"spotfi/internal/rf"
)

var testBounds = Bounds{MinX: 0, MinY: 0, MaxX: 16, MaxY: 10}

// makeObs builds consistent observations for a target at truth, with the
// given per-AP AoA noise (radians) and RSSI noise (dB).
func makeObs(truth geom.Point, aps []geom.Point, normals []float64, aoaNoise, rssiNoise float64, rng *rand.Rand) []APObservation {
	model := rf.DefaultPathLoss()
	obs := make([]APObservation, len(aps))
	for i, pos := range aps {
		theta := foldAoA(truth.Sub(pos).Angle() - normals[i])
		obs[i] = APObservation{
			Pos:         pos,
			NormalAngle: normals[i],
			AoA:         theta + rng.NormFloat64()*aoaNoise,
			RSSIdBm:     model.RSSIdBm(truth.Dist(pos)) + rng.NormFloat64()*rssiNoise,
			Likelihood:  1,
		}
	}
	return obs
}

func defaultAPs() ([]geom.Point, []float64) {
	aps := []geom.Point{{X: 0, Y: 0}, {X: 16, Y: 0}, {X: 0, Y: 10}, {X: 16, Y: 10}, {X: 8, Y: 0}}
	normals := make([]float64, len(aps))
	center := geom.Point{X: 8, Y: 5}
	for i, p := range aps {
		normals[i] = center.Sub(p).Angle() // arrays face the room center
	}
	return aps, normals
}

func TestLocateExactObservations(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	aps, normals := defaultAPs()
	truth := geom.Point{X: 5.3, Y: 6.1}
	obs := makeObs(truth, aps, normals, 0, 0, rng)
	res, err := Locate(obs, DefaultConfig(testBounds))
	if err != nil {
		t.Fatal(err)
	}
	if d := res.Location.Dist(truth); d > 0.05 {
		t.Fatalf("error %v m on noiseless observations (got %v)", d, res.Location)
	}
}

func TestLocateNoisyObservations(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	aps, normals := defaultAPs()
	var errs []float64
	for trial := 0; trial < 20; trial++ {
		truth := geom.Point{X: 1 + 14*rng.Float64(), Y: 1 + 8*rng.Float64()}
		obs := makeObs(truth, aps, normals, geom.Rad(3), 2, rng)
		res, err := Locate(obs, DefaultConfig(testBounds))
		if err != nil {
			t.Fatal(err)
		}
		errs = append(errs, res.Location.Dist(truth))
	}
	var sum float64
	for _, e := range errs {
		sum += e
	}
	if mean := sum / float64(len(errs)); mean > 1.0 {
		t.Fatalf("mean error %v m with 3° AoA noise", mean)
	}
}

func TestLocateDownweightsBadAP(t *testing.T) {
	aps, normals := defaultAPs()
	var sumDown, sumFull float64
	const trials = 10
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(930 + int64(trial)))
		truth := geom.Point{X: 2 + 12*rng.Float64(), Y: 1 + 8*rng.Float64()}
		obs := makeObs(truth, aps, normals, geom.Rad(1), 1, rng)
		// Corrupt one AP's AoA badly.
		obs[0].AoA = foldAoA(obs[0].AoA + geom.Rad(50))

		obs[0].Likelihood = 0.01
		resDown, err := Locate(obs, DefaultConfig(testBounds))
		if err != nil {
			t.Fatal(err)
		}
		if d := resDown.Location.Dist(truth); d > 1.2 {
			t.Fatalf("trial %d: low-likelihood corruption moved estimate by %v m", trial, d)
		}
		sumDown += resDown.Location.Dist(truth)

		obs[0].Likelihood = 1
		resFull, err := Locate(obs, DefaultConfig(testBounds))
		if err != nil {
			t.Fatal(err)
		}
		sumFull += resFull.Location.Dist(truth)
	}
	// On average the full-weight corruption must hurt more than the
	// downweighted one — the point of likelihood weighting in Eq. 9.
	if sumFull <= sumDown {
		t.Fatalf("mean error full=%.3f ≤ down=%.3f", sumFull/trials, sumDown/trials)
	}
}

func TestLocateFitsIntercept(t *testing.T) {
	// Observations generated with a different P0 than the localizer's
	// initial model: intercept fitting must absorb the mismatch.
	rng := rand.New(rand.NewSource(94))
	aps, normals := defaultAPs()
	truth := geom.Point{X: 4, Y: 7}
	trueModel := rf.PathLoss{P0dBm: -50, Exponent: 3, RefDistM: 1} // 12 dB off default
	obs := make([]APObservation, len(aps))
	for i, pos := range aps {
		obs[i] = APObservation{
			Pos:         pos,
			NormalAngle: normals[i],
			AoA:         foldAoA(truth.Sub(pos).Angle() - normals[i]),
			RSSIdBm:     trueModel.RSSIdBm(truth.Dist(pos)),
			Likelihood:  1,
		}
	}
	_ = rng
	res, err := Locate(obs, DefaultConfig(testBounds))
	if err != nil {
		t.Fatal(err)
	}
	if d := res.Location.Dist(truth); d > 0.1 {
		t.Fatalf("intercept mismatch not absorbed: error %v m", d)
	}
	if math.Abs(res.PathLoss.P0dBm-(-50)) > 1 {
		t.Fatalf("fitted P0 = %v, want ≈−50", res.PathLoss.P0dBm)
	}
}

func TestLocateTwoAPs(t *testing.T) {
	rng := rand.New(rand.NewSource(95))
	aps := []geom.Point{{X: 0, Y: 0}, {X: 16, Y: 0}}
	normals := []float64{geom.Rad(45), geom.Rad(135)}
	truth := geom.Point{X: 8, Y: 5}
	obs := makeObs(truth, aps, normals, geom.Rad(1), 1, rng)
	res, err := Locate(obs, DefaultConfig(testBounds))
	if err != nil {
		t.Fatal(err)
	}
	if d := res.Location.Dist(truth); d > 1.5 {
		t.Fatalf("two-AP error %v m", d)
	}
}

func TestLocateErrors(t *testing.T) {
	cfg := DefaultConfig(testBounds)
	if _, err := Locate(nil, cfg); err == nil {
		t.Fatal("no observations accepted")
	}
	one := []APObservation{{Pos: geom.Point{X: 0, Y: 0}, Likelihood: 1}}
	if _, err := Locate(one, cfg); err == nil {
		t.Fatal("single AP accepted")
	}
	zeroL := []APObservation{
		{Pos: geom.Point{X: 0, Y: 0}, Likelihood: 0},
		{Pos: geom.Point{X: 1, Y: 0}, Likelihood: 0},
	}
	if _, err := Locate(zeroL, cfg); err == nil {
		t.Fatal("all-zero likelihood accepted")
	}
	nan := []APObservation{
		{Pos: geom.Point{X: 0, Y: 0}, AoA: math.NaN(), Likelihood: 1},
		{Pos: geom.Point{X: 1, Y: 0}, Likelihood: 1},
	}
	if _, err := Locate(nan, cfg); err == nil {
		t.Fatal("NaN AoA accepted")
	}
	bad := cfg
	bad.GridStepM = 0
	two := []APObservation{
		{Pos: geom.Point{X: 0, Y: 0}, Likelihood: 1},
		{Pos: geom.Point{X: 1, Y: 0}, Likelihood: 1},
	}
	if _, err := Locate(two, bad); err == nil {
		t.Fatal("zero grid step accepted")
	}
	badB := cfg
	badB.Bounds = Bounds{MinX: 5, MaxX: 5, MinY: 0, MaxY: 1}
	if _, err := Locate(two, badB); err == nil {
		t.Fatal("empty bounds accepted")
	}
}

func TestBoundsClampContains(t *testing.T) {
	b := Bounds{MinX: 0, MinY: 0, MaxX: 10, MaxY: 5}
	if !b.Contains(geom.Point{X: 5, Y: 2}) || b.Contains(geom.Point{X: -1, Y: 2}) {
		t.Fatal("Contains wrong")
	}
	c := b.Clamp(geom.Point{X: 12, Y: -3})
	if c != (geom.Point{X: 10, Y: 0}) {
		t.Fatalf("Clamp = %v", c)
	}
}

// gaussianSpectrum builds a synthetic AoA pseudo-spectrum peaked at peak.
func gaussianSpectrum(pos geom.Point, normal, peak, width float64) SpectrumObservation {
	s := SpectrumObservation{Pos: pos, NormalAngle: normal}
	for th := -math.Pi / 2; th <= math.Pi/2; th += math.Pi / 360 {
		s.Thetas = append(s.Thetas, th)
		d := th - peak
		s.P = append(s.P, math.Exp(-d*d/(2*width*width))+1e-6)
	}
	return s
}

func TestLocateArrayTrackRecoversTarget(t *testing.T) {
	aps, normals := defaultAPs()
	truth := geom.Point{X: 11, Y: 3}
	var obs []SpectrumObservation
	for i := range aps {
		peak := foldAoA(truth.Sub(aps[i]).Angle() - normals[i])
		obs = append(obs, gaussianSpectrum(aps[i], normals[i], peak, geom.Rad(4)))
	}
	got, err := LocateArrayTrack(obs, DefaultArrayTrackConfig(testBounds))
	if err != nil {
		t.Fatal(err)
	}
	if d := got.Dist(truth); d > 0.5 {
		t.Fatalf("ArrayTrack error %v m on clean spectra", d)
	}
}

func TestLocateArrayTrackWrongPeakPullsEstimate(t *testing.T) {
	// One AP peaked at a reflection bearing: estimate should degrade but
	// not explode (other APs still constrain it).
	aps, normals := defaultAPs()
	truth := geom.Point{X: 6, Y: 6}
	var obs []SpectrumObservation
	for i := range aps {
		peak := foldAoA(truth.Sub(aps[i]).Angle() - normals[i])
		if i == 0 {
			peak = foldAoA(peak + geom.Rad(35))
		}
		obs = append(obs, gaussianSpectrum(aps[i], normals[i], peak, geom.Rad(4)))
	}
	got, err := LocateArrayTrack(obs, DefaultArrayTrackConfig(testBounds))
	if err != nil {
		t.Fatal(err)
	}
	d := got.Dist(truth)
	if d > 4 {
		t.Fatalf("single corrupt AP blew up the estimate: %v m", d)
	}
}

func TestLocateArrayTrackErrors(t *testing.T) {
	cfg := DefaultArrayTrackConfig(testBounds)
	if _, err := LocateArrayTrack(nil, cfg); err == nil {
		t.Fatal("no APs accepted")
	}
	s := gaussianSpectrum(geom.Point{X: 0, Y: 0}, 0, 0, 0.1)
	if _, err := LocateArrayTrack([]SpectrumObservation{s}, cfg); err == nil {
		t.Fatal("single AP accepted")
	}
	malformed := s
	malformed.P = malformed.P[:3]
	if _, err := LocateArrayTrack([]SpectrumObservation{s, malformed}, cfg); err == nil {
		t.Fatal("malformed spectrum accepted")
	}
	bad := cfg
	bad.CoarseStepM = 0
	if _, err := LocateArrayTrack([]SpectrumObservation{s, s}, bad); err == nil {
		t.Fatal("zero step accepted")
	}
}

func TestSpectrumInterp(t *testing.T) {
	s := SpectrumObservation{
		Thetas: []float64{0, 1, 2},
		P:      []float64{10, 20, 40},
	}
	if v := s.interp(-1); v != 10 {
		t.Fatalf("below-range interp = %v", v)
	}
	if v := s.interp(3); v != 40 {
		t.Fatalf("above-range interp = %v", v)
	}
	if v := s.interp(0.5); math.Abs(v-15) > 1e-12 {
		t.Fatalf("interp(0.5) = %v, want 15", v)
	}
	if v := s.interp(1.5); math.Abs(v-30) > 1e-12 {
		t.Fatalf("interp(1.5) = %v, want 30", v)
	}
}

func TestLocateFitsExponent(t *testing.T) {
	// Observations generated with exponent 2.2 while the localizer's prior
	// is 3.0: exponent fitting must absorb the mismatch.
	aps, normals := defaultAPs()
	truth := geom.Point{X: 11, Y: 3}
	trueModel := rf.PathLoss{P0dBm: -40, Exponent: 2.2, RefDistM: 1}
	obs := make([]APObservation, len(aps))
	for i, pos := range aps {
		obs[i] = APObservation{
			Pos:         pos,
			NormalAngle: normals[i],
			AoA:         foldAoA(truth.Sub(pos).Angle() - normals[i]),
			RSSIdBm:     trueModel.RSSIdBm(truth.Dist(pos)),
			Likelihood:  1,
		}
	}
	cfg := DefaultConfig(testBounds)
	cfg.FitExponent = true
	// Make RSSI matter so the fit is exercised.
	cfg.RSSIWeightDB2 = 1.0 / 50
	cfg.GeometryAdaptiveRSSI = false
	res, err := Locate(obs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d := res.Location.Dist(truth); d > 0.15 {
		t.Fatalf("error %v m with exponent fitting", d)
	}
	if math.Abs(res.PathLoss.Exponent-2.2) > 0.2 {
		t.Fatalf("fitted exponent %v, want ≈2.2", res.PathLoss.Exponent)
	}
	// Without exponent fitting the same mismatch leaves residual error in
	// the model (though AoA still anchors the location).
	cfg.FitExponent = false
	res2, err := Locate(obs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res2.PathLoss.Exponent-3.0) > 1e-9 {
		t.Fatalf("exponent moved without FitExponent: %v", res2.PathLoss.Exponent)
	}
}

func TestRefitModelGuardsUnphysicalExponent(t *testing.T) {
	// Two APs at nearly equal distances: the slope is unidentifiable and
	// the regression must fall back to intercept-only.
	obs := []APObservation{
		{Pos: geom.Point{X: 0, Y: 0}, RSSIdBm: -50, Likelihood: 1},
		{Pos: geom.Point{X: 10, Y: 0}, RSSIdBm: -90, Likelihood: 1},
		{Pos: geom.Point{X: 0, Y: 10}, RSSIdBm: -20, Likelihood: 1},
	}
	p := geom.Point{X: 5, Y: 5} // all three APs ≈ equidistant
	model := rf.DefaultPathLoss()
	got := refitModel(obs, p, model, true)
	if got.Exponent != model.Exponent {
		t.Fatalf("degenerate geometry changed exponent to %v", got.Exponent)
	}
}

func TestLocateAoAResiduals(t *testing.T) {
	rng := rand.New(rand.NewSource(95))
	aps, normals := defaultAPs()
	truth := geom.Point{X: 5.3, Y: 6.1}
	obs := makeObs(truth, aps, normals, 0, 0, rng)
	// One AP disagrees hard; one is unusable.
	obs[1].AoA = foldAoA(obs[1].AoA + geom.Rad(25))
	obs[2].Likelihood = 0
	res, err := Locate(obs, DefaultConfig(testBounds))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.AoAResid) != len(obs) {
		t.Fatalf("AoAResid has %d entries, want %d", len(res.AoAResid), len(obs))
	}
	if !math.IsNaN(res.AoAResid[2]) {
		t.Fatalf("zero-likelihood AP residual = %v, want NaN", res.AoAResid[2])
	}
	// The consistent APs pin the solution, so the corrupted AP's residual
	// must dwarf theirs.
	bad := math.Abs(res.AoAResid[1])
	for _, i := range []int{0, 3, 4} {
		if good := math.Abs(res.AoAResid[i]); good >= bad/3 {
			t.Fatalf("AP %d residual %v not well below corrupted AP's %v", i, good, bad)
		}
	}
	if bad < geom.Rad(5) {
		t.Fatalf("corrupted AP residual %v rad, want ≥ 5°", bad)
	}
}
