package cmat

import (
	"math"
	"math/cmplx"
)

// Subspace iteration parameters. Convergence is judged by the Ritz
// residuals ‖A·y − λ·y‖ of the pairs that matter (see TopEigenInto), so
// the criterion is self-validating: a small residual proves the pair is
// converged no matter how few iterations ran.
const (
	topEigenTol      = 3e-6
	topEigenMaxIters = 200
)

// TopEigenWorkspace owns the scratch of TopEigenInto: the iteration block,
// its image under A, the small Ritz problem (solved with a warm-started
// Jacobi — the Ritz matrix barely moves between iterations), and the
// result storage. Single-goroutine; the zero value is ready to use.
//
//spotfi:arena
type TopEigenWorkspace struct {
	q, z, s  *Matrix
	sw       EigenWorkspace
	d        EigenDecomposition
	vecArena []complex128
}

// TopEigenInto computes the k dominant eigenpairs of the Hermitian matrix
// a by blocked orthogonal iteration with Rayleigh–Ritz extraction,
// reusing ws's arenas. The returned decomposition holds exactly k Values
// and Vectors in descending order (or all n when k ≥ n, where it falls
// back to the full Jacobi decomposition); its storage is owned by ws and
// overwritten by the next call.
//
// thresh ∈ [0, 1) declares which pairs need converged eigenvectors: those
// with Ritz value ≥ thresh·λ₁ (the dominant pair always does). Pairs below
// the threshold get a representative value — accurate enough to stay below
// the threshold — but their vectors are not iterated to convergence. That
// is exactly MUSIC's contract: the signal eigenvectors and the
// signal/noise eigenvalue split matter, while diagonalizing the rotating,
// nearly degenerate noise cluster is pure waste (and its degeneracy makes
// waiting for it to settle hopeless). Pass thresh = 0 to require full
// convergence of all k pairs.
//
// The iteration is deterministic: a fixed canonical starting block and no
// state carried across calls.
//
//spotfi:noalloc
func TopEigenInto(a *Matrix, k int, thresh float64, ws *TopEigenWorkspace) (*EigenDecomposition, error) {
	n := a.rows
	if a.cols != n {
		return nil, ErrNotHermitian
	}
	if k >= n {
		ws.sw.Reset()
		return EigHermitianInto(a, &ws.sw) //lint:allow arenaescape documented borrow: the decomposition views ws storage until the next call
	}
	if k < 1 {
		k = 1
	}
	scale := a.FrobeniusNorm()
	if scale == 0 {
		d := ws.prepare(n, k)
		for i := range d.Values {
			d.Values[i] = 0
		}
		for i := range d.Vectors {
			vec := d.Vectors[i]
			for j := range vec {
				vec[j] = 0
			}
			vec[i] = 1
		}
		return d, nil //lint:allow arenaescape documented borrow: the decomposition views ws storage until the next call
	}
	if !a.isHermitianFast(1e-9 * scale) {
		return nil, ErrNotHermitian
	}

	ws.q = Reshape(ws.q, n, k)
	ws.z = Reshape(ws.z, n, k)
	ws.s = Reshape(ws.s, k, k)
	// Deterministic start: the first k canonical basis vectors. The
	// iteration must not inherit state from a previous (unrelated) call,
	// so the small Ritz solver's warm start is reset too — it warms up
	// across the iterations of this call only.
	for c := 0; c < k; c++ {
		ws.q.data[c*k+c] = 1
	}
	ws.sw.Reset()

	for iter := 1; iter <= topEigenMaxIters; iter++ {
		mulInto(ws.z, a, ws.q)                 // Z = A·Q
		conjTransposeMulInto(ws.s, ws.q, ws.z) // S = Qᴴ·A·Q
		eigS, err := EigHermitianInto(ws.s, &ws.sw)
		if err != nil {
			break // corrupt input; let the Jacobi fallback report it
		}
		lambda1 := eigS.Values[0]
		floor := thresh * lambda1
		rtol2 := topEigenTol * topEigenTol * lambda1 * lambda1
		if lambda1 <= 0 {
			// Indefinite or negative-definite input: no scale to
			// classify against, demand convergence of everything
			// relative to the Frobenius norm.
			floor = math.Inf(1) * -1
			rtol2 = topEigenTol * topEigenTol * scale * scale
		}
		converged := true
		for j := 0; j < k; j++ {
			v := eigS.Values[j]
			if j > 0 && v < floor {
				break // below threshold: value-only accuracy suffices
			}
			if ritzResidual2(ws.z, ws.q, eigS.Vectors[j], v) > rtol2 {
				converged = false
				break
			}
		}
		if converged {
			// Rotate the block onto the Ritz vectors, V_j = Q·u_j,
			// pairing each returned vector with its Ritz value.
			d := ws.prepare(n, k)
			for j := 0; j < k; j++ {
				d.Values[j] = eigS.Values[j]
				u := eigS.Vectors[j]
				vec := d.Vectors[j]
				for r := 0; r < n; r++ {
					var sum complex128
					qrow := ws.q.data[r*k : (r+1)*k]
					for c, qc := range qrow {
						sum += qc * u[c]
					}
					vec[r] = sum
				}
				Normalize(vec)
			}
			d.Sweeps = iter
			return d, nil //lint:allow arenaescape documented borrow: the decomposition views ws storage until the next call
		}
		orthonormalizeColumns(ws.z, ws.q, scale, iter)
	}
	// The iteration did not settle (pathological spectrum or corrupt
	// input): fall back to the full, unconditionally-convergent Jacobi.
	ws.sw.Reset()
	return EigHermitianInto(a, &ws.sw) //lint:allow arenaescape documented borrow: the decomposition views ws storage until the next call
}

// ritzResidual2 returns ‖A·y − v·y‖² for the Ritz pair (v, y = Q·u),
// using A·y = Z·u (Z = A·Q): the squared norm of (Z − v·Q)·u.
//
//spotfi:noalloc
func ritzResidual2(z, q *Matrix, u []complex128, v float64) float64 {
	n, k := z.rows, z.cols
	vv := complex(v, 0)
	var sum float64
	for row := 0; row < n; row++ {
		base := row * k
		var acc complex128
		for c, uc := range u {
			acc += (z.data[base+c] - vv*q.data[base+c]) * uc
		}
		sum += real(acc)*real(acc) + imag(acc)*imag(acc)
	}
	return sum
}

// prepare sizes the workspace result storage for k eigenpairs of length n.
//
//spotfi:noalloc
func (ws *TopEigenWorkspace) prepare(n, k int) *EigenDecomposition {
	if cap(ws.vecArena) < n*k {
		ws.vecArena = make([]complex128, n*k) //lint:allow noalloc first-call arena growth, cold by construction
		ws.d.Values = make([]float64, k)      //lint:allow noalloc first-call arena growth, cold by construction
		ws.d.Vectors = make([][]complex128, k)
	}
	ws.vecArena = ws.vecArena[:n*k]
	if cap(ws.d.Values) < k {
		ws.d.Values = make([]float64, k) //lint:allow noalloc dimension change re-sizes the result storage, cold by construction
		ws.d.Vectors = make([][]complex128, k)
	}
	ws.d.Values = ws.d.Values[:k]
	ws.d.Vectors = ws.d.Vectors[:k]
	for i := 0; i < k; i++ {
		ws.d.Vectors[i] = ws.vecArena[i*n : (i+1)*n]
	}
	ws.d.Sweeps = 0
	return &ws.d
}

// orthonormalizeColumns overwrites dst with an orthonormal basis of src's
// column span via modified Gram–Schmidt with one reorthogonalization pass.
// A rank-deficient column (the covariance had fewer independent directions
// than the block is wide — the noiseless synthetic case) is replaced
// deterministically by the next canonical basis vector orthogonalized
// against the block, so the iteration always carries a full-rank block.
//
//spotfi:noalloc
func orthonormalizeColumns(src, dst *Matrix, scale float64, iter int) {
	n, k := src.rows, src.cols
	copy(dst.data, src.data)
	eps := 1e-14 * scale
	for c := 0; c < k; c++ {
		for pass := 0; pass < 2; pass++ {
			for p := 0; p < c; p++ {
				// r = col_pᴴ·col_c
				var r complex128
				for row := 0; row < n; row++ {
					base := row * k
					r += cmplx.Conj(dst.data[base+p]) * dst.data[base+c]
				}
				for row := 0; row < n; row++ {
					base := row * k
					dst.data[base+c] -= r * dst.data[base+p]
				}
			}
		}
		if !normalizeColumn(dst, c, eps) {
			// Deficient: cycle deterministically through canonical
			// vectors until one survives orthogonalization.
			for seed := 0; seed < n; seed++ {
				e := (c + iter + seed) % n
				for row := 0; row < n; row++ {
					dst.data[row*k+c] = 0
				}
				dst.data[e*k+c] = 1
				for p := 0; p < c; p++ {
					var r complex128
					for row := 0; row < n; row++ {
						base := row * k
						r += cmplx.Conj(dst.data[base+p]) * dst.data[base+c]
					}
					for row := 0; row < n; row++ {
						base := row * k
						dst.data[base+c] -= r * dst.data[base+p]
					}
				}
				if normalizeColumn(dst, c, 1e-3) {
					break
				}
			}
		}
	}
}

// normalizeColumn scales column c of m to unit norm, reporting false (and
// leaving the column unspecified) when its norm is at or below eps.
//
//spotfi:noalloc
func normalizeColumn(m *Matrix, c int, eps float64) bool {
	var sum float64
	for row := 0; row < m.rows; row++ {
		v := m.data[row*m.cols+c]
		sum += real(v)*real(v) + imag(v)*imag(v)
	}
	norm := math.Sqrt(sum)
	if norm <= eps {
		return false
	}
	inv := complex(1/norm, 0)
	for row := 0; row < m.rows; row++ {
		m.data[row*m.cols+c] *= inv
	}
	return true
}
