package cmat

import (
	"errors"
	"math"
	"math/cmplx"
	"sort"
)

// EigenDecomposition holds the spectral factorization A = V·diag(λ)·Vᴴ of a
// Hermitian matrix. Values are real (Hermitian matrices have real spectra)
// and sorted in descending order; Vectors[i] is the unit eigenvector paired
// with Values[i].
type EigenDecomposition struct {
	Values  []float64
	Vectors [][]complex128
	// Sweeps is the number of full Jacobi sweeps the iteration ran before
	// converging — a conditioning diagnostic surfaced in burst traces.
	Sweeps int
}

// ErrNotHermitian is returned by EigHermitian when the input is not
// Hermitian to within a reasonable tolerance.
var ErrNotHermitian = errors.New("cmat: matrix is not Hermitian")

// ErrNoConvergence is returned when the Jacobi iteration fails to reduce the
// off-diagonal mass below tolerance within the sweep budget. For the matrix
// sizes SpotFi uses (≤ 32) this indicates corrupt input (NaN/Inf).
var ErrNoConvergence = errors.New("cmat: Jacobi eigendecomposition did not converge")

const (
	jacobiMaxSweeps = 64
	jacobiTol       = 1e-13
)

// EigHermitian computes all eigenvalues and orthonormal eigenvectors of the
// Hermitian matrix a using the cyclic Jacobi method with complex rotations.
// The input is not modified. Eigenvalues are returned in descending order.
//
// The method applies unitary similarity transforms A ← GᴴAG that each zero
// one off-diagonal pair, cycling over all pairs until the off-diagonal
// Frobenius mass falls below jacobiTol relative to the initial norm. Jacobi
// is slower than tridiagonalization+QL but is simple, backward-stable, and
// delivers small residuals ‖Av−λv‖ — exactly what the MUSIC noise-subspace
// projector needs.
func EigHermitian(a *Matrix) (*EigenDecomposition, error) {
	if a.rows != a.cols {
		return nil, ErrNotHermitian
	}
	scale := a.FrobeniusNorm()
	if scale == 0 {
		// Zero matrix: zero spectrum, canonical basis.
		return canonicalDecomposition(a.rows), nil
	}
	if !a.IsHermitian(1e-9 * scale) {
		return nil, ErrNotHermitian
	}
	n := a.rows
	w := a.Clone()
	// Enforce exact symmetry so rounding in the caller cannot bias rotations.
	for i := 0; i < n; i++ {
		w.data[i*n+i] = complex(real(w.data[i*n+i]), 0)
		for j := i + 1; j < n; j++ {
			avg := (w.data[i*n+j] + cmplx.Conj(w.data[j*n+i])) / 2
			w.data[i*n+j] = avg
			w.data[j*n+i] = cmplx.Conj(avg)
		}
	}
	v := Identity(n)

	for sweep := 0; sweep < jacobiMaxSweeps; sweep++ {
		off := offDiagonalNorm(w)
		if off <= jacobiTol*scale {
			d := collectEigen(w, v)
			d.Sweeps = sweep
			return d, nil
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				jacobiRotate(w, v, p, q)
			}
		}
	}
	if offDiagonalNorm(w) <= 1e-8*scale {
		// Converged for every practical purpose; accept the result.
		d := collectEigen(w, v)
		d.Sweeps = jacobiMaxSweeps
		return d, nil
	}
	return nil, ErrNoConvergence
}

func canonicalDecomposition(n int) *EigenDecomposition {
	d := &EigenDecomposition{
		Values:  make([]float64, n),
		Vectors: make([][]complex128, n),
	}
	for i := range d.Vectors {
		vec := make([]complex128, n)
		vec[i] = 1
		d.Vectors[i] = vec
	}
	return d
}

// jacobiRotate zeroes w[p][q] (and w[q][p]) with a complex Jacobi rotation,
// accumulating the transform into v.
func jacobiRotate(w, v *Matrix, p, q int) {
	n := w.rows
	apq := w.data[p*n+q]
	mag := cmplx.Abs(apq)
	if mag == 0 {
		return
	}
	app := real(w.data[p*n+p])
	aqq := real(w.data[q*n+q])

	// Phase factor e^{iφ} of the pivot and the real rotation angle.
	phase := apq / complex(mag, 0)
	tau := (aqq - app) / (2 * mag)
	var t float64
	if tau >= 0 {
		t = 1 / (tau + math.Sqrt(1+tau*tau))
	} else {
		t = -1 / (-tau + math.Sqrt(1+tau*tau))
	}
	c := 1 / math.Sqrt(1+t*t)
	s := t * c

	cs := complex(c, 0)
	sPhase := complex(s, 0) * phase                 // s·e^{iφ}
	sPhaseConj := complex(s, 0) * cmplx.Conj(phase) // s·e^{−iφ}

	// Columns p and q of W: W ← W·G.
	for k := 0; k < n; k++ {
		wkp := w.data[k*n+p]
		wkq := w.data[k*n+q]
		w.data[k*n+p] = cs*wkp - sPhaseConj*wkq
		w.data[k*n+q] = sPhase*wkp + cs*wkq
	}
	// Rows p and q of W: W ← Gᴴ·W.
	for k := 0; k < n; k++ {
		wpk := w.data[p*n+k]
		wqk := w.data[q*n+k]
		w.data[p*n+k] = cs*wpk - sPhase*wqk
		w.data[q*n+k] = sPhaseConj*wpk + cs*wqk
	}
	// Clean up rounding: the pivot pair is exactly zero and the diagonal
	// stays real.
	w.data[p*n+q] = 0
	w.data[q*n+p] = 0
	w.data[p*n+p] = complex(real(w.data[p*n+p]), 0)
	w.data[q*n+q] = complex(real(w.data[q*n+q]), 0)

	// Accumulate eigenvectors: V ← V·G.
	for k := 0; k < n; k++ {
		vkp := v.data[k*n+p]
		vkq := v.data[k*n+q]
		v.data[k*n+p] = cs*vkp - sPhaseConj*vkq
		v.data[k*n+q] = sPhase*vkp + cs*vkq
	}
}

func offDiagonalNorm(m *Matrix) float64 {
	n := m.rows
	var sum float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			v := m.data[i*n+j]
			sum += real(v)*real(v) + imag(v)*imag(v)
		}
	}
	return math.Sqrt(sum)
}

func collectEigen(w, v *Matrix) *EigenDecomposition {
	n := w.rows
	idx := make([]int, n)
	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		idx[i] = i
		vals[i] = real(w.data[i*n+i])
	}
	sort.Slice(idx, func(a, b int) bool { return vals[idx[a]] > vals[idx[b]] })

	d := &EigenDecomposition{
		Values:  make([]float64, n),
		Vectors: make([][]complex128, n),
	}
	for rank, col := range idx {
		d.Values[rank] = vals[col]
		vec := v.Col(col)
		Normalize(vec)
		d.Vectors[rank] = vec
	}
	return d
}

// NoiseSubspace returns the eigenvectors whose eigenvalues fall below
// threshold·maxValue, i.e. the MUSIC noise subspace, as a matrix whose
// columns are those eigenvectors. minSignal caps how many eigenvectors can
// be claimed by the signal subspace: at least (n − maxSignal) vectors are
// always returned so the projector never degenerates. It returns nil if
// every eigenvector is classified as signal.
func (d *EigenDecomposition) NoiseSubspace(threshold float64, maxSignal int) *Matrix {
	n := len(d.Values)
	if n == 0 {
		return nil
	}
	maxVal := d.Values[0]
	cut := n // first index belonging to the noise subspace
	for i, v := range d.Values {
		if v < threshold*maxVal {
			cut = i
			break
		}
	}
	if cut > maxSignal {
		cut = maxSignal
	}
	if cut >= n {
		cut = n - 1 // keep at least one noise vector
	}
	if n-cut <= 0 {
		return nil
	}
	en := New(n, n-cut)
	for j := cut; j < n; j++ {
		en.SetCol(j-cut, d.Vectors[j])
	}
	return en
}

// SignalDimension returns the number of eigenvalues at or above
// threshold·maxValue, clamped to [1, maxSignal]. It estimates the number of
// resolvable propagation paths.
func (d *EigenDecomposition) SignalDimension(threshold float64, maxSignal int) int {
	if len(d.Values) == 0 {
		return 0
	}
	maxVal := d.Values[0]
	dim := 0
	for _, v := range d.Values {
		if v >= threshold*maxVal {
			dim++
		}
	}
	if dim < 1 {
		dim = 1
	}
	if dim > maxSignal {
		dim = maxSignal
	}
	return dim
}
