package cmat

import (
	"errors"
	"math"
	"math/cmplx"
)

// EigenDecomposition holds the spectral factorization A = V·diag(λ)·Vᴴ of a
// Hermitian matrix. Values are real (Hermitian matrices have real spectra)
// and sorted in descending order; Vectors[i] is the unit eigenvector paired
// with Values[i].
type EigenDecomposition struct {
	Values  []float64
	Vectors [][]complex128
	// Sweeps is the number of full Jacobi sweeps the iteration ran before
	// converging — a conditioning diagnostic surfaced in burst traces.
	Sweeps int
}

// ErrNotHermitian is returned by EigHermitian when the input is not
// Hermitian to within a reasonable tolerance.
var ErrNotHermitian = errors.New("cmat: matrix is not Hermitian")

// ErrNoConvergence is returned when the Jacobi iteration fails to reduce the
// off-diagonal mass below tolerance within the sweep budget. For the matrix
// sizes SpotFi uses (≤ 32) this indicates corrupt input (NaN/Inf).
var ErrNoConvergence = errors.New("cmat: Jacobi eigendecomposition did not converge")

const (
	jacobiMaxSweeps = 64
	jacobiTol       = 1e-13
)

// EigenWorkspace owns the scratch buffers one eigendecomposition needs, so
// a caller decomposing many same-sized matrices (the MUSIC per-packet hot
// path) allocates nothing in steady state. A workspace is single-goroutine;
// the zero value is ready to use.
//
// Across calls the workspace also retains the previous eigenvector basis V
// and warm-starts the next decomposition with the similarity transform
// W = Vᴴ·A·V: when consecutive inputs are close (packets of one burst see
// the same channel plus noise), W is nearly diagonal and Jacobi converges
// in one or two cheap sweeps instead of five to nine full ones. The
// transform is unitary, so the result is exact regardless of how stale the
// basis is — a cold basis only costs the two matrix products. Call Reset to
// drop the basis (e.g. when a workspace is recycled across unrelated
// streams).
//
//spotfi:arena
type EigenWorkspace struct {
	w, v, tmp *Matrix
	d         EigenDecomposition
	vecArena  []complex128
	idx       []int
	diag      []float64
	// warmN is the dimension of the basis held in v from the previous
	// call, 0 when the workspace is cold.
	warmN int
}

// Reset drops the retained warm-start basis. Buffers stay allocated.
//
//spotfi:noalloc
func (ws *EigenWorkspace) Reset() { ws.warmN = 0 }

// EigHermitian computes all eigenvalues and orthonormal eigenvectors of the
// Hermitian matrix a using the cyclic Jacobi method with complex rotations.
// The input is not modified. Eigenvalues are returned in descending order.
//
// The method applies unitary similarity transforms A ← GᴴAG that each zero
// one off-diagonal pair, cycling over all pairs until the off-diagonal
// Frobenius mass falls below jacobiTol relative to the initial norm. Jacobi
// is slower than tridiagonalization+QL but is simple, backward-stable, and
// delivers small residuals ‖Av−λv‖ — exactly what the MUSIC noise-subspace
// projector needs.
func EigHermitian(a *Matrix) (*EigenDecomposition, error) {
	return EigHermitianInto(a, &EigenWorkspace{})
}

// EigHermitianInto is EigHermitian computing into ws: the returned
// decomposition and its Values/Vectors storage are owned by ws and are
// overwritten by the next call on the same workspace. Clone what must
// outlive it.
//
//spotfi:noalloc
func EigHermitianInto(a *Matrix, ws *EigenWorkspace) (*EigenDecomposition, error) {
	if a.rows != a.cols {
		return nil, ErrNotHermitian
	}
	scale := a.FrobeniusNorm()
	if scale == 0 {
		// Zero matrix: zero spectrum, canonical basis.
		ws.warmN = 0
		return canonicalDecompositionInto(a.rows, ws), nil //lint:allow arenaescape documented borrow: the decomposition views ws storage until the next call
	}
	if !a.isHermitianFast(1e-9 * scale) {
		ws.warmN = 0
		return nil, ErrNotHermitian
	}
	n := a.rows
	ws.w = Reshape(ws.w, n, n)
	w := ws.w
	if ws.warmN == n {
		// Warm start: rotate A into the previous eigenbasis. For inputs
		// close to the previous one this lands W nearly diagonal, and the
		// thresholded sweeps below skip almost every rotation.
		ws.tmp = Reshape(ws.tmp, n, n)
		mulInto(ws.tmp, a, ws.v)
		conjTransposeMulInto(w, ws.v, ws.tmp)
	} else {
		copy(w.data, a.data)
		ws.v = Reshape(ws.v, n, n)
		ws.v.SetIdentity()
	}
	v := ws.v
	// Enforce exact symmetry so rounding (in the caller, or in the warm
	// similarity transform) cannot bias rotations.
	for i := 0; i < n; i++ {
		w.data[i*n+i] = complex(real(w.data[i*n+i]), 0)
		for j := i + 1; j < n; j++ {
			avg := (w.data[i*n+j] + cmplx.Conj(w.data[j*n+i])) / 2
			w.data[i*n+j] = avg
			w.data[j*n+i] = cmplx.Conj(avg)
		}
	}

	// Pivots below skipThresh are left in place: even if every pair sits
	// exactly at the threshold the off-diagonal norm stays under
	// jacobiTol·scale/2, so the sweep-level convergence check still fires.
	// Skipping tiny pivots is where the warm start pays off — converged
	// regions of the matrix cost one comparison instead of three O(n)
	// update loops.
	skipThresh := jacobiTol * scale / float64(2*n)
	for sweep := 0; sweep < jacobiMaxSweeps; sweep++ {
		off := offDiagonalNorm(w)
		if off <= jacobiTol*scale {
			d := collectEigenInto(w, v, ws)
			d.Sweeps = sweep
			ws.warmN = n
			return d, nil //lint:allow arenaescape documented borrow: the decomposition views ws storage until the next call
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				if mag := cmplx.Abs(w.data[p*n+q]); mag > skipThresh {
					jacobiRotate(w, v, p, q)
				}
			}
		}
	}
	if offDiagonalNorm(w) <= 1e-8*scale {
		// Converged for every practical purpose; accept the result.
		d := collectEigenInto(w, v, ws)
		d.Sweeps = jacobiMaxSweeps
		ws.warmN = n
		return d, nil //lint:allow arenaescape documented borrow: the decomposition views ws storage until the next call
	}
	ws.warmN = 0
	return nil, ErrNoConvergence
}

//spotfi:noalloc
func canonicalDecompositionInto(n int, ws *EigenWorkspace) *EigenDecomposition {
	d := ws.prepare(n)
	for i := range d.Values {
		d.Values[i] = 0
	}
	for i := range d.Vectors {
		vec := d.Vectors[i]
		for j := range vec {
			vec[j] = 0
		}
		vec[i] = 1
	}
	return d
}

// prepare sizes the workspace's result storage for an n×n decomposition:
// Values, idx, and n eigenvector slices viewing one backing arena.
//
//spotfi:noalloc
func (ws *EigenWorkspace) prepare(n int) *EigenDecomposition {
	if cap(ws.vecArena) < n*n {
		ws.vecArena = make([]complex128, n*n) //lint:allow noalloc first-call arena growth, cold by construction
		ws.d.Values = make([]float64, n)      //lint:allow noalloc first-call arena growth, cold by construction
		ws.d.Vectors = make([][]complex128, n)
		ws.idx = make([]int, n) //lint:allow noalloc first-call arena growth, cold by construction
		ws.diag = make([]float64, n)
	}
	ws.vecArena = ws.vecArena[:n*n]
	ws.d.Values = ws.d.Values[:n]
	ws.d.Vectors = ws.d.Vectors[:n]
	ws.idx = ws.idx[:n]
	ws.diag = ws.diag[:n]
	for i := 0; i < n; i++ {
		ws.d.Vectors[i] = ws.vecArena[i*n : (i+1)*n]
	}
	ws.d.Sweeps = 0
	return &ws.d
}

// jacobiRotate zeroes w[p][q] (and w[q][p]) with a complex Jacobi rotation,
// accumulating the transform into v.
//
//spotfi:noalloc
func jacobiRotate(w, v *Matrix, p, q int) {
	n := w.rows
	apq := w.data[p*n+q]
	mag := cmplx.Abs(apq)
	if mag == 0 {
		return
	}
	app := real(w.data[p*n+p])
	aqq := real(w.data[q*n+q])

	// Phase factor e^{iφ} of the pivot and the real rotation angle.
	phase := apq / complex(mag, 0)
	tau := (aqq - app) / (2 * mag)
	var t float64
	if tau >= 0 {
		t = 1 / (tau + math.Sqrt(1+tau*tau))
	} else {
		t = -1 / (-tau + math.Sqrt(1+tau*tau))
	}
	c := 1 / math.Sqrt(1+t*t)
	s := t * c

	cs := complex(c, 0)
	sPhase := complex(s, 0) * phase                 // s·e^{iφ}
	sPhaseConj := complex(s, 0) * cmplx.Conj(phase) // s·e^{−iφ}

	// Columns p and q of W: W ← W·G.
	for k := 0; k < n; k++ {
		wkp := w.data[k*n+p]
		wkq := w.data[k*n+q]
		w.data[k*n+p] = cs*wkp - sPhaseConj*wkq
		w.data[k*n+q] = sPhase*wkp + cs*wkq
	}
	// Rows p and q of W: W ← Gᴴ·W.
	for k := 0; k < n; k++ {
		wpk := w.data[p*n+k]
		wqk := w.data[q*n+k]
		w.data[p*n+k] = cs*wpk - sPhase*wqk
		w.data[q*n+k] = sPhaseConj*wpk + cs*wqk
	}
	// Clean up rounding: the pivot pair is exactly zero and the diagonal
	// stays real.
	w.data[p*n+q] = 0
	w.data[q*n+p] = 0
	w.data[p*n+p] = complex(real(w.data[p*n+p]), 0)
	w.data[q*n+q] = complex(real(w.data[q*n+q]), 0)

	// Accumulate eigenvectors: V ← V·G.
	for k := 0; k < n; k++ {
		vkp := v.data[k*n+p]
		vkq := v.data[k*n+q]
		v.data[k*n+p] = cs*vkp - sPhaseConj*vkq
		v.data[k*n+q] = sPhase*vkp + cs*vkq
	}
}

//spotfi:noalloc
func offDiagonalNorm(m *Matrix) float64 {
	n := m.rows
	var sum float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			v := m.data[i*n+j]
			sum += real(v)*real(v) + imag(v)*imag(v)
		}
	}
	return math.Sqrt(sum)
}

// collectEigenInto sorts the converged diagonal of w into ws's result
// storage, copying the matching eigenvector columns of v into the
// workspace arena. v itself is left untouched — it is the accumulated
// basis the next warm start builds on.
//
//spotfi:noalloc
func collectEigenInto(w, v *Matrix, ws *EigenWorkspace) *EigenDecomposition {
	n := w.rows
	d := ws.prepare(n)
	idx, diag := ws.idx, ws.diag
	for i := 0; i < n; i++ {
		idx[i] = i
		diag[i] = real(w.data[i*n+i])
	}
	// Insertion sort, descending by eigenvalue: allocation-free (unlike
	// sort.Slice's closure) and near-linear on the almost-sorted diagonals
	// the warm-started iterations produce.
	for i := 1; i < n; i++ {
		cur := idx[i]
		key := diag[cur]
		j := i - 1
		for j >= 0 && diag[idx[j]] < key {
			idx[j+1] = idx[j]
			j--
		}
		idx[j+1] = cur
	}

	for rank, col := range idx {
		d.Values[rank] = diag[col]
		vec := d.Vectors[rank]
		for k := 0; k < n; k++ {
			vec[k] = v.data[k*n+col]
		}
		Normalize(vec)
	}
	return d
}

// SignalCut returns the index of the first eigenvector belonging to the
// noise subspace under MUSIC's threshold rule: the first eigenvalue below
// threshold·λmax, capped at maxSignal, and capped at n−1 so at least one
// noise vector always remains. Vectors[cut:] span the noise subspace;
// Vectors[:cut] span the signal subspace.
//
//spotfi:noalloc
func (d *EigenDecomposition) SignalCut(threshold float64, maxSignal int) int {
	n := len(d.Values)
	if n == 0 {
		return 0
	}
	maxVal := d.Values[0]
	cut := n // first index belonging to the noise subspace
	for i, v := range d.Values {
		if v < threshold*maxVal {
			cut = i
			break
		}
	}
	if cut > maxSignal {
		cut = maxSignal
	}
	if cut >= n {
		cut = n - 1 // keep at least one noise vector
	}
	return cut
}

// NoiseSubspace returns the eigenvectors whose eigenvalues fall below
// threshold·maxValue, i.e. the MUSIC noise subspace, as a matrix whose
// columns are those eigenvectors. maxSignal caps how many eigenvectors can
// be claimed by the signal subspace: at least (n − maxSignal) vectors are
// always returned so the projector never degenerates. It returns nil if
// every eigenvector is classified as signal.
func (d *EigenDecomposition) NoiseSubspace(threshold float64, maxSignal int) *Matrix {
	n := len(d.Values)
	if n == 0 {
		return nil
	}
	cut := d.SignalCut(threshold, maxSignal)
	if n-cut <= 0 {
		return nil
	}
	en := New(n, n-cut)
	for j := cut; j < n; j++ {
		en.SetCol(j-cut, d.Vectors[j])
	}
	return en
}

// SignalDimension returns the number of eigenvalues at or above
// threshold·maxValue, clamped to [1, maxSignal]. It estimates the number of
// resolvable propagation paths.
//
//spotfi:noalloc
func (d *EigenDecomposition) SignalDimension(threshold float64, maxSignal int) int {
	if len(d.Values) == 0 {
		return 0
	}
	maxVal := d.Values[0]
	dim := 0
	for _, v := range d.Values {
		if v >= threshold*maxVal {
			dim++
		}
	}
	if dim < 1 {
		dim = 1
	}
	if dim > maxSignal {
		dim = maxSignal
	}
	return dim
}
