package cmat

import (
	"fmt"
	"math/cmplx"
)

// LU holds an LU factorization with partial pivoting: P·A = L·U.
type LU struct {
	lu   *Matrix
	perm []int
	sign int
}

// Factorize computes the LU decomposition of a square matrix with partial
// pivoting. It fails on singular (to working precision) matrices.
func Factorize(a *Matrix) (*LU, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("cmat: LU of non-square %dx%d matrix", a.rows, a.cols)
	}
	n := a.rows
	lu := a.Clone()
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	sign := 1
	for col := 0; col < n; col++ {
		// Pivot: largest magnitude in the column at or below the diagonal.
		pivot := col
		best := cmplx.Abs(lu.data[col*n+col])
		for r := col + 1; r < n; r++ {
			if m := cmplx.Abs(lu.data[r*n+col]); m > best {
				pivot, best = r, m
			}
		}
		if best < 1e-300 {
			return nil, fmt.Errorf("cmat: singular matrix (pivot %d)", col)
		}
		if pivot != col {
			for k := 0; k < n; k++ {
				lu.data[col*n+k], lu.data[pivot*n+k] = lu.data[pivot*n+k], lu.data[col*n+k]
			}
			perm[col], perm[pivot] = perm[pivot], perm[col]
			sign = -sign
		}
		inv := 1 / lu.data[col*n+col]
		for r := col + 1; r < n; r++ {
			f := lu.data[r*n+col] * inv
			lu.data[r*n+col] = f
			if f == 0 {
				continue
			}
			for k := col + 1; k < n; k++ {
				lu.data[r*n+k] -= f * lu.data[col*n+k]
			}
		}
	}
	return &LU{lu: lu, perm: perm, sign: sign}, nil
}

// SolveVec solves A·x = b for one right-hand side.
func (f *LU) SolveVec(b []complex128) ([]complex128, error) {
	n := f.lu.rows
	if len(b) != n {
		return nil, fmt.Errorf("cmat: rhs length %d, want %d", len(b), n)
	}
	x := make([]complex128, n)
	// Apply permutation, forward substitution (L has unit diagonal).
	for i := 0; i < n; i++ {
		x[i] = b[f.perm[i]]
		for k := 0; k < i; k++ {
			x[i] -= f.lu.data[i*n+k] * x[k]
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		for k := i + 1; k < n; k++ {
			x[i] -= f.lu.data[i*n+k] * x[k]
		}
		x[i] /= f.lu.data[i*n+i]
	}
	return x, nil
}

// Solve solves A·X = B for a matrix right-hand side.
func (f *LU) Solve(b *Matrix) (*Matrix, error) {
	if b.rows != f.lu.rows {
		return nil, fmt.Errorf("cmat: rhs has %d rows, want %d", b.rows, f.lu.rows)
	}
	out := New(b.rows, b.cols)
	col := make([]complex128, b.rows)
	for j := 0; j < b.cols; j++ {
		for i := 0; i < b.rows; i++ {
			col[i] = b.data[i*b.cols+j]
		}
		x, err := f.SolveVec(col)
		if err != nil {
			return nil, err
		}
		for i := 0; i < b.rows; i++ {
			out.data[i*out.cols+j] = x[i]
		}
	}
	return out, nil
}

// Solve is a convenience wrapper: factorize a and solve A·X = B.
func Solve(a, b *Matrix) (*Matrix, error) {
	f, err := Factorize(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}

// Inverse returns A⁻¹.
func Inverse(a *Matrix) (*Matrix, error) {
	return Solve(a, Identity(a.rows))
}

// LeastSquares solves the overdetermined system A·X ≈ B (rows ≥ cols) via
// the normal equations AᴴA·X = AᴴB — adequate for the small, well-
// conditioned systems the estimators build.
func LeastSquares(a, b *Matrix) (*Matrix, error) {
	if a.rows < a.cols {
		return nil, fmt.Errorf("cmat: least squares needs rows ≥ cols, got %dx%d", a.rows, a.cols)
	}
	ah := a.ConjTranspose()
	return Solve(ah.Mul(a), ah.Mul(b))
}
