// Package cmat provides dense complex-valued vectors and matrices together
// with the numerical routines SpotFi needs: Hermitian products, norms, and a
// cyclic-Jacobi Hermitian eigendecomposition.
//
// The package is self-contained (stdlib only). Matrices are stored row-major
// in a single backing slice; all dimensions are fixed at construction.
package cmat

import (
	"fmt"
	"math"
	"math/cmplx"
	"strings"
)

// Matrix is a dense rows×cols complex matrix stored in row-major order.
type Matrix struct {
	rows, cols int
	data       []complex128
}

// New returns a zero rows×cols matrix. It panics if either dimension is
// not positive.
func New(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("cmat: invalid dimensions %dx%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]complex128, rows*cols)}
}

// FromSlice builds a rows×cols matrix copying values from data, which must
// hold exactly rows*cols elements in row-major order.
func FromSlice(rows, cols int, data []complex128) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("cmat: FromSlice got %d elements, want %d", len(data), rows*cols))
	}
	m := New(rows, cols)
	copy(m.data, data)
	return m
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]complex128) *Matrix {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("cmat: FromRows requires at least one non-empty row")
	}
	m := New(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.cols {
			panic(fmt.Sprintf("cmat: row %d has %d elements, want %d", i, len(r), m.cols))
		}
		copy(m.data[i*m.cols:], r)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// Reshape returns a zeroed rows×cols matrix, reusing m's backing storage
// when its capacity suffices. Pass nil (or any previous scratch matrix) to
// size workspace arenas without allocating in steady state. The returned
// matrix aliases m's storage, so m must not be used afterwards.
//
//spotfi:noalloc
func Reshape(m *Matrix, rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("cmat: invalid dimensions %dx%d", rows, cols))
	}
	if m == nil || cap(m.data) < rows*cols {
		return New(rows, cols) //lint:allow noalloc first-call arena growth or a capacity change, cold by construction
	}
	m.rows, m.cols = rows, cols
	m.data = m.data[:rows*cols]
	for i := range m.data {
		m.data[i] = 0
	}
	return m
}

// SetIdentity overwrites a square matrix with the identity.
//
//spotfi:noalloc
func (m *Matrix) SetIdentity() {
	if m.rows != m.cols {
		panic("cmat: SetIdentity on non-square matrix")
	}
	for i := range m.data {
		m.data[i] = 0
	}
	for i := 0; i < m.rows; i++ {
		m.data[i*m.cols+i] = 1
	}
}

// Rows returns the number of rows.
//
//spotfi:noalloc
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
//
//spotfi:noalloc
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at row i, column j.
//
//spotfi:noalloc
func (m *Matrix) At(i, j int) complex128 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at row i, column j.
//
//spotfi:noalloc
func (m *Matrix) Set(i, j int, v complex128) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

// check panics if (i, j) is out of range. The message is a constant string
// on purpose: a fmt.Sprintf call here would push check past the inlining
// budget, and At/Set sit on the MUSIC hot path where the bounds check must
// inline away. The unsigned compare folds the negative and too-large cases
// into one branch per axis, the same shape the compiler emits for slices.
//
//spotfi:noalloc
func (m *Matrix) check(i, j int) {
	if uint(i) >= uint(m.rows) || uint(j) >= uint(m.cols) {
		panic("cmat: index out of range")
	}
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := New(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []complex128 {
	if uint(i) >= uint(m.rows) {
		panic("cmat: row index out of range")
	}
	out := make([]complex128, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []complex128 {
	if uint(j) >= uint(m.cols) {
		panic("cmat: col index out of range")
	}
	out := make([]complex128, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// SetCol assigns column j from v, which must have Rows elements.
func (m *Matrix) SetCol(j int, v []complex128) {
	if len(v) != m.rows {
		panic(fmt.Sprintf("cmat: SetCol got %d elements, want %d", len(v), m.rows))
	}
	for i := 0; i < m.rows; i++ {
		m.data[i*m.cols+j] = v[i]
	}
}

// Mul returns the matrix product m·b.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.cols != b.rows {
		panic(fmt.Sprintf("cmat: Mul dimension mismatch %dx%d · %dx%d", m.rows, m.cols, b.rows, b.cols))
	}
	out := New(m.rows, b.cols)
	for i := 0; i < m.rows; i++ {
		mrow := m.data[i*m.cols : (i+1)*m.cols]
		orow := out.data[i*b.cols : (i+1)*b.cols]
		for k, mik := range mrow {
			if mik == 0 {
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			for j, bkj := range brow {
				orow[j] += mik * bkj
			}
		}
	}
	return out
}

// ConjTranspose returns the conjugate transpose mᴴ.
func (m *Matrix) ConjTranspose() *Matrix {
	out := New(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			out.data[j*out.cols+i] = cmplx.Conj(m.data[i*m.cols+j])
		}
	}
	return out
}

// Gram returns m·mᴴ, the (rows×rows) Gram matrix used to form the CSI
// covariance. The result is Hermitian by construction (up to rounding),
// and the routine enforces exact Hermitian symmetry so it can be fed
// directly into EigHermitian.
func (m *Matrix) Gram() *Matrix {
	out := New(m.rows, m.rows)
	for i := 0; i < m.rows; i++ {
		ri := m.data[i*m.cols : (i+1)*m.cols]
		for j := i; j < m.rows; j++ {
			rj := m.data[j*m.cols : (j+1)*m.cols]
			var sum complex128
			for k := range ri {
				sum += ri[k] * cmplx.Conj(rj[k])
			}
			if i == j {
				// Diagonal of a Gram matrix is real and non-negative.
				out.data[i*m.rows+i] = complex(real(sum), 0)
				continue
			}
			out.data[i*m.rows+j] = sum
			out.data[j*m.rows+i] = cmplx.Conj(sum)
		}
	}
	return out
}

// GramInto computes m·mᴴ into out, which must be rows×rows. Semantics
// match Gram (exact Hermitian symmetry enforced); no allocation.
//
//spotfi:noalloc
func (m *Matrix) GramInto(out *Matrix) *Matrix {
	if out.rows != m.rows || out.cols != m.rows {
		panic(fmt.Sprintf("cmat: GramInto got %dx%d output, want %dx%d", out.rows, out.cols, m.rows, m.rows))
	}
	for i := 0; i < m.rows; i++ {
		ri := m.data[i*m.cols : (i+1)*m.cols]
		for j := i; j < m.rows; j++ {
			rj := m.data[j*m.cols : (j+1)*m.cols]
			var sum complex128
			for k := range ri {
				sum += ri[k] * cmplx.Conj(rj[k])
			}
			if i == j {
				// Diagonal of a Gram matrix is real and non-negative.
				out.data[i*m.rows+i] = complex(real(sum), 0)
				continue
			}
			out.data[i*m.rows+j] = sum
			out.data[j*m.rows+i] = cmplx.Conj(sum)
		}
	}
	return out
}

// mulInto computes a·b into out without allocating. out must not alias a
// or b.
//
//spotfi:noalloc
func mulInto(out, a, b *Matrix) {
	if a.cols != b.rows || out.rows != a.rows || out.cols != b.cols {
		panic("cmat: mulInto dimension mismatch")
	}
	for i := range out.data {
		out.data[i] = 0
	}
	for i := 0; i < a.rows; i++ {
		arow := a.data[i*a.cols : (i+1)*a.cols]
		orow := out.data[i*b.cols : (i+1)*b.cols]
		for k, aik := range arow {
			if aik == 0 {
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			for j, bkj := range brow {
				orow[j] += aik * bkj
			}
		}
	}
}

// conjTransposeMulInto computes aᴴ·b into out without allocating. out must
// not alias a or b.
//
//spotfi:noalloc
func conjTransposeMulInto(out, a, b *Matrix) {
	if a.rows != b.rows || out.rows != a.cols || out.cols != b.cols {
		panic("cmat: conjTransposeMulInto dimension mismatch")
	}
	for i := range out.data {
		out.data[i] = 0
	}
	for k := 0; k < a.rows; k++ {
		arow := a.data[k*a.cols : (k+1)*a.cols]
		brow := b.data[k*b.cols : (k+1)*b.cols]
		for i, aki := range arow {
			c := cmplx.Conj(aki)
			if c == 0 {
				continue
			}
			orow := out.data[i*out.cols : (i+1)*out.cols]
			for j, bkj := range brow {
				orow[j] += c * bkj
			}
		}
	}
}

// isHermitianFast is IsHermitian with a cheap bit-exact prepass: matrices
// built by Gram/GramInto are exactly Hermitian, so the common case costs
// one equality compare per pair instead of a cmplx.Abs.
//
//spotfi:noalloc
func (m *Matrix) isHermitianFast(tol float64) bool {
	if m.rows != m.cols {
		return false
	}
	for i := 0; i < m.rows; i++ {
		for j := i; j < m.cols; j++ {
			u, l := m.data[i*m.cols+j], m.data[j*m.cols+i]
			if u == cmplx.Conj(l) { //lint:allow floateq bit-exact fast path; inexact pairs fall through to the tolerance check
				continue
			}
			if cmplx.Abs(u-cmplx.Conj(l)) > tol {
				return false
			}
		}
	}
	return true
}

// Scale returns s·m.
func (m *Matrix) Scale(s complex128) *Matrix {
	out := New(m.rows, m.cols)
	for i, v := range m.data {
		out.data[i] = s * v
	}
	return out
}

// Add returns m+b.
func (m *Matrix) Add(b *Matrix) *Matrix {
	if m.rows != b.rows || m.cols != b.cols {
		panic("cmat: Add dimension mismatch")
	}
	out := New(m.rows, m.cols)
	for i, v := range m.data {
		out.data[i] = v + b.data[i]
	}
	return out
}

// Sub returns m−b.
func (m *Matrix) Sub(b *Matrix) *Matrix {
	if m.rows != b.rows || m.cols != b.cols {
		panic("cmat: Sub dimension mismatch")
	}
	out := New(m.rows, m.cols)
	for i, v := range m.data {
		out.data[i] = v - b.data[i]
	}
	return out
}

// MulVec returns the matrix-vector product m·v.
func (m *Matrix) MulVec(v []complex128) []complex128 {
	if len(v) != m.cols {
		panic(fmt.Sprintf("cmat: MulVec got vector of length %d, want %d", len(v), m.cols))
	}
	out := make([]complex128, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		var sum complex128
		for k, x := range v {
			sum += row[k] * x
		}
		out[i] = sum
	}
	return out
}

// FrobeniusNorm returns the Frobenius norm of m.
//
//spotfi:noalloc
func (m *Matrix) FrobeniusNorm() float64 {
	var sum float64
	for _, v := range m.data {
		sum += real(v)*real(v) + imag(v)*imag(v)
	}
	return math.Sqrt(sum)
}

// Trace returns the trace of a square matrix.
func (m *Matrix) Trace() complex128 {
	if m.rows != m.cols {
		panic("cmat: Trace of non-square matrix")
	}
	var t complex128
	for i := 0; i < m.rows; i++ {
		t += m.data[i*m.cols+i]
	}
	return t
}

// IsHermitian reports whether m equals its conjugate transpose to within
// tol in absolute elementwise difference.
func (m *Matrix) IsHermitian(tol float64) bool {
	if m.rows != m.cols {
		return false
	}
	for i := 0; i < m.rows; i++ {
		for j := i; j < m.cols; j++ {
			d := m.data[i*m.cols+j] - cmplx.Conj(m.data[j*m.cols+i])
			if cmplx.Abs(d) > tol {
				return false
			}
		}
	}
	return true
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%dx%d\n", m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			v := m.data[i*m.cols+j]
			fmt.Fprintf(&b, "(%8.4f%+8.4fi) ", real(v), imag(v))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
