package cmat

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

func almostEqual(a, b complex128, tol float64) bool {
	return cmplx.Abs(a-b) <= tol
}

func TestNewDimensionsAndZeroValue(t *testing.T) {
	m := New(3, 4)
	if m.Rows() != 3 || m.Cols() != 4 {
		t.Fatalf("got %dx%d, want 3x4", m.Rows(), m.Cols())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("element (%d,%d) = %v, want 0", i, j, m.At(i, j))
			}
		}
	}
}

func TestNewPanicsOnBadDims(t *testing.T) {
	for _, dims := range [][2]int{{0, 1}, {1, 0}, {-1, 2}, {2, -3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", dims[0], dims[1])
				}
			}()
			New(dims[0], dims[1])
		}()
	}
}

func TestFromSliceRoundTrip(t *testing.T) {
	data := []complex128{1, 2i, 3, 4 + 4i, 5, 6}
	m := FromSlice(2, 3, data)
	if m.At(0, 1) != 2i || m.At(1, 0) != 4+4i {
		t.Fatalf("unexpected layout: %v", m)
	}
	// FromSlice must copy.
	data[0] = 99
	if m.At(0, 0) != 1 {
		t.Fatal("FromSlice did not copy its input")
	}
}

func TestFromSlicePanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSlice(2, 2, []complex128{1, 2, 3})
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]complex128{{1, 2}, {3, 4}})
	if m.At(1, 0) != 3 {
		t.Fatalf("At(1,0) = %v, want 3", m.At(1, 0))
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for ragged rows")
		}
	}()
	FromRows([][]complex128{{1, 2}, {3}})
}

func TestIdentity(t *testing.T) {
	m := Identity(4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := complex128(0)
			if i == j {
				want = 1
			}
			if m.At(i, j) != want {
				t.Fatalf("I[%d][%d] = %v", i, j, m.At(i, j))
			}
		}
	}
}

func TestMulAgainstHandComputed(t *testing.T) {
	a := FromRows([][]complex128{{1, 2i}, {3, 4}})
	b := FromRows([][]complex128{{5, 6}, {7, 8i}})
	got := a.Mul(b)
	want := FromRows([][]complex128{
		{5 + 14i, 6 - 16},
		{43, 18 + 32i},
	})
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if !almostEqual(got.At(i, j), want.At(i, j), 1e-12) {
				t.Fatalf("(%d,%d): got %v want %v", i, j, got.At(i, j), want.At(i, j))
			}
		}
	}
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randomMatrix(rng, 5, 7)
	left := Identity(5).Mul(a)
	right := a.Mul(Identity(7))
	for i := 0; i < 5; i++ {
		for j := 0; j < 7; j++ {
			if !almostEqual(left.At(i, j), a.At(i, j), 1e-12) || !almostEqual(right.At(i, j), a.At(i, j), 1e-12) {
				t.Fatal("identity multiplication changed the matrix")
			}
		}
	}
}

func TestMulDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 3).Mul(New(2, 3))
}

func TestConjTranspose(t *testing.T) {
	a := FromRows([][]complex128{{1 + 1i, 2}, {3i, 4 - 2i}, {5, 6}})
	h := a.ConjTranspose()
	if h.Rows() != 2 || h.Cols() != 3 {
		t.Fatalf("got %dx%d, want 2x3", h.Rows(), h.Cols())
	}
	if h.At(0, 0) != 1-1i || h.At(0, 1) != -3i || h.At(1, 1) != 4+2i {
		t.Fatalf("bad conjugate transpose: %v", h)
	}
}

func TestGramMatchesExplicitProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randomMatrix(rng, 6, 9)
	got := a.Gram()
	want := a.Mul(a.ConjTranspose())
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			if !almostEqual(got.At(i, j), want.At(i, j), 1e-10) {
				t.Fatalf("Gram (%d,%d): got %v want %v", i, j, got.At(i, j), want.At(i, j))
			}
		}
	}
	if !got.IsHermitian(0) {
		t.Fatal("Gram result is not exactly Hermitian")
	}
}

func TestGramDiagonalRealNonNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomMatrix(rng, 4, 5)
	g := a.Gram()
	for i := 0; i < 4; i++ {
		d := g.At(i, i)
		if imag(d) != 0 || real(d) < 0 {
			t.Fatalf("diagonal %d = %v, want real non-negative", i, d)
		}
	}
}

func TestAddSubScale(t *testing.T) {
	a := FromRows([][]complex128{{1, 2}, {3, 4}})
	b := FromRows([][]complex128{{5, 6}, {7, 8}})
	sum := a.Add(b)
	if sum.At(1, 1) != 12 {
		t.Fatalf("Add: %v", sum.At(1, 1))
	}
	diff := sum.Sub(b)
	if diff.At(1, 1) != 4 {
		t.Fatalf("Sub: %v", diff.At(1, 1))
	}
	sc := a.Scale(2i)
	if sc.At(0, 1) != 4i {
		t.Fatalf("Scale: %v", sc.At(0, 1))
	}
}

func TestMulVec(t *testing.T) {
	a := FromRows([][]complex128{{1, 2}, {3, 4}})
	got := a.MulVec([]complex128{1i, 1})
	if got[0] != 2+1i || got[1] != 4+3i {
		t.Fatalf("MulVec = %v", got)
	}
}

func TestRowColCopySemantics(t *testing.T) {
	a := FromRows([][]complex128{{1, 2}, {3, 4}})
	r := a.Row(0)
	r[0] = 99
	if a.At(0, 0) != 1 {
		t.Fatal("Row returned a live reference")
	}
	c := a.Col(1)
	c[0] = 99
	if a.At(0, 1) != 2 {
		t.Fatal("Col returned a live reference")
	}
}

func TestSetCol(t *testing.T) {
	a := New(2, 2)
	a.SetCol(1, []complex128{7, 8})
	if a.At(0, 1) != 7 || a.At(1, 1) != 8 {
		t.Fatalf("SetCol failed: %v", a)
	}
}

func TestTraceAndNorm(t *testing.T) {
	a := FromRows([][]complex128{{1, 2}, {3, 4i}})
	if a.Trace() != 1+4i {
		t.Fatalf("Trace = %v", a.Trace())
	}
	want := math.Sqrt(1 + 4 + 9 + 16)
	if math.Abs(a.FrobeniusNorm()-want) > 1e-12 {
		t.Fatalf("FrobeniusNorm = %v, want %v", a.FrobeniusNorm(), want)
	}
}

func TestIsHermitian(t *testing.T) {
	h := FromRows([][]complex128{{2, 1 + 1i}, {1 - 1i, 3}})
	if !h.IsHermitian(1e-15) {
		t.Fatal("Hermitian matrix misclassified")
	}
	nh := FromRows([][]complex128{{2, 1 + 1i}, {1 + 1i, 3}})
	if nh.IsHermitian(1e-15) {
		t.Fatal("non-Hermitian matrix misclassified")
	}
	if New(2, 3).IsHermitian(1) {
		t.Fatal("non-square matrix cannot be Hermitian")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := FromRows([][]complex128{{1, 2}, {3, 4}})
	b := a.Clone()
	b.Set(0, 0, 42)
	if a.At(0, 0) != 1 {
		t.Fatal("Clone shares storage with the original")
	}
}

func TestStringContainsDims(t *testing.T) {
	s := New(2, 3).String()
	if len(s) == 0 || s[:3] != "2x3" {
		t.Fatalf("String() = %q", s)
	}
}

func randomMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := New(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			m.Set(i, j, complex(rng.NormFloat64(), rng.NormFloat64()))
		}
	}
	return m
}

func randomHermitian(rng *rand.Rand, n int) *Matrix {
	a := randomMatrix(rng, n, n)
	return a.Gram()
}

func TestReshapeReusesCapacity(t *testing.T) {
	m := New(6, 8)
	m.Set(0, 0, 3)
	r := Reshape(m, 4, 4) // fits in 48 elements: same object, zeroed
	if r != m {
		t.Fatal("Reshape allocated despite sufficient capacity")
	}
	if r.Rows() != 4 || r.Cols() != 4 {
		t.Fatalf("Reshape dims %dx%d, want 4x4", r.Rows(), r.Cols())
	}
	if r.At(0, 0) != 0 {
		t.Fatal("Reshape did not zero the content")
	}
	big := Reshape(m, 10, 10) // exceeds capacity: fresh storage
	big.Set(9, 9, 1)
	if m.Rows() == 10 && m.Cols() == 10 && big == m {
		t.Fatal("Reshape should have allocated a larger matrix")
	}
	if nilGrown := Reshape(nil, 2, 3); nilGrown.Rows() != 2 || nilGrown.Cols() != 3 {
		t.Fatal("Reshape(nil) did not allocate")
	}
}

func TestGramIntoMatchesGram(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	a := randomMatrix(rng, 5, 7)
	want := a.Gram()
	got := a.GramInto(New(5, 5))
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			if !almostEqual(got.At(i, j), want.At(i, j), 1e-12) {
				t.Fatalf("GramInto (%d,%d): got %v want %v", i, j, got.At(i, j), want.At(i, j))
			}
		}
	}
}

func TestSetIdentity(t *testing.T) {
	m := New(3, 3)
	m.Set(1, 2, 5)
	m.SetIdentity()
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := complex128(0)
			if i == j {
				want = 1
			}
			if m.At(i, j) != want {
				t.Fatalf("SetIdentity (%d,%d) = %v", i, j, m.At(i, j))
			}
		}
	}
}
