package cmat

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
)

// EigGeneral computes the eigenvalues — and, when vectors is true, the
// (right) eigenvectors — of a general square complex matrix via Householder
// Hessenberg reduction and the shifted QR iteration, with eigenvectors
// recovered by inverse iteration. It targets the small (≤ ~16) dense
// matrices the shift-invariance estimators produce; defective matrices
// yield eigenvalues but possibly repeated eigenvectors.
func EigGeneral(a *Matrix, vectors bool) ([]complex128, [][]complex128, error) {
	if a.rows != a.cols {
		return nil, nil, fmt.Errorf("cmat: eigenvalues of non-square %dx%d matrix", a.rows, a.cols)
	}
	n := a.rows
	if n == 0 {
		return nil, nil, fmt.Errorf("cmat: empty matrix")
	}
	for _, v := range a.data {
		if cmplx.IsNaN(v) || cmplx.IsInf(v) {
			return nil, nil, fmt.Errorf("cmat: non-finite entry")
		}
	}
	var vals []complex128
	switch n {
	case 1:
		vals = []complex128{a.data[0]}
	case 2:
		vals = eig2x2(a.data[0], a.data[1], a.data[2], a.data[3])
	default:
		h := hessenberg(a.Clone())
		var err error
		vals, err = qrEigenvalues(h)
		if err != nil {
			return nil, nil, err
		}
	}
	if !vectors {
		return vals, nil, nil
	}
	vecs := make([][]complex128, len(vals))
	rng := rand.New(rand.NewSource(0x9E3779B9))
	for i, lam := range vals {
		v, err := inverseIteration(a, lam, rng)
		if err != nil {
			return nil, nil, fmt.Errorf("cmat: eigenvector %d: %w", i, err)
		}
		vecs[i] = v
	}
	return vals, vecs, nil
}

// eig2x2 returns the eigenvalues of [[a,b],[c,d]] in closed form.
func eig2x2(a, b, c, d complex128) []complex128 {
	tr := a + d
	det := a*d - b*c
	disc := cmplx.Sqrt(tr*tr - 4*det)
	return []complex128{(tr + disc) / 2, (tr - disc) / 2}
}

// hessenberg reduces a (in place) to upper Hessenberg form by Householder
// similarity transforms and returns it.
func hessenberg(a *Matrix) *Matrix {
	n := a.rows
	for col := 0; col < n-2; col++ {
		// Householder vector for column col, rows col+1..n-1.
		var norm float64
		for r := col + 1; r < n; r++ {
			norm += real(a.data[r*n+col])*real(a.data[r*n+col]) + imag(a.data[r*n+col])*imag(a.data[r*n+col])
		}
		norm = math.Sqrt(norm)
		if norm < 1e-300 {
			continue
		}
		x0 := a.data[(col+1)*n+col]
		alpha := complex(-norm, 0)
		if x0 != 0 {
			alpha = -complex(norm, 0) * x0 / complex(cmplx.Abs(x0), 0)
		}
		v := make([]complex128, n)
		v[col+1] = x0 - alpha
		for r := col + 2; r < n; r++ {
			v[r] = a.data[r*n+col]
		}
		var vn float64
		for _, vv := range v {
			vn += real(vv)*real(vv) + imag(vv)*imag(vv)
		}
		if vn < 1e-300 {
			continue
		}
		inv2 := complex(2/vn, 0)
		// A ← (I − 2vvᴴ/‖v‖²)·A.
		for j := 0; j < n; j++ {
			var dot complex128
			for r := col + 1; r < n; r++ {
				dot += cmplx.Conj(v[r]) * a.data[r*n+j]
			}
			dot *= inv2
			for r := col + 1; r < n; r++ {
				a.data[r*n+j] -= v[r] * dot
			}
		}
		// A ← A·(I − 2vvᴴ/‖v‖²).
		for i := 0; i < n; i++ {
			var dot complex128
			for r := col + 1; r < n; r++ {
				dot += a.data[i*n+r] * v[r]
			}
			dot *= inv2
			for r := col + 1; r < n; r++ {
				a.data[i*n+r] -= dot * cmplx.Conj(v[r])
			}
		}
	}
	return a
}

// qrEigenvalues runs the single-shift QR iteration on an upper Hessenberg
// matrix until every subdiagonal deflates, returning the diagonal.
func qrEigenvalues(h *Matrix) ([]complex128, error) {
	n := h.rows
	const maxIters = 60
	hi := n - 1
	iters := 0
	for hi > 0 {
		// Deflate tiny subdiagonals.
		deflated := false
		for k := hi; k > 0; k-- {
			if cmplx.Abs(h.data[k*n+k-1]) <= 1e-14*(cmplx.Abs(h.data[(k-1)*n+k-1])+cmplx.Abs(h.data[k*n+k])) {
				h.data[k*n+k-1] = 0
				if k == hi {
					hi--
					iters = 0
					deflated = true
				}
				break
			}
		}
		if deflated || hi == 0 {
			continue
		}
		iters++
		if iters > maxIters {
			return nil, fmt.Errorf("cmat: QR iteration did not converge")
		}
		// Wilkinson shift from the trailing 2×2 of the active block.
		a11 := h.data[(hi-1)*n+hi-1]
		a12 := h.data[(hi-1)*n+hi]
		a21 := h.data[hi*n+hi-1]
		a22 := h.data[hi*n+hi]
		ev := eig2x2(a11, a12, a21, a22)
		mu := ev[0]
		if cmplx.Abs(ev[1]-a22) < cmplx.Abs(ev[0]-a22) {
			mu = ev[1]
		}
		// Implicit QR step on the active block via Givens rotations.
		qrStep(h, hi, mu)
	}
	vals := make([]complex128, n)
	for i := 0; i < n; i++ {
		vals[i] = h.data[i*n+i]
	}
	return vals, nil
}

// qrStep performs one explicit shifted QR sweep on rows/cols 0..hi of the
// Hessenberg matrix: M = H − μI is factorized M = QR by Givens rotations,
// then H ← RQ + μI. The result stays Hessenberg and is similar to H.
func qrStep(h *Matrix, hi int, mu complex128) {
	n := h.rows
	for i := 0; i <= hi; i++ {
		h.data[i*n+i] -= mu
	}
	type givens struct {
		c complex128
		s complex128
	}
	gs := make([]givens, hi)
	// QR factorization: rotation i zeroes M[i+1][i] against the current
	// diagonal M[i][i].
	for i := 0; i < hi; i++ {
		x := h.data[i*n+i]
		y := h.data[(i+1)*n+i]
		r := math.Hypot(cmplx.Abs(x), cmplx.Abs(y))
		if r < 1e-300 {
			gs[i] = givens{c: 1, s: 0}
			continue
		}
		c := x / complex(r, 0)
		s := y / complex(r, 0)
		gs[i] = givens{c: c, s: s}
		// Rows i, i+1 ← Gᴴ · rows.
		for j := i; j <= hi; j++ {
			hij := h.data[i*n+j]
			hi1j := h.data[(i+1)*n+j]
			h.data[i*n+j] = cmplx.Conj(c)*hij + cmplx.Conj(s)*hi1j
			h.data[(i+1)*n+j] = -s*hij + c*hi1j
		}
		h.data[(i+1)*n+i] = 0
	}
	// RQ: columns i, i+1 ← columns · G.
	for i := 0; i < hi; i++ {
		c, s := gs[i].c, gs[i].s
		last := minInt(hi, i+1)
		for r := 0; r <= last; r++ {
			hri := h.data[r*n+i]
			hri1 := h.data[r*n+i+1]
			h.data[r*n+i] = hri*c + hri1*s
			h.data[r*n+i+1] = -hri*cmplx.Conj(s) + hri1*cmplx.Conj(c)
		}
	}
	for i := 0; i <= hi; i++ {
		h.data[i*n+i] += mu
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// inverseIteration recovers a unit eigenvector for eigenvalue lam by
// solving (A − (λ+ε)I)·x = b repeatedly from a random start.
func inverseIteration(a *Matrix, lam complex128, rng *rand.Rand) ([]complex128, error) {
	n := a.rows
	scale := a.FrobeniusNorm()
	if scale == 0 {
		scale = 1
	}
	// Perturb the shift slightly so the solve is nonsingular even at an
	// exact eigenvalue.
	for attempt := 0; attempt < 4; attempt++ {
		eps := complex(scale*1e-10*math.Pow(10, float64(attempt)), scale*1e-10)
		shifted := a.Clone()
		for i := 0; i < n; i++ {
			shifted.data[i*n+i] -= lam + eps
		}
		f, err := Factorize(shifted)
		if err != nil {
			continue
		}
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		Normalize(x)
		ok := true
		for it := 0; it < 3; it++ {
			y, err := f.SolveVec(x)
			if err != nil {
				ok = false
				break
			}
			if nm := Norm2(y); nm < 1e-300 || math.IsNaN(nm) || math.IsInf(nm, 0) {
				ok = false
				break
			}
			Normalize(y)
			x = y
		}
		if !ok {
			continue
		}
		// Accept if the residual is small.
		ax := a.MulVec(x)
		for i := range ax {
			ax[i] -= lam * x[i]
		}
		if Norm2(ax) <= 1e-6*scale {
			return x, nil
		}
	}
	return nil, fmt.Errorf("cmat: inverse iteration failed for eigenvalue %v", lam)
}
