package cmat

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Dot returns the Hermitian inner product ⟨a,b⟩ = Σ aᵢ·conj(bᵢ).
func Dot(a, b []complex128) complex128 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("cmat: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	var sum complex128
	for i := range a {
		sum += a[i] * cmplx.Conj(b[i])
	}
	return sum
}

// Norm2 returns the Euclidean norm of v.
//
//spotfi:noalloc
func Norm2(v []complex128) float64 {
	var sum float64
	for _, x := range v {
		sum += real(x)*real(x) + imag(x)*imag(x)
	}
	return math.Sqrt(sum)
}

// Normalize scales v in place to unit Euclidean norm and returns v.
// A zero vector is returned unchanged.
//
//spotfi:noalloc
func Normalize(v []complex128) []complex128 {
	n := Norm2(v)
	if n == 0 {
		return v
	}
	inv := complex(1/n, 0)
	for i := range v {
		v[i] *= inv
	}
	return v
}

// AXPY computes y ← y + a·x in place.
func AXPY(a complex128, x, y []complex128) {
	if len(x) != len(y) {
		panic("cmat: AXPY length mismatch")
	}
	for i := range x {
		y[i] += a * x[i]
	}
}

// ScaleVec returns a·x as a new slice.
func ScaleVec(a complex128, x []complex128) []complex128 {
	out := make([]complex128, len(x))
	for i, v := range x {
		out[i] = a * v
	}
	return out
}

// Kron returns the Kronecker product a ⊗ b of two vectors: the result has
// len(a)·len(b) elements with out[i*len(b)+j] = a[i]·b[j]. SpotFi steering
// vectors factor as the Kronecker product of an antenna-phase vector and a
// subcarrier-phase vector.
func Kron(a, b []complex128) []complex128 {
	out := make([]complex128, len(a)*len(b))
	for i, av := range a {
		base := i * len(b)
		for j, bv := range b {
			out[base+j] = av * bv
		}
	}
	return out
}
