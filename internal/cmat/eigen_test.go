package cmat

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEigHermitianDiagonal(t *testing.T) {
	a := FromRows([][]complex128{
		{3, 0, 0},
		{0, -1, 0},
		{0, 0, 7},
	})
	d, err := EigHermitian(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{7, 3, -1}
	for i, v := range want {
		if math.Abs(d.Values[i]-v) > 1e-12 {
			t.Fatalf("eigenvalue %d = %v, want %v", i, d.Values[i], v)
		}
	}
}

func TestEigHermitianKnown2x2(t *testing.T) {
	// [[2, 1+1i], [1-1i, 3]] has eigenvalues (5±√(1+8))/2 = (5±3)/2 = 4, 1.
	a := FromRows([][]complex128{{2, 1 + 1i}, {1 - 1i, 3}})
	d, err := EigHermitian(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Values[0]-4) > 1e-12 || math.Abs(d.Values[1]-1) > 1e-12 {
		t.Fatalf("eigenvalues = %v, want [4 1]", d.Values)
	}
}

func TestEigHermitianResiduals(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 3, 5, 10, 30} {
		a := randomHermitian(rng, n)
		d, err := EigHermitian(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		scale := a.FrobeniusNorm()
		for i := range d.Values {
			av := a.MulVec(d.Vectors[i])
			for k := range av {
				av[k] -= complex(d.Values[i], 0) * d.Vectors[i][k]
			}
			if res := Norm2(av); res > 1e-9*scale {
				t.Fatalf("n=%d: residual ‖Av−λv‖ = %g for eigenpair %d", n, res, i)
			}
		}
	}
}

func TestEigHermitianOrthonormality(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randomHermitian(rng, 12)
	d, err := EigHermitian(a)
	if err != nil {
		t.Fatal(err)
	}
	for i := range d.Vectors {
		for j := range d.Vectors {
			dot := Dot(d.Vectors[i], d.Vectors[j])
			want := complex128(0)
			if i == j {
				want = 1
			}
			if cmplx.Abs(dot-want) > 1e-9 {
				t.Fatalf("⟨v%d,v%d⟩ = %v, want %v", i, j, dot, want)
			}
		}
	}
}

func TestEigHermitianTraceAndNormInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randomHermitian(rng, 16)
	d, err := EigHermitian(a)
	if err != nil {
		t.Fatal(err)
	}
	var sum, sq float64
	for _, v := range d.Values {
		sum += v
		sq += v * v
	}
	if math.Abs(sum-real(a.Trace())) > 1e-8*math.Abs(real(a.Trace()))+1e-8 {
		t.Fatalf("Σλ = %v, trace = %v", sum, real(a.Trace()))
	}
	fn := a.FrobeniusNorm()
	if math.Abs(math.Sqrt(sq)-fn) > 1e-8*fn {
		t.Fatalf("√Σλ² = %v, ‖A‖F = %v", math.Sqrt(sq), fn)
	}
}

func TestEigHermitianGramPSD(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := randomHermitian(rng, 20)
	d, err := EigHermitian(a)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range d.Values {
		if v < -1e-9*a.FrobeniusNorm() {
			t.Fatalf("Gram matrix eigenvalue %d = %v < 0", i, v)
		}
		if i > 0 && d.Values[i] > d.Values[i-1]+1e-12 {
			t.Fatal("eigenvalues not sorted descending")
		}
	}
}

func TestEigHermitianLowRank(t *testing.T) {
	// Outer product of L=2 vectors in dimension 6: exactly 2 nonzero
	// eigenvalues — this is the structure of a noiseless smoothed CSI
	// covariance with two propagation paths.
	rng := rand.New(rand.NewSource(11))
	x := randomMatrix(rng, 6, 2)
	a := x.Gram()
	d, err := EigHermitian(a)
	if err != nil {
		t.Fatal(err)
	}
	for i := 2; i < 6; i++ {
		if math.Abs(d.Values[i]) > 1e-9*d.Values[0] {
			t.Fatalf("rank-2 matrix has eigenvalue %d = %v", i, d.Values[i])
		}
	}
}

func TestEigHermitianRejectsNonHermitian(t *testing.T) {
	a := FromRows([][]complex128{{1, 2}, {3, 4}})
	if _, err := EigHermitian(a); err != ErrNotHermitian {
		t.Fatalf("err = %v, want ErrNotHermitian", err)
	}
	if _, err := EigHermitian(New(2, 3)); err != ErrNotHermitian {
		t.Fatalf("non-square err = %v, want ErrNotHermitian", err)
	}
}

func TestEigHermitianZeroMatrix(t *testing.T) {
	d, err := EigHermitian(New(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range d.Values {
		if v != 0 {
			t.Fatalf("zero matrix has eigenvalue %v", v)
		}
	}
	if len(d.Vectors) != 4 || Norm2(d.Vectors[0]) == 0 {
		t.Fatal("zero matrix must still return an orthonormal basis")
	}
}

func TestNoiseSubspaceSelection(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	// Rank-3 signal in dimension 8 plus small noise floor.
	x := randomMatrix(rng, 8, 3)
	a := x.Gram()
	for i := 0; i < 8; i++ {
		a.Set(i, i, a.At(i, i)+complex(1e-6, 0))
	}
	d, err := EigHermitian(a)
	if err != nil {
		t.Fatal(err)
	}
	en := d.NoiseSubspace(1e-3, 7)
	if en == nil {
		t.Fatal("expected a noise subspace")
	}
	if en.Cols() != 5 {
		t.Fatalf("noise subspace has %d columns, want 5", en.Cols())
	}
	if dim := d.SignalDimension(1e-3, 7); dim != 3 {
		t.Fatalf("SignalDimension = %d, want 3", dim)
	}
}

func TestNoiseSubspaceMaxSignalClamp(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := randomHermitian(rng, 6) // full-rank: all eigenvalues comparable
	d, err := EigHermitian(a)
	if err != nil {
		t.Fatal(err)
	}
	en := d.NoiseSubspace(1e-12, 4)
	if en == nil || en.Cols() != 2 {
		t.Fatalf("maxSignal clamp failed: %v", en)
	}
	if dim := d.SignalDimension(1e-12, 4); dim != 4 {
		t.Fatalf("SignalDimension clamp = %d, want 4", dim)
	}
}

func TestNoiseSubspaceAlwaysKeepsOneVector(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	a := randomHermitian(rng, 5)
	d, err := EigHermitian(a)
	if err != nil {
		t.Fatal(err)
	}
	// Absurdly permissive threshold: everything is "signal", but the
	// subspace must still keep one vector.
	en := d.NoiseSubspace(0, 100)
	if en == nil || en.Cols() != 1 {
		t.Fatalf("expected one retained noise vector, got %v", en)
	}
}

// Property-based tests on the eigendecomposition invariants.

func TestQuickEigenReconstruction(t *testing.T) {
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(15))}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(9)
		a := randomHermitian(rng, n)
		d, err := EigHermitian(a)
		if err != nil {
			return false
		}
		// Reconstruct A = Σ λᵢ vᵢ vᵢᴴ and compare.
		rec := New(n, n)
		for i := range d.Values {
			v := d.Vectors[i]
			for r := 0; r < n; r++ {
				for c := 0; c < n; c++ {
					rec.Set(r, c, rec.At(r, c)+complex(d.Values[i], 0)*v[r]*cmplx.Conj(v[c]))
				}
			}
		}
		return rec.Sub(a).FrobeniusNorm() <= 1e-8*(1+a.FrobeniusNorm())
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickGramHermitian(t *testing.T) {
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(16))}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomMatrix(rng, 1+rng.Intn(8), 1+rng.Intn(8))
		return a.Gram().IsHermitian(1e-12 * (1 + a.FrobeniusNorm()*a.FrobeniusNorm()))
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickKronDotFactorization(t *testing.T) {
	// ⟨a⊗b, c⊗d⟩ = ⟨a,c⟩·⟨b,d⟩ — the identity that lets MUSIC evaluate
	// steering projections efficiently.
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(17))}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		na, nb := 1+rng.Intn(5), 1+rng.Intn(5)
		a, c := randVec(rng, na), randVec(rng, na)
		b, d := randVec(rng, nb), randVec(rng, nb)
		lhs := Dot(Kron(a, b), Kron(c, d))
		rhs := Dot(a, c) * Dot(b, d)
		return cmplx.Abs(lhs-rhs) <= 1e-9*(1+cmplx.Abs(rhs))
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func randVec(rng *rand.Rand, n int) []complex128 {
	v := make([]complex128, n)
	for i := range v {
		v[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return v
}

func TestVectorHelpers(t *testing.T) {
	a := []complex128{1, 2i}
	b := []complex128{1i, 1}
	// ⟨a,b⟩ = 1·conj(1i) + 2i·conj(1) = −1i + 2i = 1i.
	if got := Dot(a, b); got != 1i {
		t.Fatalf("Dot = %v, want 1i", got)
	}
	if n := Norm2([]complex128{3, 4i}); math.Abs(n-5) > 1e-14 {
		t.Fatalf("Norm2 = %v, want 5", n)
	}
	v := []complex128{3, 4i}
	Normalize(v)
	if math.Abs(Norm2(v)-1) > 1e-14 {
		t.Fatalf("Normalize gave norm %v", Norm2(v))
	}
	zero := []complex128{0, 0}
	Normalize(zero)
	if zero[0] != 0 || zero[1] != 0 {
		t.Fatal("Normalize of zero vector changed it")
	}
	y := []complex128{1, 1}
	AXPY(2, []complex128{1, 2}, y)
	if y[0] != 3 || y[1] != 5 {
		t.Fatalf("AXPY = %v", y)
	}
	if s := ScaleVec(2i, []complex128{1, 1i}); s[0] != 2i || s[1] != -2 {
		t.Fatalf("ScaleVec = %v", s)
	}
	k := Kron([]complex128{1, 2}, []complex128{10, 20})
	want := []complex128{10, 20, 20, 40}
	for i := range want {
		if k[i] != want[i] {
			t.Fatalf("Kron = %v", k)
		}
	}
}
