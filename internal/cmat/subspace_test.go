package cmat

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

// randomHermitian returns a random n×n Hermitian PSD matrix with the given
// eigenvalues (descending), built as V·diag(λ)·Vᴴ from a random unitary V.
func spectrumHermitian(t *testing.T, rng *rand.Rand, lambdas []float64) *Matrix {
	t.Helper()
	n := len(lambdas)
	// Random full-rank matrix → orthonormal columns via Gram–Schmidt.
	v := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v.Set(i, j, complex(rng.NormFloat64(), rng.NormFloat64()))
		}
	}
	for c := 0; c < n; c++ {
		for p := 0; p < c; p++ {
			var r complex128
			for row := 0; row < n; row++ {
				r += cmplx.Conj(v.At(row, p)) * v.At(row, c)
			}
			for row := 0; row < n; row++ {
				v.Set(row, c, v.At(row, c)-r*v.At(row, p))
			}
		}
		var norm float64
		for row := 0; row < n; row++ {
			norm += real(v.At(row, c))*real(v.At(row, c)) + imag(v.At(row, c))*imag(v.At(row, c))
		}
		inv := complex(1/math.Sqrt(norm), 0)
		for row := 0; row < n; row++ {
			v.Set(row, c, v.At(row, c)*inv)
		}
	}
	a := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var sum complex128
			for k := 0; k < n; k++ {
				sum += v.At(i, k) * complex(lambdas[k], 0) * cmplx.Conj(v.At(j, k))
			}
			a.Set(i, j, sum)
		}
	}
	return a
}

// gappedSpectrum mimics a MUSIC covariance: a few strong signal
// eigenvalues over a nearly degenerate noise cluster.
func gappedSpectrum(rng *rand.Rand, n, signal int) []float64 {
	out := make([]float64, n)
	for i := 0; i < signal; i++ {
		out[i] = 10 / float64(i+1)
	}
	for i := signal; i < n; i++ {
		// Cluster around 0.01·λ1 with a few-percent spread.
		out[i] = 0.1 * (1 + 0.05*rng.Float64())
	}
	// Keep descending order inside the cluster too.
	for i := signal + 1; i < n; i++ {
		if out[i] > out[i-1] {
			out[i], out[i-1] = out[i-1], out[i]
		}
	}
	return out
}

func TestTopEigenMatchesFullDecomposition(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n, k, thresh = 20, 5, 0.015
	for trial := 0; trial < 10; trial++ {
		lambdas := gappedSpectrum(rng, n, 3)
		a := spectrumHermitian(t, rng, lambdas)
		full, err := EigHermitian(a)
		if err != nil {
			t.Fatalf("full: %v", err)
		}
		var ws TopEigenWorkspace
		top, err := TopEigenInto(a, k, thresh, &ws)
		if err != nil {
			t.Fatalf("top: %v", err)
		}
		if len(top.Values) != k || len(top.Vectors) != k {
			t.Fatalf("got %d values, %d vectors, want %d", len(top.Values), len(top.Vectors), k)
		}
		lim := 1e-5 * full.Values[0]
		for i := 0; i < k; i++ {
			if i == 0 || top.Values[i] >= thresh*top.Values[0] {
				// Above the threshold the values must match tightly.
				if math.Abs(top.Values[i]-full.Values[i]) > lim {
					t.Errorf("trial %d value %d: top %.9g full %.9g", trial, i, top.Values[i], full.Values[i])
				}
				continue
			}
			// Below the threshold the contract is a representative value:
			// a Rayleigh quotient over the residual subspace, so it must
			// interlace — at most the true λᵢ, at least the smallest
			// eigenvalue.
			if top.Values[i] > full.Values[i]+lim || top.Values[i] < full.Values[n-1]-lim {
				t.Errorf("trial %d noise value %d: top %.9g outside [%.9g, %.9g]",
					trial, i, top.Values[i], full.Values[n-1], full.Values[i])
			}
		}
		// Above-threshold (signal) eigenvectors must match the full
		// decomposition up to phase: |⟨v_top, v_full⟩| ≈ 1. These
		// eigenvalues are well separated by construction.
		for i := 0; i < k && top.Values[i] >= thresh*top.Values[0]; i++ {
			dot := cmplx.Abs(Dot(top.Vectors[i], full.Vectors[i]))
			if math.Abs(dot-1) > 1e-4 {
				t.Errorf("trial %d vector %d: |<top,full>| = %.9f, want 1", trial, i, dot)
			}
		}
	}
}

func TestTopEigenResiduals(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n, k, thresh = 30, 6, 0.015
	lambdas := gappedSpectrum(rng, n, 4)
	a := spectrumHermitian(t, rng, lambdas)
	var ws TopEigenWorkspace
	d, err := TopEigenInto(a, k, thresh, &ws)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < k; i++ {
		if d.Values[i] < thresh*d.Values[0] && i > 0 {
			break // noise pairs carry no residual guarantee
		}
		var res float64
		for r := 0; r < n; r++ {
			var av complex128
			for c := 0; c < n; c++ {
				av += a.At(r, c) * d.Vectors[i][c]
			}
			diff := av - complex(d.Values[i], 0)*d.Vectors[i][r]
			res += real(diff)*real(diff) + imag(diff)*imag(diff)
		}
		if math.Sqrt(res) > 1e-5*d.Values[0] {
			t.Errorf("pair %d residual %.3g too large", i, math.Sqrt(res))
		}
	}
}

func TestTopEigenRankDeficient(t *testing.T) {
	// Rank-2 matrix, block width 4: the iteration must repair the
	// deficient columns and still return finite, orthonormal vectors.
	rng := rand.New(rand.NewSource(3))
	const n, k = 12, 4
	lambdas := make([]float64, n)
	lambdas[0], lambdas[1] = 5, 2
	a := spectrumHermitian(t, rng, lambdas)
	var ws TopEigenWorkspace
	d, err := TopEigenInto(a, k, 0.015, &ws)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Values[0]-5) > 1e-6 || math.Abs(d.Values[1]-2) > 1e-6 {
		t.Fatalf("top values %v, want [5 2 ...]", d.Values)
	}
	for i := 2; i < k; i++ {
		if math.Abs(d.Values[i]) > 1e-6 {
			t.Errorf("null-space value %d = %.3g, want ~0", i, d.Values[i])
		}
	}
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			dot := cmplx.Abs(Dot(d.Vectors[i], d.Vectors[j]))
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(dot-want) > 1e-6 {
				t.Errorf("|<v%d,v%d>| = %.9f, want %v", i, j, dot, want)
			}
		}
	}
}

func TestTopEigenZeroMatrixAndFullWidth(t *testing.T) {
	var ws TopEigenWorkspace
	d, err := TopEigenInto(New(6, 6), 3, 0.015, &ws)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range d.Values {
		if v != 0 {
			t.Fatalf("zero matrix spectrum %v", d.Values)
		}
	}

	// k ≥ n delegates to the full decomposition.
	rng := rand.New(rand.NewSource(5))
	a := spectrumHermitian(t, rng, []float64{4, 3, 2, 1})
	full, err := EigHermitian(a)
	if err != nil {
		t.Fatal(err)
	}
	d, err = TopEigenInto(a, 4, 0.015, &ws)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Values) != 4 {
		t.Fatalf("full-width call returned %d values", len(d.Values))
	}
	for i := range d.Values {
		if math.Abs(d.Values[i]-full.Values[i]) > 1e-8*full.Values[0] {
			t.Errorf("value %d: %.9g vs %.9g", i, d.Values[i], full.Values[i])
		}
	}
}

func TestTopEigenRejectsNonHermitian(t *testing.T) {
	a := New(4, 4)
	a.Set(0, 1, 1)
	a.Set(1, 0, 2) // not the conjugate
	var ws TopEigenWorkspace
	if _, err := TopEigenInto(a, 2, 0.015, &ws); err == nil {
		t.Fatal("expected ErrNotHermitian")
	}
}

func TestTopEigenDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	lambdas := gappedSpectrum(rng, 30, 3)
	a := spectrumHermitian(t, rng, lambdas)
	b := spectrumHermitian(t, rng, gappedSpectrum(rng, 30, 5))

	run := func() ([]float64, []complex128) {
		var ws TopEigenWorkspace
		// Interleave an unrelated decomposition to prove no cross-call
		// state leaks into the result for a.
		if _, err := TopEigenInto(b, 6, 0.015, &ws); err != nil {
			t.Fatal(err)
		}
		d, err := TopEigenInto(a, 6, 0.015, &ws)
		if err != nil {
			t.Fatal(err)
		}
		vals := append([]float64(nil), d.Values...)
		vec := append([]complex128(nil), d.Vectors[0]...)
		return vals, vec
	}
	v1, vec1 := run()
	v2, vec2 := run()
	for i := range v1 {
		if v1[i] != v2[i] { //lint:allow floateq determinism means bitwise identity
			t.Fatalf("value %d differs across identical runs: %v vs %v", i, v1[i], v2[i])
		}
	}
	for i := range vec1 {
		if vec1[i] != vec2[i] { //lint:allow floateq determinism means bitwise identity
			t.Fatalf("vector element %d differs across identical runs", i)
		}
	}
}

func TestTopEigenSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := spectrumHermitian(t, rng, gappedSpectrum(rng, 30, 3))
	var ws TopEigenWorkspace
	if _, err := TopEigenInto(a, 6, 0.015, &ws); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := TopEigenInto(a, 6, 0.015, &ws); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("steady-state TopEigenInto allocates %.1f times per call, want 0", allocs)
	}
}

func TestEigHermitianIntoWarmMatchesCold(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	base := spectrumHermitian(t, rng, gappedSpectrum(rng, 12, 3))
	var warm EigenWorkspace
	if _, err := EigHermitianInto(base, &warm); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 5; trial++ {
		// Perturb: warm basis is stale but the result must still be exact.
		next := base.Clone()
		for i := 0; i < next.Rows(); i++ {
			for j := i; j < next.Cols(); j++ {
				d := complex(0.01*rng.NormFloat64(), 0.01*rng.NormFloat64())
				if i == j {
					d = complex(real(d), 0)
				}
				next.Set(i, j, next.At(i, j)+d)
				if i != j {
					next.Set(j, i, cmplx.Conj(next.At(i, j)))
				}
			}
		}
		wd, err := EigHermitianInto(next, &warm)
		if err != nil {
			t.Fatal(err)
		}
		cd, err := EigHermitian(next)
		if err != nil {
			t.Fatal(err)
		}
		for i := range cd.Values {
			if math.Abs(wd.Values[i]-cd.Values[i]) > 1e-8*cd.Values[0] {
				t.Errorf("trial %d value %d: warm %.12g cold %.12g", trial, i, wd.Values[i], cd.Values[i])
			}
		}
		base = next
	}
}

func TestEigHermitianIntoSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	a := spectrumHermitian(t, rng, gappedSpectrum(rng, 12, 3))
	var ws EigenWorkspace
	if _, err := EigHermitianInto(a, &ws); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := EigHermitianInto(a, &ws); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("steady-state EigHermitianInto allocates %.1f times per call, want 0", allocs)
	}
}
