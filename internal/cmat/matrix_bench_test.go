package cmat

import "testing"

// These benchmarks guard the At/Set fast path. The bounds check must stay
// a constant-string panic so that check (and therefore At/Set) inlines;
// reintroducing a fmt.Sprintf there shows up here as a call per element.

var sinkC complex128

func BenchmarkAt(b *testing.B) {
	m := New(30, 30)
	for i := range m.data {
		m.data[i] = complex(float64(i), -float64(i))
	}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		var s complex128
		for i := 0; i < 30; i++ {
			for j := 0; j < 30; j++ {
				s += m.At(i, j)
			}
		}
		sinkC = s
	}
}

func BenchmarkSet(b *testing.B) {
	m := New(30, 30)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		for i := 0; i < 30; i++ {
			for j := 0; j < 30; j++ {
				m.Set(i, j, complex(float64(i), float64(j)))
			}
		}
	}
	sinkC = m.At(0, 0)
}
