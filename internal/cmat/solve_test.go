package cmat

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveKnownSystem(t *testing.T) {
	a := FromRows([][]complex128{
		{2, 1},
		{1, 3},
	})
	b := FromRows([][]complex128{{5}, {10}})
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// 2x+y=5, x+3y=10 → x=1, y=3.
	if cmplx.Abs(x.At(0, 0)-1) > 1e-12 || cmplx.Abs(x.At(1, 0)-3) > 1e-12 {
		t.Fatalf("x = %v", x)
	}
}

func TestSolveRandomResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	for _, n := range []int{1, 2, 3, 5, 10} {
		a := randomMatrix(rng, n, n)
		b := randomMatrix(rng, n, 3)
		x, err := Solve(a, b)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		res := a.Mul(x).Sub(b).FrobeniusNorm()
		if res > 1e-9*(1+b.FrobeniusNorm()) {
			t.Fatalf("n=%d residual %g", n, res)
		}
	}
}

func TestSolveSingular(t *testing.T) {
	a := FromRows([][]complex128{{1, 2}, {2, 4}})
	if _, err := Solve(a, Identity(2)); err == nil {
		t.Fatal("singular matrix solved")
	}
	if _, err := Factorize(New(2, 3)); err == nil {
		t.Fatal("non-square factorized")
	}
}

func TestInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(132))
	a := randomMatrix(rng, 6, 6)
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	prod := a.Mul(inv)
	if prod.Sub(Identity(6)).FrobeniusNorm() > 1e-9 {
		t.Fatalf("A·A⁻¹ ≠ I (err %g)", prod.Sub(Identity(6)).FrobeniusNorm())
	}
}

func TestLeastSquaresRecovers(t *testing.T) {
	rng := rand.New(rand.NewSource(133))
	a := randomMatrix(rng, 10, 3)
	want := randomMatrix(rng, 3, 2)
	b := a.Mul(want)
	got, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Sub(want).FrobeniusNorm() > 1e-9 {
		t.Fatalf("LS error %g", got.Sub(want).FrobeniusNorm())
	}
	if _, err := LeastSquares(New(2, 5), New(2, 1)); err == nil {
		t.Fatal("underdetermined accepted")
	}
}

func TestSolveVecWrongLength(t *testing.T) {
	f, err := Factorize(Identity(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.SolveVec(make([]complex128, 2)); err == nil {
		t.Fatal("wrong-length rhs accepted")
	}
}

func TestQuickSolveRoundTrip(t *testing.T) {
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(134))}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		a := randomMatrix(rng, n, n)
		xTrue := randVec(rng, n)
		b := a.MulVec(xTrue)
		lu, err := Factorize(a)
		if err != nil {
			return true // random singular matrices are astronomically rare but allowed
		}
		x, err := lu.SolveVec(b)
		if err != nil {
			return false
		}
		for i := range x {
			if cmplx.Abs(x[i]-xTrue[i]) > 1e-7*(1+cmplx.Abs(xTrue[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestEigGeneralDiagonal(t *testing.T) {
	a := FromRows([][]complex128{
		{2, 0, 0},
		{0, -1 + 1i, 0},
		{0, 0, 5i},
	})
	vals, _, err := EigGeneral(a, false)
	if err != nil {
		t.Fatal(err)
	}
	want := []complex128{2, -1 + 1i, 5i}
	for _, w := range want {
		found := false
		for _, v := range vals {
			if cmplx.Abs(v-w) < 1e-9 {
				found = true
			}
		}
		if !found {
			t.Fatalf("eigenvalue %v not found in %v", w, vals)
		}
	}
}

func TestEigGeneralKnownRotation(t *testing.T) {
	// Real rotation matrix: eigenvalues e^{±iθ}.
	th := 0.7
	a := FromRows([][]complex128{
		{complex(math.Cos(th), 0), complex(-math.Sin(th), 0)},
		{complex(math.Sin(th), 0), complex(math.Cos(th), 0)},
	})
	vals, _, err := EigGeneral(a, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vals {
		if math.Abs(cmplx.Abs(v)-1) > 1e-9 {
			t.Fatalf("|λ| = %v, want 1", cmplx.Abs(v))
		}
		if math.Abs(math.Abs(cmplx.Phase(v))-th) > 1e-9 {
			t.Fatalf("arg λ = %v, want ±%v", cmplx.Phase(v), th)
		}
	}
}

func TestEigGeneralRandomDiagonalizable(t *testing.T) {
	rng := rand.New(rand.NewSource(135))
	for _, n := range []int{2, 3, 5, 8} {
		// Build A = T·Λ·T⁻¹ with well-separated eigenvalues.
		lams := make([]complex128, n)
		for i := range lams {
			lams[i] = complex(float64(i+1), rng.NormFloat64())
		}
		tmat := randomMatrix(rng, n, n)
		tinv, err := Inverse(tmat)
		if err != nil {
			t.Fatal(err)
		}
		d := New(n, n)
		for i := 0; i < n; i++ {
			d.Set(i, i, lams[i])
		}
		a := tmat.Mul(d).Mul(tinv)

		vals, vecs, err := EigGeneral(a, true)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(vals) != n {
			t.Fatalf("n=%d: %d eigenvalues", n, len(vals))
		}
		// Every true eigenvalue recovered.
		for _, w := range lams {
			found := false
			for _, v := range vals {
				if cmplx.Abs(v-w) < 1e-6*(1+cmplx.Abs(w)) {
					found = true
				}
			}
			if !found {
				t.Fatalf("n=%d: eigenvalue %v missing from %v", n, w, vals)
			}
		}
		// Eigenvector residuals.
		for i, v := range vecs {
			av := a.MulVec(v)
			for k := range av {
				av[k] -= vals[i] * v[k]
			}
			if Norm2(av) > 1e-5*a.FrobeniusNorm() {
				t.Fatalf("n=%d: eigenpair %d residual %g", n, i, Norm2(av))
			}
		}
	}
}

func TestEigGeneralUnitModulusSpectrum(t *testing.T) {
	// The JADE use case: Ψ = T·diag(e^{jφ})·T⁻¹ with unit-modulus
	// eigenvalues (phase factors of propagation paths).
	rng := rand.New(rand.NewSource(136))
	n := 4
	d := New(n, n)
	phases := make([]float64, n)
	for i := 0; i < n; i++ {
		phases[i] = rng.Float64()*2*math.Pi - math.Pi
		d.Set(i, i, cmplx.Exp(complex(0, phases[i])))
	}
	tmat := randomMatrix(rng, n, n)
	tinv, err := Inverse(tmat)
	if err != nil {
		t.Fatal(err)
	}
	a := tmat.Mul(d).Mul(tinv)
	vals, _, err := EigGeneral(a, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vals {
		if math.Abs(cmplx.Abs(v)-1) > 1e-8 {
			t.Fatalf("|λ| = %v, want 1", cmplx.Abs(v))
		}
	}
}

func TestEigGeneralErrors(t *testing.T) {
	if _, _, err := EigGeneral(New(2, 3), false); err == nil {
		t.Fatal("non-square accepted")
	}
	bad := New(2, 2)
	bad.Set(0, 0, cmplx.NaN())
	if _, _, err := EigGeneral(bad, false); err == nil {
		t.Fatal("NaN accepted")
	}
}
