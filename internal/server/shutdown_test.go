package server

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"spotfi/internal/csi"
	"spotfi/internal/obs/trace"
)

// TestCollectorShutdownStopsIntake: after Shutdown, every Add is refused
// with ErrShutdown, pending state is discarded, and Shutdown is idempotent.
func TestCollectorShutdownStopsIntake(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c, err := NewCollector(CollectorConfig{BatchSize: 4, MinAPs: 2, MaxBuffered: 40},
		func(string, map[int][]*csi.Packet, *trace.Trace) {})
	if err != nil {
		t.Fatal(err)
	}
	// Buffer a partial burst that can never complete.
	for i := 0; i < 3; i++ {
		if err := c.Add(mkPacket(0, "t1", uint64(i), rng)); err != nil {
			t.Fatal(err)
		}
	}
	if n := c.Shutdown(); n != 3 {
		t.Fatalf("Shutdown discarded %d packets, want 3", n)
	}
	if err := c.Add(mkPacket(0, "t1", 9, rng)); !errors.Is(err, ErrShutdown) {
		t.Fatalf("Add after Shutdown = %v, want ErrShutdown", err)
	}
	if targets, packets := c.PendingStats(); targets != 0 || packets != 0 {
		t.Fatalf("pending after Shutdown = %d targets / %d packets, want empty", targets, packets)
	}
	if n := c.Shutdown(); n != 0 {
		t.Fatalf("second Shutdown discarded %d, want 0", n)
	}
}

// TestCollectorShutdownUnderConcurrentLoad races Add (many goroutines), the
// TTL sweeper, and Shutdown against each other: no handler may run after
// Shutdown returns, every Add must either succeed or fail ErrShutdown, and
// the pending map must end empty.
func TestCollectorShutdownUnderConcurrentLoad(t *testing.T) {
	var closed atomic.Bool
	var emits atomic.Int64
	c, err := NewCollector(CollectorConfig{
		BatchSize:   3,
		MinAPs:      2,
		MaxBuffered: 30,
		BurstTTL:    time.Millisecond,
	}, func(string, map[int][]*csi.Packet, *trace.Trace) {
		if closed.Load() {
			t.Error("burst handler invoked after Shutdown returned")
		}
		emits.Add(1)
	})
	if err != nil {
		t.Fatal(err)
	}
	stopSweeper := c.StartSweeper(200 * time.Microsecond)
	defer stopSweeper()

	const producers = 8
	var wg sync.WaitGroup
	start := make(chan struct{})
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(p)))
			macs := []string{"aa:aa", "bb:bb", "cc:cc"}
			<-start
			for i := 0; ; i++ {
				pkt := mkPacket(i%3, macs[(p+i)%len(macs)], uint64(i), rng)
				if err := c.Add(pkt); err != nil {
					if !errors.Is(err, ErrShutdown) {
						t.Errorf("Add failed mid-flood: %v", err)
					}
					return
				}
			}
		}(p)
	}
	close(start)
	// Let the flood, sweeper, and emit path genuinely overlap before the
	// shutdown races in: wait until at least one burst has been emitted.
	deadline := time.Now().Add(5 * time.Second)
	for emits.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no burst emitted within 5s of flooding")
		}
		time.Sleep(100 * time.Microsecond)
	}
	time.Sleep(2 * time.Millisecond)
	c.Shutdown()
	closed.Store(true)
	wg.Wait()

	if emits.Load() == 0 {
		t.Fatal("no bursts emitted before shutdown — the race never exercised the emit path")
	}
	if targets, packets := c.PendingStats(); targets != 0 || packets != 0 {
		t.Fatalf("pending after drain = %d targets / %d packets, want empty", targets, packets)
	}
	// Late sweeps against the reset map must be harmless.
	if n := c.Sweep(); n != 0 {
		t.Fatalf("post-shutdown sweep evicted %d packets from an empty map", n)
	}
}

// TestCollectorQuarantineExcludesAP: a quarantined AP neither counts toward
// burst readiness nor appears in emitted bursts, and rejoins once the
// predicate clears it again.
func TestCollectorQuarantineExcludesAP(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var mu sync.Mutex
	var got []map[int][]*csi.Packet
	c, err := NewCollector(CollectorConfig{BatchSize: 2, MinAPs: 2, MaxBuffered: 20},
		func(_ string, bursts map[int][]*csi.Packet, _ *trace.Trace) {
			mu.Lock()
			got = append(got, bursts)
			mu.Unlock()
		})
	if err != nil {
		t.Fatal(err)
	}
	var sick atomic.Bool
	sick.Store(true)
	c.SetQuarantine(func(ap int) bool { return ap != 1 || !sick.Load() })

	// All three APs fill a batch. With AP 1 quarantined, the burst emits
	// from APs 0 and 2 only.
	seq := uint64(0)
	for i := 0; i < 2; i++ {
		for ap := 0; ap < 3; ap++ {
			if err := c.Add(mkPacket(ap, "t1", seq, rng)); err != nil {
				t.Fatal(err)
			}
			seq++
		}
	}
	mu.Lock()
	if len(got) != 1 {
		mu.Unlock()
		t.Fatalf("emitted %d bursts, want 1", len(got))
	}
	if _, in := got[0][1]; in || len(got[0]) != 2 {
		mu.Unlock()
		t.Fatalf("burst APs = %v, want {0,2} without the quarantined AP", got[0])
	}
	mu.Unlock()

	// AP 1's packets stayed buffered; once the breaker clears, its full
	// batch counts toward readiness again — the next burst fires as soon
	// as one more AP fills, and AP 1 is in it.
	sick.Store(false)
	for i := 0; i < 2; i++ {
		if err := c.Add(mkPacket(0, "t1", seq, rng)); err != nil {
			t.Fatal(err)
		}
		seq++
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 2 {
		t.Fatalf("emitted %d bursts after recovery, want 2", len(got))
	}
	if _, in := got[1][1]; !in || len(got[1]) != 2 {
		t.Fatalf("recovered burst APs = %v, want {0,1} with the cleared AP back in", got[1])
	}
}

// TestCollectorQuarantinedPacketsExpire: packets buffered for a quarantined
// AP are reclaimed by the TTL sweep — quarantine must not turn into a
// memory leak.
func TestCollectorQuarantinedPacketsExpire(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	now := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	var mu sync.Mutex
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	c, err := NewCollector(CollectorConfig{
		BatchSize: 2, MinAPs: 2, MaxBuffered: 20,
		BurstTTL: 100 * time.Millisecond,
		Now:      clock,
	}, func(string, map[int][]*csi.Packet, *trace.Trace) {})
	if err != nil {
		t.Fatal(err)
	}
	c.SetQuarantine(func(ap int) bool { return false }) // everything sick
	for i := 0; i < 4; i++ {
		if err := c.Add(mkPacket(i%2, "t1", uint64(i), rng)); err != nil {
			t.Fatal(err)
		}
	}
	if _, packets := c.PendingStats(); packets != 4 {
		t.Fatalf("buffered %d packets, want 4 (accepted but excluded)", packets)
	}
	mu.Lock()
	now = now.Add(time.Second)
	mu.Unlock()
	if n := c.Sweep(); n != 4 {
		t.Fatalf("sweep evicted %d, want all 4 quarantined-AP packets", n)
	}
	if targets, packets := c.PendingStats(); targets != 0 || packets != 0 {
		t.Fatalf("pending after sweep = %d targets / %d packets, want empty", targets, packets)
	}
}
