package server

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"spotfi/internal/csi"
	"spotfi/internal/obs"
	"spotfi/internal/obs/trace"
)

// TestCollectorPrunesDrainedTargets is the regression test for the
// collector memory leak: once a target's bursts drain completely, its
// per-AP queues and per-target map must be deleted, not kept as empty
// husks.
func TestCollectorPrunesDrainedTargets(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c, err := NewCollector(CollectorConfig{BatchSize: 2, MinAPs: 2, MaxBuffered: 10},
		func(string, map[int][]*csi.Packet, *trace.Trace) {})
	if err != nil {
		t.Fatal(err)
	}
	for ap := 0; ap < 2; ap++ {
		for k := 0; k < 2; k++ {
			if err := c.Add(mkPacket(ap, "transient", uint64(k), rng)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if emitted, _ := c.Stats(); emitted != 1 {
		t.Fatalf("emitted = %d, want 1", emitted)
	}
	targets, packets := c.PendingStats()
	if targets != 0 || packets != 0 {
		t.Fatalf("after drain: %d pending targets, %d packets; want 0, 0", targets, packets)
	}

	// Partial leftovers must survive the prune: 3 packets on AP 0 leave
	// one buffered after the batch of 2 is cut.
	for k := 0; k < 3; k++ {
		if err := c.Add(mkPacket(0, "sticky", uint64(k), rng)); err != nil {
			t.Fatal(err)
		}
	}
	for k := 0; k < 2; k++ {
		if err := c.Add(mkPacket(1, "sticky", uint64(k), rng)); err != nil {
			t.Fatal(err)
		}
	}
	targets, packets = c.PendingStats()
	if targets != 1 || packets != 1 {
		t.Fatalf("after partial drain: %d targets, %d packets; want 1, 1", targets, packets)
	}
}

// TestCollectorPendingGauges checks the pending gauges track the buffer
// exactly — they are the alarm for the transient-MAC leak.
func TestCollectorPendingGauges(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	c, err := NewCollector(CollectorConfig{BatchSize: 2, MinAPs: 2, MaxBuffered: 10},
		func(string, map[int][]*csi.Packet, *trace.Trace) {})
	if err != nil {
		t.Fatal(err)
	}
	c.SetMetrics(m)

	if err := c.Add(mkPacket(0, "x", 0, rng)); err != nil {
		t.Fatal(err)
	}
	if m.PendingTargets.Value() != 1 || m.PendingPackets.Value() != 1 {
		t.Fatalf("gauges = %d targets / %d packets, want 1/1",
			m.PendingTargets.Value(), m.PendingPackets.Value())
	}
	for _, pkt := range []*csi.Packet{
		mkPacket(0, "x", 1, rng), mkPacket(1, "x", 0, rng), mkPacket(1, "x", 1, rng),
	} {
		if err := c.Add(pkt); err != nil {
			t.Fatal(err)
		}
	}
	if m.PendingTargets.Value() != 0 || m.PendingPackets.Value() != 0 {
		t.Fatalf("gauges after drain = %d targets / %d packets, want 0/0",
			m.PendingTargets.Value(), m.PendingPackets.Value())
	}
	if m.BurstsEmitted.Value() != 1 {
		t.Fatalf("bursts emitted = %d, want 1", m.BurstsEmitted.Value())
	}
}

// TestCollectorSoakTransientMACs streams complete bursts from 10k distinct
// transient MACs — the workload that previously leaked one per-target map
// per MAC — and asserts the buffer drains to zero and the heap stays flat.
func TestCollectorSoakTransientMACs(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	const macs = 10000
	rng := rand.New(rand.NewSource(9))
	var bursts int
	c, err := NewCollector(CollectorConfig{BatchSize: 2, MinAPs: 2, MaxBuffered: 10},
		func(string, map[int][]*csi.Packet, *trace.Trace) { bursts++ })
	if err != nil {
		t.Fatal(err)
	}

	stream := func(n, seqBase int) {
		for i := 0; i < n; i++ {
			mac := fmt.Sprintf("02:%02x:%02x", (seqBase+i)>>8, (seqBase+i)&0xff)
			for k := 0; k < 2; k++ {
				for ap := 0; ap < 2; ap++ {
					if err := c.Add(mkPacket(ap, mac, uint64(k), rng)); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
	}

	heap := func() uint64 {
		runtime.GC()
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return ms.HeapAlloc
	}

	stream(500, 0) // warm up allocator and map before the baseline
	before := heap()
	stream(macs, 500)
	after := heap()

	if bursts != 500+macs {
		t.Fatalf("assembled %d bursts, want %d", bursts, 500+macs)
	}
	targets, packets := c.PendingStats()
	if targets != 0 || packets != 0 {
		t.Fatalf("after soak: %d pending targets, %d packets; want 0, 0", targets, packets)
	}
	// Leaked per-target maps cost a few hundred bytes each; 10k of them
	// are megabytes. A drained collector should hold essentially nothing.
	const slack = 2 << 20
	if after > before+slack {
		t.Fatalf("heap grew from %d to %d bytes across %d transient MACs (> %d slack): collector leaks",
			before, after, macs, slack)
	}
}
