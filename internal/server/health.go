package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"sort"
	"sync"
	"time"
)

// APTracker records when each AP last delivered an accepted CSI packet —
// the signal behind the readiness probe: a server whose APs have all gone
// quiet is alive but cannot produce fixes.
type APTracker struct {
	mu   sync.Mutex
	last map[int]time.Time
	now  func() time.Time // injectable for tests
}

// NewAPTracker returns an empty tracker.
func NewAPTracker() *APTracker {
	return &APTracker{last: make(map[int]time.Time), now: time.Now}
}

// Mark records that ap just delivered an accepted packet. Safe on a nil
// receiver.
func (t *APTracker) Mark(ap int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.last[ap] = t.now()
	t.mu.Unlock()
}

// LastSeen returns a copy of the per-AP last-packet times.
func (t *APTracker) LastSeen() map[int]time.Time {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[int]time.Time, len(t.last))
	for ap, ts := range t.last {
		out[ap] = ts
	}
	return out
}

// APStaleness is one AP's row in the readiness report.
type APStaleness struct {
	APID int `json:"ap"`
	// AgeSeconds is how long ago the AP's last packet was accepted.
	AgeSeconds float64 `json:"age_seconds"`
	// Stale reports whether the age exceeded the staleness bound.
	Stale bool `json:"stale"`
}

// ReadinessReport is the JSON body served by the readiness handler.
type ReadinessReport struct {
	Ready bool `json:"ready"`
	// StaleAfterSeconds is the staleness bound (0 = disabled).
	StaleAfterSeconds float64       `json:"stale_after_seconds"`
	APs               []APStaleness `json:"aps"`
	// Degraded lists the reasons auxiliary checks reported (e.g. the
	// admission layer shedding above its floor). Any entry forces
	// Ready=false.
	Degraded []string `json:"degraded,omitempty"`
}

// ReadyCheck is an auxiliary readiness predicate evaluated per probe: it
// returns ok=false with a human-readable reason when the server should
// report itself degraded (503) even though APs are streaming — e.g. when
// admission control is hard-shedding most bursts, a fleet should route
// fixes elsewhere. Checks must be safe for concurrent use.
type ReadyCheck func() (reason string, ok bool)

// report builds the readiness view at time now. Ready means at least one
// AP delivered a packet within staleAfter: a server that never heard an AP,
// or whose APs have all gone silent, is alive (liveness) but cannot produce
// fixes (readiness). staleAfter ≤ 0 disables the staleness check and only
// reports ages.
func (t *APTracker) report(staleAfter time.Duration) ReadinessReport {
	rep := ReadinessReport{StaleAfterSeconds: staleAfter.Seconds()}
	if staleAfter <= 0 {
		rep.Ready = true
	}
	if t == nil {
		return rep
	}
	t.mu.Lock()
	now := t.now()
	for ap, ts := range t.last {
		age := now.Sub(ts)
		stale := staleAfter > 0 && age > staleAfter
		rep.APs = append(rep.APs, APStaleness{
			APID:       ap,
			AgeSeconds: age.Seconds(),
			Stale:      stale,
		})
		if staleAfter > 0 && !stale {
			rep.Ready = true
		}
	}
	t.mu.Unlock()
	sort.Slice(rep.APs, func(i, j int) bool { return rep.APs[i].APID < rep.APs[j].APID })
	return rep
}

// ReadinessHandler serves the readiness probe — mount it at /readyz, next
// to the liveness /healthz. It answers 200 with a JSON per-AP staleness
// report while at least one AP delivered a packet within staleAfter, and
// 503 (with the same report) when none did — including at startup before
// any AP has connected. staleAfter ≤ 0 disables the staleness check.
// Additional checks (e.g. the admission shed-rate floor) are evaluated on
// every probe; any failing check marks the report degraded and not ready.
func (t *APTracker) ReadinessHandler(staleAfter time.Duration, checks ...ReadyCheck) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		rep := t.report(staleAfter)
		for _, check := range checks {
			if reason, ok := check(); !ok {
				rep.Degraded = append(rep.Degraded, reason)
				rep.Ready = false
			}
		}
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if !rep.Ready {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		//lint:allow errdrop a failed write to the client has no one left to tell
		_, _ = w.Write(buf.Bytes())
	})
}
