package server

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"spotfi/internal/apnode"
	"spotfi/internal/csi"
	"spotfi/internal/geom"
	"spotfi/internal/obs/trace"
	"spotfi/internal/rf"
	"spotfi/internal/sim"
)

// TestServerSoakManyTargets drives the server with 4 APs × 6 targets
// streaming concurrently over real TCP and verifies every target's bursts
// are assembled, demultiplexed correctly, and nothing is lost or
// cross-contaminated.
func TestServerSoakManyTargets(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	const (
		nAPs        = 4
		nTargets    = 6
		perStream   = 6
		batchSize   = 3
		minAPs      = 3
		wantPerTgt  = perStream / batchSize // bursts each target should yield
		totalBursts = nTargets * wantPerTgt
	)
	band := rf.DefaultBand()
	array := rf.DefaultArray(band)
	env := &sim.Environment{}

	var got sync.Map // mac -> *int32 (burst count)
	var bursts int32
	collector, err := NewCollector(CollectorConfig{
		BatchSize: batchSize, MinAPs: minAPs, MaxBuffered: 100,
	}, func(mac string, b map[int][]*csi.Packet, tr *trace.Trace) {
		for ap, pkts := range b {
			for _, p := range pkts {
				if p.TargetMAC != mac {
					t.Errorf("burst for %s contains packet from %s", mac, p.TargetMAC)
				}
				if p.APID != ap {
					t.Errorf("AP %d burst contains packet from AP %d", ap, p.APID)
				}
			}
		}
		cnt, _ := got.LoadOrStore(mac, new(int32))
		atomic.AddInt32(cnt.(*int32), 1)
		atomic.AddInt32(&bursts, 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(collector, testLogger(t))
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// One connection per (AP, target) stream: 24 concurrent agents.
	var wg sync.WaitGroup
	for ap := 0; ap < nAPs; ap++ {
		for tgt := 0; tgt < nTargets; tgt++ {
			rng := rand.New(rand.NewSource(int64(1000*ap + tgt)))
			link := sim.NewLink(env,
				sim.AP{ID: ap, Pos: geom.Point{X: float64(ap) * 4, Y: 0}},
				geom.Point{X: 2 + float64(tgt), Y: 3}, sim.DefaultLinkConfig(), rng)
			syn, err := sim.NewSynthesizer(link, band, array, sim.DefaultImpairments(), rng)
			if err != nil {
				t.Fatal(err)
			}
			agent := &apnode.Agent{
				APID:       ap,
				ServerAddr: addr.String(),
				Source: &apnode.SynthSource{
					Syn:       syn,
					TargetMAC: fmt.Sprintf("02:%02x", tgt),
					Limit:     perStream,
				},
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := agent.Run(ctx); err != nil {
					t.Errorf("agent: %v", err)
				}
			}()
		}
	}
	wg.Wait()

	// Every expected burst must eventually arrive.
	deadline := time.Now().Add(5 * time.Second)
	for atomic.LoadInt32(&bursts) < totalBursts && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if got32 := atomic.LoadInt32(&bursts); got32 != totalBursts {
		t.Fatalf("assembled %d bursts, want %d", got32, totalBursts)
	}
	for tgt := 0; tgt < nTargets; tgt++ {
		mac := fmt.Sprintf("02:%02x", tgt)
		cnt, ok := got.Load(mac)
		if !ok {
			t.Fatalf("target %s produced no bursts", mac)
		}
		if n := atomic.LoadInt32(cnt.(*int32)); n != wantPerTgt {
			t.Fatalf("target %s produced %d bursts, want %d", mac, n, wantPerTgt)
		}
	}
	if _, dropped := collector.Stats(); dropped != 0 {
		t.Fatalf("collector dropped %d packets", dropped)
	}
}
