package server

import (
	"context"
	"math"
	"math/rand"
	"net"
	"testing"
	"time"

	"spotfi/internal/csi"
	"spotfi/internal/obs/trace"
	"spotfi/internal/wire"
)

func startTestServer(t *testing.T, onBurst BurstHandler) (*Server, net.Addr, *Collector) {
	t.Helper()
	if onBurst == nil {
		onBurst = func(string, map[int][]*csi.Packet, *trace.Trace) {}
	}
	collector, err := NewCollector(CollectorConfig{BatchSize: 2, MinAPs: 2, MaxBuffered: 20}, onBurst)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(collector, testLogger(t))
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, addr, collector
}

func dialAndHello(t *testing.T, addr net.Addr, apID int32) net.Conn {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr.String(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteFrame(conn, wire.EncodeHello(apID)); err != nil {
		t.Fatal(err)
	}
	return conn
}

func TestServerDropsUnknownFrameType(t *testing.T) {
	_, addr, collector := startTestServer(t, nil)
	conn := dialAndHello(t, addr, 1)
	defer conn.Close()
	if err := wire.WriteFrame(conn, wire.Frame{Type: 200, Payload: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	// The server must drop the connection.
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("connection still open after unknown frame")
	}
	if e, _ := collector.Stats(); e != 0 {
		t.Fatal("unknown frame produced a burst")
	}
}

func TestServerDropsMismatchedAPID(t *testing.T) {
	rng := rand.New(rand.NewSource(300))
	_, addr, collector := startTestServer(t, func(string, map[int][]*csi.Packet, *trace.Trace) {
		t.Error("spoofed packet produced a burst")
	})
	conn := dialAndHello(t, addr, 1)
	defer conn.Close()
	// Reports claiming a different APID than the handshake are dropped
	// (not fatal): send enough to have emitted a burst if accepted.
	for i := 0; i < 4; i++ {
		p := mkPacket(5 /* ≠ hello id */, "t", uint64(i), rng)
		f, err := wire.EncodeCSIReport(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := wire.WriteFrame(conn, f); err != nil {
			t.Fatal(err)
		}
	}
	if err := wire.WriteFrame(conn, wire.Frame{Type: wire.TypeBye}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	if _, pending := collector.Stats(); pending != 0 {
		t.Fatal("spoofed packets were buffered")
	}
}

func TestServerRejectsInvalidCSIPacket(t *testing.T) {
	rng := rand.New(rand.NewSource(301))
	_, addr, collector := startTestServer(t, nil)
	conn := dialAndHello(t, addr, 1)
	defer conn.Close()
	p := mkPacket(1, "t", 0, rng)
	p.RSSIdBm = math.NaN()
	// EncodeCSIReport validates, so forge the frame by patching a good one.
	good := mkPacket(1, "t", 0, rng)
	f, err := wire.EncodeCSIReport(good)
	if err != nil {
		t.Fatal(err)
	}
	// RSSI lives at payload offset 20 (after APID 4, Seq 8, Timestamp 8).
	for i := 0; i < 8; i++ {
		f.Payload[20+i] = 0xff // NaN bit pattern
	}
	if err := wire.WriteFrame(conn, f); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	if e, _ := collector.Stats(); e != 0 {
		t.Fatal("invalid packet emitted a burst")
	}
}

func TestServerShutdownViaContext(t *testing.T) {
	srv, addr, _ := startTestServer(t, nil)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Shutdown(ctx) }()
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("Shutdown did not return after cancel")
	}
	// Server is closed: new connections must fail (immediately or on
	// first read).
	conn, err := net.DialTimeout("tcp", addr.String(), 500*time.Millisecond)
	if err == nil {
		conn.SetReadDeadline(time.Now().Add(time.Second))
		buf := make([]byte, 1)
		if _, rerr := conn.Read(buf); rerr == nil {
			t.Fatal("server accepted traffic after shutdown")
		}
		conn.Close()
	}
}

func TestCollectorPendingTargets(t *testing.T) {
	rng := rand.New(rand.NewSource(302))
	c, err := NewCollector(DefaultCollectorConfig(), func(string, map[int][]*csi.Packet, *trace.Trace) {})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.PendingTargets(); len(got) != 0 {
		t.Fatalf("fresh collector has pending %v", got)
	}
	if err := c.Add(mkPacket(0, "alpha", 0, rng)); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(mkPacket(0, "beta", 0, rng)); err != nil {
		t.Fatal(err)
	}
	got := c.PendingTargets()
	if len(got) != 2 {
		t.Fatalf("pending = %v", got)
	}
}

func TestNewServerNilCollector(t *testing.T) {
	if _, err := New(nil, nil); err == nil {
		t.Fatal("nil collector accepted")
	}
}
