package server

import "spotfi/internal/obs"

// Metrics instruments the collector and the TCP ingest path. All fields
// are optional: nil metrics record nothing, so tests and tools that do not
// scrape can run with a zero Metrics (or none at all).
type Metrics struct {
	// ConnectionsOpen tracks live AP connections; ConnectsTotal counts
	// every accepted connection.
	ConnectionsOpen *obs.Gauge
	ConnectsTotal   *obs.Counter
	// FramesTotal counts wire frames read from APs after the handshake.
	FramesTotal *obs.Counter
	// DecodeErrors counts handshake failures, corrupt reports, and
	// unknown frame types — each one terminates its connection.
	DecodeErrors *obs.Counter
	// PacketsRejected counts structurally valid frames whose packet the
	// collector refused (failed csi validation or APID spoofing).
	PacketsRejected *obs.Counter
	// PacketsNonFinite counts the subset of rejects carrying NaN/Inf CSI
	// or RSSI — dropped at the door before reaching MUSIC.
	PacketsNonFinite *obs.Counter
	// IdleTimeouts counts connections reaped by the handshake or idle
	// read deadline: half-open peers, slow-loris APs, partitions.
	IdleTimeouts *obs.Counter
	// ConnResets counts connections torn down mid-frame (truncation or a
	// TCP reset), as distinct from DecodeErrors' structural garbage.
	ConnResets *obs.Counter
	// BurstsEmitted and PacketsDropped mirror Collector.Stats.
	BurstsEmitted  *obs.Counter
	PacketsDropped *obs.Counter
	// PacketsExpired counts buffered packets evicted by the collector's
	// TTL sweep — partial bursts whose target too few APs heard.
	PacketsExpired *obs.Counter
	// BurstPanics counts bursts quarantined because the burst handler
	// panicked on them.
	BurstPanics *obs.Counter
	// PendingTargets and PendingPackets gauge the collector's buffer: the
	// number of targets with queued packets and the total queued packets.
	// A monotonically growing PendingTargets is the signature of the
	// transient-MAC leak this gauge exists to catch.
	PendingTargets *obs.Gauge
	PendingPackets *obs.Gauge
}

// NewMetrics registers the server's metric families on r. Exported series:
//
//	spotfi_server_connections_open, spotfi_server_connects_total
//	spotfi_server_frames_total, spotfi_server_decode_errors_total
//	spotfi_server_packets_rejected_total, spotfi_server_packets_nonfinite_total
//	spotfi_server_idle_timeouts_total, spotfi_server_conn_resets_total
//	spotfi_server_bursts_emitted_total, spotfi_server_packets_dropped_total
//	spotfi_server_packets_expired_total, spotfi_server_burst_panics_total
//	spotfi_server_pending_targets, spotfi_server_pending_packets
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		ConnectionsOpen:  r.Gauge("spotfi_server_connections_open", "Live AP connections.", nil),
		ConnectsTotal:    r.Counter("spotfi_server_connects_total", "Accepted AP connections.", nil),
		FramesTotal:      r.Counter("spotfi_server_frames_total", "Wire frames read from APs.", nil),
		DecodeErrors:     r.Counter("spotfi_server_decode_errors_total", "Handshake/decode failures that closed a connection.", nil),
		PacketsRejected:  r.Counter("spotfi_server_packets_rejected_total", "Decoded packets refused by validation or APID check.", nil),
		PacketsNonFinite: r.Counter("spotfi_server_packets_nonfinite_total", "Packets dropped for NaN/Inf CSI or RSSI.", nil),
		IdleTimeouts:     r.Counter("spotfi_server_idle_timeouts_total", "Connections reaped by handshake/idle read deadlines.", nil),
		ConnResets:       r.Counter("spotfi_server_conn_resets_total", "Connections torn down mid-frame by the peer.", nil),
		BurstsEmitted:    r.Counter("spotfi_server_bursts_emitted_total", "Complete bursts handed to the localization pipeline.", nil),
		PacketsDropped:   r.Counter("spotfi_server_packets_dropped_total", "Buffered packets evicted by the MaxBuffered cap.", nil),
		PacketsExpired:   r.Counter("spotfi_server_packets_expired_total", "Stale buffered packets evicted by the TTL sweep.", nil),
		BurstPanics:      r.Counter("spotfi_server_burst_panics_total", "Bursts quarantined after a burst-handler panic.", nil),
		PendingTargets:   r.Gauge("spotfi_server_pending_targets", "Targets with buffered packets awaiting a burst.", nil),
		PendingPackets:   r.Gauge("spotfi_server_pending_packets", "Total buffered packets across all targets.", nil),
	}
}
