// Package server implements SpotFi's central server: it collects CSI
// reports streamed by the APs, groups them per target into bursts, and
// hands complete bursts to the localization pipeline (paper Fig. 1).
package server

import (
	"fmt"
	"sync"

	"spotfi/internal/csi"
)

// BurstHandler receives a complete burst: for each AP that heard the
// target, BatchSize consecutive packets. It runs on the goroutine that
// delivered the completing packet; heavy work should be dispatched by the
// handler itself.
type BurstHandler func(targetMAC string, bursts map[int][]*csi.Packet)

// CollectorConfig controls burst assembly.
type CollectorConfig struct {
	// BatchSize is how many packets per AP make a burst (the paper
	// localizes on groups of 10–40 packets).
	BatchSize int
	// MinAPs is how many APs must have a full batch before the burst is
	// emitted (≥2 for localization to be possible).
	MinAPs int
	// MaxBuffered caps per-(target, AP) buffering so a target that only a
	// single AP hears cannot grow memory without bound.
	MaxBuffered int
}

// DefaultCollectorConfig matches the paper's method: bursts of 10 packets,
// at least 3 APs.
func DefaultCollectorConfig() CollectorConfig {
	return CollectorConfig{BatchSize: 10, MinAPs: 3, MaxBuffered: 400}
}

// Validate checks the configuration.
func (c CollectorConfig) Validate() error {
	if c.BatchSize < 1 {
		return fmt.Errorf("server: BatchSize must be ≥ 1")
	}
	if c.MinAPs < 2 {
		return fmt.Errorf("server: MinAPs must be ≥ 2")
	}
	if c.MaxBuffered < c.BatchSize {
		return fmt.Errorf("server: MaxBuffered (%d) must be ≥ BatchSize (%d)", c.MaxBuffered, c.BatchSize)
	}
	return nil
}

// Collector groups incoming CSI packets into per-target bursts. It is safe
// for concurrent use.
type Collector struct {
	cfg     CollectorConfig
	handler BurstHandler
	metrics *Metrics

	mu       sync.Mutex
	pending  map[string]map[int][]*csi.Packet
	buffered int // total packets across pending, kept for O(1) stats
	dropped  uint64
	emitted  uint64
}

// NewCollector returns a Collector that calls handler for every complete
// burst.
func NewCollector(cfg CollectorConfig, handler BurstHandler) (*Collector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if handler == nil {
		return nil, fmt.Errorf("server: nil burst handler")
	}
	return &Collector{
		cfg:     cfg,
		handler: handler,
		metrics: &Metrics{},
		pending: make(map[string]map[int][]*csi.Packet),
	}, nil
}

// SetMetrics wires the collector's counters and gauges. Call before the
// first Add; m must not be nil (use a zero Metrics to disable).
func (c *Collector) SetMetrics(m *Metrics) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.metrics = m
}

// Add ingests one CSI packet. Invalid packets are rejected with an error;
// valid ones are buffered and may complete a burst, in which case the
// handler is invoked before Add returns.
func (c *Collector) Add(p *csi.Packet) error {
	if p == nil {
		return fmt.Errorf("server: nil packet")
	}
	if err := p.Validate(); err != nil {
		return err
	}

	var emit map[int][]*csi.Packet
	var mac string

	c.mu.Lock()
	byAP, ok := c.pending[p.TargetMAC]
	if !ok {
		byAP = make(map[int][]*csi.Packet)
		c.pending[p.TargetMAC] = byAP
	}
	q := byAP[p.APID]
	if len(q) >= c.cfg.MaxBuffered {
		// Drop the oldest to bound memory; newest data is most useful.
		copy(q, q[1:])
		q = q[:len(q)-1]
		c.dropped++
		c.buffered--
		c.metrics.PacketsDropped.Inc()
	}
	byAP[p.APID] = append(q, p)
	c.buffered++

	// Emit when enough APs have a full batch.
	ready := 0
	for _, pkts := range byAP {
		if len(pkts) >= c.cfg.BatchSize {
			ready++
		}
	}
	if ready >= c.cfg.MinAPs {
		emit = make(map[int][]*csi.Packet, ready)
		for ap, pkts := range byAP {
			if len(pkts) >= c.cfg.BatchSize {
				emit[ap] = pkts[:c.cfg.BatchSize:c.cfg.BatchSize]
				rest := pkts[c.cfg.BatchSize:]
				c.buffered -= c.cfg.BatchSize
				if len(rest) == 0 {
					// Prune drained queues instead of keeping empty
					// slices alive: without this every transient MAC
					// leaked its per-AP entries (and the map below its
					// per-target map) forever.
					delete(byAP, ap)
				} else {
					byAP[ap] = append([]*csi.Packet(nil), rest...)
				}
			}
		}
		if len(byAP) == 0 {
			delete(c.pending, p.TargetMAC)
		}
		mac = p.TargetMAC
		c.emitted++
		c.metrics.BurstsEmitted.Inc()
	}
	c.metrics.PendingTargets.Set(int64(len(c.pending)))
	c.metrics.PendingPackets.Set(int64(c.buffered))
	c.mu.Unlock()

	if emit != nil {
		c.handler(mac, emit)
	}
	return nil
}

// PendingStats returns how many targets currently have buffered packets
// and the total number of buffered packets — the quantities the pending
// gauges export, exposed directly for tests and monitoring.
func (c *Collector) PendingStats() (targets, packets int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending), c.buffered
}

// Stats returns how many bursts were emitted and packets dropped.
func (c *Collector) Stats() (emitted, dropped uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.emitted, c.dropped
}

// PendingTargets returns the MACs with buffered packets — for monitoring.
func (c *Collector) PendingTargets() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.pending))
	for mac := range c.pending {
		out = append(out, mac)
	}
	return out
}
