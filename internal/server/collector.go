// Package server implements SpotFi's central server: it collects CSI
// reports streamed by the APs, groups them per target into bursts, and
// hands complete bursts to the localization pipeline (paper Fig. 1).
package server

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"spotfi/internal/csi"
	"spotfi/internal/obs/trace"
)

// ErrShutdown is returned by Add after Shutdown: the collector no longer
// assembles bursts.
var ErrShutdown = errors.New("server: collector shut down")

// BurstHandler receives a complete burst: for each AP that heard the
// target, BatchSize consecutive packets. It runs on the goroutine that
// delivered the completing packet; heavy work should be dispatched by the
// handler itself. tr is the burst's trace — nil unless a tracer is wired
// and the burst was sampled in. Whichever component completes the burst
// owns the tr.Finish call.
type BurstHandler func(targetMAC string, bursts map[int][]*csi.Packet, tr *trace.Trace)

// CollectorConfig controls burst assembly.
type CollectorConfig struct {
	// BatchSize is how many packets per AP make a burst (the paper
	// localizes on groups of 10–40 packets).
	BatchSize int
	// MinAPs is how many APs must have a full batch before the burst is
	// emitted (≥2 for localization to be possible).
	MinAPs int
	// MaxBuffered caps per-(target, AP) buffering so a target that only a
	// single AP hears cannot grow memory without bound.
	MaxBuffered int
	// BurstTTL bounds how long a buffered packet may wait for its burst
	// to complete. Packets older than the TTL are evicted by Sweep, so a
	// target heard by fewer than MinAPs APs neither pins memory
	// indefinitely nor gets its stale packets fused into a fresh burst
	// minutes later. Zero disables expiry.
	BurstTTL time.Duration
	// Now overrides the clock used to stamp and expire buffered packets
	// (tests). Nil means time.Now.
	Now func() time.Time
}

// DefaultCollectorConfig matches the paper's method: bursts of 10 packets,
// at least 3 APs.
func DefaultCollectorConfig() CollectorConfig {
	return CollectorConfig{BatchSize: 10, MinAPs: 3, MaxBuffered: 400}
}

// Validate checks the configuration.
func (c CollectorConfig) Validate() error {
	if c.BatchSize < 1 {
		return fmt.Errorf("server: BatchSize must be ≥ 1")
	}
	if c.MinAPs < 2 {
		return fmt.Errorf("server: MinAPs must be ≥ 2")
	}
	if c.MaxBuffered < c.BatchSize {
		return fmt.Errorf("server: MaxBuffered (%d) must be ≥ BatchSize (%d)", c.MaxBuffered, c.BatchSize)
	}
	if c.BurstTTL < 0 {
		return fmt.Errorf("server: BurstTTL must be ≥ 0")
	}
	return nil
}

// pendingPacket is one buffered packet with its arrival time, so the TTL
// sweep can evict stale partial bursts packet-by-packet.
type pendingPacket struct {
	p  *csi.Packet
	at time.Time
}

// QuarantinedBurst is a complete burst whose handler panicked. It is kept
// aside — never re-fused, never retried — so the poisoned input is
// available for debugging while the collector keeps serving.
type QuarantinedBurst struct {
	TargetMAC string
	Bursts    map[int][]*csi.Packet
	// Reason is the recovered panic value, stringified.
	Reason string
}

// maxQuarantined bounds the quarantine ring: a handler that panics on
// every burst must not grow memory without bound.
const maxQuarantined = 16

// Collector groups incoming CSI packets into per-target bursts. It is safe
// for concurrent use.
type Collector struct {
	cfg     CollectorConfig
	handler BurstHandler
	metrics *Metrics
	tracer  *trace.Tracer

	mu          sync.Mutex
	tap         func(*csi.Packet)        // flight-recorder capture hook; nil when disarmed
	panicHook   func(mac, reason string) // observes quarantined bursts; nil when unwired
	pending     map[string]map[int][]pendingPacket
	buffered    int // total packets across pending, kept for O(1) stats
	dropped     uint64
	emitted     uint64
	expired     uint64
	quarantined []QuarantinedBurst
	quarantine  func(ap int) bool // AP participates only when true; nil = all
	down        bool              // Shutdown called: Add rejects, no more emits

	// emitWG tracks in-flight burst handlers so Shutdown can guarantee no
	// handler runs after it returns.
	emitWG sync.WaitGroup
}

// NewCollector returns a Collector that calls handler for every complete
// burst.
func NewCollector(cfg CollectorConfig, handler BurstHandler) (*Collector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if handler == nil {
		return nil, fmt.Errorf("server: nil burst handler")
	}
	return &Collector{
		cfg:     cfg,
		handler: handler,
		metrics: &Metrics{},
		pending: make(map[string]map[int][]pendingPacket),
	}, nil
}

// now returns the collector's clock.
func (c *Collector) now() time.Time {
	if c.cfg.Now != nil {
		return c.cfg.Now()
	}
	return time.Now()
}

// SetMetrics wires the collector's counters and gauges. Call before the
// first Add; m must not be nil (use a zero Metrics to disable).
func (c *Collector) SetMetrics(m *Metrics) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.metrics = m
}

// SetTracer wires burst tracing: each emitted burst that the tracer
// samples in gets a trace whose root is backdated to the oldest packet in
// the burst, with an "assemble" span covering buffering time. Call before
// the first Add; nil disables tracing.
func (c *Collector) SetTracer(t *trace.Tracer) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tracer = t
}

// SetQuarantine installs the per-AP admission predicate (typically
// admit.BreakerSet.Allow): an AP for which it returns false still has its
// packets buffered — the connection stays healthy — but is excluded from
// burst readiness and emitted bursts, so a quarantined AP cannot poison a
// fix. Its buffered packets are reclaimed by the TTL sweep (or the
// per-queue cap). fn runs under the collector lock on the per-packet path
// and must be fast and must not call back into the Collector; nil allows
// every AP.
func (c *Collector) SetQuarantine(fn func(ap int) bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.quarantine = fn
}

// SetTap installs a per-packet capture hook (typically the flight
// recorder's TapPacket): it observes every packet accepted into the
// buffer, under the collector lock, in exactly burst-assembly order — so
// a recorder's frame stream and the bursts built from it agree. fn must
// be fast, must not block, and must not call back into the Collector;
// nil disables. Call before the first Add.
func (c *Collector) SetTap(fn func(*csi.Packet)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tap = fn
}

// SetPanicHook installs an observer for quarantined bursts (handler
// panics), called outside the collector lock after the burst is
// quarantined. nil disables. Call before the first Add.
func (c *Collector) SetPanicHook(fn func(mac, reason string)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.panicHook = fn
}

// allowedLocked reports whether ap may participate in bursts.
func (c *Collector) allowedLocked(ap int) bool {
	return c.quarantine == nil || c.quarantine(ap)
}

// Add ingests one CSI packet. Invalid packets are rejected with an error;
// valid ones are buffered and may complete a burst, in which case the
// handler is invoked before Add returns. After Shutdown it rejects every
// packet with ErrShutdown.
func (c *Collector) Add(p *csi.Packet) error {
	if p == nil {
		return fmt.Errorf("server: nil packet")
	}
	if err := p.Validate(); err != nil {
		return err
	}

	var emit map[int][]*csi.Packet
	var mac string
	var oldest time.Time

	c.mu.Lock()
	if c.down {
		c.mu.Unlock()
		return ErrShutdown
	}
	byAP, ok := c.pending[p.TargetMAC]
	if !ok {
		byAP = make(map[int][]pendingPacket)
		c.pending[p.TargetMAC] = byAP
	}
	q := byAP[p.APID]
	if len(q) >= c.cfg.MaxBuffered {
		// Drop the oldest to bound memory; newest data is most useful.
		copy(q, q[1:])
		q = q[:len(q)-1]
		c.dropped++
		c.buffered--
		c.metrics.PacketsDropped.Inc()
	}
	byAP[p.APID] = append(q, pendingPacket{p: p, at: c.now()})
	c.buffered++
	if c.tap != nil {
		c.tap(p)
	}

	// Emit when enough non-quarantined APs have a full batch: a breaker
	// that opens mid-buffer removes its AP from both the readiness count
	// and the emitted burst, so MinAPs keeps meaning "APs a fix can trust".
	ready := 0
	for ap, pkts := range byAP {
		if len(pkts) >= c.cfg.BatchSize && c.allowedLocked(ap) {
			ready++
		}
	}
	if ready >= c.cfg.MinAPs {
		emit = make(map[int][]*csi.Packet, ready)
		for ap, pkts := range byAP {
			if len(pkts) >= c.cfg.BatchSize && c.allowedLocked(ap) {
				// Queues are in arrival order, so pkts[0] is this AP's
				// oldest contribution — the burst's trace starts at the
				// overall oldest so the assemble span covers buffering.
				if oldest.IsZero() || pkts[0].at.Before(oldest) {
					oldest = pkts[0].at
				}
				burst := make([]*csi.Packet, c.cfg.BatchSize)
				for i := range burst {
					burst[i] = pkts[i].p
				}
				emit[ap] = burst
				rest := pkts[c.cfg.BatchSize:]
				c.buffered -= c.cfg.BatchSize
				if len(rest) == 0 {
					// Prune drained queues instead of keeping empty
					// slices alive: without this every transient MAC
					// leaked its per-AP entries (and the map below its
					// per-target map) forever.
					delete(byAP, ap)
				} else {
					byAP[ap] = append([]pendingPacket(nil), rest...)
				}
			}
		}
		if len(byAP) == 0 {
			delete(c.pending, p.TargetMAC)
		}
		mac = p.TargetMAC
		c.emitted++
		c.metrics.BurstsEmitted.Inc()
	}
	c.metrics.PendingTargets.Set(int64(len(c.pending)))
	c.metrics.PendingPackets.Set(int64(c.buffered))
	tracer := c.tracer
	if emit != nil {
		// Registered under the lock, before the shutdown flag can be
		// re-checked: Shutdown waits for this handler invocation, so no
		// burst is ever processed after Shutdown returns.
		c.emitWG.Add(1)
	}
	c.mu.Unlock()

	if emit != nil {
		defer c.emitWG.Done()
		tr := tracer.StartAt(trace.StageBurst, oldest)
		if tr != nil {
			total := 0
			for _, b := range emit {
				total += len(b)
			}
			asm := tr.Root().StartSpanAt(trace.StageAssemble, oldest)
			asm.SetStr("mac", mac)
			asm.SetInt("aps", int64(len(emit)))
			asm.SetInt("packets", int64(total))
			asm.End()
		}
		c.emit(mac, emit, tr)
	}
	return nil
}

// emit invokes the burst handler, containing any panic: the offending
// burst is quarantined and counted, and the delivering goroutine (an AP
// connection handler) keeps serving. One poisoned burst must not take
// down the server.
func (c *Collector) emit(mac string, bursts map[int][]*csi.Packet, tr *trace.Trace) {
	defer func() {
		if r := recover(); r != nil {
			c.metrics.BurstPanics.Inc()
			tr.Root().SetStr("panic", fmt.Sprint(r))
			tr.Finish()
			c.mu.Lock()
			c.quarantined = append(c.quarantined, QuarantinedBurst{
				TargetMAC: mac, Bursts: bursts, Reason: fmt.Sprint(r),
			})
			if len(c.quarantined) > maxQuarantined {
				c.quarantined = append(c.quarantined[:0:0], c.quarantined[len(c.quarantined)-maxQuarantined:]...)
			}
			hook := c.panicHook
			c.mu.Unlock()
			if hook != nil {
				hook(mac, fmt.Sprint(r))
			}
		}
	}()
	c.handler(mac, bursts, tr)
}

// Shutdown stops burst assembly: subsequent Adds fail with ErrShutdown,
// buffered partial bursts are discarded (they can never complete), and
// Shutdown blocks until every in-flight burst handler has returned — after
// it returns, no handler will run again. It returns how many buffered
// packets it discarded and is safe to call more than once.
func (c *Collector) Shutdown() int {
	c.mu.Lock()
	if c.down {
		c.mu.Unlock()
		c.emitWG.Wait()
		return 0
	}
	c.down = true
	discarded := c.buffered
	c.pending = make(map[string]map[int][]pendingPacket)
	c.buffered = 0
	c.metrics.PendingTargets.Set(0)
	c.metrics.PendingPackets.Set(0)
	c.mu.Unlock()
	c.emitWG.Wait()
	return discarded
}

// Sweep evicts buffered packets older than BurstTTL and returns how many
// it removed. It is a no-op when BurstTTL is zero. Callers run it
// periodically (StartSweeper) so partial bursts for targets too few APs
// heard are reclaimed instead of pinning memory until process exit.
func (c *Collector) Sweep() int {
	if c.cfg.BurstTTL <= 0 {
		return 0
	}
	cutoff := c.now().Add(-c.cfg.BurstTTL)
	evicted := 0
	c.mu.Lock()
	for mac, byAP := range c.pending {
		for ap, q := range byAP {
			// Arrival times are non-decreasing within a queue (stamped
			// under the collector lock), so stale packets form a prefix.
			i := 0
			for i < len(q) && !q[i].at.After(cutoff) {
				i++
			}
			if i == 0 {
				continue
			}
			evicted += i
			c.buffered -= i
			if i == len(q) {
				delete(byAP, ap)
			} else {
				// Reallocate so the evicted prefix's packets are freed
				// rather than kept alive by the shared backing array.
				byAP[ap] = append([]pendingPacket(nil), q[i:]...)
			}
		}
		if len(byAP) == 0 {
			delete(c.pending, mac)
		}
	}
	if evicted > 0 {
		c.expired += uint64(evicted)
		c.metrics.PacketsExpired.Add(uint64(evicted))
	}
	c.metrics.PendingTargets.Set(int64(len(c.pending)))
	c.metrics.PendingPackets.Set(int64(c.buffered))
	c.mu.Unlock()
	return evicted
}

// StartSweeper runs Sweep every interval on a background goroutine until
// the returned stop function is called. stop blocks until the goroutine
// exits and is safe to call more than once.
func (c *Collector) StartSweeper(interval time.Duration) (stop func()) {
	if interval <= 0 {
		panic("server: sweeper interval must be > 0")
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				c.Sweep()
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() { close(done) })
		wg.Wait()
	}
}

// Quarantined returns the bursts whose handler panicked (oldest first, at
// most maxQuarantined retained).
func (c *Collector) Quarantined() []QuarantinedBurst {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]QuarantinedBurst(nil), c.quarantined...)
}

// ExpiredPackets returns how many buffered packets the TTL sweep has
// evicted.
func (c *Collector) ExpiredPackets() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.expired
}

// PendingStats returns how many targets currently have buffered packets
// and the total number of buffered packets — the quantities the pending
// gauges export, exposed directly for tests and monitoring.
func (c *Collector) PendingStats() (targets, packets int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending), c.buffered
}

// Stats returns how many bursts were emitted and packets dropped.
func (c *Collector) Stats() (emitted, dropped uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.emitted, c.dropped
}

// PendingTargets returns the MACs with buffered packets — for monitoring.
func (c *Collector) PendingTargets() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.pending))
	for mac := range c.pending {
		out = append(out, mac)
	}
	return out
}
