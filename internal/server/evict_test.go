package server

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"spotfi/internal/csi"
	"spotfi/internal/obs"
	"spotfi/internal/obs/trace"
)

// fakeClock is a settable clock for deterministic TTL tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}

func ttlCollector(t *testing.T, clk *fakeClock, ttl time.Duration, h BurstHandler) *Collector {
	t.Helper()
	if h == nil {
		h = func(string, map[int][]*csi.Packet, *trace.Trace) {}
	}
	c, err := NewCollector(CollectorConfig{
		BatchSize: 3, MinAPs: 2, MaxBuffered: 10, BurstTTL: ttl, Now: clk.Now,
	}, h)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestSweepEvictsStalePartialBurst: a target heard by a single AP never
// completes a burst; its packets must be reclaimed once they outlive the
// TTL, with the gauges returning to zero.
func TestSweepEvictsStalePartialBurst(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	clk := &fakeClock{t: time.Unix(1000, 0)}
	c := ttlCollector(t, clk, time.Second, nil)

	for i := 0; i < 2; i++ {
		if err := c.Add(mkPacket(0, "orphan", uint64(i), rng)); err != nil {
			t.Fatal(err)
		}
	}
	if n := c.Sweep(); n != 0 {
		t.Fatalf("fresh packets evicted: %d", n)
	}
	clk.Advance(1500 * time.Millisecond)
	if n := c.Sweep(); n != 2 {
		t.Fatalf("evicted %d packets, want 2", n)
	}
	if targets, packets := c.PendingStats(); targets != 0 || packets != 0 {
		t.Fatalf("after sweep pending = (%d targets, %d packets), want (0, 0)", targets, packets)
	}
	if c.ExpiredPackets() != 2 {
		t.Fatalf("ExpiredPackets = %d, want 2", c.ExpiredPackets())
	}
	// Re-sweeping an empty collector must be a no-op.
	if n := c.Sweep(); n != 0 {
		t.Fatalf("second sweep evicted %d", n)
	}
}

// TestSweepTTLStraddle: packets on both sides of the TTL boundary — only
// the stale prefix is evicted, and the surviving packets still complete a
// burst (stale data is not fused into it).
func TestSweepTTLStraddle(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	clk := &fakeClock{t: time.Unix(1000, 0)}
	var bursts []map[int][]*csi.Packet
	c := ttlCollector(t, clk, time.Second, func(mac string, b map[int][]*csi.Packet, tr *trace.Trace) {
		bursts = append(bursts, b)
	})

	// Two stale packets from AP0, then the clock advances past the TTL
	// before the rest of the burst arrives.
	if err := c.Add(mkPacket(0, "t", 0, rng)); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(mkPacket(0, "t", 1, rng)); err != nil {
		t.Fatal(err)
	}
	clk.Advance(1100 * time.Millisecond)
	if err := c.Add(mkPacket(0, "t", 2, rng)); err != nil {
		t.Fatal(err)
	}
	if n := c.Sweep(); n != 2 {
		t.Fatalf("evicted %d packets, want the 2 stale ones", n)
	}
	if _, packets := c.PendingStats(); packets != 1 {
		t.Fatalf("pending packets = %d, want 1 fresh survivor", packets)
	}

	// Complete the burst with fresh packets only: seqs 2,3,4 from AP0 and
	// a full batch from AP1. The evicted seqs 0 and 1 must not appear.
	for _, seq := range []uint64{3, 4} {
		if err := c.Add(mkPacket(0, "t", seq, rng)); err != nil {
			t.Fatal(err)
		}
	}
	for _, seq := range []uint64{10, 11, 12} {
		if err := c.Add(mkPacket(1, "t", seq, rng)); err != nil {
			t.Fatal(err)
		}
	}
	if len(bursts) != 1 {
		t.Fatalf("got %d bursts, want 1", len(bursts))
	}
	for _, p := range bursts[0][0] {
		if p.Seq < 2 {
			t.Fatalf("stale packet seq %d fused into a fresh burst", p.Seq)
		}
	}
}

// TestSweepGaugesReturnToZero: the pending gauges a sweep updates must
// drop back to baseline once everything stale is evicted.
func TestSweepGaugesReturnToZero(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	clk := &fakeClock{t: time.Unix(1000, 0)}
	c := ttlCollector(t, clk, time.Second, nil)
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	c.SetMetrics(m)

	for ap := 0; ap < 2; ap++ {
		for i := 0; i < 2; i++ {
			if err := c.Add(mkPacket(ap, "a", uint64(i), rng)); err != nil {
				t.Fatal(err)
			}
			if err := c.Add(mkPacket(ap, "b", uint64(i), rng)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if m.PendingTargets.Value() != 2 || m.PendingPackets.Value() != 8 {
		t.Fatalf("gauges (%d, %d), want (2, 8)", m.PendingTargets.Value(), m.PendingPackets.Value())
	}
	clk.Advance(2 * time.Second)
	if n := c.Sweep(); n != 8 {
		t.Fatalf("evicted %d, want 8", n)
	}
	if m.PendingTargets.Value() != 0 || m.PendingPackets.Value() != 0 {
		t.Fatalf("gauges (%d, %d) after sweep, want (0, 0)", m.PendingTargets.Value(), m.PendingPackets.Value())
	}
	if m.PacketsExpired.Value() != 8 {
		t.Fatalf("PacketsExpired = %d, want 8", m.PacketsExpired.Value())
	}
}

// TestSweepRacesCompletingBurst hammers Add on several goroutines while a
// tight sweeper evicts, under -race in CI: eviction taking the lock
// between a queue filling and the burst emitting must never corrupt the
// buffered count or deliver short bursts.
func TestSweepRacesCompletingBurst(t *testing.T) {
	var mu sync.Mutex
	var bursts int
	c, err := NewCollector(CollectorConfig{
		BatchSize: 4, MinAPs: 2, MaxBuffered: 16, BurstTTL: time.Millisecond,
	}, func(mac string, b map[int][]*csi.Packet, tr *trace.Trace) {
		mu.Lock()
		bursts++
		mu.Unlock()
		for ap, pkts := range b {
			if len(pkts) != 4 {
				t.Errorf("AP %d burst has %d packets, want 4", ap, len(pkts))
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	stop := c.StartSweeper(200 * time.Microsecond)
	defer stop()

	var wg sync.WaitGroup
	for ap := 0; ap < 3; ap++ {
		wg.Add(1)
		go func(ap int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + ap)))
			for i := 0; i < 400; i++ {
				if err := c.Add(mkPacket(ap, "shared", uint64(i), rng)); err != nil {
					t.Errorf("add: %v", err)
					return
				}
				if i%16 == 0 {
					time.Sleep(50 * time.Microsecond)
				}
			}
		}(ap)
	}
	wg.Wait()
	stop()

	// Invariant: buffered accounting survived the race. Everything still
	// pending is now stale; a final sweep must drain exactly that amount.
	_, packets := c.PendingStats()
	time.Sleep(2 * time.Millisecond)
	if n := c.Sweep(); n != packets {
		t.Fatalf("final sweep evicted %d, pending reported %d", n, packets)
	}
	if targets, packets := c.PendingStats(); targets != 0 || packets != 0 {
		t.Fatalf("pending (%d, %d) after drain, want (0, 0)", targets, packets)
	}
	mu.Lock()
	defer mu.Unlock()
	if bursts == 0 {
		t.Fatal("no bursts completed despite aggressive sweeping")
	}
}
