package server

import (
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"spotfi/internal/chaos"
	"spotfi/internal/csi"
	"spotfi/internal/obs"
	"spotfi/internal/obs/trace"
	"spotfi/internal/wire"
)

// hardenedServer starts a server with tight deadlines and returns it with
// its metrics and address.
func hardenedServer(t *testing.T, h BurstHandler) (*Server, *Metrics, net.Addr) {
	t.Helper()
	if h == nil {
		h = func(string, map[int][]*csi.Packet, *trace.Trace) {}
	}
	c, err := NewCollector(CollectorConfig{BatchSize: 2, MinAPs: 2, MaxBuffered: 10}, h)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMetrics(obs.NewRegistry())
	c.SetMetrics(m)
	s, err := New(c, testLogger(t))
	if err != nil {
		t.Fatal(err)
	}
	s.SetMetrics(m)
	s.SetTimeouts(100*time.Millisecond, 150*time.Millisecond)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, m, addr
}

func waitCounter(t *testing.T, c *obs.Counter, want uint64, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if c.Value() >= want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("%s = %d, want ≥ %d", what, c.Value(), want)
}

// TestHandshakeDeadlineReapsHalfOpenConn: a peer that dials and sends
// nothing must be reaped, counted, and its connection closed.
func TestHandshakeDeadlineReapsHalfOpenConn(t *testing.T) {
	_, m, addr := hardenedServer(t, nil)
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	waitCounter(t, m.IdleTimeouts, 1, "IdleTimeouts")
	// The server closed its side: our next read hits EOF/reset.
	conn.SetReadDeadline(time.Now().Add(2 * time.Second)) //lint:allow errdrop TCP conn deadlines cannot fail here
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("server kept the half-open connection alive")
	}
	deadline := time.Now().Add(2 * time.Second)
	for m.ConnectionsOpen.Value() != 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if v := m.ConnectionsOpen.Value(); v != 0 {
		t.Fatalf("ConnectionsOpen = %d after reaping, want 0", v)
	}
}

// TestIdleDeadlineReapsStalledStream: an AP that completes the handshake
// and then goes silent (slow-loris, partition) is reaped by the idle
// deadline.
func TestIdleDeadlineReapsStalledStream(t *testing.T) {
	_, m, addr := hardenedServer(t, nil)
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := wire.WriteFrame(conn, wire.EncodeHello(7)); err != nil {
		t.Fatal(err)
	}
	waitCounter(t, m.IdleTimeouts, 1, "IdleTimeouts")
	if m.DecodeErrors.Value() != 0 {
		t.Fatalf("idle reap miscounted as decode error (%d)", m.DecodeErrors.Value())
	}
}

// TestNonFiniteCSIDroppedWithoutClosingConn: a well-framed report with a
// NaN CSI value is counted and dropped, and the same connection keeps
// streaming valid packets afterwards.
func TestNonFiniteCSIDroppedWithoutClosingConn(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	_, m, addr := hardenedServer(t, nil)
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := wire.WriteFrame(conn, wire.EncodeHello(3)); err != nil {
		t.Fatal(err)
	}

	good, err := wire.EncodeCSIReport(mkPacket(3, "t", 0, rng))
	if err != nil {
		t.Fatal(err)
	}
	poisoned, err := chaos.PoisonCSIReport(good)
	if err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteFrame(conn, poisoned); err != nil {
		t.Fatal(err)
	}
	waitCounter(t, m.PacketsNonFinite, 1, "PacketsNonFinite")
	if m.DecodeErrors.Value() != 0 {
		t.Fatalf("non-finite CSI miscounted as decode error (%d)", m.DecodeErrors.Value())
	}

	// The stream must still be trusted: a valid packet on the same
	// connection reaches the collector.
	if err := wire.WriteFrame(conn, good); err != nil {
		t.Fatal(err)
	}
	waitCounter(t, m.FramesTotal, 2, "FramesTotal")
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if m.PendingPackets.Value() == 1 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("valid packet after a dropped NaN packet never buffered (pending=%d)", m.PendingPackets.Value())
}

// TestBurstHandlerPanicQuarantined: a handler panic must not unwind into
// the connection goroutine; the burst is quarantined, counted, and the
// collector keeps emitting.
func TestBurstHandlerPanicQuarantined(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var mu sync.Mutex
	var served []string
	c, err := NewCollector(CollectorConfig{BatchSize: 2, MinAPs: 2, MaxBuffered: 10},
		func(mac string, bursts map[int][]*csi.Packet, tr *trace.Trace) {
			if mac == "poison" {
				panic("degenerate CSI killed the pipeline")
			}
			mu.Lock()
			served = append(served, mac)
			mu.Unlock()
		})
	if err != nil {
		t.Fatal(err)
	}
	m := NewMetrics(obs.NewRegistry())
	c.SetMetrics(m)

	feed := func(mac string) {
		for ap := 0; ap < 2; ap++ {
			for i := 0; i < 2; i++ {
				if err := c.Add(mkPacket(ap, mac, uint64(i), rng)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	feed("poison") // must not panic out of Add
	if m.BurstPanics.Value() != 1 {
		t.Fatalf("BurstPanics = %d, want 1", m.BurstPanics.Value())
	}
	q := c.Quarantined()
	if len(q) != 1 || q[0].TargetMAC != "poison" || q[0].Reason == "" {
		t.Fatalf("quarantine = %+v, want the poisoned burst with a reason", q)
	}
	if len(q[0].Bursts) != 2 {
		t.Fatalf("quarantined burst lost its packets: %d APs", len(q[0].Bursts))
	}

	feed("healthy") // the collector must keep serving
	mu.Lock()
	defer mu.Unlock()
	if len(served) != 1 || served[0] != "healthy" {
		t.Fatalf("served = %v, want [healthy]", served)
	}
}

// TestQuarantineRingBounded: a handler that panics on every burst must
// not grow the quarantine without bound.
func TestQuarantineRingBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c, err := NewCollector(CollectorConfig{BatchSize: 1, MinAPs: 2, MaxBuffered: 10},
		func(string, map[int][]*csi.Packet, *trace.Trace) { panic("always") })
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3*maxQuarantined; i++ {
		mac := string(rune('a'+i%26)) + string(rune('0'+i/26))
		if err := c.Add(mkPacket(0, mac, 0, rng)); err != nil {
			t.Fatal(err)
		}
		if err := c.Add(mkPacket(1, mac, 0, rng)); err != nil {
			t.Fatal(err)
		}
	}
	if n := len(c.Quarantined()); n != maxQuarantined {
		t.Fatalf("quarantine holds %d bursts, want capped at %d", n, maxQuarantined)
	}
}
