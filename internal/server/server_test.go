package server

import (
	"context"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"spotfi/internal/apnode"
	"spotfi/internal/csi"
	"spotfi/internal/geom"
	"spotfi/internal/obs/trace"
	"spotfi/internal/rf"
	"spotfi/internal/sim"
)

func mkPacket(ap int, mac string, seq uint64, rng *rand.Rand) *csi.Packet {
	m := csi.NewMatrix(3, 30)
	for a := range m.Values {
		for n := range m.Values[a] {
			m.Values[a][n] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
	}
	return &csi.Packet{APID: ap, TargetMAC: mac, Seq: seq, RSSIdBm: -50, CSI: m}
}

func TestCollectorConfigValidate(t *testing.T) {
	bad := []CollectorConfig{
		{BatchSize: 0, MinAPs: 2, MaxBuffered: 10},
		{BatchSize: 5, MinAPs: 1, MaxBuffered: 10},
		{BatchSize: 5, MinAPs: 2, MaxBuffered: 4},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("config %d validated", i)
		}
	}
	if err := DefaultCollectorConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCollectorEmitsWhenReady(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	var mu sync.Mutex
	var got []map[int][]*csi.Packet
	c, err := NewCollector(CollectorConfig{BatchSize: 3, MinAPs: 2, MaxBuffered: 10},
		func(mac string, bursts map[int][]*csi.Packet, tr *trace.Trace) {
			mu.Lock()
			got = append(got, bursts)
			mu.Unlock()
		})
	if err != nil {
		t.Fatal(err)
	}
	// Interleave: AP0 and AP1 each send 3 packets for the same target.
	for i := 0; i < 3; i++ {
		if err := c.Add(mkPacket(0, "t1", uint64(i), rng)); err != nil {
			t.Fatal(err)
		}
		if i < 2 {
			if err := c.Add(mkPacket(1, "t1", uint64(i), rng)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if len(got) != 0 {
		t.Fatal("burst emitted before both APs had a full batch")
	}
	if err := c.Add(mkPacket(1, "t1", 2, rng)); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("got %d bursts, want 1", len(got))
	}
	if len(got[0]) != 2 || len(got[0][0]) != 3 || len(got[0][1]) != 3 {
		t.Fatalf("burst shape wrong: %v", got[0])
	}
	emitted, dropped := c.Stats()
	if emitted != 1 || dropped != 0 {
		t.Fatalf("stats = %d/%d", emitted, dropped)
	}
}

func TestCollectorSeparatesTargets(t *testing.T) {
	rng := rand.New(rand.NewSource(112))
	var bursts int
	c, err := NewCollector(CollectorConfig{BatchSize: 2, MinAPs: 2, MaxBuffered: 10},
		func(mac string, b map[int][]*csi.Packet, tr *trace.Trace) {
			bursts++
			for _, pkts := range b {
				for _, p := range pkts {
					if p.TargetMAC != mac {
						t.Errorf("burst for %s contains packet from %s", mac, p.TargetMAC)
					}
				}
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	// Two targets interleaved on two APs.
	for i := 0; i < 2; i++ {
		for ap := 0; ap < 2; ap++ {
			if err := c.Add(mkPacket(ap, "alpha", uint64(i), rng)); err != nil {
				t.Fatal(err)
			}
			if err := c.Add(mkPacket(ap, "beta", uint64(i), rng)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if bursts != 2 {
		t.Fatalf("bursts = %d, want 2 (one per target)", bursts)
	}
}

func TestCollectorDropsOldestWhenFull(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	c, err := NewCollector(CollectorConfig{BatchSize: 4, MinAPs: 2, MaxBuffered: 4},
		func(string, map[int][]*csi.Packet, *trace.Trace) {})
	if err != nil {
		t.Fatal(err)
	}
	// Only one AP sends: buffer saturates, oldest dropped, no emission.
	for i := 0; i < 10; i++ {
		if err := c.Add(mkPacket(0, "t", uint64(i), rng)); err != nil {
			t.Fatal(err)
		}
	}
	emitted, dropped := c.Stats()
	if emitted != 0 {
		t.Fatal("emitted without MinAPs")
	}
	if dropped != 6 {
		t.Fatalf("dropped = %d, want 6", dropped)
	}
}

func TestCollectorRejectsBadInput(t *testing.T) {
	c, err := NewCollector(DefaultCollectorConfig(), func(string, map[int][]*csi.Packet, *trace.Trace) {})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Add(nil); err == nil {
		t.Fatal("nil packet accepted")
	}
	if err := c.Add(&csi.Packet{TargetMAC: "x", RSSIdBm: -10}); err == nil {
		t.Fatal("invalid packet accepted")
	}
	if _, err := NewCollector(DefaultCollectorConfig(), nil); err == nil {
		t.Fatal("nil handler accepted")
	}
}

// TestServerAgentIntegration runs the real TCP path: three simulated AP
// agents stream CSI of one target to the server, which assembles bursts.
func TestServerAgentIntegration(t *testing.T) {
	band := rf.DefaultBand()
	array := rf.DefaultArray(band)
	env := &sim.Environment{}
	target := geom.Point{X: 5, Y: 3}

	burstCh := make(chan map[int][]*csi.Packet, 4)
	collector, err := NewCollector(CollectorConfig{BatchSize: 5, MinAPs: 3, MaxBuffered: 50},
		func(mac string, b map[int][]*csi.Packet, tr *trace.Trace) {
			if mac != "02:aa" {
				t.Errorf("burst for unexpected MAC %s", mac)
			}
			burstCh <- b
		})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(collector, testLogger(t))
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	for apID := 0; apID < 3; apID++ {
		ap := sim.AP{ID: apID, Pos: geom.Point{X: float64(apID) * 4, Y: 0}}
		rng := rand.New(rand.NewSource(int64(200 + apID)))
		link := sim.NewLink(env, ap, target, sim.DefaultLinkConfig(), rng)
		syn, err := sim.NewSynthesizer(link, band, array, sim.DefaultImpairments(), rng)
		if err != nil {
			t.Fatal(err)
		}
		agent := &apnode.Agent{
			APID:       apID,
			ServerAddr: addr.String(),
			Source:     &apnode.SynthSource{Syn: syn, TargetMAC: "02:aa", Limit: 5},
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := agent.Run(ctx); err != nil {
				t.Errorf("agent: %v", err)
			}
		}()
	}
	wg.Wait()

	select {
	case b := <-burstCh:
		if len(b) != 3 {
			t.Fatalf("burst covers %d APs, want 3", len(b))
		}
		for ap, pkts := range b {
			if len(pkts) != 5 {
				t.Fatalf("AP %d burst has %d packets", ap, len(pkts))
			}
			for _, p := range pkts {
				if p.APID != ap {
					t.Fatalf("packet APID %d in AP %d burst", p.APID, ap)
				}
			}
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no burst emitted")
	}
}

func TestServerRejectsGarbage(t *testing.T) {
	collector, err := NewCollector(DefaultCollectorConfig(), func(string, map[int][]*csi.Packet, *trace.Trace) {
		t.Error("garbage produced a burst")
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(collector, testLogger(t))
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	d := net.Dialer{Timeout: 2 * time.Second}
	conn, err := d.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte("this is not the protocol")); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	// Give the server a moment to process and drop the connection.
	time.Sleep(100 * time.Millisecond)
	emitted, _ := collector.Stats()
	if emitted != 0 {
		t.Fatal("garbage emitted a burst")
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	collector, err := NewCollector(DefaultCollectorConfig(), func(string, map[int][]*csi.Packet, *trace.Trace) {})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(collector, testLogger(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	// Listening after close must fail.
	if _, err := srv.Listen("127.0.0.1:0"); err == nil {
		t.Fatal("listen after close succeeded")
	}
}
