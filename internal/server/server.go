package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sync"
	"syscall"
	"time"

	"spotfi/internal/csi"
	"spotfi/internal/wire"
)

// Default connection deadlines. A real AP sends its hello immediately
// after dialing and streams CSI continuously (the paper spaces packets
// 100 ms apart), so a connection quiet for this long is a half-open peer,
// a slow-loris, or a partition — reap it rather than pin a goroutine and
// buffered state forever.
const (
	DefaultHandshakeTimeout = 10 * time.Second
	DefaultIdleTimeout      = 90 * time.Second
)

// APEventSink observes per-AP ingest events that feed health decisions —
// reconnect churn and non-finite CSI streams (implemented by
// admit.BreakerSet). Implementations must be safe for concurrent use and
// fast: both methods run on connection goroutines' packet paths.
type APEventSink interface {
	// APConnected fires after every completed AP handshake.
	APConnected(ap int)
	// NonFiniteCSI fires for every well-framed report carrying non-finite
	// values (a buggy NIC driver).
	NonFiniteCSI(ap int)
}

// Server accepts AP connections and feeds their CSI reports into a
// Collector.
type Server struct {
	collector *Collector
	log       *slog.Logger
	metrics   *Metrics
	tracker   *APTracker
	events    APEventSink

	handshakeTimeout time.Duration
	idleTimeout      time.Duration

	lis net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool

	wg sync.WaitGroup
}

// New returns a Server delivering packets to collector. logger may be nil
// (slog.Default is used); records carry structured ap/remote/err attrs.
func New(collector *Collector, logger *slog.Logger) (*Server, error) {
	if collector == nil {
		return nil, fmt.Errorf("server: nil collector")
	}
	if logger == nil {
		logger = slog.Default()
	}
	return &Server{
		collector:        collector,
		log:              logger,
		metrics:          &Metrics{},
		tracker:          NewAPTracker(),
		handshakeTimeout: DefaultHandshakeTimeout,
		idleTimeout:      DefaultIdleTimeout,
		conns:            make(map[net.Conn]struct{}),
	}, nil
}

// Tracker returns the per-AP last-packet tracker feeding the readiness
// probe (see APTracker.ReadinessHandler).
func (s *Server) Tracker() *APTracker {
	return s.tracker
}

// SetTimeouts overrides the handshake and idle read deadlines. Call
// before Listen/Serve. A non-positive value disables that deadline.
func (s *Server) SetTimeouts(handshake, idle time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handshakeTimeout = handshake
	s.idleTimeout = idle
}

// SetEventSink wires per-AP ingest events (reconnects, non-finite CSI)
// into sink — typically an admit.BreakerSet. Call before Listen/Serve;
// nil disables.
func (s *Server) SetEventSink(sink APEventSink) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.events = sink
}

// SetMetrics wires the ingest-path counters. Call before Listen; m must
// not be nil (use a zero Metrics to disable). The same Metrics is usually
// shared with the Collector via Collector.SetMetrics.
func (s *Server) SetMetrics(m *Metrics) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.metrics = m
}

// Listen binds addr (e.g. "127.0.0.1:0") and starts accepting in the
// background. It returns the bound address.
func (s *Server) Listen(addr string) (net.Addr, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	if err := s.Serve(lis); err != nil {
		lis.Close() //lint:allow errdrop best-effort cleanup; the caller only sees the already-closed error
		return nil, err
	}
	return lis.Addr(), nil
}

// Serve starts accepting on an existing listener in the background —
// the injection point for fault-wrapping listeners (internal/chaos) and
// pre-bound sockets. The server takes ownership of lis and closes it on
// Close.
func (s *Server) Serve(lis net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("server: already closed")
	}
	s.lis = lis
	s.mu.Unlock()

	s.wg.Add(1)
	go s.acceptLoop(lis)
	return nil
}

func (s *Server) acceptLoop(lis net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := lis.Accept()
		if err != nil {
			// Closed listener: clean shutdown.
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close() //lint:allow errdrop refusing a connection during shutdown; nothing to report to
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()

		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

func (s *Server) handle(conn net.Conn) {
	s.metrics.ConnectsTotal.Inc()
	s.metrics.ConnectionsOpen.Inc()
	defer func() {
		s.metrics.ConnectionsOpen.Dec()
		conn.Close() //lint:allow errdrop teardown of a connection whose read loop already ended
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()

	// A peer that dials but never completes the hello would otherwise pin
	// this goroutine (and the connection) forever.
	if s.handshakeTimeout > 0 {
		conn.SetReadDeadline(time.Now().Add(s.handshakeTimeout)) //lint:allow errdrop a failed deadline surfaces as the read error it was meant to bound
	}
	hello, err := wire.ReadFrame(conn)
	if err != nil {
		if isTimeout(err) {
			s.metrics.IdleTimeouts.Inc()
			s.log.Warn("handshake deadline exceeded, reaping", "remote", conn.RemoteAddr())
		} else {
			s.metrics.DecodeErrors.Inc()
			s.log.Warn("bad handshake", "remote", conn.RemoteAddr(), "err", err)
		}
		return
	}
	apID, err := wire.DecodeHello(hello)
	if err != nil {
		s.metrics.DecodeErrors.Inc()
		s.log.Warn("expected hello", "remote", conn.RemoteAddr(), "err", err)
		return
	}
	s.log.Info("AP connected", "ap", apID, "remote", conn.RemoteAddr())
	if s.events != nil {
		s.events.APConnected(int(apID))
	}

	for {
		// Refresh the idle deadline per frame: a healthy AP streams
		// continuously, so only stalled, partitioned, or half-open peers
		// ever hit it (slow-loris reaping).
		if s.idleTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.idleTimeout)) //lint:allow errdrop a failed deadline surfaces as the read error it was meant to bound
		}
		f, err := wire.ReadFrame(conn)
		if err != nil {
			switch {
			case err == io.EOF || errors.Is(err, net.ErrClosed):
				// Clean close (or our own shutdown).
			case isTimeout(err):
				s.metrics.IdleTimeouts.Inc()
				s.log.Warn("idle AP reaped", "ap", apID, "idle", s.idleTimeout)
			case isConnReset(err):
				s.metrics.ConnResets.Inc()
				s.log.Warn("connection reset mid-frame", "ap", apID, "err", err)
			default:
				s.metrics.DecodeErrors.Inc()
				s.log.Warn("read error", "ap", apID, "err", err)
			}
			return
		}
		s.metrics.FramesTotal.Inc()
		switch f.Type {
		case wire.TypeCSIReport:
			pkt, err := wire.DecodeCSIReport(f)
			if err != nil {
				if errors.Is(err, csi.ErrNonFinite) {
					// Well-framed report, garbage values (buggy NIC
					// driver): the stream is still in sync, so drop the
					// packet at the door and keep the connection.
					s.metrics.PacketsNonFinite.Inc()
					s.metrics.PacketsRejected.Inc()
					if s.events != nil {
						s.events.NonFiniteCSI(int(apID))
					}
					s.log.Warn("non-finite CSI dropped", "ap", apID, "err", err)
					continue
				}
				s.metrics.DecodeErrors.Inc()
				s.log.Warn("corrupt report, closing stream", "ap", apID, "err", err)
				return // a desynced stream cannot be trusted further
			}
			if pkt.APID != int(apID) {
				s.metrics.PacketsRejected.Inc()
				s.log.Warn("APID mismatch, dropping report", "ap", apID, "claimed", pkt.APID)
				continue
			}
			if err := s.collector.Add(pkt); err != nil {
				if errors.Is(err, csi.ErrNonFinite) {
					s.metrics.PacketsNonFinite.Inc()
					if s.events != nil {
						s.events.NonFiniteCSI(int(apID))
					}
				}
				s.metrics.PacketsRejected.Inc()
				s.log.Warn("rejected packet", "ap", apID, "err", err)
				continue
			}
			// Readiness tracks accepted packets only: an AP streaming
			// garbage is not a working observation source.
			s.tracker.Mark(pkt.APID)
		case wire.TypeBye:
			s.log.Info("AP disconnected cleanly", "ap", apID)
			return
		default:
			s.metrics.DecodeErrors.Inc()
			s.log.Warn("unknown frame type", "ap", apID, "type", f.Type)
			return
		}
	}
}

// isTimeout reports whether err is a read-deadline expiry.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// isConnReset reports whether err is a connection torn down mid-frame —
// truncation (the peer closed between a frame header and its payload) or
// a TCP-level reset — as opposed to structural garbage on an intact
// stream.
func isConnReset(err error) bool {
	return errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, syscall.EPIPE)
}

// Close stops accepting, closes every connection, and waits for handlers
// to drain. It is idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	lis := s.lis
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	var err error
	if lis != nil {
		err = lis.Close()
	}
	for _, c := range conns {
		c.Close() //lint:allow errdrop Close reports the listener error; per-conn errors have no consumer
	}
	s.wg.Wait()
	return err
}

// Shutdown closes the server when ctx is done; call it in a goroutine or
// rely on Close directly.
func (s *Server) Shutdown(ctx context.Context) error {
	<-ctx.Done()
	return s.Close()
}
