package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"

	"spotfi/internal/wire"
)

// Server accepts AP connections and feeds their CSI reports into a
// Collector.
type Server struct {
	collector *Collector
	logf      func(format string, args ...any)
	metrics   *Metrics

	lis net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool

	wg sync.WaitGroup
}

// New returns a Server delivering packets to collector. logf may be nil
// (log.Printf is used).
func New(collector *Collector, logf func(string, ...any)) (*Server, error) {
	if collector == nil {
		return nil, fmt.Errorf("server: nil collector")
	}
	if logf == nil {
		logf = log.Printf
	}
	return &Server{
		collector: collector,
		logf:      logf,
		metrics:   &Metrics{},
		conns:     make(map[net.Conn]struct{}),
	}, nil
}

// SetMetrics wires the ingest-path counters. Call before Listen; m must
// not be nil (use a zero Metrics to disable). The same Metrics is usually
// shared with the Collector via Collector.SetMetrics.
func (s *Server) SetMetrics(m *Metrics) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.metrics = m
}

// Listen binds addr (e.g. "127.0.0.1:0") and starts accepting in the
// background. It returns the bound address.
func (s *Server) Listen(addr string) (net.Addr, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		lis.Close() //lint:allow errdrop best-effort cleanup; the caller only sees the already-closed error
		return nil, fmt.Errorf("server: already closed")
	}
	s.lis = lis
	s.mu.Unlock()

	s.wg.Add(1)
	go s.acceptLoop(lis)
	return lis.Addr(), nil
}

func (s *Server) acceptLoop(lis net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := lis.Accept()
		if err != nil {
			// Closed listener: clean shutdown.
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close() //lint:allow errdrop refusing a connection during shutdown; nothing to report to
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()

		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

func (s *Server) handle(conn net.Conn) {
	s.metrics.ConnectsTotal.Inc()
	s.metrics.ConnectionsOpen.Inc()
	defer func() {
		s.metrics.ConnectionsOpen.Dec()
		conn.Close() //lint:allow errdrop teardown of a connection whose read loop already ended
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()

	hello, err := wire.ReadFrame(conn)
	if err != nil {
		s.metrics.DecodeErrors.Inc()
		s.logf("server: %v: bad handshake: %v", conn.RemoteAddr(), err)
		return
	}
	apID, err := wire.DecodeHello(hello)
	if err != nil {
		s.metrics.DecodeErrors.Inc()
		s.logf("server: %v: expected hello: %v", conn.RemoteAddr(), err)
		return
	}
	s.logf("server: AP %d connected from %v", apID, conn.RemoteAddr())

	for {
		f, err := wire.ReadFrame(conn)
		if err != nil {
			if err != io.EOF && !errors.Is(err, net.ErrClosed) {
				s.metrics.DecodeErrors.Inc()
				s.logf("server: AP %d: read: %v", apID, err)
			}
			return
		}
		s.metrics.FramesTotal.Inc()
		switch f.Type {
		case wire.TypeCSIReport:
			pkt, err := wire.DecodeCSIReport(f)
			if err != nil {
				s.metrics.DecodeErrors.Inc()
				s.logf("server: AP %d: corrupt report: %v", apID, err)
				return // a desynced stream cannot be trusted further
			}
			if pkt.APID != int(apID) {
				s.metrics.PacketsRejected.Inc()
				s.logf("server: AP %d: report claims APID %d; dropping", apID, pkt.APID)
				continue
			}
			if err := s.collector.Add(pkt); err != nil {
				s.metrics.PacketsRejected.Inc()
				s.logf("server: AP %d: rejected packet: %v", apID, err)
			}
		case wire.TypeBye:
			s.logf("server: AP %d disconnected cleanly", apID)
			return
		default:
			s.metrics.DecodeErrors.Inc()
			s.logf("server: AP %d: unknown frame type %d", apID, f.Type)
			return
		}
	}
}

// Close stops accepting, closes every connection, and waits for handlers
// to drain. It is idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	lis := s.lis
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	var err error
	if lis != nil {
		err = lis.Close()
	}
	for _, c := range conns {
		c.Close() //lint:allow errdrop Close reports the listener error; per-conn errors have no consumer
	}
	s.wg.Wait()
	return err
}

// Shutdown closes the server when ctx is done; call it in a goroutine or
// rely on Close directly.
func (s *Server) Shutdown(ctx context.Context) error {
	<-ctx.Done()
	return s.Close()
}
