package server

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"
)

func trackerAt(t0 time.Time) (*APTracker, *time.Time) {
	now := t0
	tr := NewAPTracker()
	tr.now = func() time.Time { return now }
	return tr, &now
}

func readiness(t *testing.T, tr *APTracker, staleAfter time.Duration) (int, ReadinessReport) {
	t.Helper()
	rr := httptest.NewRecorder()
	tr.ReadinessHandler(staleAfter).ServeHTTP(rr, httptest.NewRequest("GET", "/readyz", nil))
	var rep ReadinessReport
	if err := json.Unmarshal(rr.Body.Bytes(), &rep); err != nil {
		t.Fatalf("invalid readiness JSON: %v", err)
	}
	return rr.Code, rep
}

func TestReadinessNoAPsYet(t *testing.T) {
	tr, _ := trackerAt(time.Unix(1000, 0))
	code, rep := readiness(t, tr, 30*time.Second)
	if code != 503 || rep.Ready {
		t.Fatalf("startup readiness = %d ready=%v, want 503 not-ready", code, rep.Ready)
	}
	if len(rep.APs) != 0 {
		t.Fatalf("APs = %+v, want empty", rep.APs)
	}
}

func TestReadinessFreshAndStale(t *testing.T) {
	tr, now := trackerAt(time.Unix(1000, 0))
	tr.Mark(0)
	tr.Mark(1)
	*now = now.Add(10 * time.Second)
	tr.Mark(1) // AP 1 refreshes; AP 0 ages

	code, rep := readiness(t, tr, 30*time.Second)
	if code != 200 || !rep.Ready {
		t.Fatalf("fresh APs = %d ready=%v, want 200 ready", code, rep.Ready)
	}
	if len(rep.APs) != 2 || rep.APs[0].APID != 0 || rep.APs[1].APID != 1 {
		t.Fatalf("APs = %+v", rep.APs)
	}
	if rep.APs[0].AgeSeconds < 9.9 || rep.APs[1].AgeSeconds > 0.1 {
		t.Fatalf("ages = %+v", rep.APs)
	}

	// Only AP 0 goes stale: still ready, staleness reported per AP.
	*now = now.Add(25 * time.Second) // AP 0 at 35 s, AP 1 at 25 s
	code, rep = readiness(t, tr, 30*time.Second)
	if code != 200 || !rep.Ready || !rep.APs[0].Stale || rep.APs[1].Stale {
		t.Fatalf("one-stale = %d %+v", code, rep)
	}

	// All APs stale: not ready.
	*now = now.Add(time.Minute)
	code, rep = readiness(t, tr, 30*time.Second)
	if code != 503 || rep.Ready {
		t.Fatalf("all-stale = %d ready=%v, want 503", code, rep.Ready)
	}
	if !rep.APs[0].Stale || !rep.APs[1].Stale {
		t.Fatalf("all-stale rows = %+v", rep.APs)
	}
}

func TestReadinessDisabled(t *testing.T) {
	tr, _ := trackerAt(time.Unix(1000, 0))
	code, rep := readiness(t, tr, 0)
	if code != 200 || !rep.Ready {
		t.Fatalf("disabled staleness = %d ready=%v, want always ready", code, rep.Ready)
	}
}

func TestTrackerNilSafe(t *testing.T) {
	var tr *APTracker
	tr.Mark(1)
	if m := tr.LastSeen(); m != nil {
		t.Fatalf("nil tracker LastSeen = %v", m)
	}
	code, rep := readiness(t, tr, 30*time.Second)
	if code != 503 || rep.Ready {
		t.Fatalf("nil tracker readiness = %d ready=%v", code, rep.Ready)
	}
}

func TestTrackerLastSeenCopies(t *testing.T) {
	tr, now := trackerAt(time.Unix(1000, 0))
	tr.Mark(3)
	m := tr.LastSeen()
	m[3] = now.Add(time.Hour) // mutating the copy must not touch the tracker
	if got := tr.LastSeen()[3]; !got.Equal(time.Unix(1000, 0)) {
		t.Fatalf("LastSeen leaked internal map: %v", got)
	}
}
