package apnode

import (
	"context"
	"errors"
	"io"
	"math"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"spotfi/internal/csi"
	"spotfi/internal/wire"
)

func TestJitterBounds(t *testing.T) {
	const d = 800 * time.Millisecond
	seen := map[time.Duration]bool{}
	for i := 0; i < 500; i++ {
		j := jitter(d)
		if j < d/2 || j > d {
			t.Fatalf("jitter(%v) = %v, want in [%v, %v]", d, j, d/2, d)
		}
		seen[j] = true
	}
	if len(seen) < 10 {
		t.Fatalf("jitter produced only %d distinct values in 500 draws", len(seen))
	}
}

// TestRunWithRetryHealthyReset: a server that kills every connection
// after it has streamed for a while simulates weeks of sporadic,
// unrelated failures. The failure counter must reset after each healthy
// stretch, so the agent survives far more total failures than maxRetries
// instead of eventually giving up.
func TestRunWithRetryHealthyReset(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()

	var conns atomic.Int64
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			conns.Add(1)
			go func(c net.Conn) {
				// Let the stream run long enough to count as healthy,
				// then fail it abruptly.
				defer c.Close()
				deadline := time.Now().Add(80 * time.Millisecond)
				for time.Now().Before(deadline) {
					c.SetReadDeadline(deadline) //lint:allow errdrop TCP conn deadlines cannot fail here
					if _, err := wire.ReadFrame(c); err != nil {
						return
					}
				}
			}(conn)
		}
	}()

	a := &Agent{
		APID:         1,
		ServerAddr:   lis.Addr().String(),
		Source:       &SynthSource{Syn: testSynth(t, 11), TargetMAC: "m"}, // unlimited
		Interval:     2 * time.Millisecond,
		HealthyReset: 40 * time.Millisecond,
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	// maxRetries is 3, but every connection streams ≥ HealthyReset before
	// dying, so each failure is a fresh incident and the agent must
	// outlive many more than 3 of them.
	go func() { done <- a.RunWithRetry(ctx, 3, time.Millisecond) }()

	deadline := time.Now().Add(10 * time.Second)
	for conns.Load() < 8 && time.Now().Before(deadline) {
		select {
		case err := <-done:
			t.Fatalf("agent gave up after %d connections: %v", conns.Load(), err)
		case <-time.After(5 * time.Millisecond):
		}
	}
	if conns.Load() < 8 {
		t.Fatalf("only %d connections in 10s", conns.Load())
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("after cancel: %v, want context.Canceled", err)
	}
}

// TestRunWithRetryStillGivesUpOnConsecutiveFailures: instant failures
// (dead port) must still exhaust maxRetries — the healthy reset only
// forgives failures separated by sustained streaming.
func TestRunWithRetryStillGivesUpOnConsecutiveFailures(t *testing.T) {
	a := &Agent{
		APID:         1,
		ServerAddr:   "127.0.0.1:1",
		Source:       &SynthSource{Syn: testSynth(t, 12), TargetMAC: "m", Limit: 1},
		DialTimeout:  200 * time.Millisecond,
		HealthyReset: 10 * time.Millisecond, // generous: dials fail in ~µs, far under this
	}
	err := a.RunWithRetry(context.Background(), 3, time.Millisecond)
	if err == nil {
		t.Fatal("retry against a dead port succeeded")
	}
	if !strings.Contains(err.Error(), "giving up after 3") {
		t.Fatalf("gave up with %v, want after exactly 3 attempts", err)
	}
}

// nanSource yields a non-finite packet sandwiched between good ones.
type nanSource struct {
	inner PacketSource
	n     int
}

func (s *nanSource) Next() (*csi.Packet, error) {
	p, err := s.inner.Next()
	if err != nil {
		return nil, err
	}
	s.n++
	if s.n == 2 {
		p.CSI.Values[0][0] = complex(math.NaN(), 0)
	}
	return p, nil
}

// TestAgentSkipsUnencodablePackets: one bad NIC report must not kill the
// stream — it is dropped, counted, and the rest of the packets arrive.
func TestAgentSkipsUnencodablePackets(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()

	reports := make(chan int, 1)
	go func() {
		conn, err := lis.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		n := 0
		for {
			f, err := wire.ReadFrame(conn)
			if err != nil || f.Type == wire.TypeBye {
				reports <- n
				return
			}
			if f.Type == wire.TypeCSIReport {
				n++
			}
		}
	}()

	a := &Agent{
		APID:       1,
		ServerAddr: lis.Addr().String(),
		Source:     &nanSource{inner: &SynthSource{Syn: testSynth(t, 13), TargetMAC: "m", Limit: 5}},
	}
	if err := a.Run(context.Background()); err != nil {
		t.Fatalf("one bad packet killed the stream: %v", err)
	}
	if got := <-reports; got != 4 {
		t.Fatalf("server received %d reports, want 4 (5 minus the dropped NaN)", got)
	}
	if a.Dropped() != 1 {
		t.Fatalf("Dropped = %d, want 1", a.Dropped())
	}
}

// TestAgentDialHook: a custom Dial must be used for the connection.
func TestAgentDialHook(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go func() {
		conn, err := lis.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		io.Copy(io.Discard, conn) //lint:allow errdrop test drain; the dial hook is the assertion
	}()

	var dialed atomic.Bool
	a := &Agent{
		APID:       1,
		ServerAddr: lis.Addr().String(),
		Source:     &SynthSource{Syn: testSynth(t, 14), TargetMAC: "m", Limit: 1},
		Dial: func(ctx context.Context, network, addr string) (net.Conn, error) {
			dialed.Store(true)
			var d net.Dialer
			return d.DialContext(ctx, network, addr)
		},
	}
	if err := a.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !dialed.Load() {
		t.Fatal("custom Dial hook was not used")
	}
}
