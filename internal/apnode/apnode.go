// Package apnode implements the software SpotFi adds at each AP: it reads
// CSI reports (from the simulated NIC or a recorded trace) and ships them
// to the central server over the wire protocol. The paper's design adds
// "only the software required to read the reported CSI values, timestamps,
// and MAC addresses at the AP and ships it to the central server and
// nothing else" (Sec. 3).
package apnode

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net"
	"sync/atomic"
	"time"

	"spotfi/internal/csi"
	"spotfi/internal/sim"
	"spotfi/internal/wire"
)

// PacketSource yields the CSI packets the AP observes. Next returns io.EOF
// when the source is exhausted.
type PacketSource interface {
	Next() (*csi.Packet, error)
}

// SynthSource adapts a sim.Synthesizer into a PacketSource with a fixed
// packet budget (0 = unlimited).
type SynthSource struct {
	Syn       *sim.Synthesizer
	TargetMAC string
	Limit     int

	sent int
}

// Next synthesizes the next packet.
func (s *SynthSource) Next() (*csi.Packet, error) {
	if s.Limit > 0 && s.sent >= s.Limit {
		return nil, io.EOF
	}
	s.sent++
	return s.Syn.NextPacket(s.TargetMAC), nil
}

// TraceSource adapts a csi.TraceReader into a PacketSource.
type TraceSource struct {
	R *csi.TraceReader
}

// Next reads the next trace packet.
func (t *TraceSource) Next() (*csi.Packet, error) { return t.R.ReadPacket() }

// Agent streams CSI reports from a source to the server.
type Agent struct {
	// APID is announced in the handshake and stamped on outgoing packets.
	APID int
	// ServerAddr is the central server's TCP address.
	ServerAddr string
	// Source yields packets to ship.
	Source PacketSource
	// Interval paces transmissions (0 = as fast as possible). The paper's
	// experiments space packets 100 ms apart.
	Interval time.Duration
	// DialTimeout bounds connection establishment.
	DialTimeout time.Duration
	// Dial overrides connection establishment — the injection point for
	// fault-wrapped connections (internal/chaos). Nil means a net.Dialer
	// bounded by DialTimeout.
	Dial func(ctx context.Context, network, addr string) (net.Conn, error)
	// HealthyReset is how long a connection must stream before a
	// subsequent failure is treated as a fresh incident rather than
	// another consecutive one: RunWithRetry then resets its failure count
	// and backoff. Zero means 30 s; negative disables resetting.
	HealthyReset time.Duration
	// Logger, when non-nil, receives structured records for connection
	// lifecycle events (retries, backoff, give-up). Nil logs nothing.
	Logger *slog.Logger

	dropped atomic.Uint64
}

// Dropped returns how many source packets Run skipped because they could
// not be encoded (e.g. a buggy NIC reporting non-finite CSI).
func (a *Agent) Dropped() uint64 { return a.dropped.Load() }

// Run connects, performs the handshake, and streams packets until the
// source is exhausted or ctx is cancelled. A clean EOF sends Bye and
// returns nil.
func (a *Agent) Run(ctx context.Context) error {
	if a.Source == nil {
		return fmt.Errorf("apnode: nil packet source")
	}
	timeout := a.DialTimeout
	if timeout == 0 {
		timeout = 5 * time.Second
	}
	dial := a.Dial
	if dial == nil {
		d := net.Dialer{Timeout: timeout}
		dial = d.DialContext
	}
	conn, err := dial(ctx, "tcp", a.ServerAddr)
	if err != nil {
		return fmt.Errorf("apnode: dial %s: %w", a.ServerAddr, err)
	}
	defer conn.Close()

	// Cancel blocks in-flight writes when ctx dies.
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
			conn.Close() //lint:allow errdrop closing to unblock writes is the cancellation path; the write site reports
		case <-done:
		}
	}()

	if err := wire.WriteFrame(conn, wire.EncodeHello(int32(a.APID))); err != nil {
		return fmt.Errorf("apnode: handshake: %w", err)
	}

	var ticker *time.Ticker
	if a.Interval > 0 {
		ticker = time.NewTicker(a.Interval)
		defer ticker.Stop()
	}
	for {
		pkt, err := a.Source.Next()
		if err == io.EOF {
			return wire.WriteFrame(conn, wire.Frame{Type: wire.TypeBye})
		}
		if err != nil {
			return fmt.Errorf("apnode: source: %w", err)
		}
		pkt.APID = a.APID
		f, err := wire.EncodeCSIReport(pkt)
		if err != nil {
			// One bad report from the NIC (non-finite CSI, oversize
			// matrix) must not kill the stream: skip it and keep
			// shipping. Dropped() exposes the count.
			a.dropped.Add(1)
			continue
		}
		if err := wire.WriteFrame(conn, f); err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return fmt.Errorf("apnode: send: %w", err)
		}
		if ticker != nil {
			select {
			case <-ticker.C:
			case <-ctx.Done():
				return ctx.Err()
			}
		} else if ctx.Err() != nil {
			return ctx.Err()
		}
	}
}

// RunWithRetry runs the agent, reconnecting with jittered exponential
// backoff when the connection fails mid-stream. It returns nil when the
// source is exhausted (clean EOF), ctx.Err() on cancellation, or the last
// error once maxRetries consecutive attempts fail.
//
// "Consecutive" means within one incident: a connection that streamed for
// at least HealthyReset before failing resets the failure count and
// backoff, so a long-lived agent does not accumulate unrelated failures
// over weeks and eventually refuse to reconnect. The backoff sleep is
// drawn uniformly from [backoff/2, backoff], so a fleet of APs restarting
// after a server outage spreads its reconnects instead of arriving as a
// thundering herd. Progress through the source is preserved across
// reconnects: packets already consumed are not re-read.
func (a *Agent) RunWithRetry(ctx context.Context, maxRetries int, baseBackoff time.Duration) error {
	if maxRetries < 1 {
		maxRetries = 1
	}
	if baseBackoff <= 0 {
		baseBackoff = 250 * time.Millisecond
	}
	healthy := a.HealthyReset
	if healthy == 0 {
		healthy = 30 * time.Second
	}
	backoff := baseBackoff
	failures := 0
	for {
		start := time.Now()
		err := a.Run(ctx)
		if err == nil {
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if healthy > 0 && time.Since(start) >= healthy {
			failures = 0
			backoff = baseBackoff
		}
		failures++
		if failures >= maxRetries {
			if a.Logger != nil {
				a.Logger.Error("giving up", "ap", a.APID, "attempts", failures, "err", err)
			}
			return fmt.Errorf("apnode: giving up after %d attempts: %w", failures, err)
		}
		if a.Logger != nil {
			a.Logger.Warn("stream failed, backing off", "ap", a.APID,
				"attempt", failures, "backoff", backoff, "err", err)
		}
		select {
		case <-time.After(jitter(backoff)):
		case <-ctx.Done():
			return ctx.Err()
		}
		if backoff < 8*time.Second {
			backoff *= 2
		}
	}
}

// jitter draws a sleep uniformly from [d/2, d] (equal jitter), using the
// process-wide math/rand source, which is safe for concurrent agents.
func jitter(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}
