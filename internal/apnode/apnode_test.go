package apnode

import (
	"bytes"
	"context"
	"io"
	"math/rand"
	"net"
	"testing"
	"time"

	"spotfi/internal/csi"
	"spotfi/internal/geom"
	"spotfi/internal/rf"
	"spotfi/internal/sim"
	"spotfi/internal/wire"
)

func testSynth(t *testing.T, seed int64) *sim.Synthesizer {
	t.Helper()
	band := rf.DefaultBand()
	array := rf.DefaultArray(band)
	env := &sim.Environment{}
	rng := rand.New(rand.NewSource(seed))
	link := sim.NewLink(env, sim.AP{ID: 1, Pos: geom.Point{X: 0, Y: 0}}, geom.Point{X: 4, Y: 2}, sim.DefaultLinkConfig(), rng)
	syn, err := sim.NewSynthesizer(link, band, array, sim.DefaultImpairments(), rng)
	if err != nil {
		t.Fatal(err)
	}
	return syn
}

func TestSynthSourceLimit(t *testing.T) {
	src := &SynthSource{Syn: testSynth(t, 1), TargetMAC: "m", Limit: 3}
	for i := 0; i < 3; i++ {
		p, err := src.Next()
		if err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
		if p.TargetMAC != "m" {
			t.Fatalf("MAC = %s", p.TargetMAC)
		}
	}
	if _, err := src.Next(); err != io.EOF {
		t.Fatalf("after limit: %v, want io.EOF", err)
	}
}

func TestTraceSource(t *testing.T) {
	var buf bytes.Buffer
	w := csi.NewTraceWriter(&buf)
	syn := testSynth(t, 2)
	for i := 0; i < 4; i++ {
		if err := w.WritePacket(syn.NextPacket("mm")); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	src := &TraceSource{R: csi.NewTraceReader(&buf)}
	for i := 0; i < 4; i++ {
		if _, err := src.Next(); err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
	}
	if _, err := src.Next(); err != io.EOF {
		t.Fatalf("exhausted trace: %v, want io.EOF", err)
	}
}

func TestAgentNilSource(t *testing.T) {
	a := &Agent{APID: 1, ServerAddr: "127.0.0.1:1"}
	if err := a.Run(context.Background()); err == nil {
		t.Fatal("nil source accepted")
	}
}

func TestAgentDialFailure(t *testing.T) {
	a := &Agent{
		APID:        1,
		ServerAddr:  "127.0.0.1:1", // nothing listens on port 1
		Source:      &SynthSource{Syn: testSynth(t, 3), TargetMAC: "m", Limit: 1},
		DialTimeout: 500 * time.Millisecond,
	}
	if err := a.Run(context.Background()); err == nil {
		t.Fatal("dial to dead port succeeded")
	}
}

// TestAgentStreamsFrames verifies the exact frame sequence an agent emits:
// Hello, N CSI reports with the agent's APID stamped, then Bye.
func TestAgentStreamsFrames(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()

	done := make(chan error, 1)
	go func() {
		conn, err := lis.Accept()
		if err != nil {
			done <- err
			return
		}
		defer conn.Close()
		hello, err := wire.ReadFrame(conn)
		if err != nil {
			done <- err
			return
		}
		id, err := wire.DecodeHello(hello)
		if err != nil || id != 7 {
			t.Errorf("hello id = %d, err = %v", id, err)
		}
		count := 0
		for {
			f, err := wire.ReadFrame(conn)
			if err != nil {
				done <- err
				return
			}
			switch f.Type {
			case wire.TypeCSIReport:
				p, err := wire.DecodeCSIReport(f)
				if err != nil {
					done <- err
					return
				}
				if p.APID != 7 {
					t.Errorf("report APID %d, want 7", p.APID)
				}
				count++
			case wire.TypeBye:
				if count != 5 {
					t.Errorf("got %d reports, want 5", count)
				}
				done <- nil
				return
			}
		}
	}()

	a := &Agent{
		APID:       7,
		ServerAddr: lis.Addr().String(),
		Source:     &SynthSource{Syn: testSynth(t, 4), TargetMAC: "m", Limit: 5},
	}
	if err := a.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server goroutine timed out")
	}
}

func TestAgentContextCancel(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go func() {
		conn, err := lis.Accept()
		if err != nil {
			return
		}
		// Read forever; never close.
		io.Copy(io.Discard, conn)
	}()

	ctx, cancel := context.WithCancel(context.Background())
	a := &Agent{
		APID:       1,
		ServerAddr: lis.Addr().String(),
		Source:     &SynthSource{Syn: testSynth(t, 5), TargetMAC: "m"}, // unlimited
		Interval:   10 * time.Millisecond,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- a.Run(ctx) }()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("cancelled agent returned nil")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("agent did not stop on cancel")
	}
}

// TestAgentRunWithRetry drops the agent's first two connections, then
// verifies reports flow once a healthy connection is finally accepted.
// (The protocol has no acknowledgements, so packets written into a dying
// socket are lost — the retry guarantee is liveness, not delivery.)
func TestAgentRunWithRetry(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()

	gotReport := make(chan struct{}, 1)
	go func() {
		dropped := 0
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			if dropped < 2 {
				dropped++
				conn.Close()
				continue
			}
			// Healthy connection: signal on the first CSI report, then
			// drain.
			go func() {
				defer conn.Close()
				signalled := false
				for {
					f, err := wire.ReadFrame(conn)
					if err != nil {
						return
					}
					if f.Type == wire.TypeCSIReport && !signalled {
						signalled = true
						select {
						case gotReport <- struct{}{}:
						default:
						}
					}
				}
			}()
			return
		}
	}()

	a := &Agent{
		APID:       2,
		ServerAddr: lis.Addr().String(),
		Source:     &SynthSource{Syn: testSynth(t, 6), TargetMAC: "m"}, // unlimited
		Interval:   5 * time.Millisecond,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- a.RunWithRetry(ctx, 10, 10*time.Millisecond) }()

	select {
	case <-gotReport:
		// Reconnect succeeded and the stream is flowing.
	case err := <-done:
		t.Fatalf("agent exited before delivering a report: %v", err)
	case <-time.After(8 * time.Second):
		t.Fatal("server never received the stream")
	}
	cancel()
	<-done
}

func TestAgentRunWithRetryGivesUp(t *testing.T) {
	a := &Agent{
		APID:        1,
		ServerAddr:  "127.0.0.1:1",
		Source:      &SynthSource{Syn: testSynth(t, 7), TargetMAC: "m", Limit: 1},
		DialTimeout: 200 * time.Millisecond,
	}
	ctx := context.Background()
	start := time.Now()
	if err := a.RunWithRetry(ctx, 3, 10*time.Millisecond); err == nil {
		t.Fatal("retry against a dead port succeeded")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("retries took too long")
	}
}
