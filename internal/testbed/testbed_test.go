package testbed

import (
	"math"
	"testing"
)

func TestOfficeDeployment(t *testing.T) {
	d := Office(1)
	if len(d.APs) != 6 {
		t.Fatalf("office has %d APs, want 6", len(d.APs))
	}
	if len(d.Targets) != 30 {
		t.Fatalf("office has %d targets, want 30", len(d.Targets))
	}
	for i, p := range d.Targets {
		if !d.Bounds.Contains(p) {
			t.Fatalf("target %d at %v outside bounds", i, p)
		}
	}
	// A multipath-rich office: every link resolves several paths.
	link := d.Link(0, 0)
	if len(link.Paths) < 3 {
		t.Fatalf("office link has only %d paths", len(link.Paths))
	}
}

func TestOfficeDeterministic(t *testing.T) {
	a := Office(7)
	b := Office(7)
	if len(a.Targets) != len(b.Targets) {
		t.Fatal("target counts differ for equal seeds")
	}
	for i := range a.Targets {
		if a.Targets[i] != b.Targets[i] {
			t.Fatalf("target %d differs: %v vs %v", i, a.Targets[i], b.Targets[i])
		}
	}
	// Same (AP, target) link must enumerate identical paths.
	la, lb := a.Link(2, 5), b.Link(2, 5)
	if len(la.Paths) != len(lb.Paths) {
		t.Fatal("link path counts differ")
	}
	for i := range la.Paths {
		if la.Paths[i] != lb.Paths[i] {
			t.Fatalf("path %d differs", i)
		}
	}
	// Different seeds give different layouts.
	c := Office(8)
	same := true
	for i := range a.Targets {
		if a.Targets[i] != c.Targets[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical targets")
	}
}

func TestBurstDeterministicAndValid(t *testing.T) {
	d := Office(3)
	b1, err := d.Burst(1, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := d.Burst(1, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(b1) != 5 {
		t.Fatalf("burst has %d packets", len(b1))
	}
	for i := range b1 {
		if err := b1[i].Validate(); err != nil {
			t.Fatalf("packet %d invalid: %v", i, err)
		}
		if b1[i].RSSIdBm != b2[i].RSSIdBm {
			t.Fatal("bursts not deterministic")
		}
		if b1[i].APID != 1 {
			t.Fatalf("packet has APID %d, want 1", b1[i].APID)
		}
		if b1[i].TargetMAC != TargetMAC(2) {
			t.Fatalf("packet has MAC %s", b1[i].TargetMAC)
		}
	}
}

func TestCorridorGeometry(t *testing.T) {
	d := Corridor(1)
	if len(d.APs) != 5 {
		t.Fatalf("corridor has %d APs, want 5", len(d.APs))
	}
	if len(d.Targets) != 25 {
		t.Fatalf("corridor has %d targets, want 25", len(d.Targets))
	}
	// All APs sit along the top wall facing down.
	for i, ap := range d.APs {
		if math.Abs(ap.Pos.Y-(d.Bounds.MaxY-0.2)) > 1e-9 {
			t.Fatalf("AP %d not on the side wall: %v", i, ap.Pos)
		}
		if math.Abs(ap.NormalAngle+math.Pi/2) > 1e-9 {
			t.Fatalf("AP %d normal %v, want −π/2", i, ap.NormalAngle)
		}
	}
}

func TestHighNLoSCondition(t *testing.T) {
	d := HighNLoS(1)
	if len(d.Targets) == 0 {
		t.Fatal("no NLoS targets generated")
	}
	if len(d.Targets) < 15 {
		t.Fatalf("only %d NLoS targets generated, want ≥15", len(d.Targets))
	}
	for i := range d.Targets {
		n := len(d.LoSAPs(i))
		if n > 2 {
			t.Fatalf("target %d has %d strong-direct APs, want ≤2", i, n)
		}
	}
}

func TestOfficeIsMostlyLoS(t *testing.T) {
	// Sanity contrast with HighNLoS: in the office, most targets have ≥3
	// strong-direct APs (the paper says typically 4–5).
	d := Office(1)
	good := 0
	for i := range d.Targets {
		if len(d.LoSAPs(i)) >= 3 {
			good++
		}
	}
	if good < len(d.Targets)*2/3 {
		t.Fatalf("only %d/%d office targets have ≥3 strong-direct APs", good, len(d.Targets))
	}
}

func TestGroundTruthAoAInRange(t *testing.T) {
	d := Office(1)
	for a := range d.APs {
		for ti := range d.Targets {
			aoa := d.GroundTruthAoA(a, ti)
			if aoa < -math.Pi/2-1e-9 || aoa > math.Pi/2+1e-9 {
				t.Fatalf("AoA %v outside ±π/2", aoa)
			}
		}
	}
}

func TestSubsetAPs(t *testing.T) {
	d := Office(1)
	s3 := d.SubsetAPs(0, 3)
	if len(s3) != 3 {
		t.Fatalf("subset size %d, want 3", len(s3))
	}
	seen := map[int]bool{}
	for _, a := range s3 {
		if a < 0 || a >= len(d.APs) || seen[a] {
			t.Fatalf("bad subset %v", s3)
		}
		seen[a] = true
	}
	// Deterministic.
	s3b := d.SubsetAPs(0, 3)
	for i := range s3 {
		if s3[i] != s3b[i] {
			t.Fatal("subset not deterministic")
		}
	}
	// k ≥ number of APs returns all.
	all := d.SubsetAPs(0, 99)
	if len(all) != len(d.APs) {
		t.Fatalf("oversized subset returned %d APs", len(all))
	}
}

func TestTargetMACFormat(t *testing.T) {
	if TargetMAC(0) != "02:00:00:00:00:00" {
		t.Fatalf("MAC(0) = %s", TargetMAC(0))
	}
	if TargetMAC(258) != "02:00:00:00:01:02" {
		t.Fatalf("MAC(258) = %s", TargetMAC(258))
	}
	if TargetMAC(1) == TargetMAC(2) {
		t.Fatal("MAC collision")
	}
}

func TestMixIndependence(t *testing.T) {
	// Different (ap, target) pairs must get different seeds.
	seen := map[int64]bool{}
	for a := 0; a < 6; a++ {
		for ti := 0; ti < 55; ti++ {
			s := mix(1, a, ti)
			if seen[s] {
				t.Fatalf("seed collision at (%d,%d)", a, ti)
			}
			seen[s] = true
		}
	}
}

func TestFloorPlanConversion(t *testing.T) {
	d := Office(1)
	fp := d.FloorPlan()
	if len(fp.APs) != len(d.APs) || len(fp.Targets) != len(d.Targets) {
		t.Fatalf("floor plan lost elements: %d/%d APs, %d/%d targets",
			len(fp.APs), len(d.APs), len(fp.Targets), len(d.Targets))
	}
	svg, err := fp.SVG()
	if err != nil {
		t.Fatal(err)
	}
	if len(svg) < 1000 {
		t.Fatalf("suspiciously small floor plan SVG (%d bytes)", len(svg))
	}
}
