// Package testbed builds the simulated deployments the evaluation runs on,
// mirroring the paper's Fig. 6 testbed: an indoor office region (16 m×10 m,
// six APs), corridor deployments with APs along one wall, and a high-NLoS
// region where targets have at most two APs in line of sight. Geometry is
// scripted so ground truth is exact; CSI comes from the sim package.
package testbed

import (
	"fmt"
	"math/rand"

	"spotfi/internal/csi"
	"spotfi/internal/geom"
	"spotfi/internal/locate"
	"spotfi/internal/rf"
	"spotfi/internal/sim"
	"spotfi/internal/viz"
)

// Deployment is one fully specified experiment scenario.
type Deployment struct {
	Name    string
	Env     *sim.Environment
	APs     []sim.AP
	Targets []geom.Point
	Bounds  locate.Bounds
	Band    rf.Band
	Array   rf.Array
	LinkCfg sim.LinkConfig
	Imp     sim.Impairments
	// Seed drives all per-link randomness deterministically.
	Seed int64
}

// mix derives a deterministic per-(ap, target) seed (splitmix64 finalizer).
func mix(seed int64, ap, target int) int64 {
	z := uint64(seed) ^ (uint64(ap+1) * 0x9E3779B97F4A7C15) ^ (uint64(target+1) * 0xBF58476D1CE4E5B9)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z & 0x7FFFFFFFFFFFFFFF)
}

// Link ray-traces the link from target t to AP a with deterministic
// per-link randomness.
func (d *Deployment) Link(a, t int) *sim.Link {
	rng := rand.New(rand.NewSource(mix(d.Seed, a, t)))
	return sim.NewLink(d.Env, d.APs[a], d.Targets[t], d.LinkCfg, rng)
}

// Burst synthesizes n packets for the (AP a, target t) link. The target's
// MAC encodes its index so server-side demultiplexing is exercised.
func (d *Deployment) Burst(a, t, n int) ([]*csi.Packet, error) {
	link := d.Link(a, t)
	rng := rand.New(rand.NewSource(mix(d.Seed+1, a, t)))
	syn, err := sim.NewSynthesizer(link, d.Band, d.Array, d.Imp, rng)
	if err != nil {
		return nil, fmt.Errorf("testbed: link AP%d→target%d: %w", a, t, err)
	}
	return syn.Burst(TargetMAC(t), n), nil
}

// TargetMAC returns the synthetic MAC address of target index t.
func TargetMAC(t int) string {
	return fmt.Sprintf("02:00:00:00:%02x:%02x", (t>>8)&0xff, t&0xff)
}

// LoSAPs returns the indices of APs with geometric line of sight to target
// t — the paper's NLoS definition (Sec. 4.4.1): an AP is NLoS when "a
// strong blocking object like a wall" obstructs the line joining target
// and AP.
func (d *Deployment) LoSAPs(t int) []int {
	var out []int
	for a := range d.APs {
		if d.Env.LoS(d.Targets[t], d.APs[a].Pos) {
			out = append(out, a)
		}
	}
	return out
}

// GroundTruthAoA returns the true direct-path AoA at AP a for target t.
func (d *Deployment) GroundTruthAoA(a, t int) float64 {
	return d.APs[a].AoATo(d.Targets[t])
}

// officeWalls returns the shared office shell: a 16×10 perimeter plus two
// partial interior walls, all reflective — a multipath-rich environment
// with 6–8 significant paths per link, as the paper reports for indoor
// offices.
func officeWalls() []sim.Wall {
	perim := 16.0
	height := 10.0
	mk := func(ax, ay, bx, by, loss, refl float64) sim.Wall {
		return sim.Wall{
			Seg:           geom.Segment{A: geom.Point{X: ax, Y: ay}, B: geom.Point{X: bx, Y: by}},
			LossDB:        loss,
			ReflectLossDB: refl,
		}
	}
	return []sim.Wall{
		mk(0, 0, perim, 0, 16, 3),
		mk(perim, 0, perim, height, 16, 3),
		mk(perim, height, 0, height, 16, 3),
		mk(0, height, 0, 0, 16, 3),
		// Interior partial walls (lab benches / partitions / metal
		// cabinets) — strong reflectors that also shadow parts of the
		// room.
		mk(6, 0, 6, 3.5, 10, 5),
		mk(10, 6.5, 10, 10, 10, 5),
		mk(2.5, 6, 4.5, 6, 9, 5),
		mk(12, 3, 14, 3, 9, 5),
	}
}

func officeScatterers() []sim.Scatterer {
	pts := []geom.Point{
		{X: 3, Y: 8}, {X: 12.5, Y: 2}, {X: 8, Y: 5.2}, {X: 14, Y: 8.5},
		{X: 2, Y: 2.5}, {X: 11, Y: 4.8}, {X: 5.5, Y: 7.5}, {X: 9, Y: 1.5},
	}
	out := make([]sim.Scatterer, len(pts))
	for i, p := range pts {
		out[i] = sim.Scatterer{Pos: p, LossDB: 10 + 2*float64(i%3)}
	}
	return out
}

// apsFacing returns APs at the given positions with array normals facing
// the room center.
func apsFacing(pos []geom.Point, center geom.Point) []sim.AP {
	aps := make([]sim.AP, len(pos))
	for i, p := range pos {
		aps[i] = sim.AP{ID: i, Pos: p, NormalAngle: center.Sub(p).Angle()}
	}
	return aps
}

// jitteredTargets generates count target positions on a jittered grid
// inside the bounds, keeping minDist clearance from every wall endpoint
// and AP, and accepting only points that pass the filter (nil = accept
// all).
func jitteredTargets(rng *rand.Rand, b locate.Bounds, count int, aps []sim.AP, filter func(geom.Point) bool) []geom.Point {
	var out []geom.Point
	const maxAttempts = 20000
	for attempt := 0; attempt < maxAttempts && len(out) < count; attempt++ {
		p := geom.Point{
			X: b.MinX + 0.8 + (b.MaxX-b.MinX-1.6)*rng.Float64(),
			Y: b.MinY + 0.8 + (b.MaxY-b.MinY-1.6)*rng.Float64(),
		}
		tooClose := false
		for _, ap := range aps {
			if p.Dist(ap.Pos) < 1.0 {
				tooClose = true
				break
			}
		}
		for _, q := range out {
			if p.Dist(q) < 0.7 {
				tooClose = true
				break
			}
		}
		if tooClose {
			continue
		}
		if filter != nil && !filter(p) {
			continue
		}
		out = append(out, p)
	}
	return out
}

// Office builds the indoor-office deployment of Sec. 4.3.1: a 16 m×10 m
// multipath-rich region with six APs surrounding the targets — the
// scenario ArrayTrack and Ubicarse were evaluated in.
func Office(seed int64) *Deployment {
	bounds := locate.Bounds{MinX: 0, MinY: 0, MaxX: 16, MaxY: 10}
	center := geom.Point{X: 8, Y: 5}
	aps := apsFacing([]geom.Point{
		{X: 0.4, Y: 0.4}, {X: 15.6, Y: 0.4}, {X: 0.4, Y: 9.6},
		{X: 15.6, Y: 9.6}, {X: 8, Y: 0.3}, {X: 8, Y: 9.7},
	}, center)
	env := &sim.Environment{Walls: officeWalls(), Scatterers: officeScatterers()}
	rng := rand.New(rand.NewSource(seed))
	targets := jitteredTargets(rng, bounds, 30, aps, nil)
	return &Deployment{
		Name:    "office",
		Env:     env,
		APs:     aps,
		Targets: targets,
		Bounds:  bounds,
		Band:    rf.DefaultBand(),
		Array:   rf.DefaultArray(rf.DefaultBand()),
		LinkCfg: sim.DefaultLinkConfig(),
		Imp:     sim.DefaultImpairments(),
		Seed:    seed,
	}
}

// Corridor builds the corridor deployment of Sec. 4.3.3: a long narrow
// strip with all APs along one side wall, producing correlated AoA
// measurements.
func Corridor(seed int64) *Deployment {
	length, width := 30.0, 2.5
	bounds := locate.Bounds{MinX: 0, MinY: 0, MaxX: length, MaxY: width}
	mk := func(ax, ay, bx, by float64) sim.Wall {
		return sim.Wall{
			Seg:           geom.Segment{A: geom.Point{X: ax, Y: ay}, B: geom.Point{X: bx, Y: by}},
			LossDB:        16,
			ReflectLossDB: 4, // narrow corridors are strong waveguides
		}
	}
	env := &sim.Environment{
		Walls: []sim.Wall{
			mk(0, 0, length, 0),
			mk(0, width, length, width),
			mk(0, 0, 0, width),
			mk(length, 0, length, width),
		},
		Scatterers: []sim.Scatterer{
			{Pos: geom.Point{X: 7, Y: 0.4}, LossDB: 14},
			{Pos: geom.Point{X: 18, Y: 2.1}, LossDB: 14},
			{Pos: geom.Point{X: 25, Y: 0.5}, LossDB: 15},
		},
	}
	// Five APs along the top wall, facing across the corridor.
	var apPos []geom.Point
	for i := 0; i < 5; i++ {
		apPos = append(apPos, geom.Point{X: 3 + 6*float64(i), Y: width - 0.2})
	}
	aps := make([]sim.AP, len(apPos))
	for i, p := range apPos {
		aps[i] = sim.AP{ID: i, Pos: p, NormalAngle: -1.5707963267948966} // facing −Y
	}
	rng := rand.New(rand.NewSource(seed))
	targets := jitteredTargets(rng, bounds, 25, aps, nil)
	return &Deployment{
		Name:    "corridor",
		Env:     env,
		APs:     aps,
		Targets: targets,
		Bounds:  bounds,
		Band:    rf.DefaultBand(),
		Array:   rf.DefaultArray(rf.DefaultBand()),
		LinkCfg: sim.DefaultLinkConfig(),
		Imp:     sim.DefaultImpairments(),
		Seed:    seed,
	}
}

// HighNLoS builds the stress deployment of Sec. 4.3.2: interior walls
// partition the office into rooms so that every target has at most two
// APs with a strong direct path.
func HighNLoS(seed int64) *Deployment {
	bounds := locate.Bounds{MinX: 0, MinY: 0, MaxX: 16, MaxY: 10}
	center := geom.Point{X: 8, Y: 5}
	aps := apsFacing([]geom.Point{
		{X: 0.4, Y: 0.4}, {X: 15.6, Y: 0.4}, {X: 0.4, Y: 9.6},
		{X: 15.6, Y: 9.6}, {X: 8, Y: 0.3}, {X: 8, Y: 9.7},
	}, center)
	walls := officeWalls()
	mk := func(ax, ay, bx, by float64) sim.Wall {
		return sim.Wall{
			Seg:           geom.Segment{A: geom.Point{X: ax, Y: ay}, B: geom.Point{X: bx, Y: by}},
			LossDB:        13,
			ReflectLossDB: 7,
		}
	}
	// Room partitions with door gaps.
	walls = append(walls,
		mk(5.3, 0, 5.3, 4.2),
		mk(5.3, 5.4, 5.3, 10),
		mk(10.7, 0, 10.7, 4.2),
		mk(10.7, 5.4, 10.7, 10),
		mk(0, 5, 4.4, 5),
		mk(6.2, 5, 9.8, 5),
		mk(11.6, 5, 16, 5),
	)
	// Doorways funnel most cross-room energy: a blocked direct path is
	// far weaker than the re-radiated path through the opening, which
	// arrives from the doorway's direction rather than the target's —
	// the effect that makes NLoS AoA hard (Sec. 4.3.2).
	scatterers := append(officeScatterers(),
		sim.Scatterer{Pos: geom.Point{X: 5.3, Y: 4.8}, LossDB: 5},
		sim.Scatterer{Pos: geom.Point{X: 10.7, Y: 4.8}, LossDB: 5},
	)
	env := &sim.Environment{Walls: walls, Scatterers: scatterers}

	d := &Deployment{
		Name:    "high-nlos",
		Env:     env,
		APs:     aps,
		Bounds:  bounds,
		Band:    rf.DefaultBand(),
		Array:   rf.DefaultArray(rf.DefaultBand()),
		LinkCfg: sim.DefaultLinkConfig(),
		Imp:     sim.DefaultImpairments(),
		Seed:    seed,
	}
	// Keep only positions with ≤2 line-of-sight APs (and ≥1, so the
	// problem stays solvable).
	rng := rand.New(rand.NewSource(seed))
	filter := func(p geom.Point) bool {
		los := 0
		for a := range aps {
			if env.LoS(p, aps[a].Pos) {
				los++
			}
		}
		return los >= 1 && los <= 2
	}
	d.Targets = jitteredTargets(rng, bounds, 23, aps, filter)
	return d
}

// SubsetAPs returns a deterministic pseudo-random subset of k AP indices
// for target t — used by the deployment-density experiment (Fig. 9a).
func (d *Deployment) SubsetAPs(t, k int) []int {
	if k >= len(d.APs) {
		out := make([]int, len(d.APs))
		for i := range out {
			out[i] = i
		}
		return out
	}
	rng := rand.New(rand.NewSource(mix(d.Seed+2, 0, t)))
	perm := rng.Perm(len(d.APs))
	out := append([]int(nil), perm[:k]...)
	return out
}

// FloorPlan renders the deployment as a Fig. 6-style map.
func (d *Deployment) FloorPlan() *viz.FloorPlan {
	fp := &viz.FloorPlan{
		Title: fmt.Sprintf("%s deployment (%d APs, %d targets)", d.Name, len(d.APs), len(d.Targets)),
		MinX:  d.Bounds.MinX, MinY: d.Bounds.MinY,
		MaxX: d.Bounds.MaxX, MaxY: d.Bounds.MaxY,
	}
	for _, w := range d.Env.Walls {
		fp.Walls = append(fp.Walls, [4]float64{w.Seg.A.X, w.Seg.A.Y, w.Seg.B.X, w.Seg.B.Y})
	}
	for _, s := range d.Env.Scatterers {
		fp.Scatterers = append(fp.Scatterers, [2]float64{s.Pos.X, s.Pos.Y})
	}
	for _, ap := range d.APs {
		fp.APs = append(fp.APs, [3]float64{ap.Pos.X, ap.Pos.Y, ap.NormalAngle})
	}
	for _, t := range d.Targets {
		fp.Targets = append(fp.Targets, [2]float64{t.X, t.Y})
	}
	return fp
}
