package dpath

import (
	"math"
	"math/rand"
	"testing"

	"spotfi/internal/geom"
	"spotfi/internal/music"
)

// synthObservations builds per-packet estimates with a tight direct path
// and jittery indirect paths, mimicking the super-resolution output over a
// burst of packets (the structure of Fig. 5c).
func synthObservations(rng *rand.Rand, packets int) ([][]music.PathEstimate, float64) {
	directAoA := geom.Rad(12)
	directToF := 10e-9
	out := make([][]music.PathEstimate, packets)
	for i := range out {
		out[i] = []music.PathEstimate{
			{ // direct: tight, small ToF, modest power
				AoA:   directAoA + rng.NormFloat64()*geom.Rad(0.4),
				ToF:   directToF + rng.NormFloat64()*0.4e-9,
				Power: 50 + rng.Float64()*5,
			},
			{ // strong reflection: jittery, larger ToF, HIGHEST power
				AoA:   geom.Rad(-35) + rng.NormFloat64()*geom.Rad(3),
				ToF:   45e-9 + rng.NormFloat64()*4e-9,
				Power: 90 + rng.Float64()*10,
			},
			{ // weak scatter: very jittery
				AoA:   geom.Rad(55) + rng.NormFloat64()*geom.Rad(5),
				ToF:   80e-9 + rng.NormFloat64()*6e-9,
				Power: 20 + rng.Float64()*5,
			},
		}
	}
	return out, directAoA
}

func TestIdentifyPicksDirectPath(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	obs, truth := synthObservations(rng, 40)
	res, err := Identify(obs, DefaultConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	best, ok := res.Best()
	if !ok {
		t.Fatal("no candidates")
	}
	if geom.Deg(math.Abs(best.AoA-truth)) > 2 {
		t.Fatalf("SpotFi selection picked AoA %v°, want ≈12°", geom.Deg(best.AoA))
	}
}

func TestIdentifyCandidatesSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	obs, _ := synthObservations(rng, 30)
	res, err := Identify(obs, DefaultConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Candidates); i++ {
		if res.Candidates[i].Likelihood > res.Candidates[i-1].Likelihood {
			t.Fatal("candidates not sorted by likelihood")
		}
	}
	var total int
	for _, c := range res.Candidates {
		total += c.Count
	}
	if total != 30*3 {
		t.Fatalf("candidate counts sum to %d, want 90", total)
	}
}

func TestMinToFSelectsSmallestToF(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	obs, truth := synthObservations(rng, 40)
	res, err := Identify(obs, DefaultConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	c, ok := res.MinToF()
	if !ok {
		t.Fatal("no candidates")
	}
	// The direct path has the smallest ToF in this synthetic setup.
	if geom.Deg(math.Abs(c.AoA-truth)) > 2 {
		t.Fatalf("min-ToF picked AoA %v°, want ≈12°", geom.Deg(c.AoA))
	}
	for _, other := range res.Candidates {
		if other.ToF < c.ToF-1e-12 {
			t.Fatal("MinToF did not return the smallest-ToF candidate")
		}
	}
}

func TestMaxPowerSelectsStrongestPeak(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	obs, truth := synthObservations(rng, 40)
	res, err := Identify(obs, DefaultConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	c, ok := res.MaxPower()
	if !ok {
		t.Fatal("no candidates")
	}
	// The reflection is the most powerful path here — CUPID gets it wrong,
	// which is exactly the failure mode Fig. 8b shows.
	if geom.Deg(math.Abs(c.AoA-truth)) < 10 {
		t.Fatalf("max-power unexpectedly picked the direct path (%v°)", geom.Deg(c.AoA))
	}
	if math.Abs(geom.Deg(c.AoA)-(-35)) > 5 {
		t.Fatalf("max-power should pick the strong reflection near −35°, got %v°", geom.Deg(c.AoA))
	}
}

func TestOracleSelectsClosest(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	obs, truth := synthObservations(rng, 40)
	res, err := Identify(obs, DefaultConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	c, ok := res.Oracle(truth)
	if !ok {
		t.Fatal("no candidates")
	}
	for _, other := range res.Candidates {
		if math.Abs(other.AoA-truth) < math.Abs(c.AoA-truth)-1e-12 {
			t.Fatal("oracle did not return the closest candidate")
		}
	}
}

func TestIdentifyTightClusterBeatsLooseWithSmallerToF(t *testing.T) {
	// A spurious very-low-ToF but extremely jittery cluster must lose to
	// the tight direct cluster: the variance terms of Eq. 8 dominate.
	rng := rand.New(rand.NewSource(76))
	packets := 40
	obs := make([][]music.PathEstimate, packets)
	for i := range obs {
		obs[i] = []music.PathEstimate{
			{ // tight direct path at moderate ToF
				AoA:   geom.Rad(20) + rng.NormFloat64()*geom.Rad(0.3),
				ToF:   30e-9 + rng.NormFloat64()*0.3e-9,
				Power: 50,
			},
			{ // spurious estimates at tiny ToF but scattered everywhere
				AoA:   geom.Rad(-60) + rng.NormFloat64()*geom.Rad(18),
				ToF:   5e-9 + math.Abs(rng.NormFloat64())*20e-9,
				Power: 30,
			},
		}
	}
	res, err := Identify(obs, DefaultConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	best, _ := res.Best()
	if geom.Deg(math.Abs(best.AoA-geom.Rad(20))) > 3 {
		t.Fatalf("likelihood picked the jittery cluster: AoA %v°", geom.Deg(best.AoA))
	}
}

func TestIdentifyErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	if _, err := Identify(nil, DefaultConfig(), rng); err == nil {
		t.Fatal("empty observations accepted")
	}
	if _, err := Identify([][]music.PathEstimate{{}, {}}, DefaultConfig(), rng); err == nil {
		t.Fatal("all-empty packets accepted")
	}
}

func TestIdentifySinglePacket(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	obs := [][]music.PathEstimate{{
		{AoA: 0.1, ToF: 10e-9, Power: 5},
		{AoA: -0.5, ToF: 50e-9, Power: 8},
	}}
	res, err := Identify(obs, DefaultConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) != 2 {
		t.Fatalf("got %d candidates from 2 single estimates", len(res.Candidates))
	}
}

func TestEmptyResultSelectors(t *testing.T) {
	r := &Result{}
	if _, ok := r.Best(); ok {
		t.Fatal("Best on empty result")
	}
	if _, ok := r.MinToF(); ok {
		t.Fatal("MinToF on empty result")
	}
	if _, ok := r.MaxPower(); ok {
		t.Fatal("MaxPower on empty result")
	}
	if _, ok := r.Oracle(0); ok {
		t.Fatal("Oracle on empty result")
	}
}

func TestIdentifyAutoK(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	obs, truth := synthObservations(rng, 30)
	cfg := DefaultConfig()
	cfg.AutoK = true
	cfg.Cluster.K = 7
	res, err := Identify(obs, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Three synthetic paths: auto-K should find roughly that many
	// candidates (eligibility filtering may drop weak ones).
	if len(res.Candidates) < 2 || len(res.Candidates) > 5 {
		t.Fatalf("auto-K produced %d candidates", len(res.Candidates))
	}
	best, ok := res.Best()
	if !ok {
		t.Fatal("no best candidate")
	}
	if geom.Deg(math.Abs(best.AoA-truth)) > 3 {
		t.Fatalf("auto-K selection error %.1f°", geom.Deg(math.Abs(best.AoA-truth)))
	}
}

func TestMargin(t *testing.T) {
	cases := []struct {
		name string
		r    Result
		want float64
	}{
		{"none", Result{}, 0},
		{"single", Result{Candidates: []Candidate{{Likelihood: 2}}}, 1},
		{"decisive", Result{Candidates: []Candidate{{Likelihood: 10}, {Likelihood: 1}}}, 0.9},
		{"tied", Result{Candidates: []Candidate{{Likelihood: 5}, {Likelihood: 5}}}, 0},
		{"zero-top", Result{Candidates: []Candidate{{Likelihood: 0}, {Likelihood: 0}}}, 0},
	}
	for _, tc := range cases {
		if got := tc.r.Margin(); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("%s: Margin() = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// synthAoAOnly mimics ESPRIT output over a burst: AoA estimates with the
// ToF axis pinned at zero (not observable by a search-free estimator).
func synthAoAOnly(rng *rand.Rand, packets int) ([][]music.PathEstimate, float64) {
	directAoA := geom.Rad(12)
	out := make([][]music.PathEstimate, packets)
	for i := range out {
		out[i] = []music.PathEstimate{
			{AoA: directAoA + rng.NormFloat64()*geom.Rad(0.4), Power: 50 + rng.Float64()*5},
			{AoA: geom.Rad(-35) + rng.NormFloat64()*geom.Rad(4), Power: 90 + rng.Float64()*10},
			{AoA: geom.Rad(55) + rng.NormFloat64()*geom.Rad(6), Power: 20 + rng.Float64()*5},
		}
	}
	return out, directAoA
}

// TestIdentifyAoAOnly exercises the degenerate-ToF path: clustering must
// fall back to AoA alone, the Eq. 8 ToF-mean term must be zeroed (not
// charged at the normalized midpoint 0.5), and the tight direct cluster
// must still win.
func TestIdentifyAoAOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	obs, truth := synthAoAOnly(rng, 40)
	cfg := DefaultConfig()
	res, err := Identify(obs, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	best, ok := res.Best()
	if !ok {
		t.Fatal("no candidates")
	}
	if geom.Deg(math.Abs(best.AoA-truth)) > 2 {
		t.Fatalf("AoA-only selection picked %v°, want ≈12°", geom.Deg(best.AoA))
	}
	for i, c := range res.Candidates {
		if c.NormToF != 0 {
			t.Fatalf("candidate %d NormToF = %v, want 0 on a constant ToF axis", i, c.NormToF)
		}
		if c.ToF != 0 {
			t.Fatalf("candidate %d ToF = %v, want the input's constant 0", i, c.ToF)
		}
		// With the ToF terms inert, the likelihood must reduce to the
		// count/AoA-variance form exactly.
		want := math.Exp(cfg.Weights.WCount*float64(c.Count) - cfg.Weights.WAoAVar*c.AoAVar)
		if math.Abs(c.Likelihood-want) > 1e-12*want {
			t.Fatalf("candidate %d likelihood %v, want %v (ToF terms should be inert)", i, c.Likelihood, want)
		}
	}
}

// TestIdentifyAoAOnlyNonzeroConstant pins the same behavior when the
// constant ToF is nonzero (e.g. a calibration offset applied uniformly):
// candidates echo the constant, and no mid-burst delay penalty appears.
func TestIdentifyAoAOnlyNonzeroConstant(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	obs, _ := synthAoAOnly(rng, 20)
	const off = 25e-9
	for _, pkt := range obs {
		for i := range pkt {
			pkt[i].ToF = off
		}
	}
	res, err := Identify(obs, DefaultConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range res.Candidates {
		if c.NormToF != 0 {
			t.Fatalf("candidate %d NormToF = %v, want 0", i, c.NormToF)
		}
		if math.Abs(c.ToF-off) > 1e-18 {
			t.Fatalf("candidate %d ToF = %v, want %v", i, c.ToF, off)
		}
	}
}
