// Package dpath identifies the direct propagation path among SpotFi's
// per-packet (AoA, ToF) estimates (paper Sec. 3.2): it pools estimates
// from consecutive packets, clusters them in the normalized (AoA, ToF)
// plane, scores each cluster with the likelihood metric of Eq. 8, and
// offers the selection baselines the paper compares against (LTEye's
// min-ToF, CUPID's max-power, and the oracle).
package dpath

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"spotfi/internal/cluster"
	"spotfi/internal/music"
)

// Weights are the Eq. 8 scale factors: likelihood_k =
// exp(WCount·C̄_k − WAoAVar·σ̄θ_k − WToFVar·σ̄τ_k − WToFMean·τ̄_k).
// Variances and the mean ToF are measured in the normalized [0,1] feature
// space, counts in points.
type Weights struct {
	WCount   float64
	WAoAVar  float64
	WToFVar  float64
	WToFMean float64
}

// DefaultWeights balances the terms for typical bursts of 10–170 packets.
// The values were calibrated on the simulated testbed by sweeping each
// weight against the oracle selection error (see the weight-sensitivity
// ablation bench).
func DefaultWeights() Weights {
	return Weights{WCount: 0.06, WAoAVar: 300, WToFVar: 300, WToFMean: 5}
}

// Score computes the Eq. 8 likelihood of a candidate under weights w, with
// σ̄ and τ̄ in normalized units so the weights are scale-free:
// exp(WCount·C̄ − WAoAVar·σ̄θ − WToFVar·σ̄τ − WToFMean·τ̄).
func (w Weights) Score(c Candidate) float64 {
	return math.Exp(
		w.WCount*float64(c.Count) -
			w.WAoAVar*c.AoAVar -
			w.WToFVar*c.ToFVar -
			w.WToFMean*c.NormToF)
}

// Config controls identification.
type Config struct {
	Cluster cluster.Config
	Weights Weights
	// ToFWindowS drops per-packet estimates whose ToF is further than
	// this from the burst's median ToF before clustering. Indoor excess
	// path delays are bounded (≈66 ns for 20 m of extra travel), so
	// estimates far outside the bulk are ghost peaks; left in, a
	// repeatable ghost at an extreme ToF both stretches the normalized
	// ToF axis and manufactures a zero-variance "earliest" cluster.
	// Zero disables the filter.
	ToFWindowS float64
	// AutoK selects the cluster count per burst by silhouette score over
	// [3, Cluster.K] instead of using Cluster.K directly — useful when
	// the number of significant paths varies across links.
	AutoK bool
	// MinClusterFrac is the minimum fraction of packets a cluster must
	// cover to be a direct-path candidate (floored at 2 points): a
	// cluster seen in one packet has degenerate zero variance and would
	// otherwise outscore every real path. This implements the paper's
	// count-term insight ("a spurious cluster ... is likely to have
	// [fewer] measurements") as a hard eligibility floor. Ineligible
	// clusters are dropped unless nothing survives.
	MinClusterFrac float64
}

// DefaultConfig returns the paper's configuration (5 clusters).
func DefaultConfig() Config {
	return Config{
		Cluster:        cluster.DefaultConfig(),
		Weights:        DefaultWeights(),
		ToFWindowS:     80e-9,
		MinClusterFrac: 0.2,
	}
}

// Candidate is one clustered path hypothesis.
type Candidate struct {
	// AoA and ToF are the cluster means in radians and seconds.
	AoA float64
	ToF float64
	// Likelihood is the Eq. 8 direct-path likelihood.
	Likelihood float64
	// Count is the number of per-packet estimates in the cluster.
	Count int
	// AoAVar and ToFVar are population variances in normalized units.
	AoAVar, ToFVar float64
	// NormToF is the cluster's mean ToF in the normalized [0,1] feature
	// space — the τ̄ that enters Eq. 8 (0 = earliest path in the burst).
	NormToF float64
	// MaxPower is the largest MUSIC pseudo-spectrum value among member
	// estimates (the CUPID selection criterion).
	MaxPower float64
}

// Result is the ranked outcome of direct-path identification for one AP.
type Result struct {
	// Candidates are sorted by descending likelihood.
	Candidates []Candidate
}

// Best returns the highest-likelihood candidate — SpotFi's direct path.
func (r *Result) Best() (Candidate, bool) {
	if len(r.Candidates) == 0 {
		return Candidate{}, false
	}
	return r.Candidates[0], true
}

// Margin returns the top-two likelihood margin 1 − l₂/l₁ ∈ [0,1]: how
// decisively the best candidate beat the runner-up under Eq. 8. A single
// candidate is maximally decisive (1); no candidates score 0.
func (r *Result) Margin() float64 {
	switch {
	case len(r.Candidates) == 0:
		return 0
	case len(r.Candidates) == 1:
		return 1
	}
	l1 := r.Candidates[0].Likelihood
	if l1 <= 0 {
		return 0
	}
	m := 1 - r.Candidates[1].Likelihood/l1
	if m < 0 {
		return 0
	}
	return m
}

// MinToF returns the candidate with the smallest mean ToF — the LTEye
// selection rule (valid because STO shifts all paths of a packet equally).
func (r *Result) MinToF() (Candidate, bool) {
	if len(r.Candidates) == 0 {
		return Candidate{}, false
	}
	best := r.Candidates[0]
	for _, c := range r.Candidates[1:] {
		if c.ToF < best.ToF {
			best = c
		}
	}
	return best, true
}

// MaxPower returns the candidate containing the single strongest MUSIC
// spectrum peak — the CUPID selection rule.
func (r *Result) MaxPower() (Candidate, bool) {
	if len(r.Candidates) == 0 {
		return Candidate{}, false
	}
	best := r.Candidates[0]
	for _, c := range r.Candidates[1:] {
		if c.MaxPower > best.MaxPower {
			best = c
		}
	}
	return best, true
}

// Oracle returns the candidate whose AoA is closest to the ground-truth
// direct-path AoA — the upper bound the paper measures selection schemes
// against.
func (r *Result) Oracle(truthAoA float64) (Candidate, bool) {
	if len(r.Candidates) == 0 {
		return Candidate{}, false
	}
	best := r.Candidates[0]
	for _, c := range r.Candidates[1:] {
		if math.Abs(c.AoA-truthAoA) < math.Abs(best.AoA-truthAoA) {
			best = c
		}
	}
	return best, true
}

// Identify pools per-packet path estimates, clusters them, and scores the
// clusters. perPacket[i] holds the super-resolution estimates from packet
// i; empty packets are skipped. rng seeds clustering; pass a deterministic
// source for reproducible output.
//
// AoA-only input — every estimate carrying the same ToF, as produced by
// search-free estimators like ESPRIT where ToF is not observable — is
// supported: the degenerate ToF axis collapses under normalization
// (cluster.Normalize maps a constant axis to 0.5), so clustering runs on
// AoA alone, and the Eq. 8 ToF-mean term is zeroed rather than charging
// every cluster a phantom mid-burst delay. Ranking is unaffected either
// way (the term would be a common factor), but absolute likelihoods stay
// comparable with joint (AoA, ToF) runs. MinToF is meaningless on such
// input: every candidate reports the same ToF.
func Identify(perPacket [][]music.PathEstimate, cfg Config, rng *rand.Rand) (*Result, error) {
	var aoas, tofs, powers []float64
	packets := 0
	for _, pkt := range perPacket {
		if len(pkt) > 0 {
			packets++
		}
		for _, p := range pkt {
			aoas = append(aoas, p.AoA)
			tofs = append(tofs, p.ToF)
			powers = append(powers, p.Power)
		}
	}
	if len(aoas) == 0 {
		return nil, fmt.Errorf("dpath: no path estimates to identify from")
	}

	// Ghost-peak rejection: drop estimates whose ToF is implausibly far
	// from the burst's bulk. Skipped if it would discard half the data.
	if cfg.ToFWindowS > 0 {
		med := medianOf(tofs)
		var fa, ft, fp []float64
		for i := range tofs {
			if math.Abs(tofs[i]-med) <= cfg.ToFWindowS {
				fa = append(fa, aoas[i])
				ft = append(ft, tofs[i])
				fp = append(fp, powers[i])
			}
		}
		if len(ft)*2 >= len(tofs) {
			aoas, tofs, powers = fa, ft, fp
		}
	}
	pts, norm, err := cluster.Normalize(aoas, tofs)
	if err != nil {
		return nil, err
	}
	var clusters []cluster.Cluster
	var err2 error
	if cfg.AutoK && cfg.Cluster.K > 3 && len(pts) > 3 {
		clusters, _, err2 = cluster.KMeansAuto(pts, cfg.Cluster, 3, cfg.Cluster.K, rng)
	} else {
		clusters, err2 = cluster.KMeans(pts, cfg.Cluster, rng)
	}
	if err2 != nil {
		return nil, err2
	}

	// A constant ToF axis (AoA-only estimates) carries no earliest-path
	// information: every cluster would sit at the normalized midpoint 0.5
	// and Eq. 8 would charge each one the same phantom delay.
	aoaOnly := norm.ScaleY == 0

	res := &Result{Candidates: make([]Candidate, 0, len(clusters))}
	for _, cl := range clusters {
		cand := Candidate{
			AoA:     norm.DenormX(cl.Mean.X),
			ToF:     norm.DenormY(cl.Mean.Y),
			Count:   cl.Count(),
			AoAVar:  cl.VarX,
			ToFVar:  cl.VarY,
			NormToF: cl.Mean.Y,
		}
		if aoaOnly {
			cand.NormToF = 0
		}
		for _, m := range cl.Members {
			if powers[m] > cand.MaxPower {
				cand.MaxPower = powers[m]
			}
		}
		cand.Likelihood = cfg.Weights.Score(cand)
		res.Candidates = append(res.Candidates, cand)
	}

	// Population floor: a direct-path candidate must recur across packets.
	if cfg.MinClusterFrac > 0 {
		minCount := int(math.Ceil(cfg.MinClusterFrac * float64(packets)))
		if minCount < 2 {
			minCount = 2
		}
		var kept []Candidate
		for _, c := range res.Candidates {
			if c.Count >= minCount {
				kept = append(kept, c)
			}
		}
		if len(kept) > 0 {
			res.Candidates = kept
		}
	}
	sortByLikelihood(res.Candidates)
	return res, nil
}

func medianOf(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s)%2 == 1 {
		return s[len(s)/2]
	}
	return (s[len(s)/2-1] + s[len(s)/2]) / 2
}

func sortByLikelihood(cands []Candidate) {
	// Insertion sort: at most K=5 candidates.
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && cands[j].Likelihood > cands[j-1].Likelihood; j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
}
