package music

import (
	"math"
	"math/cmplx"

	"spotfi/internal/cmat"
	"spotfi/internal/csi"
	"spotfi/internal/rf"
)

// Phi returns Φ(θ) = exp(−j·2π·d·sin(θ)·f/c), the phase factor between
// adjacent antennas for a path arriving at angle θ (Eq. 1).
//
//spotfi:noalloc
func Phi(theta float64, array rf.Array, band rf.Band) complex128 {
	return cmplx.Exp(complex(0, -2*math.Pi*array.SpacingM*math.Sin(theta)*band.CarrierHz/rf.SpeedOfLight))
}

// Omega returns Ω(τ) = exp(−j·2π·f_δ·τ), the phase factor between adjacent
// subcarriers for a path with time of flight τ (Eq. 6).
//
//spotfi:noalloc
func Omega(tof float64, band rf.Band) complex128 {
	return cmplx.Exp(complex(0, -2*math.Pi*band.SubcarrierSpacingHz*tof))
}

// SteeringVector evaluates the joint steering vector ā(θ, τ) of Eq. 7 for a
// (sub)array of antennas × subcarriers sensors, antenna-major:
// element (a·subcarriers + s) = Φ(θ)^a · Ω(τ)^s.
func SteeringVector(theta, tof float64, antennas, subcarriers int, array rf.Array, band rf.Band) []complex128 {
	phi := Phi(theta, array, band)
	omega := Omega(tof, band)
	phiPow := geometricSeries(phi, antennas)
	omegaPow := geometricSeries(omega, subcarriers)
	return cmat.Kron(phiPow, omegaPow)
}

// geometricSeries returns [1, z, z², …, z^(n−1)]. Powers are computed in
// polar form — z^i = |z|^i·e^{i·arg(z)·i} — rather than by repeated
// multiplication: the accumulated product drifts in both phase and
// magnitude by an ulp per step, which for the steering powers (|z| = 1)
// slowly walks the vector off the unit circle as n grows. The closed form
// keeps element n exact to within one rounding of the sine/cosine.
func geometricSeries(z complex128, n int) []complex128 {
	out := make([]complex128, n)
	if n == 0 {
		return out
	}
	out[0] = 1
	r, phase := cmplx.Polar(z)
	if math.Abs(r-1) < 1e-12 {
		// Unit-modulus input (every steering factor is e^{jφ}, though
		// cmplx.Exp delivers |z| = 1 only to within an ulp — which r^i
		// would amplify i-fold): stay exactly on the unit circle.
		for i := 1; i < n; i++ {
			out[i] = cmplx.Rect(1, phase*float64(i))
		}
		return out
	}
	for i := 1; i < n; i++ {
		out[i] = cmplx.Rect(math.Pow(r, float64(i)), phase*float64(i))
	}
	return out
}

// SmoothCSI builds the smoothed CSI measurement matrix of Fig. 4: rows are
// the sensors of a subAnt×subSub window (antenna-major), columns are all
// shifted placements of that window inside the full antennas×subcarriers
// grid. For the paper's 3×30 system with a 2×15 window this yields a 30×32
// matrix whose columns are independent linear combinations of the same
// steering vectors, which is what lets MUSIC resolve more paths than
// antennas.
func SmoothCSI(c *csi.Matrix, subAnt, subSub int) *cmat.Matrix {
	return SmoothCSIInto(c, subAnt, subSub, nil)
}

// SmoothCSIInto is SmoothCSI writing into dst's storage when its capacity
// suffices (see cmat.Reshape); pass nil to allocate. It returns the matrix
// actually used.
//
//spotfi:noalloc
func SmoothCSIInto(c *csi.Matrix, subAnt, subSub int, dst *cmat.Matrix) *cmat.Matrix {
	m, n := c.Antennas(), c.Subcarriers()
	antShifts := m - subAnt + 1
	subShifts := n - subSub + 1
	if antShifts < 1 || subShifts < 1 {
		panic("music: smoothing window larger than CSI matrix")
	}
	rows := subAnt * subSub
	cols := antShifts * subShifts
	x := cmat.Reshape(dst, rows, cols)
	col := 0
	for b := 0; b < antShifts; b++ {
		for t := 0; t < subShifts; t++ {
			for a := 0; a < subAnt; a++ {
				src := c.Values[a+b]
				for s := 0; s < subSub; s++ {
					x.Set(a*subSub+s, col, src[s+t])
				}
			}
			col++
		}
	}
	return x
}
