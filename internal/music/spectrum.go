package music

import (
	"fmt"
	"math"
	"math/cmplx"

	"spotfi/internal/cmat"
	"spotfi/internal/csi"
)

// Spectrum is an evaluated 2-D MUSIC pseudo-spectrum P(θ, τ).
type Spectrum struct {
	// Thetas are the AoA grid points in radians.
	Thetas []float64
	// Taus are the ToF grid points in seconds.
	Taus []float64
	// P[i][j] is the pseudo-spectrum at (Thetas[i], Taus[j]).
	P [][]float64
}

// Estimator runs SpotFi's joint AoA/ToF super-resolution on single-packet
// CSI matrices.
//
// Concurrency contract: an Estimator owns mutable workspace arenas (the
// smoothed-CSI matrix, the eigendecomposition scratch, the spectrum and
// per-column caches), so it is single-goroutine — one goroutine per
// Estimator at a time. The expensive pure-geometry precomputation (grids
// and steering powers) lives in a shared read-only steeringTable obtained
// from the package steering cache, so constructing extra estimators for
// extra goroutines is cheap; callers that fan out across goroutines should
// keep a pool of estimators (see the localizer's sync.Pool).
//
//spotfi:arena
type Estimator struct {
	p   Params
	tab *steeringTable

	// thetas and taus alias the shared table's grids (read-only).
	thetas []float64
	taus   []float64

	// Workspace arenas, reused across calls. Everything below is reset or
	// overwritten by each estimate; nothing escapes to callers.
	smooth *cmat.Matrix
	gram   *cmat.Matrix
	eigWS  cmat.TopEigenWorkspace

	// vecs/cut are the signal eigenvectors of the current packet,
	// borrowed from eigWS between eigendecomposition and sweep.
	vecs [][]complex128
	cut  int

	// w[k*subAnt+a] = v_k[a-th block]ᴴ·o(τ) for the column being
	// evaluated.
	w []complex128

	// Per-column sweep cache: the block quadratic forms q_ab(τ_j) shared
	// by every θ in column j. colDone marks columns already computed for
	// the current packet, so the refinement windows never recompute a
	// column the coarse pass touched.
	colQDiag []float64
	colQPair []complex128
	colDone  []bool

	// specP/computed are the (flattened row-major) spectrum arena and its
	// evaluation mask for the current packet.
	specP    []float64
	computed []bool
	// evalIdx lists the flattened indices of evaluated cells in evaluation
	// order, so peak finding after a coarse pass visits only those cells
	// instead of scanning (and mask-testing) the whole grid.
	evalIdx []int32
	// denseDone marks that every cell of specP is evaluated.
	denseDone bool
	// cells counts evaluated cells for diagnostics.
	cells int

	// Peak-finding scratch.
	scratch   []PathEstimate
	coarseTop []coarseMax
	latI      []int
	latJ      []int
}

type coarseMax struct {
	i, j int
	v    float64
}

// NewEstimator validates p and binds the shared precomputed steering
// table, allocating the estimator-owned workspace arenas.
func NewEstimator(p Params) (*Estimator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	tab := lookupSteeringTable(p)
	nt, nu := len(tab.thetas), len(tab.taus)
	e := &Estimator{
		p:        p,
		tab:      tab,
		thetas:   tab.thetas,
		taus:     tab.taus,
		w:        make([]complex128, p.MaxPaths*tab.subAnt),
		colQDiag: make([]float64, nu),
		colQPair: make([]complex128, nu*tab.nPair),
		colDone:  make([]bool, nu),
		specP:    make([]float64, nt*nu),
		computed: make([]bool, nt*nu),
		evalIdx:  make([]int32, 0, nt*nu),
		scratch:  make([]PathEstimate, 0, 32),
	}
	return e, nil
}

// Params returns the estimator configuration.
func (e *Estimator) Params() Params { return e.p }

// EstimatePaths returns the multipath (AoA, ToF) estimates for one CSI
// matrix: Algorithm 2 lines 4–7. Estimates are sorted by descending
// spectrum power. The number of returned paths is the estimated signal
// subspace dimension (≤ MaxPaths). The returned slice is freshly
// allocated and owned by the caller.
func (e *Estimator) EstimatePaths(c *csi.Matrix) ([]PathEstimate, error) {
	paths, _, err := e.EstimatePathsDiag(c)
	return paths, err
}

// EstimatePathsDiag is EstimatePaths plus per-packet DSP diagnostics for
// burst tracing. The Diag is valid only when err is nil.
func (e *Estimator) EstimatePathsDiag(c *csi.Matrix) ([]PathEstimate, Diag, error) {
	dim, eig, err := e.sweep(c)
	if err != nil {
		return nil, Diag{}, err
	}
	peaks, denseFallback := e.peaksWithFallback(dim)
	d := Diag{
		EigenSweeps:   eig.Sweeps,
		SignalDim:     dim,
		EigenGapDB:    eigenGapDB(eig.Values, dim),
		GridTheta:     len(e.thetas),
		GridTau:       len(e.taus),
		Peaks:         len(peaks),
		CellsSwept:    e.cells,
		DenseFallback: denseFallback,
	}
	out := make([]PathEstimate, len(peaks))
	copy(out, peaks)
	return out, d, nil
}

// Spectrum evaluates the full (dense) 2-D pseudo-spectrum for one CSI
// matrix. It is what CUPID-style max-power selection and diagnostics
// consume. The returned spectrum is a fresh copy, unaffected by later
// estimator calls.
func (e *Estimator) Spectrum(c *csi.Matrix) (*Spectrum, error) {
	if _, _, err := e.sweep(c); err != nil {
		return nil, err
	}
	e.evalRemaining()
	nt, nu := len(e.thetas), len(e.taus)
	spec := &Spectrum{Thetas: e.thetas, Taus: e.taus, P: make([][]float64, nt)}
	flat := make([]float64, nt*nu)
	copy(flat, e.specP)
	for i := range spec.P {
		spec.P[i] = flat[i*nu : (i+1)*nu]
	}
	return spec, nil //lint:allow arenaescape Thetas/Taus alias the immutable shared steering table, safe to hold
}

// sweep runs the front half of the pipeline — smoothing, covariance,
// eigendecomposition — then evaluates the pseudo-spectrum, coarse-to-fine
// unless configured dense. On return specP/computed hold the evaluated
// region for the packet.
//
//spotfi:noalloc
func (e *Estimator) sweep(c *csi.Matrix) (int, *cmat.EigenDecomposition, error) {
	if err := c.Validate(); err != nil { //lint:allow noalloc rejection path; a malformed packet never reaches the sweep twice
		return 0, nil, err
	}
	if c.Antennas() != e.p.Array.Antennas || c.Subcarriers() != e.p.Band.Subcarriers {
		return 0, nil, fmt.Errorf("music: CSI is %dx%d, estimator expects %dx%d", //lint:allow noalloc rejection path; a mis-sized packet never reaches the sweep twice
			c.Antennas(), c.Subcarriers(), e.p.Array.Antennas, e.p.Band.Subcarriers)
	}
	e.smooth = SmoothCSIInto(c, e.p.SubarrayAntennas, e.p.SubarraySubcarriers, e.smooth)
	e.gram = cmat.Reshape(e.gram, e.smooth.Rows(), e.smooth.Rows())
	e.smooth.GramInto(e.gram)
	// Only the top MaxPaths+1 eigenpairs matter: MaxPaths caps the signal
	// dimension, and one extra value below the cut supplies the
	// signal/noise threshold split and the eigen-gap diagnostic. The
	// sweep never touches noise eigenvectors — columnQ projects through
	// the signal subspace complement.
	eig, err := cmat.TopEigenInto(e.gram, e.p.MaxPaths+1, e.p.EigenThreshold, &e.eigWS)
	if err != nil {
		return 0, nil, fmt.Errorf("music: covariance eigendecomposition: %w", err) //lint:allow noalloc corrupt-covariance path, cold by construction
	}
	dim := eig.SignalDimension(e.p.EigenThreshold, e.p.MaxPaths)
	e.cut = eig.SignalCut(e.p.EigenThreshold, e.p.MaxPaths)
	e.vecs = eig.Vectors[:e.cut]

	// Reset the per-packet sweep state.
	for i := range e.colDone {
		e.colDone[i] = false
	}
	for i := range e.computed {
		e.computed[i] = false
	}
	e.cells = 0
	e.evalIdx = e.evalIdx[:0]
	e.denseDone = false

	nt, nu := len(e.thetas), len(e.taus)
	cf := e.p.coarseFactor()
	if cf <= 1 || nt < 4*cf || nu < 4*cf {
		// Dense sweep: configured, or the grid is too small for the
		// coarse lattice to be meaningful.
		e.evalRemaining()
	} else {
		e.coarsePass(cf)
	}
	return dim, eig, nil
}

// coarsePass evaluates the stride-cf lattice (endpoints forced in), finds
// its local maxima, and densely evaluates a window of radius 2·cf around
// each of the strongest MaxPaths+4 of them.
//
//spotfi:noalloc
func (e *Estimator) coarsePass(cf int) {
	nt, nu := len(e.thetas), len(e.taus)
	e.latI = latticeIndices(e.latI[:0], nt, cf)
	e.latJ = latticeIndices(e.latJ[:0], nu, cf)
	for _, j := range e.latJ {
		e.evalColumn(j, e.latI)
	}

	// Local maxima over the coarse lattice, edges included (out-of-range
	// neighbors are ignored, so a peak drifting past the lattice border
	// still seeds a window).
	li, lj := len(e.latI), len(e.latJ)
	top := e.coarseTop[:0]
	maxKeep := e.p.MaxPaths + 4
	for a := 0; a < li; a++ {
		for b := 0; b < lj; b++ {
			v := e.specP[e.latI[a]*nu+e.latJ[b]]
			isMax := true
			for da := -1; da <= 1 && isMax; da++ {
				for db := -1; db <= 1; db++ {
					if da == 0 && db == 0 {
						continue
					}
					na, nb := a+da, b+db
					if na < 0 || na >= li || nb < 0 || nb >= lj {
						continue
					}
					if e.specP[e.latI[na]*nu+e.latJ[nb]] > v {
						isMax = false
						break
					}
				}
			}
			if isMax {
				top = insertCoarseMax(top, coarseMax{i: e.latI[a], j: e.latJ[b], v: v}, maxKeep)
			}
		}
	}
	e.coarseTop = top

	r := 2 * cf
	for _, m := range top {
		i0, i1 := m.i-r, m.i+r
		if i0 < 0 {
			i0 = 0
		}
		if i1 > nt-1 {
			i1 = nt - 1
		}
		j0, j1 := m.j-r, m.j+r
		if j0 < 0 {
			j0 = 0
		}
		if j1 > nu-1 {
			j1 = nu - 1
		}
		for j := j0; j <= j1; j++ {
			e.evalColumnRange(j, i0, i1)
		}
	}
}

// latticeIndices appends 0, cf, 2·cf, … and forces the final index n−1.
//
//spotfi:noalloc
func latticeIndices(dst []int, n, cf int) []int {
	for i := 0; i < n; i += cf {
		dst = append(dst, i)
	}
	if dst[len(dst)-1] != n-1 {
		dst = append(dst, n-1)
	}
	return dst
}

// insertCoarseMax keeps top sorted by descending value, capped at k.
//
//spotfi:noalloc
func insertCoarseMax(top []coarseMax, m coarseMax, k int) []coarseMax {
	pos := len(top)
	for pos > 0 && top[pos-1].v < m.v {
		pos--
	}
	if pos >= k {
		return top
	}
	if len(top) < k {
		top = append(top, coarseMax{})
	}
	copy(top[pos+1:], top[pos:])
	top[pos] = m
	return top
}

// evalColumn evaluates the given rows of column j.
//
//spotfi:noalloc
func (e *Estimator) evalColumn(j int, rows []int) {
	qd, qp := e.columnQ(j)
	nu := len(e.taus)
	for _, i := range rows {
		idx := i*nu + j
		if !e.computed[idx] {
			e.evalCell(idx, i, qd, qp)
		}
	}
}

// evalColumnRange evaluates rows [i0, i1] of column j, skipping cells the
// coarse pass already computed.
//
//spotfi:noalloc
func (e *Estimator) evalColumnRange(j, i0, i1 int) {
	qd, qp := e.columnQ(j)
	nu := len(e.taus)
	for i := i0; i <= i1; i++ {
		idx := i*nu + j
		if !e.computed[idx] {
			e.evalCell(idx, i, qd, qp)
		}
	}
}

// evalCell computes P(θ_i, τ_j) from the column's cached block forms: the
// Kronecker decomposition of Eq. 7 reduces each cell to nPair complex
// multiplies against the per-theta antenna pair products.
//
//spotfi:noalloc
func (e *Estimator) evalCell(idx, i int, qd float64, qp []complex128) {
	nPair := e.tab.nPair
	pr := e.tab.pair[i*nPair : (i+1)*nPair]
	var cross float64
	for c, qc := range qp {
		cross += real(pr[c])*real(qc) - imag(pr[c])*imag(qc)
	}
	denom := qd + 2*cross
	if denom < 1e-18 {
		denom = 1e-18
	}
	e.specP[idx] = 1 / denom
	e.computed[idx] = true
	e.evalIdx = append(e.evalIdx, int32(idx))
	e.cells++
}

// columnQ returns the block quadratic forms of column j — the diagonal sum
// Σ_a q_aa and the off-diagonal q_ab for a<b — computing and caching them
// on first use. Rather than materializing the noise projector E_N·E_Nᴴ
// (the dominant cost of the old dense sweep), it uses the complement
// identity P_N = I − Σ_k v_k·v_kᴴ over the few signal eigenvectors:
// q_ab = δ_ab·‖o‖² − Σ_k conj(w_ka)·w_kb with w_ka = v_k[block a]ᴴ·o(τ_j).
//
//spotfi:noalloc
func (e *Estimator) columnQ(j int) (float64, []complex128) {
	nPair := e.tab.nPair
	qp := e.colQPair[j*nPair : (j+1)*nPair]
	if e.colDone[j] {
		return e.colQDiag[j], qp
	}
	subAnt, subSub := e.tab.subAnt, e.tab.subSub
	o := e.tab.omega[j*subSub : (j+1)*subSub]
	w := e.w[:e.cut*subAnt]
	for k, v := range e.vecs {
		for a := 0; a < subAnt; a++ {
			blk := v[a*subSub : (a+1)*subSub]
			var sum complex128
			for s, os := range o {
				sum += cmplx.Conj(blk[s]) * os
			}
			w[k*subAnt+a] = sum
		}
	}
	qd := float64(subAnt) * e.tab.omegaNorm[j]
	for _, wv := range w {
		qd -= real(wv)*real(wv) + imag(wv)*imag(wv)
	}
	c := 0
	for a := 0; a < subAnt; a++ {
		for b := a + 1; b < subAnt; b++ {
			var sum complex128
			for k := 0; k < e.cut; k++ {
				sum += cmplx.Conj(w[k*subAnt+a]) * w[k*subAnt+b]
			}
			qp[c] = -sum
			c++
		}
	}
	e.colQDiag[j] = qd
	e.colDone[j] = true
	return qd, qp
}

// evalRemaining evaluates every not-yet-computed cell (the dense sweep, or
// the dense fallback after a coarse pass).
//
//spotfi:noalloc
func (e *Estimator) evalRemaining() {
	if e.denseDone {
		return
	}
	nt, nu := len(e.thetas), len(e.taus)
	for j := 0; j < nu; j++ {
		e.evalColumnRange(j, 0, nt-1)
	}
	e.denseDone = true
}

// peaksWithFallback finds peaks on the evaluated region and falls back to
// the dense sweep when the result is untrustworthy: a candidate peak sits
// on the border of the evaluated region (its true neighborhood is
// unknown), and that candidate is strong enough to displace the weakest
// accepted peak (or too few peaks were found at all). The returned slice
// aliases the estimator's scratch arena.
//
//spotfi:noalloc
func (e *Estimator) peaksWithFallback(dim int) ([]PathEstimate, bool) {
	peaks, crowdMax := e.findPeaksMasked(dim)
	if e.denseDone || crowdMax == 0 {
		return peaks, false
	}
	if len(peaks) >= dim && crowdMax <= peaks[len(peaks)-1].Power {
		return peaks, false
	}
	e.evalRemaining()
	peaks, _ = e.findPeaksMasked(dim)
	return peaks, true
}

// findPeaksMasked locates local maxima of the evaluated pseudo-spectrum
// region, refines them with per-axis quadratic interpolation, merges
// near-duplicates by physical distance, and returns the top count peaks by
// power (in the estimator's scratch arena). crowdMax is the strongest
// would-be peak that touched the border of the evaluated region — zero
// when the region's peaks are all interior, i.e. the coarse windows were
// large enough.
//
// Grid-edge cells are excluded: a maximum at the ±90° AoA edge (array
// endfire, where a ULA has no resolution) or at the ToF search boundary is
// a truncation artifact, not a resolvable path, and its packet-to-packet
// repeatability would otherwise fabricate a spuriously tight cluster.
//
//spotfi:noalloc
func (e *Estimator) findPeaksMasked(count int) ([]PathEstimate, float64) {
	nt, nu := len(e.thetas), len(e.taus)
	peaks := e.scratch[:0]
	crowdMax := 0.0
	if e.denseDone {
		// Every cell is evaluated: scan row-major with no mask loads and
		// the neighbor comparisons flattened.
		for i := 1; i < nt-1; i++ {
			for j := 1; j < nu-1; j++ {
				idx := i*nu + j
				v := e.specP[idx]
				if e.specP[idx-nu-1] > v || e.specP[idx-nu] > v || e.specP[idx-nu+1] > v ||
					e.specP[idx-1] > v || e.specP[idx+1] > v ||
					e.specP[idx+nu-1] > v || e.specP[idx+nu] > v || e.specP[idx+nu+1] > v {
					continue
				}
				peaks = e.appendRefined(peaks, i, j, v)
			}
		}
	} else {
		// Sparse region: visit only the evaluated cells, in evaluation
		// order. Enumeration order does not affect results —
		// sortPeaksByPower orders ties by position, so plateaus of
		// exact-equal cells (e.g. at the denominator clamp) resolve the
		// same way as under the dense row-major scan.
		for _, idx32 := range e.evalIdx {
			idx := int(idx32)
			i, j := idx/nu, idx%nu
			if i == 0 || i == nt-1 || j == 0 || j == nu-1 {
				continue
			}
			v := e.specP[idx]
			isPeak, border := true, false
			for di := -1; di <= 1 && isPeak; di++ {
				for dj := -1; dj <= 1; dj++ {
					if di == 0 && dj == 0 {
						continue
					}
					nidx := (i+di)*nu + (j + dj)
					if !e.computed[nidx] {
						border = true
						continue
					}
					if e.specP[nidx] > v {
						isPeak = false
						break
					}
				}
			}
			if !isPeak {
				continue
			}
			if border {
				// No computed neighbor beats it, but part of its
				// neighborhood is unknown: can neither accept nor
				// reject. Record it for the fallback decision.
				if v > crowdMax {
					crowdMax = v
				}
				continue
			}
			peaks = e.appendRefined(peaks, i, j, v)
		}
	}
	sortPeaksByPower(peaks)
	rTheta, rTau := e.p.dedupeRadii()
	peaks = dedupePeaks(peaks, rTheta, rTau)
	if len(peaks) > count {
		peaks = peaks[:count]
	}
	e.scratch = peaks[:0]
	return peaks, crowdMax
}

// appendRefined quadratically refines the accepted maximum at (i, j) on
// both axes and appends the estimate.
//
//spotfi:noalloc
func (e *Estimator) appendRefined(peaks []PathEstimate, i, j int, v float64) []PathEstimate {
	nu := len(e.taus)
	theta := refineAxis(e.thetas, i, func(k int) float64 { return e.specP[k*nu+j] })
	tau := refineAxis(e.taus, j, func(k int) float64 { return e.specP[i*nu+k] })
	return append(peaks, PathEstimate{AoA: theta, ToF: tau, Power: v})
}

// sortPeaksByPower sorts descending by Power with an allocation-free
// insertion sort (peak counts are tiny). Equal powers order by position
// (AoA, then ToF) so the result is a pure function of the peak set — the
// coarse and dense sweeps enumerate candidates in different orders, and
// dedupePeaks keeps whichever duplicate sorts first.
//
//spotfi:noalloc
func sortPeaksByPower(peaks []PathEstimate) {
	for i := 1; i < len(peaks); i++ {
		p := peaks[i]
		j := i
		for j > 0 && peakBefore(p, peaks[j-1]) {
			peaks[j] = peaks[j-1]
			j--
		}
		peaks[j] = p
	}
}

// peakBefore is the canonical peak order: descending power, ties broken
// by ascending AoA then ToF.
//
//spotfi:noalloc
func peakBefore(a, b PathEstimate) bool {
	if a.Power > b.Power {
		return true
	}
	if a.Power < b.Power {
		return false
	}
	if a.AoA < b.AoA {
		return true
	}
	if a.AoA > b.AoA {
		return false
	}
	return a.ToF < b.ToF
}

// gridPoints returns the inclusive grid start, start+step, …, stop built
// by index (start + i·step) rather than by accumulation: repeated `x +=
// step` drifts by an ulp per iteration, so whether the endpoint survives
// the loop bound — and hence the grid length — depended on the step size.
// The index form keeps length and endpoints exact for any step. A half-ulp
// slack on the point count absorbs ranges like π/(π/180) that land within
// rounding of an integer.
func gridPoints(start, stop, step float64) []float64 {
	n := int(math.Floor((stop-start)/step+1e-9)) + 1
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*step
	}
	return out
}

// dedupePeaks drops peaks within both physical merge radii of a stronger
// one (plateaus produce runs of near-equal "peaks"). peaks must be sorted
// by descending power; the filter compacts in place.
//
//spotfi:noalloc
func dedupePeaks(peaks []PathEstimate, rTheta, rTau float64) []PathEstimate {
	if len(peaks) < 2 {
		return peaks
	}
	out := peaks[:0]
	for _, p := range peaks {
		dup := false
		for _, kept := range out {
			if math.Abs(p.AoA-kept.AoA) <= rTheta && math.Abs(p.ToF-kept.ToF) <= rTau {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, p)
		}
	}
	return out
}

// refineAxis fits a parabola through the peak sample and its two axis
// neighbors and returns the interpolated abscissa of the maximum. Indices
// outside the grid are clamped; boundary indices return the grid point
// itself (no neighbor to fit through); the refined value never leaves
// [grid[0], grid[len-1]].
//
//spotfi:noalloc
func refineAxis(grid []float64, idx int, val func(int) float64) float64 {
	if len(grid) == 0 {
		return 0
	}
	if idx < 0 {
		idx = 0
	}
	if idx > len(grid)-1 {
		idx = len(grid) - 1
	}
	if idx == 0 || idx == len(grid)-1 {
		return grid[idx]
	}
	ym, y0, yp := val(idx-1), val(idx), val(idx+1)
	den := ym - 2*y0 + yp
	if den >= 0 || math.Abs(den) < 1e-30 {
		return grid[idx]
	}
	delta := 0.5 * (ym - yp) / den
	if delta > 0.5 {
		delta = 0.5
	} else if delta < -0.5 {
		delta = -0.5
	}
	step := grid[1] - grid[0]
	x := grid[idx] + delta*step
	if x < grid[0] {
		x = grid[0]
	} else if x > grid[len(grid)-1] {
		x = grid[len(grid)-1]
	}
	return x
}
