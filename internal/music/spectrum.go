package music

import (
	"fmt"
	"math"
	"math/cmplx"
	"sort"

	"spotfi/internal/cmat"
	"spotfi/internal/csi"
)

// Spectrum is an evaluated 2-D MUSIC pseudo-spectrum P(θ, τ).
type Spectrum struct {
	// Thetas are the AoA grid points in radians.
	Thetas []float64
	// Taus are the ToF grid points in seconds.
	Taus []float64
	// P[i][j] is the pseudo-spectrum at (Thetas[i], Taus[j]).
	P [][]float64
}

// Estimator runs SpotFi's joint AoA/ToF super-resolution on single-packet
// CSI matrices. It precomputes the search grids; one Estimator may be
// reused across packets and is safe for concurrent use (it is read-only
// after construction).
type Estimator struct {
	p      Params
	thetas []float64
	taus   []float64
	// phiPows[i][a] = Φ(thetas[i])^a for a < SubarrayAntennas.
	phiPows [][]complex128
	// omegaPows[j][s] = Ω(taus[j])^s for s < SubarraySubcarriers.
	omegaPows [][]complex128
}

// NewEstimator validates p and precomputes the spectrum grids.
func NewEstimator(p Params) (*Estimator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	e := &Estimator{p: p}
	e.thetas = gridPoints(-math.Pi/2, math.Pi/2, p.AoAGridRad)
	e.taus = gridPoints(p.ToFMinS, p.ToFMaxS, p.ToFGridS)
	e.phiPows = make([][]complex128, len(e.thetas))
	for i, th := range e.thetas {
		e.phiPows[i] = geometricSeries(Phi(th, p.Array, p.Band), p.SubarrayAntennas)
	}
	e.omegaPows = make([][]complex128, len(e.taus))
	for j, tau := range e.taus {
		e.omegaPows[j] = geometricSeries(Omega(tau, p.Band), p.SubarraySubcarriers)
	}
	return e, nil
}

// Params returns the estimator configuration.
func (e *Estimator) Params() Params { return e.p }

// EstimatePaths returns the multipath (AoA, ToF) estimates for one CSI
// matrix: Algorithm 2 lines 4–7. Estimates are sorted by descending
// spectrum power. The number of returned paths is the estimated signal
// subspace dimension (≤ MaxPaths).
func (e *Estimator) EstimatePaths(c *csi.Matrix) ([]PathEstimate, error) {
	paths, _, err := e.EstimatePathsDiag(c)
	return paths, err
}

// EstimatePathsDiag is EstimatePaths plus per-packet DSP diagnostics for
// burst tracing. The Diag is valid only when err is nil.
func (e *Estimator) EstimatePathsDiag(c *csi.Matrix) ([]PathEstimate, Diag, error) {
	spec, dim, eig, err := e.spectrum(c)
	if err != nil {
		return nil, Diag{}, err
	}
	peaks := findPeaks2D(spec, dim)
	d := Diag{
		EigenSweeps: eig.Sweeps,
		SignalDim:   dim,
		EigenGapDB:  eigenGapDB(eig.Values, dim),
		GridTheta:   len(spec.Thetas),
		GridTau:     len(spec.Taus),
		Peaks:       len(peaks),
	}
	return peaks, d, nil
}

// Spectrum evaluates the full 2-D pseudo-spectrum for one CSI matrix. It is
// what CUPID-style max-power selection and diagnostics consume.
func (e *Estimator) Spectrum(c *csi.Matrix) (*Spectrum, error) {
	spec, _, _, err := e.spectrum(c)
	return spec, err
}

func (e *Estimator) spectrum(c *csi.Matrix) (*Spectrum, int, *cmat.EigenDecomposition, error) {
	if err := c.Validate(); err != nil {
		return nil, 0, nil, err
	}
	if c.Antennas() != e.p.Array.Antennas || c.Subcarriers() != e.p.Band.Subcarriers {
		return nil, 0, nil, fmt.Errorf("music: CSI is %dx%d, estimator expects %dx%d",
			c.Antennas(), c.Subcarriers(), e.p.Array.Antennas, e.p.Band.Subcarriers)
	}
	x := SmoothCSI(c, e.p.SubarrayAntennas, e.p.SubarraySubcarriers)
	r := x.Gram()
	eig, err := cmat.EigHermitian(r)
	if err != nil {
		return nil, 0, nil, fmt.Errorf("music: covariance eigendecomposition: %w", err)
	}
	dim := eig.SignalDimension(e.p.EigenThreshold, e.p.MaxPaths)
	en := eig.NoiseSubspace(e.p.EigenThreshold, e.p.MaxPaths)
	if en == nil {
		return nil, 0, nil, fmt.Errorf("music: empty noise subspace")
	}
	proj := en.Mul(en.ConjTranspose()) // E_N·E_Nᴴ

	spec := &Spectrum{Thetas: e.thetas, Taus: e.taus, P: make([][]float64, len(e.thetas))}
	for i := range spec.P {
		spec.P[i] = make([]float64, len(e.taus))
	}

	// Exploit the Kronecker structure a(θ,τ) = p(θ) ⊗ o(τ): partition the
	// projector into subAnt² blocks of size subSub×subSub; then
	// aᴴ·proj·a = Σ_a q_aa + 2·Re Σ_{a<b} conj(p_a)·p_b·q_ab with
	// q_ab = o(τ)ᴴ·proj_ab·o(τ). The q_ab are computed once per τ, making
	// the θ sweep O(1) per point instead of O((subAnt·subSub)²).
	subAnt, subSub := e.p.SubarrayAntennas, e.p.SubarraySubcarriers
	nblk := subAnt * (subAnt + 1) / 2
	q := make([]complex128, nblk)
	for j := range e.taus {
		o := e.omegaPows[j]
		bi := 0
		for a := 0; a < subAnt; a++ {
			for b := a; b < subAnt; b++ {
				q[bi] = blockQuadraticForm(proj, a, b, subSub, o)
				bi++
			}
		}
		for i := range e.thetas {
			p := e.phiPows[i]
			var denom float64
			bi = 0
			for a := 0; a < subAnt; a++ {
				for b := a; b < subAnt; b++ {
					if a == b {
						denom += real(q[bi])
					} else {
						denom += 2 * real(cmplx.Conj(p[a])*p[b]*q[bi])
					}
					bi++
				}
			}
			if denom < 1e-18 {
				denom = 1e-18
			}
			spec.P[i][j] = 1 / denom
		}
	}
	return spec, dim, eig, nil
}

// gridPoints returns the inclusive grid start, start+step, …, stop built
// by index (start + i·step) rather than by accumulation: repeated `x +=
// step` drifts by an ulp per iteration, so whether the endpoint survives
// the loop bound — and hence the grid length — depended on the step size.
// The index form keeps length and endpoints exact for any step. A half-ulp
// slack on the point count absorbs ranges like π/(π/180) that land within
// rounding of an integer.
func gridPoints(start, stop, step float64) []float64 {
	n := int(math.Floor((stop-start)/step+1e-9)) + 1
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*step
	}
	return out
}

// blockQuadraticForm computes oᴴ·proj[a·n:(a+1)·n][b·n:(b+1)·n]·o.
func blockQuadraticForm(proj *cmat.Matrix, a, b, n int, o []complex128) complex128 {
	var sum complex128
	rowOff, colOff := a*n, b*n
	for r := 0; r < n; r++ {
		var inner complex128
		for c := 0; c < n; c++ {
			inner += proj.At(rowOff+r, colOff+c) * o[c]
		}
		sum += cmplx.Conj(o[r]) * inner
	}
	return sum
}

// findPeaks2D locates local maxima of the pseudo-spectrum, refines them
// with per-axis quadratic interpolation, and returns the top count peaks
// by power. Grid-edge cells are excluded: a maximum at the ±90° AoA edge
// (array endfire, where a ULA has no resolution) or at the ToF search
// boundary is a truncation artifact, not a resolvable path, and its
// packet-to-packet repeatability would otherwise fabricate a spuriously
// tight cluster.
func findPeaks2D(spec *Spectrum, count int) []PathEstimate {
	ni, nj := len(spec.Thetas), len(spec.Taus)
	var peaks []PathEstimate
	for i := 1; i < ni-1; i++ {
		for j := 1; j < nj-1; j++ {
			v := spec.P[i][j]
			isPeak := true
			for di := -1; di <= 1 && isPeak; di++ {
				for dj := -1; dj <= 1; dj++ {
					if di == 0 && dj == 0 {
						continue
					}
					if spec.P[i+di][j+dj] > v {
						isPeak = false
						break
					}
				}
			}
			if !isPeak {
				continue
			}
			theta := refineAxis(spec.Thetas, i, func(k int) float64 { return spec.P[k][j] })
			tau := refineAxis(spec.Taus, j, func(k int) float64 { return spec.P[i][k] })
			peaks = append(peaks, PathEstimate{AoA: theta, ToF: tau, Power: v})
		}
	}
	sort.Slice(peaks, func(a, b int) bool { return peaks[a].Power > peaks[b].Power })
	peaks = dedupePeaks(peaks, spec)
	if len(peaks) > count {
		peaks = peaks[:count]
	}
	return peaks
}

// dedupePeaks drops peaks that sit within one grid cell of a stronger one
// (plateaus produce runs of equal-valued "peaks").
func dedupePeaks(peaks []PathEstimate, spec *Spectrum) []PathEstimate {
	if len(peaks) < 2 {
		return peaks
	}
	dTheta := spec.Thetas[1] - spec.Thetas[0]
	dTau := spec.Taus[1] - spec.Taus[0]
	var out []PathEstimate
	for _, p := range peaks {
		dup := false
		for _, kept := range out {
			if math.Abs(p.AoA-kept.AoA) <= 1.5*dTheta && math.Abs(p.ToF-kept.ToF) <= 1.5*dTau {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, p)
		}
	}
	return out
}

// refineAxis fits a parabola through the peak sample and its two axis
// neighbors and returns the interpolated abscissa of the maximum.
func refineAxis(grid []float64, idx int, val func(int) float64) float64 {
	if idx <= 0 || idx >= len(grid)-1 {
		return grid[idx]
	}
	ym, y0, yp := val(idx-1), val(idx), val(idx+1)
	den := ym - 2*y0 + yp
	if den >= 0 || math.Abs(den) < 1e-30 {
		return grid[idx]
	}
	delta := 0.5 * (ym - yp) / den
	if delta > 0.5 {
		delta = 0.5
	} else if delta < -0.5 {
		delta = -0.5
	}
	step := grid[1] - grid[0]
	return grid[idx] + delta*step
}
