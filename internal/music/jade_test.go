package music

import (
	"math"
	"math/rand"
	"testing"

	"spotfi/internal/csi"
	"spotfi/internal/geom"
	"spotfi/internal/rf"
)

func TestJADESinglePath(t *testing.T) {
	band := rf.DefaultBand()
	array := rf.DefaultArray(band)
	j, err := NewJADE(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ deg, tofNs float64 }{
		{0, 20}, {25, 40}, {-50, 90}, {70, 150},
	} {
		theta := geom.Rad(tc.deg)
		tof := tc.tofNs * 1e-9
		c := buildCSI(band, array, []PathEstimate{{AoA: theta, ToF: tof}}, []complex128{1})
		paths, err := j.EstimatePaths(c)
		if err != nil {
			t.Fatal(err)
		}
		if len(paths) == 0 {
			t.Fatalf("no paths at %v°", tc.deg)
		}
		if got := geom.Deg(paths[0].AoA); math.Abs(got-tc.deg) > 0.5 {
			t.Fatalf("JADE AoA = %.2f°, want %v°", got, tc.deg)
		}
		if math.Abs(paths[0].ToF-tof) > 1e-9 {
			t.Fatalf("JADE ToF = %.1f ns, want %v", paths[0].ToF*1e9, tc.tofNs)
		}
	}
}

func TestJADEResolvesFourPathsJointly(t *testing.T) {
	// The search-free estimator must also beat the antenna count, with
	// correctly *paired* (AoA, ToF).
	band := rf.DefaultBand()
	array := rf.DefaultArray(band)
	j, err := NewJADE(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	truth := []PathEstimate{
		{AoA: geom.Rad(-50), ToF: 10e-9},
		{AoA: geom.Rad(-10), ToF: 55e-9},
		{AoA: geom.Rad(20), ToF: 100e-9},
		{AoA: geom.Rad(55), ToF: 150e-9},
	}
	gains := []complex128{1, complex(0.8, 0.3), complex(0.1, 0.75), complex(-0.4, 0.5)}
	rng := rand.New(rand.NewSource(141))
	c := buildCSI(band, array, truth, gains)
	addNoise(c, 0.002, rng)
	paths, err := j.EstimatePaths(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 4 {
		t.Fatalf("JADE resolved %d paths, want 4", len(paths))
	}
	for _, want := range truth {
		found := false
		for _, got := range paths {
			if geom.Deg(math.Abs(got.AoA-want.AoA)) < 3 && math.Abs(got.ToF-want.ToF) < 5e-9 {
				found = true
			}
		}
		if !found {
			t.Fatalf("pair (%.0f°, %.0f ns) not recovered: %+v",
				geom.Deg(want.AoA), want.ToF*1e9, paths)
		}
	}
}

func TestJADEAgreesWithMUSIC(t *testing.T) {
	band := rf.DefaultBand()
	array := rf.DefaultArray(band)
	j, err := NewJADE(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewEstimator(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(142))
	for trial := 0; trial < 5; trial++ {
		truth := []PathEstimate{
			{AoA: geom.Rad(-60 + 120*rng.Float64()), ToF: (20 + 100*rng.Float64()) * 1e-9},
			{AoA: geom.Rad(-60 + 120*rng.Float64()), ToF: (20 + 100*rng.Float64()) * 1e-9},
		}
		if geom.Deg(math.Abs(truth[0].AoA-truth[1].AoA)) < 15 ||
			math.Abs(truth[0].ToF-truth[1].ToF) < 20e-9 {
			continue // keep paths separated for a clean comparison
		}
		c := buildCSI(band, array, truth, []complex128{1, complex(0.6, 0.4)})
		addNoise(c, 0.005, rng)
		pj, err1 := j.EstimatePaths(c)
		pm, err2 := m.EstimatePaths(c)
		if err1 != nil || err2 != nil || len(pj) == 0 || len(pm) == 0 {
			t.Fatalf("trial %d: %v %v", trial, err1, err2)
		}
		// Strongest JADE path must appear among MUSIC's peaks.
		found := false
		for _, p := range pm {
			if geom.Deg(math.Abs(p.AoA-pj[0].AoA)) < 3 && math.Abs(p.ToF-pj[0].ToF) < 6e-9 {
				found = true
			}
		}
		if !found {
			t.Fatalf("trial %d: JADE (%.1f°, %.1f ns) not confirmed by MUSIC %+v",
				trial, geom.Deg(pj[0].AoA), pj[0].ToF*1e9, pm)
		}
	}
}

func TestJADEWithQuantizedNoisyCSI(t *testing.T) {
	band := rf.DefaultBand()
	array := rf.DefaultArray(band)
	j, err := NewJADE(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	truth := []PathEstimate{{AoA: geom.Rad(-15), ToF: 60e-9}}
	rng := rand.New(rand.NewSource(143))
	c := buildCSI(band, array, truth, []complex128{1})
	addNoise(c, 0.01, rng)
	c.Quantize()
	paths, err := j.EstimatePaths(c)
	if err != nil {
		t.Fatal(err)
	}
	if geom.Deg(math.Abs(paths[0].AoA-truth[0].AoA)) > 2 {
		t.Fatalf("quantized JADE AoA error %.1f°", geom.Deg(math.Abs(paths[0].AoA-truth[0].AoA)))
	}
}

func TestJADEErrors(t *testing.T) {
	j, err := NewJADE(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.EstimatePaths(csi.NewMatrix(2, 30)); err == nil {
		t.Fatal("wrong shape accepted")
	}
	bad := DefaultParams()
	bad.SubarraySubcarriers = 2
	if _, err := NewJADE(bad); err == nil {
		t.Fatal("2-subcarrier window accepted")
	}
	bad2 := DefaultParams()
	bad2.MaxPaths = 0
	if _, err := NewJADE(bad2); err == nil {
		t.Fatal("invalid params accepted")
	}
}
