package music

import (
	"fmt"
	"math"
	"math/cmplx"
	"sort"

	"spotfi/internal/cmat"
	"spotfi/internal/csi"
	"spotfi/internal/rf"
)

// AoAParams configures the baseline antenna-only MUSIC estimator
// (Sec. 3.1.1): the algorithm ArrayTrack/Phaser run on a 3-antenna AP,
// which the paper calls MUSIC-AoA. It models only the phase shifts across
// antennas, using the subcarriers as independent snapshots, so with M
// antennas it can resolve at most M−1 paths.
type AoAParams struct {
	Band  rf.Band
	Array rf.Array
	// AoAGridRad is the spectrum grid step over [−π/2, π/2].
	AoAGridRad float64
	// EigenThreshold separates signal from noise eigenvalues.
	EigenThreshold float64
	// MaxPaths caps the signal dimension; it cannot exceed Antennas−1.
	MaxPaths int
	// ForwardBackward applies forward-backward averaging to the antenna
	// covariance: R ← (R + J·R*·J)/2 with J the exchange matrix. For a
	// ULA this doubles the effective snapshots and decorrelates coherent
	// paths — the standard remedy when multipath components are phase
	// locked (Paulraj et al., the smoothing reference the paper cites).
	ForwardBackward bool
}

// DefaultAoAParams returns the baseline configuration used in the
// evaluation.
func DefaultAoAParams() AoAParams {
	band := rf.DefaultBand()
	return AoAParams{
		Band:           band,
		Array:          rf.DefaultArray(band),
		AoAGridRad:     math.Pi / 180,
		EigenThreshold: 0.03,
		MaxPaths:       2,
	}
}

// Validate checks the parameters.
func (p AoAParams) Validate() error {
	if err := p.Band.Validate(); err != nil {
		return err
	}
	if err := p.Array.Validate(); err != nil {
		return err
	}
	if p.AoAGridRad <= 0 {
		return fmt.Errorf("music: AoA grid step must be positive")
	}
	if p.EigenThreshold <= 0 || p.EigenThreshold >= 1 {
		return fmt.Errorf("music: eigen threshold %v must be in (0,1)", p.EigenThreshold)
	}
	if p.MaxPaths < 1 || p.MaxPaths >= p.Array.Antennas {
		return fmt.Errorf("music: baseline MaxPaths %d must be in [1,%d]", p.MaxPaths, p.Array.Antennas-1)
	}
	return nil
}

// AoAEstimator is the baseline MUSIC-AoA estimator.
type AoAEstimator struct {
	p      AoAParams
	thetas []float64
	// steer[i] is the antenna steering vector at thetas[i].
	steer [][]complex128
}

// NewAoAEstimator validates p and precomputes the AoA grid.
func NewAoAEstimator(p AoAParams) (*AoAEstimator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	e := &AoAEstimator{p: p}
	e.thetas = gridPoints(-math.Pi/2, math.Pi/2, p.AoAGridRad)
	for _, th := range e.thetas {
		e.steer = append(e.steer, geometricSeries(Phi(th, p.Array, p.Band), p.Array.Antennas))
	}
	return e, nil
}

// AoASpectrum is a 1-D MUSIC pseudo-spectrum over AoA.
type AoASpectrum struct {
	Thetas []float64
	P      []float64
}

// Spectrum evaluates the antenna-only MUSIC pseudo-spectrum for one CSI
// matrix.
func (e *AoAEstimator) Spectrum(c *csi.Matrix) (*AoASpectrum, error) {
	spec, _, err := e.spectrum(c)
	return spec, err
}

// EstimatePaths returns AoA estimates (ToF is not observable by this
// baseline and is reported as 0), sorted by descending spectrum power.
func (e *AoAEstimator) EstimatePaths(c *csi.Matrix) ([]PathEstimate, error) {
	spec, dim, err := e.spectrum(c)
	if err != nil {
		return nil, err
	}
	return findPeaks1D(spec, dim), nil
}

func (e *AoAEstimator) spectrum(c *csi.Matrix) (*AoASpectrum, int, error) {
	if err := c.Validate(); err != nil {
		return nil, 0, err
	}
	if c.Antennas() != e.p.Array.Antennas || c.Subcarriers() != e.p.Band.Subcarriers {
		return nil, 0, fmt.Errorf("music: CSI is %dx%d, baseline expects %dx%d",
			c.Antennas(), c.Subcarriers(), e.p.Array.Antennas, e.p.Band.Subcarriers)
	}
	// Measurement matrix: antennas × subcarriers, i.e. each subcarrier is
	// one snapshot of the antenna array (Sec. 3.1.1, Eq. 4).
	x := cmat.FromRows(c.Values)
	r := x.Gram()
	if e.p.ForwardBackward {
		r = forwardBackward(r)
	}
	eig, err := cmat.EigHermitian(r)
	if err != nil {
		return nil, 0, fmt.Errorf("music: baseline eigendecomposition: %w", err)
	}
	dim := eig.SignalDimension(e.p.EigenThreshold, e.p.MaxPaths)
	en := eig.NoiseSubspace(e.p.EigenThreshold, e.p.MaxPaths)
	if en == nil {
		return nil, 0, fmt.Errorf("music: baseline has empty noise subspace")
	}
	enH := en.ConjTranspose()

	spec := &AoASpectrum{Thetas: e.thetas, P: make([]float64, len(e.thetas))}
	for i, a := range e.steer {
		// denom = ‖E_Nᴴ·a‖².
		proj := enH.MulVec(a)
		d := 0.0
		for _, v := range proj {
			d += real(v)*real(v) + imag(v)*imag(v)
		}
		if d < 1e-18 {
			d = 1e-18
		}
		spec.P[i] = 1 / d
	}
	return spec, dim, nil
}

// findPeaks1D locates interior local maxima (grid-edge maxima are endfire
// artifacts, as in findPeaks2D).
func findPeaks1D(spec *AoASpectrum, count int) []PathEstimate {
	n := len(spec.Thetas)
	var peaks []PathEstimate
	for i := 1; i < n-1; i++ {
		v := spec.P[i]
		if spec.P[i-1] > v || spec.P[i+1] > v {
			continue
		}
		// Skip plateau duplicates: only accept the left edge of a run.
		if spec.P[i-1] == v { //lint:allow floateq plateau detection wants bit-identical values, not nearness
			continue
		}
		theta := refineAxis(spec.Thetas, i, func(k int) float64 { return spec.P[k] })
		peaks = append(peaks, PathEstimate{AoA: theta, Power: v})
	}
	sort.Slice(peaks, func(a, b int) bool { return peaks[a].Power > peaks[b].Power })
	if len(peaks) > count {
		peaks = peaks[:count]
	}
	return peaks
}

// forwardBackward returns (R + J·R*·J)/2 where J is the exchange
// (anti-identity) matrix.
func forwardBackward(r *cmat.Matrix) *cmat.Matrix {
	n := r.Rows()
	out := cmat.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			// (J·R*·J)[i][j] = conj(R[n-1-i][n-1-j]).
			v := (r.At(i, j) + cmplx.Conj(r.At(n-1-i, n-1-j))) / 2
			out.Set(i, j, v)
		}
	}
	return out
}
