package music

import (
	"fmt"
	"math"
	"math/cmplx"
	"sort"

	"spotfi/internal/cmat"
	"spotfi/internal/csi"
)

// JADE is the search-free joint angle-delay estimator built on the shift
// invariances of the smoothed CSI matrix — the algorithm family (Van der
// Veen, Vanderveen & Paulraj; refs [42–44]) the paper's estimator descends
// from. Where the MUSIC Estimator scans a 2-D grid, JADE solves two small
// eigenproblems:
//
//   - shifting the sensor window by one subcarrier multiplies each path's
//     steering vector by Ω(τ_k), so the subcarrier-shift operator mapped
//     into the signal subspace has eigenvalues {Ω(τ_k)};
//   - its eigenvectors simultaneously (approximately) diagonalize the
//     antenna-shift operator, whose diagonal then yields {Φ(θ_k)} paired
//     with the right delays.
//
// It shares Params with the Estimator (grid fields are ignored) and is
// roughly two orders of magnitude faster per packet.
type JADE struct {
	p Params
}

// NewJADE validates p and returns the estimator.
func NewJADE(p Params) (*JADE, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.SubarrayAntennas < 2 {
		return nil, fmt.Errorf("music: JADE needs a subarray of ≥2 antennas for the antenna-shift invariance")
	}
	if p.SubarraySubcarriers < 3 {
		return nil, fmt.Errorf("music: JADE needs ≥3 subarray subcarriers")
	}
	return &JADE{p: p}, nil
}

// EstimatePaths returns joint (AoA, ToF) estimates, sorted by descending
// path power (the associated signal eigenvalue).
func (j *JADE) EstimatePaths(c *csi.Matrix) ([]PathEstimate, error) {
	paths, _, err := j.EstimatePathsDiag(c)
	return paths, err
}

// EstimatePathsDiag is EstimatePaths plus per-packet DSP diagnostics for
// burst tracing. JADE is search-free, so the grid fields of the Diag stay
// zero. The Diag is valid only when err is nil.
func (j *JADE) EstimatePathsDiag(c *csi.Matrix) ([]PathEstimate, Diag, error) {
	var d Diag
	if err := c.Validate(); err != nil {
		return nil, d, err
	}
	if c.Antennas() != j.p.Array.Antennas || c.Subcarriers() != j.p.Band.Subcarriers {
		return nil, d, fmt.Errorf("music: CSI is %dx%d, JADE expects %dx%d",
			c.Antennas(), c.Subcarriers(), j.p.Array.Antennas, j.p.Band.Subcarriers)
	}
	subAnt, subSub := j.p.SubarrayAntennas, j.p.SubarraySubcarriers
	x := SmoothCSI(c, subAnt, subSub)
	r := x.Gram()
	eig, err := cmat.EigHermitian(r)
	if err != nil {
		return nil, d, fmt.Errorf("music: JADE eigendecomposition: %w", err)
	}
	l := eig.SignalDimension(j.p.EigenThreshold, j.p.MaxPaths)
	// The shift-invariance equations need strictly fewer paths than
	// selected rows; the subcarrier selection drops subAnt rows.
	maxL := subAnt*(subSub-1) - 1
	if l > maxL {
		l = maxL
	}
	if l < 1 {
		l = 1
	}
	d.EigenSweeps = eig.Sweeps
	d.SignalDim = l
	d.EigenGapDB = eigenGapDB(eig.Values, l)
	rows := subAnt * subSub
	es := cmat.New(rows, l)
	for col := 0; col < l; col++ {
		es.SetCol(col, eig.Vectors[col])
	}

	// Subcarrier-shift invariance: rows with s < subSub−1 vs s > 0 inside
	// each antenna block.
	up1, dn1 := selectRows(es, subAnt, subSub, func(a, s int) bool { return s < subSub-1 }),
		selectRows(es, subAnt, subSub, func(a, s int) bool { return s > 0 })
	psiTau, err := cmat.LeastSquares(up1, dn1)
	if err != nil {
		return nil, d, fmt.Errorf("music: JADE subcarrier invariance: %w", err)
	}
	// Antenna-shift invariance: blocks a < subAnt−1 vs a > 0.
	up2, dn2 := selectRows(es, subAnt, subSub, func(a, s int) bool { return a < subAnt-1 }),
		selectRows(es, subAnt, subSub, func(a, s int) bool { return a > 0 })
	psiTheta, err := cmat.LeastSquares(up2, dn2)
	if err != nil {
		return nil, d, fmt.Errorf("music: JADE antenna invariance: %w", err)
	}

	// Eigen-decompose the delay operator; its eigenvector basis T
	// approximately diagonalizes the angle operator too, pairing each
	// Ω(τ_k) with its Φ(θ_k).
	omegas, tvecs, err := cmat.EigGeneral(psiTau, true)
	if err != nil {
		return nil, d, fmt.Errorf("music: JADE delay eigenproblem: %w", err)
	}
	tmat := cmat.New(l, l)
	for col, v := range tvecs {
		tmat.SetCol(col, v)
	}
	tinv, err := cmat.Inverse(tmat)
	if err != nil {
		return nil, d, fmt.Errorf("music: JADE eigenbasis is singular: %w", err)
	}
	diag := tinv.Mul(psiTheta).Mul(tmat)

	fd := j.p.Band.SubcarrierSpacingHz
	sinFactor := 2 * math.Pi * j.p.Array.SpacingM * j.p.Band.CarrierHz / 299792458.0

	out := make([]PathEstimate, 0, l)
	for k := 0; k < l; k++ {
		// Ω = e^{−j2π·f_δ·τ} ⇒ τ = −arg(Ω)/(2π·f_δ), unwrapped to the
		// estimator's ToF window.
		// Shift by whole periods in one step — per-period accumulation
		// would compound one rounding error per wrap.
		tau := -cmplx.Phase(omegas[k]) / (2 * math.Pi * fd)
		period := 1 / fd
		if tau < j.p.ToFMinS {
			tau += math.Ceil((j.p.ToFMinS-tau)/period) * period
		}
		if tau > j.p.ToFMaxS {
			tau -= math.Ceil((tau-j.p.ToFMaxS)/period) * period
		}
		phi := diag.At(k, k)
		s := -cmplx.Phase(phi) / sinFactor
		if s > 1 {
			s = 1
		} else if s < -1 {
			s = -1
		}
		power := 0.0
		if k < len(eig.Values) {
			power = eig.Values[k]
		}
		out = append(out, PathEstimate{AoA: math.Asin(s), ToF: tau, Power: power})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Power > out[b].Power })
	d.Peaks = len(out)
	return out, d, nil
}

// selectRows extracts the rows of es whose (antenna, subcarrier) window
// index satisfies keep, preserving order.
func selectRows(es *cmat.Matrix, subAnt, subSub int, keep func(a, s int) bool) *cmat.Matrix {
	var idx []int
	for a := 0; a < subAnt; a++ {
		for s := 0; s < subSub; s++ {
			if keep(a, s) {
				idx = append(idx, a*subSub+s)
			}
		}
	}
	out := cmat.New(len(idx), es.Cols())
	for r, src := range idx {
		for c := 0; c < es.Cols(); c++ {
			out.Set(r, c, es.At(src, c))
		}
	}
	return out
}
