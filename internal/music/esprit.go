package music

import (
	"fmt"
	"math"
	"math/cmplx"
	"sort"

	"spotfi/internal/cmat"
	"spotfi/internal/csi"
	"spotfi/internal/rf"
)

// ESPRIT is a search-free AoA estimator exploiting the shift invariance of
// a uniform linear array — the algorithm family (Van der Veen, Vanderveen
// & Paulraj) the paper cites as the lineage of its joint estimation
// (Sec. 2, "joint estimation of AoA and ToF ... shift-invariance
// properties"). It is included as an additional baseline: like MUSIC-AoA
// it models only the antenna phase shifts, so with M antennas it resolves
// at most M−1 paths, but it needs no spectrum grid.
type ESPRIT struct {
	p AoAParams
}

// NewESPRIT validates p and returns the estimator.
func NewESPRIT(p AoAParams) (*ESPRIT, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &ESPRIT{p: p}, nil
}

// EstimatePaths returns the AoA estimates (ToF is not observable; Power is
// the associated signal eigenvalue), sorted by descending eigenvalue.
func (e *ESPRIT) EstimatePaths(c *csi.Matrix) ([]PathEstimate, error) {
	paths, _, err := e.EstimatePathsDiag(c)
	return paths, err
}

// EstimatePathsDiag is EstimatePaths plus the subset of Diag a search-free
// estimator can populate (eigen iteration count, signal dimension, eigen
// gap). It is what the localizer's ESPRIT-first fast path consumes to
// decide whether the cheap estimate is trustworthy.
func (e *ESPRIT) EstimatePathsDiag(c *csi.Matrix) ([]PathEstimate, Diag, error) {
	if err := c.Validate(); err != nil {
		return nil, Diag{}, err
	}
	m := e.p.Array.Antennas
	if c.Antennas() != m || c.Subcarriers() != e.p.Band.Subcarriers {
		return nil, Diag{}, fmt.Errorf("music: CSI is %dx%d, ESPRIT expects %dx%d",
			c.Antennas(), c.Subcarriers(), m, e.p.Band.Subcarriers)
	}
	x := cmat.FromRows(c.Values)
	r := x.Gram()
	eig, err := cmat.EigHermitian(r)
	if err != nil {
		return nil, Diag{}, fmt.Errorf("music: ESPRIT eigendecomposition: %w", err)
	}
	l := eig.SignalDimension(e.p.EigenThreshold, e.p.MaxPaths)
	if l > m-1 {
		l = m - 1
	}
	d := Diag{
		EigenSweeps: eig.Sweeps,
		SignalDim:   l,
		EigenGapDB:  eigenGapDB(eig.Values, l),
	}

	// Signal subspace Es (m×l); subarrays drop the last / first row.
	es := cmat.New(m, l)
	for j := 0; j < l; j++ {
		es.SetCol(j, eig.Vectors[j])
	}
	es1 := cmat.New(m-1, l) // rows 0..m-2
	es2 := cmat.New(m-1, l) // rows 1..m-1
	for i := 0; i < m-1; i++ {
		for j := 0; j < l; j++ {
			es1.Set(i, j, es.At(i, j))
			es2.Set(i, j, es.At(i+1, j))
		}
	}

	// Least-squares ESPRIT: Ψ = (Es1ᴴEs1)⁻¹ Es1ᴴ Es2; its eigenvalues are
	// the per-path inter-antenna phase factors Φ(θ_k).
	a := es1.ConjTranspose().Mul(es1) // l×l Hermitian
	bMat := es1.ConjTranspose().Mul(es2)
	psi, err := solveSmallHermitian(a, bMat)
	if err != nil {
		return nil, Diag{}, err
	}
	phis, err := smallEigenvalues(psi)
	if err != nil {
		return nil, Diag{}, err
	}

	sinFactor := 2 * math.Pi * e.p.Array.SpacingM * e.p.Band.CarrierHz / rf.SpeedOfLight
	out := make([]PathEstimate, 0, len(phis))
	for k, phi := range phis {
		// Φ = exp(−j·sinFactor·sin θ) ⇒ sin θ = −arg(Φ)/sinFactor.
		s := -cmplx.Phase(phi) / sinFactor
		if s > 1 {
			s = 1
		} else if s < -1 {
			s = -1
		}
		power := 0.0
		if k < len(eig.Values) {
			power = eig.Values[k]
		}
		out = append(out, PathEstimate{AoA: math.Asin(s), Power: power})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Power > out[b].Power })
	return out, d, nil
}

// solveSmallHermitian solves A·X = B for Hermitian positive-definite A of
// size 1×1 or 2×2 (the only sizes a 3-antenna ESPRIT produces).
func solveSmallHermitian(a, b *cmat.Matrix) (*cmat.Matrix, error) {
	n := a.Rows()
	switch n {
	case 1:
		d := a.At(0, 0)
		if cmplx.Abs(d) < 1e-18 {
			return nil, fmt.Errorf("music: singular 1x1 system")
		}
		x := cmat.New(1, b.Cols())
		for j := 0; j < b.Cols(); j++ {
			x.Set(0, j, b.At(0, j)/d)
		}
		return x, nil
	case 2:
		det := a.At(0, 0)*a.At(1, 1) - a.At(0, 1)*a.At(1, 0)
		if cmplx.Abs(det) < 1e-18 {
			return nil, fmt.Errorf("music: singular 2x2 system")
		}
		inv := cmat.New(2, 2)
		inv.Set(0, 0, a.At(1, 1)/det)
		inv.Set(0, 1, -a.At(0, 1)/det)
		inv.Set(1, 0, -a.At(1, 0)/det)
		inv.Set(1, 1, a.At(0, 0)/det)
		return inv.Mul(b), nil
	default:
		return nil, fmt.Errorf("music: ESPRIT solver supports 1x1/2x2, got %dx%d", n, n)
	}
}

// smallEigenvalues returns the eigenvalues of a 1×1 or 2×2 complex
// (generally non-Hermitian) matrix in closed form.
func smallEigenvalues(m *cmat.Matrix) ([]complex128, error) {
	switch m.Rows() {
	case 1:
		return []complex128{m.At(0, 0)}, nil
	case 2:
		tr := m.At(0, 0) + m.At(1, 1)
		det := m.At(0, 0)*m.At(1, 1) - m.At(0, 1)*m.At(1, 0)
		disc := cmplx.Sqrt(tr*tr - 4*det)
		return []complex128{(tr + disc) / 2, (tr - disc) / 2}, nil
	default:
		return nil, fmt.Errorf("music: eigenvalues supported for 1x1/2x2, got %dx%d", m.Rows(), m.Rows())
	}
}
