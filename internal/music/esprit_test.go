package music

import (
	"math"
	"math/rand"
	"testing"

	"spotfi/internal/cmat"
	"spotfi/internal/csi"
	"spotfi/internal/geom"
	"spotfi/internal/rf"
)

func TestESPRITSinglePath(t *testing.T) {
	band := rf.DefaultBand()
	array := rf.DefaultArray(band)
	e, err := NewESPRIT(DefaultAoAParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, deg := range []float64{-60, -20, 0, 15, 45, 70} {
		theta := geom.Rad(deg)
		c := buildCSI(band, array, []PathEstimate{{AoA: theta, ToF: 30e-9}}, []complex128{1})
		paths, err := e.EstimatePaths(c)
		if err != nil {
			t.Fatal(err)
		}
		if len(paths) == 0 {
			t.Fatalf("no paths at %v°", deg)
		}
		if got := geom.Deg(paths[0].AoA); math.Abs(got-deg) > 0.5 {
			t.Fatalf("ESPRIT AoA = %.2f°, want %v°", got, deg)
		}
	}
}

func TestESPRITSinglePathNoisy(t *testing.T) {
	band := rf.DefaultBand()
	array := rf.DefaultArray(band)
	e, err := NewESPRIT(DefaultAoAParams())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(121))
	theta := geom.Rad(30)
	c := buildCSI(band, array, []PathEstimate{{AoA: theta, ToF: 30e-9}}, []complex128{1})
	addNoise(c, 0.02, rng)
	paths, err := e.EstimatePaths(c)
	if err != nil {
		t.Fatal(err)
	}
	if got := geom.Deg(paths[0].AoA); math.Abs(got-30) > 3 {
		t.Fatalf("noisy ESPRIT AoA = %.1f°, want 30°", got)
	}
}

func TestESPRITTwoPaths(t *testing.T) {
	// Well-separated AoAs with distinct ToFs (subcarrier snapshots
	// decorrelate the paths).
	band := rf.DefaultBand()
	array := rf.DefaultArray(band)
	e, err := NewESPRIT(DefaultAoAParams())
	if err != nil {
		t.Fatal(err)
	}
	truth := []PathEstimate{
		{AoA: geom.Rad(-40), ToF: 20e-9},
		{AoA: geom.Rad(35), ToF: 80e-9},
	}
	c := buildCSI(band, array, truth, []complex128{1, complex(0.6, 0.5)})
	paths, err := e.EstimatePaths(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("resolved %d paths, want 2", len(paths))
	}
	for _, want := range truth {
		found := false
		for _, got := range paths {
			if geom.Deg(math.Abs(got.AoA-want.AoA)) < 3 {
				found = true
			}
		}
		if !found {
			t.Fatalf("path at %.0f° not resolved: %+v", geom.Deg(want.AoA), paths)
		}
	}
}

func TestESPRITAgreesWithMUSIC(t *testing.T) {
	band := rf.DefaultBand()
	array := rf.DefaultArray(band)
	esprit, err := NewESPRIT(DefaultAoAParams())
	if err != nil {
		t.Fatal(err)
	}
	musicEst, err := NewAoAEstimator(DefaultAoAParams())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(122))
	for trial := 0; trial < 10; trial++ {
		theta := geom.Rad(-70 + 140*rng.Float64())
		c := buildCSI(band, array, []PathEstimate{{AoA: theta, ToF: 40e-9}}, []complex128{1})
		addNoise(c, 0.01, rng)
		pe, err1 := esprit.EstimatePaths(c)
		pm, err2 := musicEst.EstimatePaths(c)
		if err1 != nil || err2 != nil || len(pe) == 0 || len(pm) == 0 {
			t.Fatalf("trial %d failed: %v %v", trial, err1, err2)
		}
		if d := geom.Deg(math.Abs(pe[0].AoA - pm[0].AoA)); d > 2 {
			t.Fatalf("trial %d: ESPRIT %.1f° vs MUSIC %.1f°",
				trial, geom.Deg(pe[0].AoA), geom.Deg(pm[0].AoA))
		}
	}
}

func TestESPRITErrors(t *testing.T) {
	e, err := NewESPRIT(DefaultAoAParams())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.EstimatePaths(csi.NewMatrix(2, 30)); err == nil {
		t.Fatal("wrong shape accepted")
	}
	bad := DefaultAoAParams()
	bad.MaxPaths = 0
	if _, err := NewESPRIT(bad); err == nil {
		t.Fatal("invalid params accepted")
	}
	nan := csi.NewMatrix(3, 30)
	nan.Values[0][0] = complex(math.NaN(), 0)
	if _, err := e.EstimatePaths(nan); err == nil {
		t.Fatal("NaN CSI accepted")
	}
}

func TestSmallEigenvaluesClosedForm(t *testing.T) {
	// [[2, 1], [1, 2]] has eigenvalues 3, 1.
	m := cmatFromRows([][]complex128{{2, 1}, {1, 2}})
	vals, err := smallEigenvalues(m)
	if err != nil {
		t.Fatal(err)
	}
	got := []float64{real(vals[0]), real(vals[1])}
	if math.Abs(got[0]-3) > 1e-12 || math.Abs(got[1]-1) > 1e-12 {
		t.Fatalf("eigenvalues %v, want [3 1]", got)
	}
	one := cmatFromRows([][]complex128{{5i}})
	vals, err = smallEigenvalues(one)
	if err != nil || vals[0] != 5i {
		t.Fatalf("1x1 eigenvalue %v (%v)", vals, err)
	}
}

// cmatFromRows is a tiny local alias to keep tests readable.
func cmatFromRows(rows [][]complex128) *cmat.Matrix { return cmat.FromRows(rows) }
