package music

import (
	"math"
	"math/cmplx"
	"math/rand"
	"sync"
	"testing"

	"spotfi/internal/csi"
	"spotfi/internal/rf"
)

// optScene synthesizes a noisy multipath packet with the given paths.
func optScene(seed int64, sigma float64, paths []PathEstimate, gains []complex128) *csi.Matrix {
	band := rf.DefaultBand()
	array := rf.DefaultArray(band)
	c := buildCSI(band, array, paths, gains)
	addNoise(c, sigma, rand.New(rand.NewSource(seed)))
	return c
}

func TestSteeringCacheSharedAndCounted(t *testing.T) {
	p := DefaultParams()
	// Perturb the grid so this configuration cannot collide with other
	// tests' cache entries.
	p.ToFMaxS = 201e-9
	h0, m0, _ := SteeringCacheStats()
	e1, err := NewEstimator(p)
	if err != nil {
		t.Fatal(err)
	}
	h1, m1, _ := SteeringCacheStats()
	if m1 != m0+1 || h1 != h0 {
		t.Fatalf("first build: hits %d→%d misses %d→%d, want one miss", h0, h1, m0, m1)
	}
	e2, err := NewEstimator(p)
	if err != nil {
		t.Fatal(err)
	}
	h2, m2, _ := SteeringCacheStats()
	if h2 != h1+1 || m2 != m1 {
		t.Fatalf("second build: hits %d→%d misses %d→%d, want one hit", h1, h2, m1, m2)
	}
	if e1.tab != e2.tab {
		t.Fatal("same params produced different steering tables")
	}
	// A different grid is a different entry.
	p2 := p
	p2.AoAGridRad = math.Pi / 360
	e3, err := NewEstimator(p2)
	if err != nil {
		t.Fatal(err)
	}
	if e3.tab == e1.tab {
		t.Fatal("different grids share a steering table")
	}
}

func TestSteeringCacheConcurrentLookup(t *testing.T) {
	p := DefaultParams()
	p.ToFMaxS = 202e-9 // unique cache key for this test
	var wg sync.WaitGroup
	tabs := make([]*steeringTable, 16)
	for i := range tabs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e, err := NewEstimator(p)
			if err != nil {
				t.Error(err)
				return
			}
			tabs[i] = e.tab
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(tabs); i++ {
		if tabs[i] != tabs[0] {
			t.Fatal("concurrent lookups produced distinct tables")
		}
	}
}

func TestSteeringTableMatchesDirectEvaluation(t *testing.T) {
	p := DefaultParams()
	e, err := NewEstimator(p)
	if err != nil {
		t.Fatal(err)
	}
	tab := e.tab
	for _, i := range []int{0, 1, len(tab.thetas) / 2, len(tab.thetas) - 1} {
		phi := Phi(tab.thetas[i], p.Array, p.Band)
		for a := 0; a < tab.subAnt; a++ {
			want := complexPow(phi, a)
			if cmplx.Abs(tab.phi[i*tab.subAnt+a]-want) > 1e-12 {
				t.Fatalf("phi table (%d,%d) = %v, want %v", i, a, tab.phi[i*tab.subAnt+a], want)
			}
		}
	}
	for _, j := range []int{0, len(tab.taus) / 2, len(tab.taus) - 1} {
		om := Omega(tab.taus[j], p.Band)
		for s := 0; s < tab.subSub; s++ {
			want := complexPow(om, s)
			if cmplx.Abs(tab.omega[j*tab.subSub+s]-want) > 1e-12 {
				t.Fatalf("omega table (%d,%d) mismatch", j, s)
			}
		}
	}
}

func complexPow(z complex128, n int) complex128 {
	r, phase := cmplx.Polar(z)
	return cmplx.Rect(math.Pow(r, float64(n)), phase*float64(n))
}

// TestCoarseMatchesDense is the core equivalence guarantee of the
// coarse-to-fine sweep: across seeded scenes — including multipath-heavy
// ones — the returned paths must match the classic dense sweep exactly
// (same cells, same refinement, same dedupe).
func TestCoarseMatchesDense(t *testing.T) {
	scenes := []struct {
		name  string
		paths []PathEstimate
		gains []complex128
		sigma float64
	}{
		{
			name:  "single",
			paths: []PathEstimate{{AoA: 0.2, ToF: 30e-9}},
			gains: []complex128{1},
			sigma: 0.05,
		},
		{
			name: "three-path",
			paths: []PathEstimate{
				{AoA: 0.3, ToF: 15e-9}, {AoA: -0.5, ToF: 55e-9}, {AoA: 0.9, ToF: 95e-9}},
			gains: []complex128{1, 0.6 + 0.2i, 0.35 - 0.1i},
			sigma: 0.05,
		},
		{
			name: "multipath-heavy",
			paths: []PathEstimate{
				{AoA: -1.1, ToF: -80e-9}, {AoA: -0.4, ToF: 10e-9}, {AoA: -0.32, ToF: 22e-9},
				{AoA: 0.15, ToF: 60e-9}, {AoA: 0.8, ToF: 120e-9}, {AoA: 1.25, ToF: 180e-9}},
			gains: []complex128{0.7, 1, 0.9 - 0.3i, 0.5 + 0.4i, 0.45, 0.3i},
			sigma: 0.08,
		},
	}
	pd := DefaultParams()
	pd.CoarseGridFactor = 1
	dense, err := NewEstimator(pd)
	if err != nil {
		t.Fatal(err)
	}
	pc := DefaultParams()
	coarse, err := NewEstimator(pc)
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range scenes {
		for seed := int64(1); seed <= 8; seed++ {
			c := optScene(seed, sc.sigma, sc.paths, sc.gains)
			dp, dd, err := dense.EstimatePathsDiag(c.Clone())
			if err != nil {
				t.Fatalf("%s/%d dense: %v", sc.name, seed, err)
			}
			cp, cd, err := coarse.EstimatePathsDiag(c)
			if err != nil {
				t.Fatalf("%s/%d coarse: %v", sc.name, seed, err)
			}
			if len(dp) != len(cp) {
				t.Fatalf("%s/%d: dense %d paths, coarse %d", sc.name, seed, len(dp), len(cp))
			}
			for i := range dp {
				if dp[i] != cp[i] { //lint:allow floateq equivalence means identical cells and refinement
					t.Fatalf("%s/%d path %d: dense %+v coarse %+v", sc.name, seed, i, dp[i], cp[i])
				}
			}
			if cd.CellsSwept > dd.CellsSwept {
				t.Fatalf("%s/%d: coarse swept %d cells, dense %d", sc.name, seed, cd.CellsSwept, dd.CellsSwept)
			}
		}
	}
}

// TestCoarseWindowEdgeFallback forces an extremely coarse lattice so peaks
// routinely land on window borders, exercising the dense-fallback guard —
// equivalence must hold regardless.
func TestCoarseWindowEdgeFallback(t *testing.T) {
	paths := []PathEstimate{
		{AoA: -0.45, ToF: 18e-9}, {AoA: -0.38, ToF: 26e-9},
		{AoA: 0.52, ToF: 70e-9}, {AoA: 0.58, ToF: 85e-9}}
	gains := []complex128{1, 0.95 - 0.2i, 0.8 + 0.3i, 0.75}

	pd := DefaultParams()
	pd.CoarseGridFactor = 1
	dense, err := NewEstimator(pd)
	if err != nil {
		t.Fatal(err)
	}
	pc := DefaultParams()
	pc.CoarseGridFactor = 16
	coarse, err := NewEstimator(pc)
	if err != nil {
		t.Fatal(err)
	}
	fallbacks := 0
	for seed := int64(1); seed <= 12; seed++ {
		c := optScene(seed, 0.1, paths, gains)
		dp, _, err := dense.EstimatePathsDiag(c.Clone())
		if err != nil {
			t.Fatal(err)
		}
		cp, cd, err := coarse.EstimatePathsDiag(c)
		if err != nil {
			t.Fatal(err)
		}
		if cd.DenseFallback {
			fallbacks++
		}
		if len(dp) != len(cp) {
			t.Fatalf("seed %d: dense %d paths, coarse-16 %d (fallback=%v)", seed, len(dp), len(cp), cd.DenseFallback)
		}
		for i := range dp {
			if dp[i] != cp[i] { //lint:allow floateq equivalence means identical cells and refinement
				t.Fatalf("seed %d path %d: dense %+v coarse-16 %+v", seed, i, dp[i], cp[i])
			}
		}
	}
	t.Logf("dense fallbacks triggered on %d/12 seeds", fallbacks)
}

func TestEstimateSteadyStateAllocs(t *testing.T) {
	e, err := NewEstimator(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	cs := make([]*csi.Matrix, 4)
	for i := range cs {
		cs[i] = optScene(int64(i+1), 0.05,
			[]PathEstimate{{AoA: 0.3, ToF: 15e-9}, {AoA: -0.5, ToF: 55e-9}},
			[]complex128{1, 0.6 + 0.2i})
	}
	for _, c := range cs {
		if _, err := e.EstimatePaths(c); err != nil {
			t.Fatal(err)
		}
	}
	n := 0
	allocs := testing.AllocsPerRun(16, func() {
		if _, err := e.EstimatePaths(cs[n%len(cs)]); err != nil {
			t.Fatal(err)
		}
		n++
	})
	// The only steady-state allocation is the caller-owned result slice.
	if allocs > 2 {
		t.Fatalf("steady-state EstimatePaths allocates %.1f times per call, want ≤ 2", allocs)
	}
}

// TestDedupeRadiiSurviveGridRefinement is the regression test for the
// grid-index dedupe bug: halving both grid steps must not change how many
// distinct paths survive merging, because the merge radii are physical.
func TestDedupeRadiiSurviveGridRefinement(t *testing.T) {
	paths := []PathEstimate{
		{AoA: 0.3, ToF: 20e-9}, {AoA: -0.6, ToF: 80e-9}}
	gains := []complex128{1, 0.7 + 0.2i}

	counts := make(map[string]int)
	for _, cfg := range []struct {
		name  string
		scale float64
	}{{"default-grid", 1}, {"half-step-grid", 0.5}} {
		p := DefaultParams()
		p.AoAGridRad *= cfg.scale
		p.ToFGridS *= cfg.scale
		e, err := NewEstimator(p)
		if err != nil {
			t.Fatal(err)
		}
		c := optScene(3, 0.05, paths, gains)
		got, err := e.EstimatePaths(c)
		if err != nil {
			t.Fatal(err)
		}
		counts[cfg.name] = len(got)
	}
	if counts["default-grid"] != counts["half-step-grid"] {
		t.Fatalf("path count changed with grid refinement: %v", counts)
	}
}

// TestGeometricSeriesClosedForm is the regression test for phase/magnitude
// accumulation drift: element n of the series must match the closed form
// z^n even at n = 256.
func TestGeometricSeriesClosedForm(t *testing.T) {
	const n = 256
	z := cmplx.Exp(complex(0, -2*math.Pi*0.31830988618)) // irrational turn: worst case for drift
	out := geometricSeries(z, n)
	phase := cmplx.Phase(z)
	for _, i := range []int{1, 2, 17, 128, n - 1} {
		want := cmplx.Rect(1, phase*float64(i))
		if cmplx.Abs(out[i]-want) > 1e-12 {
			t.Fatalf("element %d: %v, want %v (|Δ| = %.3g)", i, out[i], want, cmplx.Abs(out[i]-want))
		}
		// The input z = e^{jθ} itself carries ~1 ulp of magnitude error,
		// so the bound is a few ulps — independent of i, unlike the
		// repeated-multiplication drift which grows linearly with i.
		if d := math.Abs(cmplx.Abs(out[i]) - 1); d > 5e-15 {
			t.Fatalf("element %d walked off the unit circle by %.3g", i, d)
		}
	}
	// Non-unit modulus stays on the closed form too.
	r := 0.99
	zr := complex(r, 0) * z
	outR := geometricSeries(zr, n)
	for _, i := range []int{1, 64, n - 1} {
		want := cmplx.Rect(math.Pow(r, float64(i)), phase*float64(i))
		if cmplx.Abs(outR[i]-want) > 1e-12*math.Pow(r, float64(i))+1e-18 {
			t.Fatalf("damped element %d: %v, want %v", i, outR[i], want)
		}
	}
}

func TestRefineAxisBoundaryAndClamp(t *testing.T) {
	grid := []float64{0, 1, 2, 3}
	flat := func(int) float64 { return 1 }
	// Out-of-range indices clamp into the grid instead of panicking.
	if got := refineAxis(grid, -3, flat); got != 0 {
		t.Fatalf("refineAxis(-3) = %v, want 0", got)
	}
	if got := refineAxis(grid, 99, flat); got != 3 {
		t.Fatalf("refineAxis(99) = %v, want 3", got)
	}
	// Boundary indices return the grid point: no neighbor to fit through.
	if got := refineAxis(grid, 0, flat); got != 0 {
		t.Fatalf("refineAxis(0) = %v, want 0", got)
	}
	if got := refineAxis(grid, len(grid)-1, flat); got != 3 {
		t.Fatalf("refineAxis(last) = %v, want 3", got)
	}
	// A flat (degenerate) parabola at an interior point returns the grid
	// point rather than dividing by ~0.
	if got := refineAxis(grid, 1, flat); got != 1 {
		t.Fatalf("flat refineAxis = %v, want 1", got)
	}
	// The interpolated result never leaves the grid range even when the
	// parabola vertex would.
	steep := func(k int) float64 { return []float64{10, 9.99, 0, -50}[k] }
	got := refineAxis(grid, 1, steep)
	if got < grid[0] || got > grid[len(grid)-1] {
		t.Fatalf("refined value %v escaped the grid", got)
	}
	if refineAxis(nil, 0, flat) != 0 {
		t.Fatal("empty grid must return 0")
	}
}
