package music

import (
	"math"
	"testing"
)

// TestGridPointsExact pins the regression for float-accumulation drift:
// grid length and endpoints must be exact for any step, including steps
// where `x += step` accumulation lands the endpoint an ulp past the bound.
func TestGridPointsExact(t *testing.T) {
	cases := []struct {
		start, stop, step float64
		wantN             int
	}{
		{-math.Pi / 2, math.Pi / 2, math.Pi / 180, 181},        // 1° AoA grid
		{-math.Pi / 2, math.Pi / 2, math.Pi / 1800, 1801},      // 0.1° AoA grid
		{-math.Pi / 2, math.Pi / 2, math.Pi / 180 * 0.25, 721}, // 0.25°
		{-200e-9, 200e-9, 2e-9, 201},                           // default ToF grid
		{-200e-9, 200e-9, 1e-9, 401},
		{-200e-9, 200e-9, 0.7e-9, 572}, // non-divisor step: floor+1 points
		{0, 1, 0.1, 11},
	}
	for _, c := range cases {
		g := gridPoints(c.start, c.stop, c.step)
		if len(g) != c.wantN {
			t.Errorf("gridPoints(%v,%v,%v): %d points, want %d", c.start, c.stop, c.step, len(g), c.wantN)
			continue
		}
		if g[0] != c.start {
			t.Errorf("gridPoints(%v,%v,%v): starts at %v", c.start, c.stop, c.step, g[0])
		}
		if last := g[len(g)-1]; last > c.stop+c.step*1e-9 || c.stop-last >= c.step {
			t.Errorf("gridPoints(%v,%v,%v): ends at %v, want within one step below %v", c.start, c.stop, c.step, last, c.stop)
		}
		for i := 1; i < len(g); i++ {
			if want := c.start + float64(i)*c.step; g[i] != want {
				t.Fatalf("point %d = %v, want exact %v", i, g[i], want)
			}
		}
	}
}

// TestEstimatorGridMatchesParams checks the estimators expose exact grids
// for the paper's default parameters.
func TestEstimatorGridMatchesParams(t *testing.T) {
	e, err := NewEstimator(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(e.thetas) != 181 {
		t.Fatalf("default AoA grid has %d points, want 181", len(e.thetas))
	}
	if len(e.taus) != 201 {
		t.Fatalf("default ToF grid has %d points, want 201", len(e.taus))
	}
	if e.thetas[0] != -math.Pi/2 {
		t.Fatalf("AoA grid starts at %v", e.thetas[0])
	}
	if got := e.thetas[180]; math.Abs(got-math.Pi/2) > 1e-12 {
		t.Fatalf("AoA grid ends at %v, want π/2", got)
	}
	if got := e.taus[200]; math.Abs(got-200e-9) > 1e-21 {
		t.Fatalf("ToF grid ends at %v, want 200ns", got)
	}

	a, err := NewAoAEstimator(DefaultAoAParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.thetas) != 181 || len(a.steer) != 181 {
		t.Fatalf("baseline AoA grid has %d points / %d steering vectors, want 181", len(a.thetas), len(a.steer))
	}
}
