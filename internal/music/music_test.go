package music

import (
	"math"
	"math/cmplx"
	"math/rand"
	"spotfi/internal/cmat"
	"testing"

	"spotfi/internal/csi"
	"spotfi/internal/geom"
	"spotfi/internal/rf"
)

// buildCSI synthesizes a clean CSI matrix from explicit (AoA, ToF, gain)
// paths using the exact signal model of Eq. 7.
func buildCSI(band rf.Band, array rf.Array, paths []PathEstimate, gains []complex128) *csi.Matrix {
	m := csi.NewMatrix(array.Antennas, band.Subcarriers)
	for i, p := range paths {
		phi := Phi(p.AoA, array, band)
		omega := Omega(p.ToF, band)
		antPhase := complex(1, 0)
		for a := 0; a < array.Antennas; a++ {
			v := gains[i] * antPhase
			for n := 0; n < band.Subcarriers; n++ {
				m.Values[a][n] += v
				v *= omega
			}
			antPhase *= phi
		}
	}
	return m
}

func addNoise(m *csi.Matrix, sigma float64, rng *rand.Rand) {
	for a := range m.Values {
		for n := range m.Values[a] {
			m.Values[a][n] += complex(rng.NormFloat64()*sigma, rng.NormFloat64()*sigma)
		}
	}
}

func TestPhiOmegaUnitModulus(t *testing.T) {
	band := rf.DefaultBand()
	array := rf.DefaultArray(band)
	for _, th := range []float64{-1.5, -0.3, 0, 0.7, 1.5} {
		if math.Abs(cmplx.Abs(Phi(th, array, band))-1) > 1e-12 {
			t.Fatalf("|Φ(%v)| ≠ 1", th)
		}
	}
	for _, tau := range []float64{-100e-9, 0, 50e-9} {
		if math.Abs(cmplx.Abs(Omega(tau, band))-1) > 1e-12 {
			t.Fatalf("|Ω(%v)| ≠ 1", tau)
		}
	}
	// Broadside and zero delay give no phase shift.
	if cmplx.Abs(Phi(0, array, band)-1) > 1e-12 {
		t.Fatal("Φ(0) ≠ 1")
	}
	if cmplx.Abs(Omega(0, band)-1) > 1e-12 {
		t.Fatal("Ω(0) ≠ 1")
	}
}

func TestOmegaPhaseMatchesPaper(t *testing.T) {
	// Paper Sec. 3.1.2: two subcarriers 40 MHz apart and ToF 10 ns give a
	// 2.5 rad phase difference.
	band := rf.Band{CarrierHz: 5.5e9, SubcarrierSpacingHz: 40e6, Subcarriers: 2}
	got := cmplx.Phase(Omega(10e-9, band))
	want := -2 * math.Pi * 40e6 * 10e-9 // −2.513 rad
	if math.Abs(geom.NormalizeAngle(got-want)) > 1e-9 {
		t.Fatalf("Ω phase = %v, want %v", got, want)
	}
	if math.Abs(math.Abs(want)-2.513) > 0.01 {
		t.Fatalf("paper example says ≈2.5 rad, got %v", math.Abs(want))
	}
}

func TestSteeringVectorStructure(t *testing.T) {
	band := rf.DefaultBand()
	array := rf.DefaultArray(band)
	theta, tau := 0.4, 30e-9
	v := SteeringVector(theta, tau, 2, 15, array, band)
	if len(v) != 30 {
		t.Fatalf("steering vector length %d, want 30", len(v))
	}
	phi := Phi(theta, array, band)
	omega := Omega(tau, band)
	// Element (a, s) = Φ^a·Ω^s, antenna-major.
	for a := 0; a < 2; a++ {
		for s := 0; s < 15; s++ {
			want := complex(1, 0)
			for i := 0; i < a; i++ {
				want *= phi
			}
			for i := 0; i < s; i++ {
				want *= omega
			}
			if cmplx.Abs(v[a*15+s]-want) > 1e-12 {
				t.Fatalf("steering element (%d,%d) mismatch", a, s)
			}
		}
	}
}

func TestSmoothCSILayout(t *testing.T) {
	// Fill CSI with recognizable values: csi[m][n] = m*1000 + n.
	c := csi.NewMatrix(3, 30)
	for m := 0; m < 3; m++ {
		for n := 0; n < 30; n++ {
			c.Values[m][n] = complex(float64(m*1000+n), 0)
		}
	}
	x := SmoothCSI(c, 2, 15)
	if x.Rows() != 30 || x.Cols() != 32 {
		t.Fatalf("smoothed CSI is %dx%d, want 30x32", x.Rows(), x.Cols())
	}
	// Column 0 = window at (antenna shift 0, subcarrier shift 0): rows are
	// csi[0][0..14] then csi[1][0..14].
	for s := 0; s < 15; s++ {
		if x.At(s, 0) != complex(float64(s), 0) {
			t.Fatalf("col0 row%d = %v", s, x.At(s, 0))
		}
		if x.At(15+s, 0) != complex(float64(1000+s), 0) {
			t.Fatalf("col0 row%d = %v", 15+s, x.At(15+s, 0))
		}
	}
	// Last column = (antenna shift 1, subcarrier shift 15): csi[1][15..29]
	// then csi[2][15..29].
	last := x.Cols() - 1
	for s := 0; s < 15; s++ {
		if x.At(s, last) != complex(float64(1000+15+s), 0) {
			t.Fatalf("last col row%d = %v", s, x.At(s, last))
		}
		if x.At(15+s, last) != complex(float64(2000+15+s), 0) {
			t.Fatalf("last col row%d = %v", 15+s, x.At(15+s, last))
		}
	}
}

func TestSmoothCSIColumnsAreShiftScaledSteering(t *testing.T) {
	// For a single path, every column of the smoothed matrix must be the
	// window steering vector scaled by Ω^t·Φ^b — the property (Fig. 3)
	// that makes the construction valid for MUSIC.
	band := rf.DefaultBand()
	array := rf.DefaultArray(band)
	theta, tau := -0.5, 45e-9
	c := buildCSI(band, array, []PathEstimate{{AoA: theta, ToF: tau}}, []complex128{complex(2, 1)})
	x := SmoothCSI(c, 2, 15)
	steer := SteeringVector(theta, tau, 2, 15, array, band)
	phi := Phi(theta, array, band)
	omega := Omega(tau, band)
	col := 0
	for b := 0; b < 2; b++ {
		for tShift := 0; tShift < 16; tShift++ {
			scale := complex(2, 1)
			for i := 0; i < b; i++ {
				scale *= phi
			}
			for i := 0; i < tShift; i++ {
				scale *= omega
			}
			for r := 0; r < 30; r++ {
				want := scale * steer[r]
				if cmplx.Abs(x.At(r, col)-want) > 1e-9 {
					t.Fatalf("column (b=%d,t=%d) row %d mismatch", b, tShift, r)
				}
			}
			col++
		}
	}
}

func TestEstimateSinglePath(t *testing.T) {
	band := rf.DefaultBand()
	array := rf.DefaultArray(band)
	e, err := NewEstimator(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	theta, tau := geom.Rad(25), 40e-9
	c := buildCSI(band, array, []PathEstimate{{AoA: theta, ToF: tau}}, []complex128{1})
	paths, err := e.EstimatePaths(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no paths found")
	}
	best := paths[0]
	if geom.Deg(math.Abs(best.AoA-theta)) > 1 {
		t.Fatalf("AoA = %v°, want 25°", geom.Deg(best.AoA))
	}
	if math.Abs(best.ToF-tau) > 2e-9 {
		t.Fatalf("ToF = %v ns, want 40", best.ToF*1e9)
	}
}

func TestEstimateResolvesTwoPaths(t *testing.T) {
	band := rf.DefaultBand()
	array := rf.DefaultArray(band)
	e, err := NewEstimator(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	truth := []PathEstimate{
		{AoA: geom.Rad(10), ToF: 20e-9},
		{AoA: geom.Rad(-30), ToF: 60e-9},
	}
	rng := rand.New(rand.NewSource(41))
	c := buildCSI(band, array, truth, []complex128{1, complex(0.7, 0.4)})
	addNoise(c, 0.005, rng)
	paths, err := e.EstimatePaths(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 2 {
		t.Fatalf("resolved %d paths, want ≥2", len(paths))
	}
	for _, want := range truth {
		found := false
		for _, got := range paths {
			if geom.Deg(math.Abs(got.AoA-want.AoA)) < 2 && math.Abs(got.ToF-want.ToF) < 4e-9 {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("path (%.0f°, %.0f ns) not resolved; got %+v",
				geom.Deg(want.AoA), want.ToF*1e9, paths)
		}
	}
}

func TestEstimateResolvesMorePathsThanAntennas(t *testing.T) {
	// The headline claim: 4 paths with only 3 antennas.
	band := rf.DefaultBand()
	array := rf.DefaultArray(band)
	p := DefaultParams()
	e, err := NewEstimator(p)
	if err != nil {
		t.Fatal(err)
	}
	truth := []PathEstimate{
		{AoA: geom.Rad(-50), ToF: 10e-9},
		{AoA: geom.Rad(-10), ToF: 55e-9},
		{AoA: geom.Rad(20), ToF: 100e-9},
		{AoA: geom.Rad(55), ToF: 150e-9},
	}
	gains := []complex128{1, complex(0.8, 0.3), complex(0.1, 0.75), complex(-0.4, 0.5)}
	rng := rand.New(rand.NewSource(42))
	c := buildCSI(band, array, truth, gains)
	addNoise(c, 0.003, rng)
	paths, err := e.EstimatePaths(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 4 {
		t.Fatalf("resolved %d paths, want ≥4 (more than the 3 antennas)", len(paths))
	}
	for _, want := range truth {
		found := false
		for _, got := range paths {
			if geom.Deg(math.Abs(got.AoA-want.AoA)) < 3 && math.Abs(got.ToF-want.ToF) < 6e-9 {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("path (%.0f°, %.0f ns) not resolved", geom.Deg(want.AoA), want.ToF*1e9)
		}
	}
}

func TestEstimateWithQuantizedCSI(t *testing.T) {
	band := rf.DefaultBand()
	array := rf.DefaultArray(band)
	e, err := NewEstimator(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	theta, tau := geom.Rad(-15), 70e-9
	c := buildCSI(band, array, []PathEstimate{{AoA: theta, ToF: tau}}, []complex128{1})
	c.Quantize()
	paths, err := e.EstimatePaths(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no paths after quantization")
	}
	if geom.Deg(math.Abs(paths[0].AoA-theta)) > 2 {
		t.Fatalf("quantized AoA error %v°", geom.Deg(math.Abs(paths[0].AoA-theta)))
	}
}

func TestEstimatorRejectsWrongShape(t *testing.T) {
	e, err := NewEstimator(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.EstimatePaths(csi.NewMatrix(2, 30)); err == nil {
		t.Fatal("2-antenna CSI accepted by 3-antenna estimator")
	}
	if _, err := e.EstimatePaths(csi.NewMatrix(3, 20)); err == nil {
		t.Fatal("20-subcarrier CSI accepted by 30-subcarrier estimator")
	}
}

func TestParamsValidate(t *testing.T) {
	base := DefaultParams()
	bad := []func(*Params){
		func(p *Params) { p.SubarrayAntennas = 0 },
		func(p *Params) { p.SubarrayAntennas = 4 },
		func(p *Params) { p.SubarraySubcarriers = 1 },
		func(p *Params) { p.SubarraySubcarriers = 31 },
		func(p *Params) { p.SubarrayAntennas = 3; p.SubarraySubcarriers = 30 },
		func(p *Params) { p.AoAGridRad = 0 },
		func(p *Params) { p.ToFGridS = -1 },
		func(p *Params) { p.ToFMinS = 1e-9; p.ToFMaxS = 0 },
		func(p *Params) { p.EigenThreshold = 0 },
		func(p *Params) { p.EigenThreshold = 1 },
		func(p *Params) { p.MaxPaths = 0 },
	}
	for i, mutate := range bad {
		p := base
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Fatalf("mutation %d passed validation", i)
		}
	}
	if err := base.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSpectrumPeakAtTruth(t *testing.T) {
	band := rf.DefaultBand()
	array := rf.DefaultArray(band)
	e, err := NewEstimator(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	theta, tau := geom.Rad(35), 90e-9
	c := buildCSI(band, array, []PathEstimate{{AoA: theta, ToF: tau}}, []complex128{1})
	spec, err := e.Spectrum(c)
	if err != nil {
		t.Fatal(err)
	}
	// Global max of the grid must sit at the true parameters.
	bi, bj := 0, 0
	for i := range spec.P {
		for j := range spec.P[i] {
			if spec.P[i][j] > spec.P[bi][bj] {
				bi, bj = i, j
			}
		}
	}
	if geom.Deg(math.Abs(spec.Thetas[bi]-theta)) > 1.01 {
		t.Fatalf("spectrum max at %v°, want 35°", geom.Deg(spec.Thetas[bi]))
	}
	if math.Abs(spec.Taus[bj]-tau) > 2.01e-9 {
		t.Fatalf("spectrum max at %v ns, want 90", spec.Taus[bj]*1e9)
	}
}

func TestBaselineSinglePathAoA(t *testing.T) {
	band := rf.DefaultBand()
	array := rf.DefaultArray(band)
	e, err := NewAoAEstimator(DefaultAoAParams())
	if err != nil {
		t.Fatal(err)
	}
	theta := geom.Rad(-40)
	c := buildCSI(band, array, []PathEstimate{{AoA: theta, ToF: 30e-9}}, []complex128{1})
	rng := rand.New(rand.NewSource(43))
	addNoise(c, 0.01, rng)
	paths, err := e.EstimatePaths(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("baseline found no paths")
	}
	if geom.Deg(math.Abs(paths[0].AoA-theta)) > 2 {
		t.Fatalf("baseline AoA = %v°, want −40°", geom.Deg(paths[0].AoA))
	}
}

func TestBaselineCapsAtAntennasMinusOne(t *testing.T) {
	band := rf.DefaultBand()
	array := rf.DefaultArray(band)
	e, err := NewAoAEstimator(DefaultAoAParams())
	if err != nil {
		t.Fatal(err)
	}
	// Four paths; the baseline can resolve at most two.
	truth := []PathEstimate{
		{AoA: geom.Rad(-50), ToF: 10e-9},
		{AoA: geom.Rad(-10), ToF: 55e-9},
		{AoA: geom.Rad(20), ToF: 100e-9},
		{AoA: geom.Rad(55), ToF: 150e-9},
	}
	gains := []complex128{1, complex(0.8, 0.3), complex(0.1, 0.75), complex(-0.4, 0.5)}
	c := buildCSI(band, array, truth, gains)
	paths, err := e.EstimatePaths(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) > 2 {
		t.Fatalf("baseline returned %d paths with 3 antennas", len(paths))
	}
}

func TestBaselineParamsValidate(t *testing.T) {
	base := DefaultAoAParams()
	bad := []func(*AoAParams){
		func(p *AoAParams) { p.AoAGridRad = 0 },
		func(p *AoAParams) { p.EigenThreshold = 0 },
		func(p *AoAParams) { p.MaxPaths = 0 },
		func(p *AoAParams) { p.MaxPaths = 3 }, // = antennas
	}
	for i, mutate := range bad {
		p := base
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Fatalf("mutation %d passed validation", i)
		}
	}
}

func TestBaselineRejectsWrongShape(t *testing.T) {
	e, err := NewAoAEstimator(DefaultAoAParams())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.EstimatePaths(csi.NewMatrix(2, 30)); err == nil {
		t.Fatal("wrong-shape CSI accepted")
	}
}

func TestRefineAxisQuadratic(t *testing.T) {
	// Parabola with maximum at x = 0.3 sampled at −1, 0, 1.
	grid := []float64{-1, 0, 1}
	f := func(k int) float64 {
		x := grid[k]
		return -(x - 0.3) * (x - 0.3)
	}
	got := refineAxis(grid, 1, f)
	if math.Abs(got-0.3) > 1e-9 {
		t.Fatalf("refineAxis = %v, want 0.3", got)
	}
	// Edges return the grid point itself.
	if refineAxis(grid, 0, f) != -1 || refineAxis(grid, 2, f) != 1 {
		t.Fatal("edge refinement must not extrapolate")
	}
}

func TestBaselineForwardBackward(t *testing.T) {
	band := rf.DefaultBand()
	array := rf.DefaultArray(band)
	p := DefaultAoAParams()
	p.ForwardBackward = true
	e, err := NewAoAEstimator(p)
	if err != nil {
		t.Fatal(err)
	}
	// Two fully coherent paths (same ToF ⇒ identical gains across
	// subcarrier snapshots): plain covariance is rank-1, FB averaging
	// restores resolvability of at least the stronger bearing.
	truth := []PathEstimate{
		{AoA: geom.Rad(-35), ToF: 30e-9},
		{AoA: geom.Rad(30), ToF: 30e-9},
	}
	c := buildCSI(band, array, truth, []complex128{1, complex(0.8, 0)})
	rng := rand.New(rand.NewSource(44))
	addNoise(c, 0.005, rng)
	paths, err := e.EstimatePaths(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("FB-MUSIC found nothing")
	}
	best := geom.Deg(math.Abs(paths[0].AoA - truth[0].AoA))
	if alt := geom.Deg(math.Abs(paths[0].AoA - truth[1].AoA)); alt < best {
		best = alt
	}
	if best > 6 {
		t.Fatalf("FB-MUSIC strongest peak %.1f° from both true paths", best)
	}
}

func TestForwardBackwardPreservesHermitian(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	a := cmat.New(3, 5)
	for i := 0; i < 3; i++ {
		for j := 0; j < 5; j++ {
			a.Set(i, j, complex(rng.NormFloat64(), rng.NormFloat64()))
		}
	}
	r := forwardBackward(a.Gram())
	if !r.IsHermitian(1e-12) {
		t.Fatal("FB covariance not Hermitian")
	}
	// FB is idempotent on persymmetric matrices: applying twice = once.
	r2 := forwardBackward(r)
	if r2.Sub(r).FrobeniusNorm() > 1e-12 {
		t.Fatal("FB not idempotent")
	}
}

func TestEstimatorOn20MHzBand(t *testing.T) {
	// Nothing in the joint estimator is tied to the 3×30 Intel grid:
	// run it end to end on a 20 MHz 28-subcarrier band.
	band := rf.Band20MHz()
	array := rf.DefaultArray(band)
	p := DefaultParams()
	p.Band = band
	p.Array = array
	p.SubarraySubcarriers = 14
	e, err := NewEstimator(p)
	if err != nil {
		t.Fatal(err)
	}
	truth := []PathEstimate{
		{AoA: geom.Rad(18), ToF: 35e-9},
		{AoA: geom.Rad(-42), ToF: 90e-9},
	}
	rng := rand.New(rand.NewSource(46))
	c := buildCSI(band, array, truth, []complex128{1, complex(0.6, 0.5)})
	addNoise(c, 0.005, rng)
	paths, err := e.EstimatePaths(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 2 {
		t.Fatalf("resolved %d paths on 20 MHz band", len(paths))
	}
	for _, want := range truth {
		found := false
		for _, got := range paths {
			if geom.Deg(math.Abs(got.AoA-want.AoA)) < 3 && math.Abs(got.ToF-want.ToF) < 6e-9 {
				found = true
			}
		}
		if !found {
			t.Fatalf("20 MHz: path (%.0f°, %.0f ns) not resolved", geom.Deg(want.AoA), want.ToF*1e9)
		}
	}
}
