package music

import (
	"math"
	"math/cmplx"
	"sync"
	"sync/atomic"
)

// steeringKey identifies one precomputed steering table: every parameter
// the grids and steering powers depend on. Two estimators whose Params
// agree on these fields share one table, whatever else differs.
type steeringKey struct {
	antennas     int
	spacingM     float64
	carrierHz    float64
	subSpacingHz float64
	subAnt       int
	subSub       int
	aoaGridRad   float64
	tofGridS     float64
	tofMinS      float64
	tofMaxS      float64
}

// steeringTable holds the pure-geometry precomputation of one (grid,
// array, band) combination: the search grids, the per-grid-point steering
// powers, and the per-theta antenna pair products the block-decomposed
// sweep consumes. A table is immutable after build and shared across
// estimators, bursts, and goroutines without locks.
//
//spotfi:immutable
type steeringTable struct {
	thetas []float64
	taus   []float64
	// phi[i*subAnt+a] = Φ(thetas[i])^a.
	phi []complex128
	// omega[j*subSub+s] = Ω(taus[j])^s.
	omega []complex128
	// pair[i*nPair+c] = conj(Φ^a)·Φ^b for the c-th antenna pair (a<b, in
	// a-major order) at thetas[i] — the only per-theta factor the sweep's
	// inner loop needs.
	pair []complex128
	// omegaNorm[j] = ‖o(taus[j])‖², the ∑_s |Ω^s|² diagonal term.
	omegaNorm []float64

	subAnt, subSub, nPair int
}

// steeringCache shares steeringTables across estimators. Lookups happen at
// NewEstimator time only — never per burst — so a plain mutex is fine; the
// hot path touches the returned table lock-free.
var steeringCache struct {
	mu sync.Mutex
	m  map[steeringKey]*steeringTable

	hits, misses atomic.Uint64
}

// SteeringCacheStats reports the steering-cache hit/miss counters and the
// number of resident tables, for metrics export and bench reporting.
func SteeringCacheStats() (hits, misses uint64, entries int) {
	steeringCache.mu.Lock()
	entries = len(steeringCache.m)
	steeringCache.mu.Unlock()
	return steeringCache.hits.Load(), steeringCache.misses.Load(), entries
}

func steeringKeyOf(p Params) steeringKey {
	return steeringKey{
		antennas:     p.Array.Antennas,
		spacingM:     p.Array.SpacingM,
		carrierHz:    p.Band.CarrierHz,
		subSpacingHz: p.Band.SubcarrierSpacingHz,
		subAnt:       p.SubarrayAntennas,
		subSub:       p.SubarraySubcarriers,
		aoaGridRad:   p.AoAGridRad,
		tofGridS:     p.ToFGridS,
		tofMinS:      p.ToFMinS,
		tofMaxS:      p.ToFMaxS,
	}
}

// lookupSteeringTable returns the shared table for p, building it on first
// use. p must already be validated.
func lookupSteeringTable(p Params) *steeringTable {
	key := steeringKeyOf(p)
	steeringCache.mu.Lock()
	defer steeringCache.mu.Unlock()
	if t, ok := steeringCache.m[key]; ok {
		steeringCache.hits.Add(1)
		return t
	}
	steeringCache.misses.Add(1)
	t := buildSteeringTable(p)
	if steeringCache.m == nil {
		steeringCache.m = make(map[steeringKey]*steeringTable)
	}
	steeringCache.m[key] = t
	return t
}

func buildSteeringTable(p Params) *steeringTable {
	t := &steeringTable{
		thetas: gridPoints(-math.Pi/2, math.Pi/2, p.AoAGridRad),
		taus:   gridPoints(p.ToFMinS, p.ToFMaxS, p.ToFGridS),
		subAnt: p.SubarrayAntennas,
		subSub: p.SubarraySubcarriers,
	}
	t.nPair = t.subAnt * (t.subAnt - 1) / 2
	t.phi = make([]complex128, len(t.thetas)*t.subAnt)
	t.pair = make([]complex128, len(t.thetas)*t.nPair)
	for i, th := range t.thetas {
		pow := geometricSeries(Phi(th, p.Array, p.Band), t.subAnt)
		copy(t.phi[i*t.subAnt:], pow)
		c := i * t.nPair
		for a := 0; a < t.subAnt; a++ {
			for b := a + 1; b < t.subAnt; b++ {
				t.pair[c] = cmplx.Conj(pow[a]) * pow[b]
				c++
			}
		}
	}
	t.omega = make([]complex128, len(t.taus)*t.subSub)
	t.omegaNorm = make([]float64, len(t.taus))
	for j, tau := range t.taus {
		pow := geometricSeries(Omega(tau, p.Band), t.subSub)
		copy(t.omega[j*t.subSub:], pow)
		var n float64
		for _, z := range pow {
			n += real(z)*real(z) + imag(z)*imag(z)
		}
		t.omegaNorm[j] = n
	}
	return t
}
