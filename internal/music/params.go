// Package music implements SpotFi's super-resolution estimator: the
// smoothed-CSI construction of Fig. 4 and 2-D MUSIC over joint (AoA, ToF)
// (paper Sec. 3.1.2, Algorithm 2 lines 4–7), plus the classic antenna-only
// MUSIC-AoA baseline used by ArrayTrack/Phaser (Sec. 3.1.1) that the paper
// compares against.
package music

import (
	"fmt"
	"math"

	"spotfi/internal/rf"
)

// Params configures the SpotFi joint AoA/ToF estimator.
type Params struct {
	// Band is the OFDM measurement grid CSI is reported on.
	Band rf.Band
	// Array is the AP antenna array.
	Array rf.Array

	// SubarrayAntennas and SubarraySubcarriers set the smoothing window
	// (Fig. 4 uses 2 antennas × 15 subcarriers for a 3×30 system).
	SubarrayAntennas    int
	SubarraySubcarriers int

	// AoAGridRad is the spectrum grid step over [−π/2, π/2].
	AoAGridRad float64
	// ToFGridS, ToFMinS, ToFMaxS define the ToF search grid. After ToF
	// sanitization the common linear phase is removed, so estimated ToFs
	// are centered near zero and may be negative — the grid must span
	// both signs.
	ToFGridS, ToFMinS, ToFMaxS float64

	// EigenThreshold separates signal from noise eigenvalues as a
	// fraction of the largest eigenvalue (Algorithm 2 line 5).
	EigenThreshold float64
	// MaxPaths caps the signal-subspace dimension and the number of
	// returned peaks.
	MaxPaths int

	// CoarseGridFactor controls the coarse-to-fine sweep: the estimator
	// first evaluates every CoarseGridFactor-th grid point on both axes,
	// then densely re-sweeps windows around the surviving coarse maxima.
	// 1 forces the classic dense sweep; 0 selects the default (4).
	CoarseGridFactor int
	// DedupeAoARad and DedupeToFS are the physical merge radii for
	// near-duplicate spectrum peaks: a peak within both radii of a
	// stronger one is dropped. Zero selects 1.5× the corresponding grid
	// step (the historical behavior, which made the surviving peak set
	// depend on grid resolution).
	DedupeAoARad float64
	DedupeToFS   float64
}

// DefaultCoarseGridFactor is the coarse-to-fine decimation used when
// CoarseGridFactor is 0.
const DefaultCoarseGridFactor = 4

// DefaultParams returns the estimator configuration matching the paper's
// prototype: 2×15 smoothing window, 1° AoA grid, 2 ns ToF grid over
// ±200 ns.
func DefaultParams() Params {
	band := rf.DefaultBand()
	return Params{
		Band:                band,
		Array:               rf.DefaultArray(band),
		SubarrayAntennas:    2,
		SubarraySubcarriers: 15,
		AoAGridRad:          math.Pi / 180,
		ToFGridS:            2e-9,
		ToFMinS:             -200e-9,
		ToFMaxS:             200e-9,
		EigenThreshold:      0.015,
		MaxPaths:            5,
		CoarseGridFactor:    DefaultCoarseGridFactor,
		DedupeAoARad:        1.5 * math.Pi / 180,
		DedupeToFS:          3e-9,
	}
}

// Validate checks internal consistency of the parameters.
func (p Params) Validate() error {
	if err := p.Band.Validate(); err != nil {
		return err
	}
	if err := p.Array.Validate(); err != nil {
		return err
	}
	if p.SubarrayAntennas < 1 || p.SubarrayAntennas > p.Array.Antennas {
		return fmt.Errorf("music: subarray antennas %d out of range [1,%d]", p.SubarrayAntennas, p.Array.Antennas)
	}
	if p.SubarrayAntennas == p.Array.Antennas && p.SubarraySubcarriers == p.Band.Subcarriers {
		return fmt.Errorf("music: smoothing window equals full array; no independent measurements")
	}
	if p.SubarraySubcarriers < 2 || p.SubarraySubcarriers > p.Band.Subcarriers {
		return fmt.Errorf("music: subarray subcarriers %d out of range [2,%d]", p.SubarraySubcarriers, p.Band.Subcarriers)
	}
	if p.AoAGridRad <= 0 || p.ToFGridS <= 0 {
		return fmt.Errorf("music: grid steps must be positive")
	}
	if p.ToFMinS >= p.ToFMaxS {
		return fmt.Errorf("music: empty ToF range [%v,%v]", p.ToFMinS, p.ToFMaxS)
	}
	if p.EigenThreshold <= 0 || p.EigenThreshold >= 1 {
		return fmt.Errorf("music: eigen threshold %v must be in (0,1)", p.EigenThreshold)
	}
	if p.MaxPaths < 1 {
		return fmt.Errorf("music: MaxPaths must be ≥ 1")
	}
	if p.CoarseGridFactor < 0 {
		return fmt.Errorf("music: CoarseGridFactor %d must be ≥ 0", p.CoarseGridFactor)
	}
	if p.DedupeAoARad < 0 || p.DedupeToFS < 0 {
		return fmt.Errorf("music: dedupe radii must be ≥ 0")
	}
	return nil
}

// coarseFactor resolves CoarseGridFactor: 0 means the default.
//
//spotfi:noalloc
func (p Params) coarseFactor() int {
	if p.CoarseGridFactor == 0 {
		return DefaultCoarseGridFactor
	}
	return p.CoarseGridFactor
}

// dedupeRadii resolves the peak-merge radii, falling back to 1.5× the grid
// step for unset axes.
//
//spotfi:noalloc
func (p Params) dedupeRadii() (aoaRad, tofS float64) {
	aoaRad, tofS = p.DedupeAoARad, p.DedupeToFS
	if aoaRad == 0 {
		aoaRad = 1.5 * p.AoAGridRad
	}
	if tofS == 0 {
		tofS = 1.5 * p.ToFGridS
	}
	return aoaRad, tofS
}

// PathEstimate is one resolved propagation path.
type PathEstimate struct {
	// AoA in radians relative to the array normal.
	AoA float64
	// ToF in seconds. On commodity hardware this is offset by the
	// (sanitized) sampling time offset: relative values across paths are
	// meaningful, absolute values are not (paper Sec. 3.2).
	ToF float64
	// Power is the MUSIC pseudo-spectrum value at the peak — a
	// sharpness measure, not physical power.
	Power float64
}
