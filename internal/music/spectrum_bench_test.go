package music

import (
	"math/rand"
	"testing"

	"spotfi/internal/csi"
	"spotfi/internal/rf"
)

// benchScene synthesizes a moderately hard 3-path packet for the spectrum
// benchmarks: a direct path plus two reflections, with noise.
func benchScene(seed int64) *csi.Matrix {
	band := rf.DefaultBand()
	array := rf.DefaultArray(band)
	paths := []PathEstimate{
		{AoA: 0.3, ToF: 15e-9},
		{AoA: -0.5, ToF: 55e-9},
		{AoA: 0.9, ToF: 95e-9},
	}
	gains := []complex128{1, 0.6 + 0.2i, 0.35 - 0.1i}
	c := buildCSI(band, array, paths, gains)
	addNoise(c, 0.05, rand.New(rand.NewSource(seed)))
	return c
}

// BenchmarkSpectrumCoarse is the production configuration: coarse-to-fine
// sweep, shared steering table, warm estimator arenas. CI gates its
// allocations.
func BenchmarkSpectrumCoarse(b *testing.B) {
	e, err := NewEstimator(DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	c := benchScene(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.EstimatePaths(c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSpectrumDense forces the classic full-grid sweep for
// comparison.
func BenchmarkSpectrumDense(b *testing.B) {
	p := DefaultParams()
	p.CoarseGridFactor = 1
	e, err := NewEstimator(p)
	if err != nil {
		b.Fatal(err)
	}
	c := benchScene(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.EstimatePaths(c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSpectrumColdEstimator includes per-call estimator construction
// (steering table served from the shared cache) and a cold eigen
// workspace — the cost a pool miss pays.
func BenchmarkSpectrumColdEstimator(b *testing.B) {
	p := DefaultParams()
	c := benchScene(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := NewEstimator(p)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := e.EstimatePaths(c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSpectrumVaryingPackets feeds a stream of different noisy
// packets of the same scene through one estimator — the realistic
// per-burst shape the eigen warm start targets.
func BenchmarkSpectrumVaryingPackets(b *testing.B) {
	e, err := NewEstimator(DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	const packets = 16
	cs := make([]*csi.Matrix, packets)
	for i := range cs {
		cs[i] = benchScene(int64(i + 1))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.EstimatePaths(cs[i%packets]); err != nil {
			b.Fatal(err)
		}
	}
}
