package music

import "math"

// Diag carries per-packet DSP diagnostics from one estimator run — the
// intermediate quantities (eigen iteration count, signal/noise eigenvalue
// separation, grid extent, peak yield) that burst traces attach to the
// estimate span so a bad localization can be attributed to its stage.
type Diag struct {
	// EigenSweeps is the number of Jacobi sweeps the covariance
	// eigendecomposition ran.
	EigenSweeps int
	// SignalDim is the estimated signal-subspace dimension (number of
	// resolvable paths, Algorithm 2 line 5).
	SignalDim int
	// EigenGapDB is the ratio, in dB, between the weakest signal
	// eigenvalue and the strongest noise eigenvalue. A small gap means
	// the subspace split — and hence every downstream estimate — is
	// fragile.
	EigenGapDB float64
	// GridTheta and GridTau are the MUSIC search-grid extents (zero for
	// the search-free JADE path).
	GridTheta, GridTau int
	// Peaks is the number of spectrum peaks found before truncation to
	// the signal dimension.
	Peaks int
	// CellsSwept is the number of (θ, τ) grid cells the sweep actually
	// evaluated — the coarse-to-fine search's cost counter. Equal to
	// GridTheta·GridTau for a dense sweep; zero for search-free paths
	// (JADE, ESPRIT).
	CellsSwept int
	// DenseFallback reports that the coarse-to-fine sweep distrusted its
	// windows (a strong candidate peak touched a window border) and fell
	// back to the dense sweep.
	DenseFallback bool
}

// eigenGapDB computes 10·log10(λ[dim−1]/λ[dim]) — the signal/noise
// eigenvalue gap — returning 0 when the split is degenerate (no noise
// eigenvalue, or non-positive eigenvalues).
func eigenGapDB(values []float64, dim int) float64 {
	if dim <= 0 || dim >= len(values) {
		return 0
	}
	sig, noise := values[dim-1], values[dim]
	if sig <= 0 || noise <= 0 {
		return 0
	}
	gap := 10 * math.Log10(sig/noise)
	if math.IsInf(gap, 0) || math.IsNaN(gap) {
		return 0
	}
	return gap
}
