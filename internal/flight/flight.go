// Package flight is the server's black-box flight recorder: a bounded,
// allocation-disciplined capture of recent raw CSI frames per AP plus a
// decision journal (sheds, mode transitions, breaker flips, quarantines,
// per-fix confidence). It records continuously for free and, on an anomaly
// trigger — breaker open, SLO burn start, shed-floor breach, panic
// quarantine, low-confidence fix, manual request, graceful drain — freezes
// everything into an atomic, schema-versioned bundle on disk. Bundles are
// self-contained: frames in SFT1 format (so the spotfi-trace tools work on
// them unchanged), the journal, fix records with per-packet content
// hashes, a metrics snapshot, recent/slow traces, a goroutine dump, and
// the effective server configuration — enough for `spotfi-trace replay`
// to re-run every recorded fix through the real pipeline bit-for-bit
// (see internal/flight/replay).
//
// The ingest tap (TapPacket) carries the //spotfi:noalloc contract: a
// disarmed (or nil) recorder costs a nil check and an atomic load on the
// per-packet hot path, nothing more. The armed steady state is also
// allocation-free (pointer writes into preallocated rings), proven by an
// AllocsPerRun test. Dumping is asynchronous — triggers hand the single
// bundle-writer goroutine a request over a non-blocking channel, so a
// dump in progress never blocks ingest.
package flight

import (
	"fmt"
	"log/slog"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"spotfi/internal/csi"
	"spotfi/internal/obs"
	"spotfi/internal/obs/trace"
)

// TriggerKind names why a bundle was (or would have been) dumped. The set
// is closed so the per-trigger counters can be registered up front.
type TriggerKind string

// Trigger taxonomy (DESIGN.md §17). Automatic triggers observe the
// overload-resilience layer; TriggerManual and TriggerDrain are operator-
// and lifecycle-driven.
const (
	// TriggerBreakerOpen: an AP's circuit breaker transitioned to open.
	TriggerBreakerOpen TriggerKind = "breaker-open"
	// TriggerSLOBurn: an SLO objective started burning on both windows.
	TriggerSLOBurn TriggerKind = "slo-burn"
	// TriggerShedFloor: admission shed rate crossed the readiness floor.
	TriggerShedFloor TriggerKind = "shed-floor"
	// TriggerPanic: a burst handler panicked and was quarantined.
	TriggerPanic TriggerKind = "panic"
	// TriggerLowConfidence: a fix scored below the confidence floor.
	TriggerLowConfidence TriggerKind = "low-confidence"
	// TriggerManual: POST /debug/flight/dump.
	TriggerManual TriggerKind = "manual"
	// TriggerDrain: graceful shutdown flushes whatever is buffered.
	TriggerDrain TriggerKind = "drain"
)

// TriggerKinds returns every trigger kind, in taxonomy order.
func TriggerKinds() []TriggerKind {
	return []TriggerKind{
		TriggerBreakerOpen, TriggerSLOBurn, TriggerShedFloor,
		TriggerPanic, TriggerLowConfidence, TriggerManual, TriggerDrain,
	}
}

// Journal event kinds. Free-form strings are accepted; these constants
// cover the events the server wires up.
const (
	EventShed       = "shed"
	EventMode       = "mode"
	EventBreaker    = "breaker"
	EventQuarantine = "quarantine"
	EventDrift      = "drift"
	EventSLO        = "slo"
	EventTrigger    = "trigger"
	EventFix        = "fix"
)

// Event is one decision-journal entry.
type Event struct {
	// AtNs is the wall-clock time of the event (unix nanoseconds).
	AtNs int64 `json:"at_ns"`
	// CaptureSeq is the recorder's frame-capture sequence at the time, so
	// journal entries interleave with the frame stream.
	CaptureSeq uint64 `json:"capture_seq"`
	// Kind is one of the Event* constants (or a caller-defined string).
	Kind string `json:"kind"`
	// AP is the AP the event concerns, -1 when not AP-scoped.
	AP int `json:"ap"`
	// MAC is the target the event concerns, empty when not target-scoped.
	MAC string `json:"mac,omitempty"`
	// Detail is a short human-readable elaboration.
	Detail string `json:"detail,omitempty"`
	// Value carries the event's scalar, when it has one (a shed rate, a
	// fix confidence, a mode index).
	Value float64 `json:"value,omitempty"`
}

// FixAP pins one AP's contribution to a recorded fix: the exact packets,
// in the exact per-AP order the pipeline saw them.
type FixAP struct {
	AP int `json:"ap"`
	// Seqs are the wire sequence numbers, in burst order.
	Seqs []uint64 `json:"seqs"`
	// Hashes are PacketHash values parallel to Seqs — sequence numbers
	// alone are not unique across traffic regimes, content hashes are.
	Hashes []uint64 `json:"hashes"`
}

// FixRecord is one published fix plus everything replay needs to
// reproduce it bit-for-bit: the post-breaker-filter burst composition and
// the float bit patterns of the result.
type FixRecord struct {
	AtNs       int64   `json:"at_ns"`
	MAC        string  `json:"mac"`
	Mode       string  `json:"mode"`
	X          float64 `json:"x"`
	Y          float64 `json:"y"`
	Confidence float64 `json:"confidence"`
	// XBits/YBits/ConfBits are math.Float64bits of the fields above —
	// the replay gate compares bit patterns, not rounded decimals.
	XBits    uint64  `json:"x_bits"`
	YBits    uint64  `json:"y_bits"`
	ConfBits uint64  `json:"conf_bits"`
	APs      []FixAP `json:"aps"`
	// Covered is set at dump time: every referenced packet was still in
	// the frame rings, so the bundle can replay this fix. Fixes whose
	// packets were evicted before the dump are recorded but not
	// replayable.
	Covered bool `json:"covered"`
}

// APSpec is one AP's deployment geometry. NormalRad is the array normal
// in radians — the exact float64 the server localized with, not a
// degree round-trip, because replay must rebuild bit-identical geometry
// (encoding/json emits the shortest decimal that parses back to the same
// float64, so the value survives the manifest unchanged).
type APSpec struct {
	ID        int     `json:"id"`
	X         float64 `json:"x"`
	Y         float64 `json:"y"`
	NormalRad float64 `json:"normal_rad"`
}

// ServerConfig is the effective pipeline configuration a bundle was
// captured under — everything replay needs to rebuild the same localizer
// ladder and collector.
type ServerConfig struct {
	// Bounds is minX, minY, maxX, maxY (meters).
	Bounds [4]float64 `json:"bounds"`
	APs    []APSpec   `json:"aps"`
	Batch  int        `json:"batch"`
	MinAPs int        `json:"min_aps"`
	// Modes is the degradation-ladder depth (1–3).
	Modes int `json:"modes"`
	// Seed is the clustering seed (spotfi.Config.Seed).
	Seed int64 `json:"seed"`
}

// Config parameterizes a Recorder. Zero values take the defaults noted on
// each field.
type Config struct {
	// Dir is where bundles are written (required).
	Dir string
	// FramesPerAP bounds the per-AP frame ring (default 256).
	FramesPerAP int
	// JournalCap bounds the decision journal ring (default 2048).
	JournalCap int
	// FixCap bounds the fix-record ring (default 512).
	FixCap int
	// Cooldown coalesces automatic triggers: after a dump, further
	// triggers within the cooldown are suppressed and counted instead of
	// spamming bundles (default 30s).
	Cooldown time.Duration
	// MaxBundles bounds on-disk bundles; the oldest are pruned (default 8).
	MaxBundles int
	// Server is the effective pipeline configuration, embedded in every
	// bundle so replay can rebuild the same ladder.
	Server ServerConfig
	// Flags is the server's effective flag set, embedded verbatim.
	Flags map[string]string
	// Registry, when non-nil, receives the spotfi_flight_* counters.
	Registry *obs.Registry
	// MetricsSnapshot, when non-nil, supplies the /metrics snapshot
	// embedded in bundles (typically obs.Registry.Snapshot).
	MetricsSnapshot func() []obs.Sample
	// Traces, when non-nil, supplies the recent and slow trace rings
	// embedded in bundles.
	Traces func() (recent, slow []trace.TraceData)
	// Now overrides the clock (tests). Nil means time.Now.
	Now func() time.Time
	// Logger, when non-nil, receives a record per dump.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.FramesPerAP <= 0 {
		c.FramesPerAP = 256
	}
	if c.JournalCap <= 0 {
		c.JournalCap = 2048
	}
	if c.FixCap <= 0 {
		c.FixCap = 512
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 30 * time.Second
	}
	if c.MaxBundles <= 0 {
		c.MaxBundles = 8
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// apRing is one AP's bounded frame ring: preallocated slots holding
// pointers to immutable post-decode packets (the pipeline clones CSI
// before mutating, so retaining the pointer is safe and free).
type apRing struct {
	pkts []*csi.Packet
	seqs []uint64 // recorder capture sequence per slot
	next int
	n    int
}

// dumpReq is one queued bundle-dump request.
type dumpReq struct {
	kind   TriggerKind
	detail string
}

// Recorder is the flight recorder. All methods are safe on a nil receiver
// and do nothing, so an unarmed server threads a nil *Recorder freely.
type Recorder struct {
	cfg   Config
	armed atomic.Bool
	// lastDumpNs gates trigger coalescing with a CAS, so the hot trigger
	// path never takes a lock.
	lastDumpNs atomic.Int64

	mu      sync.Mutex
	rings   map[int]*apRing
	capSeq  uint64
	journal []Event // ring of JournalCap slots
	jNext   int
	jCount  int
	fixes   []FixRecord // ring of FixCap slots
	fNext   int
	fCount  int

	dumpCh    chan dumpReq
	closeOnce sync.Once
	wg        sync.WaitGroup

	bundleMu sync.Mutex
	bundles  []BundleInfo

	dumps      map[TriggerKind]*obs.Counter
	suppressed map[TriggerKind]*obs.Counter
}

// New builds a Recorder, arms it, and starts the single bundle-writer
// goroutine (joined by Close). Metric families, when cfg.Registry is set:
//
//	spotfi_flight_dumps_total{trigger=...}
//	spotfi_flight_suppressed_total{trigger=...}
func New(cfg Config) (*Recorder, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("flight: Dir is required")
	}
	cfg = cfg.withDefaults()
	r := &Recorder{
		cfg:     cfg,
		rings:   make(map[int]*apRing),
		journal: make([]Event, cfg.JournalCap),
		fixes:   make([]FixRecord, cfg.FixCap),
		dumpCh:  make(chan dumpReq, 1),
	}
	// Counters are registered here, once, per the obsreg rule: hot paths
	// only touch the returned handles (nil handles no-op without a
	// registry).
	r.dumps = make(map[TriggerKind]*obs.Counter, len(TriggerKinds()))
	r.suppressed = make(map[TriggerKind]*obs.Counter, len(TriggerKinds()))
	for _, k := range TriggerKinds() {
		if reg := cfg.Registry; reg != nil {
			r.dumps[k] = reg.Counter("spotfi_flight_dumps_total",
				"Flight-recorder bundles dumped, by trigger.",
				obs.Labels{"trigger": string(k)})
			r.suppressed[k] = reg.Counter("spotfi_flight_suppressed_total",
				"Flight-recorder triggers coalesced away (cooldown or dump in progress), by trigger.",
				obs.Labels{"trigger": string(k)})
		}
	}
	if err := ensureDir(cfg.Dir); err != nil {
		return nil, err
	}
	r.bundles = ListBundles(cfg.Dir)
	r.wg.Add(1)
	//lint:allow gospawn single bundle-writer goroutine per recorder, WaitGroup-joined by Close
	go func() {
		defer r.wg.Done()
		for req := range r.dumpCh {
			if _, err := r.dump(req.kind, req.detail); err != nil && r.cfg.Logger != nil {
				r.cfg.Logger.Warn("flight bundle dump failed", "trigger", string(req.kind), "err", err)
			}
		}
	}()
	r.armed.Store(true)
	return r, nil
}

// Armed reports whether the recorder is capturing. False on nil.
func (r *Recorder) Armed() bool {
	return r != nil && r.armed.Load()
}

func (r *Recorder) now() time.Time { return r.cfg.Now() }

// TapPacket is the ingest-path capture hook, installed as the collector's
// packet tap: it runs under the collector lock for every buffered packet,
// in exactly burst-assembly order. Disarmed (or on a nil recorder) it is
// a nil check plus an atomic load — the //spotfi:noalloc contract below
// is what proves recording costs nothing when off.
//
//spotfi:noalloc
func (r *Recorder) TapPacket(p *csi.Packet) {
	if r == nil || !r.armed.Load() {
		return
	}
	r.capture(p) //lint:allow noalloc armed-path capture locks the rings; its steady state is alloc-free pointer writes, proven by TestTapPacketAllocs
}

// capture stores p into its AP's frame ring. Steady state is two slot
// writes; the ring itself is allocated on an AP's first packet only.
func (r *Recorder) capture(p *csi.Packet) {
	r.mu.Lock()
	ring := r.rings[p.APID]
	if ring == nil {
		ring = &apRing{
			pkts: make([]*csi.Packet, r.cfg.FramesPerAP),
			seqs: make([]uint64, r.cfg.FramesPerAP),
		}
		r.rings[p.APID] = ring
	}
	r.capSeq++
	ring.pkts[ring.next] = p
	ring.seqs[ring.next] = r.capSeq
	ring.next = (ring.next + 1) % len(ring.pkts)
	if ring.n < len(ring.pkts) {
		ring.n++
	}
	r.mu.Unlock()
}

// Note appends one decision-journal event. ap is -1 when the event is not
// AP-scoped. Nil-safe; disarmed recorders drop events.
func (r *Recorder) Note(kind string, ap int, mac, detail string, value float64) {
	if r == nil || !r.armed.Load() {
		return
	}
	at := r.now().UnixNano()
	r.mu.Lock()
	r.journal[r.jNext] = Event{
		AtNs: at, CaptureSeq: r.capSeq, Kind: kind,
		AP: ap, MAC: mac, Detail: detail, Value: value,
	}
	r.jNext = (r.jNext + 1) % len(r.journal)
	if r.jCount < len(r.journal) {
		r.jCount++
	}
	r.mu.Unlock()
}

// RecordFix records one published fix with the exact post-breaker-filter
// burst composition (per-AP wire sequences plus content hashes), so
// replay can reconstruct it independent of everything else the server was
// doing. Nil-safe.
func (r *Recorder) RecordFix(mac, mode string, x, y, confidence float64, bursts map[int][]*csi.Packet) {
	if r == nil || !r.armed.Load() {
		return
	}
	// Hash outside the recorder lock: a few dozen packets per fix.
	aps := make([]FixAP, 0, len(bursts))
	ids := make([]int, 0, len(bursts))
	for id := range bursts {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		pkts := bursts[id]
		fa := FixAP{AP: id, Seqs: make([]uint64, len(pkts)), Hashes: make([]uint64, len(pkts))}
		for i, p := range pkts {
			fa.Seqs[i] = p.Seq
			fa.Hashes[i] = PacketHash(p)
		}
		aps = append(aps, fa)
	}
	rec := FixRecord{
		AtNs: r.now().UnixNano(), MAC: mac, Mode: mode,
		X: x, Y: y, Confidence: confidence,
		XBits: math.Float64bits(x), YBits: math.Float64bits(y), ConfBits: math.Float64bits(confidence),
		APs: aps,
	}
	r.mu.Lock()
	r.fixes[r.fNext] = rec
	r.fNext = (r.fNext + 1) % len(r.fixes)
	if r.fCount < len(r.fixes) {
		r.fCount++
	}
	r.mu.Unlock()
	r.Note(EventFix, -1, mac, mode, confidence)
}

// Trigger requests an asynchronous bundle dump. Triggers within Cooldown
// of the last dump — or while the writer is busy — are coalesced away and
// counted in spotfi_flight_suppressed_total. Returns whether the dump was
// accepted. Never blocks; nil-safe.
func (r *Recorder) Trigger(kind TriggerKind, detail string) bool {
	if r == nil || !r.armed.Load() {
		return false
	}
	now := r.now().UnixNano()
	last := r.lastDumpNs.Load()
	if now-last < r.cfg.Cooldown.Nanoseconds() || !r.lastDumpNs.CompareAndSwap(last, now) {
		r.suppressed[kind].Inc()
		return false
	}
	select {
	case r.dumpCh <- dumpReq{kind: kind, detail: detail}:
		return true
	default:
		// Writer busy and a request already queued: coalesce.
		r.suppressed[kind].Inc()
		return false
	}
}

// DumpNow synchronously freezes a bundle, bypassing the cooldown (the
// cooldown clock still restarts). Used by the manual endpoint, the drain
// flush, and tests. Returns the bundle directory name. Nil-safe: returns
// "" and no error on a nil or disarmed recorder.
func (r *Recorder) DumpNow(kind TriggerKind, detail string) (string, error) {
	if r == nil || !r.armed.Load() {
		return "", nil
	}
	r.lastDumpNs.Store(r.now().UnixNano())
	return r.dump(kind, detail)
}

// Bundles returns the on-disk bundle index, newest first. Nil-safe.
func (r *Recorder) Bundles() []BundleInfo {
	if r == nil {
		return nil
	}
	r.bundleMu.Lock()
	defer r.bundleMu.Unlock()
	return append([]BundleInfo(nil), r.bundles...)
}

// Stats returns the live capture counters for the status endpoint.
func (r *Recorder) Stats() (capSeq uint64, frames, journal, fixes int) {
	if r == nil {
		return 0, 0, 0, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, ring := range r.rings {
		frames += ring.n
	}
	return r.capSeq, frames, r.jCount, r.fCount
}

// Close disarms the recorder and joins the bundle writer. Queued dump
// requests are completed first. Safe to call more than once; nil-safe.
func (r *Recorder) Close() {
	if r == nil {
		return
	}
	r.closeOnce.Do(func() {
		r.armed.Store(false)
		close(r.dumpCh)
	})
	r.wg.Wait()
}

// snapshot is a consistent copy of the capture state, taken under the
// lock and serialized outside it.
type snapshot struct {
	capSeq  uint64
	frames  []*csi.Packet // capture order (merged across APs by capture seq)
	journal []Event       // oldest first
	fixes   []FixRecord   // oldest first
}

// takeSnapshot copies the rings under the lock. The packets themselves
// are shared (immutable post-decode), so this is pointer copies only.
func (r *Recorder) takeSnapshot() snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	type seqPkt struct {
		seq uint64
		p   *csi.Packet
	}
	var all []seqPkt
	for _, ring := range r.rings {
		start := ring.next - ring.n
		for i := 0; i < ring.n; i++ {
			idx := (start + i + len(ring.pkts)) % len(ring.pkts)
			all = append(all, seqPkt{seq: ring.seqs[idx], p: ring.pkts[idx]})
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].seq < all[j].seq })
	s := snapshot{capSeq: r.capSeq}
	s.frames = make([]*csi.Packet, len(all))
	for i, sp := range all {
		s.frames[i] = sp.p
	}
	s.journal = make([]Event, 0, r.jCount)
	for i := 0; i < r.jCount; i++ {
		s.journal = append(s.journal, r.journal[(r.jNext-r.jCount+i+len(r.journal))%len(r.journal)])
	}
	s.fixes = make([]FixRecord, 0, r.fCount)
	for i := 0; i < r.fCount; i++ {
		f := r.fixes[(r.fNext-r.fCount+i+len(r.fixes))%len(r.fixes)]
		// Deep-copy the AP slices: Covered is stamped per snapshot and
		// the ring entry must stay pristine for later dumps.
		cp := f
		cp.APs = append([]FixAP(nil), f.APs...)
		s.fixes = append(s.fixes, cp)
	}
	return s
}

// PacketHash is a content hash (FNV-1a 64) over every field that feeds
// the pipeline: identity, timing, RSSI, and the full CSI matrix bit
// patterns. Two packets with equal hashes are pipeline-equivalent; the
// hash disambiguates wire sequence numbers reused across traffic regimes.
func PacketHash(p *csi.Packet) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	w := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	w(uint64(int64(p.APID)))
	w(p.Seq)
	w(uint64(p.TimestampNs))
	w(math.Float64bits(p.RSSIdBm))
	for i := 0; i < len(p.TargetMAC); i++ {
		h ^= uint64(p.TargetMAC[i])
		h *= prime64
	}
	if p.CSI != nil {
		w(uint64(len(p.CSI.Values)))
		for _, row := range p.CSI.Values {
			for _, v := range row {
				w(math.Float64bits(real(v)))
				w(math.Float64bits(imag(v)))
			}
		}
	}
	return h
}
