package replay

import (
	"testing"

	"spotfi"
	"spotfi/internal/csi"
	"spotfi/internal/flight"
	"spotfi/internal/obs/trace"
	"spotfi/internal/server"
	"spotfi/internal/testbed"
)

// runProduction drives a compact production pipeline — collector with the
// flight tap installed, a three-rung ladder cycled per burst so every
// degradation mode appears in the bundle — records every fix, and dumps a
// bundle. It returns the loaded bundle and the fixes as production saw
// them, in emission order.
func runProduction(t *testing.T) (*flight.Bundle, []spotfi.Location) {
	t.Helper()
	d := testbed.Office(7)
	const (
		batch   = 8
		minAPs  = 3
		targets = 3
	)

	aps := make([]spotfi.AP, len(d.APs))
	specs := make([]flight.APSpec, len(d.APs))
	for i, ap := range d.APs {
		aps[i] = spotfi.AP{ID: ap.ID, Pos: ap.Pos, NormalAngle: ap.NormalAngle}
		specs[i] = flight.APSpec{ID: ap.ID, X: ap.Pos.X, Y: ap.Pos.Y, NormalRad: ap.NormalAngle}
	}
	base := spotfi.DefaultConfig(d.Bounds)
	ladder, err := spotfi.BuildLadder(base, aps, 3)
	if err != nil {
		t.Fatal(err)
	}

	rec, err := flight.New(flight.Config{
		Dir: t.TempDir(),
		Server: flight.ServerConfig{
			Bounds: [4]float64{d.Bounds.MinX, d.Bounds.MinY, d.Bounds.MaxX, d.Bounds.MaxY},
			APs:    specs,
			Batch:  batch,
			MinAPs: minAPs,
			Modes:  3,
			Seed:   base.Seed,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()

	var produced []spotfi.Location
	burstN := 0
	coll, err := server.NewCollector(server.CollectorConfig{
		BatchSize:   batch,
		MinAPs:      minAPs,
		MaxBuffered: batch,
	}, func(mac string, bursts map[int][]*csi.Packet, tr *trace.Trace) {
		// Cycle the ladder so the bundle holds fixes from every rung and
		// replay proves it routes each fix to the right one.
		rung := ladder[burstN%len(ladder)]
		burstN++
		loc, _, _, lerr := rung.LocalizeBursts(bursts)
		if lerr != nil {
			t.Errorf("production localize %s: %v", mac, lerr)
			return
		}
		rec.RecordFix(mac, loc.Mode, loc.X, loc.Y, loc.Confidence, bursts)
		produced = append(produced, loc)
	})
	if err != nil {
		t.Fatal(err)
	}
	coll.SetTap(rec.TapPacket)

	// Each target is heard by all six APs: the first three full batches
	// complete one burst (minAPs=3), the remaining three complete another
	// — two fixes per target, across all rungs.
	for tgt := 0; tgt < targets; tgt++ {
		for ap := range d.APs {
			pkts, berr := d.Burst(ap, tgt, batch)
			if berr != nil {
				t.Fatal(berr)
			}
			for _, p := range pkts {
				if aerr := coll.Add(p); aerr != nil {
					t.Fatalf("add: %v", aerr)
				}
			}
		}
	}
	if len(produced) == 0 {
		t.Fatal("production pipeline emitted no fixes")
	}

	name, err := rec.DumpNow(flight.TriggerManual, "replay determinism test")
	if err != nil {
		t.Fatal(err)
	}
	b, err := flight.LoadBundle(rec.BundlePath(name))
	if err != nil {
		t.Fatal(err)
	}
	return b, produced
}

// TestReplayReproducesProductionBits is the tentpole guarantee: replaying
// a bundle re-derives every recorded fix bit-for-bit, and two replays of
// the same bundle agree with each other down to the span shapes.
func TestReplayReproducesProductionBits(t *testing.T) {
	b, produced := runProduction(t)
	if got, want := len(b.Manifest.Fixes), len(produced); got != want {
		t.Fatalf("bundle records %d fixes, production emitted %d", got, want)
	}
	for i, fr := range b.Manifest.Fixes {
		if !fr.Covered {
			t.Fatalf("fix %d not covered: capture ring evicted its frames in a test sized to retain them", i)
		}
	}

	r1, err := Run(b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(b, Options{})
	if err != nil {
		t.Fatal(err)
	}

	for _, out := range r1.Fixes {
		if out.Skipped {
			t.Errorf("fix %d (%s, %s) skipped: %s", out.Index, out.MAC, out.Mode, out.Reason)
			continue
		}
		if !out.Match {
			t.Errorf("fix %d (%s, %s) diverged: %s", out.Index, out.MAC, out.Mode, out.Reason)
		}
	}
	if r1.Reproduced != len(produced) || r1.Diverged != 0 || r1.Skipped != 0 {
		t.Fatalf("run 1: reproduced=%d diverged=%d skipped=%d, want %d/0/0",
			r1.Reproduced, r1.Diverged, r1.Skipped, len(produced))
	}

	// Replay-vs-replay: identical bits and identical span shapes.
	if len(r2.Fixes) != len(r1.Fixes) {
		t.Fatalf("run 2 produced %d outcomes, run 1 %d", len(r2.Fixes), len(r1.Fixes))
	}
	for i := range r1.Fixes {
		a, b := r1.Fixes[i], r2.Fixes[i]
		if a.X != b.X || a.Y != b.Y || a.Confidence != b.Confidence || a.Mode != b.Mode {
			t.Errorf("fix %d differs between replay runs: (%v,%v,%v,%s) vs (%v,%v,%v,%s)",
				i, a.X, a.Y, a.Confidence, a.Mode, b.X, b.Y, b.Confidence, b.Mode)
		}
	}
	if len(r1.Traces) != len(r1.Fixes) || len(r2.Traces) != len(r2.Fixes) {
		t.Fatalf("replay traced %d+%d of %d fixes; every replayed fix must carry a full trace",
			len(r1.Traces), len(r2.Traces), len(r1.Fixes))
	}
	for i := range r1.Traces {
		if !ShapesEqual(Shapes(r1.Traces[i]), Shapes(r2.Traces[i])) {
			t.Errorf("fix %d span tree differs between replay runs", i)
		}
	}
}

// TestReplaySkipsUncoveredFixes: a fix whose frames were evicted before
// the dump must be reported as skipped, not diverged — eviction is a
// sizing fact, not a pipeline defect.
func TestReplaySkipsUncoveredFixes(t *testing.T) {
	b, _ := runProduction(t)
	// Forge eviction: blank out one fix's frame hashes so replay cannot
	// resolve them.
	b.Manifest.Fixes[0].Covered = false
	res, err := Run(b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Skipped != 1 {
		t.Fatalf("skipped=%d, want 1", res.Skipped)
	}
	if res.Diverged != 0 {
		t.Fatalf("diverged=%d, want 0", res.Diverged)
	}
	if !res.Fixes[0].Skipped || res.Fixes[0].Reason == "" {
		t.Fatalf("fix 0 outcome %+v, want skipped with reason", res.Fixes[0])
	}
}
