// Package replay re-ingests a flight-recorder bundle through the real
// localization pipeline. Every covered FixRecord in the bundle is fed —
// packet for packet, in recorded burst-assembly order — through a fresh
// server.Collector into the same localizer rung that produced it in
// production, under a deterministic clock and 100% trace sampling. A
// healthy replay reproduces each recorded fix bit-for-bit (compared as
// float64 bit patterns, not rounded decimals), which is what makes a
// bundle a debugging artifact rather than a screenshot: the engineer can
// replay the exact anomalous traffic on a laptop, with full traces, and
// watch the pipeline make the same decisions.
package replay

import (
	"fmt"
	"math"
	"reflect"
	"sort"
	"time"

	"spotfi"
	"spotfi/internal/admit"
	"spotfi/internal/csi"
	"spotfi/internal/flight"
	"spotfi/internal/obs/trace"
	"spotfi/internal/server"
)

// Options tunes a replay run.
type Options struct {
	// SampleEvery is the trace sampling interval (1 = trace every fix,
	// the default; replay exists to produce traces, so 0 means 1).
	SampleEvery int
}

// FixOutcome is the replay verdict for one recorded fix.
type FixOutcome struct {
	// Index is the fix's position in the bundle manifest.
	Index int
	MAC   string
	Mode  string
	// Recorded* are the production values from the bundle.
	RecordedX, RecordedY, RecordedConf float64
	// X, Y, Confidence are what replay produced (zero when skipped).
	X, Y, Confidence float64
	// Match is true when every replayed value is bit-identical to the
	// recorded one (including the rung's mode label).
	Match bool
	// Skipped is true when the fix could not be replayed at all —
	// Reason says why. A skipped fix is not a divergence: the most
	// common cause is Covered=false (frames evicted before the dump).
	Skipped bool
	Reason  string
	// TraceID names this fix's replay trace in Result.Traces.
	TraceID string
}

// Result is the aggregate outcome of a replay run.
type Result struct {
	Fixes []FixOutcome
	// Reproduced counts bit-exact matches; Diverged counts replays that
	// completed with different bits (a real defect — either the pipeline
	// changed behavior or the bundle lies); Skipped counts fixes that
	// could not be attempted.
	Reproduced, Diverged, Skipped int
	// Traces holds one replay trace per attempted fix, in Fixes order
	// (matched by FixOutcome.TraceID).
	Traces []trace.TraceData
}

// SpanShape is the timing-free skeleton of one span: what the pipeline
// did and what it measured, minus how long it took. Replay determinism is
// asserted over shapes — two runs of the same bundle must produce
// identical shape sequences even though wall-clock durations differ.
type SpanShape struct {
	Name   string
	Parent int
	Attrs  map[string]any
}

// Shapes projects a trace to its span shapes.
func Shapes(td trace.TraceData) []SpanShape {
	out := make([]SpanShape, len(td.Spans))
	for i, s := range td.Spans {
		out[i] = SpanShape{Name: s.Name, Parent: s.Parent, Attrs: s.Attrs}
	}
	return out
}

// ShapesEqual reports whether two shape sequences are identical,
// including every attribute value.
func ShapesEqual(a, b []SpanShape) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].Parent != b[i].Parent {
			return false
		}
		if !reflect.DeepEqual(a[i].Attrs, b[i].Attrs) {
			return false
		}
	}
	return true
}

// Run replays every fix in b and reports per-fix and aggregate outcomes.
func Run(b *flight.Bundle, opts Options) (*Result, error) {
	if b == nil {
		return nil, fmt.Errorf("replay: nil bundle")
	}
	sc := b.Manifest.Server
	if len(sc.APs) < 2 {
		return nil, fmt.Errorf("replay: bundle records %d APs; need at least 2 (was the server started with -flight-dir but without -ap flags?)", len(sc.APs))
	}
	if opts.SampleEvery < 1 {
		opts.SampleEvery = 1
	}

	aps := make([]spotfi.AP, len(sc.APs))
	for i, a := range sc.APs {
		aps[i] = spotfi.AP{ID: a.ID, Pos: spotfi.Point{X: a.X, Y: a.Y}, NormalAngle: a.NormalRad}
	}
	base := spotfi.DefaultConfig(spotfi.Bounds{
		MinX: sc.Bounds[0], MinY: sc.Bounds[1], MaxX: sc.Bounds[2], MaxY: sc.Bounds[3],
	})
	base.Seed = sc.Seed
	// One worker: estimation results don't depend on parallelism (the
	// per-AP seeds are scheduling-free), but span append order does, and
	// replay promises deterministic traces.
	base.Workers = 1
	modes := sc.Modes
	if modes < 1 {
		modes = 1
	}
	ladder, err := spotfi.BuildLadder(base, aps, modes)
	if err != nil {
		return nil, fmt.Errorf("replay: rebuilding ladder: %w", err)
	}

	// Index the bundle's frames by content hash. Wire (ap, seq) pairs
	// repeat across capture regimes, so the hash is the identity and the
	// (ap, seq) pair is the tiebreak.
	byHash := make(map[uint64][]*csi.Packet, len(b.Packets))
	for _, p := range b.Packets {
		h := flight.PacketHash(p)
		byHash[h] = append(byHash[h], p)
	}

	res := &Result{}
	for i, fr := range b.Manifest.Fixes {
		out := replayOne(i, fr, ladder, byHash, sc, opts)
		res.Fixes = append(res.Fixes, out.outcome)
		if out.trace.ID != "" {
			res.Traces = append(res.Traces, out.trace)
		}
		switch {
		case out.outcome.Skipped:
			res.Skipped++
		case out.outcome.Match:
			res.Reproduced++
		default:
			res.Diverged++
		}
	}
	return res, nil
}

type fixResult struct {
	outcome FixOutcome
	trace   trace.TraceData
}

// replayOne pushes one recorded fix's exact packets through a fresh
// collector and the recorded rung.
func replayOne(idx int, fr flight.FixRecord, ladder []*spotfi.Localizer, byHash map[uint64][]*csi.Packet, sc flight.ServerConfig, opts Options) fixResult {
	out := fixResult{outcome: FixOutcome{
		Index: idx, MAC: fr.MAC, Mode: fr.Mode,
		RecordedX:    math.Float64frombits(fr.XBits),
		RecordedY:    math.Float64frombits(fr.YBits),
		RecordedConf: math.Float64frombits(fr.ConfBits),
	}}
	skip := func(format string, args ...any) fixResult {
		out.outcome.Skipped = true
		out.outcome.Reason = fmt.Sprintf(format, args...)
		return out
	}
	diverge := func(format string, args ...any) fixResult {
		out.outcome.Reason = fmt.Sprintf(format, args...)
		return out
	}

	if !fr.Covered {
		return skip("not covered: frames were evicted from the capture ring before the dump")
	}
	if len(fr.APs) < 2 {
		return skip("fix records %d APs; need at least 2", len(fr.APs))
	}
	modeIdx := 0
	if fr.Mode != "" {
		modeIdx = -1
		for i := range ladder {
			if admit.Mode(i).String() == fr.Mode {
				modeIdx = i
				break
			}
		}
		if modeIdx < 0 {
			return skip("mode %q has no rung in a %d-deep ladder", fr.Mode, len(ladder))
		}
	}

	// Resolve every referenced frame up front, preserving the recorded
	// per-AP order (which is the burst-assembly order the production
	// collector emitted).
	batch := len(fr.APs[0].Seqs)
	feed := make(map[int][]*csi.Packet, len(fr.APs))
	for _, fa := range fr.APs {
		if len(fa.Seqs) != batch || len(fa.Hashes) != batch {
			return skip("AP %d records %d/%d seqs/hashes; burst batch is %d", fa.AP, len(fa.Seqs), len(fa.Hashes), batch)
		}
		pkts := make([]*csi.Packet, batch)
		for j, h := range fa.Hashes {
			var found *csi.Packet
			for _, cand := range byHash[h] {
				if cand.APID == fa.AP && cand.Seq == fa.Seqs[j] {
					found = cand
					break
				}
			}
			if found == nil {
				return skip("AP %d seq %d (hash %016x) is not in the bundle", fa.AP, fa.Seqs[j], h)
			}
			pkts[j] = found
		}
		feed[fa.AP] = pkts
	}

	// A fresh collector per fix, pinned to the fix's recorded timestamp:
	// every buffered packet carries the same deterministic arrival time,
	// so the assemble span and TTL logic cannot observe the host clock.
	at := time.Unix(0, fr.AtNs)
	var (
		gotBursts map[int][]*csi.Packet
		gotTrace  *trace.Trace
	)
	coll, err := server.NewCollector(server.CollectorConfig{
		BatchSize:   batch,
		MinAPs:      len(fr.APs),
		MaxBuffered: batch,
		Now:         func() time.Time { return at },
	}, func(mac string, bursts map[int][]*csi.Packet, tr *trace.Trace) {
		gotBursts, gotTrace = bursts, tr
	})
	if err != nil {
		return skip("collector config: %v", err)
	}
	tracer := trace.New(trace.Config{SampleEvery: opts.SampleEvery, Capacity: 1})
	coll.SetTracer(tracer)

	apIDs := make([]int, 0, len(feed))
	for ap := range feed {
		apIDs = append(apIDs, ap)
	}
	sort.Ints(apIDs)
	for _, ap := range apIDs {
		for _, p := range feed[ap] {
			if err := coll.Add(p); err != nil {
				return diverge("re-ingesting AP %d seq %d: %v", ap, p.Seq, err)
			}
		}
	}
	if gotBursts == nil {
		return diverge("burst did not re-assemble: collector never emitted")
	}

	loc, _, _, err := ladder[modeIdx].LocalizeBurstsTraced(gotBursts, gotTrace)
	if gotTrace != nil {
		gotTrace.Finish()
		if recent := tracer.Recent(); len(recent) > 0 {
			out.trace = recent[0]
			out.outcome.TraceID = recent[0].ID
		}
	}
	if err != nil {
		return diverge("localize: %v (recorded fix succeeded)", err)
	}

	out.outcome.X, out.outcome.Y, out.outcome.Confidence = loc.X, loc.Y, loc.Confidence
	xOK := math.Float64bits(loc.X) == fr.XBits
	yOK := math.Float64bits(loc.Y) == fr.YBits
	cOK := math.Float64bits(loc.Confidence) == fr.ConfBits
	modeOK := loc.Mode == fr.Mode
	if xOK && yOK && cOK && modeOK {
		out.outcome.Match = true
		return out
	}
	var why []string
	if !xOK {
		why = append(why, fmt.Sprintf("x %v != recorded %v", loc.X, out.outcome.RecordedX))
	}
	if !yOK {
		why = append(why, fmt.Sprintf("y %v != recorded %v", loc.Y, out.outcome.RecordedY))
	}
	if !cOK {
		why = append(why, fmt.Sprintf("confidence %v != recorded %v", loc.Confidence, out.outcome.RecordedConf))
	}
	if !modeOK {
		why = append(why, fmt.Sprintf("mode %q != recorded %q", loc.Mode, fr.Mode))
	}
	return diverge("diverged: %s", joinReasons(why))
}

func joinReasons(rs []string) string {
	s := ""
	for i, r := range rs {
		if i > 0 {
			s += "; "
		}
		s += r
	}
	return s
}
