package flight

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHandlerStatusDumpAndBundleFiles(t *testing.T) {
	r := newTestRecorder(t, nil)
	for seq := uint64(0); seq < 3; seq++ {
		r.TapPacket(testPacket(0, seq))
	}
	h := r.Handler()

	// Status before any dump.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/flight", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /debug/flight = %d", rec.Code)
	}
	var st struct {
		Armed  bool `json:"armed"`
		Frames int  `json:"frames_buffered"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if !st.Armed || st.Frames != 3 {
		t.Fatalf("status = %+v, want armed with 3 frames", st)
	}

	// GET on the dump endpoint is rejected; POST freezes a bundle.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/flight/dump", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET dump = %d, want 405", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/debug/flight/dump", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("POST dump = %d: %s", rec.Code, rec.Body.String())
	}
	var resp map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	name := resp["bundle"]
	if name == "" || !strings.HasSuffix(name, "-manual") {
		t.Fatalf("dump returned bundle %q, want a *-manual name", name)
	}

	// Bundle files are served; traversal and unknown names are not.
	for _, tc := range []struct {
		path string
		want int
	}{
		{"/debug/flight/bundle/" + name + "/manifest.json", http.StatusOK},
		{"/debug/flight/bundle/" + name + "/frames.sft", http.StatusOK},
		{"/debug/flight/bundle/" + name + "/../../../etc/passwd", http.StatusNotFound},
		{"/debug/flight/bundle/nope/manifest.json", http.StatusNotFound},
		{"/debug/flight/bundle/" + name + "/other.txt", http.StatusNotFound},
		{"/debug/flight/typo", http.StatusNotFound},
	} {
		rec = httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodGet, "http://x"+tc.path, nil)
		// httptest.NewRequest cleans the URL; hit the handler with the raw
		// path to exercise its own sanitization.
		req.URL.Path = tc.path
		h.ServeHTTP(rec, req)
		if rec.Code != tc.want {
			t.Fatalf("GET %s = %d, want %d", tc.path, rec.Code, tc.want)
		}
	}

	// Nil recorder: the handler stays mountable and explains itself.
	var nilRec *Recorder
	rec = httptest.NewRecorder()
	nilRec.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/flight", nil))
	if rec.Code != http.StatusNotFound || !strings.Contains(rec.Body.String(), "-flight-dir") {
		t.Fatalf("nil recorder handler = %d %q, want 404 naming -flight-dir", rec.Code, rec.Body.String())
	}
}
