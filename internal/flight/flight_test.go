package flight

import (
	"io"
	"math"
	"os"
	"testing"
	"time"

	"spotfi/internal/csi"
	"spotfi/internal/obs"
)

// testPacket builds a small valid packet whose content is a function of
// (ap, seq), so content hashes differ packet to packet.
func testPacket(ap int, seq uint64) *csi.Packet {
	m := csi.NewMatrix(3, 4)
	for a := 0; a < 3; a++ {
		for s := 0; s < 4; s++ {
			m.Values[a][s] = complex(float64(ap+1)*float64(a+1), float64(seq)+float64(s))
		}
	}
	return &csi.Packet{
		APID:        ap,
		TargetMAC:   "02:00:00:00:00:01",
		Seq:         seq,
		TimestampNs: int64(seq) * 1000,
		RSSIdBm:     -40,
		CSI:         m,
	}
}

// fakeClock is a manually advanced Config.Now.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestRecorder(t *testing.T, mutate func(*Config)) *Recorder {
	t.Helper()
	cfg := Config{Dir: t.TempDir()}
	if mutate != nil {
		mutate(&cfg)
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return r
}

func TestFrameRingWrapsAndSnapshotsInCaptureOrder(t *testing.T) {
	r := newTestRecorder(t, func(c *Config) { c.FramesPerAP = 4 })
	// 6 packets to AP 0 (ring of 4 → first two evicted), 3 to AP 1,
	// interleaved so the merged capture order crosses APs.
	var want []uint64 // PacketHash in expected snapshot order
	for seq := uint64(0); seq < 6; seq++ {
		p0 := testPacket(0, seq)
		r.TapPacket(p0)
		if seq >= 2 {
			want = append(want, PacketHash(p0))
		}
		if seq < 3 {
			p1 := testPacket(1, 100+seq)
			r.TapPacket(p1)
			want = append(want, PacketHash(p1)) // AP 1's ring never wraps
		}
	}
	s := r.takeSnapshot()
	if len(s.frames) != len(want) {
		t.Fatalf("snapshot has %d frames, want %d", len(s.frames), len(want))
	}
	// The snapshot is merged by capture sequence, so evicting AP 0's first
	// two packets leaves: 1@100, 2, 1@101, 3, 1@102, 4, 5 — i.e. the
	// surviving hashes in original arrival order.
	got := make(map[uint64]int, len(s.frames))
	for i, p := range s.frames {
		got[PacketHash(p)] = i
	}
	last := -1
	for _, h := range want {
		i, ok := got[h]
		if !ok {
			t.Fatalf("expected packet (hash %016x) missing from snapshot", h)
		}
		if i < last {
			t.Fatalf("snapshot order broken: hash %016x at %d after index %d", h, i, last)
		}
		last = i
	}
}

func TestJournalAndFixRingsKeepNewest(t *testing.T) {
	r := newTestRecorder(t, func(c *Config) { c.JournalCap = 4; c.FixCap = 2 })
	for i := 0; i < 6; i++ {
		r.Note(EventShed, -1, "", "n", float64(i))
	}
	bursts := map[int][]*csi.Packet{0: {testPacket(0, 1)}, 1: {testPacket(1, 2)}}
	for i := 0; i < 3; i++ {
		r.RecordFix("02:00:00:00:00:01", "full", float64(i), 0, 0.5, bursts)
	}
	s := r.takeSnapshot()
	// Each RecordFix also journals an EventFix, so the 4-slot journal holds
	// the tail of the interleaved stream ending in the last fix event.
	if len(s.journal) != 4 {
		t.Fatalf("journal kept %d events, want 4", len(s.journal))
	}
	if lastEv := s.journal[len(s.journal)-1]; lastEv.Kind != EventFix || lastEv.Value != 0.5 {
		t.Fatalf("journal tail = %+v, want the final fix event", lastEv)
	}
	if len(s.fixes) != 2 {
		t.Fatalf("fix ring kept %d records, want 2", len(s.fixes))
	}
	if s.fixes[0].X != 1 || s.fixes[1].X != 2 {
		t.Fatalf("fix ring kept X=%v,%v; want the newest records 1,2", s.fixes[0].X, s.fixes[1].X)
	}
	if len(s.fixes[0].APs) != 2 || len(s.fixes[0].APs[0].Seqs) != 1 {
		t.Fatalf("fix record AP composition %+v malformed", s.fixes[0].APs)
	}
}

func TestTriggerCooldownCoalesces(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	reg := obs.NewRegistry()
	r := newTestRecorder(t, func(c *Config) {
		c.Cooldown = 10 * time.Second
		c.Registry = reg
		c.Now = clk.now
	})
	if !r.Trigger(TriggerBreakerOpen, "first") {
		t.Fatal("first trigger should be accepted")
	}
	if r.Trigger(TriggerBreakerOpen, "second") || r.Trigger(TriggerSLOBurn, "third") {
		t.Fatal("triggers within the cooldown must be suppressed")
	}
	// Let the async writer finish the first bundle, so the next accepted
	// trigger isn't coalesced as "writer busy".
	deadline := time.Now().Add(5 * time.Second)
	for len(r.Bundles()) < 1 {
		if time.Now().After(deadline) {
			t.Fatal("first bundle never landed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	clk.advance(11 * time.Second)
	if !r.Trigger(TriggerSLOBurn, "fourth") {
		t.Fatal("trigger past the cooldown should be accepted")
	}
	if got := r.suppressed[TriggerBreakerOpen].Value(); got != 1 {
		t.Fatalf("suppressed{breaker-open} = %d, want 1", got)
	}
	if got := r.suppressed[TriggerSLOBurn].Value(); got != 1 {
		t.Fatalf("suppressed{slo-burn} = %d, want 1", got)
	}
	r.Close() // drain the writer so both accepted dumps are on disk
	bundles := r.Bundles()
	if len(bundles) != 2 {
		t.Fatalf("got %d bundles, want 2 (one per accepted trigger): %+v", len(bundles), bundles)
	}
	if r.dumps[TriggerBreakerOpen].Value() != 1 || r.dumps[TriggerSLOBurn].Value() != 1 {
		t.Fatalf("dump counters breaker=%d slo=%d, want 1,1",
			r.dumps[TriggerBreakerOpen].Value(), r.dumps[TriggerSLOBurn].Value())
	}
}

func TestDumpNowPrunesPastMaxBundles(t *testing.T) {
	clk := &fakeClock{t: time.Unix(2000, 0)}
	r := newTestRecorder(t, func(c *Config) {
		c.MaxBundles = 2
		c.Now = clk.now
	})
	var names []string
	for i := 0; i < 4; i++ {
		name, err := r.DumpNow(TriggerManual, "prune test")
		if err != nil {
			t.Fatal(err)
		}
		names = append(names, name)
		clk.advance(time.Second) // distinct CreatedNs → distinct names
	}
	bundles := r.Bundles()
	if len(bundles) != 2 {
		t.Fatalf("index holds %d bundles, want 2", len(bundles))
	}
	if bundles[0].Name != names[3] || bundles[1].Name != names[2] {
		t.Fatalf("kept %q,%q; want the newest %q,%q", bundles[0].Name, bundles[1].Name, names[3], names[2])
	}
	entries, err := os.ReadDir(r.cfg.Dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("disk holds %d entries, want 2: %v", len(entries), entries)
	}
	for _, old := range names[:2] {
		if _, err := os.Stat(r.BundlePath(old)); !os.IsNotExist(err) {
			t.Fatalf("pruned bundle %q still on disk (err=%v)", old, err)
		}
	}
}

// TestBundleFramesAreSFT1 proves satellite 3: the frames file is readable
// by the stock SFT1 reader — which is exactly what spotfi-trace
// info/paths/spectrum/locate use — and round-trips every packet bit-for-bit.
func TestBundleFramesAreSFT1(t *testing.T) {
	r := newTestRecorder(t, nil)
	var taps []*csi.Packet
	for ap := 0; ap < 2; ap++ {
		for seq := uint64(0); seq < 5; seq++ {
			p := testPacket(ap, seq)
			r.TapPacket(p)
			taps = append(taps, p)
		}
	}
	name, err := r.DumpNow(TriggerManual, "round-trip")
	if err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(r.BundlePath(name) + "/" + FramesFile)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr := csi.NewTraceReader(f)
	var got []*csi.Packet
	for {
		p, rerr := tr.ReadPacket()
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			t.Fatal(rerr)
		}
		got = append(got, p)
	}
	if len(got) != len(taps) {
		t.Fatalf("read %d packets, want %d", len(got), len(taps))
	}
	// Tap order was AP-major; snapshot merges by capture sequence which
	// equals tap order here, so the round trip preserves both order and
	// content.
	for i := range got {
		if PacketHash(got[i]) != PacketHash(taps[i]) {
			t.Fatalf("packet %d changed across the SFT1 round trip", i)
		}
	}

	b, err := LoadBundle(r.BundlePath(name))
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Packets) != len(taps) || b.Manifest.Frames != len(taps) {
		t.Fatalf("LoadBundle: %d packets, manifest says %d, want %d", len(b.Packets), b.Manifest.Frames, len(taps))
	}
}

func TestFixCoverageReflectsEviction(t *testing.T) {
	r := newTestRecorder(t, func(c *Config) { c.FramesPerAP = 4 })
	early := []*csi.Packet{testPacket(0, 1), testPacket(0, 2)}
	for _, p := range early {
		r.TapPacket(p)
	}
	r.RecordFix("02:00:00:00:00:01", "full", 1, 2, 0.9, map[int][]*csi.Packet{0: early})
	// Flood AP 0's 4-slot ring so the early packets are evicted.
	late := make([]*csi.Packet, 0, 4)
	for seq := uint64(10); seq < 14; seq++ {
		p := testPacket(0, seq)
		r.TapPacket(p)
		late = append(late, p)
	}
	r.RecordFix("02:00:00:00:00:01", "full", 3, 4, 0.8, map[int][]*csi.Packet{0: late})
	name, err := r.DumpNow(TriggerManual, "coverage")
	if err != nil {
		t.Fatal(err)
	}
	b, err := LoadBundle(r.BundlePath(name))
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Manifest.Fixes) != 2 {
		t.Fatalf("bundle has %d fixes, want 2", len(b.Manifest.Fixes))
	}
	if b.Manifest.Fixes[0].Covered {
		t.Fatal("evicted fix marked covered")
	}
	if !b.Manifest.Fixes[1].Covered {
		t.Fatal("retained fix marked uncovered")
	}
}

// TestTapPacketAllocs is half of the zero-cost proof (the other half is
// the spotfi-lint noalloc contract on TapPacket): nil and disarmed taps
// never allocate, and the armed tap is allocation-free in steady state —
// the per-AP ring is allocated once, on the AP's first-ever packet.
func TestTapPacketAllocs(t *testing.T) {
	p := testPacket(0, 1)

	var nilRec *Recorder
	if n := testing.AllocsPerRun(200, func() { nilRec.TapPacket(p) }); n != 0 {
		t.Fatalf("nil recorder tap allocates %v/op", n)
	}

	r := newTestRecorder(t, nil)
	r.armed.Store(false)
	if n := testing.AllocsPerRun(200, func() { r.TapPacket(p) }); n != 0 {
		t.Fatalf("disarmed tap allocates %v/op", n)
	}

	r.armed.Store(true)
	r.TapPacket(p) // first packet allocates this AP's ring — once, ever
	if n := testing.AllocsPerRun(200, func() { r.TapPacket(p) }); n != 0 {
		t.Fatalf("armed steady-state tap allocates %v/op", n)
	}
}

// TestDumpWithHistogramSnapshot pins a regression: the +Inf upper bound
// of a histogram's last bucket made the manifest JSON-unencodable, so
// every dump on a server with real metrics failed. Non-finite floats in
// the snapshot must be clamped, not fatal.
func TestDumpWithHistogramSnapshot(t *testing.T) {
	reg := obs.NewRegistry()
	h := reg.Histogram("flight_test_seconds", "histogram with an implicit +Inf bucket",
		[]float64{0.1, 1}, nil)
	h.Observe(0.5)
	r := newTestRecorder(t, func(c *Config) {
		c.Registry = reg
		c.MetricsSnapshot = reg.Snapshot
	})
	r.TapPacket(testPacket(0, 1))

	name, err := r.DumpNow(TriggerManual, "histogram snapshot")
	if err != nil {
		t.Fatalf("dump with histogram metrics: %v", err)
	}
	b, err := LoadBundle(r.BundlePath(name))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range b.Manifest.Metrics {
		if s.Name != "flight_test_seconds" {
			continue
		}
		found = true
		for _, bk := range s.Buckets {
			if math.IsInf(bk.UpperBound, 0) || math.IsNaN(bk.UpperBound) {
				t.Fatalf("non-finite bucket bound survived the dump: %v", bk.UpperBound)
			}
		}
	}
	if !found {
		t.Fatal("histogram missing from the bundle's metrics snapshot")
	}
}
