package flight

import (
	"encoding/json"
	"net/http"
	"os"
	"path"
	"path/filepath"
	"strings"
	"time"
)

// status is the JSON served at GET /debug/flight.
type status struct {
	Armed       bool              `json:"armed"`
	CaptureSeq  uint64            `json:"capture_seq"`
	Frames      int               `json:"frames_buffered"`
	Journal     int               `json:"journal_events"`
	Fixes       int               `json:"fix_records"`
	CooldownSec float64           `json:"cooldown_seconds"`
	LastDumpNs  int64             `json:"last_dump_unix_ns,omitempty"`
	MaxBundles  int               `json:"max_bundles"`
	Bundles     []BundleInfo      `json:"bundles"`
	Dumps       map[string]uint64 `json:"dumps_total,omitempty"`
	Suppressed  map[string]uint64 `json:"suppressed_total,omitempty"`
}

// Handler serves the flight-recorder debug surface:
//
//	GET  /debug/flight                          recorder status + bundle index (JSON)
//	POST /debug/flight/dump                     freeze a bundle now (manual trigger)
//	GET  /debug/flight/bundle/<name>/manifest.json
//	GET  /debug/flight/bundle/<name>/frames.sft  bundle files (frames are SFT1)
//
// Mount it at both "/debug/flight" and "/debug/flight/".
func (r *Recorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if r == nil {
			http.Error(w, "flight recorder not armed (start with -flight-dir)", http.StatusNotFound)
			return
		}
		rest := strings.TrimPrefix(req.URL.Path, "/debug/flight")
		rest = strings.TrimPrefix(rest, "/")
		switch {
		case rest == "":
			r.serveStatus(w)
		case rest == "dump":
			if req.Method != http.MethodPost {
				w.Header().Set("Allow", http.MethodPost)
				http.Error(w, "POST required", http.StatusMethodNotAllowed)
				return
			}
			name, err := r.DumpNow(TriggerManual, "POST /debug/flight/dump from "+req.RemoteAddr)
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			//lint:allow errdrop a failed write to the client has no one left to tell
			json.NewEncoder(w).Encode(map[string]string{"bundle": name})
		case strings.HasPrefix(rest, "bundle/"):
			r.serveBundleFile(w, req, strings.TrimPrefix(rest, "bundle/"))
		default:
			http.NotFound(w, req)
		}
	})
}

func (r *Recorder) serveStatus(w http.ResponseWriter) {
	capSeq, frames, journal, fixes := r.Stats()
	st := status{
		Armed:       r.Armed(),
		CaptureSeq:  capSeq,
		Frames:      frames,
		Journal:     journal,
		Fixes:       fixes,
		CooldownSec: r.cfg.Cooldown.Seconds(),
		LastDumpNs:  r.lastDumpNs.Load(),
		MaxBundles:  r.cfg.MaxBundles,
		Bundles:     r.Bundles(),
	}
	st.Dumps = make(map[string]uint64)
	st.Suppressed = make(map[string]uint64)
	for _, k := range TriggerKinds() {
		if v := r.dumps[k].Value(); v > 0 {
			st.Dumps[string(k)] = v
		}
		if v := r.suppressed[k].Value(); v > 0 {
			st.Suppressed[string(k)] = v
		}
	}
	w.Header().Set("Content-Type", "application/json")
	//lint:allow errdrop a failed write to the client has no one left to tell
	json.NewEncoder(w).Encode(st)
}

// serveBundleFile serves <name>/{manifest.json,frames.sft}. The name is
// path-cleaned and both components are validated against the bundle
// index, so a crafted URL cannot escape the flight directory.
func (r *Recorder) serveBundleFile(w http.ResponseWriter, req *http.Request, rest string) {
	parts := strings.Split(path.Clean(rest), "/")
	if len(parts) != 2 || (parts[1] != ManifestFile && parts[1] != FramesFile) {
		http.NotFound(w, req)
		return
	}
	name := parts[0]
	known := false
	for _, b := range r.Bundles() {
		if b.Name == name {
			known = true
			break
		}
	}
	if !known {
		http.NotFound(w, req)
		return
	}
	f, err := os.Open(filepath.Join(r.cfg.Dir, name, parts[1]))
	if err != nil {
		http.NotFound(w, req)
		return
	}
	defer f.Close()
	if parts[1] == ManifestFile {
		w.Header().Set("Content-Type", "application/json")
	} else {
		w.Header().Set("Content-Type", "application/octet-stream")
	}
	http.ServeContent(w, req, parts[1], time.Unix(0, 0), f)
}
