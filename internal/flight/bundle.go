package flight

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"spotfi/internal/csi"
	"spotfi/internal/obs"
	"spotfi/internal/obs/trace"
)

// Bundle schema identity. Version bumps whenever a field changes meaning;
// readers reject bundles they do not understand instead of misreading
// them.
const (
	SchemaName    = "spotfi-flight-bundle"
	SchemaVersion = 1
)

// ManifestFile and FramesFile are the two files of a bundle directory.
// Frames are SFT1, so every spotfi-trace subcommand (info, paths,
// spectrum, locate) works on captured production traffic unchanged.
const (
	ManifestFile = "manifest.json"
	FramesFile   = "frames.sft"
)

// Manifest is everything in a bundle except the raw frames.
type Manifest struct {
	Schema        string `json:"schema"`
	Version       int    `json:"version"`
	Trigger       string `json:"trigger"`
	TriggerDetail string `json:"trigger_detail,omitempty"`
	CreatedNs     int64  `json:"created_unix_ns"`
	// CaptureSeq is the recorder's frame counter at dump time; journal
	// entries carry the value at their moment, tying the two streams
	// together.
	CaptureSeq uint64            `json:"capture_seq"`
	Frames     int               `json:"frames"`
	Server     ServerConfig      `json:"server"`
	Flags      map[string]string `json:"flags,omitempty"`
	Journal    []Event           `json:"journal"`
	Fixes      []FixRecord       `json:"fixes"`
	Metrics    []obs.Sample      `json:"metrics,omitempty"`
	// TracesRecent/TracesSlow are the tracer rings at dump time.
	TracesRecent []trace.TraceData `json:"traces_recent,omitempty"`
	TracesSlow   []trace.TraceData `json:"traces_slow,omitempty"`
	// Goroutines is a full runtime.Stack dump.
	Goroutines string `json:"goroutines,omitempty"`
}

// BundleInfo summarizes one on-disk bundle for the index endpoint.
type BundleInfo struct {
	Name         string `json:"name"`
	Trigger      string `json:"trigger"`
	CreatedNs    int64  `json:"created_unix_ns"`
	Frames       int    `json:"frames"`
	Fixes        int    `json:"fixes"`
	CoveredFixes int    `json:"covered_fixes"`
	SizeBytes    int64  `json:"size_bytes"`
}

// Bundle is a loaded bundle: the manifest plus the frames in capture
// order.
type Bundle struct {
	Dir      string
	Manifest Manifest
	Packets  []*csi.Packet
}

func ensureDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("flight: creating bundle dir: %w", err)
	}
	return nil
}

// finiteOr maps IEEE specials, which encoding/json rejects, to encodable
// stand-ins: ±Inf to ±MaxFloat64, NaN to 0.
func finiteOr(v float64) float64 {
	switch {
	case math.IsInf(v, 1):
		return math.MaxFloat64
	case math.IsInf(v, -1):
		return -math.MaxFloat64
	case math.IsNaN(v):
		return 0
	}
	return v
}

// sanitizeSamples deep-copies a metrics snapshot with every float made
// JSON-encodable — a histogram's last bucket bound is +Inf by
// construction. The metrics block is forensic context, never replay
// input, so the clamp loses nothing replay needs.
func sanitizeSamples(in []obs.Sample) []obs.Sample {
	out := append([]obs.Sample(nil), in...)
	for i := range out {
		out[i].Value = finiteOr(out[i].Value)
		out[i].Sum = finiteOr(out[i].Sum)
		if len(out[i].Buckets) == 0 {
			continue
		}
		bs := append([]obs.Bucket(nil), out[i].Buckets...)
		for j := range bs {
			bs[j].UpperBound = finiteOr(bs[j].UpperBound)
		}
		out[i].Buckets = bs
	}
	return out
}

// dump freezes the current capture state into a new bundle directory and
// prunes the oldest bundles past MaxBundles. It runs on the bundle-writer
// goroutine (or synchronously via DumpNow) — never on the ingest path.
func (r *Recorder) dump(kind TriggerKind, detail string) (string, error) {
	s := r.takeSnapshot()
	now := r.now()

	// Coverage: a fix is replayable iff every packet it references is
	// still in the frame snapshot. Content hashes are the identity —
	// wire sequence numbers repeat across traffic regimes.
	present := make(map[uint64]struct{}, len(s.frames))
	for _, p := range s.frames {
		present[PacketHash(p)] = struct{}{}
	}
	for i := range s.fixes {
		covered := true
		for _, fa := range s.fixes[i].APs {
			for _, h := range fa.Hashes {
				if _, ok := present[h]; !ok {
					covered = false
					break
				}
			}
			if !covered {
				break
			}
		}
		s.fixes[i].Covered = covered
	}

	man := Manifest{
		Schema:        SchemaName,
		Version:       SchemaVersion,
		Trigger:       string(kind),
		TriggerDetail: detail,
		CreatedNs:     now.UnixNano(),
		CaptureSeq:    s.capSeq,
		Frames:        len(s.frames),
		Server:        r.cfg.Server,
		Flags:         r.cfg.Flags,
		Journal:       s.journal,
		Fixes:         s.fixes,
	}
	if r.cfg.MetricsSnapshot != nil {
		man.Metrics = sanitizeSamples(r.cfg.MetricsSnapshot())
	}
	for i := range man.Journal {
		man.Journal[i].Value = finiteOr(man.Journal[i].Value)
	}
	if r.cfg.Traces != nil {
		man.TracesRecent, man.TracesSlow = r.cfg.Traces()
	}
	buf := make([]byte, 1<<20)
	man.Goroutines = string(buf[:runtime.Stack(buf, true)])

	name := fmt.Sprintf("%d-%s", man.CreatedNs, kind)
	if err := writeBundle(r.cfg.Dir, name, man, s.frames); err != nil {
		return "", err
	}
	r.prune()
	r.dumps[kind].Inc()
	covered := 0
	for _, f := range s.fixes {
		if f.Covered {
			covered++
		}
	}
	if r.cfg.Logger != nil {
		r.cfg.Logger.Info("flight bundle dumped",
			"bundle", name, "trigger", string(kind), "detail", detail,
			"frames", len(s.frames), "fixes", len(s.fixes), "covered", covered)
	}
	return name, nil
}

// writeBundle writes manifest + frames into a temp directory and renames
// it into place, so readers only ever see complete bundles.
func writeBundle(dir, name string, man Manifest, frames []*csi.Packet) error {
	tmp := filepath.Join(dir, ".tmp-"+name)
	if err := os.MkdirAll(tmp, 0o755); err != nil {
		return fmt.Errorf("flight: %w", err)
	}
	defer os.RemoveAll(tmp) // no-op after a successful rename

	mf, err := os.Create(filepath.Join(tmp, ManifestFile))
	if err != nil {
		return fmt.Errorf("flight: %w", err)
	}
	enc := json.NewEncoder(mf)
	enc.SetIndent("", " ")
	if err := enc.Encode(man); err != nil {
		mf.Close() //lint:allow errdrop best-effort cleanup; the encode error is what gets reported
		return fmt.Errorf("flight: encoding manifest: %w", err)
	}
	if err := mf.Close(); err != nil {
		return fmt.Errorf("flight: %w", err)
	}

	ff, err := os.Create(filepath.Join(tmp, FramesFile))
	if err != nil {
		return fmt.Errorf("flight: %w", err)
	}
	w := csi.NewTraceWriter(ff)
	for _, p := range frames {
		if err := w.WritePacket(p); err != nil {
			ff.Close() //lint:allow errdrop best-effort cleanup; the write error is what gets reported
			return fmt.Errorf("flight: writing frame: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		ff.Close() //lint:allow errdrop best-effort cleanup; the flush error is what gets reported
		return fmt.Errorf("flight: %w", err)
	}
	if err := ff.Close(); err != nil {
		return fmt.Errorf("flight: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, name)); err != nil {
		return fmt.Errorf("flight: publishing bundle: %w", err)
	}
	return nil
}

// prune deletes the oldest bundles past MaxBundles and refreshes the
// in-memory index.
func (r *Recorder) prune() {
	infos := ListBundles(r.cfg.Dir)
	for len(infos) > r.cfg.MaxBundles {
		oldest := infos[len(infos)-1]
		//lint:allow errdrop best-effort pruning; a leftover bundle is re-pruned on the next dump
		os.RemoveAll(filepath.Join(r.cfg.Dir, oldest.Name))
		infos = infos[:len(infos)-1]
	}
	r.bundleMu.Lock()
	r.bundles = infos
	r.bundleMu.Unlock()
}

// ListBundles scans a flight directory and returns bundle summaries,
// newest first. Unreadable entries are skipped — a half-written temp dir
// must not break the index.
func ListBundles(dir string) []BundleInfo {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var out []BundleInfo
	for _, e := range entries {
		if !e.IsDir() || strings.HasPrefix(e.Name(), ".") {
			continue
		}
		man, err := readManifest(filepath.Join(dir, e.Name()))
		if err != nil {
			continue
		}
		info := BundleInfo{
			Name:      e.Name(),
			Trigger:   man.Trigger,
			CreatedNs: man.CreatedNs,
			Frames:    man.Frames,
			Fixes:     len(man.Fixes),
		}
		for _, f := range man.Fixes {
			if f.Covered {
				info.CoveredFixes++
			}
		}
		for _, file := range []string{ManifestFile, FramesFile} {
			if st, err := os.Stat(filepath.Join(dir, e.Name(), file)); err == nil {
				info.SizeBytes += st.Size()
			}
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].CreatedNs > out[j].CreatedNs })
	return out
}

func readManifest(bundleDir string) (Manifest, error) {
	f, err := os.Open(filepath.Join(bundleDir, ManifestFile))
	if err != nil {
		return Manifest{}, err
	}
	defer f.Close()
	var man Manifest
	if err := json.NewDecoder(f).Decode(&man); err != nil {
		return Manifest{}, fmt.Errorf("flight: decoding manifest: %w", err)
	}
	if man.Schema != SchemaName {
		return Manifest{}, fmt.Errorf("flight: not a flight bundle (schema %q)", man.Schema)
	}
	if man.Version != SchemaVersion {
		return Manifest{}, fmt.Errorf("flight: unsupported bundle version %d (want %d)", man.Version, SchemaVersion)
	}
	return man, nil
}

// BundlePath returns the on-disk directory of a bundle by name, suitable
// for LoadBundle.
func (r *Recorder) BundlePath(name string) string {
	return filepath.Join(r.cfg.Dir, name)
}

// LoadBundle reads one bundle directory: manifest plus every frame, in
// capture order.
func LoadBundle(bundleDir string) (*Bundle, error) {
	man, err := readManifest(bundleDir)
	if err != nil {
		return nil, err
	}
	b := &Bundle{Dir: bundleDir, Manifest: man}
	f, err := os.Open(filepath.Join(bundleDir, FramesFile))
	if err != nil {
		return nil, fmt.Errorf("flight: %w", err)
	}
	defer f.Close()
	tr := csi.NewTraceReader(f)
	for {
		p, err := tr.ReadPacket()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("flight: reading frames: %w", err)
		}
		b.Packets = append(b.Packets, p)
	}
	if len(b.Packets) != man.Frames {
		return nil, fmt.Errorf("flight: bundle has %d frames, manifest says %d", len(b.Packets), man.Frames)
	}
	return b, nil
}
