package sense

import (
	"math"
	"math/rand"
	"testing"

	"spotfi/internal/csi"
	"spotfi/internal/geom"
	"spotfi/internal/rf"
	"spotfi/internal/sim"
)

// linkPackets synthesizes n packets on a fixed multipath link; moving
// toggles the per-packet reflector jitter that models people near the
// link.
func linkPackets(t *testing.T, moving bool, n int, seed int64) []*csi.Packet {
	t.Helper()
	band := rf.DefaultBand()
	array := rf.DefaultArray(band)
	env := &sim.Environment{
		Walls: []sim.Wall{{
			Seg:           geom.Segment{A: geom.Point{X: -20, Y: 6}, B: geom.Point{X: 20, Y: 6}},
			LossDB:        14,
			ReflectLossDB: 5,
		}},
		Scatterers: []sim.Scatterer{{Pos: geom.Point{X: 3, Y: 4}, LossDB: 10}},
	}
	rng := rand.New(rand.NewSource(seed))
	link := sim.NewLink(env, sim.AP{Pos: geom.Point{X: 0, Y: 0}, NormalAngle: 0.3}, geom.Point{X: 6, Y: 1}, sim.DefaultLinkConfig(), rng)
	imp := sim.DefaultImpairments()
	if !moving {
		imp.NonDirectAoAJitterRad = 0
		imp.NonDirectToFJitterNs = 0
		imp.NonDirectGainJitterDB = 0
	} else {
		// A person walking near the reflectors: strong per-packet change.
		imp.NonDirectAoAJitterRad = 0.1
		imp.NonDirectToFJitterNs = 6
		imp.NonDirectGainJitterDB = 4
	}
	syn, err := sim.NewSynthesizer(link, band, array, imp, rng)
	if err != nil {
		t.Fatal(err)
	}
	return syn.Burst("sense", n)
}

func runWindows(t *testing.T, d *Detector, pkts []*csi.Packet) []Decision {
	t.Helper()
	var out []Decision
	for _, p := range pkts {
		dec, done, err := d.Add(p.CSI)
		if err != nil {
			t.Fatal(err)
		}
		if done {
			out = append(out, dec)
		}
	}
	return out
}

func TestDetectorStaticLinkQuiet(t *testing.T) {
	d, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	decs := runWindows(t, d, linkPackets(t, false, 40, 151))
	if len(decs) == 0 {
		t.Fatal("no decisions")
	}
	for i, dec := range decs {
		if dec.Motion {
			t.Fatalf("window %d flagged motion on a static link (score %.4f)", i, dec.Score)
		}
	}
}

func TestDetectorFlagsMotion(t *testing.T) {
	d, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	decs := runWindows(t, d, linkPackets(t, true, 40, 152))
	if len(decs) == 0 {
		t.Fatal("no decisions")
	}
	flagged := 0
	for _, dec := range decs {
		if dec.Motion {
			flagged++
		}
	}
	if flagged < len(decs) {
		t.Fatalf("only %d/%d moving windows flagged", flagged, len(decs))
	}
}

func TestDetectorScoreSeparation(t *testing.T) {
	d1, _ := New(DefaultConfig())
	d2, _ := New(DefaultConfig())
	static := runWindows(t, d1, linkPackets(t, false, 40, 153))
	moving := runWindows(t, d2, linkPackets(t, true, 40, 153))
	var s, m float64
	for _, dec := range static {
		s += dec.Score
	}
	for _, dec := range moving {
		m += dec.Score
	}
	s /= float64(len(static))
	m /= float64(len(moving))
	t.Logf("mean score: static %.5f, moving %.5f (%.0f×)", s, m, m/s)
	if m < 3*s {
		t.Fatalf("insufficient separation: static %.5f vs moving %.5f", s, m)
	}
}

func TestDetectorTransitions(t *testing.T) {
	// Static → moving → static: decisions must follow.
	d, _ := New(DefaultConfig())
	var seq []Decision
	seq = append(seq, runWindows(t, d, linkPackets(t, false, 20, 154))...)
	d.Reset()
	seq = append(seq, runWindows(t, d, linkPackets(t, true, 20, 155))...)
	d.Reset()
	seq = append(seq, runWindows(t, d, linkPackets(t, false, 20, 156))...)
	if len(seq) < 6 {
		t.Fatalf("expected ≥6 windows, got %d", len(seq))
	}
	third := len(seq) / 3
	for i, dec := range seq {
		wantMotion := i >= third && i < 2*third
		if dec.Motion != wantMotion {
			t.Fatalf("window %d: motion=%v, want %v (score %.4f)", i, dec.Motion, wantMotion, dec.Score)
		}
	}
}

func TestDetectorErrors(t *testing.T) {
	if _, err := New(Config{Window: 1, Threshold: 0.01}); err == nil {
		t.Fatal("window 1 accepted")
	}
	if _, err := New(Config{Window: 5, Threshold: 0}); err == nil {
		t.Fatal("zero threshold accepted")
	}
	d, _ := New(DefaultConfig())
	if _, _, err := d.Add(nil); err == nil {
		t.Fatal("nil CSI accepted")
	}
	bad := csi.NewMatrix(2, 2)
	bad.Values[0][0] = complex(math.NaN(), 0)
	if _, _, err := d.Add(bad); err == nil {
		t.Fatal("NaN CSI accepted")
	}
	// Shape change mid-stream.
	if _, _, err := d.Add(csi.NewMatrix(3, 30)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.Add(csi.NewMatrix(2, 30)); err == nil {
		t.Fatal("shape change accepted")
	}
}

func TestCorrelationProperties(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	if c := correlation(a, a); math.Abs(c-1) > 1e-12 {
		t.Fatalf("self-correlation %v", c)
	}
	b := []float64{4, 3, 2, 1} // perfectly anticorrelated → clamped to 0
	if c := correlation(a, b); c != 0 {
		t.Fatalf("anticorrelation clamp: %v", c)
	}
	flat := []float64{2, 2, 2, 2} // zero variance
	if c := correlation(a, flat); c != 0 {
		t.Fatalf("degenerate correlation: %v", c)
	}
}
