// Package sense implements device-free motion detection from CSI — the
// first of the paper's future-work applications ("device free
// localization, gesture recognition and motion tracing", Sec. 5). A static
// link's CSI amplitude profile is stable packet to packet; people moving
// near the link perturb the reflected paths and decorrelate it. The
// detector scores consecutive packets by amplitude decorrelation and flags
// windows whose mean score exceeds a threshold.
//
// Amplitudes are used rather than raw complex CSI because the per-packet
// sampling time offset rotates the phases arbitrarily (Sec. 3.2) while
// leaving |csi| untouched, so amplitude correlation isolates genuine
// channel change.
package sense

import (
	"fmt"
	"math"

	"spotfi/internal/csi"
)

// Config tunes the detector.
type Config struct {
	// Window is the number of packets per decision.
	Window int
	// Threshold is the mean decorrelation score above which a window is
	// declared to contain motion. Static links score ≲0.02 (noise and
	// quantization, SNR-dependent); a person moving near the link scores
	// an order of magnitude higher.
	Threshold float64
}

// DefaultConfig returns a detector tuned for the simulated testbed links.
func DefaultConfig() Config {
	return Config{Window: 10, Threshold: 0.08}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Window < 2 {
		return fmt.Errorf("sense: window must be ≥ 2 packets")
	}
	if c.Threshold <= 0 {
		return fmt.Errorf("sense: threshold must be positive")
	}
	return nil
}

// Decision is one completed window.
type Decision struct {
	// Score is the mean amplitude decorrelation 1 − ρ over the window.
	Score float64
	// Motion reports whether Score exceeded the threshold.
	Motion bool
	// Packets is the number of packet pairs scored.
	Packets int
}

// Detector accumulates CSI packets from one link and emits a Decision per
// full window. It is not safe for concurrent use.
type Detector struct {
	cfg  Config
	prev []float64

	scores []float64
}

// New returns a Detector.
func New(cfg Config) (*Detector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Detector{cfg: cfg}, nil
}

// Add ingests one CSI matrix. When a window completes it returns the
// Decision and true.
func (d *Detector) Add(c *csi.Matrix) (Decision, bool, error) {
	if c == nil {
		return Decision{}, false, fmt.Errorf("sense: nil CSI")
	}
	if err := c.Validate(); err != nil {
		return Decision{}, false, err
	}
	amp := amplitudes(c)
	if d.prev != nil {
		if len(amp) != len(d.prev) {
			return Decision{}, false, fmt.Errorf("sense: CSI shape changed mid-stream")
		}
		d.scores = append(d.scores, 1-correlation(d.prev, amp))
	}
	d.prev = amp

	if len(d.scores) >= d.cfg.Window-1 {
		var sum float64
		for _, s := range d.scores {
			sum += s
		}
		dec := Decision{
			Score:   sum / float64(len(d.scores)),
			Packets: len(d.scores),
		}
		dec.Motion = dec.Score > d.cfg.Threshold
		d.scores = d.scores[:0]
		return dec, true, nil
	}
	return Decision{}, false, nil
}

// Reset clears the detector state (e.g. after a stream gap).
func (d *Detector) Reset() {
	d.prev = nil
	d.scores = d.scores[:0]
}

// amplitudes flattens |csi| into one vector.
func amplitudes(c *csi.Matrix) []float64 {
	out := make([]float64, 0, c.Antennas()*c.Subcarriers())
	for _, row := range c.Values {
		for _, v := range row {
			out = append(out, math.Hypot(real(v), imag(v)))
		}
	}
	return out
}

// correlation returns the Pearson correlation of two amplitude vectors,
// clamped to [0, 1] (anticorrelation counts as full decorrelation).
func correlation(a, b []float64) float64 {
	n := float64(len(a))
	var ma, mb float64
	for i := range a {
		ma += a[i]
		mb += b[i]
	}
	ma /= n
	mb /= n
	var num, da, db float64
	for i := range a {
		x := a[i] - ma
		y := b[i] - mb
		num += x * y
		da += x * x
		db += y * y
	}
	if da <= 0 || db <= 0 {
		return 0
	}
	rho := num / math.Sqrt(da*db)
	if rho < 0 {
		return 0
	}
	if rho > 1 {
		return 1
	}
	return rho
}
