package admit

import (
	"time"

	"spotfi/internal/obs"
)

// QueueMetrics holds the admission-control series. Register once with
// NewQueueMetrics before the queue starts; all methods are safe on a nil
// receiver, so an unwired queue pays only nil checks.
type QueueMetrics struct {
	sojourn *obs.Histogram
	depth   *obs.Gauge
	shed    map[ShedReason]*obs.Counter
}

// NewQueueMetrics registers the admission series on reg. Every shed
// reason's series is registered eagerly so dashboards see zeros instead
// of absent series.
func NewQueueMetrics(reg *obs.Registry) *QueueMetrics {
	m := &QueueMetrics{
		sojourn: reg.Histogram("spotfi_admit_queue_sojourn_seconds",
			"Queue wait of delivered bursts, from enqueue to worker pickup.",
			obs.LatencyBuckets, nil),
		depth: reg.Gauge("spotfi_admit_queue_depth",
			"Bursts waiting for a localization worker.", nil),
		shed: make(map[ShedReason]*obs.Counter, len(ShedReasons())),
	}
	for _, r := range ShedReasons() {
		m.shed[r] = reg.Counter("spotfi_admit_shed_total",
			"Bursts shed by admission control, by reason.",
			obs.Labels{"reason": string(r)})
	}
	return m
}

// observeDelivered records a delivered burst's sojourn and the remaining
// depth.
func (m *QueueMetrics) observeDelivered(sojourn time.Duration, depth int) {
	if m == nil {
		return
	}
	m.sojourn.Observe(sojourn.Seconds())
	m.depth.Set(int64(depth))
}

// countShed increments the reason's shed counter.
func (m *QueueMetrics) countShed(r ShedReason) {
	if m == nil {
		return
	}
	m.shed[r].Inc()
}

// setDepth updates the depth gauge.
func (m *QueueMetrics) setDepth(depth int) {
	if m == nil {
		return
	}
	m.depth.Set(int64(depth))
}
