package admit

import (
	"sync"
	"time"

	"spotfi/internal/obs"
)

// Mode is a rung on the degradation ladder, cheapest last. The server
// keeps one Localizer per rung and picks by the ladder's current mode.
type Mode int

const (
	// ModeFull: the full MUSIC pipeline — maximum accuracy.
	ModeFull Mode = iota
	// ModeFastPath: ESPRIT-first fast path, MUSIC only as fallback.
	ModeFastPath
	// ModeCoarse: fast path plus a coarser MUSIC grid for the fallbacks.
	ModeCoarse

	numModes
)

// String returns the mode label stamped on fixes and traces.
func (m Mode) String() string {
	switch m {
	case ModeFull:
		return "full"
	case ModeFastPath:
		return "fastpath"
	case ModeCoarse:
		return "coarse"
	}
	return "unknown"
}

// LadderConfig configures a Ladder. Use DefaultLadderConfig to derive the
// thresholds from the queue's sojourn target.
type LadderConfig struct {
	// MaxMode bounds degradation depth (ModeFull disables the ladder).
	MaxMode Mode
	// StepDownAt[m] is the sojourn at which mode m degrades to m+1.
	StepDownAt []time.Duration
	// StepUpBelow: sojourns at or below this count toward recovery.
	StepUpBelow time.Duration
	// HoldGood is how many consecutive good sojourns step back up —
	// hysteresis against mode flapping.
	HoldGood int
	// OnChange, when non-nil, observes mode changes (outside the lock).
	OnChange func(from, to Mode)
}

// DefaultLadderConfig derives thresholds from the queue's sojourn target:
// degrade to the fast path at 2× target, to the coarse grid at 6×, and
// recover (after HoldGood consecutive good bursts) below target/2.
func DefaultLadderConfig(target time.Duration) LadderConfig {
	return LadderConfig{
		MaxMode:     ModeCoarse,
		StepDownAt:  []time.Duration{2 * target, 6 * target},
		StepUpBelow: target / 2,
		HoldGood:    16,
	}
}

// Ladder tracks the active degradation mode from delivered-burst sojourn
// times: one observation above the current rung's threshold steps down
// immediately (load is already visible), while stepping back up demands
// HoldGood consecutive comfortable sojourns. Safe for concurrent use.
type Ladder struct {
	cfg LadderConfig

	mu   sync.Mutex
	mode Mode
	good int
}

// NewLadder returns a Ladder in ModeFull, exporting the active mode as
// the spotfi_admit_mode gauge when reg is non-nil.
func NewLadder(reg *obs.Registry, cfg LadderConfig) *Ladder {
	if cfg.HoldGood <= 0 {
		cfg.HoldGood = 16
	}
	if cfg.MaxMode >= numModes {
		cfg.MaxMode = numModes - 1
	}
	l := &Ladder{cfg: cfg}
	if reg != nil {
		reg.GaugeFunc("spotfi_admit_mode",
			"Active degradation mode: 0 full MUSIC, 1 ESPRIT fast path, 2 coarse grid.",
			nil,
			func() float64 { return float64(l.Current()) })
	}
	return l
}

// Observe folds one delivered burst's sojourn into the ladder and returns
// the mode the burst should be processed in.
func (l *Ladder) Observe(sojourn time.Duration) Mode {
	l.mu.Lock()
	from := l.mode
	switch {
	case l.mode < l.cfg.MaxMode && int(l.mode) < len(l.cfg.StepDownAt) && sojourn >= l.cfg.StepDownAt[l.mode]:
		l.mode++
		l.good = 0
	case l.mode > ModeFull && sojourn <= l.cfg.StepUpBelow:
		l.good++
		if l.good >= l.cfg.HoldGood {
			l.mode--
			l.good = 0
		}
	default:
		l.good = 0
	}
	to := l.mode
	l.mu.Unlock()
	if to != from && l.cfg.OnChange != nil {
		l.cfg.OnChange(from, to)
	}
	return to
}

// Current returns the active mode without observing anything.
func (l *Ladder) Current() Mode {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.mode
}
