// Package admit is the server's overload-resilience layer: adaptive
// admission control for the localization queue (CoDel-style sojourn
// shedding with per-target fairness), per-AP circuit breakers fed by
// ingest and quality signals, and a load-aware degradation ladder that
// trades localization fidelity for freshness under pressure.
//
// The design goal is graceful degradation, not collapse: under sustained
// overload the server sheds the *stalest* work first (a fix computed from
// a burst that waited seconds is worse than no fix — the target moved),
// keeps per-device fairness (one chatty target sheds its own backlog, not
// the fleet's), quarantines misbehaving APs instead of letting them poison
// every fix, and steps the pipeline down to cheaper estimators before it
// sheds at all.
package admit

import (
	"sync"
	"time"
)

// ShedReason classifies why a queued burst was shed; it is the `reason`
// label on spotfi_admit_shed_total.
type ShedReason string

const (
	// ShedFull: the queue was at capacity and this burst was evicted to
	// make room for a fresher one (per-MAC fair eviction).
	ShedFull ShedReason = "full"
	// ShedStale: the burst's sojourn exceeded the hard freshness deadline.
	ShedStale ShedReason = "stale"
	// ShedCoDel: shed by the CoDel control law while sojourn stayed above
	// target for a full interval.
	ShedCoDel ShedReason = "codel"
	// ShedDrain: the queue was aborted (drain deadline exceeded) or the
	// burst arrived after intake closed.
	ShedDrain ShedReason = "drain"
)

// ShedReasons lists every reason, for eager metric registration.
func ShedReasons() []ShedReason {
	return []ShedReason{ShedFull, ShedStale, ShedCoDel, ShedDrain}
}

// Item is one queued unit of work.
type Item struct {
	// MAC is the target the burst belongs to — the fairness key.
	MAC string
	// EnqueuedAt is when Push accepted the item (queue clock).
	EnqueuedAt time.Time
	// Payload is the caller's burst context, returned verbatim by Pop.
	Payload any
}

// QueueConfig configures a Queue. Zero fields select defaults.
type QueueConfig struct {
	// Capacity bounds the number of queued items (default 64).
	Capacity int
	// Target is the acceptable standing sojourn: CoDel starts shedding
	// when delivered items have waited longer than this for a full
	// Interval (default 150 ms).
	Target time.Duration
	// Interval is the CoDel observation window (default 2 s).
	Interval time.Duration
	// Deadline is the hard freshness budget: an item that waited longer is
	// shed unconditionally at Pop (default 1 s; must be ≥ Target).
	Deadline time.Duration
	// RateWindow sizes the sliding window behind ShedRate (default 10 s).
	RateWindow time.Duration
	// Now overrides the clock (tests). Nil means time.Now.
	Now func() time.Time
	// OnShed, when non-nil, observes every shed item with its reason. It
	// is called outside the queue lock and must not call back into the
	// Queue.
	OnShed func(Item, ShedReason)
	// Metrics, when non-nil, receives sojourn/shed/depth observations.
	Metrics *QueueMetrics
}

func (c *QueueConfig) fill() {
	if c.Capacity <= 0 {
		c.Capacity = 64
	}
	if c.Target <= 0 {
		c.Target = 150 * time.Millisecond
	}
	if c.Interval <= 0 {
		c.Interval = 2 * time.Second
	}
	if c.Deadline <= 0 {
		c.Deadline = 1 * time.Second
	}
	if c.Deadline < c.Target {
		c.Deadline = c.Target
	}
	if c.RateWindow <= 0 {
		c.RateWindow = 10 * time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
}

// Queue is a bounded FIFO with CoDel-style admission control. Producers
// Push from connection goroutines; a bounded worker pool Pops. Under
// overload it sheds the stalest work first: at capacity the heaviest
// target's oldest burst is evicted (fairness), and at Pop items whose
// sojourn blew the freshness budget are shed before a worker wastes time
// on them. It is safe for concurrent use.
type Queue struct {
	cfg QueueConfig

	mu     sync.Mutex
	cond   *sync.Cond
	items  []Item
	byMAC  map[string]int // queued items per target
	closed bool           // intake stopped; Pop drains the remainder
	abort  bool           // drain abandoned; Pop returns immediately

	ctl codel

	// Two-bucket sliding window behind ShedRate.
	winStart  time.Time
	curShed   uint64
	curOut    uint64
	prevShed  uint64
	prevOut   uint64
	shedTotal uint64
	outTotal  uint64
}

// NewQueue returns a Queue with cfg's policy.
func NewQueue(cfg QueueConfig) *Queue {
	cfg.fill()
	q := &Queue{
		cfg:   cfg,
		items: make([]Item, 0, cfg.Capacity),
		byMAC: make(map[string]int),
		ctl: codel{
			targetNs:   cfg.Target.Nanoseconds(),
			intervalNs: cfg.Interval.Nanoseconds(),
			deadlineNs: cfg.Deadline.Nanoseconds(),
		},
	}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Push enqueues a burst for mac. At capacity it first evicts the oldest
// item of the target holding the most queue slots — the chatty device
// sheds its own backlog before anyone else's — and reports the eviction
// via OnShed with ShedFull. After Close/Abort the item is not enqueued and
// is reported shed with ShedDrain. Push reports whether the item was
// admitted.
func (q *Queue) Push(mac string, payload any) bool {
	q.mu.Lock()
	if q.closed {
		q.accountShedLocked(q.cfg.Now())
		q.mu.Unlock()
		q.notifyShed(Item{MAC: mac, Payload: payload}, ShedDrain)
		return false
	}
	now := q.cfg.Now()
	var victim Item
	evicted := false
	if len(q.items) >= q.cfg.Capacity {
		victim = q.evictLocked(mac)
		evicted = true
		q.accountShedLocked(now)
	}
	q.items = append(q.items, Item{MAC: mac, EnqueuedAt: now, Payload: payload})
	q.byMAC[mac]++
	depth := len(q.items)
	q.cond.Signal()
	q.mu.Unlock()

	q.cfg.Metrics.setDepth(depth)
	if evicted {
		q.notifyShed(victim, ShedFull)
	}
	return true
}

// evictLocked removes and returns the oldest item of the heaviest target.
// Ties (and the common single-target case) resolve to the target whose
// item has waited longest, so the incoming MAC only displaces others when
// it genuinely holds fewer slots than they do.
func (q *Queue) evictLocked(incoming string) Item {
	heaviest := q.byMAC[incoming] // incoming's share competes from the start
	for _, n := range q.byMAC {
		if n > heaviest {
			heaviest = n
		}
	}
	victimMAC := incoming
	victimIdx := -1
	if q.byMAC[incoming] < heaviest {
		// Another target is strictly heavier: its oldest item goes. Scan
		// from the front so among equally-heavy targets the longest-waiting
		// item loses — deterministic and freshness-preserving.
		for i := range q.items {
			if q.byMAC[q.items[i].MAC] == heaviest {
				victimMAC = q.items[i].MAC
				victimIdx = i
				break
			}
		}
	} else {
		for i := range q.items {
			if q.items[i].MAC == incoming {
				victimIdx = i
				break
			}
		}
	}
	v := q.items[victimIdx]
	copy(q.items[victimIdx:], q.items[victimIdx+1:])
	q.items[len(q.items)-1] = Item{}
	q.items = q.items[:len(q.items)-1]
	q.byMAC[victimMAC]--
	if q.byMAC[victimMAC] == 0 {
		delete(q.byMAC, victimMAC)
	}
	return v
}

// Pop blocks until an item is deliverable, the queue is closed and empty,
// or aborted. It applies the admission policy: items past the hard
// deadline are shed (ShedStale), and while sojourn stays above Target for
// a full Interval the CoDel control law sheds at an increasing rate
// (ShedCoDel). It returns the delivered item, its queue sojourn, and
// ok=false when the queue is done.
func (q *Queue) Pop() (Item, time.Duration, bool) {
	q.mu.Lock()
	for {
		for len(q.items) == 0 && !q.closed {
			q.cond.Wait()
		}
		if q.abort || (q.closed && len(q.items) == 0) {
			q.mu.Unlock()
			return Item{}, 0, false
		}
		now := q.cfg.Now()
		it := q.items[0]
		copy(q.items, q.items[1:])
		q.items[len(q.items)-1] = Item{}
		q.items = q.items[:len(q.items)-1]
		q.byMAC[it.MAC]--
		if q.byMAC[it.MAC] == 0 {
			delete(q.byMAC, it.MAC)
		}
		sojourn := now.Sub(it.EnqueuedAt)
		shed, reason := q.ctl.decide(now.UnixNano(), sojourn.Nanoseconds())
		if shed {
			q.accountShedLocked(now)
			depth := len(q.items)
			q.mu.Unlock()
			q.cfg.Metrics.setDepth(depth)
			q.notifyShed(it, reason)
			q.mu.Lock()
			continue
		}
		q.rollWindowLocked(now)
		q.curOut++
		q.outTotal++
		depth := len(q.items)
		q.mu.Unlock()
		q.cfg.Metrics.observeDelivered(sojourn, depth)
		return it, sojourn, true
	}
}

// Close stops intake: subsequent Pushes are shed with ShedDrain, while
// Pop keeps draining what is already queued. Safe to call more than once.
func (q *Queue) Close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// Abort closes the queue and sheds everything still queued (ShedDrain),
// unblocking all Pops. It returns how many items it shed. Use it when the
// drain deadline expires.
func (q *Queue) Abort() int {
	q.mu.Lock()
	q.closed = true
	q.abort = true
	rest := q.items
	q.items = nil
	now := q.cfg.Now()
	for range rest {
		q.accountShedLocked(now)
	}
	for mac := range q.byMAC {
		delete(q.byMAC, mac)
	}
	q.cond.Broadcast()
	q.mu.Unlock()

	q.cfg.Metrics.setDepth(0)
	for _, it := range rest {
		q.notifyShed(it, ShedDrain)
	}
	return len(rest)
}

// Len returns the current queue depth.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// ShedTotal returns how many items have been shed since start, across all
// reasons.
func (q *Queue) ShedTotal() uint64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.shedTotal
}

// DeliveredTotal returns how many items Pop has handed to workers since
// start. Together with ShedTotal it is the good/total pair behind the
// admission-shed SLO: delivered / (delivered + shed).
func (q *Queue) DeliveredTotal() uint64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.outTotal
}

// ShedRate returns the fraction of queue outcomes (delivered + shed) that
// were sheds over roughly the last RateWindow — the signal behind the
// /readyz degraded check. It returns 0 before any outcome.
func (q *Queue) ShedRate() float64 {
	q.mu.Lock()
	q.rollWindowLocked(q.cfg.Now())
	shed := q.curShed + q.prevShed
	total := shed + q.curOut + q.prevOut
	q.mu.Unlock()
	if total == 0 {
		return 0
	}
	return float64(shed) / float64(total)
}

// accountShedLocked folds one shed into the sliding window and totals.
func (q *Queue) accountShedLocked(now time.Time) {
	q.rollWindowLocked(now)
	q.curShed++
	q.shedTotal++
}

// rollWindowLocked advances the two-bucket sliding window: the current
// bucket ages into prev each RateWindow, so ShedRate always reflects
// between one and two windows of history.
func (q *Queue) rollWindowLocked(now time.Time) {
	w := q.cfg.RateWindow
	if q.winStart.IsZero() {
		q.winStart = now
		return
	}
	elapsed := now.Sub(q.winStart)
	switch {
	case elapsed < w:
	case elapsed < 2*w:
		q.prevShed, q.prevOut = q.curShed, q.curOut
		q.curShed, q.curOut = 0, 0
		q.winStart = q.winStart.Add(w)
	default:
		// Idle across ≥ 2 windows: all history is stale.
		q.prevShed, q.prevOut = 0, 0
		q.curShed, q.curOut = 0, 0
		q.winStart = now
	}
}

// notifyShed reports one shed to the metrics and the OnShed observer.
func (q *Queue) notifyShed(it Item, reason ShedReason) {
	q.cfg.Metrics.countShed(reason)
	if q.cfg.OnShed != nil {
		q.cfg.OnShed(it, reason)
	}
}
