package admit

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock shared by a test and the code
// under test.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// shedRecorder collects OnShed callbacks.
type shedRecorder struct {
	mu    sync.Mutex
	items []Item
	why   []ShedReason
}

func (r *shedRecorder) observe(it Item, reason ShedReason) {
	r.mu.Lock()
	r.items = append(r.items, it)
	r.why = append(r.why, reason)
	r.mu.Unlock()
}

func (r *shedRecorder) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.items)
}

func TestQueueFIFOAndSojourn(t *testing.T) {
	clk := newFakeClock()
	q := NewQueue(QueueConfig{Capacity: 8, Now: clk.Now})
	q.Push("aa", 1)
	clk.Advance(10 * time.Millisecond)
	q.Push("bb", 2)
	clk.Advance(20 * time.Millisecond)

	it, sojourn, ok := q.Pop()
	if !ok || it.Payload.(int) != 1 {
		t.Fatalf("first pop = %+v ok=%v, want payload 1", it, ok)
	}
	if sojourn != 30*time.Millisecond {
		t.Fatalf("sojourn = %v, want 30ms", sojourn)
	}
	it, sojourn, ok = q.Pop()
	if !ok || it.Payload.(int) != 2 || sojourn != 20*time.Millisecond {
		t.Fatalf("second pop = %+v sojourn=%v ok=%v", it, sojourn, ok)
	}
}

func TestQueueHardDeadlineShedsStale(t *testing.T) {
	clk := newFakeClock()
	rec := &shedRecorder{}
	q := NewQueue(QueueConfig{
		Capacity: 8,
		Target:   50 * time.Millisecond,
		Deadline: 200 * time.Millisecond,
		Now:      clk.Now,
		OnShed:   rec.observe,
	})
	q.Push("old", 1)
	clk.Advance(300 * time.Millisecond) // blows the 200ms budget
	q.Push("fresh", 2)
	clk.Advance(10 * time.Millisecond)

	it, _, ok := q.Pop()
	if !ok || it.MAC != "fresh" {
		t.Fatalf("pop = %+v ok=%v, want the fresh item", it, ok)
	}
	if rec.count() != 1 || rec.why[0] != ShedStale || rec.items[0].MAC != "old" {
		t.Fatalf("shed = %v %v, want [old]/stale", rec.items, rec.why)
	}
}

func TestQueueCoDelControlLaw(t *testing.T) {
	const (
		target   = 100 * time.Millisecond
		interval = 1 * time.Second
		step     = 50 * time.Millisecond
	)
	clk := newFakeClock()
	rec := &shedRecorder{}
	q := NewQueue(QueueConfig{
		Capacity: 8,
		Target:   target,
		Interval: interval,
		Deadline: time.Hour, // out of the way: isolate the control law
		Now:      clk.Now,
		OnShed:   rec.observe,
	})

	// Sustained standing queue: every pop sees a sojourn of ≥ 200 ms
	// (> target). The queue is topped up to 2 items before each pop, so a
	// CoDel shed still leaves something deliverable and Pop never blocks.
	start := clk.Now()
	var shedTimes []time.Duration
	for clk.Now().Sub(start) < 4*interval {
		for q.Len() < 2 {
			q.Push("aa", nil)
		}
		clk.Advance(200 * time.Millisecond)
		before := rec.count()
		if _, _, ok := q.Pop(); !ok {
			t.Fatal("queue unexpectedly closed")
		}
		if rec.count() != before {
			shedTimes = append(shedTimes, clk.Now().Sub(start))
		}
		clk.Advance(step)
	}

	if len(shedTimes) < 3 {
		t.Fatalf("want ≥ 3 CoDel sheds over 4 intervals of standing queue, got %d", len(shedTimes))
	}
	// No shed before a full interval of above-target sojourn.
	if shedTimes[0] < interval {
		t.Fatalf("first shed at %v, want ≥ %v", shedTimes[0], interval)
	}
	// The control law accelerates: interval/√count spacing shrinks.
	gap1, gap2 := shedTimes[1]-shedTimes[0], shedTimes[2]-shedTimes[1]
	if gap2 >= gap1 {
		t.Fatalf("shed gaps %v then %v, want shrinking spacing", gap1, gap2)
	}
	for _, why := range rec.why {
		if why != ShedCoDel {
			t.Fatalf("shed reason = %v, want codel", why)
		}
	}

	// Load clears: drain the backlog, then a below-target sojourn resets
	// the controller.
	for q.Len() > 0 {
		q.Pop()
	}
	q.Push("aa", nil)
	clk.Advance(10 * time.Millisecond)
	before := rec.count()
	if _, _, ok := q.Pop(); !ok || rec.count() != before {
		t.Fatal("below-target pop should deliver and reset the controller")
	}
	q.Push("aa", nil)
	clk.Advance(200 * time.Millisecond)
	if _, _, ok := q.Pop(); !ok || rec.count() != before {
		t.Fatal("one above-target pop right after reset must not shed")
	}
}

func TestQueueFairEviction(t *testing.T) {
	clk := newFakeClock()
	rec := &shedRecorder{}
	q := NewQueue(QueueConfig{Capacity: 4, Now: clk.Now, OnShed: rec.observe})

	// Chatty target aa holds 3 of 4 slots; bb holds 1.
	q.Push("aa", 1)
	q.Push("aa", 2)
	q.Push("bb", 3)
	q.Push("aa", 4)

	// bb pushes into a full queue: the heaviest target (aa) loses its
	// oldest, not bb.
	q.Push("bb", 5)
	if rec.count() != 1 || rec.items[0].MAC != "aa" || rec.items[0].Payload.(int) != 1 {
		t.Fatalf("victim = %+v, want aa's oldest (payload 1)", rec.items)
	}
	if rec.why[0] != ShedFull {
		t.Fatalf("reason = %v, want full", rec.why[0])
	}

	// aa pushes while itself heaviest: it evicts its own oldest — the
	// chatty device cannot displace anyone else's backlog.
	q.Push("aa", 6)
	if rec.count() != 2 || rec.items[1].MAC != "aa" || rec.items[1].Payload.(int) != 2 {
		t.Fatalf("second victim = %+v, want aa's payload 2", rec.items)
	}

	// What remains pops in arrival order with the victims gone.
	var got []int
	for i := 0; i < 4; i++ {
		it, _, ok := q.Pop()
		if !ok {
			t.Fatal("queue closed early")
		}
		got = append(got, it.Payload.(int))
	}
	want := []int{3, 4, 5, 6}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("drain order = %v, want %v", got, want)
		}
	}
}

func TestQueueCloseDrainsThenStops(t *testing.T) {
	clk := newFakeClock()
	rec := &shedRecorder{}
	q := NewQueue(QueueConfig{Capacity: 4, Now: clk.Now, OnShed: rec.observe})
	q.Push("aa", 1)
	q.Push("bb", 2)
	q.Close()

	if q.Push("cc", 3) {
		t.Fatal("push after Close must be refused")
	}
	if rec.count() != 1 || rec.why[0] != ShedDrain {
		t.Fatalf("post-close push shed = %v, want drain", rec.why)
	}
	for want := 1; want <= 2; want++ {
		it, _, ok := q.Pop()
		if !ok || it.Payload.(int) != want {
			t.Fatalf("drain pop = %+v ok=%v, want %d", it, ok, want)
		}
	}
	if _, _, ok := q.Pop(); ok {
		t.Fatal("pop after drain must report done")
	}
}

func TestQueueAbortShedsRemainder(t *testing.T) {
	clk := newFakeClock()
	rec := &shedRecorder{}
	q := NewQueue(QueueConfig{Capacity: 4, Now: clk.Now, OnShed: rec.observe})
	q.Push("aa", 1)
	q.Push("bb", 2)
	if n := q.Abort(); n != 2 {
		t.Fatalf("Abort = %d, want 2", n)
	}
	if rec.count() != 2 || rec.why[0] != ShedDrain || rec.why[1] != ShedDrain {
		t.Fatalf("abort sheds = %v, want 2× drain", rec.why)
	}
	if _, _, ok := q.Pop(); ok {
		t.Fatal("pop after Abort must report done")
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d after Abort", q.Len())
	}
}

func TestQueueShedRateWindow(t *testing.T) {
	clk := newFakeClock()
	q := NewQueue(QueueConfig{
		Capacity:   8,
		Deadline:   100 * time.Millisecond,
		RateWindow: 10 * time.Second,
		Now:        clk.Now,
	})
	// 3 delivered, 1 shed (stale).
	for i := 0; i < 3; i++ {
		q.Push("aa", nil)
		clk.Advance(time.Millisecond)
		if _, _, ok := q.Pop(); !ok {
			t.Fatal("pop failed")
		}
	}
	q.Push("aa", nil)
	clk.Advance(200 * time.Millisecond)
	q.Push("aa", nil)
	clk.Advance(time.Millisecond)
	if _, _, ok := q.Pop(); !ok { // sheds the stale one, delivers the fresh
		t.Fatal("pop failed")
	}
	if got := q.ShedRate(); got < 0.19 || got > 0.21 {
		t.Fatalf("ShedRate = %v, want 1 shed of 5 outcomes = 0.2", got)
	}
	// History decays: two idle windows later the rate reads zero.
	clk.Advance(25 * time.Second)
	if got := q.ShedRate(); got != 0 {
		t.Fatalf("ShedRate after idle = %v, want 0", got)
	}
}

func TestQueueConcurrentPushPop(t *testing.T) {
	q := NewQueue(QueueConfig{Capacity: 16, Deadline: time.Hour, Target: time.Hour / 2})
	const producers, each = 4, 200
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			macs := []string{"aa", "bb", "cc"}
			for i := 0; i < each; i++ {
				q.Push(macs[(p+i)%len(macs)], i)
			}
		}(p)
	}
	var consumed int
	var cwg sync.WaitGroup
	cwg.Add(1)
	go func() {
		defer cwg.Done()
		for {
			if _, _, ok := q.Pop(); !ok {
				return
			}
			consumed++
		}
	}()
	wg.Wait()
	q.Close()
	cwg.Wait()
	if total := consumed + int(q.ShedTotal()); total != producers*each {
		t.Fatalf("consumed %d + shed %d = %d, want %d", consumed, q.ShedTotal(), total, producers*each)
	}
}
