package admit

import (
	"bytes"
	"log/slog"
	"strings"
	"testing"
	"time"
)

func TestShedLoggerRateLimits(t *testing.T) {
	clk := newFakeClock()
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	s := NewShedLogger(logger, 5*time.Second, clk.Now)

	// First shed logs immediately — overload onset must be visible.
	s.Note(ShedFull)
	if got := strings.Count(buf.String(), "overload: bursts shed"); got != 1 {
		t.Fatalf("records after first shed = %d, want 1", got)
	}

	// A storm inside the interval stays silent.
	for i := 0; i < 1000; i++ {
		s.Note(ShedStale)
	}
	if got := strings.Count(buf.String(), "overload: bursts shed"); got != 1 {
		t.Fatalf("records during storm = %d, want still 1", got)
	}

	// The next shed after the interval carries the aggregate.
	clk.Advance(6 * time.Second)
	s.Note(ShedCoDel)
	out := buf.String()
	if got := strings.Count(out, "overload: bursts shed"); got != 2 {
		t.Fatalf("records after interval = %d, want 2", got)
	}
	if !strings.Contains(out, "total=1001") || !strings.Contains(out, "stale=1000") || !strings.Contains(out, "codel=1") {
		t.Fatalf("summary missing aggregate counts:\n%s", out)
	}
}

func TestShedLoggerFlush(t *testing.T) {
	clk := newFakeClock()
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	s := NewShedLogger(logger, time.Minute, clk.Now)

	s.Flush() // nothing pending: no record
	if buf.Len() != 0 {
		t.Fatalf("empty flush wrote: %s", buf.String())
	}

	s.Note(ShedDrain) // logs immediately (first shed)
	s.Note(ShedDrain) // pending
	s.Flush()
	out := buf.String()
	if got := strings.Count(out, "overload: bursts shed"); got != 2 {
		t.Fatalf("records = %d, want immediate + flushed", got)
	}
	if !strings.Contains(out, "drain=1") {
		t.Fatalf("flushed summary missing drain count:\n%s", out)
	}
}
