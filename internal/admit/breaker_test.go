package admit

import (
	"testing"
	"time"
)

func testBreakerConfig(clk *fakeClock) BreakerConfig {
	return BreakerConfig{
		Window:         10 * time.Second,
		Failures:       3,
		Cooldown:       5 * time.Second,
		Probes:         2,
		UnhealthyBelow: 0.2,
		HealthyAbove:   0.5,
		Now:            clk.Now,
	}
}

func TestBreakerTripsOnFailureBurst(t *testing.T) {
	clk := newFakeClock()
	b := NewBreakerSet(nil, testBreakerConfig(clk))

	b.Failure(7, FailNonFinite)
	b.Failure(7, FailNonFinite)
	if !b.Allow(7) || b.State(7) != StateClosed {
		t.Fatal("2 failures of 3 must not trip")
	}
	b.Failure(7, FailNonFinite)
	if b.Allow(7) || b.State(7) != StateOpen {
		t.Fatalf("3rd failure must trip open, state=%v", b.State(7))
	}
	// Other APs are unaffected.
	if !b.Allow(8) {
		t.Fatal("untracked AP must be allowed")
	}
}

func TestBreakerWindowExpiry(t *testing.T) {
	clk := newFakeClock()
	b := NewBreakerSet(nil, testBreakerConfig(clk))

	// Three failures spanning 12 s: the oldest is outside the 10 s window
	// when the ring fills, so no trip.
	b.Failure(1, FailDrift)
	clk.Advance(6 * time.Second)
	b.Failure(1, FailDrift)
	clk.Advance(6 * time.Second)
	b.Failure(1, FailDrift)
	if b.State(1) != StateClosed {
		t.Fatal("slow failure trickle must not trip")
	}
	// A fourth failure 1 s later: the last three span 7 s — trip.
	clk.Advance(time.Second)
	b.Failure(1, FailDrift)
	if b.State(1) != StateOpen {
		t.Fatal("3 failures within the window must trip")
	}
}

func TestBreakerHalfOpenProbeCloses(t *testing.T) {
	clk := newFakeClock()
	var transitions []State
	cfg := testBreakerConfig(clk)
	cfg.OnTransition = func(ap int, from, to State, kind FailureKind) {
		transitions = append(transitions, to)
	}
	b := NewBreakerSet(nil, cfg)
	for i := 0; i < 3; i++ {
		b.Failure(4, FailUnhealthy)
	}
	if b.Allow(4) {
		t.Fatal("open breaker must quarantine")
	}

	// Cooldown not yet elapsed: still quarantined.
	clk.Advance(4 * time.Second)
	if b.Allow(4) {
		t.Fatal("cooldown not elapsed")
	}
	// Cooldown elapsed: readmitted on probation.
	clk.Advance(2 * time.Second)
	if !b.Allow(4) || b.State(4) != StateHalfOpen {
		t.Fatalf("want half-open probation, state=%v", b.State(4))
	}

	// Probes: a mid-band score is neutral, two healthy ones close.
	b.ObserveScore(4, 0.3)
	if b.State(4) != StateHalfOpen {
		t.Fatal("neutral score must not change probation")
	}
	b.ObserveScore(4, 0.8)
	b.ObserveScore(4, 0.9)
	if b.State(4) != StateClosed {
		t.Fatalf("2 healthy probes must close, state=%v", b.State(4))
	}
	want := []State{StateOpen, StateHalfOpen, StateClosed}
	if len(transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transitions = %v, want %v", transitions, want)
		}
	}
}

func TestBreakerReopenDoublesCooldown(t *testing.T) {
	clk := newFakeClock()
	b := NewBreakerSet(nil, testBreakerConfig(clk))
	for i := 0; i < 3; i++ {
		b.Failure(2, FailNonFinite)
	}
	clk.Advance(5 * time.Second)
	if b.State(2) != StateHalfOpen {
		t.Fatal("want probation after cooldown")
	}
	// A bad probe reopens with a doubled (10 s) cooldown.
	b.ObserveScore(2, 0.05)
	if b.State(2) != StateOpen {
		t.Fatal("unhealthy probe must reopen")
	}
	clk.Advance(6 * time.Second)
	if b.State(2) != StateOpen {
		t.Fatal("reopened breaker must wait the doubled cooldown")
	}
	clk.Advance(5 * time.Second)
	if b.State(2) != StateHalfOpen {
		t.Fatal("want probation after the doubled cooldown")
	}
	// Closing resets the backoff to the configured cooldown.
	b.ObserveScore(2, 0.9)
	b.ObserveScore(2, 0.9)
	if b.State(2) != StateClosed {
		t.Fatal("want closed after probes")
	}
}

func TestBreakerDriftIgnoredDuringProbation(t *testing.T) {
	clk := newFakeClock()
	b := NewBreakerSet(nil, testBreakerConfig(clk))
	for i := 0; i < 3; i++ {
		b.Failure(5, FailUnhealthy)
	}
	clk.Advance(5 * time.Second)
	if b.State(5) != StateHalfOpen {
		t.Fatal("want probation")
	}
	// Drift baselines are stale after quarantine — breaches during
	// probation must not reopen.
	b.Failure(5, FailDrift)
	if b.State(5) != StateHalfOpen {
		t.Fatal("drift breach during probation must be ignored")
	}
	// A hard failure still reopens immediately.
	b.Failure(5, FailNonFinite)
	if b.State(5) != StateOpen {
		t.Fatal("hard failure during probation must reopen")
	}
}

func TestBreakerReconnectChurn(t *testing.T) {
	clk := newFakeClock()
	b := NewBreakerSet(nil, testBreakerConfig(clk))
	b.APConnected(3) // first connect: normal startup
	if b.State(3) != StateClosed {
		t.Fatal("first connect must not count as churn")
	}
	b.APConnected(3)
	b.APConnected(3)
	if b.State(3) != StateClosed {
		t.Fatal("2 reconnects of 3 must not trip")
	}
	b.APConnected(3)
	if b.State(3) != StateOpen {
		t.Fatal("reconnect churn must trip the breaker")
	}
}

func TestBreakerNilReceiver(t *testing.T) {
	var b *BreakerSet
	if !b.Allow(1) {
		t.Fatal("nil set must allow")
	}
	b.Failure(1, FailNonFinite)
	b.ObserveScore(1, 0.1)
	b.APConnected(1)
	b.NonFiniteCSI(1)
	if b.State(1) != StateClosed {
		t.Fatal("nil set must read closed")
	}
	if b.Snapshot() != nil {
		t.Fatal("nil set snapshot must be nil")
	}
}

func TestBreakerSnapshot(t *testing.T) {
	clk := newFakeClock()
	b := NewBreakerSet(nil, testBreakerConfig(clk))
	b.APConnected(9)
	for i := 0; i < 3; i++ {
		b.Failure(1, FailNonFinite)
	}
	snap := b.Snapshot()
	if len(snap) != 2 || snap[0].AP != 1 || snap[1].AP != 9 {
		t.Fatalf("snapshot = %+v, want APs [1 9]", snap)
	}
	if snap[0].State != "open" || snap[0].Trips != 1 {
		t.Fatalf("AP 1 = %+v, want open with 1 trip", snap[0])
	}
	if snap[1].State != "closed" {
		t.Fatalf("AP 9 = %+v, want closed", snap[1])
	}
}
