package admit

import (
	"testing"
	"time"
)

func TestLadderStepsDownAndRecovers(t *testing.T) {
	cfg := DefaultLadderConfig(100 * time.Millisecond)
	cfg.HoldGood = 3
	var changes [][2]Mode
	cfg.OnChange = func(from, to Mode) { changes = append(changes, [2]Mode{from, to}) }
	l := NewLadder(nil, cfg)

	if got := l.Observe(50 * time.Millisecond); got != ModeFull {
		t.Fatalf("healthy sojourn → %v, want full", got)
	}
	// 200 ms ≥ 2× target: degrade one rung.
	if got := l.Observe(200 * time.Millisecond); got != ModeFastPath {
		t.Fatalf("2×target sojourn → %v, want fastpath", got)
	}
	// Still heavy but below the next threshold (600 ms): hold.
	if got := l.Observe(400 * time.Millisecond); got != ModeFastPath {
		t.Fatalf("mid sojourn → %v, want fastpath held", got)
	}
	// 600 ms ≥ 6× target: bottom rung.
	if got := l.Observe(700 * time.Millisecond); got != ModeCoarse {
		t.Fatalf("6×target sojourn → %v, want coarse", got)
	}
	// Further overload has nowhere to go.
	if got := l.Observe(5 * time.Second); got != ModeCoarse {
		t.Fatalf("deep overload → %v, want coarse (MaxMode)", got)
	}

	// Recovery needs HoldGood consecutive good sojourns; a heavy one in
	// between resets the streak.
	l.Observe(10 * time.Millisecond)
	l.Observe(10 * time.Millisecond)
	l.Observe(200 * time.Millisecond) // resets the streak (neutral zone)
	l.Observe(10 * time.Millisecond)
	l.Observe(10 * time.Millisecond)
	if got := l.Observe(10 * time.Millisecond); got != ModeFastPath {
		t.Fatalf("3 consecutive good → %v, want one rung up", got)
	}
	l.Observe(10 * time.Millisecond)
	l.Observe(10 * time.Millisecond)
	if got := l.Observe(10 * time.Millisecond); got != ModeFull {
		t.Fatalf("3 more good → %v, want full", got)
	}

	want := [][2]Mode{
		{ModeFull, ModeFastPath},
		{ModeFastPath, ModeCoarse},
		{ModeCoarse, ModeFastPath},
		{ModeFastPath, ModeFull},
	}
	if len(changes) != len(want) {
		t.Fatalf("changes = %v, want %v", changes, want)
	}
	for i := range want {
		if changes[i] != want[i] {
			t.Fatalf("changes = %v, want %v", changes, want)
		}
	}
}

func TestLadderMaxModeBoundsDegradation(t *testing.T) {
	cfg := DefaultLadderConfig(100 * time.Millisecond)
	cfg.MaxMode = ModeFastPath
	l := NewLadder(nil, cfg)
	l.Observe(time.Second)
	if got := l.Observe(time.Second); got != ModeFastPath {
		t.Fatalf("mode = %v, want capped at fastpath", got)
	}
}

func TestModeStrings(t *testing.T) {
	for m, want := range map[Mode]string{ModeFull: "full", ModeFastPath: "fastpath", ModeCoarse: "coarse"} {
		if m.String() != want {
			t.Fatalf("Mode(%d).String() = %q, want %q", m, m.String(), want)
		}
	}
}
