package admit

import (
	"log/slog"
	"sync"
	"time"
)

// ShedLogger rate-limits overload logging: instead of one Warn per shed
// burst (a logging DoS at exactly the moment the server is drowning), it
// emits at most one summary record per interval with per-reason counts.
// The first shed after a quiet interval logs immediately, so operators
// still get a prompt signal.
type ShedLogger struct {
	log      *slog.Logger
	interval time.Duration
	now      func() time.Time

	mu       sync.Mutex
	counts   map[ShedReason]uint64
	total    uint64
	lastEmit time.Time
}

// NewShedLogger returns a ShedLogger emitting on logger at most once per
// interval (default 5 s). now overrides the clock for tests; nil means
// time.Now.
func NewShedLogger(logger *slog.Logger, interval time.Duration, now func() time.Time) *ShedLogger {
	if logger == nil {
		logger = slog.Default()
	}
	if interval <= 0 {
		interval = 5 * time.Second
	}
	if now == nil {
		now = time.Now
	}
	return &ShedLogger{
		log:      logger,
		interval: interval,
		now:      now,
		counts:   make(map[ShedReason]uint64),
	}
}

// Note records one shed and emits the pending summary when the interval
// has elapsed since the last emission.
func (s *ShedLogger) Note(reason ShedReason) {
	s.mu.Lock()
	s.counts[reason]++
	s.total++
	rec, ok := s.flushLocked(false)
	s.mu.Unlock()
	if ok {
		s.emit(rec)
	}
}

// Flush emits any pending summary immediately — call it on shutdown so
// the tail of an overload episode is not lost.
func (s *ShedLogger) Flush() {
	s.mu.Lock()
	rec, ok := s.flushLocked(true)
	s.mu.Unlock()
	if ok {
		s.emit(rec)
	}
}

// shedSummary is one drained summary, emitted outside the lock.
type shedSummary struct {
	total  uint64
	counts map[ShedReason]uint64
	window time.Duration
}

// flushLocked drains the pending counts when due (or forced), resetting
// the interval clock.
func (s *ShedLogger) flushLocked(force bool) (shedSummary, bool) {
	if s.total == 0 {
		return shedSummary{}, false
	}
	now := s.now()
	if !force && !s.lastEmit.IsZero() && now.Sub(s.lastEmit) < s.interval {
		return shedSummary{}, false
	}
	rec := shedSummary{total: s.total, counts: s.counts, window: s.interval}
	s.counts = make(map[ShedReason]uint64)
	s.total = 0
	s.lastEmit = now
	return rec, true
}

func (s *ShedLogger) emit(rec shedSummary) {
	s.log.Warn("overload: bursts shed",
		"total", rec.total,
		"full", rec.counts[ShedFull],
		"stale", rec.counts[ShedStale],
		"codel", rec.counts[ShedCoDel],
		"drain", rec.counts[ShedDrain],
		"interval", rec.window)
}
