package admit

import "math"

// codel is the CoDel control law (Nichols & Jacobson, CACM 2012) applied
// to burst sojourn times, plus a hard freshness deadline. All state is in
// nanoseconds so the decision sits on the per-burst hot path without
// touching time.Time.
//
// The law: while every delivered item's sojourn stays below target the
// queue is healthy. Once sojourn stays above target for a full interval,
// enter the dropping state and shed one item; subsequent sheds come at
// interval/√count spacing, so the shed rate ramps up until sojourn dips
// back under target, which resets the controller.
type codel struct {
	targetNs   int64
	intervalNs int64
	deadlineNs int64

	firstAboveNs int64 // when sojourn first exceeded target (0 = not above)
	dropping     bool
	dropNextNs   int64 // next scheduled shed while dropping
	dropCount    int   // sheds this dropping episode
}

// decide returns the admission decision for an item popped at nowNs after
// waiting sojournNs. It runs under the queue lock on every delivered
// burst, so it must stay allocation-free.
//
//spotfi:noalloc
func (c *codel) decide(nowNs, sojournNs int64) (bool, ShedReason) {
	if sojournNs >= c.deadlineNs {
		// Hard freshness budget blown: shed regardless of controller
		// state, but keep feeding the above-target tracker so the control
		// law still engages against the backlog behind this item.
		if c.firstAboveNs == 0 {
			c.firstAboveNs = nowNs
		}
		return true, ShedStale
	}
	if sojournNs < c.targetNs {
		c.firstAboveNs = 0
		c.dropping = false
		c.dropCount = 0
		return false, ""
	}
	if c.firstAboveNs == 0 {
		c.firstAboveNs = nowNs
		return false, ""
	}
	if !c.dropping {
		if nowNs-c.firstAboveNs >= c.intervalNs {
			c.dropping = true
			c.dropCount = 1
			c.dropNextNs = nowNs + controlInterval(c.intervalNs, 1)
			return true, ShedCoDel
		}
		return false, ""
	}
	if nowNs >= c.dropNextNs {
		c.dropCount++
		c.dropNextNs = nowNs + controlInterval(c.intervalNs, c.dropCount)
		return true, ShedCoDel
	}
	return false, ""
}

// controlInterval is CoDel's shed spacing: interval/√count, so sustained
// overload sheds at a gently increasing rate instead of a cliff.
//
//spotfi:noalloc
func controlInterval(intervalNs int64, count int) int64 {
	return int64(float64(intervalNs) / math.Sqrt(float64(count)))
}
