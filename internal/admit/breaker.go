package admit

import (
	"math"
	"sort"
	"strconv"
	"sync"
	"time"

	"spotfi/internal/obs"
)

// State is a circuit breaker's position.
type State int

const (
	// StateClosed: the AP is healthy and participates in localization.
	StateClosed State = iota
	// StateOpen: the AP is quarantined — its packets are accepted (the
	// connection stays up) but excluded from bursts until the cooldown
	// elapses.
	StateOpen
	// StateHalfOpen: the cooldown elapsed and the AP is readmitted on
	// probation; a few healthy bursts close the breaker, renewed trouble
	// reopens it with a longer cooldown.
	StateHalfOpen
)

// String returns the conventional lowercase name.
func (s State) String() string {
	switch s {
	case StateClosed:
		return "closed"
	case StateOpen:
		return "open"
	case StateHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// gaugeValue is the exported encoding of a state: 0 closed, 1 open,
// 2 half-open — "is it quarantined" reads as value ≥ 1.
func (s State) gaugeValue() float64 { return float64(s) }

// FailureKind labels what went wrong, for transition logs.
type FailureKind string

const (
	// FailNonFinite: the AP streamed non-finite CSI (buggy NIC/driver).
	FailNonFinite FailureKind = "nonfinite"
	// FailReconnect: the AP's connection churned (re-handshake).
	FailReconnect FailureKind = "reconnect"
	// FailDrift: the quality monitor's drift detector breached baselines
	// for this AP.
	FailDrift FailureKind = "drift"
	// FailUnhealthy: the AP's per-burst quality score fell below
	// UnhealthyBelow.
	FailUnhealthy FailureKind = "unhealthy"
)

// BreakerConfig configures a BreakerSet. Zero fields select defaults.
type BreakerConfig struct {
	// Window is how recent failures must be to count toward a trip
	// (default 30 s).
	Window time.Duration
	// Failures is how many failures within Window trip the breaker open
	// (default 8).
	Failures int
	// Cooldown is how long an open breaker waits before readmitting the
	// AP on probation (default 15 s). A reopen doubles the wait, capped at
	// MaxCooldown; closing resets it.
	Cooldown time.Duration
	// MaxCooldown caps the exponential backoff (default 8×Cooldown).
	MaxCooldown time.Duration
	// Probes is how many healthy probation bursts close a half-open
	// breaker (default 3).
	Probes int
	// UnhealthyBelow: a per-burst AP quality score below this counts as a
	// failure (default 0.2).
	UnhealthyBelow float64
	// HealthyAbove: a probation score at or above this counts toward
	// Probes (default 0.5). Scores in between are neutral (hysteresis).
	HealthyAbove float64
	// Now overrides the clock (tests). Nil means time.Now.
	Now func() time.Time
	// OnTransition, when non-nil, observes every state change. Called
	// outside the set lock; must not call back into the BreakerSet.
	OnTransition func(ap int, from, to State, kind FailureKind)
}

func (c *BreakerConfig) fill() {
	if c.Window <= 0 {
		c.Window = 30 * time.Second
	}
	if c.Failures <= 0 {
		c.Failures = 8
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 15 * time.Second
	}
	if c.MaxCooldown <= 0 {
		c.MaxCooldown = 8 * c.Cooldown
	}
	if c.Probes <= 0 {
		c.Probes = 3
	}
	if c.UnhealthyBelow <= 0 {
		c.UnhealthyBelow = 0.2
	}
	if c.HealthyAbove <= 0 {
		c.HealthyAbove = 0.5
	}
	if c.HealthyAbove < c.UnhealthyBelow {
		c.HealthyAbove = c.UnhealthyBelow
	}
	if c.Now == nil {
		c.Now = time.Now
	}
}

// failWindow is a fixed ring of the most recent failure timestamps; the
// breaker trips when the ring fills within the failure window.
type failWindow struct {
	ts []int64 // unix nanos, len = trip threshold
	n  int     // recorded failures, saturating at len(ts)
	i  int     // next write slot
}

// add records a failure at nowNs and reports whether the last len(ts)
// failures all landed within windowNs — the trip condition. It runs on
// the per-packet ingest path for non-finite CSI, so it must stay
// allocation-free.
//
//spotfi:noalloc
func (w *failWindow) add(nowNs, windowNs int64) bool {
	w.ts[w.i] = nowNs
	w.i++
	if w.i == len(w.ts) {
		w.i = 0
	}
	if w.n < len(w.ts) {
		w.n++
		if w.n < len(w.ts) {
			return false
		}
	}
	// The next write slot holds the oldest of the last len(ts) failures.
	return nowNs-w.ts[w.i] <= windowNs
}

// reset forgets all recorded failures.
func (w *failWindow) reset() { w.n, w.i = 0, 0 }

// breaker is one AP's state machine.
type breaker struct {
	state     State
	fails     failWindow
	openedAt  time.Time
	cooldown  time.Duration
	successes int // healthy probation bursts so far
	trips     uint64
	connected bool // first APConnected is normal, not churn
}

// APBreaker is one AP's row in a Snapshot.
type APBreaker struct {
	AP    int    `json:"ap"`
	State string `json:"state"`
	Trips uint64 `json:"trips"`
}

// BreakerSet holds one circuit breaker per AP, created lazily on the
// first event. It implements the server's AP event sink and is safe for
// concurrent use. Nil-receiver methods no-op (Allow returns true), so an
// unwired deployment behaves exactly as before.
type BreakerSet struct {
	cfg BreakerConfig
	reg *obs.Registry

	mu  sync.Mutex
	aps map[int]*breaker
}

// NewBreakerSet returns a BreakerSet registering per-AP state gauges
// (spotfi_ap_breaker_state) on reg; reg may be nil.
func NewBreakerSet(reg *obs.Registry, cfg BreakerConfig) *BreakerSet {
	cfg.fill()
	return &BreakerSet{cfg: cfg, reg: reg, aps: make(map[int]*breaker)}
}

// forLocked get-or-creates ap's breaker. The caller registers the state
// gauge after releasing the lock when fresh is true (the gauge closure
// re-enters the set lock at scrape time).
func (b *BreakerSet) forLocked(ap int) (br *breaker, fresh bool) {
	br, ok := b.aps[ap]
	if !ok {
		br = &breaker{fails: failWindow{ts: make([]int64, b.cfg.Failures)}, cooldown: b.cfg.Cooldown}
		b.aps[ap] = br
		fresh = true
	}
	return br, fresh
}

// registerGauge exports ap's breaker state. Called outside b.mu.
func (b *BreakerSet) registerGauge(ap int) {
	if b.reg == nil {
		return
	}
	b.reg.GaugeFunc("spotfi_ap_breaker_state",
		"Per-AP circuit breaker state: 0 closed, 1 open (quarantined), 2 half-open (probation).",
		obs.Labels{"ap": strconv.Itoa(ap)},
		func() float64 { return b.State(ap).gaugeValue() })
}

// maybeHalfOpenLocked moves an open breaker to half-open once its
// cooldown has elapsed — the lazy transition: probation starts when the
// next packet asks.
func (b *BreakerSet) maybeHalfOpenLocked(br *breaker, now time.Time) (transitioned bool) {
	if br.state == StateOpen && now.Sub(br.openedAt) >= br.cooldown {
		br.state = StateHalfOpen
		br.successes = 0
		return true
	}
	return false
}

// Allow reports whether ap may participate in localization — the
// collector's quarantine predicate. An open breaker whose cooldown has
// elapsed transitions to half-open here, readmitting the AP as its own
// probe. Safe on a nil receiver (always true).
func (b *BreakerSet) Allow(ap int) bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	br, ok := b.aps[ap]
	if !ok {
		b.mu.Unlock()
		return true
	}
	now := b.cfg.Now()
	probing := b.maybeHalfOpenLocked(br, now)
	allowed := br.state != StateOpen
	b.mu.Unlock()
	if probing {
		b.transition(ap, StateOpen, StateHalfOpen, "")
	}
	return allowed
}

// State returns ap's current breaker state (applying any due cooldown
// transition). Safe on a nil receiver (closed).
func (b *BreakerSet) State(ap int) State {
	if b == nil {
		return StateClosed
	}
	b.mu.Lock()
	br, ok := b.aps[ap]
	if !ok {
		b.mu.Unlock()
		return StateClosed
	}
	probing := b.maybeHalfOpenLocked(br, b.cfg.Now())
	st := br.state
	b.mu.Unlock()
	if probing {
		b.transition(ap, StateOpen, StateHalfOpen, "")
	}
	return st
}

// Failure records a failure event for ap. In the closed state enough
// failures within the window trip the breaker; in half-open a hard
// failure (non-finite CSI, reconnect churn) reopens immediately. Drift
// breaches are ignored during probation: the drift baselines themselves
// go stale while an AP sits quarantined, so they breach spuriously as it
// re-learns — probation is judged on probe scores instead. Safe on a nil
// receiver.
func (b *BreakerSet) Failure(ap int, kind FailureKind) {
	if b == nil {
		return
	}
	b.mu.Lock()
	br, fresh := b.forLocked(ap)
	now := b.cfg.Now()
	probing := b.maybeHalfOpenLocked(br, now)
	var from, to State
	fired := false
	switch br.state {
	case StateClosed:
		if br.fails.add(now.UnixNano(), b.cfg.Window.Nanoseconds()) {
			from, to = br.state, StateOpen
			fired = true
			b.openLocked(br, now)
		}
	case StateHalfOpen:
		if kind != FailDrift {
			br.cooldown = minDuration(2*br.cooldown, b.cfg.MaxCooldown)
			from, to = br.state, StateOpen
			fired = true
			b.openLocked(br, now)
		}
	case StateOpen:
		// Already quarantined; nothing to escalate.
	}
	b.mu.Unlock()
	if fresh {
		b.registerGauge(ap)
	}
	if probing {
		b.transition(ap, StateOpen, StateHalfOpen, "")
	}
	if fired {
		b.transition(ap, from, to, kind)
	}
}

// openLocked trips br at now.
func (b *BreakerSet) openLocked(br *breaker, now time.Time) {
	br.state = StateOpen
	br.openedAt = now
	br.successes = 0
	br.trips++
	br.fails.reset()
}

// ObserveScore feeds one per-burst quality score for ap. Closed: a score
// below UnhealthyBelow counts as a failure. Half-open: a score at or
// above HealthyAbove is a successful probe (Probes of them close the
// breaker and reset the cooldown backoff); below UnhealthyBelow reopens.
// Non-finite scores are ignored. Safe on a nil receiver.
func (b *BreakerSet) ObserveScore(ap int, score float64) {
	if b == nil || math.IsNaN(score) || math.IsInf(score, 0) {
		return
	}
	if score < b.cfg.UnhealthyBelow {
		b.Failure(ap, FailUnhealthy)
		return
	}
	b.mu.Lock()
	br, ok := b.aps[ap]
	if !ok {
		b.mu.Unlock()
		return
	}
	probing := b.maybeHalfOpenLocked(br, b.cfg.Now())
	closedNow := false
	if br.state == StateHalfOpen && score >= b.cfg.HealthyAbove {
		br.successes++
		if br.successes >= b.cfg.Probes {
			br.state = StateClosed
			br.cooldown = b.cfg.Cooldown
			br.fails.reset()
			closedNow = true
		}
	}
	b.mu.Unlock()
	if probing {
		b.transition(ap, StateOpen, StateHalfOpen, "")
	}
	if closedNow {
		b.transition(ap, StateHalfOpen, StateClosed, "")
	}
}

// APConnected implements the server event sink: the first connection of
// an AP is normal startup; every subsequent one is churn and counts as a
// failure. Safe on a nil receiver.
func (b *BreakerSet) APConnected(ap int) {
	if b == nil {
		return
	}
	b.mu.Lock()
	br, fresh := b.forLocked(ap)
	first := !br.connected
	br.connected = true
	b.mu.Unlock()
	if fresh {
		b.registerGauge(ap)
	}
	if !first {
		b.Failure(ap, FailReconnect)
	}
}

// NonFiniteCSI implements the server event sink: the AP streamed a
// non-finite CSI report. Safe on a nil receiver.
func (b *BreakerSet) NonFiniteCSI(ap int) { b.Failure(ap, FailNonFinite) }

// Snapshot returns every tracked AP's breaker state, sorted by AP ID.
func (b *BreakerSet) Snapshot() []APBreaker {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	now := b.cfg.Now()
	out := make([]APBreaker, 0, len(b.aps))
	for ap, br := range b.aps {
		b.maybeHalfOpenLocked(br, now)
		out = append(out, APBreaker{AP: ap, State: br.state.String(), Trips: br.trips})
	}
	b.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].AP < out[j].AP })
	return out
}

// transition invokes the configured observer.
func (b *BreakerSet) transition(ap int, from, to State, kind FailureKind) {
	if b.cfg.OnTransition != nil {
		b.cfg.OnTransition(ap, from, to, kind)
	}
}

func minDuration(a, b time.Duration) time.Duration {
	if a < b {
		return a
	}
	return b
}
