// Package cluster implements the Gaussian-means clustering SpotFi applies
// to per-packet (AoA, ToF) estimates (Sec. 3.2.3): k-means++ seeding,
// Lloyd iterations with hard Gaussian (nearest-mean) assignment, and the
// per-cluster statistics — mean, population variance, and population count
// — that feed the direct-path likelihood metric of Eq. 8.
package cluster

import (
	"fmt"
	"math"
	"math/rand"
)

// Point is a sample in the normalized 2-D (AoA, ToF) feature space.
type Point struct {
	X, Y float64
}

func sqDist(a, b Point) float64 {
	dx, dy := a.X-b.X, a.Y-b.Y
	return dx*dx + dy*dy
}

// Cluster is one recovered cluster with the statistics Eq. 8 consumes.
type Cluster struct {
	// Mean is the cluster centroid — the estimate of the underlying
	// path's (AoA, ToF).
	Mean Point
	// VarX and VarY are the population variances of each coordinate over
	// cluster members.
	VarX, VarY float64
	// Members are indices into the input point slice.
	Members []int
}

// Count returns the number of points in the cluster.
func (c *Cluster) Count() int { return len(c.Members) }

// Config controls the clustering run.
type Config struct {
	// K is the target number of clusters. The paper uses 5 — "typically
	// we see at best five significant paths in an indoor environment".
	K int
	// MaxIters bounds Lloyd iterations per restart.
	MaxIters int
	// Restarts reruns seeding+Lloyd and keeps the lowest-distortion run.
	Restarts int
}

// DefaultConfig returns the paper's configuration.
func DefaultConfig() Config {
	return Config{K: 5, MaxIters: 50, Restarts: 4}
}

// KMeans clusters pts into at most cfg.K clusters. If there are fewer
// points than clusters, each point becomes its own cluster. Empty clusters
// are dropped from the result. rng drives seeding; pass a deterministic
// source for reproducible runs.
func KMeans(pts []Point, cfg Config, rng *rand.Rand) ([]Cluster, error) {
	if cfg.K < 1 {
		return nil, fmt.Errorf("cluster: K must be ≥ 1, got %d", cfg.K)
	}
	if cfg.MaxIters < 1 {
		return nil, fmt.Errorf("cluster: MaxIters must be ≥ 1")
	}
	if cfg.Restarts < 1 {
		cfg.Restarts = 1
	}
	if len(pts) == 0 {
		return nil, fmt.Errorf("cluster: no points")
	}
	for _, p := range pts {
		if math.IsNaN(p.X) || math.IsNaN(p.Y) || math.IsInf(p.X, 0) || math.IsInf(p.Y, 0) {
			return nil, fmt.Errorf("cluster: non-finite point")
		}
	}
	k := cfg.K
	if k > len(pts) {
		k = len(pts)
	}

	best := []int(nil)
	bestCost := math.Inf(1)
	for r := 0; r < cfg.Restarts; r++ {
		assign, cost := lloyd(pts, k, cfg.MaxIters, rng)
		if cost < bestCost {
			bestCost = cost
			best = assign
		}
	}
	return buildClusters(pts, best, k), nil
}

// lloyd runs one seeded k-means pass and returns assignments and total
// distortion.
func lloyd(pts []Point, k, maxIters int, rng *rand.Rand) ([]int, float64) {
	centers := seedPlusPlus(pts, k, rng)
	assign := make([]int, len(pts))
	for iter := 0; iter < maxIters; iter++ {
		changed := false
		for i, p := range pts {
			bestC, bestD := 0, math.Inf(1)
			for c, ctr := range centers {
				if d := sqDist(p, ctr); d < bestD {
					bestC, bestD = c, d
				}
			}
			if assign[i] != bestC {
				assign[i] = bestC
				changed = true
			}
		}
		// Recompute centers.
		sums := make([]Point, k)
		counts := make([]int, k)
		for i, p := range pts {
			c := assign[i]
			sums[c].X += p.X
			sums[c].Y += p.Y
			counts[c]++
		}
		for c := range centers {
			if counts[c] == 0 {
				// Re-seed an empty cluster at the point farthest from its
				// center to avoid losing a cluster slot.
				far, farD := 0, -1.0
				for i, p := range pts {
					if d := sqDist(p, centers[assign[i]]); d > farD {
						far, farD = i, d
					}
				}
				centers[c] = pts[far]
				changed = true
				continue
			}
			centers[c] = Point{sums[c].X / float64(counts[c]), sums[c].Y / float64(counts[c])}
		}
		if !changed && iter > 0 {
			break
		}
	}
	var cost float64
	for i, p := range pts {
		cost += sqDist(p, centers[assign[i]])
	}
	return assign, cost
}

// seedPlusPlus picks k initial centers with the k-means++ distribution.
func seedPlusPlus(pts []Point, k int, rng *rand.Rand) []Point {
	centers := make([]Point, 0, k)
	centers = append(centers, pts[rng.Intn(len(pts))])
	d2 := make([]float64, len(pts))
	for len(centers) < k {
		var total float64
		for i, p := range pts {
			best := math.Inf(1)
			for _, c := range centers {
				if d := sqDist(p, c); d < best {
					best = d
				}
			}
			d2[i] = best
			total += best
		}
		if total == 0 {
			// All remaining points coincide with centers; duplicate one.
			centers = append(centers, pts[rng.Intn(len(pts))])
			continue
		}
		target := rng.Float64() * total
		idx := 0
		for i, w := range d2 {
			target -= w
			if target <= 0 {
				idx = i
				break
			}
		}
		centers = append(centers, pts[idx])
	}
	return centers
}

func buildClusters(pts []Point, assign []int, k int) []Cluster {
	byC := make([][]int, k)
	for i, c := range assign {
		byC[c] = append(byC[c], i)
	}
	var out []Cluster
	for _, members := range byC {
		if len(members) == 0 {
			continue
		}
		var cl Cluster
		cl.Members = members
		for _, i := range members {
			cl.Mean.X += pts[i].X
			cl.Mean.Y += pts[i].Y
		}
		n := float64(len(members))
		cl.Mean.X /= n
		cl.Mean.Y /= n
		for _, i := range members {
			dx := pts[i].X - cl.Mean.X
			dy := pts[i].Y - cl.Mean.Y
			cl.VarX += dx * dx
			cl.VarY += dy * dy
		}
		cl.VarX /= n
		cl.VarY /= n
		out = append(out, cl)
	}
	return out
}

// Normalization rescales two feature slices into a common [0,1] range, the
// preprocessing Fig. 5c applies before clustering so AoA (radians) and ToF
// (seconds) distances are commensurate.
type Normalization struct {
	MinX, ScaleX float64
	MinY, ScaleY float64
}

// Normalize maps raw (x, y) samples to [0,1]² and returns the mapping so
// cluster means can be converted back. Degenerate (constant) axes map to
// 0.5.
func Normalize(xs, ys []float64) ([]Point, Normalization, error) {
	if len(xs) != len(ys) || len(xs) == 0 {
		return nil, Normalization{}, fmt.Errorf("cluster: Normalize needs equal-length non-empty inputs")
	}
	minX, maxX := xs[0], xs[0]
	minY, maxY := ys[0], ys[0]
	for i := range xs {
		minX = math.Min(minX, xs[i])
		maxX = math.Max(maxX, xs[i])
		minY = math.Min(minY, ys[i])
		maxY = math.Max(maxY, ys[i])
	}
	norm := Normalization{MinX: minX, ScaleX: maxX - minX, MinY: minY, ScaleY: maxY - minY}
	pts := make([]Point, len(xs))
	for i := range xs {
		pts[i] = Point{norm.forwardX(xs[i]), norm.forwardY(ys[i])}
	}
	return pts, norm, nil
}

func (n Normalization) forwardX(x float64) float64 {
	if n.ScaleX == 0 {
		return 0.5
	}
	return (x - n.MinX) / n.ScaleX
}

func (n Normalization) forwardY(y float64) float64 {
	if n.ScaleY == 0 {
		return 0.5
	}
	return (y - n.MinY) / n.ScaleY
}

// DenormX maps a normalized X back to raw units.
func (n Normalization) DenormX(x float64) float64 {
	if n.ScaleX == 0 {
		return n.MinX
	}
	return n.MinX + x*n.ScaleX
}

// DenormY maps a normalized Y back to raw units.
func (n Normalization) DenormY(y float64) float64 {
	if n.ScaleY == 0 {
		return n.MinY
	}
	return n.MinY + y*n.ScaleY
}

// Silhouette returns the mean silhouette coefficient of a clustering over
// pts: for each point, (b−a)/max(a,b) where a is its mean distance to its
// own cluster and b the smallest mean distance to another cluster. Values
// near 1 mean tight, well-separated clusters. Singleton clusters
// contribute 0.
func Silhouette(pts []Point, clusters []Cluster) float64 {
	if len(clusters) < 2 {
		return 0
	}
	var total float64
	var count int
	for ci, cl := range clusters {
		for _, i := range cl.Members {
			if len(cl.Members) < 2 {
				count++
				continue // singleton: silhouette defined as 0
			}
			var a float64
			for _, j := range cl.Members {
				if i != j {
					a += dist(pts[i], pts[j])
				}
			}
			a /= float64(len(cl.Members) - 1)
			b := math.Inf(1)
			for cj, other := range clusters {
				if cj == ci || len(other.Members) == 0 {
					continue
				}
				var d float64
				for _, j := range other.Members {
					d += dist(pts[i], pts[j])
				}
				d /= float64(len(other.Members))
				if d < b {
					b = d
				}
			}
			if m := math.Max(a, b); m > 0 {
				total += (b - a) / m
			}
			count++
		}
	}
	if count == 0 {
		return 0
	}
	return total / float64(count)
}

func dist(a, b Point) float64 {
	return math.Hypot(a.X-b.X, a.Y-b.Y)
}

// KMeansAuto clusters pts trying every K in [minK, maxK] and returns the
// clustering with the highest silhouette score (ties break toward fewer
// clusters). It inherits cfg's iteration and restart budget.
func KMeansAuto(pts []Point, cfg Config, minK, maxK int, rng *rand.Rand) ([]Cluster, int, error) {
	if minK < 2 || maxK < minK {
		return nil, 0, fmt.Errorf("cluster: auto-K range [%d,%d] invalid (need 2 ≤ min ≤ max)", minK, maxK)
	}
	var best []Cluster
	bestK := 0
	bestScore := math.Inf(-1)
	for k := minK; k <= maxK; k++ {
		c := cfg
		c.K = k
		clusters, err := KMeans(pts, c, rng)
		if err != nil {
			return nil, 0, err
		}
		score := Silhouette(pts, clusters)
		if score > bestScore+1e-12 {
			best, bestK, bestScore = clusters, k, score
		}
	}
	return best, bestK, nil
}
