package cluster

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func gaussianBlob(rng *rand.Rand, cx, cy, sigma float64, n int) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{cx + rng.NormFloat64()*sigma, cy + rng.NormFloat64()*sigma}
	}
	return pts
}

func TestKMeansRecoversSeparatedBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	truth := []Point{{0, 0}, {10, 0}, {0, 10}, {10, 10}, {5, 5}}
	var pts []Point
	for _, c := range truth {
		pts = append(pts, gaussianBlob(rng, c.X, c.Y, 0.3, 40)...)
	}
	clusters, err := KMeans(pts, Config{K: 5, MaxIters: 100, Restarts: 8}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 5 {
		t.Fatalf("got %d clusters, want 5", len(clusters))
	}
	// Each true center has a recovered mean within 0.5.
	for _, want := range truth {
		found := false
		for _, c := range clusters {
			if math.Hypot(c.Mean.X-want.X, c.Mean.Y-want.Y) < 0.5 {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("center %v not recovered; clusters: %+v", want, clusters)
		}
	}
}

func TestKMeansClusterStats(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	// One tight and one loose blob, well separated.
	tight := gaussianBlob(rng, 0, 0, 0.1, 100)
	loose := gaussianBlob(rng, 20, 20, 2.0, 100)
	pts := append(append([]Point{}, tight...), loose...)
	clusters, err := KMeans(pts, Config{K: 2, MaxIters: 100, Restarts: 4}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 2 {
		t.Fatalf("got %d clusters", len(clusters))
	}
	sort.Slice(clusters, func(a, b int) bool { return clusters[a].Mean.X < clusters[b].Mean.X })
	if clusters[0].Count() != 100 || clusters[1].Count() != 100 {
		t.Fatalf("counts %d/%d, want 100/100", clusters[0].Count(), clusters[1].Count())
	}
	// Variance ordering matches construction: the tight cluster's variance
	// is far smaller.
	if clusters[0].VarX > clusters[1].VarX/4 || clusters[0].VarY > clusters[1].VarY/4 {
		t.Fatalf("variance contrast lost: %+v", clusters)
	}
}

func TestKMeansFewerPointsThanK(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	pts := []Point{{0, 0}, {5, 5}, {9, 1}}
	clusters, err := KMeans(pts, Config{K: 5, MaxIters: 10, Restarts: 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 3 {
		t.Fatalf("got %d clusters for 3 points, want 3", len(clusters))
	}
	for _, c := range clusters {
		if c.Count() != 1 || c.VarX != 0 || c.VarY != 0 {
			t.Fatalf("singleton cluster malformed: %+v", c)
		}
	}
}

func TestKMeansAllIdenticalPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	pts := make([]Point, 50)
	for i := range pts {
		pts[i] = Point{3, 4}
	}
	clusters, err := KMeans(pts, Config{K: 5, MaxIters: 10, Restarts: 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	var total int
	for _, c := range clusters {
		total += c.Count()
		if c.Mean != (Point{3, 4}) {
			t.Fatalf("identical-point cluster mean %v", c.Mean)
		}
		if c.VarX != 0 || c.VarY != 0 {
			t.Fatal("identical points should have zero variance")
		}
	}
	if total != 50 {
		t.Fatalf("members total %d, want 50", total)
	}
}

func TestKMeansErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	if _, err := KMeans(nil, DefaultConfig(), rng); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := KMeans([]Point{{1, 1}}, Config{K: 0, MaxIters: 10}, rng); err == nil {
		t.Fatal("K=0 accepted")
	}
	if _, err := KMeans([]Point{{1, 1}}, Config{K: 1, MaxIters: 0}, rng); err == nil {
		t.Fatal("MaxIters=0 accepted")
	}
	if _, err := KMeans([]Point{{math.NaN(), 1}}, DefaultConfig(), rng); err == nil {
		t.Fatal("NaN point accepted")
	}
	if _, err := KMeans([]Point{{math.Inf(1), 1}}, DefaultConfig(), rng); err == nil {
		t.Fatal("Inf point accepted")
	}
}

func TestKMeansMembershipPartition(t *testing.T) {
	cfg := &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(66))}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(100)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{rng.Float64() * 10, rng.Float64() * 10}
		}
		clusters, err := KMeans(pts, Config{K: 1 + rng.Intn(6), MaxIters: 30, Restarts: 2}, rng)
		if err != nil {
			return false
		}
		// Every point appears in exactly one cluster.
		seen := make(map[int]bool)
		for _, c := range clusters {
			for _, m := range c.Members {
				if m < 0 || m >= n || seen[m] {
					return false
				}
				seen[m] = true
			}
		}
		return len(seen) == n
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestKMeansMeanIsCentroid(t *testing.T) {
	cfg := &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(67))}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(50)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{rng.NormFloat64(), rng.NormFloat64()}
		}
		clusters, err := KMeans(pts, Config{K: 3, MaxIters: 30, Restarts: 2}, rng)
		if err != nil {
			return false
		}
		for _, c := range clusters {
			var sx, sy float64
			for _, m := range c.Members {
				sx += pts[m].X
				sy += pts[m].Y
			}
			k := float64(c.Count())
			if math.Abs(sx/k-c.Mean.X) > 1e-9 || math.Abs(sy/k-c.Mean.Y) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestNormalizeRange(t *testing.T) {
	xs := []float64{-1, 0, 3}
	ys := []float64{10, 20, 30}
	pts, norm, err := Normalize(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.X < 0 || p.X > 1 || p.Y < 0 || p.Y > 1 {
			t.Fatalf("point outside unit square: %v", p)
		}
	}
	if pts[0].X != 0 || pts[2].X != 1 || pts[0].Y != 0 || pts[2].Y != 1 {
		t.Fatalf("extremes not mapped to 0/1: %v", pts)
	}
	// Round trip.
	for i := range xs {
		if math.Abs(norm.DenormX(pts[i].X)-xs[i]) > 1e-12 {
			t.Fatalf("DenormX round trip failed at %d", i)
		}
		if math.Abs(norm.DenormY(pts[i].Y)-ys[i]) > 1e-12 {
			t.Fatalf("DenormY round trip failed at %d", i)
		}
	}
}

func TestNormalizeDegenerateAxis(t *testing.T) {
	pts, norm, err := Normalize([]float64{5, 5, 5}, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.X != 0.5 {
			t.Fatalf("constant axis should map to 0.5, got %v", p.X)
		}
	}
	if norm.DenormX(0.5) != 5 {
		t.Fatalf("degenerate denorm = %v, want 5", norm.DenormX(0.5))
	}
}

func TestNormalizeErrors(t *testing.T) {
	if _, _, err := Normalize(nil, nil); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, _, err := Normalize([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestSilhouetteSeparatedVsMerged(t *testing.T) {
	rng := rand.New(rand.NewSource(68))
	var pts []Point
	for _, c := range []Point{{0, 0}, {10, 0}, {0, 10}} {
		pts = append(pts, gaussianBlob(rng, c.X, c.Y, 0.3, 30)...)
	}
	good, err := KMeans(pts, Config{K: 3, MaxIters: 50, Restarts: 6}, rng)
	if err != nil {
		t.Fatal(err)
	}
	bad, err := KMeans(pts, Config{K: 2, MaxIters: 50, Restarts: 6}, rng)
	if err != nil {
		t.Fatal(err)
	}
	sGood := Silhouette(pts, good)
	sBad := Silhouette(pts, bad)
	if sGood <= sBad {
		t.Fatalf("correct K should score higher: %v vs %v", sGood, sBad)
	}
	if sGood < 0.7 {
		t.Fatalf("well-separated blobs should score near 1, got %v", sGood)
	}
}

func TestSilhouetteDegenerate(t *testing.T) {
	pts := []Point{{0, 0}, {1, 1}}
	one, err := KMeans(pts, Config{K: 1, MaxIters: 5, Restarts: 1}, rand.New(rand.NewSource(69)))
	if err != nil {
		t.Fatal(err)
	}
	if s := Silhouette(pts, one); s != 0 {
		t.Fatalf("single-cluster silhouette = %v, want 0", s)
	}
}

func TestKMeansAutoFindsK(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	var pts []Point
	truth := []Point{{0, 0}, {12, 0}, {0, 12}, {12, 12}}
	for _, c := range truth {
		pts = append(pts, gaussianBlob(rng, c.X, c.Y, 0.4, 40)...)
	}
	clusters, k, err := KMeansAuto(pts, Config{MaxIters: 50, Restarts: 6}, 2, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	if k != 4 {
		t.Fatalf("auto-K picked %d, want 4", k)
	}
	if len(clusters) != 4 {
		t.Fatalf("got %d clusters", len(clusters))
	}
}

func TestKMeansAutoErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	pts := []Point{{0, 0}, {1, 1}, {2, 2}}
	if _, _, err := KMeansAuto(pts, Config{MaxIters: 5, Restarts: 1}, 1, 3, rng); err == nil {
		t.Fatal("minK=1 accepted")
	}
	if _, _, err := KMeansAuto(pts, Config{MaxIters: 5, Restarts: 1}, 4, 2, rng); err == nil {
		t.Fatal("max<min accepted")
	}
}
