// Package geom provides the 2-D geometry SpotFi's simulated testbed is
// built on: points, segments, walls, line-of-sight tests, and image-method
// reflections for synthesizing multipath.
package geom

import (
	"fmt"
	"math"
)

// Point is a location in the 2-D floor plan, in meters.
type Point struct {
	X, Y float64
}

// Add returns p translated by the vector v.
func (p Point) Add(v Vector) Point { return Point{p.X + v.X, p.Y + v.Y} }

// Sub returns the vector from q to p.
func (p Point) Sub(q Point) Vector { return Vector{p.X - q.X, p.Y - q.Y} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

func (p Point) String() string { return fmt.Sprintf("(%.2f, %.2f)", p.X, p.Y) }

// Vector is a displacement in the plane.
type Vector struct {
	X, Y float64
}

// Dot returns the dot product v·w.
func (v Vector) Dot(w Vector) float64 { return v.X*w.X + v.Y*w.Y }

// Cross returns the z component of the cross product v×w.
func (v Vector) Cross(w Vector) float64 { return v.X*w.Y - v.Y*w.X }

// Norm returns the Euclidean length of v.
func (v Vector) Norm() float64 { return math.Hypot(v.X, v.Y) }

// Scale returns s·v.
func (v Vector) Scale(s float64) Vector { return Vector{s * v.X, s * v.Y} }

// Unit returns v normalized to unit length; the zero vector is returned
// unchanged.
func (v Vector) Unit() Vector {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// Angle returns the angle of v in radians, in (−π, π], measured from +X.
func (v Vector) Angle() float64 { return math.Atan2(v.Y, v.X) }

// Segment is a line segment between two points. Walls and corridor edges
// are segments.
type Segment struct {
	A, B Point
}

// Length returns the segment length.
func (s Segment) Length() float64 { return s.A.Dist(s.B) }

// Midpoint returns the segment midpoint.
func (s Segment) Midpoint() Point {
	return Point{(s.A.X + s.B.X) / 2, (s.A.Y + s.B.Y) / 2}
}

const intersectEps = 1e-12

// Intersects reports whether segments s and t share at least one point,
// excluding the degenerate "barely touching at endpoints within eps" cases
// only to the extent floating point allows: a shared endpoint counts as an
// intersection.
func (s Segment) Intersects(t Segment) bool {
	_, ok := s.Intersection(t)
	return ok
}

// Intersection returns the intersection point of two segments and whether
// they properly intersect. Collinear overlapping segments report the first
// overlap endpoint encountered.
func (s Segment) Intersection(t Segment) (Point, bool) {
	r := s.B.Sub(s.A)
	d := t.B.Sub(t.A)
	denom := r.Cross(d)
	qp := t.A.Sub(s.A)
	if math.Abs(denom) < intersectEps {
		// Parallel. Check collinearity and overlap.
		if math.Abs(qp.Cross(r)) > intersectEps {
			return Point{}, false
		}
		rr := r.Dot(r)
		if rr < intersectEps {
			// s is a degenerate point.
			if t.Contains(s.A) {
				return s.A, true
			}
			return Point{}, false
		}
		t0 := qp.Dot(r) / rr
		t1 := t0 + d.Dot(r)/rr
		lo, hi := math.Min(t0, t1), math.Max(t0, t1)
		if hi < -intersectEps || lo > 1+intersectEps {
			return Point{}, false
		}
		u := math.Max(0, lo)
		return s.A.Add(r.Scale(u)), true
	}
	u := qp.Cross(d) / denom
	v := qp.Cross(r) / denom
	if u < -intersectEps || u > 1+intersectEps || v < -intersectEps || v > 1+intersectEps {
		return Point{}, false
	}
	return s.A.Add(r.Scale(u)), true
}

// Contains reports whether point p lies on the segment (within a small
// tolerance).
func (s Segment) Contains(p Point) bool {
	d := s.B.Sub(s.A)
	q := p.Sub(s.A)
	if math.Abs(d.Cross(q)) > 1e-9*(1+d.Norm()) {
		return false
	}
	t := q.Dot(d)
	return t >= -1e-9 && t <= d.Dot(d)+1e-9
}

// Reflect returns the mirror image of point p across the infinite line
// through the segment.
func (s Segment) Reflect(p Point) Point {
	d := s.B.Sub(s.A).Unit()
	v := p.Sub(s.A)
	// Component along the line and perpendicular to it.
	along := d.Scale(v.Dot(d))
	perp := Vector{v.X - along.X, v.Y - along.Y}
	mirrored := Vector{along.X - perp.X, along.Y - perp.Y}
	return s.A.Add(mirrored)
}

// NormalizeAngle wraps an angle into (−π, π]. The wrap is closed-form
// (one Mod plus at most one correction) rather than repeated ±2π
// subtraction, which compounds rounding error and loops O(|a|) times on
// far-out-of-range inputs.
func NormalizeAngle(a float64) float64 {
	a = math.Mod(a, 2*math.Pi) // exact: Mod introduces no rounding error
	if a > math.Pi {
		a -= 2 * math.Pi
	} else if a <= -math.Pi {
		a += 2 * math.Pi
	}
	return a
}

// AngleDiff returns the smallest absolute difference between two angles in
// radians, in [0, π].
func AngleDiff(a, b float64) float64 {
	return math.Abs(NormalizeAngle(a - b))
}

// Deg converts radians to degrees.
func Deg(rad float64) float64 { return rad * 180 / math.Pi }

// Rad converts degrees to radians.
func Rad(deg float64) float64 { return deg * math.Pi / 180 }
