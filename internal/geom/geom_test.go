package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s: got %v, want %v", msg, got, want)
	}
}

func TestPointArithmetic(t *testing.T) {
	p := Point{1, 2}
	q := Point{4, 6}
	approx(t, p.Dist(q), 5, 1e-12, "Dist")
	v := q.Sub(p)
	if v != (Vector{3, 4}) {
		t.Fatalf("Sub = %v", v)
	}
	if p.Add(v) != q {
		t.Fatalf("Add = %v", p.Add(v))
	}
}

func TestVectorOps(t *testing.T) {
	v := Vector{3, 4}
	approx(t, v.Norm(), 5, 1e-12, "Norm")
	approx(t, v.Dot(Vector{1, 0}), 3, 1e-12, "Dot")
	approx(t, v.Cross(Vector{1, 0}), -4, 1e-12, "Cross")
	u := v.Unit()
	approx(t, u.Norm(), 1, 1e-12, "Unit norm")
	z := Vector{0, 0}.Unit()
	if z != (Vector{0, 0}) {
		t.Fatal("Unit of zero vector changed it")
	}
	approx(t, Vector{0, 1}.Angle(), math.Pi/2, 1e-12, "Angle")
}

func TestSegmentIntersectionCrossing(t *testing.T) {
	s := Segment{Point{0, 0}, Point{2, 2}}
	u := Segment{Point{0, 2}, Point{2, 0}}
	p, ok := s.Intersection(u)
	if !ok {
		t.Fatal("crossing segments reported disjoint")
	}
	approx(t, p.X, 1, 1e-12, "X")
	approx(t, p.Y, 1, 1e-12, "Y")
}

func TestSegmentIntersectionDisjoint(t *testing.T) {
	s := Segment{Point{0, 0}, Point{1, 0}}
	u := Segment{Point{0, 1}, Point{1, 1}}
	if s.Intersects(u) {
		t.Fatal("parallel disjoint segments reported intersecting")
	}
	w := Segment{Point{5, 5}, Point{6, 6}}
	if s.Intersects(w) {
		t.Fatal("far-away segments reported intersecting")
	}
}

func TestSegmentIntersectionSharedEndpoint(t *testing.T) {
	s := Segment{Point{0, 0}, Point{1, 1}}
	u := Segment{Point{1, 1}, Point{2, 0}}
	if !s.Intersects(u) {
		t.Fatal("shared endpoint should count as intersection")
	}
}

func TestSegmentIntersectionCollinearOverlap(t *testing.T) {
	s := Segment{Point{0, 0}, Point{2, 0}}
	u := Segment{Point{1, 0}, Point{3, 0}}
	p, ok := s.Intersection(u)
	if !ok {
		t.Fatal("overlapping collinear segments reported disjoint")
	}
	if !s.Contains(p) || !u.Contains(p) {
		t.Fatalf("reported intersection %v not on both segments", p)
	}
	v := Segment{Point{3, 0}, Point{4, 0}}
	if s.Intersects(v) {
		t.Fatal("disjoint collinear segments reported intersecting")
	}
}

func TestSegmentIntersectionNearMiss(t *testing.T) {
	// Segment that would cross the line but stops just short.
	s := Segment{Point{0, 0}, Point{2, 0}}
	u := Segment{Point{1, 1}, Point{1, 0.01}}
	if s.Intersects(u) {
		t.Fatal("near-miss reported as intersection")
	}
}

func TestSegmentContains(t *testing.T) {
	s := Segment{Point{0, 0}, Point{2, 2}}
	if !s.Contains(Point{1, 1}) {
		t.Fatal("midpoint not contained")
	}
	if s.Contains(Point{3, 3}) {
		t.Fatal("point beyond endpoint contained")
	}
	if s.Contains(Point{1, 1.5}) {
		t.Fatal("off-line point contained")
	}
}

func TestSegmentReflectAcrossAxis(t *testing.T) {
	wall := Segment{Point{0, 0}, Point{10, 0}} // the X axis
	img := wall.Reflect(Point{3, 4})
	approx(t, img.X, 3, 1e-12, "X")
	approx(t, img.Y, -4, 1e-12, "Y")
}

func TestSegmentReflectAcrossDiagonal(t *testing.T) {
	wall := Segment{Point{0, 0}, Point{1, 1}} // the line y=x
	img := wall.Reflect(Point{2, 0})
	approx(t, img.X, 0, 1e-12, "X")
	approx(t, img.Y, 2, 1e-12, "Y")
}

func TestReflectIsInvolution(t *testing.T) {
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(1))}
	f := func(ax, ay, bx, by, px, py float64) bool {
		a := Point{math.Mod(ax, 50), math.Mod(ay, 50)}
		b := Point{math.Mod(bx, 50), math.Mod(by, 50)}
		if a.Dist(b) < 1e-6 {
			return true // degenerate wall, skip
		}
		wall := Segment{a, b}
		p := Point{math.Mod(px, 50), math.Mod(py, 50)}
		back := wall.Reflect(wall.Reflect(p))
		return back.Dist(p) < 1e-6
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestReflectPreservesDistanceToWallLine(t *testing.T) {
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(2))}
	f := func(px, py float64) bool {
		wall := Segment{Point{0, 0}, Point{4, 3}}
		p := Point{math.Mod(px, 20), math.Mod(py, 20)}
		img := wall.Reflect(p)
		// Both p and its image are equidistant from any point on the line.
		d1 := p.Dist(wall.A)
		d2 := img.Dist(wall.A)
		return math.Abs(d1-d2) < 1e-6
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestNormalizeAngle(t *testing.T) {
	approx(t, NormalizeAngle(3*math.Pi), math.Pi, 1e-12, "3π")
	approx(t, NormalizeAngle(-3*math.Pi), math.Pi, 1e-12, "−3π")
	approx(t, NormalizeAngle(0.5), 0.5, 1e-12, "0.5")
}

func TestAngleDiff(t *testing.T) {
	approx(t, AngleDiff(0.1, -0.1), 0.2, 1e-12, "simple")
	approx(t, AngleDiff(math.Pi-0.05, -math.Pi+0.05), 0.1, 1e-12, "wraparound")
	approx(t, AngleDiff(1, 1), 0, 1e-12, "equal")
}

func TestDegRadRoundTrip(t *testing.T) {
	approx(t, Deg(Rad(42)), 42, 1e-12, "deg→rad→deg")
	approx(t, Rad(180), math.Pi, 1e-12, "180°")
}

func TestSegmentLengthMidpoint(t *testing.T) {
	s := Segment{Point{0, 0}, Point{4, 0}}
	approx(t, s.Length(), 4, 1e-12, "Length")
	if s.Midpoint() != (Point{2, 0}) {
		t.Fatalf("Midpoint = %v", s.Midpoint())
	}
}
