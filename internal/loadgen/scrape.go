package loadgen

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// serverCounters are the cumulative server-side counters the generator
// samples at phase boundaries; per-phase deltas yield the shed rate the
// report records.
type serverCounters struct {
	// Shed sums spotfi_admit_shed_total across reasons.
	Shed float64
	// Delivered is spotfi_admit_queue_sojourn_seconds_count — bursts the
	// admission queue handed to workers.
	Delivered float64
	// Published is spotfi_feed_published_total — fixes the server
	// produced (whether or not a feed subscriber saw them).
	Published float64
}

func (c serverCounters) sub(prev serverCounters) serverCounters {
	d := serverCounters{
		Shed:      c.Shed - prev.Shed,
		Delivered: c.Delivered - prev.Delivered,
		Published: c.Published - prev.Published,
	}
	// A server restart mid-run resets counters; clamp so one bad phase
	// doesn't report negative rates.
	if d.Shed < 0 {
		d.Shed = 0
	}
	if d.Delivered < 0 {
		d.Delivered = 0
	}
	if d.Published < 0 {
		d.Published = 0
	}
	return d
}

// shedRate returns shed/(shed+delivered), the fraction of assembled
// bursts admission control dropped — 0 when nothing flowed.
func (c serverCounters) shedRate() float64 {
	total := c.Shed + c.Delivered
	if total <= 0 {
		return 0
	}
	return c.Shed / total
}

// scrapeCounters fetches and parses /metrics from the server's debug
// endpoint.
func scrapeCounters(ctx context.Context, client *http.Client, baseURL string) (serverCounters, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/metrics", nil)
	if err != nil {
		return serverCounters{}, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return serverCounters{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return serverCounters{}, fmt.Errorf("loadgen: GET /metrics: %s", resp.Status)
	}
	series, err := parsePrometheus(resp.Body)
	if err != nil {
		return serverCounters{}, err
	}
	return serverCounters{
		Shed:      sumSeries(series, "spotfi_admit_shed_total"),
		Delivered: sumSeries(series, "spotfi_admit_queue_sojourn_seconds_count"),
		Published: sumSeries(series, "spotfi_feed_published_total"),
	}, nil
}

// parsePrometheus reads the text exposition format into a map from full
// series name (including the label block) to value. Comment and blank
// lines are skipped; malformed value lines are an error so a truncated
// scrape cannot silently zero a phase's deltas.
func parsePrometheus(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// The value is the last space-separated field; the series name
		// (possibly containing spaces inside label values) is the rest.
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			return nil, fmt.Errorf("loadgen: bad metrics line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("loadgen: bad metrics value in %q: %v", line, err)
		}
		out[strings.TrimSpace(line[:i])] = v
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// sumSeries sums every series of the family: the bare name plus any
// labeled variants.
func sumSeries(series map[string]float64, name string) float64 {
	var vals []float64
	for k, v := range series {
		if k == name || strings.HasPrefix(k, name+"{") {
			vals = append(vals, v)
		}
	}
	var total float64
	for _, v := range vals {
		total += v
	}
	return total
}
