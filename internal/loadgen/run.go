package loadgen

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"spotfi/internal/feed"
	"spotfi/internal/obs"
	"spotfi/internal/obs/slo"
	"spotfi/internal/wire"
)

// RunConfig parameterizes one load run.
type RunConfig struct {
	// ServerAddr is the spotfi-server -listen address the AP streams dial.
	ServerAddr string
	// DebugURL is the server's debug base URL (http://host:port) for
	// /metrics, /debug/fixes, and /debug/slo.
	DebugURL string
	// Scene is the synthetic deployment to drive.
	Scene *Scene
	// Encoder holds the pre-encoded frames; built from Scene when nil.
	Encoder *Encoder
	// Phases is the offered-load schedule.
	Phases []Phase
	// SendBuffer is the per-AP job queue depth (default 128). A full
	// queue drops the send client-side — the open-loop generator never
	// blocks on a slow connection.
	SendBuffer int
	// Settle is how long to keep listening for fixes after the last
	// phase, so in-flight bursts drain into the tail phase's stats
	// (default 2s).
	Settle time.Duration
	// MaxFixes caps recorded fix samples (default 1<<20); overflow is
	// counted, not silently truncated.
	MaxFixes int
	// DialTimeout bounds each AP connection attempt (default 5s).
	DialTimeout time.Duration
	// Logger receives progress; nil discards.
	Logger *slog.Logger
}

func (c RunConfig) withDefaults() RunConfig {
	if c.SendBuffer <= 0 {
		c.SendBuffer = 128
	}
	if c.Settle <= 0 {
		c.Settle = 2 * time.Second
	}
	if c.MaxFixes <= 0 {
		c.MaxFixes = 1 << 20
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return c
}

// PhaseStats is one phase's raw measurements.
type PhaseStats struct {
	Phase Phase
	// StartNs/EndNs bound the phase's wall-clock window. The last
	// phase's window extends through the settle period so in-flight
	// fixes are attributed rather than lost.
	StartNs, EndNs int64
	// Offered counts bursts the scheduler offered; Sends counts per-AP
	// burst enqueues attempted (Offered × APsPerTarget); Dropped counts
	// enqueues rejected because an AP's send queue was full.
	Offered, Sends, Dropped uint64
	// Fixes counts feed fixes attributed to this phase.
	Fixes uint64
	// Latency holds packet→fix latencies (seconds) in HDR-style
	// exponential buckets.
	Latency *slo.Dist
	// Errors holds per-fix localization error against ground truth, in
	// meters.
	Errors []float64
	// Counters is the server-side delta over the phase.
	Counters serverCounters
}

// Result is one completed run.
type Result struct {
	Phases []PhaseStats
	// TotalFixes counts every fix the feed delivered (attributed or not).
	TotalFixes uint64
	// OverflowFixes counts fixes past the MaxFixes sample cap.
	OverflowFixes uint64
	// SendErrs counts AP connections lost mid-run.
	SendErrs uint64
	// FeedErr records a feed stream failure (empty = clean); the run
	// still returns whatever was measured before the failure.
	FeedErr string
	// SLO is the raw /debug/slo snapshot taken after the last phase.
	SLO json.RawMessage
}

// latencySaneNs discards latency samples from clock skew or foreign
// traffic: a fix whose capture timestamp is more than 10 minutes old is
// not one of ours in a healthy run.
const latencySaneNs = int64(10 * time.Minute)

type apJob struct {
	pos       int
	mac       string
	captureNs int64
}

type fixRec struct {
	emitNs int64
	latSec float64 // negative = no valid latency
	errM   float64 // negative = MAC not ours / unknown target
}

// Run executes the schedule against a live server and returns the
// measurements. The context aborts the run early (the partial result is
// discarded); clean completion includes the settle drain.
func Run(ctx context.Context, cfg RunConfig) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Scene == nil {
		return nil, fmt.Errorf("loadgen: RunConfig.Scene is required")
	}
	if cfg.ServerAddr == "" || cfg.DebugURL == "" {
		return nil, fmt.Errorf("loadgen: ServerAddr and DebugURL are required")
	}
	if len(cfg.Phases) == 0 {
		return nil, fmt.Errorf("loadgen: empty phase schedule")
	}
	enc := cfg.Encoder
	if enc == nil {
		var err error
		if enc, err = NewEncoder(cfg.Scene); err != nil {
			return nil, err
		}
	}
	scene := cfg.Scene

	// One long-lived connection per AP, handshook before any traffic.
	senders := make([]*apSender, len(scene.APs))
	var sendErrs atomic.Uint64
	for a := range scene.APs {
		s, err := dialSender(cfg, enc, a, &sendErrs)
		if err != nil {
			for _, prev := range senders[:a] {
				prev.close()
			}
			return nil, err
		}
		senders[a] = s
	}
	closeSenders := func() {
		for _, s := range senders {
			s.close()
		}
	}

	// The fix feed must be streaming before the first burst so no fix is
	// missed. Its context outlives the scheduler: the settle drain reads
	// fixes for bursts still in flight when the last phase ended.
	feedCtx, feedCancel := context.WithCancel(context.Background())
	defer feedCancel()
	fc, err := openFeed(feedCtx, cfg.DebugURL)
	if err != nil {
		closeSenders()
		return nil, err
	}
	var (
		fixMu    sync.Mutex
		recs     []fixRec
		total    uint64
		overflow uint64
		feedErr  string
	)
	var feedWG sync.WaitGroup
	feedWG.Add(1)
	//lint:allow gospawn feed-reader goroutine, WaitGroup-joined after the settle drain
	go func() {
		defer feedWG.Done()
		err := fc.stream(func(fx feed.Fix) {
			rec := recordFix(scene, fx)
			fixMu.Lock()
			total++
			if len(recs) < cfg.MaxFixes {
				recs = append(recs, rec)
			} else {
				overflow++
			}
			fixMu.Unlock()
		})
		if err != nil && feedCtx.Err() == nil {
			fixMu.Lock()
			feedErr = err.Error()
			fixMu.Unlock()
		}
	}()

	scrapeClient := &http.Client{Timeout: 10 * time.Second}
	prev, err := scrapeCounters(ctx, scrapeClient, cfg.DebugURL)
	if err != nil {
		closeSenders()
		feedCancel()
		feedWG.Wait()
		return nil, fmt.Errorf("loadgen: baseline scrape: %w", err)
	}

	// Drive the schedule. Each phase scrapes the server's counters at its
	// boundary; the last boundary lands after the settle drain so tail
	// fixes and sheds are attributed.
	res := &Result{}
	var burstCounter uint64
	for i, ph := range cfg.Phases {
		st := PhaseStats{Phase: ph, StartNs: time.Now().UnixNano()}
		if err := runPhase(ctx, scene, senders, ph, &st, &burstCounter); err != nil {
			closeSenders()
			feedCancel()
			feedWG.Wait()
			return nil, err
		}
		last := i == len(cfg.Phases)-1
		if last {
			if err := sleepCtx(ctx, cfg.Settle); err != nil {
				closeSenders()
				feedCancel()
				feedWG.Wait()
				return nil, err
			}
		}
		st.EndNs = time.Now().UnixNano()
		cur, err := scrapeCounters(ctx, scrapeClient, cfg.DebugURL)
		if err != nil {
			closeSenders()
			feedCancel()
			feedWG.Wait()
			return nil, fmt.Errorf("loadgen: phase %q scrape: %w", ph.Name, err)
		}
		st.Counters = cur.sub(prev)
		prev = cur
		cfg.Logger.Info("phase complete", "phase", ph.Name,
			"offered", st.Offered, "dropped", st.Dropped,
			"shed", st.Counters.Shed, "delivered", st.Counters.Delivered)
		res.Phases = append(res.Phases, st)
	}

	// Stop traffic and the feed, then snapshot the SLO state the run
	// induced.
	closeSenders()
	feedCancel()
	feedWG.Wait()

	sloRaw, err := fetchSLO(ctx, scrapeClient, cfg.DebugURL)
	if err != nil {
		return nil, fmt.Errorf("loadgen: /debug/slo: %w", err)
	}
	res.SLO = sloRaw
	res.SendErrs = sendErrs.Load()

	fixMu.Lock()
	res.TotalFixes = total
	res.OverflowFixes = overflow
	res.FeedErr = feedErr
	attributeFixes(res.Phases, recs)
	fixMu.Unlock()
	return res, nil
}

// runPhase offers bursts at the phase's scheduled rate until its
// duration elapses. Open loop: enqueues to AP senders never block; a
// full queue is a counted client-side drop.
func runPhase(ctx context.Context, scene *Scene, senders []*apSender, ph Phase, st *PhaseStats, burstCounter *uint64) error {
	start := time.Now()
	next := start
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		elapsed := time.Since(start)
		if elapsed >= ph.Duration {
			return nil
		}
		rate := ph.rateAt(elapsed)
		if rate <= 0 {
			idle := 20 * time.Millisecond
			if rem := ph.Duration - elapsed; rem < idle {
				idle = rem
			}
			if err := sleepCtx(ctx, idle); err != nil {
				return err
			}
			next = time.Now()
			continue
		}

		t := int(*burstCounter % uint64(scene.Cfg.Targets))
		*burstCounter++
		pos := scene.PosIndex(t)
		mac := scene.MAC(t)
		captureNs := time.Now().UnixNano()
		st.Offered++
		for _, a := range scene.APsForPos(pos) {
			st.Sends++
			select {
			case senders[a].jobs <- apJob{pos: pos, mac: mac, captureNs: captureNs}:
			default:
				st.Dropped++
			}
		}

		next = next.Add(time.Duration(float64(time.Second) / rate))
		if d := time.Until(next); d > 0 {
			if err := sleepCtx(ctx, d); err != nil {
				return err
			}
		} else if d < -250*time.Millisecond {
			// The scheduler stalled (GC, CPU starvation). Cap the
			// catch-up backlog: a bounded burst of back-to-back sends is
			// open-loop, an unbounded storm is a measurement artifact.
			next = time.Now()
		}
	}
}

// apSender owns one AP's connection: a single writer goroutine drains
// the job queue, patches the pre-encoded frames, and streams them.
type apSender struct {
	jobs chan apJob
	conn net.Conn
	wg   sync.WaitGroup
	once sync.Once
}

func dialSender(cfg RunConfig, enc *Encoder, apIdx int, sendErrs *atomic.Uint64) (*apSender, error) {
	conn, err := net.DialTimeout("tcp", cfg.ServerAddr, cfg.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("loadgen: dial AP %d: %w", apIdx, err)
	}
	bw := bufio.NewWriterSize(conn, 64*1024)
	if err := wire.WriteFrame(bw, wire.EncodeHello(int32(apIdx))); err != nil {
		//lint:allow errdrop best-effort cleanup; the write error is what gets reported
		conn.Close()
		return nil, fmt.Errorf("loadgen: hello AP %d: %w", apIdx, err)
	}
	if err := bw.Flush(); err != nil {
		//lint:allow errdrop best-effort cleanup; the flush error is what gets reported
		conn.Close()
		return nil, fmt.Errorf("loadgen: hello AP %d: %w", apIdx, err)
	}
	s := &apSender{jobs: make(chan apJob, cfg.SendBuffer), conn: conn}
	s.wg.Add(1)
	//lint:allow gospawn one writer goroutine per AP connection, WaitGroup-joined by close()
	go func() {
		defer s.wg.Done()
		var seq uint64
		dead := false
		header := enc.Header()
		for j := range s.jobs {
			if dead {
				continue // drain so the scheduler's enqueues stay non-blocking
			}
			payloads := enc.Payloads(apIdx, j.pos)
			werr := func() error {
				for _, payload := range payloads {
					seq++
					if err := PatchPayload(payload, seq, j.captureNs, j.mac); err != nil {
						return err
					}
					if _, err := bw.Write(header); err != nil {
						return err
					}
					if _, err := bw.Write(payload); err != nil {
						return err
					}
				}
				return bw.Flush()
			}()
			if werr != nil {
				dead = true
				sendErrs.Add(1)
				cfg.Logger.Warn("AP stream lost", "ap", apIdx, "err", werr)
			}
		}
		if !dead {
			if err := wire.WriteFrame(bw, wire.Frame{Type: wire.TypeBye}); err == nil {
				//lint:allow errdrop best-effort flush of the goodbye frame on shutdown
				bw.Flush()
			}
		}
	}()
	return s, nil
}

// close stops the sender: no more jobs, writer joined, connection shut.
// Idempotent.
func (s *apSender) close() {
	s.once.Do(func() {
		close(s.jobs)
		s.wg.Wait()
		//lint:allow errdrop teardown of a connection whose useful traffic already completed
		s.conn.Close()
	})
}

// feedClient is a streaming /debug/fixes subscription.
type feedClient struct {
	resp *http.Response
}

func openFeed(ctx context.Context, baseURL string) (*feedClient, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/debug/fixes", nil)
	if err != nil {
		return nil, err
	}
	// A dedicated client without a timeout: this is a deliberately
	// long-lived stream, canceled via ctx.
	resp, err := (&http.Client{}).Do(req)
	if err != nil {
		return nil, fmt.Errorf("loadgen: GET /debug/fixes: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		//lint:allow errdrop best-effort cleanup; the HTTP status is what gets reported
		resp.Body.Close()
		return nil, fmt.Errorf("loadgen: GET /debug/fixes: %s", resp.Status)
	}
	return &feedClient{resp: resp}, nil
}

// stream decodes ndjson fixes until the stream ends or errors.
func (fc *feedClient) stream(fn func(feed.Fix)) error {
	defer fc.resp.Body.Close()
	sc := bufio.NewScanner(fc.resp.Body)
	sc.Buffer(make([]byte, 0, 16*1024), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var fx feed.Fix
		if err := json.Unmarshal(line, &fx); err != nil {
			return fmt.Errorf("loadgen: bad feed line %q: %w", line, err)
		}
		fn(fx)
	}
	return sc.Err()
}

// recordFix turns one feed fix into the compact sample the aggregator
// keeps.
func recordFix(scene *Scene, fx feed.Fix) fixRec {
	rec := fixRec{emitNs: fx.EmitNs, latSec: -1, errM: -1}
	if fx.CaptureNs > 0 && fx.EmitNs >= fx.CaptureNs && fx.EmitNs-fx.CaptureNs < latencySaneNs {
		rec.latSec = float64(fx.EmitNs-fx.CaptureNs) / 1e9
	}
	if t, ok := TargetIndex(fx.MAC); ok && t < scene.Cfg.Targets {
		truth := scene.Truth(t)
		dx, dy := fx.X-truth.X, fx.Y-truth.Y
		rec.errM = dx*dx + dy*dy
	}
	return rec
}

// attributeFixes assigns each recorded fix to the phase whose wall-clock
// window contains its emit timestamp. Fixes before the first window
// (none in practice) fold into the first phase; the last window is
// open-ended through the settle drain.
func attributeFixes(phases []PhaseStats, recs []fixRec) {
	if len(phases) == 0 {
		return
	}
	bounds := latencyBuckets()
	for i := range phases {
		phases[i].Latency = slo.NewDist(bounds)
	}
	for _, r := range recs {
		i := len(phases) - 1
		for j := 0; j < len(phases)-1; j++ {
			if r.emitNs < phases[j].EndNs {
				i = j
				break
			}
		}
		ph := &phases[i]
		ph.Fixes++
		if r.latSec >= 0 {
			ph.Latency.Observe(r.latSec)
		}
		if r.errM >= 0 {
			// recordFix stores squared distances to keep the feed-reader
			// cheap; take the root once per fix here.
			ph.Errors = append(ph.Errors, math.Sqrt(r.errM))
		}
	}
}

// latencyBuckets is the HDR-style grid for packet→fix latency: 100 µs to
// 10 s at 5 buckets per decade — the same grid the server's
// spotfi_fix_latency_seconds histogram uses.
func latencyBuckets() []float64 { return obs.ExpBuckets(100e-6, 10, 5) }

func fetchSLO(ctx context.Context, client *http.Client, baseURL string) (json.RawMessage, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/debug/slo", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /debug/slo: %s", resp.Status)
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, err
	}
	if !json.Valid(raw) {
		return nil, fmt.Errorf("GET /debug/slo: response is not JSON")
	}
	return json.RawMessage(raw), nil
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
