package loadgen

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

const sampleExposition = `# HELP spotfi_admit_shed_total Bursts shed by admission control, by reason.
# TYPE spotfi_admit_shed_total counter
spotfi_admit_shed_total{reason="full"} 10
spotfi_admit_shed_total{reason="stale"} 5
spotfi_admit_shed_total{reason="codel"} 2
# TYPE spotfi_admit_queue_sojourn_seconds histogram
spotfi_admit_queue_sojourn_seconds_bucket{le="0.01"} 3
spotfi_admit_queue_sojourn_seconds_bucket{le="+Inf"} 40
spotfi_admit_queue_sojourn_seconds_sum 1.25
spotfi_admit_queue_sojourn_seconds_count 40
# TYPE spotfi_feed_published_total counter
spotfi_feed_published_total 33
`

func TestParsePrometheus(t *testing.T) {
	series, err := parsePrometheus(strings.NewReader(sampleExposition))
	if err != nil {
		t.Fatal(err)
	}
	if got := series[`spotfi_admit_shed_total{reason="full"}`]; got != 10 {
		t.Fatalf("full sheds = %g, want 10", got)
	}
	if got := series["spotfi_feed_published_total"]; got != 33 {
		t.Fatalf("published = %g, want 33", got)
	}
	if got := sumSeries(series, "spotfi_admit_shed_total"); got != 17 {
		t.Fatalf("summed sheds = %g, want 17", got)
	}
	// The histogram's _count series must not leak into the base name sum.
	if got := sumSeries(series, "spotfi_admit_queue_sojourn_seconds_count"); got != 40 {
		t.Fatalf("delivered = %g, want 40", got)
	}
	if _, err := parsePrometheus(strings.NewReader("garbage line without value_here\n")); err == nil {
		t.Fatal("malformed line accepted")
	}
}

func TestScrapeCountersAndDeltas(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/metrics" {
			http.NotFound(w, r)
			return
		}
		if _, err := w.Write([]byte(sampleExposition)); err != nil {
			t.Error(err)
		}
	}))
	defer srv.Close()

	c, err := scrapeCounters(context.Background(), srv.Client(), srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if c.Shed != 17 || c.Delivered != 40 || c.Published != 33 {
		t.Fatalf("counters = %+v", c)
	}

	d := c.sub(serverCounters{Shed: 7, Delivered: 10, Published: 30})
	if d.Shed != 10 || d.Delivered != 30 || d.Published != 3 {
		t.Fatalf("delta = %+v", d)
	}
	if got := d.shedRate(); got != 0.25 {
		t.Fatalf("shed rate = %g, want 0.25", got)
	}
	// Counter reset (server restart): deltas clamp instead of going
	// negative.
	reset := serverCounters{}.sub(c)
	if reset.Shed != 0 || reset.Delivered != 0 || reset.shedRate() != 0 {
		t.Fatalf("reset delta = %+v", reset)
	}
}
