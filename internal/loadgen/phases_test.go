package loadgen

import (
	"testing"
	"time"
)

func TestParsePhases(t *testing.T) {
	ps, err := ParsePhases("warm:5s@10, ramp:10s@10..80 ,soak:2m@120")
	if err != nil {
		t.Fatal(err)
	}
	want := []Phase{
		{Name: "warm", Duration: 5 * time.Second, StartRate: 10, EndRate: 10},
		{Name: "ramp", Duration: 10 * time.Second, StartRate: 10, EndRate: 80},
		{Name: "soak", Duration: 2 * time.Minute, StartRate: 120, EndRate: 120},
	}
	if len(ps) != len(want) {
		t.Fatalf("got %d phases, want %d", len(ps), len(want))
	}
	for i := range want {
		if ps[i] != want[i] {
			t.Fatalf("phase %d = %+v, want %+v", i, ps[i], want[i])
		}
	}
}

func TestParsePhasesErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"noduration@5",
		"x:5s",
		"x:bogus@5",
		"x:-3s@5",
		"x:0s@5",
		"x:5s@-1",
		"x:5s@1..nope",
		"a:1s@1,a:1s@2", // duplicate name
	} {
		if _, err := ParsePhases(bad); err == nil {
			t.Errorf("ParsePhases(%q) succeeded, want error", bad)
		}
	}
}

func TestRateAtRampsLinearly(t *testing.T) {
	p := Phase{Name: "ramp", Duration: 10 * time.Second, StartRate: 20, EndRate: 120}
	cases := []struct {
		into time.Duration
		want float64
	}{
		{0, 20},
		{5 * time.Second, 70},
		{10 * time.Second, 120},
		{15 * time.Second, 120}, // clamped past the end
	}
	for _, c := range cases {
		if got := p.rateAt(c.into); got != c.want {
			t.Errorf("rateAt(%v) = %g, want %g", c.into, got, c.want)
		}
	}
	steady := Phase{Name: "s", Duration: time.Second, StartRate: 7, EndRate: 7}
	if got := steady.rateAt(500 * time.Millisecond); got != 7 {
		t.Errorf("steady rateAt = %g, want 7", got)
	}
}

func TestFormatPhasesRoundTrip(t *testing.T) {
	spec := "warm:5s@10,ramp:10s@10..80,soak:2m0s@120"
	ps, err := ParsePhases(spec)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParsePhases(FormatPhases(ps))
	if err != nil {
		t.Fatalf("FormatPhases output %q does not re-parse: %v", FormatPhases(ps), err)
	}
	for i := range ps {
		if ps[i] != back[i] {
			t.Fatalf("round trip changed phase %d: %+v vs %+v", i, ps[i], back[i])
		}
	}
}
