package loadgen

import (
	"encoding/json"
	"fmt"
	"os"

	"spotfi/internal/stats"
)

// ReportSchema versions the LOAD_*.json format; CompareReports refuses
// files written by a different schema rather than mis-reading them.
const ReportSchema = 1

// ReportOpts pins the scale a report was recorded at. Comparing runs
// with different opts would gate on scale noise, not regressions.
type ReportOpts struct {
	Seed         int64  `json:"seed"`
	APs          int    `json:"aps"`
	Targets      int    `json:"targets"`
	Positions    int    `json:"positions"`
	APsPerTarget int    `json:"aps_per_target"`
	Batch        int    `json:"batch"`
	Phases       string `json:"phases"`
}

// PhaseReport is one phase's derived figures.
type PhaseReport struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
	// OfferedBursts is what the open-loop scheduler offered;
	// ClientDroppedSends counts per-AP enqueues the generator itself
	// dropped (saturated local send queue).
	OfferedBursts      uint64  `json:"offered_bursts"`
	OfferedRatePerSec  float64 `json:"offered_rate_per_sec"`
	ClientDroppedSends uint64  `json:"client_dropped_sends"`
	// Fixes and FixRatePerSec measure server output attributed to the
	// phase by emit time.
	Fixes         uint64  `json:"fixes"`
	FixRatePerSec float64 `json:"fix_rate_per_sec"`
	// Latency percentiles are end-to-end packet→fix, milliseconds,
	// from HDR-style buckets (so p99 is interpolated, not exact).
	LatencyP50Ms float64 `json:"latency_p50_ms"`
	LatencyP95Ms float64 `json:"latency_p95_ms"`
	LatencyP99Ms float64 `json:"latency_p99_ms"`
	// ShedRate is shed/(shed+delivered) from the server's admission
	// counters over the phase window.
	ShedRate float64 `json:"shed_rate"`
	// ErrMedianM/ErrP90M are live localization error vs ground truth,
	// meters, over the phase's fixes.
	ErrMedianM float64 `json:"err_median_m"`
	ErrP90M    float64 `json:"err_p90_m"`
}

// Report is the machine-readable fingerprint of one load run: what
// LOAD_<runid>.json holds and what the CI load-smoke job diffs against
// the committed LOAD_baseline.json.
type Report struct {
	Schema int    `json:"schema"`
	RunID  string `json:"run_id"`
	// CreatedAt is an RFC 3339 timestamp, informational only.
	CreatedAt string        `json:"created_at"`
	Opts      ReportOpts    `json:"opts"`
	Phases    []PhaseReport `json:"phases"`
	// TotalFixes/SendErrs/FeedErr summarize run health.
	TotalFixes uint64 `json:"total_fixes"`
	SendErrs   uint64 `json:"send_errs"`
	FeedErr    string `json:"feed_err,omitempty"`
	// SLO is the server's /debug/slo snapshot at the end of the run.
	SLO json.RawMessage `json:"slo,omitempty"`
}

// NewReport derives the report from a run's raw measurements.
func NewReport(runID, createdAt string, opts ReportOpts, res *Result) *Report {
	r := &Report{
		Schema:     ReportSchema,
		RunID:      runID,
		CreatedAt:  createdAt,
		Opts:       opts,
		TotalFixes: res.TotalFixes,
		SendErrs:   res.SendErrs,
		FeedErr:    res.FeedErr,
		SLO:        res.SLO,
	}
	for _, st := range res.Phases {
		secs := float64(st.EndNs-st.StartNs) / 1e9
		pr := PhaseReport{
			Name:               st.Phase.Name,
			Seconds:            secs,
			OfferedBursts:      st.Offered,
			ClientDroppedSends: st.Dropped,
			Fixes:              st.Fixes,
			ShedRate:           st.Counters.shedRate(),
		}
		if secs > 0 {
			pr.OfferedRatePerSec = float64(st.Offered) / secs
			pr.FixRatePerSec = float64(st.Fixes) / secs
		}
		if st.Latency != nil && st.Latency.Count() > 0 {
			pr.LatencyP50Ms = st.Latency.Quantile(0.5) * 1e3
			pr.LatencyP95Ms = st.Latency.Quantile(0.95) * 1e3
			pr.LatencyP99Ms = st.Latency.Quantile(0.99) * 1e3
		}
		if len(st.Errors) > 0 {
			pr.ErrMedianM = stats.Median(st.Errors)
			pr.ErrP90M = stats.Percentile(st.Errors, 90)
		}
		r.Phases = append(r.Phases, pr)
	}
	return r
}

// WriteFile writes the report as indented JSON.
func (r *Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadReport reads a report file and checks its schema.
func LoadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("loadgen: %s: %w", path, err)
	}
	if r.Schema != ReportSchema {
		return nil, fmt.Errorf("loadgen: %s: schema %d, want %d", path, r.Schema, ReportSchema)
	}
	return &r, nil
}

// Tolerance bounds how much worse a run may be than its baseline before
// CompareReports flags a regression. Load figures are wall-clock and
// machine-dependent, so the defaults are deliberately loose — the gate
// catches collapses (no fixes, runaway latency, everything shed), not
// percent-level drift.
type Tolerance struct {
	// FixRateFactor fails a phase whose fix rate fell below
	// baseline/factor (only for phases where the baseline produced
	// fixes).
	FixRateFactor float64
	// LatencyFactor fails a phase whose p99 exceeds baseline×factor.
	LatencyFactor float64
	// ShedAbs fails a phase whose shed rate exceeds baseline+abs.
	ShedAbs float64
	// ErrRel/ErrAbs bound localization error like the bench gate:
	// current must not exceed base + max(ErrAbs, base·ErrRel).
	ErrRel float64
	ErrAbs float64
}

// DefaultTolerance matches the CI load-smoke gate.
func DefaultTolerance() Tolerance {
	return Tolerance{FixRateFactor: 3, LatencyFactor: 10, ShedAbs: 0.25, ErrRel: 0.5, ErrAbs: 0.5}
}

func (t Tolerance) fill() Tolerance {
	d := DefaultTolerance()
	if t.FixRateFactor <= 0 {
		t.FixRateFactor = d.FixRateFactor
	}
	if t.LatencyFactor <= 0 {
		t.LatencyFactor = d.LatencyFactor
	}
	if t.ShedAbs <= 0 {
		t.ShedAbs = d.ShedAbs
	}
	if t.ErrRel <= 0 {
		t.ErrRel = d.ErrRel
	}
	if t.ErrAbs <= 0 {
		t.ErrAbs = d.ErrAbs
	}
	return t
}

// CompareReports diffs cur against base and returns one violation per
// regression beyond tol (empty = pass). Phases are matched by name;
// a baseline phase missing from the current run is a violation,
// current-only phases are ignored. Mismatched opts are a single
// violation: cross-scale numbers are not comparable.
func CompareReports(base, cur *Report, tol Tolerance) []string {
	tol = tol.fill()
	if base.Opts != cur.Opts {
		return []string{fmt.Sprintf("opts mismatch: baseline %+v vs current %+v (rerun with matching scene and phase flags)",
			base.Opts, cur.Opts)}
	}
	curByName := make(map[string]PhaseReport, len(cur.Phases))
	for _, p := range cur.Phases {
		curByName[p.Name] = p
	}
	var out []string
	for _, bp := range base.Phases {
		cp, ok := curByName[bp.Name]
		if !ok {
			out = append(out, fmt.Sprintf("%s: phase missing from current run", bp.Name))
			continue
		}
		if bp.Fixes > 0 && cp.Fixes == 0 {
			out = append(out, fmt.Sprintf("%s: no fixes (baseline had %d)", bp.Name, bp.Fixes))
			continue
		}
		if bp.FixRatePerSec > 0 && cp.FixRatePerSec < bp.FixRatePerSec/tol.FixRateFactor {
			out = append(out, fmt.Sprintf("%s: fix rate %.2f/s < baseline %.2f/s ÷ %.0f",
				bp.Name, cp.FixRatePerSec, bp.FixRatePerSec, tol.FixRateFactor))
		}
		if bp.LatencyP99Ms > 0 && cp.LatencyP99Ms > bp.LatencyP99Ms*tol.LatencyFactor {
			out = append(out, fmt.Sprintf("%s: latency p99 %.1fms > %.0f× baseline %.1fms",
				bp.Name, cp.LatencyP99Ms, tol.LatencyFactor, bp.LatencyP99Ms))
		}
		if cp.ShedRate > bp.ShedRate+tol.ShedAbs {
			out = append(out, fmt.Sprintf("%s: shed rate %.3f > baseline %.3f + %.2f",
				bp.Name, cp.ShedRate, bp.ShedRate, tol.ShedAbs))
		}
		// Only the error median is gated. The p90 is reported but too
		// noisy to gate: under shedding, *which* fixes survive varies run
		// to run, and at a few hundred samples the tail swings by meters
		// while the median moves by centimeters.
		if v := errViolation(bp.Name, "err median", bp.ErrMedianM, cp.ErrMedianM, tol); v != "" {
			out = append(out, v)
		}
	}
	return out
}

// errViolation gates one accuracy stat one-sidedly: only getting worse
// beyond the combined slack fails.
func errViolation(phase, stat string, base, cur float64, tol Tolerance) string {
	if base <= 0 {
		return "" // baseline phase had no error samples to compare against
	}
	slack := base * tol.ErrRel
	if tol.ErrAbs > slack {
		slack = tol.ErrAbs
	}
	if cur > base+slack {
		return fmt.Sprintf("%s: %s %.2fm > baseline %.2fm + %.2fm", phase, stat, cur, base, slack)
	}
	return ""
}
