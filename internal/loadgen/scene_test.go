package loadgen

import (
	"reflect"
	"testing"

	"spotfi/internal/locate"
)

func boundsAt(minX, minY, maxX, maxY float64) locate.Bounds {
	return locate.Bounds{MinX: minX, MinY: minY, MaxX: maxX, MaxY: maxY}
}

func TestSceneDeterministic(t *testing.T) {
	cfg := SceneConfig{Seed: 7, APs: 5, Targets: 20, Positions: 8, APsPerTarget: 3, Batch: 4}
	a, err := NewScene(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewScene(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.APs, b.APs) || !reflect.DeepEqual(a.Positions, b.Positions) {
		t.Fatal("same config+seed produced different scenes")
	}
	if !reflect.DeepEqual(a.apsForPos, b.apsForPos) {
		t.Fatal("same config+seed produced different AP assignments")
	}
	c, err := NewScene(SceneConfig{Seed: 8, APs: 5, Targets: 20, Positions: 8, APsPerTarget: 3, Batch: 4})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Positions, c.Positions) {
		t.Fatal("different seeds produced identical positions")
	}
}

func TestSceneGeometry(t *testing.T) {
	s, err := NewScene(SceneConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b := s.Cfg.Bounds
	for i, ap := range s.APs {
		if ap.ID != i {
			t.Fatalf("AP %d has ID %d", i, ap.ID)
		}
		if ap.Pos.X < b.MinX || ap.Pos.X > b.MaxX || ap.Pos.Y < b.MinY || ap.Pos.Y > b.MaxY {
			t.Fatalf("AP %d at %v outside bounds %+v", i, ap.Pos, b)
		}
	}
	if len(s.Positions) != s.Cfg.Positions {
		t.Fatalf("placed %d positions, want %d", len(s.Positions), s.Cfg.Positions)
	}
	for p, pos := range s.Positions {
		if pos.X < b.MinX || pos.X > b.MaxX || pos.Y < b.MinY || pos.Y > b.MaxY {
			t.Fatalf("position %d at %v outside bounds", p, pos)
		}
		aps := s.APsForPos(p)
		if len(aps) != s.Cfg.APsPerTarget {
			t.Fatalf("position %d assigned %d APs, want %d", p, len(aps), s.Cfg.APsPerTarget)
		}
		// Nearest-first: distances are non-decreasing.
		for i := 1; i < len(aps); i++ {
			if s.APs[aps[i-1]].Pos.Dist(pos) > s.APs[aps[i]].Pos.Dist(pos) {
				t.Fatalf("position %d AP assignment not nearest-first: %v", p, aps)
			}
		}
	}
}

func TestSceneValidation(t *testing.T) {
	cases := []SceneConfig{
		{APs: 1},                          // too few APs
		{APs: 4, APsPerTarget: 5},         // more APs per target than APs
		{APs: 4, Targets: -1},             // negative targets
		{Bounds: boundsAt(0, 0, 1, -1)},   // empty bounds
		{Positions: 500, APs: 4, Seed: 1}, // cannot place that many in 16×10 with 0.5 m spacing
	}
	for i, cfg := range cases {
		if _, err := NewScene(cfg); err == nil {
			t.Errorf("case %d: NewScene(%+v) succeeded, want error", i, cfg)
		}
	}
}

func TestTargetMACRoundTrip(t *testing.T) {
	for _, idx := range []int{0, 1, 255, 256, 65535, 65536, 1 << 20} {
		mac := TargetMAC(idx)
		if len(mac) != targetMACLen {
			t.Fatalf("MAC %q has length %d, want %d", mac, len(mac), targetMACLen)
		}
		got, ok := TargetIndex(mac)
		if !ok || got != idx {
			t.Fatalf("TargetIndex(%q) = %d,%v, want %d,true", mac, got, ok, idx)
		}
	}
	for _, bad := range []string{"", "02:00:00:00:00", "aa:bb:cc:dd:ee:ff", "02:01:00:00:00:00"} {
		if _, ok := TargetIndex(bad); ok {
			t.Fatalf("TargetIndex(%q) accepted a foreign MAC", bad)
		}
	}
}

func TestTruthQuantized(t *testing.T) {
	s, err := NewScene(SceneConfig{Seed: 3, Positions: 5, Targets: 17})
	if err != nil {
		t.Fatal(err)
	}
	if s.PosIndex(0) != 0 || s.PosIndex(5) != 0 || s.PosIndex(7) != 2 {
		t.Fatalf("PosIndex mapping wrong: %d %d %d", s.PosIndex(0), s.PosIndex(5), s.PosIndex(7))
	}
	if s.Truth(12) != s.Positions[2] {
		t.Fatal("Truth(12) is not Positions[2]")
	}
}
