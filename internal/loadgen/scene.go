// Package loadgen drives a live spotfi-server with synthetic CSI traffic
// over the real wire protocol and measures what comes out the other end:
// fix throughput, packet→fix latency, shed rate, and live localization
// error against known ground truth.
//
// The generator is open-loop: it offers bursts at the scheduled rate
// regardless of how the server is coping, so overload shows up as shed
// and latency — not as the generator politely slowing down. Traffic is
// physically plausible (ray-traced multipath CSI from internal/sim), so
// the server's full pipeline — sanitization, MUSIC, clustering,
// localization — runs exactly as it would against real APs.
package loadgen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"spotfi/internal/geom"
	"spotfi/internal/locate"
	"spotfi/internal/sim"
)

// SceneConfig sizes the synthetic deployment. Zero fields take the
// defaults noted; the same config and seed always produce the same
// scene, so a committed baseline pins its traffic exactly.
type SceneConfig struct {
	// Seed drives AP placement jitter, position sampling, and every
	// per-link synthesizer deterministically.
	Seed int64
	// APs is the number of synthetic access points, placed evenly on the
	// bounds perimeter facing the room center (default 6, min 2).
	APs int
	// Targets is the number of distinct MACs cycled through (default 24).
	Targets int
	// Positions is the number of quantized ground-truth positions targets
	// stand at; target t occupies position t mod Positions (default 12).
	// Quantizing keeps the pre-encoded frame-template set small while
	// still exercising many MACs.
	Positions int
	// APsPerTarget is how many of the nearest APs hear each position
	// (default 4) — it must be at least the server's -minaps for bursts
	// to assemble.
	APsPerTarget int
	// Batch is packets per AP per burst; must match the server's -batch
	// (default 10).
	Batch int
	// Bounds is the deployment region (default 0,0,16,10 — the paper's
	// office).
	Bounds locate.Bounds
}

func (c SceneConfig) withDefaults() SceneConfig {
	if c.APs == 0 {
		c.APs = 6
	}
	if c.Targets == 0 {
		c.Targets = 24
	}
	if c.Positions == 0 {
		c.Positions = 12
	}
	if c.APsPerTarget == 0 {
		c.APsPerTarget = 4
	}
	if c.Batch == 0 {
		c.Batch = 10
	}
	if c.Bounds == (locate.Bounds{}) {
		c.Bounds = locate.Bounds{MinX: 0, MinY: 0, MaxX: 16, MaxY: 10}
	}
	return c
}

// Scene is a fully specified synthetic deployment: AP poses, the
// quantized ground-truth positions, and which APs hear each position.
type Scene struct {
	Cfg SceneConfig
	// APs are the synthetic access points; APs[i].ID == i.
	APs []sim.AP
	// Positions are the quantized ground-truth target positions.
	Positions []geom.Point
	// Env is the multipath environment every link is traced through.
	Env *sim.Environment

	// apsForPos[p] lists the Cfg.APsPerTarget nearest AP indices.
	apsForPos [][]int
}

// NewScene builds the deterministic deployment for cfg.
func NewScene(cfg SceneConfig) (*Scene, error) {
	cfg = cfg.withDefaults()
	if cfg.APs < 2 {
		return nil, fmt.Errorf("loadgen: need at least 2 APs, got %d", cfg.APs)
	}
	if cfg.Bounds.MinX >= cfg.Bounds.MaxX || cfg.Bounds.MinY >= cfg.Bounds.MaxY {
		return nil, fmt.Errorf("loadgen: empty bounds %+v", cfg.Bounds)
	}
	if cfg.APsPerTarget > cfg.APs {
		return nil, fmt.Errorf("loadgen: aps-per-target %d exceeds %d APs", cfg.APsPerTarget, cfg.APs)
	}
	if cfg.Targets < 1 || cfg.Positions < 1 || cfg.Batch < 1 || cfg.APsPerTarget < 1 {
		return nil, fmt.Errorf("loadgen: targets, positions, aps-per-target, and batch must be positive")
	}
	if cfg.Targets > 1<<32-1 {
		return nil, fmt.Errorf("loadgen: %d targets exceed the 32-bit MAC encoding", cfg.Targets)
	}
	s := &Scene{
		Cfg: cfg,
		APs: perimeterAPs(cfg.APs, cfg.Bounds),
		Env: sceneEnvironment(cfg.Bounds),
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	pos, err := samplePositions(rng, cfg.Bounds, cfg.Positions, s.APs)
	if err != nil {
		return nil, err
	}
	s.Positions = pos
	s.apsForPos = make([][]int, len(pos))
	for p := range pos {
		s.apsForPos[p] = nearestAPs(s.APs, pos[p], cfg.APsPerTarget)
	}
	return s, nil
}

// PosIndex returns the ground-truth position index of target t.
func (s *Scene) PosIndex(t int) int { return t % len(s.Positions) }

// Truth returns the ground-truth position of target t.
func (s *Scene) Truth(t int) geom.Point { return s.Positions[s.PosIndex(t)] }

// APsForPos returns the AP indices that hear position p.
func (s *Scene) APsForPos(p int) []int { return s.apsForPos[p] }

// MAC returns the synthetic MAC of target t. The index is carried in
// the last four octets, so a fix's MAC maps back to ground truth via
// TargetIndex.
func (s *Scene) MAC(t int) string { return TargetMAC(t) }

// TargetMAC encodes target index t into a locally administered MAC.
func TargetMAC(t int) string {
	u := uint32(t)
	return fmt.Sprintf("02:00:%02x:%02x:%02x:%02x",
		byte(u>>24), byte(u>>16), byte(u>>8), byte(u))
}

// TargetIndex inverts TargetMAC. ok is false for MACs the generator did
// not mint (foreign traffic sharing the server).
func TargetIndex(mac string) (int, bool) {
	var b [4]byte
	if len(mac) != 17 {
		return 0, false
	}
	if _, err := fmt.Sscanf(mac, "02:00:%02x:%02x:%02x:%02x", &b[0], &b[1], &b[2], &b[3]); err != nil {
		return 0, false
	}
	u := uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
	return int(u), true
}

// mix derives a deterministic per-(ap, position) seed (splitmix64
// finalizer — same construction the testbed uses for per-link seeds).
func mix(seed int64, ap, pos int) int64 {
	z := uint64(seed) ^ (uint64(ap+1) * 0x9E3779B97F4A7C15) ^ (uint64(pos+1) * 0xBF58476D1CE4E5B9)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z & 0x7FFFFFFFFFFFFFFF)
}

// perimeterAPs places n APs evenly along the bounds perimeter (inset so
// they sit inside the walls), broadside facing the room center.
func perimeterAPs(n int, b locate.Bounds) []sim.AP {
	const inset = 0.4
	minX, minY := b.MinX+inset, b.MinY+inset
	w, h := b.MaxX-b.MinX-2*inset, b.MaxY-b.MinY-2*inset
	perim := 2 * (w + h)
	center := geom.Point{X: (b.MinX + b.MaxX) / 2, Y: (b.MinY + b.MaxY) / 2}
	aps := make([]sim.AP, n)
	for i := range aps {
		d := perim * float64(i) / float64(n)
		var p geom.Point
		switch {
		case d < w:
			p = geom.Point{X: minX + d, Y: minY}
		case d < w+h:
			p = geom.Point{X: minX + w, Y: minY + (d - w)}
		case d < 2*w+h:
			p = geom.Point{X: minX + w - (d - w - h), Y: minY + h}
		default:
			p = geom.Point{X: minX, Y: minY + h - (d - 2*w - h)}
		}
		aps[i] = sim.AP{ID: i, Pos: p, NormalAngle: center.Sub(p).Angle()}
	}
	return aps
}

// sceneEnvironment builds a multipath-rich room scaled to the bounds:
// a reflective perimeter shell plus scatterers at fixed fractional
// positions — enough paths that the pipeline works as hard as in the
// office testbed.
func sceneEnvironment(b locate.Bounds) *sim.Environment {
	mk := func(ax, ay, bx, by float64) sim.Wall {
		return sim.Wall{
			Seg:           geom.Segment{A: geom.Point{X: ax, Y: ay}, B: geom.Point{X: bx, Y: by}},
			LossDB:        16,
			ReflectLossDB: 3,
		}
	}
	at := func(fx, fy float64) geom.Point {
		return geom.Point{X: b.MinX + fx*(b.MaxX-b.MinX), Y: b.MinY + fy*(b.MaxY-b.MinY)}
	}
	scat := [][2]float64{{0.2, 0.75}, {0.8, 0.2}, {0.5, 0.55}, {0.85, 0.8}, {0.15, 0.25}}
	env := &sim.Environment{
		Walls: []sim.Wall{
			mk(b.MinX, b.MinY, b.MaxX, b.MinY),
			mk(b.MaxX, b.MinY, b.MaxX, b.MaxY),
			mk(b.MaxX, b.MaxY, b.MinX, b.MaxY),
			mk(b.MinX, b.MaxY, b.MinX, b.MinY),
		},
	}
	for i, f := range scat {
		env.Scatterers = append(env.Scatterers, sim.Scatterer{
			Pos:    at(f[0], f[1]),
			LossDB: 10 + 2*float64(i%3),
		})
	}
	return env
}

// samplePositions draws count jittered positions inside the bounds,
// keeping clearance from APs and from each other so no link is
// degenerate.
func samplePositions(rng *rand.Rand, b locate.Bounds, count int, aps []sim.AP) ([]geom.Point, error) {
	var out []geom.Point
	margin := 0.8
	if m := math.Min(b.MaxX-b.MinX, b.MaxY-b.MinY) / 4; m < margin {
		margin = m
	}
	const maxAttempts = 50000
	for attempt := 0; attempt < maxAttempts && len(out) < count; attempt++ {
		p := geom.Point{
			X: b.MinX + margin + (b.MaxX-b.MinX-2*margin)*rng.Float64(),
			Y: b.MinY + margin + (b.MaxY-b.MinY-2*margin)*rng.Float64(),
		}
		ok := true
		for _, ap := range aps {
			if p.Dist(ap.Pos) < 1.0 {
				ok = false
				break
			}
		}
		for _, q := range out {
			if p.Dist(q) < 0.5 {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, p)
		}
	}
	if len(out) < count {
		return nil, fmt.Errorf("loadgen: placed only %d of %d positions in %+v (bounds too small?)", len(out), count, b)
	}
	return out, nil
}

// nearestAPs returns the k AP indices closest to p, nearest first.
func nearestAPs(aps []sim.AP, p geom.Point, k int) []int {
	idx := make([]int, len(aps))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return aps[idx[a]].Pos.Dist(p) < aps[idx[b]].Pos.Dist(p)
	})
	out := make([]int, k)
	copy(out, idx[:k])
	return out
}
