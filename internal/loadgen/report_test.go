package loadgen

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"spotfi/internal/obs/slo"
)

func sampleResult() *Result {
	lat := slo.NewDist(latencyBuckets())
	for i := 0; i < 90; i++ {
		lat.Observe(0.02)
	}
	for i := 0; i < 10; i++ {
		lat.Observe(0.8)
	}
	return &Result{
		TotalFixes: 100,
		Phases: []PhaseStats{{
			Phase:    Phase{Name: "soak", Duration: 10 * time.Second, StartRate: 50, EndRate: 50},
			StartNs:  0,
			EndNs:    int64(10 * time.Second),
			Offered:  500,
			Sends:    2000,
			Dropped:  20,
			Fixes:    100,
			Latency:  lat,
			Errors:   []float64{0.5, 1.0, 1.5, 2.0, 4.0},
			Counters: serverCounters{Shed: 100, Delivered: 300},
		}},
	}
}

func TestNewReportDerivation(t *testing.T) {
	opts := ReportOpts{Seed: 1, APs: 6, Targets: 24, Positions: 12, APsPerTarget: 4, Batch: 10, Phases: "soak:10s@50"}
	r := NewReport("run1", "2026-08-08T00:00:00Z", opts, sampleResult())
	if r.Schema != ReportSchema || len(r.Phases) != 1 {
		t.Fatalf("report = %+v", r)
	}
	p := r.Phases[0]
	if p.Seconds != 10 || p.OfferedBursts != 500 || p.OfferedRatePerSec != 50 {
		t.Fatalf("offered stats wrong: %+v", p)
	}
	if p.Fixes != 100 || p.FixRatePerSec != 10 {
		t.Fatalf("fix stats wrong: %+v", p)
	}
	// 90% at 20ms, 10% at 800ms: p50 lands in the 20ms bucket's decade,
	// p99 in the 800ms one.
	if p.LatencyP50Ms <= 1 || p.LatencyP50Ms > 40 {
		t.Fatalf("p50 = %gms, want ~20ms scale", p.LatencyP50Ms)
	}
	if p.LatencyP99Ms <= 200 || p.LatencyP99Ms > 1100 {
		t.Fatalf("p99 = %gms, want ~800ms scale", p.LatencyP99Ms)
	}
	if p.ShedRate != 0.25 {
		t.Fatalf("shed rate = %g, want 0.25", p.ShedRate)
	}
	if p.ErrMedianM != 1.5 {
		t.Fatalf("err median = %g, want 1.5", p.ErrMedianM)
	}
	if p.ErrP90M < 2 || p.ErrP90M > 4 {
		t.Fatalf("err p90 = %g, want in [2,4]", p.ErrP90M)
	}
}

func TestReportFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "LOAD_x.json")
	opts := ReportOpts{Seed: 1, APs: 6, Phases: "p:1s@1"}
	r := NewReport("x", "2026-08-08T00:00:00Z", opts, sampleResult())
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.RunID != "x" || back.Opts != opts || len(back.Phases) != 1 {
		t.Fatalf("round trip lost data: %+v", back)
	}

	// A wrong schema is refused, not misread.
	r.Schema = 99
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadReport(path); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("schema mismatch err = %v", err)
	}
}

func TestCompareReports(t *testing.T) {
	opts := ReportOpts{Seed: 1, APs: 6, Phases: "soak:10s@50"}
	base := NewReport("base", "", opts, sampleResult())

	// Identical run: clean pass.
	if v := CompareReports(base, NewReport("cur", "", opts, sampleResult()), Tolerance{}); len(v) != 0 {
		t.Fatalf("identical run flagged: %v", v)
	}

	// Opts mismatch is a single violation.
	other := NewReport("cur", "", ReportOpts{Seed: 2, APs: 6, Phases: "soak:10s@50"}, sampleResult())
	if v := CompareReports(base, other, Tolerance{}); len(v) != 1 || !strings.Contains(v[0], "opts mismatch") {
		t.Fatalf("opts mismatch → %v", v)
	}

	// Collapse on every axis: fixes gone, latency exploded, shed way up,
	// error way up — each produces its violation.
	bad := NewReport("cur", "", opts, sampleResult())
	bad.Phases[0].Fixes = 0
	v := CompareReports(base, bad, Tolerance{})
	if len(v) != 1 || !strings.Contains(v[0], "no fixes") {
		t.Fatalf("zero fixes → %v", v)
	}

	bad = NewReport("cur", "", opts, sampleResult())
	bad.Phases[0].FixRatePerSec = base.Phases[0].FixRatePerSec / 10
	bad.Phases[0].LatencyP99Ms = base.Phases[0].LatencyP99Ms * 20
	bad.Phases[0].ShedRate = base.Phases[0].ShedRate + 0.5
	bad.Phases[0].ErrMedianM = base.Phases[0].ErrMedianM + 10
	v = CompareReports(base, bad, Tolerance{})
	for _, want := range []string{"fix rate", "latency p99", "shed rate", "err median"} {
		found := false
		for _, s := range v {
			if strings.Contains(s, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("regression on %q not flagged; got %v", want, v)
		}
	}

	// A baseline phase missing from the current run is a coverage loss.
	empty := NewReport("cur", "", opts, &Result{})
	if v := CompareReports(base, empty, Tolerance{}); len(v) != 1 || !strings.Contains(v[0], "missing") {
		t.Fatalf("missing phase → %v", v)
	}

	// Improvements never fail.
	better := NewReport("cur", "", opts, sampleResult())
	better.Phases[0].FixRatePerSec *= 2
	better.Phases[0].LatencyP99Ms /= 5
	better.Phases[0].ShedRate = 0
	better.Phases[0].ErrMedianM /= 2
	better.Phases[0].ErrP90M /= 2
	if v := CompareReports(base, better, Tolerance{}); len(v) != 0 {
		t.Fatalf("improvement flagged: %v", v)
	}
}
