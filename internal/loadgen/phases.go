package loadgen

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Phase is one segment of the load schedule: a steady rate, or a linear
// ramp from StartRate to EndRate over Duration. Rates are bursts per
// second; each burst is Batch packets from each of APsPerTarget APs.
type Phase struct {
	Name      string
	Duration  time.Duration
	StartRate float64
	EndRate   float64
}

// rateAt returns the offered rate the given time into the phase.
func (p Phase) rateAt(into time.Duration) float64 {
	//lint:allow floateq a steady phase is parsed with StartRate and EndRate set from the same token, so identity is exact
	if p.Duration <= 0 || p.StartRate == p.EndRate {
		return p.StartRate
	}
	frac := float64(into) / float64(p.Duration)
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	return p.StartRate + frac*(p.EndRate-p.StartRate)
}

// ParsePhases parses a schedule spec: comma-separated phases of the form
// "name:duration@rate" (steady) or "name:duration@start..end" (linear
// ramp), e.g. "warm:5s@10,ramp:10s@10..80,soak:10s@120".
func ParsePhases(s string) ([]Phase, error) {
	var out []Phase
	seen := map[string]bool{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, rest, ok := strings.Cut(part, ":")
		if !ok || name == "" {
			return nil, fmt.Errorf("loadgen: phase %q: want name:duration@rate", part)
		}
		durStr, rateStr, ok := strings.Cut(rest, "@")
		if !ok {
			return nil, fmt.Errorf("loadgen: phase %q: want name:duration@rate", part)
		}
		dur, err := time.ParseDuration(durStr)
		if err != nil {
			return nil, fmt.Errorf("loadgen: phase %q: bad duration: %v", part, err)
		}
		if dur <= 0 {
			return nil, fmt.Errorf("loadgen: phase %q: duration must be positive", part)
		}
		ph := Phase{Name: name, Duration: dur}
		if lo, hi, ramp := strings.Cut(rateStr, ".."); ramp {
			if ph.StartRate, err = parseRate(part, lo); err != nil {
				return nil, err
			}
			if ph.EndRate, err = parseRate(part, hi); err != nil {
				return nil, err
			}
		} else {
			if ph.StartRate, err = parseRate(part, rateStr); err != nil {
				return nil, err
			}
			ph.EndRate = ph.StartRate
		}
		if seen[name] {
			return nil, fmt.Errorf("loadgen: duplicate phase name %q", name)
		}
		seen[name] = true
		out = append(out, ph)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("loadgen: empty phase schedule %q", s)
	}
	return out, nil
}

func parseRate(phase, s string) (float64, error) {
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return 0, fmt.Errorf("loadgen: phase %q: bad rate %q: %v", phase, s, err)
	}
	if v < 0 {
		return 0, fmt.Errorf("loadgen: phase %q: negative rate %g", phase, v)
	}
	return v, nil
}

// FormatPhases renders phases back into the spec syntax ParsePhases
// accepts — the canonical form recorded in report opts.
func FormatPhases(ps []Phase) string {
	parts := make([]string, len(ps))
	for i, p := range ps {
		//lint:allow floateq steady vs ramp formatting keys on the same parsed-token identity as rateAt
		if p.StartRate == p.EndRate {
			parts[i] = fmt.Sprintf("%s:%s@%g", p.Name, p.Duration, p.StartRate)
		} else {
			parts[i] = fmt.Sprintf("%s:%s@%g..%g", p.Name, p.Duration, p.StartRate, p.EndRate)
		}
	}
	return strings.Join(parts, ",")
}
