package loadgen

import (
	"bytes"
	"testing"

	"spotfi/internal/wire"
)

// TestPatchedFramesDecode is the layout contract: a pre-encoded payload
// patched with a fresh seq, timestamp, and MAC must decode through the
// real wire codec into exactly that seq, timestamp, and MAC — with the
// CSI and AP identity untouched. If the wire layout ever shifts, this
// fails before a load run silently corrupts traffic.
func TestPatchedFramesDecode(t *testing.T) {
	s, err := NewScene(SceneConfig{Seed: 11, APs: 4, Targets: 6, Positions: 3, APsPerTarget: 3, Batch: 2})
	if err != nil {
		t.Fatal(err)
	}
	enc, err := NewEncoder(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc.Header()) != 9 {
		t.Fatalf("frame header is %d bytes, want 9", len(enc.Header()))
	}

	seq := uint64(0)
	for p := range s.Positions {
		for _, a := range s.APsForPos(p) {
			payloads := enc.Payloads(a, p)
			if len(payloads) != s.Cfg.Batch {
				t.Fatalf("AP %d pos %d: %d payloads, want %d", a, p, len(payloads), s.Cfg.Batch)
			}
			for k, payload := range payloads {
				seq++
				tsNs := int64(1_700_000_000_000_000_000) + int64(seq)
				mac := s.MAC(p*7 + k)
				if err := PatchPayload(payload, seq, tsNs, mac); err != nil {
					t.Fatal(err)
				}

				// Reassemble header+payload and push it through the real
				// reader + decoder.
				var buf bytes.Buffer
				buf.Write(enc.Header())
				buf.Write(payload)
				fr, err := wire.ReadFrame(&buf)
				if err != nil {
					t.Fatalf("AP %d pos %d pkt %d: ReadFrame: %v", a, p, k, err)
				}
				pkt, err := wire.DecodeCSIReport(fr)
				if err != nil {
					t.Fatalf("AP %d pos %d pkt %d: DecodeCSIReport: %v", a, p, k, err)
				}
				if pkt.APID != a {
					t.Fatalf("decoded APID %d, want %d", pkt.APID, a)
				}
				if pkt.Seq != seq {
					t.Fatalf("decoded Seq %d, want %d", pkt.Seq, seq)
				}
				if pkt.TimestampNs != tsNs {
					t.Fatalf("decoded TimestampNs %d, want %d", pkt.TimestampNs, tsNs)
				}
				if pkt.TargetMAC != mac {
					t.Fatalf("decoded MAC %q, want %q", pkt.TargetMAC, mac)
				}
				if pkt.CSI.Antennas() == 0 || pkt.CSI.Subcarriers() == 0 {
					t.Fatal("decoded CSI is empty")
				}
			}
		}
	}
}

// TestUnassignedPayloadsNil: APs not covering a position have no frames
// for it.
func TestUnassignedPayloadsNil(t *testing.T) {
	s, err := NewScene(SceneConfig{Seed: 2, APs: 6, Targets: 4, Positions: 4, APsPerTarget: 2, Batch: 1})
	if err != nil {
		t.Fatal(err)
	}
	enc, err := NewEncoder(s)
	if err != nil {
		t.Fatal(err)
	}
	for p := range s.Positions {
		assigned := map[int]bool{}
		for _, a := range s.APsForPos(p) {
			assigned[a] = true
		}
		for a := range s.APs {
			got := enc.Payloads(a, p)
			if assigned[a] && got == nil {
				t.Fatalf("AP %d pos %d assigned but has no payloads", a, p)
			}
			if !assigned[a] && got != nil {
				t.Fatalf("AP %d pos %d not assigned but has payloads", a, p)
			}
		}
	}
}

func TestPatchPayloadRejectsBadInput(t *testing.T) {
	if err := PatchPayload(make([]byte, 100), 1, 2, "02:00:00:00:00:00"); err != nil {
		t.Fatalf("valid patch rejected: %v", err)
	}
	if err := PatchPayload(make([]byte, 10), 1, 2, "02:00:00:00:00:00"); err == nil {
		t.Fatal("short payload accepted")
	}
	if err := PatchPayload(make([]byte, 100), 1, 2, "short"); err == nil {
		t.Fatal("short MAC accepted")
	}
}
