package loadgen

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"

	"spotfi/internal/rf"
	"spotfi/internal/sim"
	"spotfi/internal/wire"
)

// CSI-report payload offsets, fixed by the wire encoding (little-endian,
// packed): APID i32 @0, Seq u64 @4, TimestampNs i64 @12, RSSI f64 @20,
// MACLen u16 @28, Antennas u16 @30, Subcarriers u16 @32, MAC @34.
// frames_test.go cross-checks patched payloads against wire.DecodeCSIReport
// so drift in the wire layout fails loudly here instead of corrupting runs.
const (
	payloadOffSeq       = 4
	payloadOffTimestamp = 12
	payloadOffMAC       = 34
	// targetMACLen is the byte length of every TargetMAC string; all
	// generator MACs share it, so MAC patching never resizes the payload.
	targetMACLen = 17
)

// Encoder holds pre-encoded CSI-report frame payloads for every
// (AP, position) link the scene uses. Synthesizing and serializing CSI is
// far more expensive than sending it; doing it once up front keeps the
// generator's send path cheap enough to drive the server into overload
// from a single process. Per send, only the sequence number, timestamp,
// and MAC are patched in place.
type Encoder struct {
	scene *Scene
	// payloads[a][p] is the batch of frame payloads for AP a at position
	// p, nil when AP a is not assigned to p. Payloads are mutated in
	// place by PatchPayload; each AP's sender goroutine is the only
	// writer of its own payloads.
	payloads [][][][]byte
	// header is the 9-byte frame header shared by every payload (all
	// payloads have identical length: same CSI dims, same MAC length).
	header     []byte
	payloadLen int
}

// NewEncoder synthesizes and pre-encodes the scene's frame templates.
func NewEncoder(s *Scene) (*Encoder, error) {
	band := rf.DefaultBand()
	array := rf.DefaultArray(band)
	imp := sim.DefaultImpairments()
	linkCfg := sim.DefaultLinkConfig()
	mac := s.MAC(0)
	if len(mac) != targetMACLen {
		return nil, fmt.Errorf("loadgen: template MAC %q has length %d, want %d", mac, len(mac), targetMACLen)
	}

	e := &Encoder{scene: s, payloads: make([][][][]byte, len(s.APs))}
	for a := range s.APs {
		e.payloads[a] = make([][][]byte, len(s.Positions))
	}
	for p := range s.Positions {
		for _, a := range s.apsForPos[p] {
			link := sim.NewLink(s.Env, s.APs[a], s.Positions[p], linkCfg,
				rand.New(rand.NewSource(mix(s.Cfg.Seed, a, p))))
			syn, err := sim.NewSynthesizer(link, band, array, imp,
				rand.New(rand.NewSource(mix(s.Cfg.Seed+1, a, p))))
			if err != nil {
				return nil, fmt.Errorf("loadgen: AP%d→pos%d: %w", a, p, err)
			}
			pkts := syn.Burst(mac, s.Cfg.Batch)
			batch := make([][]byte, len(pkts))
			for k, pkt := range pkts {
				f, err := wire.EncodeCSIReport(pkt)
				if err != nil {
					return nil, fmt.Errorf("loadgen: encode AP%d→pos%d: %w", a, p, err)
				}
				if e.payloadLen == 0 {
					e.payloadLen = len(f.Payload)
					// Let the wire package build the frame header once so
					// it stays the single source of truth for the framing.
					var buf bytes.Buffer
					if err := wire.WriteFrame(&buf, f); err != nil {
						return nil, err
					}
					e.header = append([]byte(nil), buf.Bytes()[:buf.Len()-e.payloadLen]...)
				} else if len(f.Payload) != e.payloadLen {
					return nil, fmt.Errorf("loadgen: payload length %d != %d — CSI dims not uniform", len(f.Payload), e.payloadLen)
				}
				batch[k] = f.Payload
			}
			e.payloads[a][p] = batch
		}
	}
	return e, nil
}

// Payloads returns AP a's pre-encoded batch for position p (nil when the
// AP is not assigned there). The returned slices are the live templates:
// callers patch and write them, one goroutine per AP.
func (e *Encoder) Payloads(a, p int) [][]byte { return e.payloads[a][p] }

// Header returns the frame header every payload shares.
func (e *Encoder) Header() []byte { return e.header }

// PatchPayload stamps seq, the capture timestamp, and the target MAC
// into a pre-encoded payload in place.
func PatchPayload(payload []byte, seq uint64, tsNs int64, mac string) error {
	if len(mac) != targetMACLen {
		return fmt.Errorf("loadgen: MAC %q has length %d, want %d", mac, len(mac), targetMACLen)
	}
	if len(payload) < payloadOffMAC+targetMACLen {
		return fmt.Errorf("loadgen: payload of %d bytes too short to patch", len(payload))
	}
	binary.LittleEndian.PutUint64(payload[payloadOffSeq:], seq)
	binary.LittleEndian.PutUint64(payload[payloadOffTimestamp:], uint64(tsNs))
	copy(payload[payloadOffMAC:], mac)
	return nil
}
