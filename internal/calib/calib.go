// Package calib estimates and removes per-antenna phase calibration
// offsets. Commodity NICs have unknown static phase offsets between RF
// chains that bias every AoA estimate (the problem Phaser, MobiCom'14, is
// built around); SpotFi-style deployments calibrate them once using a
// beacon at a known bearing. This package implements that procedure on
// CSI bursts.
package calib

import (
	"fmt"
	"math"
	"math/cmplx"

	"spotfi/internal/csi"
	"spotfi/internal/music"
	"spotfi/internal/rf"
)

// Offsets are per-antenna phase corrections in radians, relative to
// antenna 0 (Offsets[0] == 0).
type Offsets []float64

// Estimate computes per-antenna phase offsets from bursts received from a
// beacon whose AoA at the AP is known (a strongly line-of-sight
// placement). The model is measured[m][n] = e^{jδ_m}·ideal[m][n]; with a
// dominant direct path the ideal inter-antenna factor is Φ(knownAoA), so
//
//	δ_{m+1} − δ_m = arg Σ_{pkts,n} csi[m+1][n]·conj(csi[m][n]) − arg Φ(knownAoA).
//
// The sum is power-weighted, so faded subcarriers and weak packets
// contribute little. At least one packet is required.
func Estimate(bursts []*csi.Packet, knownAoA float64, band rf.Band, array rf.Array) (Offsets, error) {
	if err := band.Validate(); err != nil {
		return nil, err
	}
	if err := array.Validate(); err != nil {
		return nil, err
	}
	if len(bursts) == 0 {
		return nil, fmt.Errorf("calib: no calibration packets")
	}
	m := array.Antennas
	acc := make([]complex128, m-1)
	used := 0
	for _, p := range bursts {
		if p == nil || p.CSI == nil {
			continue
		}
		if p.CSI.Antennas() != m || p.CSI.Subcarriers() != band.Subcarriers {
			return nil, fmt.Errorf("calib: packet CSI is %dx%d, want %dx%d",
				p.CSI.Antennas(), p.CSI.Subcarriers(), m, band.Subcarriers)
		}
		if err := p.CSI.Validate(); err != nil {
			continue
		}
		for a := 0; a < m-1; a++ {
			for n := 0; n < band.Subcarriers; n++ {
				acc[a] += p.CSI.Values[a+1][n] * cmplx.Conj(p.CSI.Values[a][n])
			}
		}
		used++
	}
	if used == 0 {
		return nil, fmt.Errorf("calib: no usable calibration packets")
	}
	ideal := music.Phi(knownAoA, array, band)
	idealArg := cmplx.Phase(ideal)

	out := make(Offsets, m)
	for a := 0; a < m-1; a++ {
		if acc[a] == 0 {
			return nil, fmt.Errorf("calib: zero cross-power between antennas %d and %d", a, a+1)
		}
		step := cmplx.Phase(acc[a]) - idealArg
		// Offsets chain: δ_{a+1} = δ_a + step, wrapped to (−π, π].
		out[a+1] = wrap(out[a] + step)
	}
	return out, nil
}

// Apply removes the offsets from a CSI matrix in place: each antenna row m
// is multiplied by e^{−jδ_m}.
func Apply(c *csi.Matrix, off Offsets) error {
	if c == nil {
		return fmt.Errorf("calib: nil CSI")
	}
	if len(off) != c.Antennas() {
		return fmt.Errorf("calib: %d offsets for %d antennas", len(off), c.Antennas())
	}
	for m := range c.Values {
		rot := cmplx.Exp(complex(0, -off[m]))
		for n := range c.Values[m] {
			c.Values[m][n] *= rot
		}
	}
	return nil
}

// ApplyBurst corrects every packet of a burst in place.
func ApplyBurst(pkts []*csi.Packet, off Offsets) error {
	for _, p := range pkts {
		if p == nil || p.CSI == nil {
			return fmt.Errorf("calib: nil packet in burst")
		}
		if err := Apply(p.CSI, off); err != nil {
			return err
		}
	}
	return nil
}

// MaxAbs returns the largest |offset| in radians — a quick health metric
// for how far out of calibration an AP is.
func (o Offsets) MaxAbs() float64 {
	var m float64
	for _, v := range o {
		m = math.Max(m, math.Abs(v))
	}
	return m
}

// wrap maps an angle into (−π, π] in closed form; repeated ±2π
// subtraction would compound rounding error per step.
func wrap(a float64) float64 {
	a = math.Mod(a, 2*math.Pi) // exact: Mod introduces no rounding error
	if a > math.Pi {
		a -= 2 * math.Pi
	} else if a <= -math.Pi {
		a += 2 * math.Pi
	}
	return a
}
