package calib

import (
	"math"
	"math/rand"
	"testing"

	"spotfi/internal/csi"
	"spotfi/internal/geom"
	"spotfi/internal/music"
	"spotfi/internal/rf"
	"spotfi/internal/sim"
)

// beaconBurst synthesizes calibration packets: a LoS-only beacon in front
// of an AP whose antennas carry the given fixed phase offsets.
func beaconBurst(t *testing.T, offsets []float64, beacon geom.Point, ap sim.AP, n int, seed int64) ([]*csi.Packet, float64) {
	t.Helper()
	band := rf.DefaultBand()
	array := rf.DefaultArray(band)
	env := &sim.Environment{}
	rng := rand.New(rand.NewSource(seed))
	link := sim.NewLink(env, ap, beacon, sim.DefaultLinkConfig(), rng)
	imp := sim.DefaultImpairments()
	imp.AntennaPhaseOffsetsRad = offsets
	syn, err := sim.NewSynthesizer(link, band, array, imp, rng)
	if err != nil {
		t.Fatal(err)
	}
	return syn.Burst("beacon", n), ap.AoATo(beacon)
}

func TestEstimateRecoversOffsets(t *testing.T) {
	truth := []float64{0, 0.25, -0.4}
	ap := sim.AP{Pos: geom.Point{X: 0, Y: 0}, NormalAngle: 0}
	burst, knownAoA := beaconBurst(t, truth, geom.Point{X: 3, Y: 0.5}, ap, 20, 41)
	band := rf.DefaultBand()
	array := rf.DefaultArray(band)
	got, err := Estimate(burst, knownAoA, band, array)
	if err != nil {
		t.Fatal(err)
	}
	for m := range truth {
		// Offsets are relative to antenna 0.
		want := truth[m] - truth[0]
		if d := math.Abs(wrap(got[m] - want)); d > 0.04 {
			t.Fatalf("offset %d = %.3f rad, want %.3f (err %.3f)", m, got[m], want, d)
		}
	}
}

func TestApplyRestoresAoAAccuracy(t *testing.T) {
	// Miscalibrated AP: large offsets bias the AoA estimate; after
	// calibration the bias is gone.
	truth := []float64{0, 0.5, -0.6}
	ap := sim.AP{Pos: geom.Point{X: 0, Y: 0}, NormalAngle: 0}
	band := rf.DefaultBand()
	array := rf.DefaultArray(band)

	// Calibration beacon straight ahead.
	calBurst, knownAoA := beaconBurst(t, truth, geom.Point{X: 2, Y: 0}, ap, 20, 42)
	off, err := Estimate(calBurst, knownAoA, band, array)
	if err != nil {
		t.Fatal(err)
	}

	// A different target seen by the same (mis)calibrated hardware.
	targetBurst, targetAoA := beaconBurst(t, truth, geom.Point{X: 4, Y: 3}, ap, 5, 43)
	est, err := music.NewAoAEstimator(music.DefaultAoAParams())
	if err != nil {
		t.Fatal(err)
	}

	errAt := func(c *csi.Matrix) float64 {
		paths, err := est.EstimatePaths(c)
		if err != nil || len(paths) == 0 {
			t.Fatal("estimation failed")
		}
		return math.Abs(paths[0].AoA - targetAoA)
	}

	raw := errAt(targetBurst[0].CSI.Clone())
	fixed := targetBurst[0].CSI.Clone()
	if err := Apply(fixed, off); err != nil {
		t.Fatal(err)
	}
	corrected := errAt(fixed)
	t.Logf("AoA error: raw %.1f°, calibrated %.1f°", geom.Deg(raw), geom.Deg(corrected))
	if corrected > raw/2 {
		t.Fatalf("calibration did not help: raw %.2f°, corrected %.2f°",
			geom.Deg(raw), geom.Deg(corrected))
	}
	if geom.Deg(corrected) > 2 {
		t.Fatalf("corrected AoA error %.2f° too large", geom.Deg(corrected))
	}
}

func TestApplyBurst(t *testing.T) {
	truth := []float64{0, 0.3, -0.3}
	ap := sim.AP{Pos: geom.Point{X: 0, Y: 0}, NormalAngle: 0}
	burst, _ := beaconBurst(t, truth, geom.Point{X: 2, Y: 0}, ap, 3, 44)
	off := Offsets{0, 0.3, -0.3}
	if err := ApplyBurst(burst, off); err != nil {
		t.Fatal(err)
	}
	if err := ApplyBurst([]*csi.Packet{nil}, off); err == nil {
		t.Fatal("nil packet accepted")
	}
}

func TestEstimateErrors(t *testing.T) {
	band := rf.DefaultBand()
	array := rf.DefaultArray(band)
	if _, err := Estimate(nil, 0, band, array); err == nil {
		t.Fatal("empty bursts accepted")
	}
	wrong := &csi.Packet{TargetMAC: "x", RSSIdBm: -40, CSI: csi.NewMatrix(2, 30)}
	if _, err := Estimate([]*csi.Packet{wrong}, 0, band, array); err == nil {
		t.Fatal("wrong-shape CSI accepted")
	}
	zero := &csi.Packet{TargetMAC: "x", RSSIdBm: -40, CSI: csi.NewMatrix(3, 30)}
	if _, err := Estimate([]*csi.Packet{zero}, 0, band, array); err == nil {
		t.Fatal("all-zero CSI accepted")
	}
	badBand := band
	badBand.Subcarriers = 0
	if _, err := Estimate([]*csi.Packet{zero}, 0, badBand, array); err == nil {
		t.Fatal("invalid band accepted")
	}
}

func TestApplyErrors(t *testing.T) {
	if err := Apply(nil, Offsets{0}); err == nil {
		t.Fatal("nil CSI accepted")
	}
	if err := Apply(csi.NewMatrix(3, 30), Offsets{0, 1}); err == nil {
		t.Fatal("offset length mismatch accepted")
	}
}

func TestMaxAbs(t *testing.T) {
	if (Offsets{0, 0.2, -0.7}).MaxAbs() != 0.7 {
		t.Fatal("MaxAbs wrong")
	}
	if (Offsets{}).MaxAbs() != 0 {
		t.Fatal("empty MaxAbs wrong")
	}
}

func TestWrap(t *testing.T) {
	if w := wrap(3 * math.Pi); math.Abs(w-math.Pi) > 1e-12 {
		t.Fatalf("wrap(3π) = %v", w)
	}
	if w := wrap(-3 * math.Pi); math.Abs(w-math.Pi) > 1e-12 {
		t.Fatalf("wrap(−3π) = %v", w)
	}
}
