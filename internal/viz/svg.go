// Package viz renders the evaluation's figures: CDF line plots as
// standalone SVG documents (the format of the paper's Figs. 7–9) and MUSIC
// pseudo-spectrum heatmaps, plus compact ASCII fallbacks for terminals.
// Everything is generated from scratch — no external plotting stack.
package viz

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Series is one labeled curve.
type Series struct {
	Label string
	// X and Y are same-length coordinate slices.
	X, Y []float64
}

// LinePlot describes an SVG line chart.
type LinePlot struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// Width and Height are the SVG canvas size in px (0 = 640×400).
	Width, Height int
}

// palette holds distinguishable stroke colors (colorblind-safe-ish).
var palette = []string{
	"#1b6ca8", "#d1495b", "#66a182", "#edae49", "#775bb5", "#2e4057",
}

// CDFPlot builds a LinePlot from labeled sample sets: each series becomes
// its empirical CDF curve, the standard presentation of localization
// error. Non-finite samples (NaN, ±Inf) are dropped — a failed pipeline
// run marks its error NaN, and one such value must not blank the whole
// figure; a series left with no finite samples is skipped.
func CDFPlot(title, xlabel string, labels []string, samples [][]float64) (*LinePlot, error) {
	if len(labels) != len(samples) || len(labels) == 0 {
		return nil, fmt.Errorf("viz: labels/samples mismatch")
	}
	p := &LinePlot{Title: title, XLabel: xlabel, YLabel: "CDF"}
	for i, lab := range labels {
		xs := make([]float64, 0, len(samples[i]))
		for _, x := range samples[i] {
			if finite(x) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			continue
		}
		sort.Float64s(xs)
		n := len(xs)
		sx := make([]float64, 0, n+1)
		sy := make([]float64, 0, n+1)
		sx = append(sx, xs[0])
		sy = append(sy, 0)
		for j, x := range xs {
			sx = append(sx, x)
			sy = append(sy, float64(j+1)/float64(n))
		}
		p.Series = append(p.Series, Series{Label: lab, X: sx, Y: sy})
	}
	if len(p.Series) == 0 {
		return nil, fmt.Errorf("viz: all series empty")
	}
	return p, nil
}

// SVG renders the plot as a standalone SVG document.
func (p *LinePlot) SVG() string {
	w, h := p.Width, p.Height
	if w <= 0 {
		w = 640
	}
	if h <= 0 {
		h = 400
	}
	const mLeft, mRight, mTop, mBottom = 60, 20, 36, 46
	plotW := float64(w - mLeft - mRight)
	plotH := float64(h - mTop - mBottom)

	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range p.Series {
		for i := range s.X {
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, s.Y[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	//lint:allow floateq degenerate-range guard: avoids dividing by a zero span
	if !finite(minX) || !finite(maxX) || minX == maxX {
		maxX = minX + 1
	}
	//lint:allow floateq degenerate-range guard: avoids dividing by a zero span
	if !finite(minY) || !finite(maxY) || minY == maxY {
		maxY = minY + 1
	}

	px := func(x float64) float64 { return float64(mLeft) + (x-minX)/(maxX-minX)*plotW }
	py := func(y float64) float64 { return float64(mTop) + (1-(y-minY)/(maxY-minY))*plotH }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n", w, h, w, h)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	fmt.Fprintf(&b, `<text x="%d" y="20" font-family="sans-serif" font-size="14" font-weight="bold">%s</text>`+"\n", mLeft, escape(p.Title))

	// Axes and grid (5 ticks each).
	for i := 0; i <= 5; i++ {
		fx := minX + (maxX-minX)*float64(i)/5
		fy := minY + (maxY-minY)*float64(i)/5
		x := px(fx)
		y := py(fy)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%.1f" stroke="#ddd"/>`+"\n", x, mTop, x, float64(mTop)+plotH)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#ddd"/>`+"\n", mLeft, y, float64(mLeft)+plotW, y)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="10" text-anchor="middle">%s</text>`+"\n",
			x, float64(mTop)+plotH+14, fmtTick(fx))
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="10" text-anchor="end">%s</text>`+"\n",
			float64(mLeft)-6, y+3, fmtTick(fy))
	}
	fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%.1f" height="%.1f" fill="none" stroke="#333"/>`+"\n", mLeft, mTop, plotW, plotH)
	fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="12" text-anchor="middle">%s</text>`+"\n",
		float64(mLeft)+plotW/2, h-8, escape(p.XLabel))
	fmt.Fprintf(&b, `<text x="14" y="%.1f" font-family="sans-serif" font-size="12" text-anchor="middle" transform="rotate(-90 14 %.1f)">%s</text>`+"\n",
		float64(mTop)+plotH/2, float64(mTop)+plotH/2, escape(p.YLabel))

	// Curves.
	for i, s := range p.Series {
		color := palette[i%len(palette)]
		var pts []string
		for j := range s.X {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", px(s.X[j]), py(s.Y[j])))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`+"\n",
			strings.Join(pts, " "), color)
		// Legend entry.
		ly := mTop + 14 + 16*i
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="3"/>`+"\n",
			mLeft+10, ly, mLeft+34, ly, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="11">%s</text>`+"\n",
			mLeft+40, ly+4, escape(s.Label))
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// ASCII renders a compact terminal view of the plot (one row per series:
// a sparkline of Y over the common X range).
func (p *LinePlot) ASCII(width int) string {
	if width < 16 {
		width = 16
	}
	marks := []rune("▁▂▃▄▅▆▇█")
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", p.Title)
	for _, s := range p.Series {
		if len(s.X) == 0 {
			continue
		}
		minX, maxX := s.X[0], s.X[len(s.X)-1]
		row := make([]rune, width)
		for c := 0; c < width; c++ {
			x := minX + (maxX-minX)*float64(c)/float64(width-1)
			y := interp(s.X, s.Y, x)
			idx := int(y * float64(len(marks)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(marks) {
				idx = len(marks) - 1
			}
			row[c] = marks[idx]
		}
		fmt.Fprintf(&b, "%-24s %s\n", s.Label, string(row))
	}
	return b.String()
}

func interp(xs, ys []float64, x float64) float64 {
	n := len(xs)
	if x <= xs[0] {
		return ys[0]
	}
	if x >= xs[n-1] {
		return ys[n-1]
	}
	i := sort.SearchFloat64s(xs, x)
	if i == 0 {
		return ys[0]
	}
	x0, x1 := xs[i-1], xs[i]
	if x1 == x0 { //lint:allow floateq duplicate-knot guard before dividing by (x1-x0)
		return ys[i]
	}
	f := (x - x0) / (x1 - x0)
	return ys[i-1]*(1-f) + ys[i]*f
}

func fmtTick(v float64) string {
	a := math.Abs(v)
	switch {
	case a >= 100 || a == 0:
		return fmt.Sprintf("%.0f", v)
	case a >= 1:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}

func finite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }
