package viz

import (
	"math"
	"strings"
	"testing"
)

func TestCDFPlotBuildsMonotoneCurves(t *testing.T) {
	p, err := CDFPlot("test", "error (m)", []string{"a", "b"},
		[][]float64{{3, 1, 2}, {0.5, 0.7}})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Series) != 2 {
		t.Fatalf("series = %d", len(p.Series))
	}
	for _, s := range p.Series {
		for i := 1; i < len(s.X); i++ {
			if s.X[i] < s.X[i-1] || s.Y[i] < s.Y[i-1] {
				t.Fatalf("non-monotone CDF curve in %s", s.Label)
			}
		}
		if s.Y[len(s.Y)-1] != 1 {
			t.Fatalf("CDF does not end at 1")
		}
	}
}

func TestCDFPlotErrors(t *testing.T) {
	if _, err := CDFPlot("t", "x", []string{"a"}, nil); err == nil {
		t.Fatal("mismatch accepted")
	}
	if _, err := CDFPlot("t", "x", nil, nil); err == nil {
		t.Fatal("empty accepted")
	}
	if _, err := CDFPlot("t", "x", []string{"a"}, [][]float64{{}}); err == nil {
		t.Fatal("all-empty series accepted")
	}
	// All-NaN is as empty as empty.
	if _, err := CDFPlot("t", "x", []string{"a"}, [][]float64{{math.NaN(), math.NaN()}}); err == nil {
		t.Fatal("all-NaN series accepted")
	}
}

func TestCDFPlotSingleSample(t *testing.T) {
	p, err := CDFPlot("t", "x", []string{"a"}, [][]float64{{2.5}})
	if err != nil {
		t.Fatal(err)
	}
	s := p.Series[0]
	// One sample still yields a curve: a step from (2.5, 0) to (2.5, 1).
	if len(s.X) != 2 || s.X[0] != 2.5 || s.X[1] != 2.5 || s.Y[0] != 0 || s.Y[1] != 1 {
		t.Fatalf("single-sample curve = X%v Y%v", s.X, s.Y)
	}
	// And the degenerate X range must still render.
	if svg := p.SVG(); !strings.Contains(svg, "<polyline") {
		t.Fatal("single-sample plot did not render a curve")
	}
}

func TestCDFPlotDropsNonFinite(t *testing.T) {
	p, err := CDFPlot("t", "x", []string{"good", "poisoned", "dead"},
		[][]float64{
			{1, 2},
			{math.NaN(), 0.5, math.Inf(1), 1.5, math.Inf(-1)},
			{math.NaN(), math.Inf(1)},
		})
	if err != nil {
		t.Fatal(err)
	}
	// The all-non-finite series is skipped, like an empty one.
	if len(p.Series) != 2 {
		t.Fatalf("series = %d, want 2 (dead series dropped)", len(p.Series))
	}
	poisoned := p.Series[1]
	if poisoned.Label != "poisoned" {
		t.Fatalf("series[1] = %q", poisoned.Label)
	}
	// Only the two finite samples survive: lead-in point + two steps.
	if len(poisoned.X) != 3 {
		t.Fatalf("poisoned curve has %d points, want 3: %v", len(poisoned.X), poisoned.X)
	}
	for i, x := range poisoned.X {
		if !finite(x) || !finite(poisoned.Y[i]) {
			t.Fatalf("non-finite leaked into curve: X%v Y%v", poisoned.X, poisoned.Y)
		}
	}
	if poisoned.Y[len(poisoned.Y)-1] != 1 {
		t.Fatal("CDF of surviving samples does not end at 1")
	}
	// The rendered SVG must be NaN-free.
	if svg := p.SVG(); strings.Contains(svg, "NaN") {
		t.Fatal("NaN leaked into SVG output")
	}
}

func TestLinePlotSVGWellFormed(t *testing.T) {
	p, err := CDFPlot("localization error", "m", []string{"spotfi", "arraytrack"},
		[][]float64{{0.2, 0.4, 0.9, 1.5}, {1.1, 1.8, 3.2, 4.0}})
	if err != nil {
		t.Fatal(err)
	}
	svg := p.SVG()
	for _, want := range []string{"<svg", "</svg>", "polyline", "spotfi", "arraytrack", "localization error"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
	if strings.Count(svg, "<polyline") != 2 {
		t.Fatalf("want 2 polylines, got %d", strings.Count(svg, "<polyline"))
	}
	// Balanced document.
	if strings.Count(svg, "<svg") != strings.Count(svg, "</svg>") {
		t.Fatal("unbalanced svg tags")
	}
}

func TestLinePlotSVGEscapesLabels(t *testing.T) {
	p := &LinePlot{
		Title:  "a < b & c",
		Series: []Series{{Label: "<script>", X: []float64{0, 1}, Y: []float64{0, 1}}},
	}
	svg := p.SVG()
	if strings.Contains(svg, "<script>") {
		t.Fatal("label not escaped")
	}
	if !strings.Contains(svg, "&lt;script&gt;") {
		t.Fatal("escaped label missing")
	}
}

func TestLinePlotDegenerateRange(t *testing.T) {
	p := &LinePlot{Series: []Series{{Label: "flat", X: []float64{1, 1}, Y: []float64{2, 2}}}}
	svg := p.SVG()
	if strings.Contains(svg, "NaN") {
		t.Fatal("degenerate range produced NaN coordinates")
	}
}

func TestLinePlotASCII(t *testing.T) {
	p, err := CDFPlot("t", "x", []string{"a"}, [][]float64{{1, 2, 3, 4, 5}})
	if err != nil {
		t.Fatal(err)
	}
	out := p.ASCII(32)
	if !strings.Contains(out, "a") {
		t.Fatal("ASCII missing label")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("ASCII lines = %d", len(lines))
	}
}

func TestHeatmapSVG(t *testing.T) {
	h := &Heatmap{
		Title:  "MUSIC spectrum",
		XLabel: "ToF (ns)",
		YLabel: "AoA (deg)",
		X:      []float64{-200, 200},
		Y:      []float64{-90, 90},
		Z: [][]float64{
			{1, 2, 3},
			{4, 50, 6},
			{7, 8, 9},
		},
		LogScale: true,
	}
	svg, err := h.SVG()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(svg, "<svg") || !strings.Contains(svg, "MUSIC spectrum") {
		t.Fatal("heatmap SVG malformed")
	}
	if strings.Count(svg, "<rect") < 9 {
		t.Fatalf("want ≥9 cells, got %d rects", strings.Count(svg, "<rect"))
	}
	if strings.Contains(svg, "NaN") {
		t.Fatal("NaN in SVG output")
	}
}

func TestHeatmapErrors(t *testing.T) {
	if _, err := (&Heatmap{}).SVG(); err == nil {
		t.Fatal("empty heatmap accepted")
	}
	ragged := &Heatmap{Z: [][]float64{{1, 2}, {3}}}
	if _, err := ragged.SVG(); err == nil {
		t.Fatal("ragged heatmap accepted")
	}
}

func TestHeatmapASCII(t *testing.T) {
	h := &Heatmap{Title: "t", Z: [][]float64{{0, 1}, {2, 3}}}
	out := h.ASCII(10, 10)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 { // title + 2 rows
		t.Fatalf("ASCII lines = %d:\n%s", len(lines), out)
	}
}

func TestColorRampEndpoints(t *testing.T) {
	if colorRamp(0) == colorRamp(1) {
		t.Fatal("ramp endpoints identical")
	}
	if c := colorRamp(math.NaN()); c != colorRamp(0) {
		t.Fatalf("NaN should map to 0: %s", c)
	}
	if colorRamp(-5) != colorRamp(0) || colorRamp(7) != colorRamp(1) {
		t.Fatal("ramp not clamped")
	}
}

func TestInterp(t *testing.T) {
	xs := []float64{0, 1, 2}
	ys := []float64{0, 10, 20}
	if v := interp(xs, ys, 0.5); math.Abs(v-5) > 1e-12 {
		t.Fatalf("interp(0.5) = %v", v)
	}
	if v := interp(xs, ys, -1); v != 0 {
		t.Fatalf("below range = %v", v)
	}
	if v := interp(xs, ys, 9); v != 20 {
		t.Fatalf("above range = %v", v)
	}
}

func TestFloorPlanSVG(t *testing.T) {
	fp := &FloorPlan{
		Title: "office",
		MinX:  0, MinY: 0, MaxX: 16, MaxY: 10,
		Walls:      [][4]float64{{0, 0, 16, 0}, {0, 0, 0, 10}},
		Scatterers: [][2]float64{{3, 8}},
		APs:        [][3]float64{{0.4, 0.4, 0.5}, {15.6, 9.6, -2.5}},
		Targets:    [][2]float64{{5, 5}, {10, 2}},
	}
	svg, err := fp.SVG()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"<svg", "office", "AP0", "AP1", "target", "scatterer"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("floor plan missing %q", want)
		}
	}
	if strings.Count(svg, "<circle") < 3 {
		t.Fatal("missing target/scatterer markers")
	}
}

func TestFloorPlanEmptyBounds(t *testing.T) {
	if _, err := (&FloorPlan{}).SVG(); err == nil {
		t.Fatal("empty bounds accepted")
	}
}
