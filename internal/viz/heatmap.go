package viz

import (
	"fmt"
	"math"
	"strings"
)

// Heatmap renders a 2-D field (e.g. the MUSIC pseudo-spectrum over
// AoA × ToF) as an SVG raster of colored cells.
type Heatmap struct {
	Title  string
	XLabel string
	YLabel string
	// X and Y are the axis coordinates; Z[i][j] is the value at
	// (X... row i = Y[i], column j = X[j]).
	X, Y []float64
	Z    [][]float64
	// LogScale maps values through log10 before coloring — MUSIC spectra
	// span orders of magnitude.
	LogScale bool
	// CellPx is the pixel size of one cell (0 = auto to ~640px wide).
	CellPx int
}

// colorRamp maps t∈[0,1] to a blue→yellow→red ramp.
func colorRamp(t float64) string {
	if math.IsNaN(t) {
		t = 0
	}
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	// Piecewise: dark blue → teal → yellow → red.
	var r, g, b float64
	switch {
	case t < 0.33:
		f := t / 0.33
		r, g, b = 0.05, 0.2+0.5*f, 0.5+0.3*f
	case t < 0.66:
		f := (t - 0.33) / 0.33
		r, g, b = 0.05+0.9*f, 0.7+0.25*f, 0.8-0.7*f
	default:
		f := (t - 0.66) / 0.34
		r, g, b = 0.95, 0.95-0.75*f, 0.1
	}
	return fmt.Sprintf("#%02x%02x%02x", int(r*255), int(g*255), int(b*255))
}

// SVG renders the heatmap as a standalone SVG document.
func (h *Heatmap) SVG() (string, error) {
	ny := len(h.Z)
	if ny == 0 || len(h.Z[0]) == 0 {
		return "", fmt.Errorf("viz: empty heatmap")
	}
	nx := len(h.Z[0])
	for _, row := range h.Z {
		if len(row) != nx {
			return "", fmt.Errorf("viz: ragged heatmap rows")
		}
	}
	cell := h.CellPx
	if cell <= 0 {
		cell = 640 / nx
		if cell < 1 {
			cell = 1
		}
		if cell > 12 {
			cell = 12
		}
	}
	const mLeft, mTop, mBottom = 60, 36, 40
	w := mLeft + nx*cell + 20
	ht := mTop + ny*cell + mBottom

	// Value range (after optional log mapping).
	val := func(v float64) float64 {
		if h.LogScale {
			if v <= 0 {
				return math.Inf(-1)
			}
			return math.Log10(v)
		}
		return v
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, row := range h.Z {
		for _, v := range row {
			mv := val(v)
			if math.IsInf(mv, -1) {
				continue
			}
			lo = math.Min(lo, mv)
			hi = math.Max(hi, mv)
		}
	}
	//lint:allow floateq degenerate-range guard: avoids dividing by (hi-lo)==0
	if !finite(lo) || !finite(hi) || lo == hi {
		hi = lo + 1
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n", w, ht, w, ht)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	fmt.Fprintf(&b, `<text x="%d" y="20" font-family="sans-serif" font-size="14" font-weight="bold">%s</text>`+"\n", mLeft, escape(h.Title))
	for i, row := range h.Z {
		for j, v := range row {
			t := (val(v) - lo) / (hi - lo)
			fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="%s"/>`,
				mLeft+j*cell, mTop+(ny-1-i)*cell, cell, cell, colorRamp(t))
		}
		b.WriteString("\n")
	}
	// Axis extremes.
	if len(h.X) > 0 {
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="10">%s</text>`+"\n",
			mLeft, mTop+ny*cell+14, fmtTick(h.X[0]))
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="10" text-anchor="end">%s</text>`+"\n",
			mLeft+nx*cell, mTop+ny*cell+14, fmtTick(h.X[len(h.X)-1]))
	}
	if len(h.Y) > 0 {
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="10" text-anchor="end">%s</text>`+"\n",
			mLeft-6, mTop+ny*cell, fmtTick(h.Y[0]))
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="10" text-anchor="end">%s</text>`+"\n",
			mLeft-6, mTop+10, fmtTick(h.Y[len(h.Y)-1]))
	}
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="12" text-anchor="middle">%s</text>`+"\n",
		mLeft+nx*cell/2, mTop+ny*cell+32, escape(h.XLabel))
	fmt.Fprintf(&b, `<text x="14" y="%d" font-family="sans-serif" font-size="12" text-anchor="middle" transform="rotate(-90 14 %d)">%s</text>`+"\n",
		mTop+ny*cell/2, mTop+ny*cell/2, escape(h.YLabel))
	b.WriteString("</svg>\n")
	return b.String(), nil
}

// ASCII renders the heatmap as characters, downsampling to at most
// maxCols × maxRows.
func (h *Heatmap) ASCII(maxCols, maxRows int) string {
	ny := len(h.Z)
	if ny == 0 {
		return ""
	}
	nx := len(h.Z[0])
	if maxCols < 4 {
		maxCols = 4
	}
	if maxRows < 4 {
		maxRows = 4
	}
	shades := []rune(" .:-=+*#%@")
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, row := range h.Z {
		for _, v := range row {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	if lo == hi { //lint:allow floateq degenerate-range guard: avoids dividing by (hi-lo)==0
		hi = lo + 1
	}
	rows := ny
	cols := nx
	if rows > maxRows {
		rows = maxRows
	}
	if cols > maxCols {
		cols = maxCols
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", h.Title)
	for r := rows - 1; r >= 0; r-- {
		i := r * ny / rows
		for c := 0; c < cols; c++ {
			j := c * nx / cols
			t := (h.Z[i][j] - lo) / (hi - lo)
			idx := int(t * float64(len(shades)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(shades) {
				idx = len(shades) - 1
			}
			b.WriteRune(shades[idx])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
