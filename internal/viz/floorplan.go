package viz

import (
	"fmt"
	"math"
	"strings"
)

// FloorPlan renders a deployment map in the style of the paper's Fig. 6:
// walls, scatterers, AP positions with their array normals, and target
// locations.
type FloorPlan struct {
	Title                  string
	MinX, MinY, MaxX, MaxY float64
	// Walls are segments ((x1,y1),(x2,y2)).
	Walls [][4]float64
	// Scatterers are point obstacles.
	Scatterers [][2]float64
	// APs are (x, y, normalAngleRad).
	APs [][3]float64
	// Targets are localization target positions.
	Targets [][2]float64
	// PixelsPerMeter scales the drawing (0 = 40).
	PixelsPerMeter float64
}

// SVG renders the plan as a standalone SVG document.
func (fp *FloorPlan) SVG() (string, error) {
	if fp.MinX >= fp.MaxX || fp.MinY >= fp.MaxY {
		return "", fmt.Errorf("viz: empty floor plan bounds")
	}
	ppm := fp.PixelsPerMeter
	if ppm <= 0 {
		ppm = 40
	}
	const margin = 40.0
	w := (fp.MaxX-fp.MinX)*ppm + 2*margin
	h := (fp.MaxY-fp.MinY)*ppm + 2*margin
	// SVG y grows downward; flip so +Y is up like the plan.
	px := func(x float64) float64 { return margin + (x-fp.MinX)*ppm }
	py := func(y float64) float64 { return margin + (fp.MaxY-y)*ppm }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n", w, h, w, h)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	fmt.Fprintf(&b, `<text x="%.0f" y="24" font-family="sans-serif" font-size="14" font-weight="bold">%s</text>`+"\n",
		margin, escape(fp.Title))

	for _, wall := range fp.Walls {
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#444" stroke-width="3"/>`+"\n",
			px(wall[0]), py(wall[1]), px(wall[2]), py(wall[3]))
	}
	for _, s := range fp.Scatterers {
		fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="4" fill="none" stroke="#999" stroke-width="1.5"/>`+"\n",
			px(s[0]), py(s[1]))
	}
	for _, t := range fp.Targets {
		fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="4" fill="#1b6ca8"/>`+"\n", px(t[0]), py(t[1]))
	}
	for i, ap := range fp.APs {
		x, y := px(ap[0]), py(ap[1])
		fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="10" height="10" fill="#d1495b"/>`+"\n", x-5, y-5)
		// Array normal arrow (0.8 m long).
		nx := px(ap[0]+0.8*math.Cos(ap[2])) - x
		ny := py(ap[1]+0.8*math.Sin(ap[2])) - y
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#d1495b" stroke-width="2"/>`+"\n",
			x, y, x+nx, y+ny)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="10">AP%d</text>`+"\n",
			x+7, y-7, i)
	}
	// Legend.
	ly := h - 14
	fmt.Fprintf(&b, `<rect x="%.0f" y="%.1f" width="10" height="10" fill="#d1495b"/>`+"\n", margin, ly-9)
	fmt.Fprintf(&b, `<text x="%.0f" y="%.1f" font-family="sans-serif" font-size="11">AP</text>`+"\n", margin+14, ly)
	fmt.Fprintf(&b, `<circle cx="%.0f" cy="%.1f" r="4" fill="#1b6ca8"/>`+"\n", margin+50, ly-4)
	fmt.Fprintf(&b, `<text x="%.0f" y="%.1f" font-family="sans-serif" font-size="11">target</text>`+"\n", margin+58, ly)
	fmt.Fprintf(&b, `<circle cx="%.0f" cy="%.1f" r="4" fill="none" stroke="#999"/>`+"\n", margin+110, ly-4)
	fmt.Fprintf(&b, `<text x="%.0f" y="%.1f" font-family="sans-serif" font-size="11">scatterer</text>`+"\n", margin+118, ly)
	b.WriteString("</svg>\n")
	return b.String(), nil
}
