// Package rf collects the radio constants and propagation models shared by
// the SpotFi simulator and estimators: the 5 GHz WiFi channelization the
// Intel 5300 prototype used, antenna-array geometry, and the log-distance
// path loss model the localization stage fits to RSSI.
package rf

import (
	"fmt"
	"math"
)

// SpeedOfLight is the propagation speed in m/s.
const SpeedOfLight = 299792458.0

// Intel 5300 prototype parameters from the paper (Sec. 4.1): 3 antennas,
// CSI reported on 30 subcarriers of a 40 MHz channel in the 5 GHz band,
// 8-bit quantization per I/Q component.
const (
	// DefaultAntennas is the number of antennas on a commodity AP.
	DefaultAntennas = 3
	// DefaultSubcarriers is the number of subcarriers with reported CSI.
	DefaultSubcarriers = 30
	// DefaultBandwidthHz is the channel bandwidth.
	DefaultBandwidthHz = 40e6
	// DefaultCarrierHz is a 5 GHz-band carrier (channel 100).
	DefaultCarrierHz = 5.5e9
)

// Band describes the OFDM measurement grid on which CSI is reported.
type Band struct {
	// CarrierHz is the channel center frequency.
	CarrierHz float64
	// SubcarrierSpacingHz is the spacing f_δ between two consecutive
	// *reported* subcarriers. The Intel 5300 reports every 4th subcarrier
	// of a 40 MHz channel (116 data subcarriers → 30 reported), so the
	// effective spacing is 4 × 312.5 kHz = 1.25 MHz.
	SubcarrierSpacingHz float64
	// Subcarriers is the number of reported subcarriers.
	Subcarriers int
}

// DefaultBand returns the measurement grid of the paper's prototype.
func DefaultBand() Band {
	return Band{
		CarrierHz:           DefaultCarrierHz,
		SubcarrierSpacingHz: 4 * 312.5e3,
		Subcarriers:         DefaultSubcarriers,
	}
}

// Band20MHz returns a 20 MHz-channel measurement grid: 28 reported
// subcarriers at 625 kHz spacing (every other data subcarrier of a 64-bin
// FFT). Nothing in the pipeline assumes the 40 MHz grid; this band
// exercises that.
func Band20MHz() Band {
	return Band{
		CarrierHz:           DefaultCarrierHz,
		SubcarrierSpacingHz: 2 * 312.5e3,
		Subcarriers:         28,
	}
}

// Wavelength returns the carrier wavelength in meters.
func (b Band) Wavelength() float64 { return SpeedOfLight / b.CarrierHz }

// SubcarrierHz returns the absolute frequency of reported subcarrier n
// (0-based), with the grid centered on the carrier.
func (b Band) SubcarrierHz(n int) float64 {
	offset := (float64(n) - float64(b.Subcarriers-1)/2) * b.SubcarrierSpacingHz
	return b.CarrierHz + offset
}

// UnambiguousToF returns the ToF span (seconds) beyond which the phase
// ramp across subcarriers aliases: 1/f_δ. With 1.25 MHz spacing this is
// 800 ns — far beyond indoor path delays.
func (b Band) UnambiguousToF() float64 { return 1 / b.SubcarrierSpacingHz }

// Validate reports whether the band parameters are physically sensible.
func (b Band) Validate() error {
	if b.CarrierHz <= 0 {
		return fmt.Errorf("rf: carrier frequency %v Hz must be positive", b.CarrierHz)
	}
	if b.SubcarrierSpacingHz <= 0 {
		return fmt.Errorf("rf: subcarrier spacing %v Hz must be positive", b.SubcarrierSpacingHz)
	}
	if b.Subcarriers < 2 {
		return fmt.Errorf("rf: need at least 2 subcarriers, got %d", b.Subcarriers)
	}
	return nil
}

// Array describes a uniform linear antenna array (Fig. 2 of the paper).
type Array struct {
	// Antennas is the number of elements.
	Antennas int
	// SpacingM is the inter-element spacing in meters. SpotFi deployments
	// use half-wavelength spacing.
	SpacingM float64
}

// DefaultArray returns a 3-element half-wavelength array for the band.
func DefaultArray(b Band) Array {
	return Array{Antennas: DefaultAntennas, SpacingM: b.Wavelength() / 2}
}

// Validate reports whether the array parameters are sensible.
func (a Array) Validate() error {
	if a.Antennas < 2 {
		return fmt.Errorf("rf: need at least 2 antennas, got %d", a.Antennas)
	}
	if a.SpacingM <= 0 {
		return fmt.Errorf("rf: antenna spacing %v m must be positive", a.SpacingM)
	}
	return nil
}

// PathLoss is the standard log-distance path loss model the paper's
// localization stage assumes (Sec. 3.3, citing Goldsmith): received power
// in dBm at distance d is P(d) = P0 − 10·n·log10(d/d0).
type PathLoss struct {
	// P0dBm is the received power at the reference distance.
	P0dBm float64
	// Exponent is the path loss exponent n (≈2 free space, 3–4 indoors).
	Exponent float64
	// RefDistM is the reference distance d0 in meters.
	RefDistM float64
}

// DefaultPathLoss returns parameters typical of a 5 GHz indoor link.
func DefaultPathLoss() PathLoss {
	return PathLoss{P0dBm: -38, Exponent: 3.0, RefDistM: 1}
}

// RSSIdBm predicts the RSSI at distance d meters. Distances below the
// reference distance are clamped to it.
func (m PathLoss) RSSIdBm(d float64) float64 {
	if d < m.RefDistM {
		d = m.RefDistM
	}
	return m.P0dBm - 10*m.Exponent*math.Log10(d/m.RefDistM)
}

// Distance inverts the model: the distance in meters at which the model
// predicts rssi dBm.
func (m PathLoss) Distance(rssi float64) float64 {
	return m.RefDistM * math.Pow(10, (m.P0dBm-rssi)/(10*m.Exponent))
}

// FitPathLoss estimates (P0, n) by least squares from paired observations
// of distance (m) and RSSI (dBm), holding RefDistM at refDist. It needs at
// least two distinct distances; otherwise it returns an error.
func FitPathLoss(dists, rssis []float64, refDist float64) (PathLoss, error) {
	if len(dists) != len(rssis) || len(dists) < 2 {
		return PathLoss{}, fmt.Errorf("rf: FitPathLoss needs ≥2 paired samples, got %d/%d", len(dists), len(rssis))
	}
	// Linear regression of rssi on x = −10·log10(d/d0).
	var sx, sy, sxx, sxy float64
	n := float64(len(dists))
	for i, d := range dists {
		if d < refDist {
			d = refDist
		}
		x := -10 * math.Log10(d/refDist)
		y := rssis[i]
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	den := n*sxx - sx*sx
	if math.Abs(den) < 1e-12 {
		return PathLoss{}, fmt.Errorf("rf: FitPathLoss needs distinct distances")
	}
	slope := (n*sxy - sx*sy) / den // = exponent
	inter := (sy - slope*sx) / n   // = P0
	return PathLoss{P0dBm: inter, Exponent: slope, RefDistM: refDist}, nil
}

// DBmToMilliwatt converts dBm to linear milliwatts.
func DBmToMilliwatt(dbm float64) float64 { return math.Pow(10, dbm/10) }

// MilliwattToDBm converts linear milliwatts to dBm. Non-positive power
// maps to −∞ guarded at −200 dBm.
func MilliwattToDBm(mw float64) float64 {
	if mw <= 0 {
		return -200
	}
	return 10 * math.Log10(mw)
}
