package rf

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDefaultBandGrid(t *testing.T) {
	b := DefaultBand()
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	// 30 subcarriers centered on the carrier: mean frequency == carrier.
	var sum float64
	for n := 0; n < b.Subcarriers; n++ {
		sum += b.SubcarrierHz(n)
	}
	mean := sum / float64(b.Subcarriers)
	if math.Abs(mean-b.CarrierHz) > 1 {
		t.Fatalf("subcarrier grid mean %v, want carrier %v", mean, b.CarrierHz)
	}
	// Consecutive spacing equals f_δ.
	if d := b.SubcarrierHz(1) - b.SubcarrierHz(0); math.Abs(d-b.SubcarrierSpacingHz) > 1e-6 {
		t.Fatalf("grid spacing %v, want %v", d, b.SubcarrierSpacingHz)
	}
}

func TestWavelength(t *testing.T) {
	b := DefaultBand()
	got := b.Wavelength()
	want := SpeedOfLight / b.CarrierHz
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("wavelength = %v, want %v", got, want)
	}
	if got < 0.05 || got > 0.06 {
		t.Fatalf("5 GHz wavelength should be ≈5.45 cm, got %v m", got)
	}
}

func TestUnambiguousToF(t *testing.T) {
	b := DefaultBand()
	if got := b.UnambiguousToF(); math.Abs(got-800e-9) > 1e-12 {
		t.Fatalf("unambiguous ToF = %v, want 800 ns", got)
	}
}

func TestBandValidate(t *testing.T) {
	cases := []Band{
		{CarrierHz: 0, SubcarrierSpacingHz: 1, Subcarriers: 2},
		{CarrierHz: 1, SubcarrierSpacingHz: 0, Subcarriers: 2},
		{CarrierHz: 1, SubcarrierSpacingHz: 1, Subcarriers: 1},
	}
	for i, b := range cases {
		if err := b.Validate(); err == nil {
			t.Fatalf("case %d: expected validation error", i)
		}
	}
}

func TestDefaultArrayHalfWavelength(t *testing.T) {
	b := DefaultBand()
	a := DefaultArray(b)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.SpacingM-b.Wavelength()/2) > 1e-15 {
		t.Fatalf("spacing = %v, want λ/2 = %v", a.SpacingM, b.Wavelength()/2)
	}
	if a.Antennas != 3 {
		t.Fatalf("antennas = %d, want 3", a.Antennas)
	}
}

func TestArrayValidate(t *testing.T) {
	if err := (Array{Antennas: 1, SpacingM: 0.02}).Validate(); err == nil {
		t.Fatal("1-antenna array should fail validation")
	}
	if err := (Array{Antennas: 3, SpacingM: 0}).Validate(); err == nil {
		t.Fatal("zero spacing should fail validation")
	}
}

func TestPathLossMonotone(t *testing.T) {
	m := DefaultPathLoss()
	prev := m.RSSIdBm(1)
	for d := 2.0; d <= 64; d *= 2 {
		cur := m.RSSIdBm(d)
		if cur >= prev {
			t.Fatalf("RSSI not decreasing: %v dBm at %v m after %v dBm", cur, d, prev)
		}
		prev = cur
	}
}

func TestPathLossReferenceClamp(t *testing.T) {
	m := DefaultPathLoss()
	if m.RSSIdBm(0.01) != m.P0dBm {
		t.Fatalf("sub-reference distance should clamp to P0, got %v", m.RSSIdBm(0.01))
	}
}

func TestPathLossDistanceInverse(t *testing.T) {
	m := DefaultPathLoss()
	for _, d := range []float64{1, 2.5, 7, 30} {
		back := m.Distance(m.RSSIdBm(d))
		if math.Abs(back-d) > 1e-9*d {
			t.Fatalf("Distance(RSSI(%v)) = %v", d, back)
		}
	}
}

func TestPathLossTenXDistanceCostsTenNdB(t *testing.T) {
	m := PathLoss{P0dBm: -40, Exponent: 3, RefDistM: 1}
	drop := m.RSSIdBm(1) - m.RSSIdBm(10)
	if math.Abs(drop-30) > 1e-9 {
		t.Fatalf("10x distance should cost 10·n = 30 dB, got %v", drop)
	}
}

func TestFitPathLossRecoversModel(t *testing.T) {
	truth := PathLoss{P0dBm: -35, Exponent: 2.7, RefDistM: 1}
	var dists, rssis []float64
	for d := 1.0; d <= 20; d += 0.5 {
		dists = append(dists, d)
		rssis = append(rssis, truth.RSSIdBm(d))
	}
	got, err := FitPathLoss(dists, rssis, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.P0dBm-truth.P0dBm) > 1e-9 || math.Abs(got.Exponent-truth.Exponent) > 1e-9 {
		t.Fatalf("fit = %+v, want %+v", got, truth)
	}
}

func TestFitPathLossNoisyStillClose(t *testing.T) {
	truth := PathLoss{P0dBm: -35, Exponent: 3.2, RefDistM: 1}
	rng := rand.New(rand.NewSource(4))
	var dists, rssis []float64
	for i := 0; i < 200; i++ {
		d := 1 + 19*rng.Float64()
		dists = append(dists, d)
		rssis = append(rssis, truth.RSSIdBm(d)+rng.NormFloat64()*2)
	}
	got, err := FitPathLoss(dists, rssis, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Exponent-truth.Exponent) > 0.3 {
		t.Fatalf("noisy fit exponent %v too far from %v", got.Exponent, truth.Exponent)
	}
}

func TestFitPathLossErrors(t *testing.T) {
	if _, err := FitPathLoss([]float64{1}, []float64{-40}, 1); err == nil {
		t.Fatal("single sample should error")
	}
	if _, err := FitPathLoss([]float64{5, 5, 5}, []float64{-40, -41, -42}, 1); err == nil {
		t.Fatal("identical distances should error")
	}
	if _, err := FitPathLoss([]float64{1, 2}, []float64{-40}, 1); err == nil {
		t.Fatal("length mismatch should error")
	}
}

func TestDBmConversions(t *testing.T) {
	if mw := DBmToMilliwatt(0); math.Abs(mw-1) > 1e-12 {
		t.Fatalf("0 dBm = %v mW, want 1", mw)
	}
	if mw := DBmToMilliwatt(30); math.Abs(mw-1000) > 1e-9 {
		t.Fatalf("30 dBm = %v mW, want 1000", mw)
	}
	if dbm := MilliwattToDBm(1); math.Abs(dbm) > 1e-12 {
		t.Fatalf("1 mW = %v dBm, want 0", dbm)
	}
	if dbm := MilliwattToDBm(0); dbm != -200 {
		t.Fatalf("0 mW should guard at -200 dBm, got %v", dbm)
	}
}

func TestQuickDBmRoundTrip(t *testing.T) {
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(5))}
	f := func(x float64) bool {
		dbm := math.Mod(x, 100) // plausible range
		back := MilliwattToDBm(DBmToMilliwatt(dbm))
		return math.Abs(back-dbm) < 1e-9
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPathLossInverse(t *testing.T) {
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(6))}
	m := DefaultPathLoss()
	f := func(x float64) bool {
		d := 1 + math.Abs(math.Mod(x, 50))
		back := m.Distance(m.RSSIdBm(d))
		return math.Abs(back-d) < 1e-6*d
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestBand20MHz(t *testing.T) {
	b := Band20MHz()
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if b.Subcarriers != 28 {
		t.Fatalf("subcarriers = %d", b.Subcarriers)
	}
	if math.Abs(b.SubcarrierSpacingHz-625e3) > 1e-6 {
		t.Fatalf("spacing = %v", b.SubcarrierSpacingHz)
	}
	// Narrower aperture ⇒ longer unambiguous ToF span than the 40 MHz grid.
	if b.UnambiguousToF() <= DefaultBand().UnambiguousToF() {
		t.Fatal("20 MHz grid should have a longer unambiguous ToF span")
	}
}
