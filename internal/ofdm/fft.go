// Package ofdm implements the slice of an 802.11n OFDM physical layer that
// produces CSI: training-symbol modulation, a multipath channel applied to
// time-domain samples, correlation-based packet detection, and LTF-based
// channel estimation. It exists to ground the simulator: instead of
// evaluating the channel model directly (internal/sim), CSI can be derived
// exactly the way a NIC derives it — detect the preamble, FFT the training
// symbol, divide by the known sequence — so sampling-time offset emerges
// from the detector rather than being injected.
package ofdm

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
)

// FFT computes the in-place radix-2 decimation-in-time FFT of x, whose
// length must be a power of two. The forward transform uses the e^{−j2πkn/N}
// convention.
func FFT(x []complex128) error { return transform(x, false) }

// IFFT computes the inverse FFT in place (including the 1/N scaling).
func IFFT(x []complex128) error { return transform(x, true) }

func transform(x []complex128, inverse bool) error {
	n := len(x)
	if n == 0 || n&(n-1) != 0 {
		return fmt.Errorf("ofdm: FFT length %d is not a power of two", n)
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.Len(uint(n-1)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	// Butterflies.
	for size := 2; size <= n; size <<= 1 {
		ang := 2 * math.Pi / float64(size)
		if !inverse {
			ang = -ang
		}
		wStep := cmplx.Exp(complex(0, ang))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			half := size / 2
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wStep
			}
		}
	}
	if inverse {
		inv := complex(1/float64(n), 0)
		for i := range x {
			x[i] *= inv
		}
	}
	return nil
}
