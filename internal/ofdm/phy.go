package ofdm

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
)

// PHY holds the OFDM numerology of the simulated 40 MHz channel.
type PHY struct {
	// FFTSize is the transform length (128 for 40 MHz 802.11n).
	FFTSize int
	// SampleRateHz is the complex baseband sampling rate (= bandwidth).
	SampleRateHz float64
	// CPLen is the cyclic prefix length in samples.
	CPLen int
	// UsedBins lists the FFT bin index (0..FFTSize-1, DC = 0, negative
	// frequencies in the upper half) of each reported subcarrier, in
	// reporting order.
	UsedBins []int
	// LTF is the known training value (±1) on each reported subcarrier.
	LTF []complex128
}

// Default40MHz returns the numerology matching rf.DefaultBand(): a 128-bin
// FFT at 40 MHz (312.5 kHz bin spacing) with 30 reported subcarriers every
// 4th bin (1.25 MHz apart), centered on DC — the Intel 5300 reporting
// grid.
func Default40MHz() *PHY {
	p := &PHY{
		FFTSize:      128,
		SampleRateHz: 40e6,
		CPLen:        32,
	}
	// 30 bins spaced 4 apart centered on the carrier: offsets −58, −54, …,
	// −2, +2, …, +58. The uniform step-4 grid skips DC naturally (no
	// offset lands on bin 0).
	for i := 0; i < 30; i++ {
		off := -58 + 4*i
		bin := off
		if bin < 0 {
			bin += p.FFTSize
		}
		p.UsedBins = append(p.UsedBins, bin)
	}
	// Deterministic ±1 training sequence.
	rng := rand.New(rand.NewSource(0x5F37))
	p.LTF = make([]complex128, len(p.UsedBins))
	for i := range p.LTF {
		if rng.Intn(2) == 0 {
			p.LTF[i] = 1
		} else {
			p.LTF[i] = -1
		}
	}
	return p
}

// Validate checks the numerology.
func (p *PHY) Validate() error {
	if p.FFTSize <= 0 || p.FFTSize&(p.FFTSize-1) != 0 {
		return fmt.Errorf("ofdm: FFT size %d not a power of two", p.FFTSize)
	}
	if p.SampleRateHz <= 0 {
		return fmt.Errorf("ofdm: sample rate must be positive")
	}
	if p.CPLen < 0 || p.CPLen >= p.FFTSize {
		return fmt.Errorf("ofdm: cyclic prefix %d out of range", p.CPLen)
	}
	if len(p.UsedBins) == 0 || len(p.UsedBins) != len(p.LTF) {
		return fmt.Errorf("ofdm: used bins (%d) and LTF (%d) mismatch", len(p.UsedBins), len(p.LTF))
	}
	seen := map[int]bool{}
	for _, b := range p.UsedBins {
		if b < 0 || b >= p.FFTSize || seen[b] {
			return fmt.Errorf("ofdm: bad bin %d", b)
		}
		seen[b] = true
	}
	return nil
}

// SubcarrierSpacingHz returns the spacing between adjacent *reported*
// subcarriers, assuming the reporting grid is uniform.
func (p *PHY) SubcarrierSpacingHz() float64 {
	if len(p.UsedBins) < 2 {
		return p.SampleRateHz / float64(p.FFTSize)
	}
	// Reporting stride from the first two offsets.
	a := p.binOffset(p.UsedBins[0])
	b := p.binOffset(p.UsedBins[1])
	return float64(b-a) * p.SampleRateHz / float64(p.FFTSize)
}

// binOffset maps an FFT bin index to its signed frequency offset index.
func (p *PHY) binOffset(bin int) int {
	if bin > p.FFTSize/2 {
		return bin - p.FFTSize
	}
	return bin
}

// TrainingSymbol returns the time-domain LTF symbol with cyclic prefix:
// CPLen+FFTSize samples.
func (p *PHY) TrainingSymbol() ([]complex128, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	freq := make([]complex128, p.FFTSize)
	for i, bin := range p.UsedBins {
		freq[bin] = p.LTF[i]
	}
	if err := IFFT(freq); err != nil {
		return nil, err
	}
	out := make([]complex128, 0, p.CPLen+p.FFTSize)
	out = append(out, freq[p.FFTSize-p.CPLen:]...)
	out = append(out, freq...)
	return out, nil
}

// TapChannel is a time-domain multipath channel: a sparse FIR whose taps
// have fractional-sample delays realized by windowed-sinc interpolation.
type TapChannel struct {
	// DelayS and Gain describe each path (absolute delay, complex gain).
	DelayS []float64
	Gain   []complex128
	// SincHalfWidth is the interpolation half-width in samples (default 8).
	SincHalfWidth int
}

// Apply convolves x with the channel at the given sample rate, returning a
// slice long enough to hold the maximum delay plus the sinc tail. The
// output starts at the same time origin as x.
func (tc *TapChannel) Apply(x []complex128, sampleRate float64) ([]complex128, error) {
	if len(tc.DelayS) != len(tc.Gain) || len(tc.DelayS) == 0 {
		return nil, fmt.Errorf("ofdm: channel needs matching delays and gains")
	}
	hw := tc.SincHalfWidth
	if hw <= 0 {
		hw = 8
	}
	var maxDelay float64
	for _, d := range tc.DelayS {
		if d < 0 {
			return nil, fmt.Errorf("ofdm: negative path delay")
		}
		if d > maxDelay {
			maxDelay = d
		}
	}
	outLen := len(x) + int(math.Ceil(maxDelay*sampleRate)) + 2*hw + 1
	out := make([]complex128, outLen)
	for k := range tc.DelayS {
		ds := tc.DelayS[k] * sampleRate // delay in samples (fractional)
		base := int(math.Floor(ds))
		frac := ds - float64(base)
		// Windowed-sinc taps around the fractional delay.
		for t := -hw; t <= hw; t++ {
			arg := float64(t) - frac
			s := sinc(arg) * hann(arg, hw)
			if s == 0 {
				continue
			}
			g := tc.Gain[k] * complex(s, 0)
			off := base + t
			for n := range x {
				idx := n + off
				if idx < 0 || idx >= outLen {
					continue
				}
				out[idx] += g * x[n]
			}
		}
	}
	return out, nil
}

func sinc(x float64) float64 {
	if math.Abs(x) < 1e-12 {
		return 1
	}
	px := math.Pi * x
	return math.Sin(px) / px
}

func hann(x float64, hw int) float64 {
	if math.Abs(x) > float64(hw) {
		return 0
	}
	return 0.5 * (1 + math.Cos(math.Pi*x/float64(hw)))
}

// DetectPreamble cross-correlates rx with the known training symbol and
// returns the sample index of the correlation peak — the receiver's packet
// detection instant. searchLen bounds the search window (0 = whole rx).
func (p *PHY) DetectPreamble(rx []complex128, searchLen int) (int, error) {
	ref, err := p.TrainingSymbol()
	if err != nil {
		return 0, err
	}
	if len(rx) < len(ref) {
		return 0, fmt.Errorf("ofdm: received signal shorter than the training symbol")
	}
	n := len(rx) - len(ref) + 1
	if searchLen > 0 && searchLen < n {
		n = searchLen
	}
	bestIdx, bestMag := 0, -1.0
	for s := 0; s < n; s++ {
		var acc complex128
		for i, r := range ref {
			acc += rx[s+i] * cmplx.Conj(r)
		}
		if m := cmplx.Abs(acc); m > bestMag {
			bestIdx, bestMag = s, m
		}
	}
	return bestIdx, nil
}

// EstimateCSI demodulates the training symbol starting at detectIdx and
// returns the least-squares channel estimate at each reported subcarrier:
// CSI[i] = FFT(rx window)[UsedBins[i]] / LTF[i]. This is exactly the
// computation a WiFi NIC performs to produce its CSI report, so an early
// or late detectIdx shows up as the linear phase ramp SpotFi's Algorithm 1
// removes.
func (p *PHY) EstimateCSI(rx []complex128, detectIdx int) ([]complex128, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	start := detectIdx + p.CPLen
	if start < 0 || start+p.FFTSize > len(rx) {
		return nil, fmt.Errorf("ofdm: FFT window [%d,%d) outside received signal", start, start+p.FFTSize)
	}
	buf := make([]complex128, p.FFTSize)
	copy(buf, rx[start:start+p.FFTSize])
	if err := FFT(buf); err != nil {
		return nil, err
	}
	out := make([]complex128, len(p.UsedBins))
	for i, bin := range p.UsedBins {
		out[i] = buf[bin] / p.LTF[i]
	}
	return out, nil
}

// Default20MHz returns the numerology of a 20 MHz channel paired with
// rf.Band20MHz(): a 64-bin FFT at 20 MHz (312.5 kHz bins) with 28 reported
// subcarriers every 2nd bin (625 kHz apart), skipping DC.
func Default20MHz() *PHY {
	p := &PHY{
		FFTSize:      64,
		SampleRateHz: 20e6,
		CPLen:        16,
	}
	// Offsets −28, −26, …, −2, +2, …, +28 (28 values, DC skipped by the
	// even grid… −28+2k hits 0 at k=14, so exclude it explicitly).
	for off := -28; off <= 28; off += 2 {
		if off == 0 {
			continue
		}
		bin := off
		if bin < 0 {
			bin += p.FFTSize
		}
		p.UsedBins = append(p.UsedBins, bin)
	}
	rng := rand.New(rand.NewSource(0x20B5))
	p.LTF = make([]complex128, len(p.UsedBins))
	for i := range p.LTF {
		if rng.Intn(2) == 0 {
			p.LTF[i] = 1
		} else {
			p.LTF[i] = -1
		}
	}
	return p
}
