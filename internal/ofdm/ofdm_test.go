package ofdm

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFFTMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 4, 8, 64, 128} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		want := naiveDFT(x)
		got := append([]complex128(nil), x...)
		if err := FFT(got); err != nil {
			t.Fatal(err)
		}
		for k := range want {
			if cmplx.Abs(got[k]-want[k]) > 1e-9*float64(n) {
				t.Fatalf("n=%d bin %d: %v vs %v", n, k, got[k], want[k])
			}
		}
	}
}

func naiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		for m := 0; m < n; m++ {
			out[k] += x[m] * cmplx.Exp(complex(0, -2*math.Pi*float64(k*m)/float64(n)))
		}
	}
	return out
}

func TestFFTIFFTRoundTrip(t *testing.T) {
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(2))}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (2 + rng.Intn(6))
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		y := append([]complex128(nil), x...)
		if FFT(y) != nil || IFFT(y) != nil {
			return false
		}
		for i := range x {
			if cmplx.Abs(y[i]-x[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestFFTParsevals(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 128
	x := make([]complex128, n)
	var timeE float64
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		timeE += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
	}
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	var freqE float64
	for _, v := range x {
		freqE += real(v)*real(v) + imag(v)*imag(v)
	}
	if math.Abs(freqE/float64(n)-timeE) > 1e-9*timeE {
		t.Fatalf("Parseval violated: %v vs %v", freqE/float64(n), timeE)
	}
}

func TestFFTRejectsNonPowerOfTwo(t *testing.T) {
	if err := FFT(make([]complex128, 12)); err == nil {
		t.Fatal("length 12 accepted")
	}
	if err := FFT(nil); err == nil {
		t.Fatal("empty accepted")
	}
}

func TestDefault40MHzNumerology(t *testing.T) {
	p := Default40MHz()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(p.UsedBins) != 30 {
		t.Fatalf("used bins = %d", len(p.UsedBins))
	}
	if got := p.SubcarrierSpacingHz(); math.Abs(got-1.25e6) > 1 {
		t.Fatalf("subcarrier spacing = %v, want 1.25 MHz", got)
	}
	// No DC bin.
	for _, b := range p.UsedBins {
		if b == 0 {
			t.Fatal("DC bin reported")
		}
	}
}

func TestTrainingSymbolRoundTrip(t *testing.T) {
	// Clean channel: detect at 0, CSI flat = 1 on every subcarrier.
	p := Default40MHz()
	sym, err := p.TrainingSymbol()
	if err != nil {
		t.Fatal(err)
	}
	if len(sym) != p.CPLen+p.FFTSize {
		t.Fatalf("symbol length %d", len(sym))
	}
	csiVals, err := p.EstimateCSI(sym, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range csiVals {
		if cmplx.Abs(v-1) > 1e-9 {
			t.Fatalf("clean CSI[%d] = %v, want 1", i, v)
		}
	}
}

func TestDetectPreambleFindsOffset(t *testing.T) {
	p := Default40MHz()
	sym, err := p.TrainingSymbol()
	if err != nil {
		t.Fatal(err)
	}
	for _, off := range []int{0, 3, 17, 40} {
		rx := make([]complex128, off+len(sym)+16)
		copy(rx[off:], sym)
		got, err := p.DetectPreamble(rx, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got != off {
			t.Fatalf("detected %d, want %d", got, off)
		}
	}
}

func TestDetectPreambleNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p := Default40MHz()
	sym, err := p.TrainingSymbol()
	if err != nil {
		t.Fatal(err)
	}
	const off = 25
	rx := make([]complex128, off+len(sym)+32)
	copy(rx[off:], sym)
	// 20 dB SNR noise.
	var sigP float64
	for _, v := range sym {
		sigP += real(v)*real(v) + imag(v)*imag(v)
	}
	sigma := math.Sqrt(sigP / float64(len(sym)) / 100 / 2)
	for i := range rx {
		rx[i] += complex(rng.NormFloat64()*sigma, rng.NormFloat64()*sigma)
	}
	got, err := p.DetectPreamble(rx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != off {
		t.Fatalf("noisy detection %d, want %d", got, off)
	}
}

func TestTapChannelIntegerDelay(t *testing.T) {
	tc := &TapChannel{DelayS: []float64{3.0 / 40e6}, Gain: []complex128{complex(0.5, 0)}}
	x := []complex128{1, 0, 0, 0}
	y, err := tc.Apply(x, 40e6)
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(y[3]-0.5) > 1e-9 {
		t.Fatalf("y[3] = %v, want 0.5", y[3])
	}
	for i, v := range y {
		if i != 3 && cmplx.Abs(v) > 1e-9 {
			t.Fatalf("leakage at %d: %v", i, v)
		}
	}
}

func TestTapChannelFractionalDelayPhaseRamp(t *testing.T) {
	// A fractional-delay path must produce the phase slope
	// −2π·f·τ across the estimated subcarriers.
	p := Default40MHz()
	sym, err := p.TrainingSymbol()
	if err != nil {
		t.Fatal(err)
	}
	tau := 87.5e-9 // 3.5 samples at 40 MHz
	tc := &TapChannel{DelayS: []float64{tau}, Gain: []complex128{1}}
	rx, err := tc.Apply(sym, p.SampleRateHz)
	if err != nil {
		t.Fatal(err)
	}
	// Give the receiver the true start (delay 3.5 → detector picks 3 or 4;
	// pin to 0 so the full delay appears in the CSI phase).
	csiVals, err := p.EstimateCSI(rx, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Expected per-reported-subcarrier phase increment: −2π·Δf·τ.
	wantStep := -2 * math.Pi * p.SubcarrierSpacingHz() * tau
	for i := 1; i < len(csiVals); i++ {
		// Skip the guard discontinuity where the grid crosses DC.
		if p.binOffset(p.UsedBins[i])-p.binOffset(p.UsedBins[i-1]) != 4 {
			continue
		}
		got := cmplx.Phase(csiVals[i] * cmplx.Conj(csiVals[i-1]))
		if math.Abs(angleDiff(got, wantStep)) > 0.02 {
			t.Fatalf("phase step at %d = %v, want %v", i, got, wantStep)
		}
	}
}

func angleDiff(a, b float64) float64 {
	d := math.Mod(a-b, 2*math.Pi) // exact: Mod introduces no rounding error
	if d > math.Pi {
		d -= 2 * math.Pi
	} else if d <= -math.Pi {
		d += 2 * math.Pi
	}
	return d
}

func TestTapChannelErrors(t *testing.T) {
	if _, err := (&TapChannel{}).Apply([]complex128{1}, 40e6); err == nil {
		t.Fatal("empty channel accepted")
	}
	bad := &TapChannel{DelayS: []float64{-1e-9}, Gain: []complex128{1}}
	if _, err := bad.Apply([]complex128{1}, 40e6); err == nil {
		t.Fatal("negative delay accepted")
	}
}

func TestEstimateCSIWindowBounds(t *testing.T) {
	p := Default40MHz()
	short := make([]complex128, 10)
	if _, err := p.EstimateCSI(short, 0); err == nil {
		t.Fatal("short window accepted")
	}
	if _, err := p.EstimateCSI(make([]complex128, 512), -100); err == nil {
		t.Fatal("negative window accepted")
	}
}

func TestDefault20MHzNumerology(t *testing.T) {
	p := Default20MHz()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(p.UsedBins) != 28 {
		t.Fatalf("used bins = %d, want 28", len(p.UsedBins))
	}
	if got := p.SubcarrierSpacingHz(); math.Abs(got-625e3) > 1 {
		t.Fatalf("spacing = %v, want 625 kHz", got)
	}
	for _, b := range p.UsedBins {
		if b == 0 {
			t.Fatal("DC bin reported")
		}
	}
	// Round trip through the training symbol.
	sym, err := p.TrainingSymbol()
	if err != nil {
		t.Fatal(err)
	}
	vals, err := p.EstimateCSI(sym, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if cmplx.Abs(v-1) > 1e-9 {
			t.Fatalf("clean 20 MHz CSI[%d] = %v", i, v)
		}
	}
}
