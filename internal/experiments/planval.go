package experiments

import (
	"fmt"
	"math"

	"spotfi/internal/geom"
	"spotfi/internal/plan"
	"spotfi/internal/testbed"
)

// PlanValidation is an extra (non-paper) experiment validating the
// coverage planner against the measured pipeline: for every office target
// it compares the geometry-only CRLB prediction (internal/plan, using
// SpotFi's measured LoS bearing error) with the localization error the
// full pipeline actually achieves. The planner is useful exactly when the
// two track each other.
func PlanValidation(opts Options) (*Result, error) {
	opts = opts.fill()
	d := testbed.Office(opts.Seed)
	loc, err := newLocalizer(d, opts, opts.Seed)
	if err != nil {
		return nil, err
	}
	planAPs := make([]plan.AP, len(d.APs))
	for i, ap := range d.APs {
		planAPs[i] = plan.AP{Pos: ap.Pos, NormalAngle: ap.NormalAngle}
	}
	cfg := plan.DefaultConfig()
	// σ from the measured Fig. 8a LoS median (≈4.2°).
	cfg.AoAStdRad = geom.Rad(4.2)

	idx := targetsFor(d, opts)
	type pair struct {
		predicted, measured float64
		ok                  bool
	}
	pairs := make([]pair, len(idx))
	sem := make(chan struct{}, opts.Workers)
	done := make(chan int)
	for i, t := range idx {
		go func(i, t int) {
			sem <- struct{}{}
			defer func() { <-sem; done <- i }()
			pred, err := plan.ExpectedError(d.Targets[t], planAPs, cfg)
			if err != nil || math.IsInf(pred, 1) {
				return
			}
			meas, err := spotfiLocalize(d, loc, t, opts.Packets, nil)
			if err != nil {
				return
			}
			pairs[i] = pair{predicted: pred, measured: meas, ok: true}
		}(i, t)
	}
	for range idx {
		<-done
	}

	var pred, meas []float64
	for _, p := range pairs {
		if p.ok {
			pred = append(pred, p.predicted)
			meas = append(meas, p.measured)
		}
	}
	if len(pred) < 3 {
		return nil, fmt.Errorf("experiments: plan validation produced too few pairs")
	}

	// Spearman-style agreement: Pearson correlation of the rank orders.
	corr := rankCorrelation(pred, meas)
	return &Result{
		ID:    "planval",
		Title: "coverage planner CRLB vs measured localization error",
		Unit:  "m",
		Series: []Series{
			{Label: "predicted-crlb", Values: append([]float64(nil), pred...)},
			{Label: "measured-spotfi", Values: append([]float64(nil), meas...)},
		},
		Notes: fmt.Sprintf("rank correlation (predicted vs measured): %.2f over %d targets\n", corr, len(pred)),
	}, nil
}

// rankCorrelation computes the Pearson correlation between the rank
// vectors of xs and ys.
func rankCorrelation(xs, ys []float64) float64 {
	rx := ranks(xs)
	ry := ranks(ys)
	n := float64(len(rx))
	var mx, my float64
	for i := range rx {
		mx += rx[i]
		my += ry[i]
	}
	mx /= n
	my /= n
	var num, dx, dy float64
	for i := range rx {
		a := rx[i] - mx
		b := ry[i] - my
		num += a * b
		dx += a * a
		dy += b * b
	}
	if dx <= 0 || dy <= 0 {
		return 0
	}
	return num / math.Sqrt(dx*dy)
}

func ranks(xs []float64) []float64 {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && xs[idx[j]] < xs[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	out := make([]float64, len(xs))
	for rank, i := range idx {
		out[i] = float64(rank)
	}
	return out
}
