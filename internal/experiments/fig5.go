package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"spotfi/internal/cluster"
	"spotfi/internal/csi"
	"spotfi/internal/dpath"
	"spotfi/internal/geom"
	"spotfi/internal/music"
	"spotfi/internal/sanitize"
	"spotfi/internal/sim"
	"spotfi/internal/stats"
	"spotfi/internal/testbed"
)

// Fig5Sanitization reproduces Fig. 5(a)/(b): the per-packet sampling time
// offset adds a linear phase ramp that corrupts ToF estimates, and
// Algorithm 1 removes it. The operative claim ("the ToF parameters
// estimated across packets using modified CSI are free from variance of
// changing STO", Sec. 3.2.2) is measured directly: the two series are the
// strongest path's estimated ToF per packet with and without
// sanitization — the unsanitized ToFs wander with the STO, the sanitized
// ones are stable.
func Fig5Sanitization(opts Options) (*Result, error) {
	opts = opts.fill()
	d := testbed.Office(opts.Seed)
	// Fig. 5 is an illustration on a mild channel: a direct path plus one
	// wall reflection, static (no channel-dynamics jitter), observed with
	// per-packet STO. Deep-fade channels add genuine unwrap noise on top
	// of the STO effect — the clustering stage handles that — but for the
	// sanitization demonstration the mild channel isolates the claim.
	env := &sim.Environment{Walls: []sim.Wall{{
		Seg:           geom.Segment{A: geom.Point{X: -30, Y: 10}, B: geom.Point{X: 30, Y: 10}},
		LossDB:        14,
		ReflectLossDB: 6,
	}}}
	ap := sim.AP{ID: 0, Pos: geom.Point{X: 0, Y: 0}, NormalAngle: math.Pi / 4}
	target := geom.Point{X: 6, Y: 3}
	link := sim.NewLink(env, ap, target, d.LinkCfg, rand.New(rand.NewSource(opts.Seed+500)))
	imp := d.Imp
	imp.NonDirectAoAJitterRad = 0
	imp.NonDirectToFJitterNs = 0
	imp.NonDirectGainJitterDB = 0
	syn, err := sim.NewSynthesizer(link, d.Band, d.Array, imp, rand.New(rand.NewSource(opts.Seed+501)))
	if err != nil {
		return nil, err
	}
	packets := 20
	if opts.Packets < 10 {
		packets = 2 * opts.Packets
	}
	burst := syn.Burst(testbed.TargetMAC(0), packets)

	est, err := music.NewEstimator(opts.musicParams())
	if err != nil {
		return nil, err
	}
	// Track the direct path across packets: the estimate whose AoA is
	// closest to the ground-truth direct AoA.
	truth := ap.AoATo(target)
	directToF := func(c *csi.Matrix) (float64, bool) {
		paths, err := est.EstimatePaths(c)
		if err != nil || len(paths) == 0 {
			return 0, false
		}
		best := paths[0]
		for _, p := range paths[1:] {
			if math.Abs(p.AoA-truth) < math.Abs(best.AoA-truth) {
				best = p
			}
		}
		return best.ToF * 1e9, true
	}

	var raw, clean []float64
	for _, pkt := range burst {
		if tof, ok := directToF(pkt.CSI.Clone()); ok {
			raw = append(raw, tof)
		}
		work := pkt.CSI.Clone()
		if _, err := sanitize.ToF(work, d.Band.SubcarrierSpacingHz); err != nil {
			continue
		}
		if tof, ok := directToF(work); ok {
			clean = append(clean, tof)
		}
	}
	if len(raw) < 2 || len(clean) < 2 {
		return nil, fmt.Errorf("experiments: fig5ab produced too few estimates")
	}
	return &Result{
		ID:    "fig5ab",
		Title: "ToF sanitization: strongest-path ToF across packets",
		Unit:  "ns",
		Series: []Series{
			{Label: "unsanitized-tof", Values: raw},
			{Label: "sanitized-tof", Values: clean},
		},
		Notes: fmt.Sprintf("tof stddev: unsanitized %.2f ns, sanitized %.2f ns\n",
			stats.StdDev(raw), stats.StdDev(clean)),
	}, nil
}

// Fig5cClusters reproduces Fig. 5(c): (AoA, ToF) estimates from 170
// packets of one link form clusters; the direct path's cluster is tight
// and SpotFi's likelihood metric selects it. The series are per-cluster
// AoA spreads; Notes carries the cluster table and the selection outcome.
func Fig5cClusters(opts Options) (*Result, error) {
	opts = opts.fill()
	d := testbed.Office(opts.Seed)
	const apIdx, targetIdx = 0, 0
	packets := 170
	if opts.Packets != 40 { // caller overrode the default: scale down
		packets = opts.Packets
	}
	burst, err := d.Burst(apIdx, targetIdx, packets)
	if err != nil {
		return nil, err
	}
	est, err := music.NewEstimator(opts.musicParams())
	if err != nil {
		return nil, err
	}
	perPacket := sanitizedEstimates(d, est, burst)
	if len(perPacket) == 0 {
		return nil, fmt.Errorf("experiments: no packets survived estimation")
	}
	cfg := dpath.DefaultConfig()
	cfg.Cluster = cluster.Config{K: 5, MaxIters: 100, Restarts: 8}
	res, err := dpath.Identify(perPacket, cfg, burstRNG(opts.Seed, 5, 0))
	if err != nil {
		return nil, err
	}

	truth := d.GroundTruthAoA(apIdx, targetIdx)
	best, _ := res.Best()

	var notes strings.Builder
	fmt.Fprintf(&notes, "ground-truth direct AoA: %.1f°\n", geom.Deg(truth))
	fmt.Fprintf(&notes, "%-8s %10s %10s %8s %12s %12s %12s\n",
		"cluster", "aoa(deg)", "tof(ns)", "count", "var-aoa", "var-tof", "likelihood")
	series := make([]Series, 0, len(res.Candidates))
	for i, c := range res.Candidates {
		fmt.Fprintf(&notes, "%-8d %10.1f %10.1f %8d %12.5f %12.5f %12.4g\n",
			i, geom.Deg(c.AoA), c.ToF*1e9, c.Count, c.AoAVar, c.ToFVar, c.Likelihood)
		series = append(series, Series{
			Label:  fmt.Sprintf("cluster-%d-aoa-spread", i),
			Values: []float64{math.Sqrt(c.AoAVar)},
		})
	}
	fmt.Fprintf(&notes, "selected direct path: %.1f° (error %.1f°)\n",
		geom.Deg(best.AoA), geom.Deg(math.Abs(best.AoA-truth)))

	return &Result{
		ID:     "fig5c",
		Title:  fmt.Sprintf("ToF-AoA clusters from %d packets", packets),
		Unit:   "normalized AoA spread",
		Series: series,
		Notes:  notes.String(),
	}, nil
}
