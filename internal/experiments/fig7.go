package experiments

import (
	"fmt"

	"spotfi/internal/music"
	"spotfi/internal/testbed"
)

// figure7 runs the localization-error comparison (SpotFi vs the 3-antenna
// ArrayTrack implementation) on one deployment family, pooling over
// opts.Repeats independently-seeded layouts.
func figure7(id, title string, mk func(int64) *testbed.Deployment, opts Options) (*Result, error) {
	opts = opts.fill()
	base, err := music.NewAoAEstimator(music.DefaultAoAParams())
	if err != nil {
		return nil, err
	}
	var spotfiErrs, atErrs, atSynErrs []float64
	for _, seed := range opts.seeds() {
		d := mk(seed)
		loc, err := newLocalizer(d, opts, seed)
		if err != nil {
			return nil, err
		}
		idx := targetsFor(d, opts)
		spotfiErrs = append(spotfiErrs, parallelMap(idx, opts.Workers, func(t int) (float64, bool) {
			e, err := spotfiLocalize(d, loc, t, opts.Packets, nil)
			return e, err == nil
		})...)
		atErrs = append(atErrs, parallelMap(idx, opts.Workers, func(t int) (float64, bool) {
			e, err := arrayTrackLocalize(d, base, t, opts.Packets, nil)
			return e, err == nil
		})...)
		atSynErrs = append(atSynErrs, parallelMap(idx, opts.Workers, func(t int) (float64, bool) {
			e, err := arrayTrackSynthesisLocalize(d, base, t, opts.Packets, nil)
			return e, err == nil
		})...)
	}
	if len(spotfiErrs) == 0 || len(atErrs) == 0 {
		return nil, fmt.Errorf("experiments: %s produced no results", id)
	}
	return &Result{
		ID:    id,
		Title: title,
		Unit:  "m",
		Series: []Series{
			{Label: "spotfi", Values: spotfiErrs},
			{Label: "arraytrack-3ant", Values: atErrs},
			{Label: "arraytrack-synthesis", Values: atSynErrs},
		},
	}, nil
}

// Fig7aOffice reproduces Fig. 7(a): localization error CDF in the indoor
// office deployment (paper: SpotFi 0.4 m median / 1.8 m p80; ArrayTrack
// 1.8 m / 4 m).
func Fig7aOffice(opts Options) (*Result, error) {
	return figure7("fig7a", "localization error, indoor office deployment",
		testbed.Office, opts)
}

// Fig7bNLoS reproduces Fig. 7(b): localization error when targets have at
// most two LoS APs (paper: SpotFi 1.6 m vs ArrayTrack 3.5 m median).
func Fig7bNLoS(opts Options) (*Result, error) {
	return figure7("fig7b", "localization error, high-NLoS deployment",
		testbed.HighNLoS, opts)
}

// Fig7cCorridor reproduces Fig. 7(c): localization error in corridors
// (paper: SpotFi ≈1.1 m vs ArrayTrack ≈4 m median).
func Fig7cCorridor(opts Options) (*Result, error) {
	return figure7("fig7c", "localization error, corridor deployment",
		testbed.Corridor, opts)
}
