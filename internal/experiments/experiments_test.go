package experiments

import (
	"strings"
	"testing"

	"spotfi/internal/stats"
)

// quickOpts keeps unit-test runs fast; the full-scale run happens in
// cmd/spotfi-bench and the root benchmarks.
func quickOpts() Options {
	return Options{Seed: 1, Packets: 6, MaxTargets: 4}
}

func TestFig5Sanitization(t *testing.T) {
	r, err := Fig5Sanitization(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 2 {
		t.Fatalf("series = %d", len(r.Series))
	}
	before := stats.StdDev(r.Series[0].Values)
	after := stats.StdDev(r.Series[1].Values)
	t.Logf("tof stddev: unsanitized=%.2f ns, sanitized=%.2f ns", before, after)
	// Sanitization must remove most of the STO-induced ToF variance.
	if after > before/3 {
		t.Fatalf("sanitization ineffective: stddev before %.2f ns, after %.2f ns", before, after)
	}
}

func TestFig5cClusters(t *testing.T) {
	opts := quickOpts()
	opts.Packets = 30
	r, err := Fig5cClusters(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Notes, "selected direct path") {
		t.Fatalf("notes missing selection: %s", r.Notes)
	}
	if len(r.Series) == 0 {
		t.Fatal("no cluster series")
	}
}

func TestFig7aQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive")
	}
	r, err := Fig7aOffice(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	sp := stats.Median(r.Series[0].Values)
	at := stats.Median(r.Series[1].Values)
	t.Logf("fig7a quick: spotfi=%.2f m, arraytrack=%.2f m", sp, at)
	if sp >= at {
		t.Fatalf("SpotFi (%.2f m) should beat ArrayTrack (%.2f m)", sp, at)
	}
	if out := r.Render(); !strings.Contains(out, "spotfi") || !strings.Contains(out, "cdf") {
		t.Fatalf("render missing content:\n%s", out)
	}
}

func TestFig8aQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive")
	}
	opts := quickOpts()
	opts.MaxTargets = 8
	opts.Packets = 8
	r, err := Fig8aAoA(opts)
	if err != nil {
		t.Fatal(err)
	}
	spLoS := stats.Median(r.Series[0].Values)
	baseLoS := stats.Median(r.Series[1].Values)
	spNLoS := stats.Median(r.Series[2].Values)
	baseNLoS := stats.Median(r.Series[3].Values)
	t.Logf("fig8a quick: los %.1f° vs %.1f°, nlos %.1f° vs %.1f°", spLoS, baseLoS, spNLoS, baseNLoS)
	// The paper's headline gap is in NLoS, where antenna-only MUSIC lacks
	// the resolution to separate the weak direct path from reflections.
	if spNLoS >= baseNLoS {
		t.Fatalf("SpotFi NLoS AoA (%.1f°) should beat MUSIC-AoA (%.1f°)", spNLoS, baseNLoS)
	}
	// LoS errors should at least be small in absolute terms (paper: <5°).
	if spLoS > 6 {
		t.Fatalf("SpotFi LoS AoA error %.1f° too large", spLoS)
	}
}

func TestFig8bQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive")
	}
	opts := quickOpts()
	opts.MaxTargets = 3
	r, err := Fig8bSelection(opts)
	if err != nil {
		t.Fatal(err)
	}
	oracle := stats.Median(r.Series[0].Values)
	spotfiSel := stats.Median(r.Series[1].Values)
	t.Logf("fig8b quick: oracle=%.1f°, spotfi=%.1f°", oracle, spotfiSel)
	// Oracle lower-bounds every scheme.
	if oracle > spotfiSel+1e-9 {
		t.Fatalf("oracle (%.1f°) cannot be worse than spotfi (%.1f°)", oracle, spotfiSel)
	}
}

func TestFig9aQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive")
	}
	r, err := Fig9aDensity(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 4 {
		t.Fatalf("series = %d, want 4", len(r.Series))
	}
}

func TestFig9bQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive")
	}
	opts := quickOpts()
	opts.Packets = 10
	r, err := Fig9bPackets(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 2 { // 6 and 10 packets
		t.Fatalf("series = %d, want 2", len(r.Series))
	}
}

func TestPlanValidationQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("expensive")
	}
	r, err := PlanValidation(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 2 {
		t.Fatalf("series = %d", len(r.Series))
	}
	pred := stats.Median(r.Series[0].Values)
	meas := stats.Median(r.Series[1].Values)
	t.Logf("planval quick: predicted %.2f m, measured %.2f m", pred, meas)
	// The CRLB is a lower bound: the measured median should not beat it
	// by a wide margin.
	if meas < pred/2 {
		t.Fatalf("measured (%.2f) implausibly beats the bound (%.2f)", meas, pred)
	}
}
