package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"spotfi/internal/stats"
)

// BaselineSchema versions the baseline file format; Compare refuses files
// written by a different schema rather than mis-reading them.
const BaselineSchema = 1

// SeriesStats is the accuracy fingerprint of one figure series.
type SeriesStats struct {
	N      int     `json:"n"`
	Median float64 `json:"median"`
	P90    float64 `json:"p90"`
}

// FigureStats records one figure's accuracy and cost in a baseline.
type FigureStats struct {
	Series map[string]SeriesStats `json:"series"`
	// WallSeconds is the figure's end-to-end wall time. Machine-dependent:
	// Compare only gates it by a loose factor.
	WallSeconds float64 `json:"wall_seconds"`
	// AllocBytes and Allocs are heap-allocation deltas over the figure
	// (runtime.MemStats TotalAlloc / Mallocs), a machine-independent proxy
	// for pipeline cost.
	AllocBytes uint64 `json:"alloc_bytes"`
	Allocs     uint64 `json:"allocs"`
}

// BaselineOpts pins the experiment scale a baseline was recorded at.
// Accuracy is deterministic under fixed opts, so comparing runs with
// different opts would gate on noise from scale, not regressions.
type BaselineOpts struct {
	Seed       int64 `json:"seed"`
	Packets    int   `json:"packets"`
	MaxTargets int   `json:"max_targets"`
	Repeats    int   `json:"repeats"`
}

// Baseline is the machine-readable accuracy/perf fingerprint of one
// spotfi-bench run: what BENCH_<runid>.json holds and what the CI
// bench-baseline job diffs against the committed BENCH_baseline.json.
type Baseline struct {
	Schema int    `json:"schema"`
	RunID  string `json:"run_id"`
	// CreatedAt is an RFC 3339 timestamp, informational only.
	CreatedAt string                 `json:"created_at"`
	Opts      BaselineOpts           `json:"opts"`
	Figures   map[string]FigureStats `json:"figures"`
}

// NewBaseline returns an empty baseline for the given run.
func NewBaseline(runID, createdAt string, opts Options) *Baseline {
	return &Baseline{
		Schema:    BaselineSchema,
		RunID:     runID,
		CreatedAt: createdAt,
		Opts: BaselineOpts{
			Seed:       opts.Seed,
			Packets:    opts.Packets,
			MaxTargets: opts.MaxTargets,
			Repeats:    opts.Repeats,
		},
		Figures: make(map[string]FigureStats),
	}
}

// AddFigure folds one figure result (plus its measured cost) into the
// baseline.
func (b *Baseline) AddFigure(r *Result, wallSeconds float64, allocBytes, allocs uint64) {
	fs := FigureStats{
		Series:      make(map[string]SeriesStats, len(r.Series)),
		WallSeconds: wallSeconds,
		AllocBytes:  allocBytes,
		Allocs:      allocs,
	}
	for _, s := range r.Series {
		if len(s.Values) == 0 {
			continue
		}
		fs.Series[s.Label] = SeriesStats{
			N:      len(s.Values),
			Median: stats.Median(s.Values),
			P90:    stats.Percentile(s.Values, 90),
		}
	}
	b.Figures[r.ID] = fs
}

// WriteFile writes the baseline as indented JSON.
func (b *Baseline) WriteFile(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadBaseline reads a baseline file and checks its schema.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", path, err)
	}
	if b.Schema != BaselineSchema {
		return nil, fmt.Errorf("experiments: %s: schema %d, want %d", path, b.Schema, BaselineSchema)
	}
	return &b, nil
}

// Tolerance bounds how much worse a run may be than its baseline before
// Compare flags a regression. Improvements never fail.
type Tolerance struct {
	// ErrRel and ErrAbs bound accuracy stats (median/p90): a current value
	// fails when it exceeds base + max(ErrAbs, base·ErrRel). Both slack
	// terms matter — near-zero baselines need the absolute floor, large
	// ones the relative one.
	ErrRel float64
	ErrAbs float64
	// WallFactor bounds wall time (machine-dependent, so loose).
	WallFactor float64
	// AllocFactor bounds allocation deltas (mostly deterministic, but the
	// runtime owns some background allocation).
	AllocFactor float64
}

// DefaultTolerance matches the CI bench-baseline gate: accuracy within
// 25% relative / 5 cm absolute, wall time within 5×, allocations within 3×.
func DefaultTolerance() Tolerance {
	return Tolerance{ErrRel: 0.25, ErrAbs: 0.05, WallFactor: 5, AllocFactor: 3}
}

func (t Tolerance) fill() Tolerance {
	d := DefaultTolerance()
	if t.ErrRel <= 0 {
		t.ErrRel = d.ErrRel
	}
	if t.ErrAbs <= 0 {
		t.ErrAbs = d.ErrAbs
	}
	if t.WallFactor <= 0 {
		t.WallFactor = d.WallFactor
	}
	if t.AllocFactor <= 0 {
		t.AllocFactor = d.AllocFactor
	}
	return t
}

// Compare diffs cur against base and returns one violation string per
// regression beyond tol (empty slice = pass). Figures present in base but
// missing from cur are violations (coverage loss); figures only in cur are
// ignored (new figures cannot regress). Mismatched run opts are a single
// violation: cross-scale numbers are not comparable.
func Compare(base, cur *Baseline, tol Tolerance) []string {
	tol = tol.fill()
	if base.Opts != cur.Opts {
		return []string{fmt.Sprintf("opts mismatch: baseline %+v vs current %+v (rerun with matching -seed/-packets/-targets/-repeats)",
			base.Opts, cur.Opts)}
	}
	var out []string
	ids := make([]string, 0, len(base.Figures))
	for id := range base.Figures {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		bf := base.Figures[id]
		cf, ok := cur.Figures[id]
		if !ok {
			out = append(out, fmt.Sprintf("%s: missing from current run", id))
			continue
		}
		labels := make([]string, 0, len(bf.Series))
		for lab := range bf.Series {
			labels = append(labels, lab)
		}
		sort.Strings(labels)
		for _, lab := range labels {
			bs := bf.Series[lab]
			cs, ok := cf.Series[lab]
			if !ok {
				out = append(out, fmt.Sprintf("%s/%s: series missing from current run", id, lab))
				continue
			}
			if cs.N != bs.N {
				out = append(out, fmt.Sprintf("%s/%s: n=%d, baseline %d (sample-size drift)", id, lab, cs.N, bs.N))
			}
			if v := accuracyViolation(id, lab, "median", bs.Median, cs.Median, tol); v != "" {
				out = append(out, v)
			}
			if v := accuracyViolation(id, lab, "p90", bs.P90, cs.P90, tol); v != "" {
				out = append(out, v)
			}
		}
		if bf.WallSeconds > 0 && cf.WallSeconds > bf.WallSeconds*tol.WallFactor {
			out = append(out, fmt.Sprintf("%s: wall %.2fs > %.0f× baseline %.2fs", id, cf.WallSeconds, tol.WallFactor, bf.WallSeconds))
		}
		if bf.AllocBytes > 0 && float64(cf.AllocBytes) > float64(bf.AllocBytes)*tol.AllocFactor {
			out = append(out, fmt.Sprintf("%s: alloc %d B > %.0f× baseline %d B", id, cf.AllocBytes, tol.AllocFactor, bf.AllocBytes))
		}
	}
	return out
}

// accuracyViolation gates one accuracy stat one-sidedly: only getting
// worse (larger error) beyond the combined slack fails.
func accuracyViolation(id, lab, stat string, base, cur float64, tol Tolerance) string {
	slack := base * tol.ErrRel
	if tol.ErrAbs > slack {
		slack = tol.ErrAbs
	}
	if cur > base+slack {
		return fmt.Sprintf("%s/%s: %s %.4f > baseline %.4f + %.4f", id, lab, stat, cur, base, slack)
	}
	return ""
}
