package experiments

import (
	"path/filepath"
	"strings"
	"testing"
)

func baselinePair() (*Baseline, *Baseline) {
	opts := Options{Seed: 1, Packets: 10, MaxTargets: 8, Repeats: 1}
	mk := func(runID string) *Baseline {
		b := NewBaseline(runID, "2026-08-05T00:00:00Z", opts)
		b.AddFigure(&Result{
			ID: "fig7a",
			Series: []Series{
				{Label: "spotfi", Values: []float64{0.2, 0.4, 0.6, 0.8}},
				{Label: "arraytrack", Values: []float64{1.0, 2.0, 3.0, 4.0}},
			},
		}, 2.0, 1_000_000, 10_000)
		return b
	}
	return mk("base"), mk("cur")
}

func TestCompareIdenticalPasses(t *testing.T) {
	base, cur := baselinePair()
	if v := Compare(base, cur, Tolerance{}); len(v) != 0 {
		t.Fatalf("identical baselines flagged: %v", v)
	}
}

func TestCompareFlagsAccuracyRegression(t *testing.T) {
	base, cur := baselinePair()
	fig := cur.Figures["fig7a"]
	s := fig.Series["spotfi"]
	s.Median *= 2 // well past 25% rel + 5 cm abs
	fig.Series["spotfi"] = s
	cur.Figures["fig7a"] = fig
	v := Compare(base, cur, Tolerance{})
	if len(v) != 1 || !strings.Contains(v[0], "fig7a/spotfi: median") {
		t.Fatalf("violations = %v", v)
	}
}

func TestCompareToleratesSlackAndImprovement(t *testing.T) {
	base, cur := baselinePair()
	fig := cur.Figures["fig7a"]
	s := fig.Series["spotfi"]
	s.Median += 0.04 // within the 5 cm absolute floor
	s.P90 -= 0.5     // improvements never fail
	fig.Series["spotfi"] = s
	cur.Figures["fig7a"] = fig
	if v := Compare(base, cur, Tolerance{}); len(v) != 0 {
		t.Fatalf("in-tolerance drift flagged: %v", v)
	}
}

func TestCompareFlagsWallAndAllocBlowups(t *testing.T) {
	base, cur := baselinePair()
	fig := cur.Figures["fig7a"]
	fig.WallSeconds = 100 // 50× baseline
	fig.AllocBytes = 100_000_000
	cur.Figures["fig7a"] = fig
	v := Compare(base, cur, Tolerance{})
	if len(v) != 2 {
		t.Fatalf("violations = %v, want wall + alloc", v)
	}
}

func TestCompareFlagsMissingFigureAndSeries(t *testing.T) {
	base, cur := baselinePair()
	delete(cur.Figures, "fig7a")
	if v := Compare(base, cur, Tolerance{}); len(v) != 1 || !strings.Contains(v[0], "missing") {
		t.Fatalf("violations = %v", v)
	}

	base2, cur2 := baselinePair()
	fig := cur2.Figures["fig7a"]
	delete(fig.Series, "arraytrack")
	cur2.Figures["fig7a"] = fig
	if v := Compare(base2, cur2, Tolerance{}); len(v) != 1 || !strings.Contains(v[0], "arraytrack: series missing") {
		t.Fatalf("violations = %v", v)
	}
}

func TestCompareRejectsOptsMismatch(t *testing.T) {
	base, cur := baselinePair()
	cur.Opts.Packets = 40
	v := Compare(base, cur, Tolerance{})
	if len(v) != 1 || !strings.Contains(v[0], "opts mismatch") {
		t.Fatalf("violations = %v", v)
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	base, _ := baselinePair()
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := base.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.RunID != base.RunID || got.Opts != base.Opts {
		t.Fatalf("round trip lost header: %+v", got)
	}
	if got.Figures["fig7a"].Series["spotfi"] != base.Figures["fig7a"].Series["spotfi"] {
		t.Fatalf("round trip lost stats: %+v", got.Figures)
	}
	if v := Compare(base, got, Tolerance{}); len(v) != 0 {
		t.Fatalf("round-tripped baseline differs: %v", v)
	}
}

func TestLoadBaselineRejectsBadSchema(t *testing.T) {
	base, _ := baselinePair()
	base.Schema = 99
	path := filepath.Join(t.TempDir(), "BENCH_bad.json")
	if err := base.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBaseline(path); err == nil {
		t.Fatal("wrong schema accepted")
	}
}
