package experiments

import (
	"fmt"

	"spotfi/internal/testbed"
)

// Fig9aDensity reproduces Fig. 9(a): SpotFi's localization error as the
// number of APs that hear the target varies from 3 to 5 (plus all 6),
// emulating different deployment densities via random AP subsets (paper:
// medians ≈1.9/0.8/0.6 m for 3/4/5 APs).
func Fig9aDensity(opts Options) (*Result, error) {
	opts = opts.fill()
	res := &Result{ID: "fig9a", Title: "localization error vs number of APs", Unit: "m"}
	ks := []int{3, 4, 5, 6}
	pooled := make([][]float64, len(ks))
	for _, seed := range opts.seeds() {
		d := testbed.Office(seed)
		loc, err := newLocalizer(d, opts, seed)
		if err != nil {
			return nil, err
		}
		idx := targetsFor(d, opts)
		for ki, k := range ks {
			k := k
			errs := parallelMap(idx, opts.Workers, func(t int) (float64, bool) {
				subset := d.SubsetAPs(t, k)
				e, err := spotfiLocalize(d, loc, t, opts.Packets, subset)
				return e, err == nil
			})
			pooled[ki] = append(pooled[ki], errs...)
		}
	}
	for ki, k := range ks {
		res.Series = append(res.Series, Series{Label: fmt.Sprintf("%d-aps", k), Values: pooled[ki]})
	}
	if len(res.Series[0].Values) == 0 {
		return nil, fmt.Errorf("experiments: fig9a produced no results")
	}
	return res, nil
}

// Fig9bPackets reproduces Fig. 9(b): SpotFi's localization error as the
// number of packets per burst varies from 6 to 40 (paper: ≈0.5 m median
// at 10 packets vs ≈0.4 m at 40).
func Fig9bPackets(opts Options) (*Result, error) {
	opts = opts.fill()
	counts := []int{6, 10, 20, 40}
	if opts.Packets < 40 {
		// Scaled-down run: sweep up to the requested budget.
		counts = nil
		for _, c := range []int{6, 10, 20, 40} {
			if c <= opts.Packets {
				counts = append(counts, c)
			}
		}
		if len(counts) == 0 {
			counts = []int{opts.Packets}
		}
	}
	pooled := make([][]float64, len(counts))
	for _, seed := range opts.seeds() {
		d := testbed.Office(seed)
		loc, err := newLocalizer(d, opts, seed)
		if err != nil {
			return nil, err
		}
		idx := targetsFor(d, opts)
		for ni, n := range counts {
			n := n
			errs := parallelMap(idx, opts.Workers, func(t int) (float64, bool) {
				e, err := spotfiLocalize(d, loc, t, n, nil)
				return e, err == nil
			})
			pooled[ni] = append(pooled[ni], errs...)
		}
	}
	res := &Result{ID: "fig9b", Title: "localization error vs packets per burst", Unit: "m"}
	for ni, n := range counts {
		res.Series = append(res.Series, Series{Label: fmt.Sprintf("%d-packets", n), Values: pooled[ni]})
	}
	if len(res.Series[len(res.Series)-1].Values) == 0 {
		return nil, fmt.Errorf("experiments: fig9b produced no results")
	}
	return res, nil
}

// All runs every figure reproduction and returns the results in paper
// order.
func All(opts Options) ([]*Result, error) {
	type fn struct {
		name string
		f    func(Options) (*Result, error)
	}
	fns := []fn{
		{"fig5ab", Fig5Sanitization},
		{"fig5c", Fig5cClusters},
		{"fig7a", Fig7aOffice},
		{"fig7b", Fig7bNLoS},
		{"fig7c", Fig7cCorridor},
		{"fig8a", Fig8aAoA},
		{"fig8b", Fig8bSelection},
		{"fig9a", Fig9aDensity},
		{"fig9b", Fig9bPackets},
	}
	var out []*Result
	for _, f := range fns {
		r, err := f.f(opts)
		if err != nil {
			return out, fmt.Errorf("experiments: %s: %w", f.name, err)
		}
		out = append(out, r)
	}
	return out, nil
}
