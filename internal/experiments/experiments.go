// Package experiments reproduces every figure of the paper's evaluation
// (Sec. 4): each Fig* function regenerates the data behind one figure on
// the simulated testbed and returns labeled series that cmd/spotfi-bench
// prints and EXPERIMENTS.md records.
package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"sync"

	"spotfi"
	"spotfi/internal/csi"
	"spotfi/internal/locate"
	"spotfi/internal/music"
	"spotfi/internal/sanitize"
	"spotfi/internal/stats"
	"spotfi/internal/testbed"
)

// Options scales an experiment run. The zero value is filled with the
// paper's full-scale parameters by (*Options).fill.
type Options struct {
	// Seed drives the whole run deterministically.
	Seed int64
	// Packets per burst (the paper's method uses 40; Fig. 9b sweeps it).
	Packets int
	// MaxTargets caps targets per deployment (0 = all) to allow quick
	// runs; the full run uses every target.
	MaxTargets int
	// Workers bounds parallelism (0 = GOMAXPROCS).
	Workers int
	// Repeats pools the localization experiments over this many
	// independently-seeded deployments (target layouts and channels) to
	// tighten the reported distributions. 0 or 1 runs one deployment.
	Repeats int
	// DenseSweep forces the classic full-grid MUSIC sweep instead of the
	// default coarse-to-fine refinement — the A/B switch for validating
	// that the fast sweep does not move the reproduced figures. Not part
	// of the benchmark baseline identity (see BaselineOpts).
	DenseSweep bool
}

// musicParams returns the estimator configuration an experiment should
// use: the paper defaults, with the sweep strategy selected by DenseSweep.
func (o Options) musicParams() music.Params {
	p := music.DefaultParams()
	if o.DenseSweep {
		p.CoarseGridFactor = 1
	}
	return p
}

// seeds returns the deployment seeds a repeated run covers.
func (o Options) seeds() []int64 {
	n := o.Repeats
	if n < 1 {
		n = 1
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = o.Seed + int64(i)*1000
	}
	return out
}

func (o Options) fill() Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Packets == 0 {
		o.Packets = 40
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// Series is one labeled error distribution (a CDF curve in the paper).
type Series struct {
	Label  string
	Values []float64
}

// Result is the reproduced data behind one figure.
type Result struct {
	ID     string
	Title  string
	Unit   string
	Series []Series
	// Notes carries per-experiment observations (cluster tables, etc.).
	Notes string
}

// Render formats the result as the bench harness prints it: one summary
// row per series plus CDF samples.
func (r *Result) Render() string {
	var b strings.Builder
	labels := make([]string, len(r.Series))
	sums := make([]stats.Summary, len(r.Series))
	for i, s := range r.Series {
		labels[i] = s.Label
		sums[i] = stats.Summarize(s.Values)
	}
	fmt.Fprintf(&b, "== %s: %s (unit: %s) ==\n", r.ID, r.Title, r.Unit)
	b.WriteString(stats.Table("", labels, sums))
	// Bootstrap 95% CIs on the medians so readers can judge whether
	// series differences are resolved at this sample size.
	rng := rand.New(rand.NewSource(7))
	for _, s := range r.Series {
		if len(s.Values) < 5 {
			continue
		}
		lo, hi := stats.BootstrapMedianCI(s.Values, 400, 0.95, rng)
		fmt.Fprintf(&b, "ci  %-22s median 95%% CI [%.3f, %.3f]\n", s.Label, lo, hi)
	}
	for _, s := range r.Series {
		if len(s.Values) == 0 {
			continue
		}
		xs, ps := stats.NewCDF(s.Values).Series(9)
		fmt.Fprintf(&b, "cdf %-22s", s.Label)
		for i := range xs {
			fmt.Fprintf(&b, " (%.2f,%.2f)", xs[i], ps[i])
		}
		b.WriteString("\n")
	}
	if r.Notes != "" {
		b.WriteString(r.Notes)
		if !strings.HasSuffix(r.Notes, "\n") {
			b.WriteString("\n")
		}
	}
	return b.String()
}

// targets returns the target indices an experiment covers under opts.
func targetsFor(d *testbed.Deployment, opts Options) []int {
	n := len(d.Targets)
	if opts.MaxTargets > 0 && opts.MaxTargets < n {
		n = opts.MaxTargets
	}
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// parallelMap runs fn(idx[i]) for every position i with bounded
// parallelism, storing results positionally so output order is
// deterministic.
func parallelMap(idx []int, workers int, fn func(t int) (float64, bool)) []float64 {
	vals := make([]float64, len(idx))
	oks := make([]bool, len(idx))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, t := range idx {
		wg.Add(1)
		sem <- struct{}{}
		go func(i, t int) {
			defer wg.Done()
			defer func() { <-sem }()
			vals[i], oks[i] = fn(t)
		}(i, t)
	}
	wg.Wait()
	var out []float64
	for i := range vals {
		if oks[i] {
			out = append(out, vals[i])
		}
	}
	sort.Float64s(out)
	return out
}

// deploymentAPs converts testbed APs to the public type.
func deploymentAPs(d *testbed.Deployment) []spotfi.AP {
	aps := make([]spotfi.AP, len(d.APs))
	for i, ap := range d.APs {
		aps[i] = spotfi.AP{ID: ap.ID, Pos: ap.Pos, NormalAngle: ap.NormalAngle}
	}
	return aps
}

// newLocalizer builds a pipeline for deployment d. Workers=1 because the
// experiment already parallelizes across targets.
func newLocalizer(d *testbed.Deployment, opts Options, seed int64) (*spotfi.Localizer, error) {
	cfg := spotfi.DefaultConfig(d.Bounds)
	cfg.Music = opts.musicParams()
	cfg.Workers = 1
	cfg.Seed = seed
	return spotfi.New(cfg, deploymentAPs(d))
}

// spotfiLocalize runs the full SpotFi pipeline for target t using the APs
// in apSet (nil = all) and returns the localization error in meters.
func spotfiLocalize(d *testbed.Deployment, loc *spotfi.Localizer, t, packets int, apSet []int) (float64, error) {
	bursts := make(map[int][]*csi.Packet)
	if apSet == nil {
		apSet = make([]int, len(d.APs))
		for i := range apSet {
			apSet[i] = i
		}
	}
	for _, a := range apSet {
		b, err := d.Burst(a, t, packets)
		if err != nil {
			// An AP that cannot hear the target simply contributes no
			// burst, as in a real deployment.
			continue
		}
		bursts[a] = b
	}
	p, _, _, err := loc.LocalizeBursts(bursts)
	if err != nil {
		return 0, err
	}
	return p.Dist(d.Targets[t]), nil
}

// arrayTrackLocalize runs the practical 3-antenna ArrayTrack baseline the
// paper compares against (Sec. 4.1): per AP the antenna-only MUSIC spectra
// of the burst are averaged and the strongest peak is taken as the direct
// bearing (with 3 antennas there is no better selection signal — exactly
// the failure mode Fig. 8b documents for max-power selection), then the
// bearings are triangulated by unweighted least squares.
func arrayTrackLocalize(d *testbed.Deployment, est *music.AoAEstimator, t, packets int, apSet []int) (float64, error) {
	obs, err := arrayTrackSpectra(d, est, t, packets, apSet)
	if err != nil {
		return 0, err
	}
	var apObs []locate.APObservation
	for _, o := range obs {
		// Strongest interior peak of the averaged spectrum.
		bestI, bestV := -1, 0.0
		for i := 1; i < len(o.P)-1; i++ {
			if o.P[i] >= o.P[i-1] && o.P[i] >= o.P[i+1] && o.P[i] > bestV {
				bestI, bestV = i, o.P[i]
			}
		}
		if bestI < 0 {
			continue
		}
		apObs = append(apObs, locate.APObservation{
			Pos:         o.Pos,
			NormalAngle: o.NormalAngle,
			AoA:         o.Thetas[bestI],
			Likelihood:  1,
		})
	}
	if len(apObs) < 2 {
		return 0, fmt.Errorf("experiments: only %d usable APs for ArrayTrack", len(apObs))
	}
	cfg := locate.DefaultConfig(d.Bounds)
	cfg.RSSIWeightDB2 = 0 // bearings only
	cfg.FitIntercept = false
	cfg.RobustRounds = 0 // no likelihood information to exploit
	res, err := locate.Locate(apObs, cfg)
	if err != nil {
		return 0, err
	}
	return res.Location.Dist(d.Targets[t]), nil
}

// arrayTrackSynthesisLocalize is the softer ArrayTrack variant: instead of
// committing to one bearing per AP it maximizes the product of the full
// averaged spectra over candidate locations (the original ArrayTrack
// spectrum-synthesis idea).
func arrayTrackSynthesisLocalize(d *testbed.Deployment, est *music.AoAEstimator, t, packets int, apSet []int) (float64, error) {
	obs, err := arrayTrackSpectra(d, est, t, packets, apSet)
	if err != nil {
		return 0, err
	}
	if len(obs) < 2 {
		return 0, fmt.Errorf("experiments: only %d usable APs for ArrayTrack synthesis", len(obs))
	}
	p, err := locate.LocateArrayTrack(obs, locate.DefaultArrayTrackConfig(d.Bounds))
	if err != nil {
		return 0, err
	}
	return p.Dist(d.Targets[t]), nil
}

// arrayTrackSpectra computes the per-AP burst-averaged MUSIC-AoA spectra.
func arrayTrackSpectra(d *testbed.Deployment, est *music.AoAEstimator, t, packets int, apSet []int) ([]locate.SpectrumObservation, error) {
	if apSet == nil {
		apSet = make([]int, len(d.APs))
		for i := range apSet {
			apSet[i] = i
		}
	}
	var obs []locate.SpectrumObservation
	for _, a := range apSet {
		burst, err := d.Burst(a, t, packets)
		if err != nil {
			continue // this AP cannot hear the target
		}
		var acc []float64
		var thetas []float64
		used := 0
		for _, pkt := range burst {
			spec, err := est.Spectrum(pkt.CSI)
			if err != nil {
				continue
			}
			if acc == nil {
				acc = make([]float64, len(spec.P))
				thetas = spec.Thetas
			}
			// Normalize each packet's spectrum so one packet cannot
			// dominate the average.
			var max float64
			for _, v := range spec.P {
				if v > max {
					max = v
				}
			}
			if max <= 0 {
				continue
			}
			for i, v := range spec.P {
				acc[i] += v / max
			}
			used++
		}
		if used == 0 {
			continue
		}
		for i := range acc {
			acc[i] /= float64(used)
		}
		obs = append(obs, locate.SpectrumObservation{
			Pos:         d.APs[a].Pos,
			NormalAngle: d.APs[a].NormalAngle,
			Thetas:      thetas,
			P:           acc,
		})
	}
	return obs, nil
}

// sanitizedEstimates runs Algorithm 1 + super-resolution on every packet
// of a burst.
func sanitizedEstimates(d *testbed.Deployment, est *music.Estimator, burst []*csi.Packet) [][]music.PathEstimate {
	out := make([][]music.PathEstimate, 0, len(burst))
	for _, pkt := range burst {
		work := pkt.CSI.Clone()
		if _, err := sanitize.ToF(work, d.Band.SubcarrierSpacingHz); err != nil {
			continue
		}
		paths, err := est.EstimatePaths(work)
		if err != nil {
			continue
		}
		out = append(out, paths)
	}
	return out
}

// burstRNG returns a deterministic RNG for clustering in experiment ex.
func burstRNG(seed int64, ex, t int) *rand.Rand {
	return rand.New(rand.NewSource(seed*1_000_003 + int64(ex)*7919 + int64(t)))
}
