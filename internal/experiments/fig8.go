package experiments

import (
	"fmt"
	"math"

	"spotfi/internal/dpath"
	"spotfi/internal/geom"
	"spotfi/internal/music"
	"spotfi/internal/sanitize"
	"spotfi/internal/testbed"
)

// Fig8aAoA reproduces Fig. 8(a): the AoA estimation error of SpotFi's
// super-resolution algorithm vs the MUSIC-AoA baseline, separately for LoS
// and NLoS links. Per the paper's method, the error of a packet is the
// distance from the ground-truth direct AoA to the *closest* estimate, so
// selection quality is factored out.
func Fig8aAoA(opts Options) (*Result, error) {
	opts = opts.fill()
	d := testbed.Office(opts.Seed)
	// Validate the estimator configuration (and warm the shared steering
	// cache) before fanning out; each worker goroutine then builds its own
	// estimator — a music.Estimator owns mutable sweep arenas and is
	// single-goroutine.
	if _, err := music.NewEstimator(opts.musicParams()); err != nil {
		return nil, err
	}
	base, err := music.NewAoAEstimator(music.DefaultAoAParams())
	if err != nil {
		return nil, err
	}
	esprit, err := music.NewESPRIT(music.DefaultAoAParams())
	if err != nil {
		return nil, err
	}
	idx := targetsFor(d, opts)

	type sample struct {
		spotfi, baseline, esprit float64
		los                      bool
		ok                       bool
	}
	results := make([][]sample, len(idx))

	closestErr := func(paths []music.PathEstimate, truth float64) (float64, bool) {
		best := math.Inf(1)
		for _, p := range paths {
			if e := math.Abs(p.AoA - truth); e < best {
				best = e
			}
		}
		return best, !math.IsInf(best, 1)
	}

	sem := make(chan struct{}, opts.Workers)
	done := make(chan int)
	for i, t := range idx {
		go func(i, t int) {
			sem <- struct{}{}
			defer func() { <-sem; done <- i }()
			est, err := music.NewEstimator(opts.musicParams())
			if err != nil {
				return
			}
			losSet := map[int]bool{}
			for _, a := range d.LoSAPs(t) {
				losSet[a] = true
			}
			var out []sample
			for a := range d.APs {
				burst, err := d.Burst(a, t, opts.Packets)
				if err != nil {
					continue
				}
				truth := d.GroundTruthAoA(a, t)
				for _, pkt := range burst {
					var s sample
					s.los = losSet[a]
					work := pkt.CSI.Clone()
					if _, err := sanitize.ToF(work, d.Band.SubcarrierSpacingHz); err != nil {
						continue
					}
					sp, err1 := est.EstimatePaths(work)
					bp, err2 := base.EstimatePaths(pkt.CSI)
					ep, err3 := esprit.EstimatePaths(pkt.CSI)
					if err1 != nil || err2 != nil || err3 != nil {
						continue
					}
					se, ok1 := closestErr(sp, truth)
					be, ok2 := closestErr(bp, truth)
					ee, ok3 := closestErr(ep, truth)
					if !ok1 || !ok2 || !ok3 {
						continue
					}
					s.spotfi, s.baseline, s.esprit, s.ok = geom.Deg(se), geom.Deg(be), geom.Deg(ee), true
					out = append(out, s)
				}
			}
			results[i] = out
		}(i, t)
	}
	for range idx {
		<-done
	}

	series := map[string][]float64{}
	for _, rs := range results {
		for _, s := range rs {
			if !s.ok {
				continue
			}
			key := "nlos"
			if s.los {
				key = "los"
			}
			series["spotfi-"+key] = append(series["spotfi-"+key], s.spotfi)
			series["music-aoa-"+key] = append(series["music-aoa-"+key], s.baseline)
			series["esprit-"+key] = append(series["esprit-"+key], s.esprit)
		}
	}
	res := &Result{ID: "fig8a", Title: "AoA estimation error (closest estimate)", Unit: "deg"}
	for _, label := range []string{"spotfi-los", "music-aoa-los", "esprit-los", "spotfi-nlos", "music-aoa-nlos", "esprit-nlos"} {
		res.Series = append(res.Series, Series{Label: label, Values: series[label]})
	}
	if len(series["spotfi-los"]) == 0 {
		return nil, fmt.Errorf("experiments: fig8a produced no LoS samples")
	}
	return res, nil
}

// Fig8bSelection reproduces Fig. 8(b): the direct-path *selection* error of
// SpotFi's likelihood metric vs the LTEye (min-ToF), CUPID (max-power), and
// oracle rules, all operating on SpotFi's super-resolution estimates.
func Fig8bSelection(opts Options) (*Result, error) {
	opts = opts.fill()
	if _, err := music.NewEstimator(opts.musicParams()); err != nil {
		return nil, err
	}
	series := map[string][]float64{}
	for _, d := range []*testbed.Deployment{testbed.Office(opts.Seed), testbed.HighNLoS(opts.Seed)} {
		idx := targetsFor(d, opts)
		type linkErrs struct {
			vals map[string][]float64
		}
		perTarget := make([]linkErrs, len(idx))
		sem := make(chan struct{}, opts.Workers)
		done := make(chan int)
		for i, t := range idx {
			go func(i, t int) {
				sem <- struct{}{}
				defer func() { <-sem; done <- i }()
				est, err := music.NewEstimator(opts.musicParams())
				if err != nil {
					return
				}
				vals := map[string][]float64{}
				for a := range d.APs {
					burst, err := d.Burst(a, t, opts.Packets)
					if err != nil {
						continue
					}
					perPacket := sanitizedEstimates(d, est, burst)
					if len(perPacket) == 0 {
						continue
					}
					res, err := dpath.Identify(perPacket, dpath.DefaultConfig(), burstRNG(opts.Seed, 8, t*100+a))
					if err != nil {
						continue
					}
					truth := d.GroundTruthAoA(a, t)
					if c, ok := res.Best(); ok {
						vals["spotfi"] = append(vals["spotfi"], geom.Deg(math.Abs(c.AoA-truth)))
					}
					if c, ok := res.MinToF(); ok {
						vals["lteye-min-tof"] = append(vals["lteye-min-tof"], geom.Deg(math.Abs(c.AoA-truth)))
					}
					if c, ok := res.MaxPower(); ok {
						vals["cupid-max-power"] = append(vals["cupid-max-power"], geom.Deg(math.Abs(c.AoA-truth)))
					}
					if c, ok := res.Oracle(truth); ok {
						vals["oracle"] = append(vals["oracle"], geom.Deg(math.Abs(c.AoA-truth)))
					}
				}
				perTarget[i] = linkErrs{vals: vals}
			}(i, t)
		}
		for range idx {
			<-done
		}
		for _, le := range perTarget {
			for k, v := range le.vals {
				series[k] = append(series[k], v...)
			}
		}
	}
	if len(series["spotfi"]) == 0 {
		return nil, fmt.Errorf("experiments: fig8b produced no samples")
	}
	res := &Result{ID: "fig8b", Title: "direct-path AoA selection error", Unit: "deg"}
	for _, label := range []string{"oracle", "spotfi", "lteye-min-tof", "cupid-max-power"} {
		res.Series = append(res.Series, Series{Label: label, Values: series[label]})
	}
	return res, nil
}
