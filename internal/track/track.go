// Package track smooths sequences of SpotFi location fixes into a motion
// track — the "motion tracing" application the paper's conclusion points
// to. It implements a constant-velocity Kalman filter in the plane with
// per-fix measurement noise derived from the localization confidence, plus
// a gating test that rejects fixes inconsistent with the track.
package track

import (
	"fmt"
	"math"

	"spotfi/internal/geom"
)

// Config sets the filter dynamics.
type Config struct {
	// ProcessNoiseAccel is the white-acceleration spectral density
	// (m/s²·√Hz): how hard the target is allowed to maneuver.
	ProcessNoiseAccel float64
	// MeasurementStdM is the default per-fix position noise σ (meters),
	// used when a fix does not carry its own.
	MeasurementStdM float64
	// GateSigma rejects fixes whose Mahalanobis distance from the
	// predicted position exceeds this many standard deviations (0
	// disables gating).
	GateSigma float64
}

// DefaultConfig returns dynamics suited to a walking target (≤2 m/s).
func DefaultConfig() Config {
	return Config{ProcessNoiseAccel: 0.4, MeasurementStdM: 0.8, GateSigma: 4}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.ProcessNoiseAccel <= 0 {
		return fmt.Errorf("track: process noise must be positive")
	}
	if c.MeasurementStdM <= 0 {
		return fmt.Errorf("track: measurement std must be positive")
	}
	if c.GateSigma < 0 {
		return fmt.Errorf("track: gate must be non-negative")
	}
	return nil
}

// Filter is a constant-velocity Kalman filter over state [x y vx vy].
// The zero value is not usable; construct with New.
type Filter struct {
	cfg Config

	initialized bool
	lastT       float64

	// State mean and covariance.
	x [4]float64
	p [4][4]float64

	accepted, rejected int
}

// New returns a Filter with the given dynamics.
func New(cfg Config) (*Filter, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Filter{cfg: cfg}, nil
}

// Fix is one localization result with a timestamp.
type Fix struct {
	// T is the fix time in seconds (monotonic).
	T float64
	// Pos is the estimated position.
	Pos geom.Point
	// StdM optionally overrides the measurement noise for this fix
	// (0 = use the config default). Callers can derive it from the
	// localization likelihoods.
	StdM float64
}

// State is the filter output after an update.
type State struct {
	Pos geom.Point
	Vel geom.Vector
	// PosStd is the 1-σ position uncertainty (circular approximation).
	PosStd float64
	// Accepted reports whether the fix passed the gate and was fused.
	Accepted bool
}

// Update fuses one fix and returns the new state. Fixes must arrive in
// non-decreasing time order.
func (f *Filter) Update(fix Fix) (State, error) {
	if !finite(fix.Pos.X) || !finite(fix.Pos.Y) || !finite(fix.T) {
		return State{}, fmt.Errorf("track: non-finite fix")
	}
	if f.initialized && fix.T < f.lastT {
		return State{}, fmt.Errorf("track: fix at t=%v precedes t=%v", fix.T, f.lastT)
	}
	r := f.cfg.MeasurementStdM
	if fix.StdM > 0 {
		r = fix.StdM
	}
	r2 := r * r

	if !f.initialized {
		f.initialized = true
		f.lastT = fix.T
		f.x = [4]float64{fix.Pos.X, fix.Pos.Y, 0, 0}
		f.p = [4][4]float64{}
		f.p[0][0], f.p[1][1] = r2, r2
		// Unknown velocity: generous prior.
		f.p[2][2], f.p[3][3] = 4, 4
		f.accepted++
		return f.state(true), nil
	}

	dt := fix.T - f.lastT
	f.predict(dt)
	f.lastT = fix.T

	// Innovation and gate (position components only; x and y decouple in
	// the measurement model).
	iy := [2]float64{fix.Pos.X - f.x[0], fix.Pos.Y - f.x[1]}
	sxx := f.p[0][0] + r2
	syy := f.p[1][1] + r2
	maha := iy[0]*iy[0]/sxx + iy[1]*iy[1]/syy
	if f.cfg.GateSigma > 0 && maha > f.cfg.GateSigma*f.cfg.GateSigma {
		f.rejected++
		return f.state(false), nil
	}

	// Sequential scalar updates for the two position measurements.
	f.scalarUpdate(0, iy[0], r2)
	f.scalarUpdate(1, iy[1], r2)
	f.accepted++
	return f.state(true), nil
}

// predict advances the state by dt seconds under the constant-velocity
// model with white-acceleration process noise.
func (f *Filter) predict(dt float64) {
	if dt <= 0 {
		return
	}
	// x ← F·x with F = [[1,0,dt,0],[0,1,0,dt],[0,0,1,0],[0,0,0,1]].
	f.x[0] += dt * f.x[2]
	f.x[1] += dt * f.x[3]

	// P ← F·P·Fᵀ + Q.
	var np [4][4]float64
	fMat := [4][4]float64{
		{1, 0, dt, 0},
		{0, 1, 0, dt},
		{0, 0, 1, 0},
		{0, 0, 0, 1},
	}
	var fp [4][4]float64
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			for k := 0; k < 4; k++ {
				fp[i][j] += fMat[i][k] * f.p[k][j]
			}
		}
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			for k := 0; k < 4; k++ {
				np[i][j] += fp[i][k] * fMat[j][k]
			}
		}
	}
	q := f.cfg.ProcessNoiseAccel * f.cfg.ProcessNoiseAccel
	d3 := dt * dt * dt / 3
	d2 := dt * dt / 2
	for _, ax := range []int{0, 1} {
		v := ax + 2
		np[ax][ax] += q * d3
		np[ax][v] += q * d2
		np[v][ax] += q * d2
		np[v][v] += q * dt
	}
	f.p = np
}

// scalarUpdate applies a Kalman update for a scalar measurement of state
// component m with innovation innov and noise variance r2.
func (f *Filter) scalarUpdate(m int, innov, r2 float64) {
	s := f.p[m][m] + r2
	if s <= 0 {
		return
	}
	var k [4]float64
	for i := 0; i < 4; i++ {
		k[i] = f.p[i][m] / s
	}
	for i := 0; i < 4; i++ {
		f.x[i] += k[i] * innov
	}
	var np [4][4]float64
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			np[i][j] = f.p[i][j] - k[i]*f.p[m][j]
		}
	}
	f.p = np
}

func (f *Filter) state(accepted bool) State {
	return State{
		Pos:      geom.Point{X: f.x[0], Y: f.x[1]},
		Vel:      geom.Vector{X: f.x[2], Y: f.x[3]},
		PosStd:   math.Sqrt(math.Max(0, (f.p[0][0]+f.p[1][1])/2)),
		Accepted: accepted,
	}
}

func finite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }

// Stats returns how many fixes were fused and how many the gate rejected.
func (f *Filter) Stats() (accepted, rejected int) {
	return f.accepted, f.rejected
}

// Predict returns the track extrapolated to time t without fusing a
// measurement (the filter state is not modified).
func (f *Filter) Predict(t float64) (State, error) {
	if !f.initialized {
		return State{}, fmt.Errorf("track: filter not initialized")
	}
	if t < f.lastT {
		return State{}, fmt.Errorf("track: cannot predict into the past")
	}
	clone := *f
	clone.predict(t - clone.lastT)
	return clone.state(true), nil
}
