package track

import (
	"math"
	"math/rand"
	"testing"

	"spotfi/internal/geom"
)

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{ProcessNoiseAccel: 0, MeasurementStdM: 1},
		{ProcessNoiseAccel: 1, MeasurementStdM: 0},
		{ProcessNoiseAccel: 1, MeasurementStdM: 1, GateSigma: -1},
	}
	for i, c := range bad {
		if _, err := New(c); err == nil {
			t.Fatalf("config %d accepted", i)
		}
	}
	if _, err := New(DefaultConfig()); err != nil {
		t.Fatal(err)
	}
}

func TestFirstFixInitializes(t *testing.T) {
	f, _ := New(DefaultConfig())
	s, err := f.Update(Fix{T: 0, Pos: geom.Point{X: 3, Y: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if s.Pos != (geom.Point{X: 3, Y: 4}) {
		t.Fatalf("initial pos %v", s.Pos)
	}
	if s.Vel != (geom.Vector{}) {
		t.Fatalf("initial velocity %v, want zero", s.Vel)
	}
	if !s.Accepted {
		t.Fatal("first fix not accepted")
	}
}

func TestStationaryTargetConverges(t *testing.T) {
	// A near-static motion model: the filter should average the noise
	// down instead of staying responsive to maneuvers.
	f, _ := New(Config{ProcessNoiseAccel: 0.05, MeasurementStdM: 0.8, GateSigma: 4})
	rng := rand.New(rand.NewSource(1))
	truth := geom.Point{X: 5, Y: 5}
	var mx, my, vx, vy float64
	tail := 0
	for i := 0; i < 240; i++ {
		s, err := f.Update(Fix{
			T:   float64(i),
			Pos: geom.Point{X: truth.X + rng.NormFloat64()*0.8, Y: truth.Y + rng.NormFloat64()*0.8},
		})
		if err != nil {
			t.Fatal(err)
		}
		if i >= 120 {
			mx += s.Pos.X
			my += s.Pos.Y
			vx += s.Vel.X
			vy += s.Vel.Y
			tail++
		}
	}
	n := float64(tail)
	est := geom.Point{X: mx / n, Y: my / n}
	if d := est.Dist(truth); d > 0.3 {
		t.Fatalf("tail-averaged estimate %v m from truth", d)
	}
	if math.Hypot(vx/n, vy/n) > 0.2 {
		t.Fatalf("stationary target has mean velocity (%.2f,%.2f)", vx/n, vy/n)
	}
}

func TestConstantVelocityTracked(t *testing.T) {
	f, _ := New(DefaultConfig())
	rng := rand.New(rand.NewSource(2))
	vel := geom.Vector{X: 1.0, Y: 0.5}
	// Average the velocity estimate over the tail: a single sample sits
	// at the filter's steady-state uncertainty, the average converges.
	var vx, vy float64
	tail := 0
	for i := 0; i < 80; i++ {
		tt := float64(i) * 0.5
		truth := geom.Point{X: vel.X * tt, Y: vel.Y * tt}
		s, err := f.Update(Fix{
			T:   tt,
			Pos: geom.Point{X: truth.X + rng.NormFloat64()*0.5, Y: truth.Y + rng.NormFloat64()*0.5},
		})
		if err != nil {
			t.Fatal(err)
		}
		if i >= 40 {
			vx += s.Vel.X
			vy += s.Vel.Y
			tail++
		}
	}
	vx /= float64(tail)
	vy /= float64(tail)
	if math.Abs(vx-vel.X) > 0.25 || math.Abs(vy-vel.Y) > 0.25 {
		t.Fatalf("mean velocity estimate (%.2f,%.2f), want %v", vx, vy, vel)
	}
}

func TestTrackingBeatsRawFixes(t *testing.T) {
	f, _ := New(DefaultConfig())
	rng := rand.New(rand.NewSource(3))
	var rawSum, trkSum float64
	n := 0
	for i := 0; i < 80; i++ {
		tt := float64(i) * 0.5
		truth := geom.Point{X: 1 + 0.8*tt, Y: 2 + 0.3*tt}
		fix := geom.Point{X: truth.X + rng.NormFloat64()*1.0, Y: truth.Y + rng.NormFloat64()*1.0}
		s, err := f.Update(Fix{T: tt, Pos: fix})
		if err != nil {
			t.Fatal(err)
		}
		if i >= 10 { // after warm-up
			rawSum += fix.Dist(truth)
			trkSum += s.Pos.Dist(truth)
			n++
		}
	}
	if trkSum >= rawSum {
		t.Fatalf("track mean %.2f not better than raw %.2f", trkSum/float64(n), rawSum/float64(n))
	}
}

func TestGateRejectsOutlier(t *testing.T) {
	f, _ := New(DefaultConfig())
	for i := 0; i < 10; i++ {
		if _, err := f.Update(Fix{T: float64(i), Pos: geom.Point{X: 1, Y: 1}}); err != nil {
			t.Fatal(err)
		}
	}
	s, err := f.Update(Fix{T: 10, Pos: geom.Point{X: 40, Y: 40}})
	if err != nil {
		t.Fatal(err)
	}
	if s.Accepted {
		t.Fatal("40 m jump accepted")
	}
	if s.Pos.Dist(geom.Point{X: 1, Y: 1}) > 1 {
		t.Fatalf("rejected fix moved the track to %v", s.Pos)
	}
	acc, rej := f.Stats()
	if rej != 1 || acc != 10 {
		t.Fatalf("stats = %d/%d", acc, rej)
	}
}

func TestGateDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.GateSigma = 0
	f, _ := New(cfg)
	if _, err := f.Update(Fix{T: 0, Pos: geom.Point{X: 1, Y: 1}}); err != nil {
		t.Fatal(err)
	}
	s, err := f.Update(Fix{T: 1, Pos: geom.Point{X: 40, Y: 40}})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Accepted {
		t.Fatal("gating disabled but fix rejected")
	}
}

func TestPerFixNoiseOverride(t *testing.T) {
	// A very trusted fix should pull the state harder than a default one.
	mk := func(std float64) geom.Point {
		f, _ := New(DefaultConfig())
		f.Update(Fix{T: 0, Pos: geom.Point{X: 0, Y: 0}})
		f.Update(Fix{T: 1, Pos: geom.Point{X: 0, Y: 0}})
		s, _ := f.Update(Fix{T: 2, Pos: geom.Point{X: 2, Y: 0}, StdM: std})
		return s.Pos
	}
	trusted := mk(0.05)
	vague := mk(3)
	if trusted.X <= vague.X {
		t.Fatalf("trusted fix (x=%v) should pull harder than vague (x=%v)", trusted.X, vague.X)
	}
}

func TestUpdateErrors(t *testing.T) {
	f, _ := New(DefaultConfig())
	if _, err := f.Update(Fix{T: math.NaN(), Pos: geom.Point{X: 1, Y: 1}}); err == nil {
		t.Fatal("NaN time accepted")
	}
	if _, err := f.Update(Fix{T: 5, Pos: geom.Point{X: 1, Y: 1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Update(Fix{T: 4, Pos: geom.Point{X: 1, Y: 1}}); err == nil {
		t.Fatal("time regression accepted")
	}
	if _, err := f.Update(Fix{T: 6, Pos: geom.Point{X: math.Inf(1), Y: 1}}); err == nil {
		t.Fatal("Inf position accepted")
	}
}

func TestPredict(t *testing.T) {
	f, _ := New(DefaultConfig())
	if _, err := f.Predict(1); err == nil {
		t.Fatal("predict before init accepted")
	}
	// Establish a moving track.
	for i := 0; i < 30; i++ {
		tt := float64(i) * 0.5
		if _, err := f.Update(Fix{T: tt, Pos: geom.Point{X: tt, Y: 0}}); err != nil {
			t.Fatal(err)
		}
	}
	s, err := f.Predict(16.5) // 2 s ahead of the last fix at 14.5
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Pos.X-16.5) > 0.7 {
		t.Fatalf("predicted x=%v, want ≈16.5", s.Pos.X)
	}
	// Prediction must not mutate the filter.
	s2, err := f.Update(Fix{T: 15, Pos: geom.Point{X: 15, Y: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s2.Pos.X-15) > 0.5 {
		t.Fatalf("filter state corrupted by Predict: %v", s2.Pos)
	}
	if _, err := f.Predict(10); err == nil {
		t.Fatal("predict into the past accepted")
	}
}

func TestUncertaintyGrowsWithoutFixes(t *testing.T) {
	f, _ := New(DefaultConfig())
	f.Update(Fix{T: 0, Pos: geom.Point{X: 1, Y: 1}})
	f.Update(Fix{T: 1, Pos: geom.Point{X: 1, Y: 1}})
	near, err := f.Predict(2)
	if err != nil {
		t.Fatal(err)
	}
	far, err := f.Predict(10)
	if err != nil {
		t.Fatal(err)
	}
	if far.PosStd <= near.PosStd {
		t.Fatalf("uncertainty did not grow: %v vs %v", far.PosStd, near.PosStd)
	}
}
