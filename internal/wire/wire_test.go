package wire

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"

	"spotfi/internal/csi"
)

func testPacket(rng *rand.Rand) *csi.Packet {
	m := csi.NewMatrix(3, 30)
	for a := range m.Values {
		for n := range m.Values[a] {
			m.Values[a][n] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
	}
	return &csi.Packet{
		APID: 4, TargetMAC: "02:00:00:00:00:07", Seq: 42,
		TimestampNs: 123456789, RSSIdBm: -55.25, CSI: m,
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	frames := []Frame{
		EncodeHello(7),
		{Type: TypeBye, Payload: nil},
		{Type: TypeCSIReport, Payload: []byte{1, 2, 3}},
	}
	for _, f := range frames {
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range frames {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Type != want.Type || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("frame %d mismatch: %+v vs %+v", i, got, want)
		}
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("expected io.EOF at end, got %v", err)
	}
}

func TestFrameBadMagic(t *testing.T) {
	data := []byte{9, 9, 9, 9, 1, 0, 0, 0, 0}
	if _, err := ReadFrame(bytes.NewReader(data)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("err = %v", err)
	}
}

func TestFrameTruncatedPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, Frame{Type: TypeBye, Payload: []byte{1, 2, 3, 4}}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()[:buf.Len()-2]
	if _, err := ReadFrame(bytes.NewReader(data)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("truncated frame err = %v", err)
	}
}

func TestFrameTruncatedHeader(t *testing.T) {
	if _, err := ReadFrame(bytes.NewReader([]byte{0x31})); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("truncated header err = %v", err)
	}
}

func TestFrameOversizeRejected(t *testing.T) {
	// Writer side.
	if err := WriteFrame(io.Discard, Frame{Type: TypeBye, Payload: make([]byte, MaxFrameSize+1)}); err == nil {
		t.Fatal("oversize payload written")
	}
	// Reader side: forge a header claiming a huge payload.
	var hdr [9]byte
	copy(hdr[0:4], []byte{0x31, 0x57, 0x46, 0x53})
	hdr[4] = TypeBye
	hdr[5], hdr[6], hdr[7], hdr[8] = 0xff, 0xff, 0xff, 0x7f
	if _, err := ReadFrame(bytes.NewReader(hdr[:])); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("oversize read err = %v", err)
	}
}

func TestHelloRoundTrip(t *testing.T) {
	f := EncodeHello(12345)
	id, err := DecodeHello(f)
	if err != nil {
		t.Fatal(err)
	}
	if id != 12345 {
		t.Fatalf("hello id = %d", id)
	}
	if _, err := DecodeHello(Frame{Type: TypeBye}); !errors.Is(err, ErrBadFrame) {
		t.Fatal("non-hello frame decoded")
	}
	if _, err := DecodeHello(Frame{Type: TypeHello, Payload: []byte{1}}); !errors.Is(err, ErrBadFrame) {
		t.Fatal("short hello decoded")
	}
}

func TestCSIReportRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	want := testPacket(rng)
	f, err := EncodeCSIReport(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeCSIReport(f)
	if err != nil {
		t.Fatal(err)
	}
	if got.APID != want.APID || got.Seq != want.Seq || got.TimestampNs != want.TimestampNs ||
		got.RSSIdBm != want.RSSIdBm || got.TargetMAC != want.TargetMAC {
		t.Fatalf("metadata mismatch: %+v", got)
	}
	for a := range want.CSI.Values {
		for n := range want.CSI.Values[a] {
			if got.CSI.Values[a][n] != want.CSI.Values[a][n] {
				t.Fatalf("CSI mismatch at (%d,%d)", a, n)
			}
		}
	}
}

func TestCSIReportOverTCPFraming(t *testing.T) {
	// Frame + report through a byte stream with multiple packets.
	rng := rand.New(rand.NewSource(102))
	var buf bytes.Buffer
	var want []*csi.Packet
	for i := 0; i < 10; i++ {
		p := testPacket(rng)
		p.Seq = uint64(i)
		want = append(want, p)
		f, err := EncodeCSIReport(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	for i := range want {
		f, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		p, err := DecodeCSIReport(f)
		if err != nil {
			t.Fatal(err)
		}
		if p.Seq != uint64(i) {
			t.Fatalf("out of order: seq %d at %d", p.Seq, i)
		}
	}
}

func TestCSIReportCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	f, err := EncodeCSIReport(testPacket(rng))
	if err != nil {
		t.Fatal(err)
	}
	// Wrong type.
	if _, err := DecodeCSIReport(Frame{Type: TypeHello, Payload: f.Payload}); !errors.Is(err, ErrBadFrame) {
		t.Fatal("wrong-type frame decoded")
	}
	// Truncated payload.
	short := Frame{Type: TypeCSIReport, Payload: f.Payload[:len(f.Payload)-5]}
	if _, err := DecodeCSIReport(short); !errors.Is(err, ErrBadFrame) {
		t.Fatal("truncated report decoded")
	}
	// Zero dimensions.
	bad := append([]byte(nil), f.Payload...)
	bad[30] = 0 // antennas (offset: 4+8+8+8+2 = 30)
	bad[31] = 0
	if _, err := DecodeCSIReport(Frame{Type: TypeCSIReport, Payload: bad}); !errors.Is(err, ErrBadFrame) {
		t.Fatal("zero-dim report decoded")
	}
}

func TestEncodeCSIReportRejectsInvalid(t *testing.T) {
	if _, err := EncodeCSIReport(&csi.Packet{TargetMAC: "x", RSSIdBm: -10}); err == nil {
		t.Fatal("nil-CSI packet encoded")
	}
}
