// Package wire defines the AP→server protocol SpotFi's deployment uses: a
// versioned, length-prefixed binary framing over TCP carrying per-packet
// CSI reports (paper Sec. 3: "SpotFi only adds the software required to
// read the reported CSI values, timestamps, and MAC addresses at the AP and
// ships it to the central server").
package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"spotfi/internal/csi"
)

// Frame types.
const (
	// TypeHello is the first frame on a connection: the AP announces its
	// ID.
	TypeHello uint8 = 1
	// TypeCSIReport carries one csi.Packet.
	TypeCSIReport uint8 = 2
	// TypeBye announces a clean shutdown.
	TypeBye uint8 = 3
)

const (
	frameMagic uint32 = 0x53465731 // "SFW1"
	// MaxFrameSize bounds payload length so a corrupt or malicious peer
	// cannot force unbounded allocation.
	MaxFrameSize = 1 << 20
)

// ErrBadFrame is returned for malformed frames.
var ErrBadFrame = errors.New("wire: malformed frame")

// Frame is one protocol unit.
type Frame struct {
	Type    uint8
	Payload []byte
}

// WriteFrame writes a frame to w.
func WriteFrame(w io.Writer, f Frame) error {
	if len(f.Payload) > MaxFrameSize {
		return fmt.Errorf("wire: payload of %d bytes exceeds limit", len(f.Payload))
	}
	var hdr [9]byte
	binary.LittleEndian.PutUint32(hdr[0:4], frameMagic)
	hdr[4] = f.Type
	binary.LittleEndian.PutUint32(hdr[5:9], uint32(len(f.Payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(f.Payload)
	return err
}

// ReadFrame reads the next frame from r. io.EOF is returned only at a
// clean frame boundary; mid-frame truncation surfaces as ErrBadFrame.
func ReadFrame(r io.Reader) (Frame, error) {
	var hdr [9]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return Frame{}, io.EOF
		}
		// Keep the underlying error in the chain: callers distinguish
		// read deadlines (net.Error.Timeout) and connection resets
		// (io.ErrUnexpectedEOF, ECONNRESET) from structural garbage.
		return Frame{}, fmt.Errorf("%w: header: %w", ErrBadFrame, err)
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != frameMagic {
		return Frame{}, fmt.Errorf("%w: bad magic", ErrBadFrame)
	}
	length := binary.LittleEndian.Uint32(hdr[5:9])
	if length > MaxFrameSize {
		return Frame{}, fmt.Errorf("%w: payload length %d exceeds limit", ErrBadFrame, length)
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return Frame{}, fmt.Errorf("%w: payload: %w", ErrBadFrame, err)
	}
	return Frame{Type: hdr[4], Payload: payload}, nil
}

// EncodeHello builds a Hello frame payload.
func EncodeHello(apID int32) Frame {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], uint32(apID))
	return Frame{Type: TypeHello, Payload: buf[:]}
}

// DecodeHello parses a Hello payload.
func DecodeHello(f Frame) (int32, error) {
	if f.Type != TypeHello || len(f.Payload) != 4 {
		return 0, fmt.Errorf("%w: not a hello frame", ErrBadFrame)
	}
	return int32(binary.LittleEndian.Uint32(f.Payload)), nil
}

// EncodeCSIReport serializes a packet into a CSI-report frame.
func EncodeCSIReport(p *csi.Packet) (Frame, error) {
	if err := p.Validate(); err != nil {
		return Frame{}, err
	}
	var buf bytes.Buffer
	hdr := struct {
		APID        int32
		Seq         uint64
		TimestampNs int64
		RSSI        float64
		MACLen      uint16
		Antennas    uint16
		Subcarriers uint16
	}{
		int32(p.APID), p.Seq, p.TimestampNs, p.RSSIdBm,
		uint16(len(p.TargetMAC)), uint16(p.CSI.Antennas()), uint16(p.CSI.Subcarriers()),
	}
	if err := binary.Write(&buf, binary.LittleEndian, hdr); err != nil {
		return Frame{}, err
	}
	buf.WriteString(p.TargetMAC)
	for _, row := range p.CSI.Values {
		for _, v := range row {
			if err := binary.Write(&buf, binary.LittleEndian, [2]float64{real(v), imag(v)}); err != nil {
				return Frame{}, err
			}
		}
	}
	if buf.Len() > MaxFrameSize {
		return Frame{}, fmt.Errorf("wire: CSI report of %d bytes exceeds frame limit", buf.Len())
	}
	return Frame{Type: TypeCSIReport, Payload: buf.Bytes()}, nil
}

// DecodeCSIReport parses a CSI-report frame back into a packet.
func DecodeCSIReport(f Frame) (*csi.Packet, error) {
	if f.Type != TypeCSIReport {
		return nil, fmt.Errorf("%w: not a CSI report", ErrBadFrame)
	}
	r := bytes.NewReader(f.Payload)
	var hdr struct {
		APID        int32
		Seq         uint64
		TimestampNs int64
		RSSI        float64
		MACLen      uint16
		Antennas    uint16
		Subcarriers uint16
	}
	if err := binary.Read(r, binary.LittleEndian, &hdr); err != nil {
		return nil, fmt.Errorf("%w: report header: %v", ErrBadFrame, err)
	}
	if hdr.Antennas == 0 || hdr.Subcarriers == 0 {
		return nil, fmt.Errorf("%w: zero CSI dims", ErrBadFrame)
	}
	want := int(hdr.MACLen) + int(hdr.Antennas)*int(hdr.Subcarriers)*16
	if r.Len() != want {
		return nil, fmt.Errorf("%w: payload size %d, want %d", ErrBadFrame, r.Len(), want)
	}
	mac := make([]byte, hdr.MACLen)
	if _, err := io.ReadFull(r, mac); err != nil {
		return nil, fmt.Errorf("%w: MAC: %v", ErrBadFrame, err)
	}
	m := csi.NewMatrix(int(hdr.Antennas), int(hdr.Subcarriers))
	var pair [2]float64
	for a := 0; a < int(hdr.Antennas); a++ {
		for n := 0; n < int(hdr.Subcarriers); n++ {
			if err := binary.Read(r, binary.LittleEndian, &pair); err != nil {
				return nil, fmt.Errorf("%w: CSI values: %v", ErrBadFrame, err)
			}
			m.Values[a][n] = complex(pair[0], pair[1])
		}
	}
	p := &csi.Packet{
		APID:        int(hdr.APID),
		Seq:         hdr.Seq,
		TimestampNs: hdr.TimestampNs,
		RSSIdBm:     hdr.RSSI,
		TargetMAC:   string(mac),
		CSI:         m,
	}
	if err := p.Validate(); err != nil {
		if errors.Is(err, csi.ErrNonFinite) {
			// A well-framed report carrying NaN/Inf is a value problem
			// (buggy NIC, injected chaos), not a desynced stream: surface
			// it as ErrNonFinite — not ErrBadFrame — so the server drops
			// the packet and keeps the connection.
			return nil, fmt.Errorf("wire: %w", err)
		}
		return nil, fmt.Errorf("%w: %v", ErrBadFrame, err)
	}
	return p, nil
}
