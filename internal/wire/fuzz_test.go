package wire

import (
	"bytes"
	"math/rand"
	"testing"

	"spotfi/internal/csi"
)

// FuzzReadFrame feeds arbitrary bytes to the frame reader: it must never
// panic or allocate unboundedly, only return frames or errors.
func FuzzReadFrame(f *testing.F) {
	// Seed with a valid frame stream and some corruptions. CI extends the
	// file corpus with production frames exported from flight-recorder
	// bundles (spotfi-trace corpus).
	var buf bytes.Buffer
	WriteFrame(&buf, EncodeHello(3))
	WriteFrame(&buf, Frame{Type: TypeBye})
	f.Add(buf.Bytes())
	rng := rand.New(rand.NewSource(2))
	m := csi.NewMatrix(3, 30)
	for a := range m.Values {
		for n := range m.Values[a] {
			m.Values[a][n] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
	}
	if fr, err := EncodeCSIReport(&csi.Packet{
		APID: 2, TargetMAC: "02:bb", Seq: 7, TimestampNs: 12345, RSSIdBm: -52, CSI: m,
	}); err == nil {
		buf.Reset()
		WriteFrame(&buf, fr)
		f.Add(buf.Bytes())
	}
	f.Add([]byte{})
	f.Add([]byte{0x31, 0x57, 0x46, 0x53})
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for i := 0; i < 16; i++ { // bounded frames per input
			fr, err := ReadFrame(r)
			if err != nil {
				return
			}
			if len(fr.Payload) > MaxFrameSize {
				t.Fatalf("oversize payload escaped: %d", len(fr.Payload))
			}
		}
	})
}

// FuzzDecodeCSIReport feeds arbitrary payloads to the report decoder.
func FuzzDecodeCSIReport(f *testing.F) {
	rng := rand.New(rand.NewSource(1))
	m := csi.NewMatrix(3, 30)
	for a := range m.Values {
		for n := range m.Values[a] {
			m.Values[a][n] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
	}
	good, err := EncodeCSIReport(&csi.Packet{
		APID: 1, TargetMAC: "02:aa", RSSIdBm: -40, CSI: m,
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good.Payload)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0x41}, 100))

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := DecodeCSIReport(Frame{Type: TypeCSIReport, Payload: data})
		if err != nil {
			return
		}
		// Any successfully decoded packet must be valid.
		if verr := p.Validate(); verr != nil {
			t.Fatalf("decoder returned invalid packet: %v", verr)
		}
	})
}
