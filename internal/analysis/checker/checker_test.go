package checker_test

import (
	"bytes"
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"spotfi/internal/analysis"
	"spotfi/internal/analysis/checker"
	"spotfi/internal/analysis/load"
)

// markAnalyzer reports every identifier named "mark", giving the tests a
// deterministic diagnostic source without involving real analyses.
var markAnalyzer = &analysis.Analyzer{
	Name: "mark",
	Doc:  "reports every identifier named mark",
	Run: func(pass *analysis.Pass) (any, error) {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok && id.Name == "mark" {
					pass.Reportf(id.Pos(), "found mark")
				}
				return true
			})
		}
		return nil, nil
	},
}

func parsePkg(t *testing.T, src string) *load.Package {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	return &load.Package{PkgPath: "p", Fset: fset, Syntax: []*ast.File{file}}
}

func run(t *testing.T, src string) []checker.Finding {
	t.Helper()
	findings, err := checker.Run([]*analysis.Analyzer{markAnalyzer}, []*load.Package{parsePkg(t, src)})
	if err != nil {
		t.Fatal(err)
	}
	return findings
}

func TestUnsuppressedFindingSurvives(t *testing.T) {
	findings := run(t, `package p

var mark int
`)
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want 1: %v", len(findings), findings)
	}
	f := findings[0]
	if f.Analyzer != "mark" || f.Pos.Line != 3 || f.Message != "found mark" {
		t.Errorf("unexpected finding: %+v", f)
	}
}

func TestSameLineSuppression(t *testing.T) {
	findings := run(t, `package p

var mark int //lint:allow mark test fixture
`)
	if len(findings) != 0 {
		t.Errorf("trailing //lint:allow did not suppress: %v", findings)
	}
}

func TestPrecedingLineSuppression(t *testing.T) {
	findings := run(t, `package p

//lint:allow mark test fixture
var mark int
`)
	if len(findings) != 0 {
		t.Errorf("preceding-line //lint:allow did not suppress: %v", findings)
	}
}

func TestSuppressionIsPerAnalyzer(t *testing.T) {
	findings := run(t, `package p

var mark int //lint:allow other wrong analyzer name
`)
	if len(findings) != 1 {
		t.Errorf("//lint:allow for a different analyzer suppressed the finding: %v", findings)
	}
}

func TestSuppressionDoesNotReachPastNextLine(t *testing.T) {
	findings := run(t, `package p

//lint:allow mark test fixture

var mark int
`)
	if len(findings) != 1 {
		t.Errorf("//lint:allow two lines above suppressed the finding: %v", findings)
	}
}

func TestMalformedDirectiveIsAFinding(t *testing.T) {
	findings := run(t, `package p

var mark int //lint:allow mark
`)
	// The directive has no reason, so it suppresses nothing: both the
	// malformed-directive finding and the original diagnostic surface.
	var lint, mark int
	for _, f := range findings {
		switch f.Analyzer {
		case "lint":
			lint++
			if !strings.Contains(f.Message, "malformed //lint:allow") {
				t.Errorf("unexpected lint message: %q", f.Message)
			}
		case "mark":
			mark++
		}
	}
	if lint != 1 {
		t.Errorf("got %d lint findings, want 1: %v", lint, findings)
	}
	if mark != 1 {
		t.Errorf("malformed directive must not suppress the original finding: %v", findings)
	}
}

func TestPrintRelativizesPaths(t *testing.T) {
	var buf bytes.Buffer
	n := checker.Print(&buf, "/work", []checker.Finding{
		{Analyzer: "mark", Pos: token.Position{Filename: "/work/sub/p.go", Line: 3, Column: 5}, Message: "found mark"},
		{Analyzer: "mark", Pos: token.Position{Filename: "/elsewhere/q.go", Line: 1, Column: 1}, Message: "found mark"},
	})
	if n != 2 {
		t.Fatalf("Print returned %d, want 2", n)
	}
	out := buf.String()
	if !strings.Contains(out, "sub/p.go:3:5: [mark] found mark") {
		t.Errorf("path under dir not relativized:\n%s", out)
	}
	if !strings.Contains(out, "/elsewhere/q.go:1:1: [mark] found mark") {
		t.Errorf("path outside dir must stay absolute:\n%s", out)
	}
}
