package checker_test

import (
	"bytes"
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"spotfi/internal/analysis"
	"spotfi/internal/analysis/checker"
	"spotfi/internal/analysis/load"
)

// markAnalyzer reports every identifier named "mark", giving the tests a
// deterministic diagnostic source without involving real analyses.
var markAnalyzer = &analysis.Analyzer{
	Name: "mark",
	Doc:  "reports every identifier named mark",
	Run: func(pass *analysis.Pass) (any, error) {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok && id.Name == "mark" {
					pass.Reportf(id.Pos(), "found mark")
				}
				return true
			})
		}
		return nil, nil
	},
}

func parsePkg(t *testing.T, src string) *load.Package {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	return &load.Package{PkgPath: "p", Fset: fset, Syntax: []*ast.File{file}}
}

func run(t *testing.T, src string) []checker.Finding {
	t.Helper()
	findings, err := checker.Run([]*analysis.Analyzer{markAnalyzer}, []*load.Package{parsePkg(t, src)})
	if err != nil {
		t.Fatal(err)
	}
	return findings
}

func TestUnsuppressedFindingSurvives(t *testing.T) {
	findings := run(t, `package p

var mark int
`)
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want 1: %v", len(findings), findings)
	}
	f := findings[0]
	if f.Analyzer != "mark" || f.Pos.Line != 3 || f.Message != "found mark" {
		t.Errorf("unexpected finding: %+v", f)
	}
}

func TestSameLineSuppression(t *testing.T) {
	findings := run(t, `package p

var mark int //lint:allow mark test fixture
`)
	if len(findings) != 0 {
		t.Errorf("trailing //lint:allow did not suppress: %v", findings)
	}
}

func TestPrecedingLineSuppression(t *testing.T) {
	findings := run(t, `package p

//lint:allow mark test fixture
var mark int
`)
	if len(findings) != 0 {
		t.Errorf("preceding-line //lint:allow did not suppress: %v", findings)
	}
}

func TestSuppressionIsPerAnalyzer(t *testing.T) {
	findings := run(t, `package p

var mark int //lint:allow other wrong analyzer name
`)
	if len(findings) != 1 {
		t.Errorf("//lint:allow for a different analyzer suppressed the finding: %v", findings)
	}
}

func TestSuppressionDoesNotReachPastNextLine(t *testing.T) {
	findings := run(t, `package p

//lint:allow mark test fixture

var mark int
`)
	// The comment is out of range, so the mark finding survives — and the
	// comment itself, suppressing nothing, is reported stale.
	var mark, stale int
	for _, f := range findings {
		switch {
		case f.Analyzer == "mark":
			mark++
		case f.Analyzer == "lint" && strings.Contains(f.Message, "stale //lint:allow mark"):
			stale++
		default:
			t.Errorf("unexpected finding: %v", f)
		}
	}
	if mark != 1 {
		t.Errorf("//lint:allow two lines above suppressed the finding: %v", findings)
	}
	if stale != 1 {
		t.Errorf("out-of-range //lint:allow not reported stale: %v", findings)
	}
}

func TestBlockCommentDoesNotSuppress(t *testing.T) {
	findings := run(t, `package p

var mark int /* lint:allow mark block comments are inert */
`)
	if len(findings) != 1 || findings[0].Analyzer != "mark" {
		t.Errorf("block comment changed the outcome: %v", findings)
	}
}

func TestCommaListSuppressesMultipleAnalyzers(t *testing.T) {
	res := runDetail(t, `package p

var mark int //lint:allow other,mark covers both analyzers
`)
	if len(res.Findings) != 0 {
		// "other" never ran, so it cannot be stale; "mark" is used.
		t.Errorf("comma-separated //lint:allow did not suppress cleanly: %v", res.Findings)
	}
	if len(res.Suppressed) != 1 || res.Suppressed[0].Analyzer != "mark" {
		t.Errorf("suppressed diagnostics not recorded: %v", res.Suppressed)
	}
	var used, unused int
	for _, al := range res.Allows {
		if al.Reason != "covers both analyzers" {
			t.Errorf("reason lost in comma parsing: %+v", al)
		}
		if al.Used {
			used++
		} else {
			unused++
		}
	}
	if used != 1 || unused != 1 {
		t.Errorf("want exactly the mark allow used and the other unused: %+v", res.Allows)
	}
}

func TestStaleSuppressionForActiveAnalyzer(t *testing.T) {
	res := runDetail(t, `package p

var clean int //lint:allow mark nothing to suppress here
`)
	if len(res.Findings) != 1 || res.Findings[0].Analyzer != "lint" ||
		!strings.Contains(res.Findings[0].Message, "stale //lint:allow mark") {
		t.Errorf("unused allow for an active analyzer must be stale: %v", res.Findings)
	}
	if len(res.Allows) != 1 || !res.Allows[0].Stale {
		t.Errorf("stale allow not marked Stale in the inventory: %+v", res.Allows)
	}
}

func TestTestFileAllowsAreExempt(t *testing.T) {
	// Every analyzer skips _test.go files, so an allow there can never be
	// used. When a driver that loads test variants (go vet) hands such a
	// file to the checker, its allows must be ignored outright — not
	// inventoried, and above all not reported stale.
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p_test.go", `package p

var clean int //lint:allow mark analyzers never see test files
`, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	pkg := &load.Package{PkgPath: "p", Fset: fset, Syntax: []*ast.File{file}}
	res, err := checker.RunDetail([]*analysis.Analyzer{markAnalyzer}, []*load.Package{pkg})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Findings) != 0 {
		t.Errorf("allow in a _test.go file produced findings: %v", res.Findings)
	}
	if len(res.Allows) != 0 {
		t.Errorf("allow in a _test.go file was inventoried: %+v", res.Allows)
	}
}

func TestUnusedAllowForInactiveAnalyzerIsNotStale(t *testing.T) {
	res := runDetail(t, `package p

var clean int //lint:allow gofancy this analyzer is not in the run
`)
	if len(res.Findings) != 0 {
		t.Errorf("allow for an analyzer outside the active set reported stale: %v", res.Findings)
	}
	if len(res.Allows) != 1 || res.Allows[0].Stale {
		t.Errorf("allow for an inactive analyzer must not be marked Stale: %+v", res.Allows)
	}
}

func TestBothCoveringCommentsMarkedUsed(t *testing.T) {
	// The finding's line is covered twice: by the comment above and its
	// own trailing comment. One diagnostic must mark both used, or the
	// other would be falsely stale.
	res := runDetail(t, `package p

//lint:allow mark above
var mark int //lint:allow mark trailing
`)
	if len(res.Findings) != 0 {
		t.Errorf("doubly-covered line produced findings: %v", res.Findings)
	}
	if len(res.Allows) != 2 {
		t.Fatalf("want 2 allows, got %+v", res.Allows)
	}
	for _, al := range res.Allows {
		if !al.Used {
			t.Errorf("allow not marked used: %+v", al)
		}
	}
}

func runDetail(t *testing.T, src string) *checker.Result {
	t.Helper()
	res, err := checker.RunDetail([]*analysis.Analyzer{markAnalyzer}, []*load.Package{parsePkg(t, src)})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestMalformedDirectiveIsAFinding(t *testing.T) {
	findings := run(t, `package p

var mark int //lint:allow mark
`)
	// The directive has no reason, so it suppresses nothing: both the
	// malformed-directive finding and the original diagnostic surface.
	var lint, mark int
	for _, f := range findings {
		switch f.Analyzer {
		case "lint":
			lint++
			if !strings.Contains(f.Message, "malformed //lint:allow") {
				t.Errorf("unexpected lint message: %q", f.Message)
			}
		case "mark":
			mark++
		}
	}
	if lint != 1 {
		t.Errorf("got %d lint findings, want 1: %v", lint, findings)
	}
	if mark != 1 {
		t.Errorf("malformed directive must not suppress the original finding: %v", findings)
	}
}

func TestPrintRelativizesPaths(t *testing.T) {
	var buf bytes.Buffer
	n := checker.Print(&buf, "/work", []checker.Finding{
		{Analyzer: "mark", Pos: token.Position{Filename: "/work/sub/p.go", Line: 3, Column: 5}, Message: "found mark"},
		{Analyzer: "mark", Pos: token.Position{Filename: "/elsewhere/q.go", Line: 1, Column: 1}, Message: "found mark"},
	})
	if n != 2 {
		t.Fatalf("Print returned %d, want 2", n)
	}
	out := buf.String()
	if !strings.Contains(out, "sub/p.go:3:5: [mark] found mark") {
		t.Errorf("path under dir not relativized:\n%s", out)
	}
	if !strings.Contains(out, "/elsewhere/q.go:1:1: [mark] found mark") {
		t.Errorf("path outside dir must stay absolute:\n%s", out)
	}
}
