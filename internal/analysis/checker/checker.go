// Package checker runs a set of analyzers over loaded packages, applies
// //lint:allow suppressions, and formats diagnostics. It is shared by the
// standalone spotfi-lint driver, the vet -vettool adapter, and the
// repo-wide smoke test.
package checker

import (
	"fmt"
	"go/ast"
	"go/token"
	"io"
	"path/filepath"
	"sort"
	"strings"

	"spotfi/internal/analysis"
	"spotfi/internal/analysis/load"
)

// A Finding is one surviving (unsuppressed) diagnostic.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
}

// Run applies every analyzer to every package and returns the surviving
// findings sorted by position. Suppressed diagnostics are dropped;
// malformed //lint:allow comments become findings themselves so a typo
// cannot silently disable a check.
func Run(analyzers []*analysis.Analyzer, pkgs []*load.Package) ([]Finding, error) {
	if err := analysis.Validate(analyzers); err != nil {
		return nil, err
	}
	var findings []Finding
	for _, pkg := range pkgs {
		sup, bad := suppressions(pkg.Fset, pkg.Syntax)
		findings = append(findings, bad...)
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Syntax,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			pass.Report = func(d analysis.Diagnostic) {
				pos := pkg.Fset.Position(d.Pos)
				if sup.allows(a.Name, pos) {
					return
				}
				findings = append(findings, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
			}
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %v", pkg.PkgPath, a.Name, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return dedupe(findings), nil
}

// Print writes findings one per line, with paths relative to dir when
// possible, and returns how many were written.
func Print(w io.Writer, dir string, findings []Finding) int {
	for _, f := range findings {
		pos := f.Pos
		if dir != "" {
			if rel, err := filepath.Rel(dir, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
				pos.Filename = rel
			}
		}
		fmt.Fprintf(w, "%s: [%s] %s\n", pos, f.Analyzer, f.Message)
	}
	return len(findings)
}

func dedupe(findings []Finding) []Finding {
	var out []Finding
	seen := make(map[Finding]bool)
	for _, f := range findings {
		if !seen[f] {
			seen[f] = true
			out = append(out, f)
		}
	}
	return out
}

// suppressor records which (file, line) pairs are covered by a
// //lint:allow comment, per analyzer name.
type suppressor map[suppressKey]bool

type suppressKey struct {
	file     string
	line     int
	analyzer string
}

func (s suppressor) allows(analyzer string, pos token.Position) bool {
	return s[suppressKey{pos.Filename, pos.Line, analyzer}]
}

// suppressions scans the files' comments for //lint:allow directives.
// A directive has the form
//
//	//lint:allow <analyzer> <reason...>
//
// and suppresses that analyzer's diagnostics on the comment's own line
// (trailing comment) and on the following line (comment above the
// statement). A directive missing its reason is reported as a finding.
func suppressions(fset *token.FileSet, files []*ast.File) (suppressor, []Finding) {
	sup := make(suppressor)
	var bad []Finding
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:allow")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) < 2 {
					bad = append(bad, Finding{
						Analyzer: "lint",
						Pos:      pos,
						Message:  "malformed //lint:allow: want \"//lint:allow <analyzer> <reason>\"",
					})
					continue
				}
				name := fields[0]
				sup[suppressKey{pos.Filename, pos.Line, name}] = true
				sup[suppressKey{pos.Filename, pos.Line + 1, name}] = true
			}
		}
	}
	return sup, bad
}
