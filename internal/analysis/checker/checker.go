// Package checker runs a set of analyzers over loaded packages, applies
// //lint:allow suppressions, and formats diagnostics. It is shared by the
// standalone spotfi-lint driver, the vet -vettool adapter, and the
// repo-wide smoke test.
package checker

import (
	"fmt"
	"go/ast"
	"go/token"
	"io"
	"path/filepath"
	"sort"
	"strings"

	"spotfi/internal/analysis"
	"spotfi/internal/analysis/load"
)

// A Finding is one diagnostic that survived (or, in Result.Suppressed,
// did not survive) suppression.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
}

// An Allow is one (comment, analyzer) suppression pair: a
// //lint:allow a,b reason comment yields one Allow for a and one for b.
// Used reports whether it suppressed at least one diagnostic this run.
// Stale marks an unused Allow whose analyzer was part of the run: it is
// provably dead and also reported as a Finding.
type Allow struct {
	Pos      token.Position
	Analyzer string
	Reason   string
	Used     bool
	Stale    bool
}

// A Result is the full outcome of one checker run.
type Result struct {
	// Findings are the surviving diagnostics, sorted by position. Stale
	// //lint:allow comments (see below) and malformed ones appear here
	// under the pseudo-analyzer "lint".
	Findings []Finding
	// Suppressed are the diagnostics a //lint:allow absorbed, sorted.
	Suppressed []Finding
	// Allows lists every suppression comment seen, in position order,
	// with Used marked. An unused Allow whose analyzer was part of this
	// run is stale and also reported as a Finding: a suppression that no
	// longer suppresses anything is a lie about the code under it.
	Allows []Allow
}

// Run applies every analyzer to every package and returns the surviving
// findings (including stale/malformed suppression findings) sorted by
// position. It is RunDetail for callers that only gate on findings.
func Run(analyzers []*analysis.Analyzer, pkgs []*load.Package) ([]Finding, error) {
	res, err := RunDetail(analyzers, pkgs)
	if err != nil {
		return nil, err
	}
	return res.Findings, nil
}

// RunDetail applies every analyzer to every package, in the order given —
// load.Packages yields dependencies before dependents, so facts recorded
// for a callee package are visible while analyzing its callers.
// Suppressed diagnostics are diverted, not dropped; malformed and stale
// //lint:allow comments become findings so a typo or a fixed violation
// cannot silently disable a check.
func RunDetail(analyzers []*analysis.Analyzer, pkgs []*load.Package) (*Result, error) {
	return RunDetailFacts(analyzers, pkgs, analysis.NewFacts())
}

// RunDetailFacts is RunDetail against a caller-supplied fact store. The
// vet driver uses it to seed facts imported from dependency vetx files
// and to export the store — grown by this run — for dependents.
func RunDetailFacts(analyzers []*analysis.Analyzer, pkgs []*load.Package, facts *analysis.Facts) (*Result, error) {
	if err := analysis.Validate(analyzers); err != nil {
		return nil, err
	}
	active := make(map[string]bool)
	for _, a := range analyzers {
		active[a.Name] = true
	}
	res := &Result{}
	var allows []*Allow
	for _, pkg := range pkgs {
		if pkg.FactsOnly {
			// Unselected dependency: run the analyzers so their facts
			// (annotations, escape summaries) are recorded for dependents,
			// but its diagnostics and //lint:allow bookkeeping belong to
			// runs that select it.
			for _, a := range analyzers {
				pass := &analysis.Pass{
					Analyzer:  a,
					Fset:      pkg.Fset,
					Files:     pkg.Syntax,
					Pkg:       pkg.Types,
					TypesInfo: pkg.TypesInfo,
					Facts:     facts,
					Report:    func(analysis.Diagnostic) {},
				}
				if _, err := a.Run(pass); err != nil {
					return nil, fmt.Errorf("%s: %s: %v", pkg.PkgPath, a.Name, err)
				}
			}
			continue
		}
		sup, pkgAllows, bad := suppressions(pkg.Fset, pkg.Syntax)
		res.Findings = append(res.Findings, bad...)
		allows = append(allows, pkgAllows...)
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Syntax,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				Facts:     facts,
			}
			pass.Report = func(d analysis.Diagnostic) {
				pos := pkg.Fset.Position(d.Pos)
				f := Finding{Analyzer: a.Name, Pos: pos, Message: d.Message}
				if sup.suppress(a.Name, pos) {
					res.Suppressed = append(res.Suppressed, f)
					return
				}
				res.Findings = append(res.Findings, f)
			}
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %v", pkg.PkgPath, a.Name, err)
			}
		}
	}
	for _, al := range allows {
		al.Stale = !al.Used && active[al.Analyzer]
		if al.Stale {
			res.Findings = append(res.Findings, Finding{
				Analyzer: "lint",
				Pos:      al.Pos,
				Message: fmt.Sprintf("stale //lint:allow %s: it no longer suppresses any diagnostic; delete it",
					al.Analyzer),
			})
		}
		res.Allows = append(res.Allows, *al)
	}
	sortFindings(res.Findings)
	sortFindings(res.Suppressed)
	res.Findings = dedupe(res.Findings)
	res.Suppressed = dedupe(res.Suppressed)
	sort.Slice(res.Allows, func(i, j int) bool {
		a, b := res.Allows[i], res.Allows[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return res, nil
}

func sortFindings(findings []Finding) {
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// Print writes findings one per line, with paths relative to dir when
// possible, and returns how many were written.
func Print(w io.Writer, dir string, findings []Finding) int {
	for _, f := range findings {
		pos := f.Pos
		pos.Filename = RelPath(dir, pos.Filename)
		fmt.Fprintf(w, "%s: [%s] %s\n", pos, f.Analyzer, f.Message)
	}
	return len(findings)
}

// RelPath rewrites name relative to dir when it lies under it.
func RelPath(dir, name string) string {
	if dir == "" {
		return name
	}
	if rel, err := filepath.Rel(dir, name); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return name
}

func dedupe(findings []Finding) []Finding {
	var out []Finding
	seen := make(map[Finding]bool)
	for _, f := range findings {
		if !seen[f] {
			seen[f] = true
			out = append(out, f)
		}
	}
	return out
}

// suppressor records which (file, line) pairs are covered by //lint:allow
// comments, per analyzer name. A line can be covered by more than one
// comment (its own trailing comment plus one on the line above); a
// suppressed diagnostic marks them all used, so neither is reported stale.
type suppressor map[suppressKey][]*Allow

type suppressKey struct {
	file     string
	line     int
	analyzer string
}

func (s suppressor) suppress(analyzer string, pos token.Position) bool {
	refs := s[suppressKey{pos.Filename, pos.Line, analyzer}]
	for _, al := range refs {
		al.Used = true
	}
	return len(refs) > 0
}

// suppressions scans the files' comments for //lint:allow directives.
// A directive has the form
//
//	//lint:allow <analyzer>[,<analyzer>...] <reason...>
//
// and suppresses the named analyzers' diagnostics on the comment's own
// line (trailing comment) and on the following line (comment above the
// statement). Only line comments count: a /* lint:allow */ block is
// inert, like Go's own //go: directives. A directive missing its reason
// is reported as a finding.
//
// _test.go files are exempt from all of this: every analyzer skips them
// (passutil.IsTestFile), so an allow there can never suppress anything
// and must not be reported stale when a driver that loads test variants
// (go vet) hands them to the checker.
func suppressions(fset *token.FileSet, files []*ast.File) (suppressor, []*Allow, []Finding) {
	sup := make(suppressor)
	var allows []*Allow
	var bad []Finding
	for _, f := range files {
		if strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:allow")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) < 2 {
					bad = append(bad, Finding{
						Analyzer: "lint",
						Pos:      pos,
						Message:  "malformed //lint:allow: want \"//lint:allow <analyzer>[,<analyzer>] <reason>\"",
					})
					continue
				}
				reason := strings.Join(fields[1:], " ")
				for _, name := range strings.Split(fields[0], ",") {
					if name == "" {
						continue
					}
					al := &Allow{Pos: pos, Analyzer: name, Reason: reason}
					allows = append(allows, al)
					sup[suppressKey{pos.Filename, pos.Line, name}] = append(sup[suppressKey{pos.Filename, pos.Line, name}], al)
					sup[suppressKey{pos.Filename, pos.Line + 1, name}] = append(sup[suppressKey{pos.Filename, pos.Line + 1, name}], al)
				}
			}
		}
	}
	return sup, allows, bad
}
