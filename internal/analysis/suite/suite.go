// Package suite enumerates the spotfi-lint analyzers. The list is shared
// by cmd/spotfi-lint and the repo-wide smoke test so the binary and CI can
// never drift apart.
package suite

import (
	"spotfi/internal/analysis"
	"spotfi/internal/analysis/passes/arenaescape"
	"spotfi/internal/analysis/passes/errdrop"
	"spotfi/internal/analysis/passes/floateq"
	"spotfi/internal/analysis/passes/floatloop"
	"spotfi/internal/analysis/passes/gospawn"
	"spotfi/internal/analysis/passes/immutfield"
	"spotfi/internal/analysis/passes/noalloc"
	"spotfi/internal/analysis/passes/obsreg"
	"spotfi/internal/analysis/passes/poolreuse"
	"spotfi/internal/analysis/passes/radians"
	"spotfi/internal/analysis/passes/spanend"
)

// Analyzers returns the full suite in stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		arenaescape.Analyzer,
		errdrop.Analyzer,
		floateq.Analyzer,
		floatloop.Analyzer,
		gospawn.Analyzer,
		immutfield.Analyzer,
		noalloc.Analyzer,
		obsreg.Analyzer,
		poolreuse.Analyzer,
		radians.Analyzer,
		spanend.Analyzer,
	}
}
