// Package passutil holds the few helpers the spotfi-lint analyzers share:
// test-file detection, enclosing-function lookup, and callee resolution.
package passutil

import (
	"go/ast"
	"go/types"
	"strings"

	"spotfi/internal/analysis"
)

// IsTestFile reports whether the file containing pos is a _test.go file.
func IsTestFile(pass *analysis.Pass, file *ast.File) bool {
	name := pass.Fset.Position(file.Pos()).Filename
	return strings.HasSuffix(name, "_test.go")
}

// Callee returns the *types.Func called by call (a function or concrete or
// interface method), or nil for calls of function-typed values, built-ins,
// and type conversions.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// EnclosingFuncs maps every node in the file to the name of its innermost
// enclosing function declaration; see Lookup.
type EnclosingFuncs struct {
	decls []*ast.FuncDecl
}

// Funcs indexes the file's function declarations for Lookup.
func Funcs(file *ast.File) *EnclosingFuncs {
	e := &EnclosingFuncs{}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			e.decls = append(e.decls, fd)
		}
	}
	return e
}

// Lookup returns the function declaration whose body lexically contains n,
// or nil for package-level positions (var initializers). Function literals
// belong to the declaration that contains them.
func (e *EnclosingFuncs) Lookup(n ast.Node) *ast.FuncDecl {
	for _, fd := range e.decls {
		if fd.Pos() <= n.Pos() && n.End() <= fd.End() {
			return fd
		}
	}
	return nil
}

// DirectivePrefix introduces the repo's annotation comments
// (//spotfi:noalloc, //spotfi:immutable, //spotfi:arena). Like Go's own
// //go: directives they must start at the comment opener, with no space.
const DirectivePrefix = "//spotfi:"

// Directive reports whether doc carries a //spotfi:<name> directive,
// optionally followed by arguments after a space.
func Directive(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		rest, ok := strings.CutPrefix(c.Text, DirectivePrefix)
		if !ok {
			continue
		}
		word, _, _ := strings.Cut(rest, " ")
		if word == name {
			return true
		}
	}
	return false
}

// TypeDirective reports whether the type declaration of spec carries the
// //spotfi:<name> directive, checking both the GenDecl doc (single-spec
// declarations) and the spec's own doc (grouped declarations).
func TypeDirective(decl *ast.GenDecl, spec *ast.TypeSpec, name string) bool {
	return Directive(spec.Doc, name) || (len(decl.Specs) == 1 && Directive(decl.Doc, name))
}

// CommaSet parses a comma-separated flag value into a set, trimming
// whitespace and dropping empty entries.
func CommaSet(s string) map[string]bool {
	set := make(map[string]bool)
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			set[part] = true
		}
	}
	return set
}

// IsErrorType reports whether t is exactly the predeclared error type.
func IsErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}
