// Package arenaescape guards the estimator workspace arenas: a pointer
// into a type annotated //spotfi:arena (the MUSIC estimator and the
// eigensolver workspaces) must not outlive the estimator that owns it.
//
// The arenas are reused across bursts and handed out through a
// sync.Pool, so an interior pointer that survives a call — parked in a
// global, sent on a channel, captured by a goroutine — is not a leak but
// a data race in waiting: the next burst overwrites the memory under the
// holder, silently corrupting an estimate. The bench gate cannot see
// this at all; only the escape analysis can.
//
// For every function whose receiver or parameters are arena-typed, the
// dataflow layer tracks all values derived from them. Findings:
//
//   - stores to package-level variables, channel sends, and go-statement
//     captures are always reported;
//   - returning a derived pointer from an exported function publishes a
//     borrow outside the package and is reported (the repo's two
//     documented eigensolver borrows carry //lint:allow with a reason);
//     unexported functions may return derived pointers freely — their
//     callers are in the same fixpoint and keep tracking;
//   - passing a derived pointer to a callee is resolved through the
//     callee's escape summary (same-package by fixpoint, cross-package
//     via the fact store); a callee that retains it, or one with no
//     summary at all, is reported.
//
// The analyzer exports two kinds of facts under one type: Arena marks an
// annotated type for cross-package recognition, and Sum carries each
// function's escape summary so dependent packages resolve calls into
// this one precisely.
package arenaescape

import (
	"go/ast"
	"go/types"

	"spotfi/internal/analysis"
	"spotfi/internal/analysis/dataflow"
	"spotfi/internal/analysis/passes/passutil"
)

const name = "arenaescape"

var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc: "report pointers into //spotfi:arena workspaces that outlive the estimator\n\n" +
		"Arenas are recycled across bursts via sync.Pool; an interior pointer\n" +
		"stored beyond the call corrupts the next burst's estimate.",
	Run:      run,
	FactType: func() any { return new(Fact) },
}

// Fact is the cross-package record: Arena marks an annotated type (on
// type objects), Sum carries a function's escape summary (on funcs).
type Fact struct {
	Arena bool             `json:"arena,omitempty"`
	Sum   dataflow.Summary `json:"sum"`
}

func run(pass *analysis.Pass) (any, error) {
	facts := pass.Facts
	if facts == nil {
		facts = analysis.NewFacts()
	}

	// Pass 1: annotated arena types, local and imported.
	arenas := make(map[*types.TypeName]bool)
	var files []*ast.File
	for _, file := range pass.Files {
		if passutil.IsTestFile(pass, file) {
			continue
		}
		files = append(files, file)
		for _, d := range file.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || !passutil.TypeDirective(gd, ts, "arena") {
					continue
				}
				if tn, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName); ok {
					arenas[tn] = true
					facts.Put(name, tn, &Fact{Arena: true})
				}
			}
		}
	}
	isArena := func(t types.Type) *types.TypeName {
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok {
			if p, ok := t.(*types.Pointer); ok {
				named, ok = p.Elem().(*types.Named)
				if !ok {
					return nil
				}
			} else {
				return nil
			}
		}
		tn := named.Obj()
		if arenas[tn] {
			return tn
		}
		if f, ok := facts.Get(name, tn); ok && f.(*Fact).Arena {
			return tn
		}
		return nil
	}

	// Pass 2: escape summaries for the whole package, exported as facts.
	summarizer := &dataflow.Summarizer{
		Info: pass.TypesInfo,
		External: func(fn *types.Func) *dataflow.Summary {
			if f, ok := facts.Get(name, fn); ok {
				return &f.(*Fact).Sum
			}
			return nil
		},
	}
	sums := summarizer.Package(files)
	for fn, sum := range sums {
		facts.Put(name, fn, &Fact{Sum: *sum})
	}
	summaryOf := func(fn *types.Func) *dataflow.Summary {
		if fn == nil {
			return nil
		}
		if sum, ok := sums[fn]; ok {
			return sum
		}
		if f, ok := facts.Get(name, fn); ok {
			return &f.(*Fact).Sum
		}
		return nil
	}

	// Pass 3: track arena roots through each function that receives one.
	tracker := &dataflow.Tracker{
		Info: pass.TypesInfo,
		CallResults: func(call *ast.CallExpr, fn *types.Func, recvMask uint64, argMasks []uint64) []uint64 {
			sum := summaryOf(fn)
			if sum == nil {
				return nil // conservative: more taint is safe here
			}
			var m uint64
			if recvMask != 0 && sum.Recv&dataflow.EscReturn != 0 {
				m |= recvMask
			}
			for i, am := range argMasks {
				if am != 0 && sum.Param(i)&dataflow.EscReturn != 0 {
					m |= am
				}
			}
			t := pass.TypesInfo.TypeOf(call.Fun)
			if t == nil {
				return nil
			}
			sig, _ := t.Underlying().(*types.Signature)
			if sig == nil {
				return nil
			}
			out := make([]uint64, sig.Results().Len())
			for i := range out {
				if dataflow.ResultCarries(sig.Results().At(i).Type()) {
					out[i] = m
				}
			}
			return out
		},
	}
	for _, file := range files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, tracker, summaryOf, isArena, fd)
		}
	}
	return nil, nil
}

func checkFunc(pass *analysis.Pass, tracker *dataflow.Tracker, summaryOf func(*types.Func) *dataflow.Summary, isArena func(types.Type) *types.TypeName, fd *ast.FuncDecl) {
	all, results := dataflow.SignatureObjects(pass.TypesInfo, fd)
	var roots []types.Object
	var rootArena []*types.TypeName
	for _, obj := range all {
		if obj == nil {
			continue
		}
		if tn := isArena(obj.Type()); tn != nil {
			roots = append(roots, obj)
			rootArena = append(rootArena, tn)
		}
	}
	if len(roots) == 0 {
		return
	}
	flow := tracker.Track(fd.Body, roots, results)

	arenaName := func(mask uint64) string {
		for i := range roots {
			if mask&(1<<uint(min(i, 63))) != 0 {
				return rootArena[i].Name()
			}
		}
		return rootArena[0].Name()
	}
	exported := exportedFunc(fd)
	for _, sink := range flow.Sinks {
		an := arenaName(sink.Mask)
		switch sink.Kind {
		case dataflow.SinkGlobal:
			pass.Reportf(sink.Pos, "pointer derived from the %s arena is stored to a global; it must not outlive the estimator", an)
		case dataflow.SinkChannel:
			pass.Reportf(sink.Pos, "pointer derived from the %s arena is sent on a channel; it must not outlive the estimator", an)
		case dataflow.SinkGoroutine:
			pass.Reportf(sink.Pos, "pointer derived from the %s arena is captured by a goroutine; the next burst will overwrite it underneath", an)
		case dataflow.SinkReturn:
			if exported {
				pass.Reportf(sink.Pos, "%s returns a pointer into the %s arena to callers outside the package; the borrow must not outlive the estimator", fd.Name.Name, an)
			}
		case dataflow.SinkCall:
			callee, _ := calleeOf(pass.TypesInfo, sink.Call)
			esc := sink.Resolve(summaryOf(callee))
			switch {
			case esc == dataflow.EscNone:
			case esc&dataflow.EscHeap != 0 && summaryOf(callee) == nil:
				pass.Reportf(sink.Pos, "pointer derived from the %s arena is passed to %s, which has no escape summary; it may be retained past the call", an, calleeLabel(callee))
			default:
				pass.Reportf(sink.Pos, "pointer derived from the %s arena is passed to %s, which leaks it (%s)", an, calleeLabel(callee), esc)
			}
		}
	}
}

func exportedFunc(fd *ast.FuncDecl) bool {
	if !fd.Name.IsExported() {
		return false
	}
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return true
	}
	// An exported method on an unexported type is unreachable from other
	// packages; its returns stay module-internal.
	t := fd.Recv.List[0].Type
	if se, ok := t.(*ast.StarExpr); ok {
		t = se.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.IsExported()
	}
	return true
}

func calleeOf(info *types.Info, call *ast.CallExpr) (*types.Func, bool) {
	if call == nil {
		return nil, false
	}
	fn := passutil.Callee(info, call)
	return fn, fn != nil
}

func calleeLabel(fn *types.Func) string {
	if fn == nil {
		return "a function value"
	}
	return fn.Name()
}
