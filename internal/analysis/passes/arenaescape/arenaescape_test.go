package arenaescape_test

import (
	"testing"

	"spotfi/internal/analysis/analysistest"
	"spotfi/internal/analysis/passes/arenaescape"
)

func TestArenaEscape(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), arenaescape.Analyzer, "a")
}

func TestArenaEscapeSuppressed(t *testing.T) {
	analysistest.RunSuppressed(t, analysistest.TestData(t), arenaescape.Analyzer, "suppressed")
}
