package suppressed

// Workspace mirrors the eigensolver workspaces, whose Into-style entry
// points intentionally return views into the arena as documented borrows.
//
//spotfi:arena
type Workspace struct{ buf []float64 }

// Buf exposes the arena backing for in-place consumers. The contract is
// a borrow scoped to the current burst — exactly the documented-borrow
// case the analyzer requires a reasoned allow for.
func (w *Workspace) Buf() []float64 {
	return w.buf //lint:allow arenaescape documented borrow: view is valid only until the next estimate call
}
