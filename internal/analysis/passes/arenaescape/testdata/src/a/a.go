package a

// Workspace mirrors the estimator arena shape: slices reused across
// bursts, recycled through a pool, never safely referenced after the
// call that borrowed them returns.
//
//spotfi:arena
type Workspace struct {
	buf []float64
	vec []complex128
}

var leak []float64
var hold *Workspace
var fnSink func([]float64)

// keep retains its parameter in a global — the canonical leaking callee.
func keep(p []float64) { leak = p }

// fill writes scalars in place; its parameter provably does not escape.
func fill(w *Workspace) {
	for i := range w.buf {
		w.buf[i] = 0
	}
}

// view returns a derived pointer from an unexported function: legal —
// its callers are in the same fixpoint and keep tracking the result.
func view(w *Workspace) []float64 { return w.buf }

func storesGlobal(w *Workspace) {
	leak = w.buf // want `pointer derived from the Workspace arena is stored to a global; it must not outlive the estimator`
}

func storesSelf(w *Workspace) {
	hold = w // want `pointer derived from the Workspace arena is stored to a global`
}

func sends(w *Workspace, ch chan []float64) {
	ch <- w.buf // want `pointer derived from the Workspace arena is sent on a channel`
}

func spawns(w *Workspace) {
	go fill(w) // want `pointer derived from the Workspace arena is captured by a goroutine`
}

func spawnsClosure(w *Workspace) {
	go func() { // want `pointer derived from the Workspace arena is captured by a goroutine`
		fill(w)
	}()
}

// Buf is exported: returning the arena backing publishes a borrow
// outside the package.
func (w *Workspace) Buf() []float64 {
	return w.buf // want `Buf returns a pointer into the Workspace arena to callers outside the package; the borrow must not outlive the estimator`
}

// viaView leaks through an unexported returning helper: the call result
// is derived, so the global store downstream is still caught.
func viaView(w *Workspace) {
	leak = view(w) // want `pointer derived from the Workspace arena is stored to a global`
}

// viaKeep leaks through a callee whose summary says the argument is
// stored to a global.
func viaKeep(w *Workspace) {
	keep(w.buf) // want `pointer derived from the Workspace arena is passed to keep, which leaks it \(stored to a global\)`
}

// viaFuncValue passes the arena to a function value: no summary exists,
// so the worst is assumed.
func viaFuncValue(w *Workspace) {
	fnSink(w.buf) // want `pointer derived from the Workspace arena is passed to a function value, which has no escape summary; it may be retained past the call`
}

// --- clean shapes: no findings ---

// scalarOut copies a value out of the arena; a float64 carries no
// reference.
func scalarOut(w *Workspace) float64 { return w.buf[0] }

// localUse keeps the derived slice strictly local.
func localUse(w *Workspace) {
	s := w.buf[:4]
	s[0] = 1
}

// callsFill passes the arena to a callee whose summary is EscNone.
func callsFill(w *Workspace) { fill(w) }

// reset / Reset: method receiver calls resolve through the receiver
// summary; nothing escapes.
func (w *Workspace) reset() { w.buf = w.buf[:0] }
func (w *Workspace) Reset() { w.reset() }

// appendLocal grows a fresh local from arena values; append of scalars
// carries no reference back to the arena.
func appendLocal(w *Workspace) float64 {
	out := make([]float64, 0, len(w.buf))
	out = append(out, w.buf...)
	return out[0]
}
