// Package poolreuse guards sync.Pool discipline on the estimator pool: a
// value obtained with Get must go back with exactly one Put, on every
// path out of its scope — including panic unwinds — and must never be
// touched after it is Put or shared with another goroutine.
//
// The pooled music.Estimator owns eigendecomposition and sweep arenas,
// so each violation has a concrete failure mode:
//
//   - a path without Put does not leak memory (the GC reclaims unpooled
//     values) but silently degrades the pool until every estimate pays a
//     cold construction — the warm-path alloc budget evaporates;
//   - an inline Put does not run when a call between Get and Put panics,
//     which is the same degradation triggered only under error recovery,
//     the hardest place to notice it — so Put must be deferred;
//   - a use after Put races with whatever goroutine drew the value next;
//   - sharing the value with a goroutine breaks the estimator's
//     single-goroutine contract outright.
//
// The checker is flow-sensitive and deliberately lenient at the edges:
// returning the value or passing it to another function hands the Put
// obligation off and stops tracking; `if x == nil` / `if x != nil`
// guards around the Get result exempt the nil path (a pool whose New can
// fail yields nil, and nil needs no Put); Put without a visible Get
// (pool seeding in a constructor) is not the analyzer's business.
package poolreuse

import (
	"go/ast"
	"go/token"
	"go/types"

	"spotfi/internal/analysis"
	"spotfi/internal/analysis/passes/passutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "poolreuse",
	Doc: "report sync.Pool values not Put back on every path, used after Put, or shared across goroutines\n\n" +
		"Pooled estimators are single-owner: Get, use, deferred Put. Anything\n" +
		"else either drains the pool under panics or races the next owner.",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		if passutil.IsTestFile(pass, file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			list := stmtList(n)
			if list == nil {
				return true
			}
			for i, s := range list {
				switch s := s.(type) {
				case *ast.ExprStmt:
					if call := getCall(pass, s.X); call != nil {
						pass.Reportf(call.Pos(),
							"result of Get is discarded: the pooled value can never be Put back")
					}
				case *ast.AssignStmt:
					checkAssign(pass, s, list[i+1:])
				}
			}
			return true
		})
	}
	return nil, nil
}

func stmtList(n ast.Node) []ast.Stmt {
	switch n := n.(type) {
	case *ast.BlockStmt:
		return n.List
	case *ast.CaseClause:
		return n.Body
	case *ast.CommClause:
		return n.Body
	}
	return nil
}

// checkAssign inspects x := pool.Get() bindings (optionally through a
// type assertion) and walks the rest of the enclosing scope.
func checkAssign(pass *analysis.Pass, as *ast.AssignStmt, rest []ast.Stmt) {
	if len(as.Rhs) != 1 {
		return
	}
	call := getCall(pass, as.Rhs[0])
	if call == nil {
		return
	}
	id, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return
	}
	if id.Name == "_" {
		pass.Reportf(call.Pos(),
			"result of Get is discarded: the pooled value can never be Put back")
		return
	}
	if as.Tok != token.DEFINE {
		// Rebinding an outer variable: its lifetime extends beyond this
		// scope and the obligation may be met elsewhere.
		return
	}
	obj := pass.TypesInfo.Defs[id]
	if obj == nil {
		return
	}
	c := &checker{pass: pass, obj: obj, get: call}

	// Sharing with a goroutine breaks single-ownership regardless of
	// path structure; scan once up front.
	for _, s := range rest {
		var shared ast.Node
		ast.Inspect(s, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok && c.usesObj(g) {
				shared = g
				return false
			}
			return true
		})
		if shared != nil {
			pass.Reportf(shared.Pos(),
				"pooled value %s is captured by a goroutine; pooled values are single-owner", id.Name)
			return
		}
	}

	st := c.seq(rest, live)
	if st == live {
		pass.Reportf(call.Pos(),
			"pooled value is not Put back on some path out of its scope; defer pool.Put(%s)", id.Name)
	}
	for _, pos := range c.inlinePuts {
		pass.Reportf(pos,
			"Put is not deferred: a panic between Get and this Put leaks %s from the pool; use defer", id.Name)
	}
}

// state of the tracked value along one path.
type state int

const (
	live       state = iota // obtained, not yet discharged
	doneDefer               // a deferred Put (or handoff) covers every later exit
	doneInline              // an inline Put ran: later uses are use-after-Put
)

type checker struct {
	pass       *analysis.Pass
	obj        types.Object
	get        *ast.CallExpr
	inlinePuts []token.Pos
	afterPut   bool // a use-after-Put was already reported
}

// seq walks a statement sequence, threading the value's state through.
func (c *checker) seq(stmts []ast.Stmt, st state) state {
	for _, s := range stmts {
		switch st {
		case doneInline:
			if !c.afterPut && c.usesObj(s) && !c.isDeferOfPut(s) {
				c.afterPut = true
				c.pass.Reportf(s.Pos(),
					"pooled value used after Put: the next Get may already own it")
			}
		case doneDefer:
			// Covered; nothing left to check on this path.
		default:
			st = c.stmt(s, st)
		}
	}
	return st
}

func (c *checker) isDeferOfPut(s ast.Stmt) bool {
	d, ok := s.(*ast.DeferStmt)
	return ok && c.containsPut(d)
}

// stmt processes one statement and returns the state afterwards.
func (c *checker) stmt(s ast.Stmt, st state) state {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call := c.putCall(s.X); call != nil {
			c.inlinePuts = append(c.inlinePuts, call.Pos())
			return doneInline
		}
		if c.escapes(s) {
			return doneDefer // handed off
		}
		return st
	case *ast.DeferStmt:
		if c.containsPut(s) || c.escapes(s) {
			return doneDefer
		}
		return st
	case *ast.ReturnStmt:
		if c.escapes(s) {
			return doneDefer // returned: the caller owns the Put now
		}
		c.pass.Reportf(s.Pos(),
			"return leaves the pooled value obtained at %s un-Put; defer the Put",
			c.pass.Fset.Position(c.get.Pos()))
		return doneDefer // path terminates; don't cascade a scope-exit report
	case *ast.AssignStmt, *ast.DeclStmt:
		if c.escapes(s) {
			return doneDefer
		}
		return st
	case *ast.BlockStmt:
		return c.seq(s.List, st)
	case *ast.IfStmt:
		if g := c.nilGuard(s.Cond); g != 0 {
			if g < 0 { // if x == nil: the body is the no-value path
				if s.Else != nil {
					return c.stmt(s.Else, st)
				}
				return st
			}
			// if x != nil: the else / fallthrough is the no-value path.
			return c.seq(s.Body.List, st)
		}
		body := c.seq(s.Body.List, st)
		els := st
		if s.Else != nil {
			els = c.stmt(s.Else, st)
		}
		if body != live && els != live {
			if body == doneInline || els == doneInline {
				return doneInline
			}
			return doneDefer
		}
		return live
	case *ast.ForStmt, *ast.RangeStmt:
		// A loop body may run zero or many times; a Put inside it is
		// conservatively assumed to run.
		if c.containsPut(s) || c.escapes(s) {
			return doneDefer
		}
		c.seq(loopBody(s).List, st)
		return st
	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		return c.clauses(switchBody(s), st, hasDefault(switchBody(s)))
	case *ast.SelectStmt:
		return c.clauses(s.Body, st, true)
	case *ast.LabeledStmt:
		return c.stmt(s.Stmt, st)
	default:
		if c.escapes(s) {
			return doneDefer
		}
		return st
	}
}

// clauses walks a switch/select body: the value is discharged after it
// only if every clause discharges it and a default guarantees one runs.
func (c *checker) clauses(body *ast.BlockStmt, st state, exhaustive bool) state {
	if st != live {
		return st
	}
	all := doneDefer
	for _, cl := range body.List {
		list := stmtList(cl)
		if list == nil {
			continue
		}
		switch c.seq(list, st) {
		case live:
			all = live
		case doneInline:
			if all == doneDefer {
				all = doneInline
			}
		}
	}
	if !exhaustive {
		return live
	}
	return all
}

// nilGuard classifies cond as a nil check of the tracked value:
// -1 for x == nil, +1 for x != nil, 0 otherwise.
func (c *checker) nilGuard(cond ast.Expr) int {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
		return 0
	}
	isObj := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && c.pass.TypesInfo.Uses[id] == c.obj
	}
	isNil := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == "nil"
	}
	if (isObj(be.X) && isNil(be.Y)) || (isNil(be.X) && isObj(be.Y)) {
		if be.Op == token.EQL {
			return -1
		}
		return 1
	}
	return 0
}

func loopBody(s ast.Stmt) *ast.BlockStmt {
	switch s := s.(type) {
	case *ast.ForStmt:
		return s.Body
	case *ast.RangeStmt:
		return s.Body
	}
	return &ast.BlockStmt{}
}

func switchBody(s ast.Stmt) *ast.BlockStmt {
	switch s := s.(type) {
	case *ast.SwitchStmt:
		return s.Body
	case *ast.TypeSwitchStmt:
		return s.Body
	}
	return &ast.BlockStmt{}
}

func hasDefault(body *ast.BlockStmt) bool {
	for _, cl := range body.List {
		if cc, ok := cl.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

// putCall returns expr as pool.Put(x) on the tracked value, or nil.
func (c *checker) putCall(expr ast.Expr) *ast.CallExpr {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return nil
	}
	if !isPoolMethod(c.pass, call, "Put") {
		return nil
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if ok && c.pass.TypesInfo.Uses[id] == c.obj {
		return call
	}
	return nil
}

// containsPut reports whether n contains pool.Put(x) anywhere, including
// inside function literals.
func (c *checker) containsPut(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && c.putCall(call) != nil {
			found = true
		}
		return !found
	})
	return found
}

func (c *checker) usesObj(n ast.Node) bool {
	used := false
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && c.pass.TypesInfo.Uses[id] == c.obj {
			used = true
		}
		return !used
	})
	return used
}

// escapes reports whether n uses the value other than as the receiver of
// a method call or the argument of a Put: passed to another function,
// assigned, compared, or returned. Any of those hands the obligation to
// code we cannot see, so the checker stops tracking.
func (c *checker) escapes(n ast.Node) bool {
	safe := map[*ast.Ident]bool{}
	ast.Inspect(n, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
				safe[id] = true
			}
		}
		if pc := c.putCall(call); pc != nil {
			if id, ok := ast.Unparen(pc.Args[0]).(*ast.Ident); ok {
				safe[id] = true
			}
		}
		return true
	})
	escaped := false
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && c.pass.TypesInfo.Uses[id] == c.obj && !safe[id] {
			escaped = true
		}
		return !escaped
	})
	return escaped
}

// getCall returns expr as pool.Get() on a sync.Pool (optionally through
// a type assertion), or nil.
func getCall(pass *analysis.Pass, expr ast.Expr) *ast.CallExpr {
	e := ast.Unparen(expr)
	if ta, ok := e.(*ast.TypeAssertExpr); ok {
		e = ast.Unparen(ta.X)
	}
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return nil
	}
	if isPoolMethod(pass, call, "Get") {
		return call
	}
	return nil
}

// isPoolMethod reports whether call is sync.Pool method name.
func isPoolMethod(pass *analysis.Pass, call *ast.CallExpr, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	fn := passutil.Callee(pass.TypesInfo, call)
	if fn == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Pool" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}
