package poolreuse_test

import (
	"testing"

	"spotfi/internal/analysis/analysistest"
	"spotfi/internal/analysis/passes/poolreuse"
)

func TestPoolReuse(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), poolreuse.Analyzer, "a")
}

func TestPoolReuseSuppressed(t *testing.T) {
	analysistest.RunSuppressed(t, analysistest.TestData(t), poolreuse.Analyzer, "suppressed")
}
