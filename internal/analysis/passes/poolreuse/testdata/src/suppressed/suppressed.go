package suppressed

import "sync"

type scratch struct{ buf []float64 }

func (s *scratch) reset() { s.buf = s.buf[:0] }

var pool sync.Pool

// flush keeps an inline Put with a reasoned allow: reset is a slice
// re-length with no calls, so the panic window the analyzer guards
// against provably cannot open.
func flush() {
	s, _ := pool.Get().(*scratch)
	s.reset()
	pool.Put(s) //lint:allow poolreuse reset cannot panic; inline Put keeps this cold path defer-free
}
