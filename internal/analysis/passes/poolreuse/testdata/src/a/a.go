package a

import "sync"

type estimator struct{ buf []float64 }

func (e *estimator) run() float64 { return e.buf[0] }

var pool sync.Pool

func relay(e *estimator) { pool.Put(e) }

func discarded() {
	pool.Get() // want `result of Get is discarded: the pooled value can never be Put back`
}

func discardedBlank() {
	_ = pool.Get() // want `result of Get is discarded: the pooled value can never be Put back`
}

func missingPath(ok bool) {
	e, _ := pool.Get().(*estimator) // want `pooled value is not Put back on some path out of its scope; defer pool.Put\(e\)`
	if ok {
		pool.Put(e) // want `Put is not deferred: a panic between Get and this Put leaks e from the pool; use defer`
	}
}

func inlinePut() float64 {
	e, _ := pool.Get().(*estimator)
	v := e.run()
	pool.Put(e) // want `Put is not deferred: a panic between Get and this Put leaks e from the pool; use defer`
	return v
}

func useAfterPut() float64 {
	e, _ := pool.Get().(*estimator)
	pool.Put(e)    // want `Put is not deferred`
	return e.run() // want `pooled value used after Put: the next Get may already own it`
}

func shared() {
	e, _ := pool.Get().(*estimator)
	go func() { // want `pooled value e is captured by a goroutine; pooled values are single-owner`
		_ = e.run()
		pool.Put(e)
	}()
}

func returnLeak(ok bool) float64 {
	e, _ := pool.Get().(*estimator)
	if ok {
		return 0 // want `return leaves the pooled value obtained at .* un-Put; defer the Put`
	}
	defer pool.Put(e)
	return e.run()
}

// --- clean shapes: no findings ---

// good is the canonical discipline: nil-guard the Get (a pool whose New
// can fail yields nil), then defer the Put.
func good() float64 {
	e, _ := pool.Get().(*estimator)
	if e == nil {
		return 0
	}
	defer pool.Put(e)
	return e.run()
}

// goodGuarded uses the inverted guard: the nil path has no obligation.
func goodGuarded() float64 {
	e, _ := pool.Get().(*estimator)
	if e != nil {
		defer pool.Put(e)
		return e.run()
	}
	return 0
}

// handoffReturn transfers the Put obligation to the caller.
func handoffReturn() *estimator {
	e, _ := pool.Get().(*estimator)
	return e
}

// handoffCall transfers the obligation to the callee.
func handoffCall() {
	e, _ := pool.Get().(*estimator)
	relay(e)
}

// seedPool Puts without a visible Get: constructor seeding, not tracked.
func seedPool() {
	pool.Put(&estimator{buf: make([]float64, 4)})
}

// deferredClosure covers the exits through a closure that Puts.
func deferredClosure() float64 {
	e, _ := pool.Get().(*estimator)
	if e == nil {
		return 0
	}
	defer func() { pool.Put(e) }()
	return e.run()
}
