package a

import (
	"fmt"
	"strings"
)

func fails() error                        { return nil }
func failsToo() (int, error)              { return 0, nil }
func twoErrs() (error, error)             { return nil, nil }
func fine() int                           { return 0 }
func handle(err error)                    { _ = err } // want `error value discarded via _`
func errSrc() error                       { return nil }
func pair() (a, b int)                    { return }
func deferme(f func() error) func() error { return f }

type closer struct{}

func (closer) Close() error { return nil }

// Positive cases.

func dropCallStmt() {
	fails() // want `fails returns an error that is discarded`
}

func dropSecondResult() {
	failsToo() // want `failsToo returns an error that is discarded`
}

func dropMethod(c closer) {
	c.Close() // want `Close returns an error that is discarded`
}

func blankSingle() {
	_ = fails() // want `error value discarded via _`
}

func blankTuple() {
	n, _ := failsToo() // want `error result discarded via _`
	_ = n
}

func blankBoth() {
	_, _ = twoErrs() // want `error result discarded via _` `error result discarded via _`
}

func blankPairwise() {
	_, _ = fine(), errSrc() // want `error value discarded via _`
}

// Negative cases.

func handled() error {
	if err := fails(); err != nil {
		return err
	}
	return nil
}

func noError() {
	fine()
	a, b := pair()
	_, _ = a, b
}

func excludedFmt() {
	fmt.Println("fmt prints are conventionally unchecked")
	fmt.Printf("%d\n", 1)
}

func excludedBuilder() {
	var b strings.Builder
	b.WriteString("never fails")
	b.WriteByte('x')
	fmt.Fprintf(&b, "also excluded")
}

func deferredDrop(c closer) {
	defer c.Close() // defers are exempt unless -errdrop.deferred
}

func spawned() {
	go fails() // goroutine call results are not ExprStmts; gospawn's domain
}
