package a

// Dropped errors in test files are exempt. No diagnostics expected here.

func dropInTest() {
	fails()
	_ = fails()
}
