package deferred

type closer struct{}

func (closer) Close() error { return nil }

// With -errdrop.deferred, deferred drops are reported too.

func deferredDrop(c closer) {
	defer c.Close() // want `Close returns an error that is discarded`
}
