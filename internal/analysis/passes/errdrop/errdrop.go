// Package errdrop reports discarded error results outside test files:
// calls used as bare statements whose results include an error, and
// assignments that send an error to the blank identifier.
//
// PR 1's LocalizeBursts fix is the motivating bug: per-AP failures were
// swallowed inside the fan-out, so a dead AP silently degraded position
// accuracy instead of surfacing. Handle the error, return it, or annotate
// a deliberate drop with //lint:allow errdrop <reason>.
package errdrop

import (
	"go/ast"
	"go/types"

	"spotfi/internal/analysis"
	"spotfi/internal/analysis/passes/passutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "errdrop",
	Doc: "report discarded error results, including _ = assignments\n\n" +
		"Errors returned by calls must be handled or explicitly annotated with\n" +
		"//lint:allow errdrop <reason>. Callees in -errdrop.exclude are exempt.",
	Run: run,
}

var (
	exclude  string
	deferred bool
)

func init() {
	// strings.Builder and bytes.Buffer writers are documented to always
	// return a nil error; fmt prints to stderr/stdout are conventionally
	// unchecked.
	Analyzer.Flags.StringVar(&exclude, "exclude",
		"fmt.Print,fmt.Printf,fmt.Println,fmt.Fprint,fmt.Fprintf,fmt.Fprintln,"+
			"(*strings.Builder).Write,(*strings.Builder).WriteString,(*strings.Builder).WriteByte,(*strings.Builder).WriteRune,"+
			"(*bytes.Buffer).Write,(*bytes.Buffer).WriteString,(*bytes.Buffer).WriteByte,(*bytes.Buffer).WriteRune",
		"comma-separated callees whose dropped errors are ignored: full names (fmt.Println, (*bytes.Buffer).Write) or bare method names (Close)")
	Analyzer.Flags.BoolVar(&deferred, "deferred", false,
		"also report dropped errors in defer statements")
}

func run(pass *analysis.Pass) (any, error) {
	excluded := passutil.CommaSet(exclude)
	for _, file := range pass.Files {
		if passutil.IsTestFile(pass, file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				if call, ok := s.X.(*ast.CallExpr); ok {
					checkCall(pass, excluded, call)
				}
			case *ast.DeferStmt:
				// The deferred call is not an ExprStmt, so it is only
				// checked when opted in; its function-literal body (if
				// any) is always traversed.
				if deferred {
					checkCall(pass, excluded, s.Call)
				}
			case *ast.AssignStmt:
				checkAssign(pass, s)
			}
			return true
		})
	}
	return nil, nil
}

// checkCall reports a call used as a statement if any of its results is an
// error and the callee is not excluded.
func checkCall(pass *analysis.Pass, excluded map[string]bool, call *ast.CallExpr) {
	tv, ok := pass.TypesInfo.Types[call]
	if !ok || tv.IsType() {
		return // conversion, not a call
	}
	if !resultsIncludeError(tv.Type) {
		return
	}
	name := "call"
	if fn := passutil.Callee(pass.TypesInfo, call); fn != nil {
		if excluded[fn.FullName()] || excluded[fn.Name()] {
			return
		}
		name = fn.Name()
	}
	pass.Reportf(call.Pos(), "%s returns an error that is discarded; handle it or annotate with //lint:allow errdrop <reason>", name)
}

// checkAssign reports error values assigned to the blank identifier.
func checkAssign(pass *analysis.Pass, as *ast.AssignStmt) {
	// x, _ := f() — one call, multiple results.
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		tv, ok := pass.TypesInfo.Types[as.Rhs[0]]
		if !ok {
			return
		}
		tuple, ok := tv.Type.(*types.Tuple)
		if !ok {
			return
		}
		for i, lhs := range as.Lhs {
			if i < tuple.Len() && isBlank(lhs) && passutil.IsErrorType(tuple.At(i).Type()) {
				pass.Reportf(lhs.Pos(), "error result discarded via _; handle it or annotate with //lint:allow errdrop <reason>")
			}
		}
		return
	}
	// _ = expr, pairwise.
	for i, lhs := range as.Lhs {
		if i >= len(as.Rhs) || !isBlank(lhs) {
			continue
		}
		tv, ok := pass.TypesInfo.Types[as.Rhs[i]]
		if !ok {
			continue
		}
		if passutil.IsErrorType(tv.Type) {
			pass.Reportf(lhs.Pos(), "error value discarded via _; handle it or annotate with //lint:allow errdrop <reason>")
		}
	}
}

// resultsIncludeError reports whether a call's result type (a single type
// or a tuple) includes the predeclared error type.
func resultsIncludeError(t types.Type) bool {
	if t == nil {
		return false
	}
	if tuple, ok := t.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if passutil.IsErrorType(tuple.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return passutil.IsErrorType(t)
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}
