package errdrop_test

import (
	"testing"

	"spotfi/internal/analysis/analysistest"
	"spotfi/internal/analysis/passes/errdrop"
)

func TestErrdrop(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), errdrop.Analyzer, "a")
}

// TestDeferred opts in to checking defer statements.
func TestDeferred(t *testing.T) {
	f := errdrop.Analyzer.Flags.Lookup("deferred")
	if f == nil {
		t.Fatal("no flag deferred")
	}
	if err := f.Value.Set("true"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := f.Value.Set("false"); err != nil {
			t.Fatal(err)
		}
	})
	analysistest.Run(t, analysistest.TestData(t), errdrop.Analyzer, "deferred")
}
