package suppressed

type ws struct{ buf []float64 }

// coldGrow mirrors the repo's cold-fallback idiom: the arena grows on
// first use (or capacity change) and the annotated warm remainder reuses
// it. The growth line is allocating by construction and carries the
// mandatory reasoned allow.
//
//spotfi:noalloc
func coldGrow(w *ws, n int) {
	if cap(w.buf) < n {
		w.buf = make([]float64, n) //lint:allow noalloc first-call arena growth, cold by construction
	}
	w.buf = w.buf[:n]
}
