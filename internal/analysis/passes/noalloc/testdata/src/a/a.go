package a

import "math"

type ws struct {
	scratch []float64
	sum     float64
}

//spotfi:noalloc
func selfAppend(buf []float64, v float64) []float64 {
	buf = append(buf, v) // ok: amortized self-append
	return buf
}

//spotfi:noalloc
func (w *ws) arenaReuse(n int) {
	w.scratch = w.scratch[:0]
	for i := 0; i < n; i++ {
		w.scratch = append(w.scratch, float64(i)) // ok: arena self-append
	}
}

//spotfi:noalloc
func returnsAppendToParam(buf []int, v int) []int {
	return append(buf, v) // ok: caller-owned amortized buffer
}

//spotfi:noalloc
func badMake(n int) []float64 {
	out := make([]float64, n) // want `make allocates in a //spotfi:noalloc function`
	return out
}

//spotfi:noalloc
func badNew() *ws {
	return new(ws) // want `new allocates in a //spotfi:noalloc function`
}

//spotfi:noalloc
func sliceLit() []int {
	s := []int{1, 2, 3} // want `slice literal allocates its backing array`
	return s
}

//spotfi:noalloc
func mapLit() map[string]int {
	return map[string]int{"a": 1} // want `map literal allocates`
}

//spotfi:noalloc
func freshAppend(v int) []int {
	var s []int
	t := append(s, v) // want `append may grow and allocate`
	return t
}

var global *ws

//spotfi:noalloc
func escapingLit() {
	w := &ws{} // want `&composite literal escapes and allocates`
	global = w
}

//spotfi:noalloc
func stackLit() float64 {
	w := &ws{} // ok: provably never escapes, stays on the stack
	w.sum = 1
	return w.sum
}

//spotfi:noalloc
func boxes(v int) any {
	return v // want `interface boxing`
}

//spotfi:noalloc
func noBox(p *ws) any {
	return p // ok: pointer-shaped, no boxing allocation
}

//spotfi:noalloc
func concat(a, b string) string {
	return a + b // want `string concatenation allocates`
}

//spotfi:noalloc
func convert(s string) []byte {
	return []byte(s) // want `conversion between string and \[\]byte`
}

//spotfi:noalloc
func spawns() {
	go func() {}() // want `go statement allocates a goroutine`
}

//spotfi:noalloc
func mapWrite(m map[string]int) {
	m["k"] = 1 // want `map assignment may grow the map`
}

func helper() {}

//spotfi:noalloc
func callsUnannotated() {
	helper() // want `call to helper, which is not //spotfi:noalloc`
}

//spotfi:noalloc
func usesMath(x float64) float64 {
	return math.Sqrt(x) // ok: math is allow-listed
}

//spotfi:noalloc
func callee(x float64) float64 { return x * 2 }

//spotfi:noalloc
func callsAnnotated(x float64) float64 {
	return callee(x) // ok: callee carries the same contract
}

//spotfi:noalloc
func applyNoEscape(n int, f func(int) float64) float64 {
	var s float64
	for i := 0; i < n; i++ {
		s += f(i)
	}
	return s
}

//spotfi:noalloc
func closureToNoEscapeParam(vals []float64) float64 {
	return applyNoEscape(len(vals), func(i int) float64 { return vals[i] }) // ok: f never escapes applyNoEscape
}

var fglobal func(int) float64

//spotfi:noalloc
func storeFn(f func(int) float64) {
	fglobal = f // storing a func value allocates nothing here...
}

//spotfi:noalloc
func closureToEscapingParam(vals []float64) {
	storeFn(func(i int) float64 { return vals[i] }) // want `closure capturing vals allocates`
}

//spotfi:noalloc
func closureHeld(vals []float64) float64 {
	f := func(i int) float64 { return vals[i] } // want `closure capturing vals allocates`
	return f(0)
}

//spotfi:noalloc
func iife(vals []float64) float64 {
	total := func() float64 { // ok: immediately invoked, stays on the stack
		var s float64
		for _, v := range vals {
			s += v
		}
		return s
	}()
	return total
}

type doer interface{ do() }

//spotfi:noalloc
func dynamic(d doer) {
	d.do() // want `dynamic call of do cannot be verified`
}

//spotfi:noalloc
func panics(i, n int) {
	if i >= n {
		panic("index out of range") // ok: panics are cold by definition
	}
}

//spotfi:noalloc
func twoVals() (int, int) { return 1, 2 }

//spotfi:noalloc
func twoPtrs() (*ws, *ws) { return nil, nil }

//spotfi:noalloc
func tupleAssignBoxes() any {
	var a any
	var b int
	a, b = twoVals() // want `converting int to any allocates`
	_ = b
	return a
}

//spotfi:noalloc
func tupleDeclBoxes() any {
	var a, b any = twoVals() // want `converting int to any allocates` `converting int to any allocates`
	_ = b
	return a
}

//spotfi:noalloc
func commaOkBoxes(m map[string]int, k string) any {
	var v any
	var ok bool
	v, ok = m[k] // want `converting int to any allocates`
	_ = ok
	return v
}

//spotfi:noalloc
func tupleNoBox() any {
	var a any
	var b *ws
	a, b = twoPtrs() // ok: pointer-shaped results fit the interface word
	_ = b
	return a
}

//spotfi:noalloc
func tupleDefineNoBox() int {
	x, y := twoVals() // ok: := gives each name its exact result type
	return x + y
}
