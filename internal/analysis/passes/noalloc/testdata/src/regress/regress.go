package regress

// estimator mirrors the music.Estimator arena shape: smooth is owned by
// the estimator and reused across calls, so a warm estimate performs
// zero per-call allocations.
type estimator struct {
	smooth []complex128
}

// estimate is the warm path with the arena-reuse line deliberately
// replaced by a per-call make — exactly the regression that only
// BenchmarkSpectrumWarm's alloc gate could catch before this analyzer.
// The finding must land on the make line itself.
//
//spotfi:noalloc
func (e *estimator) estimate(csi []complex128) complex128 {
	smooth := make([]complex128, len(csi)) // want `make allocates in a //spotfi:noalloc function`
	copy(smooth, csi)
	var acc complex128
	for _, v := range smooth {
		acc += v
	}
	return acc
}

// estimateReused is the correct arena shape for contrast: no findings.
//
//spotfi:noalloc
func (e *estimator) estimateReused(csi []complex128) complex128 {
	e.smooth = e.smooth[:0]
	e.smooth = append(e.smooth, csi...)
	var acc complex128
	for _, v := range e.smooth {
		acc += v
	}
	return acc
}
