// Package noalloc enforces the warm-path allocation contract: a function
// annotated //spotfi:noalloc may not contain a construct that allocates
// on every call, and may only call functions that uphold the same
// contract.
//
// PR 6 took a warm MUSIC estimate from 246 allocations to 1 by routing
// every buffer through estimator-owned arenas. That invariant is
// load-bearing — the bench gate asserts it — but a bench can only say
// *that* a regression happened, not *where*. This analyzer localizes the
// exact line: reintroduce a make, a boxing conversion, or an escaping
// closure inside the annotated warm path and the finding lands on it.
//
// Flagged constructs:
//
//   - make, new, and go statements;
//   - slice and map composite literals (their backing store is fresh
//     per call), and &T{} literals whose pointer escapes the function
//     (a non-escaping &T{} is stack-allocated and fine);
//   - append, unless it is the amortized-arena shape: self-append
//     (x = append(x, ...)) or returning an append to a parameter —
//     both grow a caller- or arena-owned buffer whose capacity
//     stabilizes after warmup;
//   - interface boxing: assigning, passing, returning, or sending a
//     non-pointer-shaped concrete value as an interface;
//   - non-constant string concatenation and string<->[]byte/[]rune
//     conversions;
//   - map writes (they may grow the table);
//   - closures that capture variables, unless immediately invoked or
//     passed directly to a callee whose corresponding parameter
//     provably does not escape (then the closure lives on the stack) —
//     decided with the dataflow escape summaries, cross-package via
//     the fact store;
//   - calls to functions that are neither //spotfi:noalloc (locally or
//     by imported fact) nor in the allow-listed packages
//     (-noalloc.allow, default math, math/cmplx, math/bits,
//     sync/atomic), and dynamic calls through interfaces.
//
// panic calls and their arguments are exempt: a panic is cold by
// definition, and the repo's bounds-check panics are constant strings
// precisely so the hot accessors stay inlinable. Cold fallback paths
// inside annotated functions (e.g. a first-call arena growth) carry a
// //lint:allow noalloc with a reason.
//
// The analyzer exports a fact per function — whether it is annotated,
// plus its parameter escape summary — so callee checks and closure-arg
// decisions work across package boundaries in dependency order.
package noalloc

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"spotfi/internal/analysis"
	"spotfi/internal/analysis/dataflow"
	"spotfi/internal/analysis/passes/passutil"
)

const name = "noalloc"

var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc: "report allocating constructs in //spotfi:noalloc functions\n\n" +
		"The MUSIC warm path holds at ~1 allocation per estimate by routing all\n" +
		"buffers through estimator arenas. Annotated functions may not allocate\n" +
		"nor call functions that have not made the same promise.",
	Run:      run,
	FactType: func() any { return new(Fact) },
}

// Fact is the cross-package record for one function: its annotation
// state and how its inputs escape (for closure-argument decisions).
type Fact struct {
	Noalloc bool             `json:"noalloc,omitempty"`
	Sum     dataflow.Summary `json:"sum"`
}

var allowPkgs string

func init() {
	Analyzer.Flags.StringVar(&allowPkgs, "allow", "math,math/cmplx,math/bits,sync/atomic",
		"comma-separated package path prefixes callable from //spotfi:noalloc functions")
}

func run(pass *analysis.Pass) (any, error) {
	facts := pass.Facts
	if facts == nil {
		facts = analysis.NewFacts()
	}
	allowed := passutil.CommaSet(allowPkgs)

	// Pass 1: find annotated functions and compute escape summaries for
	// the whole package, backing cross-package calls with imported facts.
	annotated := make(map[*types.Func]bool)
	var sumFiles []*ast.File
	for _, file := range pass.Files {
		if passutil.IsTestFile(pass, file) {
			continue
		}
		sumFiles = append(sumFiles, file)
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || !passutil.Directive(fd.Doc, "noalloc") {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				annotated[fn] = true
			}
		}
	}
	summarizer := &dataflow.Summarizer{
		Info: pass.TypesInfo,
		External: func(fn *types.Func) *dataflow.Summary {
			if f, ok := facts.Get(name, fn); ok {
				return &f.(*Fact).Sum
			}
			return nil
		},
	}
	sums := summarizer.Package(sumFiles)
	for fn, sum := range sums {
		facts.Put(name, fn, &Fact{Noalloc: annotated[fn], Sum: *sum})
	}

	// Pass 2: check annotated bodies.
	c := &checker{
		pass:      pass,
		facts:     facts,
		annotated: annotated,
		sums:      sums,
		allowed:   allowed,
	}
	for _, file := range sumFiles {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !passutil.Directive(fd.Doc, "noalloc") {
				continue
			}
			c.checkFunc(fd)
		}
	}
	return nil, nil
}

type checker struct {
	pass      *analysis.Pass
	facts     *analysis.Facts
	annotated map[*types.Func]bool
	sums      map[*types.Func]*dataflow.Summary
	allowed   map[string]bool

	// per-function state
	decl   *ast.FuncDecl
	params map[types.Object]bool
}

func (c *checker) checkFunc(fd *ast.FuncDecl) {
	c.decl = fd
	c.params = make(map[types.Object]bool)
	roots, _ := dataflow.SignatureObjects(c.pass.TypesInfo, fd)
	for _, r := range roots {
		if r != nil {
			c.params[r] = true
		}
	}
	c.walk(fd.Body)
}

// walk inspects one node tree, pruning panic arguments and handling the
// constructs that need context (append shape, &T{} escape, closures).
func (c *checker) walk(n ast.Node) {
	if n == nil {
		return
	}
	info := c.pass.TypesInfo
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			c.pass.Reportf(n.Pos(), "go statement allocates a goroutine in a //spotfi:noalloc function")
			return true
		case *ast.AssignStmt:
			c.checkAssign(n)
			// Self-append and &T{} handling need the assignment context;
			// walk the RHS manually so the generic CallExpr/CompositeLit
			// cases below don't double-report, then skip the subtree.
			for _, r := range n.Rhs {
				c.walkValue(r, n)
			}
			for _, l := range n.Lhs {
				c.walk(l)
			}
			return false
		case *ast.ReturnStmt:
			c.checkReturn(n)
			for _, r := range n.Results {
				c.walkValue(r, n)
			}
			return false
		case *ast.ValueSpec:
			c.checkValueSpec(n)
			for _, v := range n.Values {
				c.walkValue(v, nil)
			}
			return false
		case *ast.SendStmt:
			if t := chanElem(info, n.Chan); t != nil {
				c.checkBox(n.Value, t)
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(info, n) && !isConst(info, n) {
				c.pass.Reportf(n.OpPos, "string concatenation allocates in a //spotfi:noalloc function")
			}
		case *ast.UnaryExpr:
			// &T{} in a generic expression position (call argument,
			// nested literal): no assignment to prove it stack-bound, so
			// conservatively heap. The CompositeLit case below skips
			// struct/array literals without a proven address-taking
			// context, so this does not double-report.
			if n.Op == token.AND {
				if lit, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					switch typeUnder(info, lit).(type) {
					case *types.Struct, *types.Array:
						c.pass.Reportf(lit.Pos(), "&composite literal escapes and allocates in a //spotfi:noalloc function")
					}
				}
			}
		case *ast.CallExpr:
			return c.checkCall(n, nil)
		case *ast.CompositeLit:
			c.checkCompositeLit(n, nil)
		case *ast.FuncLit:
			c.checkFuncLit(n, nil)
			return false // capture check done; body walked by checkFuncLit
		}
		return true
	})
}

// walkValue walks one rhs/result expression with its consuming statement
// as context, so the shape-sensitive checks can see how the value is used.
func (c *checker) walkValue(e ast.Expr, ctx ast.Stmt) {
	e = ast.Unparen(e)
	switch v := e.(type) {
	case *ast.CallExpr:
		if c.checkCall(v, ctx) {
			for _, a := range v.Args {
				c.walk(a)
			}
		}
		return
	case *ast.UnaryExpr:
		if v.Op == token.AND {
			if lit, ok := ast.Unparen(v.X).(*ast.CompositeLit); ok {
				c.checkCompositeLit(lit, ctx)
				for _, el := range lit.Elts {
					c.walk(el)
				}
				return
			}
		}
	case *ast.CompositeLit:
		c.checkCompositeLit(v, ctx)
		for _, el := range v.Elts {
			c.walk(el)
		}
		return
	case *ast.FuncLit:
		c.checkFuncLit(v, ctx)
		return
	}
	c.walk(e)
}

// checkCall vets one call. The return value says whether to descend into
// the arguments (false when they were handled or are exempt).
func (c *checker) checkCall(call *ast.CallExpr, ctx ast.Stmt) bool {
	info := c.pass.TypesInfo

	// Conversions: only string<->[]byte/[]rune copy.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		c.checkConversion(call, tv.Type)
		return true
	}

	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			return c.checkBuiltin(call, b, ctx)
		}
	}

	// Immediately-invoked closure: the func value never escapes, so it
	// stays on the stack regardless of captures.
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		c.walk(lit.Body)
		for _, a := range call.Args {
			c.walk(a)
		}
		return false
	}

	fn, _ := passutilCallee(info, call)
	if fn == nil {
		// A func-typed value: invoking it is free; the closure paid its
		// cost at creation. Arguments still need checking.
		c.checkArgs(call, nil)
		return true
	}
	if isInterfaceMethod(fn) {
		c.pass.Reportf(call.Pos(), "dynamic call of %s cannot be verified in a //spotfi:noalloc function", fn.Name())
		return true
	}
	if !c.calleeOK(fn) {
		c.pass.Reportf(call.Pos(),
			"call to %s, which is not //spotfi:noalloc (annotate it, or add its package to -noalloc.allow)", calleeName(fn))
		return true
	}
	c.checkArgs(call, fn)
	// Closure arguments are part of this call's shape; vet them here and
	// keep the generic walk out.
	for _, a := range call.Args {
		if lit, ok := ast.Unparen(a).(*ast.FuncLit); ok {
			c.checkFuncLitArg(lit, call, fn)
		} else {
			c.walk(a)
		}
	}
	return false
}

func (c *checker) checkBuiltin(call *ast.CallExpr, b *types.Builtin, ctx ast.Stmt) bool {
	switch b.Name() {
	case "make":
		c.pass.Reportf(call.Pos(), "make allocates in a //spotfi:noalloc function")
	case "new":
		c.pass.Reportf(call.Pos(), "new allocates in a //spotfi:noalloc function")
	case "append":
		if !c.amortizedAppend(call, ctx) {
			c.pass.Reportf(call.Pos(),
				"append may grow and allocate; only self-append (x = append(x, ...)) or returning an append to a parameter is allowed in a //spotfi:noalloc function")
		}
	case "panic":
		// Cold by definition; the argument (even a boxing one) is exempt.
		return false
	case "print", "println":
		c.pass.Reportf(call.Pos(), "%s allocates in a //spotfi:noalloc function", b.Name())
	}
	return true
}

// amortizedAppend recognizes the two arena-growth shapes that do not
// allocate per call once capacity has warmed up: x = append(x, ...) and
// return append(param, ...).
func (c *checker) amortizedAppend(call *ast.CallExpr, ctx ast.Stmt) bool {
	if len(call.Args) == 0 {
		return true
	}
	dst := ast.Unparen(call.Args[0])
	switch s := ctx.(type) {
	case *ast.AssignStmt:
		if len(s.Lhs) == 1 && len(s.Rhs) == 1 && ast.Unparen(s.Rhs[0]) == call {
			return exprEqual(c.pass.TypesInfo, s.Lhs[0], dst)
		}
	case *ast.ReturnStmt:
		if id, ok := dst.(*ast.Ident); ok {
			return c.params[c.pass.TypesInfo.Uses[id]]
		}
	}
	return false
}

// calleeOK reports whether fn may be called from a noalloc function:
// locally annotated, noalloc by imported fact, or allow-listed package.
func (c *checker) calleeOK(fn *types.Func) bool {
	if c.annotated[fn] {
		return true
	}
	if f, ok := c.facts.Get(name, fn); ok && f.(*Fact).Noalloc {
		return true
	}
	if pkg := fn.Pkg(); pkg != nil {
		for prefix := range c.allowed {
			if pkg.Path() == prefix || strings.HasPrefix(pkg.Path(), prefix+"/") {
				return true
			}
		}
	}
	return false
}

// checkFuncLit vets a closure outside a call-argument position: capturing
// anything means a heap closure unless it is immediately invoked.
func (c *checker) checkFuncLit(lit *ast.FuncLit, ctx ast.Stmt) {
	caps := dataflow.Captures(c.pass.TypesInfo, lit)
	if len(caps) > 0 && !immediatelyInvoked(lit, ctx) {
		c.pass.Reportf(lit.Pos(), "closure capturing %s allocates in a //spotfi:noalloc function; pass it to a non-escaping parameter or hoist it to a func", captureList(caps))
	}
	c.walk(lit.Body)
}

// checkFuncLitArg vets a closure passed directly as a call argument: it
// stays on the stack iff the callee's parameter provably does not escape.
func (c *checker) checkFuncLitArg(lit *ast.FuncLit, call *ast.CallExpr, fn *types.Func) {
	caps := dataflow.Captures(c.pass.TypesInfo, lit)
	if len(caps) > 0 {
		idx := -1
		for i, a := range call.Args {
			if ast.Unparen(a) == lit {
				idx = i
			}
		}
		sum := c.summaryOf(fn)
		if sum == nil || idx < 0 || sum.Param(idx) != dataflow.EscNone {
			c.pass.Reportf(lit.Pos(), "closure capturing %s allocates: %s's parameter escapes (or has no escape fact), so the closure cannot stay on the stack", captureList(caps), fn.Name())
		}
	}
	c.walk(lit.Body)
}

func (c *checker) summaryOf(fn *types.Func) *dataflow.Summary {
	if sum, ok := c.sums[fn]; ok {
		return sum
	}
	if f, ok := c.facts.Get(name, fn); ok {
		return &f.(*Fact).Sum
	}
	return nil
}

// checkCompositeLit flags literals whose backing store is heap-fresh.
// ctx, when the literal is the direct rhs of an assignment to a plain
// local, lets &T{} prove it stays on the stack.
func (c *checker) checkCompositeLit(lit *ast.CompositeLit, ctx ast.Stmt) {
	t := c.pass.TypesInfo.TypeOf(lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		c.pass.Reportf(lit.Pos(), "slice literal allocates its backing array in a //spotfi:noalloc function")
	case *types.Map:
		c.pass.Reportf(lit.Pos(), "map literal allocates in a //spotfi:noalloc function")
	case *types.Struct, *types.Array:
		if c.addressTakenEscapes(lit, ctx) {
			c.pass.Reportf(lit.Pos(), "&composite literal escapes and allocates in a //spotfi:noalloc function")
		}
	}
}

// addressTakenEscapes reports whether an &T{} literal's pointer leaves
// the function. Assigned to a local whose flow never reaches a sink, the
// compiler keeps it on the stack; anything else is conservatively heap.
func (c *checker) addressTakenEscapes(lit *ast.CompositeLit, ctx ast.Stmt) bool {
	// Only relevant when the literal's address is taken.
	as, ok := ctx.(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return c.isAddressTaken(lit, ctx)
	}
	un, ok := ast.Unparen(as.Rhs[0]).(*ast.UnaryExpr)
	if !ok || un.Op != token.AND || ast.Unparen(un.X) != lit {
		return false // value literal: copied, not allocated
	}
	id, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident)
	if !ok || id.Name == "_" {
		return true
	}
	obj := c.pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = c.pass.TypesInfo.Uses[id]
	}
	if obj == nil {
		return true
	}
	tracker := &dataflow.Tracker{Info: c.pass.TypesInfo, CallResults: c.callResults}
	flow := tracker.Track(c.decl.Body, []types.Object{obj}, nil)
	for _, sink := range flow.Sinks {
		var esc dataflow.Escape
		if sink.Kind == dataflow.SinkCall {
			callee, _ := passutilCallee(c.pass.TypesInfo, sink.Call)
			esc = sink.Resolve(c.summaryOf(callee))
		} else {
			esc = sink.Resolve(nil)
		}
		if esc != dataflow.EscNone {
			return true
		}
	}
	return false
}

func (c *checker) callResults(call *ast.CallExpr, fn *types.Func, recvMask uint64, argMasks []uint64) []uint64 {
	sum := c.summaryOf(fn)
	if sum == nil {
		return nil
	}
	var m uint64
	if recvMask != 0 && sum.Recv&dataflow.EscReturn != 0 {
		m |= recvMask
	}
	for i, am := range argMasks {
		if am != 0 && sum.Param(i)&dataflow.EscReturn != 0 {
			m |= am
		}
	}
	sig, _ := c.pass.TypesInfo.TypeOf(call.Fun).Underlying().(*types.Signature)
	if sig == nil {
		return nil
	}
	out := make([]uint64, sig.Results().Len())
	for i := range out {
		if dataflow.Pointerish(sig.Results().At(i).Type()) {
			out[i] = m
		}
	}
	return out
}

// isAddressTaken reports whether lit sits under a & within ctx (or has no
// statement context at all, e.g. nested in another literal).
func (c *checker) isAddressTaken(lit *ast.CompositeLit, ctx ast.Stmt) bool {
	if ctx == nil {
		return false // bare T{} value in expression context: copied
	}
	taken := false
	ast.Inspect(ctx, func(n ast.Node) bool {
		if un, ok := n.(*ast.UnaryExpr); ok && un.Op == token.AND && ast.Unparen(un.X) == lit {
			taken = true
		}
		return !taken
	})
	return taken
}

// checkAssign flags map writes and interface boxing on assignment.
func (c *checker) checkAssign(as *ast.AssignStmt) {
	info := c.pass.TypesInfo
	// x, y = f() (and the v, ok comma forms): the single RHS yields a
	// tuple, so each LHS slot is checked against its result type.
	var tuple *types.Tuple
	if len(as.Lhs) > 1 && len(as.Rhs) == 1 {
		tuple, _ = info.TypeOf(as.Rhs[0]).(*types.Tuple)
	}
	for i, l := range as.Lhs {
		if idx, ok := ast.Unparen(l).(*ast.IndexExpr); ok {
			if _, isMap := typeUnder(info, idx.X).(*types.Map); isMap {
				c.pass.Reportf(l.Pos(), "map assignment may grow the map in a //spotfi:noalloc function")
			}
		}
		t := info.TypeOf(l)
		if t == nil {
			continue // blank identifier: nothing is stored, nothing boxes
		}
		switch {
		case len(as.Lhs) == len(as.Rhs):
			c.checkBox(as.Rhs[i], t)
		case tuple != nil && i < tuple.Len():
			c.checkBoxType(as.Rhs[0].Pos(), tuple.At(i).Type(), t)
		}
	}
	if as.Tok == token.ADD_ASSIGN && len(as.Lhs) == 1 && isString(info, as.Lhs[0]) {
		c.pass.Reportf(as.TokPos, "string concatenation allocates in a //spotfi:noalloc function")
	}
}

// checkValueSpec flags interface boxing in var declarations.
func (c *checker) checkValueSpec(vs *ast.ValueSpec) {
	info := c.pass.TypesInfo
	// var a, b T = f(): tuple initializer, one result per name.
	if len(vs.Names) > 1 && len(vs.Values) == 1 {
		if tuple, ok := info.TypeOf(vs.Values[0]).(*types.Tuple); ok {
			for i, name := range vs.Names {
				if obj := info.Defs[name]; obj != nil && i < tuple.Len() {
					c.checkBoxType(vs.Values[0].Pos(), tuple.At(i).Type(), obj.Type())
				}
			}
			return
		}
	}
	for i, name := range vs.Names {
		if i >= len(vs.Values) {
			break
		}
		if obj := info.Defs[name]; obj != nil {
			c.checkBox(vs.Values[i], obj.Type())
		}
	}
}

// checkReturn flags interface boxing at return sites.
func (c *checker) checkReturn(ret *ast.ReturnStmt) {
	sig, ok := c.pass.TypesInfo.Defs[c.decl.Name].(*types.Func)
	if !ok {
		return
	}
	results := sig.Type().(*types.Signature).Results()
	if len(ret.Results) != results.Len() {
		return // tuple-forwarding return; boxing happened in the callee
	}
	for i, r := range ret.Results {
		c.checkBox(r, results.At(i).Type())
	}
}

// checkArgs flags interface boxing of call arguments against the callee's
// parameter types.
func (c *checker) checkArgs(call *ast.CallExpr, fn *types.Func) {
	sig, _ := c.pass.TypesInfo.TypeOf(call.Fun).Underlying().(*types.Signature)
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, a := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis == token.NoPos {
				pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt != nil {
			c.checkBox(a, pt)
		}
	}
}

// checkBox reports a conversion of a non-pointer-shaped concrete value
// into an interface — which allocates to box the value.
func (c *checker) checkBox(e ast.Expr, dst types.Type) {
	if dst == nil || e == nil {
		return
	}
	tv, ok := c.pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return
	}
	c.checkBoxType(e.Pos(), tv.Type, dst)
}

// checkBoxType is checkBox for cases where the boxed value is one element
// of a tuple-valued expression and has no ast.Expr of its own.
func (c *checker) checkBoxType(pos token.Pos, src, dst types.Type) {
	if src == nil || dst == nil {
		return
	}
	if _, ok := dst.Underlying().(*types.Interface); !ok {
		return
	}
	if b, ok := src.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return
	}
	if _, ok := src.Underlying().(*types.Interface); ok {
		return
	}
	if pointerShaped(src) {
		return
	}
	c.pass.Reportf(pos, "converting %s to %s allocates (interface boxing) in a //spotfi:noalloc function", src, dst)
}

func (c *checker) checkConversion(call *ast.CallExpr, dst types.Type) {
	if len(call.Args) != 1 {
		return
	}
	src := c.pass.TypesInfo.TypeOf(call.Args[0])
	if src == nil {
		return
	}
	if (isStringType(src) && isByteOrRuneSlice(dst)) || (isByteOrRuneSlice(src) && isStringType(dst)) {
		c.pass.Reportf(call.Pos(), "conversion between string and %s copies and allocates in a //spotfi:noalloc function", dst)
	}
}

// --- small type/AST helpers ---

func passutilCallee(info *types.Info, call *ast.CallExpr) (*types.Func, bool) {
	fn := passutil.Callee(info, call)
	return fn, fn != nil
}

func calleeName(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return fmt.Sprintf("(%s).%s", named.Obj().Name(), fn.Name())
		}
	}
	return fn.Name()
}

func isInterfaceMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	_, ok = sig.Recv().Type().Underlying().(*types.Interface)
	return ok
}

// pointerShaped reports whether values of t fit an interface word without
// boxing: pointers, channels, maps, funcs, and unsafe.Pointer.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

func immediatelyInvoked(lit *ast.FuncLit, ctx ast.Stmt) bool {
	es, ok := ctx.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := ast.Unparen(es.X).(*ast.CallExpr)
	return ok && ast.Unparen(call.Fun) == lit
}

func captureList(caps []types.Object) string {
	var names []string
	for _, o := range caps {
		names = append(names, o.Name())
	}
	if len(names) > 3 {
		names = append(names[:3], "...")
	}
	return strings.Join(names, ", ")
}

func chanElem(info *types.Info, ch ast.Expr) types.Type {
	if t, ok := typeUnder(info, ch).(*types.Chan); ok {
		return t.Elem()
	}
	return nil
}

func typeUnder(info *types.Info, e ast.Expr) types.Type {
	t := info.TypeOf(e)
	if t == nil {
		return nil
	}
	return t.Underlying()
}

func isString(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	return t != nil && isStringType(t)
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func isConst(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}

// exprEqual reports structural equality of two simple lvalue expressions
// (identifier or selector chains resolving to the same objects), the test
// for the self-append shape.
func exprEqual(info *types.Info, a, b ast.Expr) bool {
	a, b = ast.Unparen(a), ast.Unparen(b)
	switch a := a.(type) {
	case *ast.Ident:
		bid, ok := b.(*ast.Ident)
		if !ok {
			return false
		}
		ao := info.Uses[a]
		if ao == nil {
			ao = info.Defs[a]
		}
		bo := info.Uses[bid]
		if bo == nil {
			bo = info.Defs[bid]
		}
		return ao != nil && ao == bo
	case *ast.SelectorExpr:
		bsel, ok := b.(*ast.SelectorExpr)
		if !ok {
			return false
		}
		return info.Uses[a.Sel] != nil && info.Uses[a.Sel] == info.Uses[bsel.Sel] && exprEqual(info, a.X, bsel.X)
	}
	return false
}
