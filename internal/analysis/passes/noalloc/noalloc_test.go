package noalloc_test

import (
	"testing"

	"spotfi/internal/analysis/analysistest"
	"spotfi/internal/analysis/passes/noalloc"
)

func TestNoalloc(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), noalloc.Analyzer, "a")
}

func TestNoallocSuppressed(t *testing.T) {
	analysistest.RunSuppressed(t, analysistest.TestData(t), noalloc.Analyzer, "suppressed")
}

// TestNoallocCatchesArenaRegression re-introduces a per-call allocation
// in an annotated arena-reuse function and asserts the finding lands on
// the exact make line — the static counterpart of the bench alloc gate.
func TestNoallocCatchesArenaRegression(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), noalloc.Analyzer, "regress")
}
