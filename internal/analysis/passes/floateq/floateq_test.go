package floateq_test

import (
	"testing"

	"spotfi/internal/analysis/analysistest"
	"spotfi/internal/analysis/passes/floateq"
)

func TestFloateq(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), floateq.Analyzer, "a")
}

// TestNoAllowZero flips -floateq.allowzero off and checks that the zero
// guard in a separate fixture is then reported.
func TestNoAllowZero(t *testing.T) {
	setFlag(t, "allowzero", "false")
	analysistest.Run(t, analysistest.TestData(t), floateq.Analyzer, "strictzero")
}

func setFlag(t *testing.T, name, value string) {
	t.Helper()
	f := floateq.Analyzer.Flags.Lookup(name)
	if f == nil {
		t.Fatalf("no flag %q", name)
	}
	prev := f.Value.String()
	if err := f.Value.Set(value); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := f.Value.Set(prev); err != nil {
			t.Fatal(err)
		}
	})
}
