// Package floateq reports == and != between float or complex operands
// outside designated tolerance helpers.
//
// Exact float equality silently depends on bit-identical rounding
// histories; in SpotFi's pipeline it shows up as grid peaks and residuals
// comparing unequal across algebraically equivalent code paths. Compare
// with a tolerance (math.Abs(a-b) <= eps) inside a named helper instead.
// The NaN self-test idiom (x != x) and exact comparisons against a
// constant zero (guards for "never set" / division-by-zero) are exempt by
// default.
package floateq

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"spotfi/internal/analysis"
	"spotfi/internal/analysis/passes/passutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "floateq",
	Doc: "report ==/!= on float or complex operands outside tolerance helpers\n\n" +
		"Exact float equality depends on rounding history; compare against a\n" +
		"tolerance inside a helper named by -floateq.helpers instead.",
	Run: run,
}

var (
	helpers   string
	allowZero bool
)

func init() {
	Analyzer.Flags.StringVar(&helpers, "helpers", "approxEqual,almostEqual,EqualWithin,withinTol",

		"comma-separated names of functions allowed to compare floats exactly")
	Analyzer.Flags.BoolVar(&allowZero, "allowzero", true,
		"permit exact comparison against a constant zero")
}

func run(pass *analysis.Pass) (any, error) {
	allowed := passutil.CommaSet(helpers)
	for _, file := range pass.Files {
		if passutil.IsTestFile(pass, file) {
			continue
		}
		funcs := passutil.Funcs(file)
		ast.Inspect(file, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			if !isFloatOrComplex(pass.TypesInfo.Types[bin.X].Type) &&
				!isFloatOrComplex(pass.TypesInfo.Types[bin.Y].Type) {
				return true
			}
			if constOperand(pass, bin.X) && constOperand(pass, bin.Y) {
				return true // compile-time comparison
			}
			if isNaNIdiom(bin) {
				return true
			}
			if allowZero && (isZero(pass, bin.X) || isZero(pass, bin.Y)) {
				return true
			}
			if fd := funcs.Lookup(bin); fd != nil && allowed[fd.Name.Name] {
				return true
			}
			pass.Reportf(bin.OpPos,
				"exact %s on floating-point operands; compare with a tolerance (or move into an allowed helper: -floateq.helpers)",
				bin.Op)
			return true
		})
	}
	return nil, nil
}

// isNaNIdiom recognizes x != x / x == x on a side-effect-free operand,
// the standard NaN test.
func isNaNIdiom(bin *ast.BinaryExpr) bool {
	return plainRef(bin.X) && plainRef(bin.Y) &&
		types.ExprString(bin.X) == types.ExprString(bin.Y)
}

// plainRef reports whether e is an identifier or selector chain — no
// calls or indexing, so evaluating it twice is harmless.
func plainRef(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return true
	case *ast.SelectorExpr:
		return plainRef(e.X)
	}
	return false
}

func isZero(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	v := tv.Value
	switch v.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(v) == 0
	case constant.Complex:
		return constant.Sign(constant.Real(v)) == 0 && constant.Sign(constant.Imag(v)) == 0
	}
	return false
}

func constOperand(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Value != nil
}

func isFloatOrComplex(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}
