package strictzero

func zeroGuard(x float64) bool {
	return x == 0 // want `exact == on floating-point operands`
}
