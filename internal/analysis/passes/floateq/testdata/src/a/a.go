package a

type sample struct{ v float64 }

// Positive cases.

func eq(a, b float64) bool {
	return a == b // want `exact == on floating-point operands`
}

func neq(a, b float64) bool {
	return a != b // want `exact != on floating-point operands`
}

func eqComplex(a, b complex128) bool {
	return a == b // want `exact == on floating-point operands`
}

func eqMixedConst(a float64) bool {
	return a == 0.3 // want `exact == on floating-point operands`
}

func eqFields(a, b sample) bool {
	return a.v == b.v // want `exact == on floating-point operands`
}

func eqFloat32(a, b float32) bool {
	return a == b // want `exact == on floating-point operands`
}

// Negative cases.

func nanCheck(x float64) bool {
	return x != x // NaN self-test idiom
}

func nanCheckField(s sample) bool {
	return s.v != s.v
}

func zeroGuard(x float64) bool {
	return x == 0 // exact-zero guard, exempt by -floateq.allowzero
}

func zeroGuardFloat(x float64) bool {
	return 0.0 != x
}

func intEq(a, b int) bool {
	return a == b
}

func approxEqual(a, b float64) bool {
	return a == b || abs(a-b) < 1e-9 // inside an allowed tolerance helper
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
