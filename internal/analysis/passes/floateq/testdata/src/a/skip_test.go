package a

// Test files may compare exactly: table tests routinely assert
// bit-identical outputs. No diagnostics expected here.

func exactInTest(a, b float64) bool {
	return a == b
}
