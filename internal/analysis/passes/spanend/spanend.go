// Package spanend guards the trace span lifecycle: a span obtained from
// StartSpan/StartSpanAt must be Ended on every path out of its scope.
//
// An un-Ended span is silently closed when the trace Finishes, with the
// trace's end time as its end — so the bug is not a leak but a lie: the
// stage's recorded duration absorbs everything that ran after it, and the
// per-stage latency histograms drift. The fix is mechanical (defer
// sp.End(), or End on each branch), so the analyzer insists on it.
//
// The checker is flow-sensitive but deliberately conservative:
//
//   - defer sp.End() anywhere after the start ends all later paths;
//   - an End inside a loop is assumed to run;
//   - passing the span to another function, capturing it in a closure or
//     goroutine, or returning it hands off the obligation — not reported;
//   - only spans bound with := to a single identifier are tracked; and
//   - Trace.Finish is burst-lifecycle ownership, deliberately not linted.
package spanend

import (
	"go/ast"
	"go/token"
	"go/types"

	"spotfi/internal/analysis"
	"spotfi/internal/analysis/passes/passutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "spanend",
	Doc: "report trace spans started but not Ended on some path\n\n" +
		"A span left open gets the trace's end time at Finish, corrupting the\n" +
		"stage's recorded duration. defer sp.End(), or End it on every path.",
	Run: run,
}

var tracePkg string

func init() {
	Analyzer.Flags.StringVar(&tracePkg, "pkg", "spotfi/internal/obs/trace",
		"import path of the tracing package whose Span lifecycle is guarded")
}

var startMethods = map[string]bool{"StartSpan": true, "StartSpanAt": true}

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		if passutil.IsTestFile(pass, file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			list := stmtList(n)
			if list == nil {
				return true
			}
			for i, s := range list {
				switch s := s.(type) {
				case *ast.ExprStmt:
					if call := startCall(pass, s.X); call != nil {
						pass.Reportf(call.Pos(),
							"result of %s is discarded: the span can never be Ended and will absorb the rest of the trace", startName(call))
					}
				case *ast.AssignStmt:
					checkAssign(pass, s, list[i+1:])
				}
			}
			return true
		})
	}
	return nil, nil
}

// stmtList returns the statement list a node directly owns, or nil.
func stmtList(n ast.Node) []ast.Stmt {
	switch n := n.(type) {
	case *ast.BlockStmt:
		return n.List
	case *ast.CaseClause:
		return n.Body
	case *ast.CommClause:
		return n.Body
	}
	return nil
}

// checkAssign inspects sp := x.StartSpan(...) bindings and walks the rest
// of the enclosing scope for paths that leave sp un-Ended.
func checkAssign(pass *analysis.Pass, as *ast.AssignStmt, rest []ast.Stmt) {
	if len(as.Rhs) != 1 || len(as.Lhs) != 1 {
		return
	}
	call := startCall(pass, as.Rhs[0])
	if call == nil {
		return
	}
	id, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return
	}
	if id.Name == "_" {
		pass.Reportf(call.Pos(),
			"result of %s is discarded: the span can never be Ended and will absorb the rest of the trace", startName(call))
		return
	}
	if as.Tok != token.DEFINE {
		// Plain = may rebind an outer variable whose lifetime we cannot
		// see from this scope; the obligation may be met elsewhere.
		return
	}
	obj := pass.TypesInfo.Defs[id]
	if obj == nil {
		return
	}
	c := &checker{pass: pass, obj: obj, start: call}
	if !c.seq(rest, false) {
		pass.Reportf(call.Pos(),
			"span started here is not Ended before its scope exits on some path; defer %s.End() or End it on every branch", id.Name)
	}
}

// checker walks the statements following one span binding. ended threads
// through the walk: true once End (or a defer of it, or an escape that
// hands the span off) is guaranteed on the current path.
type checker struct {
	pass  *analysis.Pass
	obj   types.Object
	start *ast.CallExpr
}

// seq walks a statement sequence and reports whether the span is Ended on
// every path that falls off its end.
func (c *checker) seq(stmts []ast.Stmt, ended bool) bool {
	for _, s := range stmts {
		if ended {
			return true
		}
		ended = c.stmt(s, ended)
	}
	return ended
}

// stmt processes one statement and returns whether the span is Ended (or
// the path terminated with the obligation met) afterwards.
func (c *checker) stmt(s ast.Stmt, ended bool) bool {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if c.isEndCall(s.X) {
			return true
		}
		return c.escapes(s) || ended
	case *ast.DeferStmt:
		// defer sp.End(), or deferring anything that captures the span
		// (defer func() { sp.End() }()), covers every later exit.
		return c.containsEnd(s) || c.escapes(s) || ended
	case *ast.GoStmt:
		return c.escapes(s) || ended
	case *ast.ReturnStmt:
		if c.escapes(s) {
			return true // span returned: the caller owns End now
		}
		c.pass.Reportf(s.Pos(),
			"return leaves the span started at %s un-Ended; End it before returning or defer it",
			c.pass.Fset.Position(c.start.Pos()))
		return true // path terminates; don't cascade a scope-exit report
	case *ast.AssignStmt, *ast.DeclStmt:
		return c.escapes(s) || ended
	case *ast.BlockStmt:
		return c.seq(s.List, ended)
	case *ast.IfStmt:
		body := c.seq(s.Body.List, ended)
		els := ended
		if s.Else != nil {
			els = c.stmt(s.Else, ended)
		}
		return body && els
	case *ast.ForStmt, *ast.RangeStmt:
		// A loop body may run zero or many times: an End inside it is
		// conservatively assumed to run; returns inside it still count.
		if c.containsEnd(s) || c.escapes(s) {
			return true
		}
		c.seq(loopBody(s).List, ended)
		return ended
	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		return c.clauses(switchBody(s), ended, hasDefault(switchBody(s)))
	case *ast.SelectStmt:
		// A select with no default still always runs exactly one case.
		return c.clauses(s.Body, ended, true)
	case *ast.LabeledStmt:
		return c.stmt(s.Stmt, ended)
	default:
		// Anything else that mentions the span hands it off; be lenient.
		return c.escapes(s) || ended
	}
}

// clauses walks a switch/select body: the span is Ended after it only if
// every clause ends it and (for switch) a default guarantees one runs.
func (c *checker) clauses(body *ast.BlockStmt, ended, exhaustive bool) bool {
	all := true
	for _, cl := range body.List {
		if list := stmtList(cl); list != nil {
			if !c.seq(list, ended) {
				all = false
			}
		}
	}
	return ended || (all && exhaustive)
}

func loopBody(s ast.Stmt) *ast.BlockStmt {
	switch s := s.(type) {
	case *ast.ForStmt:
		return s.Body
	case *ast.RangeStmt:
		return s.Body
	}
	return &ast.BlockStmt{}
}

func switchBody(s ast.Stmt) *ast.BlockStmt {
	switch s := s.(type) {
	case *ast.SwitchStmt:
		return s.Body
	case *ast.TypeSwitchStmt:
		return s.Body
	}
	return &ast.BlockStmt{}
}

func hasDefault(body *ast.BlockStmt) bool {
	for _, cl := range body.List {
		if cc, ok := cl.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

// isEndCall reports whether expr is exactly sp.End() on the tracked span.
func (c *checker) isEndCall(expr ast.Expr) bool {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	return ok && c.pass.TypesInfo.Uses[id] == c.obj
}

// containsEnd reports whether n contains sp.End() anywhere, including
// inside function literals.
func (c *checker) containsEnd(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && c.isEndCall(call) {
			found = true
		}
		return !found
	})
	return found
}

// escapes reports whether n uses the span other than as the receiver of a
// method call: passed to a function, captured by a closure, assigned,
// compared, or returned. Any of those hands the End obligation to code we
// cannot see, so the checker stops tracking.
func (c *checker) escapes(n ast.Node) bool {
	// First mark receivers of direct method calls as accounted for.
	safe := map[*ast.Ident]bool{}
	ast.Inspect(n, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
				safe[id] = true
			}
		}
		return true
	})
	escaped := false
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && c.pass.TypesInfo.Uses[id] == c.obj && !safe[id] {
			escaped = true
		}
		return !escaped
	})
	return escaped
}

// startCall returns expr as a StartSpan/StartSpanAt call on the guarded
// package's Span type, or nil.
func startCall(pass *analysis.Pass, expr ast.Expr) *ast.CallExpr {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return nil
	}
	fn := passutil.Callee(pass.TypesInfo, call)
	if fn == nil || !startMethods[fn.Name()] {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return nil
	}
	obj := named.Obj()
	if obj.Name() == "Span" && obj.Pkg() != nil && obj.Pkg().Path() == tracePkg {
		return call
	}
	return nil
}

func startName(call *ast.CallExpr) string {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		return sel.Sel.Name
	}
	return "StartSpan"
}
