package spanend_test

import (
	"testing"

	"spotfi/internal/analysis/analysistest"
	"spotfi/internal/analysis/passes/spanend"
)

func TestSpanend(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), spanend.Analyzer, "a")
}
