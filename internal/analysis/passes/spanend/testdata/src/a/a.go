package a

import (
	"errors"
	"time"

	"spotfi/internal/obs/trace"
)

var errBoom = errors.New("boom")

// Deferred End right after the start: every later path is covered.
func deferred(parent *trace.Span) error {
	sp := parent.StartSpan("stage")
	defer sp.End()
	if errBoom != nil {
		return errBoom
	}
	return nil
}

// Straight-line End before the only return.
func straightLine(parent *trace.Span) {
	sp := parent.StartSpan("stage")
	sp.SetInt("k", 1)
	sp.End()
}

// End on both branches of an if/else.
func bothBranches(parent *trace.Span, ok bool) {
	sp := parent.StartSpan("stage")
	if ok {
		sp.SetInt("ok", 1)
		sp.End()
	} else {
		sp.End()
	}
}

// End in the error branch and on the fall-through path.
func errorBranch(parent *trace.Span) error {
	sp := parent.StartSpan("stage")
	if errBoom != nil {
		sp.End()
		return errBoom
	}
	sp.End()
	return nil
}

// Discarding the result makes the span impossible to End.
func discarded(parent *trace.Span) {
	parent.StartSpan("stage") // want `result of StartSpan is discarded`
}

func discardedBlank(parent *trace.Span) {
	_ = parent.StartSpan("stage") // want `result of StartSpan is discarded`
}

// An early return that skips End corrupts the recorded duration.
func earlyReturn(parent *trace.Span) error {
	sp := parent.StartSpan("stage")
	if errBoom != nil {
		return errBoom // want `return leaves the span started at .* un-Ended`
	}
	sp.End()
	return nil
}

// Falling off the scope without End is just as bad as returning early.
func fallsOff(parent *trace.Span) {
	sp := parent.StartSpan("stage") // want `span started here is not Ended before its scope exits`
	sp.SetInt("k", 1)
}

// Ending only one branch leaks the other.
func oneBranch(parent *trace.Span, ok bool) {
	sp := parent.StartSpan("stage") // want `span started here is not Ended before its scope exits`
	if ok {
		sp.End()
	}
}

// StartSpanAt is held to the same rule.
func startAt(parent *trace.Span) {
	sp := parent.StartSpanAt("stage", time.Now()) // want `span started here is not Ended before its scope exits`
	sp.SetInt("k", 1)
}

// An End inside a loop is conservatively assumed to run.
func endInLoop(parent *trace.Span, n int) {
	sp := parent.StartSpan("stage")
	for i := 0; i < n; i++ {
		if i == n-1 {
			sp.End()
		}
	}
}

// A return inside a loop with no End anywhere is still a leak.
func returnInLoop(parent *trace.Span, n int) {
	sp := parent.StartSpan("stage") // want `span started here is not Ended before its scope exits`
	for i := 0; i < n; i++ {
		sp.SetInt("i", int64(i))
		if i > 2 {
			return // want `return leaves the span started at .* un-Ended`
		}
	}
}

// Handing the span to another function transfers the obligation.
func handsOff(parent *trace.Span) {
	sp := parent.StartSpan("stage")
	finishLater(sp)
}

// Returning the span makes the caller responsible.
func returned(parent *trace.Span) *trace.Span {
	sp := parent.StartSpan("stage")
	return sp
}

// A deferred closure that Ends the span covers every exit.
func deferredClosure(parent *trace.Span) error {
	sp := parent.StartSpan("stage")
	defer func() { sp.End() }()
	if errBoom != nil {
		return errBoom
	}
	return nil
}

// A switch Ends the span only when every case does and a default exists.
func switchAllCases(parent *trace.Span, k int) {
	sp := parent.StartSpan("stage")
	switch k {
	case 0:
		sp.End()
	default:
		sp.End()
	}
}

func switchNoDefault(parent *trace.Span, k int) {
	sp := parent.StartSpan("stage") // want `span started here is not Ended before its scope exits`
	switch k {
	case 0:
		sp.End()
	case 1:
		sp.End()
	}
}

// Nested child spans: each is tracked independently.
func nested(parent *trace.Span) {
	outer := parent.StartSpan("outer")
	defer outer.End()
	inner := outer.StartSpan("inner") // want `span started here is not Ended before its scope exits`
	inner.SetInt("k", 1)
}

func finishLater(sp *trace.Span) { sp.End() }
