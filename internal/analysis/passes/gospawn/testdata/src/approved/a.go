package approved

// This package path is added to -gospawn.allow by the test: its spawns
// are an audited worker pool. No diagnostics expected.

func pool(n int, jobs <-chan func()) {
	for i := 0; i < n; i++ {
		go func() {
			for j := range jobs {
				j()
			}
		}()
	}
}
