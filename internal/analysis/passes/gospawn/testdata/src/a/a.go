package a

import "sync"

func spawnLiteral() {
	go func() {}() // want `bare go statement outside approved worker pools`
}

func spawnNamed(wg *sync.WaitGroup) {
	wg.Add(1)
	go worker(wg) // want `bare go statement outside approved worker pools`
}

func worker(wg *sync.WaitGroup) {
	defer wg.Done()
}

func nested() {
	f := func() {
		go func() {}() // want `bare go statement outside approved worker pools`
	}
	f()
}

func noSpawn() {
	worker(nil)
}
