package a

// Test files may spawn goroutines freely. No diagnostics expected here.

func spawnInTest() {
	go func() {}()
}
