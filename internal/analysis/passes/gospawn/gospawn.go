// Package gospawn reports bare go statements outside approved packages.
//
// PR 1 replaced an unbounded per-burst goroutine spawn in the collector
// with a bounded worker pool after load tests showed goroutine counts
// tracking the packet rate. The serving-path rule since then: goroutine
// creation is the business of a small set of audited packages that bound
// and supervise their workers (WaitGroup + semaphore, or pool); everything
// else submits work to them. A spawn anywhere else is either a lifetime
// leak waiting to happen or a new pool that needs auditing — annotate the
// deliberate ones with //lint:allow gospawn <reason>.
package gospawn

import (
	"go/ast"

	"spotfi/internal/analysis"
	"spotfi/internal/analysis/passes/passutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "gospawn",
	Doc: "report go statements outside approved worker-pool packages\n\n" +
		"Goroutines must be spawned by the audited, bounded pools listed in\n" +
		"-gospawn.allow; annotate deliberate one-offs with //lint:allow gospawn <reason>.",
	Run: run,
}

var allow string

func init() {
	Analyzer.Flags.StringVar(&allow, "allow",
		"spotfi,spotfi/internal/server,spotfi/internal/experiments,spotfi/internal/apnode",
		"comma-separated import paths of packages approved to spawn goroutines")
}

func run(pass *analysis.Pass) (any, error) {
	if pass.Pkg != nil && passutil.CommaSet(allow)[pass.Pkg.Path()] {
		return nil, nil
	}
	for _, file := range pass.Files {
		if passutil.IsTestFile(pass, file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				pass.Reportf(g.Pos(),
					"bare go statement outside approved worker pools (-gospawn.allow); route the work through a bounded pool or annotate with //lint:allow gospawn <reason>")
			}
			return true
		})
	}
	return nil, nil
}
