package gospawn_test

import (
	"testing"

	"spotfi/internal/analysis/analysistest"
	"spotfi/internal/analysis/passes/gospawn"
)

func TestGospawn(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), gospawn.Analyzer, "a")
}

// TestAllowlist verifies that packages named in -gospawn.allow may spawn.
func TestAllowlist(t *testing.T) {
	f := gospawn.Analyzer.Flags.Lookup("allow")
	if f == nil {
		t.Fatal("no flag allow")
	}
	prev := f.Value.String()
	if err := f.Value.Set(prev + ",approved"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := f.Value.Set(prev); err != nil {
			t.Fatal(err)
		}
	})
	analysistest.Run(t, analysistest.TestData(t), gospawn.Analyzer, "approved")
}
