// Package floatloop reports floating-point loop induction: a float or
// complex accumulator advanced by a loop-invariant step (x += step) instead
// of being computed from the loop index (x0 + float64(i)*step).
//
// Accumulated steps compound rounding error linearly in the trip count.
// This is precisely the bug PR 1 fixed in the MUSIC grid construction:
// per-step drift across a 10⁴-point AoA/ToF grid shifts peak positions
// relative to the closed-form grid the tests assume.
package floatloop

import (
	"go/ast"
	"go/token"
	"go/types"

	"spotfi/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "floatloop",
	Doc: "report float/complex loop accumulators advanced by a loop-invariant step\n\n" +
		"x += step inside a loop accumulates one rounding error per iteration;\n" +
		"construct the value from the loop index instead: x0 + float64(i)*step.",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch loop := n.(type) {
			case *ast.ForStmt:
				if loop.Post != nil {
					checkStmt(pass, loop, loop.Post)
				}
				checkBody(pass, loop, loop.Body)
			case *ast.RangeStmt:
				checkBody(pass, loop, loop.Body)
			}
			return true
		})
	}
	return nil, nil
}

// checkBody examines the loop body's statements, leaving statements of
// nested loops to their own (innermost) loop's visit.
func checkBody(pass *analysis.Pass, loop ast.Node, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return false
		case ast.Stmt:
			checkStmt(pass, loop, s)
		}
		return true
	})
}

// checkStmt reports stmt if it advances a loop-carried float/complex
// variable by a loop-invariant step.
func checkStmt(pass *analysis.Pass, loop ast.Node, stmt ast.Stmt) {
	as, ok := stmt.(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return
	}
	lhs, rhs := as.Lhs[0], as.Rhs[0]
	acc, ok := refOf(pass, lhs)
	if !ok {
		return
	}
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN:
		// x += step / x -= step
	case token.ASSIGN:
		// x = x + step / x = x - step
		bin, ok := ast.Unparen(rhs).(*ast.BinaryExpr)
		if !ok || (bin.Op != token.ADD && bin.Op != token.SUB) {
			return
		}
		if xr, ok := refOf(pass, bin.X); ok && xr == acc {
			rhs = bin.Y
		} else if yr, ok := refOf(pass, bin.Y); ok && yr == acc && bin.Op == token.ADD {
			rhs = bin.X
		} else {
			return
		}
	default:
		return
	}

	if !isFloatOrComplex(pass.TypesInfo.Types[lhs].Type) {
		return
	}
	if within(loop, acc.base.Pos()) {
		return // accumulator lives inside the loop: not loop-carried
	}
	if !invariant(pass, loop, acc.base, rhs) {
		return
	}
	pass.Reportf(stmt.Pos(),
		"%s accumulates a loop-invariant step each iteration (compounds rounding error); compute it from the loop index instead",
		acc.name)
}

// A ref names an assignable place: a variable, or a selector chain rooted
// at one (x, s.f, s.f.g). Comparable, so two syntactic mentions of the
// same place yield equal refs.
type ref struct {
	base types.Object
	name string
}

func refOf(pass *analysis.Pass, e ast.Expr) (ref, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[e]
		if obj == nil {
			obj = pass.TypesInfo.Defs[e]
		}
		if obj == nil {
			return ref{}, false
		}
		return ref{base: obj, name: obj.Name()}, true
	case *ast.SelectorExpr:
		base, ok := refOf(pass, e.X)
		if !ok {
			return ref{}, false
		}
		return ref{base: base.base, name: base.name + "." + e.Sel.Name}, true
	}
	return ref{}, false
}

// invariant conservatively reports whether expr yields the same value on
// every iteration: no calls, no indexing/dereferencing, and every
// identifier bound outside the loop.
func invariant(pass *analysis.Pass, loop ast.Node, acc types.Object, expr ast.Expr) bool {
	inv := true
	ast.Inspect(expr, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CallExpr, *ast.IndexExpr, *ast.StarExpr, *ast.SliceExpr:
			inv = false
			return false
		case *ast.Ident:
			obj := pass.TypesInfo.Uses[e]
			if obj == nil || obj == acc {
				return true
			}
			if _, isVar := obj.(*types.Var); isVar && within(loop, obj.Pos()) {
				inv = false
				return false
			}
		}
		return true
	})
	return inv
}

func isFloatOrComplex(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

func within(n ast.Node, pos token.Pos) bool {
	return n.Pos() <= pos && pos < n.End()
}
