package a

// Positive cases: a loop-carried float/complex accumulator advanced by a
// loop-invariant step.

func grid(n int, step float64) []float64 {
	out := make([]float64, n)
	x := 0.0
	for i := 0; i < n; i++ {
		out[i] = x
		x += step // want `x accumulates a loop-invariant step`
	}
	return out
}

func gridExplicit(n int, step float64) float64 {
	x := 0.0
	for i := 0; i < n; i++ {
		x = x + step // want `x accumulates a loop-invariant step`
	}
	return x
}

func gridReversed(n int, step float64) float64 {
	x := 0.0
	for i := 0; i < n; i++ {
		x = step + x // want `x accumulates a loop-invariant step`
	}
	return x
}

func countdown(n int, step float64) float64 {
	x := 100.0
	for i := 0; i < n; i++ {
		x -= step // want `x accumulates a loop-invariant step`
	}
	return x
}

func phasor(n int, rot complex128) complex128 {
	w := complex(1, 0)
	for i := 0; i < n; i++ {
		w += rot // want `w accumulates a loop-invariant step`
	}
	return w
}

func inPost(n int, step float64) float64 {
	x := 0.0
	for i := 0; i < n; x += step { // want `x accumulates a loop-invariant step`
		i++
	}
	return x
}

func inRange(vals []float64, step float64) float64 {
	x := 0.0
	for range vals {
		x += step // want `x accumulates a loop-invariant step`
	}
	return x
}

type state struct{ phase float64 }

func field(n int, s *state, step float64) {
	for i := 0; i < n; i++ {
		s.phase += step // want `s.phase accumulates a loop-invariant step`
	}
}

func constStep(n int) float64 {
	x := 0.0
	for i := 0; i < n; i++ {
		x += 0.125 // want `x accumulates a loop-invariant step`
	}
	return x
}

// Negative cases: reductions over per-iteration values, integer
// induction, and accumulators scoped to the loop body.

func sum(vals []float64) float64 {
	var s float64
	for _, v := range vals {
		s += v // per-iteration value: a reduction, not induction
	}
	return s
}

func sumIndexed(vals []float64) float64 {
	var s float64
	for i := 0; i < len(vals); i++ {
		s += vals[i] // indexing depends on the loop
	}
	return s
}

func intStride(n int) int {
	j := 0
	for i := 0; i < n; i++ {
		j += 2 // integer induction is exact
	}
	return j
}

func perIteration(n int, step float64) float64 {
	var last float64
	for i := 0; i < n; i++ {
		x := 0.0
		x += step // x is reborn each iteration: not loop-carried
		last = x
	}
	return last
}

func viaCall(n int, f func() float64) float64 {
	x := 0.0
	for i := 0; i < n; i++ {
		x += f() // calls may vary per iteration
	}
	return x
}

func innerDependent(n int, step float64) float64 {
	x := 0.0
	for i := 0; i < n; i++ {
		w := float64(i) * step
		x += w // w is defined inside the loop
	}
	return x
}
