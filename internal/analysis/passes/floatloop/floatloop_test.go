package floatloop_test

import (
	"testing"

	"spotfi/internal/analysis/analysistest"
	"spotfi/internal/analysis/passes/floatloop"
)

func TestFloatloop(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), floatloop.Analyzer, "a")
}
