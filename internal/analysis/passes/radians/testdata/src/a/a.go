package a

import "math"

func steer(thetaRad float64) float64 { return thetaRad }
func norm(theta float64) float64     { return theta }
func face(phi, gain float64) float64 { return phi + gain }
func sweep(aoa ...float64) float64   { return aoa[0] }
func circle(radiusM float64) float64 { return radiusM }
func slope(gradient float64) float64 { return gradient }
func fromDeg(deg float64) float64    { return deg * math.Pi / 180 }

const quarterTurn = 90

// Positive cases: degree-sized constants into radian-named parameters.

func degreesIntoRadians() {
	steer(90)         // want `constant 90 passed to radian parameter "thetaRad" looks like degrees`
	norm(180)         // want `constant 180 passed to radian parameter "theta" looks like degrees`
	face(45.0*4, 2)   // want `constant 180 passed to radian parameter "phi" looks like degrees`
	sweep(30, 360)    // want `constant 30 passed to radian parameter "aoa" looks like degrees` `constant 360 passed to radian parameter "aoa" looks like degrees`
	norm(-270)        // want `constant -270 passed to radian parameter "theta" looks like degrees`
	norm(quarterTurn) // want `constant 90 passed to radian parameter "theta" looks like degrees`
	math.Sin(90)      // want `constant 90 passed to radian parameter "x" looks like degrees`
	math.Cos(180)     // want `constant 180 passed to radian parameter "x" looks like degrees`
}

// Negative cases.

func radiansAreFine(x float64) {
	steer(1.57)
	norm(-math.Pi)
	norm(2 * math.Pi)
	math.Sin(x)
	sweep(0.5, 1.0)
}

func notRadianParams() {
	circle(90)   // radiusM: "rad" only as part of "radius"
	slope(45)    // gradient: "rad" only inside the word
	fromDeg(180) // deg parameter: converting is the point
}

func smallIntoVariadic() {
	sweep(4) // |v| ≤ 2π
}
