// Package radians reports degree-valued constants passed to parameters
// that are, by name, radians.
//
// SpotFi's geometry is radians end to end (geom.Angle, locate's AoA math),
// but array steering and deployment specs are naturally quoted in degrees,
// and geom.Deg/geom.Rad convert at the boundary. A literal like 90 or 180
// flowing into a theta/rad parameter is almost always a missing geom.Rad
// — the exact unit-bookkeeping slip Tadayon et al. identify as a dominant
// ToF/AoA bias source. Any constant with magnitude above 2π headed into a
// radian-named parameter is suspect: no wrapped angle is that large.
package radians

import (
	"go/ast"
	"go/constant"
	"go/types"
	"math"
	"strings"

	"spotfi/internal/analysis"
	"spotfi/internal/analysis/passes/passutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "radians",
	Doc: "report degree-looking constants passed to radian parameters\n\n" +
		"A constant with |v| > 2π passed to a parameter named like a radian\n" +
		"angle (theta, phi, aoa, rad...) is almost always a missing geom.Rad.",
	Run: run,
}

var names string

func init() {
	Analyzer.Flags.StringVar(&names, "names", "rad,radians,theta,phi,aoa,angle,bearing,azimuth",
		"comma-separated parameter names (exact, or as a Rad/Radians suffix) treated as radian-valued")
}

// trigFuncs take radians but name their parameter x.
var trigFuncs = map[string]bool{
	"math.Sin": true, "math.Cos": true, "math.Tan": true, "math.Sincos": true,
	"math/cmplx.Sin": true, "math/cmplx.Cos": true, "math/cmplx.Tan": true,
}

func run(pass *analysis.Pass) (any, error) {
	radNames := passutil.CommaSet(names)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[call.Fun]
			if !ok || tv.IsType() {
				return true // conversion
			}
			sig, ok := tv.Type.Underlying().(*types.Signature)
			if !ok {
				return true
			}
			trig := false
			if fn := passutil.Callee(pass.TypesInfo, call); fn != nil {
				trig = trigFuncs[fn.FullName()]
			}
			for i, arg := range call.Args {
				v, ok := constValue(pass, arg)
				if !ok || math.Abs(v) <= 2*math.Pi {
					continue
				}
				param := paramAt(sig, i)
				if param == nil {
					continue
				}
				if trig || isRadianName(radNames, param.Name()) {
					pass.Reportf(arg.Pos(),
						"constant %v passed to radian parameter %q looks like degrees (|v| > 2π); convert with geom.Rad or pass radians",
						v, param.Name())
				}
			}
			return true
		})
	}
	return nil, nil
}

// paramAt returns the parameter an argument at index i binds to,
// accounting for variadic tails.
func paramAt(sig *types.Signature, i int) *types.Var {
	params := sig.Params()
	if params.Len() == 0 {
		return nil
	}
	if sig.Variadic() && i >= params.Len()-1 {
		return params.At(params.Len() - 1)
	}
	if i < params.Len() {
		return params.At(i)
	}
	return nil
}

// isRadianName reports whether a parameter name denotes radians: an exact
// entry from the configured set (case-insensitive), or an entry as a
// CamelCase suffix (aoaRad, thetaRadians).
func isRadianName(radNames map[string]bool, name string) bool {
	lower := strings.ToLower(name)
	if radNames[lower] {
		return true
	}
	for n := range radNames {
		suffix := strings.ToUpper(n[:1]) + n[1:]
		if len(name) > len(suffix) && strings.HasSuffix(name, suffix) {
			return true
		}
	}
	return false
}

// constValue extracts a float value from a numeric constant expression.
func constValue(pass *analysis.Pass, e ast.Expr) (float64, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		v, _ := constant.Float64Val(tv.Value) // exactness loss is irrelevant for a threshold test
		return v, true
	}
	return 0, false
}
