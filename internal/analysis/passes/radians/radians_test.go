package radians_test

import (
	"testing"

	"spotfi/internal/analysis/analysistest"
	"spotfi/internal/analysis/passes/radians"
)

func TestRadians(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), radians.Analyzer, "a")
}
