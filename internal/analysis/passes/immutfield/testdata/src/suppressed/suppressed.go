package suppressed

//spotfi:immutable
type table struct{ hits int }

// recount is the documented exception shape: a maintenance path that
// rewrites a cached field while holding the cache's own lock, so the
// concurrent-read argument the annotation encodes still holds.
func recount(t *table, n int) {
	t.hits = n //lint:allow immutfield rewritten under the steering cache mutex during invalidation
}
